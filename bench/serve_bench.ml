(* Online serving under concept drift: the deployment-side experiment the
   paper's offline loop stops short of. A BD model trained on today's C&C
   traffic serves a live packet stream; mid-trace the botmaster re-tools
   (packet sizes up, command gaps down), windowed F1 collapses, the drift
   detector fires, and the updater retrains + hot-swaps weights mid-stream
   without dropping a queued packet — the Taurus runtime-update story. *)

open Homunculus_netdata
open Homunculus_serve
module Rng = Homunculus_util.Rng

let mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 200 }

let build_scenario ~seed ~n_train ~n_serve =
  let rng = Rng.create seed in
  let train_flows = Flowsim.generate rng ~mix:(mix n_train) () in
  let model =
    Updater.bootstrap (Rng.split rng) ~bins:Botnet.Fused ~name:"botnet_detection"
      train_flows
  in
  (* Phase A: the traffic the model was trained for. Phase B: every botnet
     flow re-tooled; benign traffic unchanged. *)
  let phase_a = Flowsim.generate rng ~mix:(mix n_serve) () in
  let phase_b =
    Stream.renumber ~from:n_serve
      (Stream.shift_botnet (Flowsim.generate rng ~mix:(mix n_serve) ()))
  in
  let offsets_a = Array.map (fun f -> (Rng.float rng 600., f)) phase_a in
  let offsets_b = Array.map (fun f -> (600. +. Rng.float rng 600., f)) phase_b in
  let events = Stream.events_scheduled (Array.append offsets_a offsets_b) in
  (model, events)

let run_once ~model ~events ~with_updater ~updater_rng =
  let monitor = Monitor.create ~n_classes:2 () in
  let updater =
    if with_updater then
      Some
        (Updater.create updater_rng ~n_features:(Botnet.n_features Botnet.Fused)
           ~n_classes:2 ())
    else None
  in
  let engine = Engine.create ~model ~monitor ?updater () in
  Engine.run engine events

let phase_f1 windows ~before ~after =
  let pre =
    List.filter (fun w -> w.Monitor.t_end < before) windows
    |> List.map (fun w -> w.Monitor.f1)
  in
  let post =
    List.filter (fun w -> w.Monitor.t_start > after) windows
    |> List.map (fun w -> w.Monitor.f1)
  in
  let mean = function
    | [] -> 0.
    | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  (mean pre, mean post)

let run () =
  Bench_config.section "Online serving: drift detection and hot-swap recovery";
  let n_train, n_serve = if Bench_config.fast then (120, 100) else (200, 150) in
  let model, events =
    build_scenario ~seed:(Bench_config.seed + 17) ~n_train ~n_serve
  in
  Printf.printf "%d per-packet events; traffic shift lands at t = 600 s\n"
    (Array.length events);
  let show name (s : Engine.summary) =
    let pre, post = phase_f1 s.Engine.windows ~before:600. ~after:700. in
    Printf.printf
      "%-16s served %6d, dropped %3d, drift alarms %d, swaps %d\n\
    \                 windowed F1: %.3f before the shift, %.3f after\n"
      name s.Engine.served s.Engine.dropped
      (List.length s.Engine.drift_events)
      (List.length s.Engine.swaps)
      pre post;
    List.iter
      (fun (d : Monitor.drift) ->
        Printf.printf "                 drift @ %7.1f s (%s, %.3f)\n"
          d.Monitor.ts d.Monitor.reason d.Monitor.value)
      s.Engine.drift_events;
    List.iter
      (fun (sw : Engine.swap) ->
        Printf.printf
          "                 swap  @ %7.1f s: F1 %.3f -> %.3f on holdout, %d \
           queued packets preserved, %d dropped\n"
          sw.Engine.swap_ts sw.Engine.incumbent_f1 sw.Engine.challenger_f1
          sw.Engine.queue_preserved sw.Engine.dropped_during_swap)
      s.Engine.swaps
  in
  let frozen =
    run_once ~model ~events ~with_updater:false
      ~updater_rng:(Rng.create 0)
  in
  show "frozen model" frozen;
  let adaptive =
    run_once ~model ~events ~with_updater:true
      ~updater_rng:(Rng.create (Bench_config.seed + 18))
  in
  show "with updater" adaptive;
  Printf.printf
    "\nthe frozen pipeline stays degraded after the shift; the adaptive one\n\
     detects the drift, retrains on its reservoir, and swaps weights\n\
     mid-stream (Taurus runtime model updates, no pipeline pause).\n"
