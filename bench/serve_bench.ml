(* Online serving under concept drift: the deployment-side experiment the
   paper's offline loop stops short of. A BD model trained on today's C&C
   traffic serves a live packet stream; mid-trace the botmaster re-tools
   (packet sizes up, command gaps down), windowed F1 collapses, the drift
   detector fires, and the updater retrains + hot-swaps weights mid-stream
   without dropping a queued packet — the Taurus runtime-update story. *)

open Homunculus_netdata
open Homunculus_serve
module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json
module Platform = Homunculus_alchemy.Platform
module Model_spec = Homunculus_alchemy.Model_spec
module Dataset = Homunculus_ml.Dataset
module Bo = Homunculus_bo
module Compiler = Homunculus_core.Compiler
module Journal = Homunculus_resilience.Journal
module Supervisor = Homunculus_resilience.Supervisor
module Autopilot = Homunculus_autopilot.Autopilot

let mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 200 }

let build_scenario ~seed ~n_train ~n_serve =
  let rng = Rng.create seed in
  let train_flows = Flowsim.generate rng ~mix:(mix n_train) () in
  let model =
    Updater.bootstrap (Rng.split rng) ~bins:Botnet.Fused ~name:"botnet_detection"
      train_flows
  in
  (* Phase A: the traffic the model was trained for. Phase B: every botnet
     flow re-tooled; benign traffic unchanged. *)
  let phase_a = Flowsim.generate rng ~mix:(mix n_serve) () in
  let phase_b =
    Stream.renumber ~from:n_serve
      (Stream.shift_botnet (Flowsim.generate rng ~mix:(mix n_serve) ()))
  in
  let offsets_a = Array.map (fun f -> (Rng.float rng 600., f)) phase_a in
  let offsets_b = Array.map (fun f -> (600. +. Rng.float rng 600., f)) phase_b in
  let events = Stream.events_scheduled (Array.append offsets_a offsets_b) in
  (model, events)

let run_once ~model ~events ~with_updater ~updater_rng =
  let monitor = Monitor.create ~n_classes:2 () in
  let updater =
    if with_updater then
      Some
        (Updater.create updater_rng ~n_features:(Botnet.n_features Botnet.Fused)
           ~n_classes:2 ())
    else None
  in
  let engine = Engine.create ~model ~monitor ?updater () in
  Engine.run engine events

let phase_f1 windows ~before ~after =
  let pre =
    List.filter (fun w -> w.Monitor.t_end < before) windows
    |> List.map (fun w -> w.Monitor.f1)
  in
  let post =
    List.filter (fun w -> w.Monitor.t_start > after) windows
    |> List.map (fun w -> w.Monitor.f1)
  in
  let mean = function
    | [] -> 0.
    | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  (mean pre, mean post)

(* {2 Autopilot regime shift: drift -> warm-started re-search -> hot-swap} *)

let journal_dir = "BENCH_autopilot_journal"

let clean_journal_dir () =
  if Sys.file_exists journal_dir && Sys.is_directory journal_dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat journal_dir f))
      (Sys.readdir journal_dir)

let run_autopilot ~model ~events ~updater_rng ~seed =
  let monitor =
    Monitor.create
      ~config:{ Monitor.default_config with Monitor.cooldown_windows = 2 }
      ~n_classes:2 ()
  in
  let updater =
    Updater.create updater_rng ~n_features:(Botnet.n_features Botnet.Fused)
      ~n_classes:2 ()
  in
  let pilot =
    Autopilot.create
      {
        (Autopilot.default_config ~platform:(Platform.taurus ()) ~journal_dir)
        with
        Autopilot.seed;
      }
      ~updater
  in
  let engine =
    Engine.create ~model ~monitor ~updater ~research:(Autopilot.hook pilot) ()
  in
  (Engine.run engine events, pilot)

(* Mean windowed F1 strictly before the shift. *)
let pre_shift_f1 windows =
  let pre =
    List.filter_map
      (fun w -> if w.Monitor.t_end < 600. then Some w.Monitor.f1 else None)
      windows
  in
  match pre with
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Recovery: the first post-swap window whose F1 is back within 0.05 of the
   pre-shift mean; time counted from the shift at t = 600 s. *)
let time_to_recovery windows swaps ~pre_f1 =
  match swaps with
  | [] -> None
  | first_swap :: _ ->
      List.find_opt
        (fun w ->
          w.Monitor.t_start > first_swap.Engine.swap_ts
          && w.Monitor.f1 >= pre_f1 -. 0.05)
        windows
      |> Option.map (fun w -> w.Monitor.t_end -. 600.)

let accuracy_floor windows =
  List.fold_left
    (fun acc w -> if w.Monitor.t_end > 600. then Stdlib.min acc w.Monitor.f1 else acc)
    1. windows

(* The warm-start claim, measured in isolation on a fixed spec: a journaled
   search of [prior] guided evaluations, then (a) warm — replay the journal
   and continue with [fresh] more — against (b) cold — one search of
   [prior + fresh] from scratch. Same proposal sequence by construction
   (the replay-then-continue identity), so the warm arm pays for [fresh]
   trainings where the cold arm pays for [n_init + prior + fresh]. *)
let warm_vs_cold ~spec ~seed =
  let platform = Platform.taurus () in
  let prior = 4 and fresh = 4 in
  let base =
    { Bo.Optimizer.default_settings with Bo.Optimizer.n_init = 3; n_iter = prior }
  in
  let path = Filename.temp_file "bench_warmstart" ".jsonl" in
  let options supervisor settings =
    {
      Compiler.default_options with
      Compiler.seed;
      bo_settings = settings;
      emit_code = false;
      supervisor;
    }
  in
  (* prior search, journaled *)
  let journal = Journal.open_ path in
  let sup = Supervisor.create ~journal () in
  ignore (Compiler.search_model ~options:(options (Some sup) base) platform spec);
  Journal.close journal;
  (* warm: replay + continue *)
  let t0 = Unix.gettimeofday () in
  let warm =
    let sup = Supervisor.create ~replay:(Journal.load path) () in
    let settings =
      Bo.Optimizer.continuation base ~replayed:(base.Bo.Optimizer.n_init + prior)
        ~fresh
    in
    Compiler.search_model ~options:(options (Some sup) settings) platform spec
  in
  let warm_wall = Unix.gettimeofday () -. t0 in
  (* cold: the same total budget, no replay *)
  let t0 = Unix.gettimeofday () in
  let cold =
    let settings = { base with Bo.Optimizer.n_iter = prior + fresh } in
    Compiler.search_model ~options:(options None settings) platform spec
  in
  let cold_wall = Unix.gettimeofday () -. t0 in
  Sys.remove path;
  let config_string (r : Compiler.model_result) =
    Bo.Config.to_string r.Compiler.artifact.Homunculus_core.Evaluator.config
  in
  let same_winner =
    String.equal (config_string warm) (config_string cold)
    && Float.equal warm.Compiler.artifact.objective
         cold.Compiler.artifact.objective
  in
  (warm_wall, cold_wall, same_winner)

let spec_of_flows ~seed ~name flows =
  let x = Array.map (fun f -> Botnet.flow_features Botnet.Fused f ()) flows in
  let y = Array.map (fun f -> Flow.label_to_int f.Flow.label) flows in
  let n = Array.length x in
  let rng = Rng.create seed in
  let perm = Rng.permutation rng n in
  let n_test = Stdlib.max 1 (n * 3 / 10) in
  let slice off k =
    ( Array.init k (fun i -> x.(perm.(off + i))),
      Array.init k (fun i -> y.(perm.(off + i))) )
  in
  let x_test, y_test = slice 0 n_test in
  let x_train, y_train = slice n_test (n - n_test) in
  let dataset x y = Dataset.create ~x ~y ~n_classes:2 () in
  Model_spec.make ~name ~algorithms:[ Model_spec.Tree ]
    ~loader:(fun () ->
      Model_spec.data
        ~train:(dataset x_train y_train)
        ~test:(dataset x_test y_test))
    ()

let run () =
  Bench_config.section "Online serving: drift detection and hot-swap recovery";
  let n_train, n_serve = if Bench_config.fast then (120, 100) else (200, 150) in
  let model, events =
    build_scenario ~seed:(Bench_config.seed + 17) ~n_train ~n_serve
  in
  Printf.printf "%d per-packet events; traffic shift lands at t = 600 s\n"
    (Array.length events);
  let show name (s : Engine.summary) =
    let pre, post = phase_f1 s.Engine.windows ~before:600. ~after:700. in
    Printf.printf
      "%-16s served %6d, dropped %3d, drift alarms %d, swaps %d\n\
    \                 windowed F1: %.3f before the shift, %.3f after\n"
      name s.Engine.served s.Engine.dropped
      (List.length s.Engine.drift_events)
      (List.length s.Engine.swaps)
      pre post;
    List.iter
      (fun (d : Monitor.drift) ->
        Printf.printf "                 drift @ %7.1f s (%s, %.3f)\n"
          d.Monitor.ts d.Monitor.reason d.Monitor.value)
      s.Engine.drift_events;
    List.iter
      (fun (sw : Engine.swap) ->
        Printf.printf
          "                 swap  @ %7.1f s: F1 %.3f -> %.3f on holdout, %d \
           queued packets preserved, %d dropped\n"
          sw.Engine.swap_ts sw.Engine.incumbent_f1 sw.Engine.challenger_f1
          sw.Engine.queue_preserved sw.Engine.dropped_during_swap)
      s.Engine.swaps
  in
  let frozen =
    run_once ~model ~events ~with_updater:false
      ~updater_rng:(Rng.create 0)
  in
  show "frozen model" frozen;
  let adaptive =
    run_once ~model ~events ~with_updater:true
      ~updater_rng:(Rng.create (Bench_config.seed + 18))
  in
  show "with updater" adaptive;
  Printf.printf
    "\nthe frozen pipeline stays degraded after the shift; the adaptive one\n\
     detects the drift, retrains on its reservoir, and swaps weights\n\
     mid-stream (Taurus runtime model updates, no pipeline pause).\n";

  Bench_config.section
    "Autopilot: drift-triggered re-search, warm-started from its journals";
  clean_journal_dir ();
  let auto, pilot =
    run_autopilot ~model ~events
      ~updater_rng:(Rng.create (Bench_config.seed + 18))
      ~seed:(Bench_config.seed + 19)
  in
  show "autopilot" auto;
  List.iter
    (fun (e : Autopilot.event) ->
      Printf.printf "                 %s (replayed %d, fresh %d, %.3f s)\n"
        (Autopilot.event_to_string e)
        e.Autopilot.replayed e.Autopilot.fresh e.Autopilot.wall_s)
    (Autopilot.events pilot);
  let pre_f1 = pre_shift_f1 auto.Engine.windows in
  let recovery =
    time_to_recovery auto.Engine.windows auto.Engine.swaps ~pre_f1
  in
  let floor = accuracy_floor auto.Engine.windows in
  Printf.printf
    "pre-shift F1 %.3f, floor during re-search %.3f, time to recovery %s\n"
    pre_f1 floor
    (match recovery with
    | Some s -> Printf.sprintf "%.0f s" s
    | None -> "never");

  let spec =
    spec_of_flows ~seed:(Bench_config.seed + 20) ~name:"autopilot_bench"
      (Stream.shift_botnet
         (Flowsim.generate (Rng.create (Bench_config.seed + 21))
            ~mix:(mix n_serve) ()))
  in
  let warm_wall, cold_wall, same_winner =
    warm_vs_cold ~spec ~seed:(Bench_config.seed + 22)
  in
  Printf.printf
    "re-search wall clock: warm-started %.3f s vs cold %.3f s (%.1fx); same \
     winner: %b\n"
    warm_wall cold_wall
    (cold_wall /. Stdlib.max 1e-9 warm_wall)
    same_winner;

  let swap_json (s : Engine.swap) =
    Json.Object
      [
        ("ts", Json.Number s.Engine.swap_ts);
        ("incumbent_f1", Json.Number s.Engine.incumbent_f1);
        ("challenger_f1", Json.Number s.Engine.challenger_f1);
      ]
  in
  let event_json (e : Autopilot.event) =
    Json.Object
      [
        ("window", Json.Number (float_of_int e.Autopilot.window));
        ("generation", Json.Number (float_of_int e.Autopilot.generation));
        ("outcome", Json.String (Autopilot.outcome_to_string e.Autopilot.outcome));
        ("replayed", Json.Number (float_of_int e.Autopilot.replayed));
        ("fresh", Json.Number (float_of_int e.Autopilot.fresh));
        ("wall_s", Json.Number e.Autopilot.wall_s);
      ]
  in
  Bench_config.set_bench_member ~path:"BENCH_serve.json" ~key:"autopilot"
    (Json.Object
       [
         ("seed", Json.Number (float_of_int (Bench_config.seed + 19)));
         ("events", Json.Number (float_of_int (Array.length events)));
         ("pre_shift_f1", Json.Number pre_f1);
         ("accuracy_floor", Json.Number floor);
         ( "time_to_recovery_s",
           match recovery with Some s -> Json.Number s | None -> Json.Null );
         ("swaps", Json.List (List.map swap_json auto.Engine.swaps));
         ( "research_events",
           Json.List (List.map event_json (Autopilot.events pilot)) );
         ("warm_wall_s", Json.Number warm_wall);
         ("cold_wall_s", Json.Number cold_wall);
         ( "warm_speedup",
           Json.Number (cold_wall /. Stdlib.max 1e-9 warm_wall) );
         ("warm_matches_cold_winner", Json.Bool same_winner);
       ]);
  Printf.printf "wrote autopilot section of BENCH_serve.json (journals in %s/)\n"
    journal_dir;

  (* Recovery gate: the autopilot must actually swap and bring windowed F1
     back within 0.05 of the pre-shift mean before the trace ends. *)
  (match recovery with
  | Some s when s <= 600. -> ()
  | Some s ->
      Printf.eprintf
        "FAIL: autopilot recovery took %.0f s (gate: 600 s after the shift)\n" s;
      exit 1
  | None ->
      Printf.eprintf
        "FAIL: autopilot never recovered the pre-shift F1 after the regime \
         shift\n";
      exit 1);
  if not same_winner then begin
    Printf.eprintf
      "FAIL: warm-started re-search picked a different winner than the cold \
       search\n";
    exit 1
  end
