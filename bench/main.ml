(* Reproduction harness: one entry per table and figure of the paper's
   evaluation (section 5), plus Bechamel micro-benchmarks and ablations.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table2     # one experiment
     HOMUNCULUS_BENCH_FAST=1 dune exec bench/main.exe   # scaled-down run *)

let experiments =
  [
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("table4", Table4.run);
    ("table5", Table5.run);
    ("fig4", Fig4.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("reaction", Reaction_bench.run);
    ("serve", Serve_bench.run);
    ("loadgen", Loadgen_bench.run);
    ("micro", Micro.run);
    ("ablation", Ablation.run);
    ("dse", Dse_bench.run);
    ("train", Train_bench.run);
    ("compose", Compose_bench.run);
  ]

let () =
  (* Hidden self-exec mode: `main.exe dse-dist-worker DIR ID [KILL]` runs one
     distributed-DSE worker process against coordination directory DIR (the
     dse bench spawns these; they never reach the experiment dispatch). *)
  (match Array.to_list Sys.argv with
  | _ :: "dse-dist-worker" :: dir :: id :: rest ->
      Dse_bench.dist_worker ~dir ~id:(int_of_string id)
        ~kill:(match rest with k :: _ -> Some (int_of_string k) | [] -> None);
      exit 0
  | _ -> ());
  let t0 = Unix.gettimeofday () in
  let selected =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | [ _ ] | [] -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    selected;
  Printf.printf "\ntotal wall-clock: %.1f s%s\n"
    (Unix.gettimeofday () -. t0)
    (if Bench_config.fast then " (HOMUNCULUS_BENCH_FAST)" else "")
