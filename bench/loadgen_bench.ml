(* Line-rate serving measurement: an open-loop load generator (Poisson and
   bursty arrivals, seeded) drives the serving engine in virtual time at
   offered rates below and above the configured service rate, for both the
   floating-point Reference drain and the fixed-point Quantized drain.
   Reports sustained inferences/sec (wall clock), nearest-rank p50/p99/p999
   service latency and drop rate per run to BENCH_serve.json, replays every
   quantized verdict through the pure Runtime oracle (bit-identity gate),
   and fails the process when the quantized under-load p99 exceeds the SLO
   budget — the CI latency regression gate. *)

open Homunculus_netdata
open Homunculus_serve
module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json
module Serve_eval = Homunculus_check.Serve_eval

(* Virtual-time latencies are deterministic for a fixed seed, so this budget
   gates regressions in the engine's queueing/batching logic, not host
   speed. Measured p99 at 0.5x Poisson load is ~21 ms (a packet rarely
   waits much past one 32-packet batch at 200 pps); the budget leaves
   ~5x headroom before failing the build, while still catching anything
   that lets the queue ride near its 64-packet capacity (~640 ms). *)
let slo_p99_s = 0.1

let service_rate = Engine.default_config.Engine.service_rate_pps

let mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 160 }

let build ~seed ~n_train ~n_serve =
  let rng = Rng.create seed in
  let train = Flowsim.generate rng ~mix:(mix n_train) () in
  let model =
    Updater.bootstrap (Rng.split rng) ~algorithm:`Svm ~bins:Botnet.Fused
      ~name:"botnet_detection" train
  in
  let serve_flows = Flowsim.generate rng ~mix:(mix n_serve) () in
  let base = Stream.events (Rng.split rng) serve_flows in
  (model, base)

let run_one ~model ~mode ~rate ~process ~arrival_seed base =
  let g = Loadgen.generator (Rng.create arrival_seed) ~rate ~process in
  let events = Loadgen.retime g base in
  let config =
    {
      Engine.default_config with
      Engine.mode;
      trace_capacity = Array.length events;
    }
  in
  let monitor = Monitor.create ~n_classes:2 () in
  let engine = Engine.create ~config ~model ~monitor () in
  let label =
    Printf.sprintf "%s_%s_%gpps"
      (match mode with Engine.Reference -> "reference" | Engine.Quantized -> "quantized")
      (Loadgen.process_name process) rate
  in
  let result = Loadgen.drive ~label engine ~rate ~process events in
  (engine, result)

let show (r : Loadgen.result) =
  let lat p =
    if Array.length r.Loadgen.latencies = 0 then Float.nan
    else Report.percentile p r.Loadgen.latencies
  in
  Printf.printf
    "%-32s offered %6d served %6d dropped %5d (%4.1f%%)\n\
    \                                 %9.0f inf/s sustained; latency p50 %6.1f ms  p99 %6.1f ms  p999 %6.1f ms\n"
    r.Loadgen.label r.Loadgen.offered r.Loadgen.served r.Loadgen.dropped
    (100. *. float_of_int r.Loadgen.dropped /. float_of_int (max 1 r.Loadgen.offered))
    r.Loadgen.sustained_ips
    (1e3 *. lat 50.) (1e3 *. lat 99.) (1e3 *. lat 99.9)

let run () =
  Bench_config.section
    "Serving throughput: open-loop loadgen, Reference vs Quantized drain";
  let n_train, n_serve = if Bench_config.fast then (80, 60) else (150, 120) in
  let model, base =
    build ~seed:(Bench_config.seed + 29) ~n_train ~n_serve
  in
  Printf.printf "%d-packet payload trace; service rate %.0f pps, batch %d\n\n"
    (Array.length base) service_rate Engine.default_config.Engine.batch_size;
  let under = 0.5 *. service_rate and over = 1.2 *. service_rate in
  let plans =
    [
      (under, Loadgen.Poisson);
      (over, Loadgen.Poisson);
      (under, Loadgen.Bursty { mean_burst = 8; peak_factor = 4. });
    ]
  in
  let runs =
    List.concat_map
      (fun mode ->
        List.map
          (fun (rate, process) ->
            run_one ~model ~mode ~rate ~process
              ~arrival_seed:(Bench_config.seed + 31) base)
          plans)
      [ Engine.Reference; Engine.Quantized ]
  in
  List.iter (fun (_, r) -> show r) runs;

  (* Differential gate 1: every quantized verdict must replay bit-identically
     through the pure Runtime oracle. *)
  let replay_mismatches =
    List.fold_left
      (fun acc (engine, r) ->
        match r.Loadgen.process with
        | _ when Engine.current_runtime engine = None -> acc
        | _ ->
            let rp = Serve_eval.replay_quantized engine in
            acc + List.length rp.Serve_eval.mismatches)
      0 runs
  in
  Printf.printf "\nquantized replay oracle: %d mismatches across %d runs\n"
    replay_mismatches
    (List.length (List.filter (fun (e, _) -> Engine.current_runtime e <> None) runs));

  (* Differential gate 2: Reference vs Quantized verdict agreement on the
     same under-load Poisson trace. *)
  let trace_of label =
    List.find (fun (_, r) -> r.Loadgen.label = label) runs |> fun (e, _) ->
    Engine.trace e
  in
  let ref_label = Printf.sprintf "reference_poisson_%gpps" under in
  let qnt_label = Printf.sprintf "quantized_poisson_%gpps" under in
  let agr = Serve_eval.agreement (trace_of ref_label) (trace_of qnt_label) in
  Printf.printf "reference/quantized agreement: %d/%d (%.3f)\n"
    agr.Serve_eval.agreed agr.Serve_eval.compared agr.Serve_eval.rate;

  (* SLO gate: under-load quantized p99. *)
  let slo_run =
    List.find (fun (_, r) -> r.Loadgen.label = qnt_label) runs |> snd
  in
  let p99 = Loadgen.p99 slo_run in
  Printf.printf "SLO gate: quantized p99 %.1f ms at %.0f pps (budget %.1f ms)\n"
    (1e3 *. p99) under (1e3 *. slo_p99_s);

  let json =
    Json.Object
      [
        ("seed", Json.Number (float_of_int Bench_config.seed));
        ("service_rate_pps", Json.Number service_rate);
        ( "batch_size",
          Json.Number (float_of_int Engine.default_config.Engine.batch_size) );
        ( "queue_capacity",
          Json.Number (float_of_int Engine.default_config.Engine.queue_capacity)
        );
        ("payload_events", Json.Number (float_of_int (Array.length base)));
        ("slo_p99_s", Json.Number slo_p99_s);
        ("slo_p99_measured_s", Json.Number p99);
        ( "replay_mismatches",
          Json.Number (float_of_int replay_mismatches) );
        ("ref_quant_agreement", Json.Number agr.Serve_eval.rate);
        ( "runs",
          Json.List (List.map (fun (_, r) -> Loadgen.result_to_json r) runs) );
      ]
  in
  (* Keep the serve bench's "autopilot" member if it wrote first. *)
  let json =
    match
      ( json,
        Bench_config.bench_member ~path:"BENCH_serve.json" ~key:"autopilot" )
    with
    | Json.Object members, Some autopilot ->
        Json.Object (members @ [ ("autopilot", autopilot) ])
    | _, _ -> json
  in
  Out_channel.with_open_text "BENCH_serve.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string ~pretty:true json);
      Out_channel.output_char oc '\n');
  Printf.printf "wrote BENCH_serve.json\n";

  if replay_mismatches > 0 then begin
    Printf.eprintf
      "FAIL: quantized drain diverged from the Runtime replay oracle (%d \
       mismatches)\n"
      replay_mismatches;
    exit 1
  end;
  if not (p99 <= slo_p99_s) then begin
    Printf.eprintf "FAIL: p99 %.4f s exceeds the %.4f s SLO budget\n" p99
      slo_p99_s;
    exit 1
  end
