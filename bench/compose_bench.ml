(* Multi-tenant composition: N guarded models lowered onto ONE shared data
   plane (the lib/policy subsystem, ROADMAP item 3).

   The co-residency scenario: an anomaly detector steered at high-fanout /
   SYN-error traffic plus an IoT traffic classifier steered at sub-MTU
   frames, composed in parallel onto a single Tofino pipeline. Reported:

   - per-tenant accuracy (each member searched under the shared-budget
     platform slice),
   - the sharing win: shared stages vs the sum of standalone stages,
   - combined resource utilization and the line-rate feasibility verdict,
   - the differential oracle (guard tables + shared projections vs the
     per-tenant reference semantics) over a mixed-marginal corpus,
   - graceful rejection of an over-subscribed three-tenant composition,
     both stage-starved (Capacity_exceeded from the allocator) and
     table-starved (infeasible combined verdict),
   - the determinism contract: at a fixed batch size, recompiling with a
     different worker count must reproduce the composition bit-for-bit.

   Results land in BENCH_compose.json. *)

module Bo = Homunculus_bo
module Par = Homunculus_par.Par
module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json
module Policy = Homunculus_policy.Policy
module Pred = Homunculus_policy.Pred
module Lower = Homunculus_policy.Lower
module Compose_eval = Homunculus_check.Compose_eval
module Resource = Homunculus_backends.Resource
module Tofino = Homunculus_backends.Tofino
module Nslkdd = Homunculus_netdata.Nslkdd
module Iot = Homunculus_netdata.Iot
module Dataset = Homunculus_ml.Dataset
open Homunculus_alchemy
open Homunculus_core

(* Fresh (uncached) specs per compile so the determinism check re-trains
   from scratch: MAT-mappable shortlists, bench-sized synthetic splits. *)
let ad_spec () =
  Model_spec.make ~name:"anomaly_detection" ~metric:Model_spec.F1
    ~algorithms:[ Model_spec.Svm; Model_spec.Tree ]
    ~loader:(fun () ->
      let rng = Rng.create Bench_config.seed in
      let train, test =
        Nslkdd.generate_split rng ~n_train:Bench_config.ad_train
          ~n_test:Bench_config.ad_test ()
      in
      Model_spec.data ~train ~test)
    ()

let tc_spec () =
  Model_spec.make ~name:"traffic_classification" ~metric:Model_spec.F1
    ~algorithms:[ Model_spec.Svm; Model_spec.Tree ]
    ~loader:(fun () ->
      let rng = Rng.create (Bench_config.seed + 1) in
      let train, test =
        Iot.generate_split rng ~n_train:Bench_config.tc_train
          ~n_test:Bench_config.tc_test ()
      in
      Model_spec.data ~train ~test)
    ()

let ad_guard =
  Pred.disj [ Pred.field_ge "host_count" 20.; Pred.field_ge "serror_rate" 0.1 ]

let tc_guard = Pred.field_lt "frame_size" 1200.

let policy () =
  Policy.par
    [
      Policy.guard ad_guard (Policy.model (ad_spec ()));
      Policy.guard tc_guard (Policy.model (tc_spec ()));
    ]

(* The determinism contract (PR3) holds at a fixed proposal batch size:
   pin it to 4 and vary only the worker-domain count. *)
let options ~jobs =
  Par.set_default_jobs jobs;
  {
    Bench_config.search_options with
    Compiler.bo_settings =
      {
        Bench_config.search_options.Compiler.bo_settings with
        Bo.Optimizer.batch_size = 4;
      };
  }

let compile ~jobs =
  match Compiler.compile_policy ~options:(options ~jobs) (Platform.tofino ())
          (policy ())
  with
  | Ok pr -> pr
  | Error e -> failwith ("compose bench: " ^ Lower.error_to_string e)

(* Over-subscription: the two searched tenants plus a clone of the second,
   re-lowered (no re-search) onto starved devices. *)
let overload_inputs (pr : Compiler.policy_result) =
  let inputs =
    List.map
      (fun ((t : Policy.tenant), (m : Compiler.model_result)) ->
        Lower.input_of_tenant t ~model:m.Compiler.artifact.Evaluator.model_ir)
      pr.Compiler.tenant_models
  in
  match List.rev inputs with
  | last :: _ ->
      inputs @ [ { last with Lower.in_id = last.Lower.in_id ^ "_clone" } ]
  | [] -> assert false

let run () =
  Bench_config.section "Composition: many models, one data plane";
  let pr = compile ~jobs:1 in
  let composed = pr.Compiler.composed in
  Printf.printf "policy: %s\n" (Policy.to_string pr.Compiler.policy);
  let tenant_json =
    List.map
      (fun ((t : Policy.tenant), (m : Compiler.model_result)) ->
        let a = m.Compiler.artifact in
        Printf.printf "  %-28s %-6s objective %.4f\n" t.Policy.id
          (Model_spec.algorithm_to_string a.Evaluator.algorithm)
          a.Evaluator.objective;
        Json.Object
          [
            ("id", Json.String t.Policy.id);
            ( "algorithm",
              Json.String
                (Model_spec.algorithm_to_string a.Evaluator.algorithm) );
            ("objective", Json.Number a.Evaluator.objective);
          ])
      pr.Compiler.tenant_models
  in
  let device =
    match composed.Lower.pipeline with
    | Lower.Mat { device; _ } -> device
    | Lower.Grid _ -> assert false (* tofino target *)
  in
  let shared = Lower.stages_used composed in
  let standalone =
    List.fold_left
      (fun acc tn -> acc + Lower.standalone_stages device tn)
      0 composed.Lower.tenants
  in
  Printf.printf "  shared stages %d vs standalone sum %d\n" shared standalone;
  let usage_json =
    List.map
      (fun (u : Resource.usage) ->
        Printf.printf "  %-8s %.0f / %.0f (%.1f%%)\n" u.Resource.resource
          u.Resource.used u.Resource.available (Resource.percent u);
        Json.Object
          [
            ("resource", Json.String u.Resource.resource);
            ("used", Json.Number u.Resource.used);
            ("available", Json.Number u.Resource.available);
          ])
      composed.Lower.verdict.Resource.usages
  in
  (* Differential oracle over mixed-marginal samples. *)
  let n_samples = if Bench_config.fast then 256 else 512 in
  let sources =
    List.map
      (fun ((t : Policy.tenant), _) ->
        let data = Model_spec.load t.Policy.spec in
        ( data.Model_spec.test.Dataset.feature_names,
          data.Model_spec.test.Dataset.x ))
      pr.Compiler.tenant_models
  in
  let vecs =
    Compose_eval.corpus
      (Rng.create (Bench_config.seed + 7))
      ~features:composed.Lower.features ~n:n_samples sources
  in
  let violations = Compose_eval.check composed vecs in
  Printf.printf "  oracle: %d samples, %d violations\n" n_samples
    (List.length violations);
  (* Over-subscription must reject, not crash. *)
  let overload = overload_inputs pr in
  let stage_starved =
    let platform =
      Platform.tofino ~device:{ Tofino.default_device with Tofino.n_stages = 4 } ()
    in
    match Lower.compose platform overload with
    | Error (Lower.Allocation (Lower.Stage_alloc.Capacity_exceeded _)) ->
        "capacity_exceeded"
    | Error e -> "rejected: " ^ Lower.error_to_string e
    | Ok t ->
        if t.Lower.verdict.Resource.feasible then "ACCEPTED (bug)"
        else "infeasible"
  in
  let table_starved =
    match Lower.compose (Platform.with_tables (Platform.tofino ()) 16) overload with
    | Error e -> "rejected: " ^ Lower.error_to_string e
    | Ok t -> (
        match t.Lower.verdict.Resource.rejection with
        | Some _ when not t.Lower.verdict.Resource.feasible -> "infeasible"
        | _ -> "ACCEPTED (bug)")
  in
  Printf.printf "  overload (3 tenants, 4 stages):  %s\n" stage_starved;
  Printf.printf "  overload (3 tenants, 16 tables): %s\n" table_starved;
  (* Determinism at any worker count. *)
  let pr4 = compile ~jobs:4 in
  let det =
    String.equal (Lower.summary composed) (Lower.summary pr4.Compiler.composed)
  in
  Printf.printf "  deterministic at jobs 1 vs 4: %b\n" det;
  let json =
    Json.Object
      [
        ("bench", Json.String "compose");
        ("fast", Json.Bool Bench_config.fast);
        ("seed", Json.Number (float_of_int Bench_config.seed));
        ("tenants", Json.List tenant_json);
        ("shared_stages", Json.Number (float_of_int shared));
        ("standalone_stage_sum", Json.Number (float_of_int standalone));
        ("usages", Json.List usage_json);
        ("feasible", Json.Bool composed.Lower.verdict.Resource.feasible);
        ("latency_ns", Json.Number composed.Lower.verdict.Resource.latency_ns);
        ( "throughput_gpps",
          Json.Number composed.Lower.verdict.Resource.throughput_gpps );
        ( "oracle",
          Json.Object
            [
              ("samples", Json.Number (float_of_int n_samples));
              ( "violations",
                Json.Number (float_of_int (List.length violations)) );
            ] );
        ( "overload",
          Json.Object
            [
              ("stage_starved", Json.String stage_starved);
              ("table_starved", Json.String table_starved);
            ] );
        ("deterministic", Json.Bool det);
      ]
  in
  Out_channel.with_open_text "BENCH_compose.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string json);
      Out_channel.output_char oc '\n');
  Bench_config.note "  wrote BENCH_compose.json\n";
  if violations <> [] then failwith "compose bench: oracle violations";
  if not composed.Lower.verdict.Resource.feasible then
    failwith "compose bench: composed pipeline infeasible at line rate";
  if not det then failwith "compose bench: non-deterministic across --jobs"
