(* Training-engine performance: per-epoch wall clock of the batched GEMM
   engine vs the per-sample reference at batch 32, and end-to-end DSE epoch
   budget with vs without successive-halving rung pruning at a fixed quality
   floor. The run also re-checks two contracts the speedups rest on: the
   batched engine must learn bit-identical parameters, and a pruned search
   must stay deterministic at any worker count.

   Results land in BENCH_train.json so the perf trajectory is tracked across
   PRs. *)

open Homunculus_alchemy
open Homunculus_core
module Ml = Homunculus_ml
module Bo = Homunculus_bo
module Par = Homunculus_par.Par
module Rng = Homunculus_util.Rng
module Mat = Homunculus_tensor.Mat
module Json = Homunculus_util.Json
module Nslkdd = Homunculus_netdata.Nslkdd

(* Per-epoch wall clock: same data, same seed, same shuffle order — the only
   difference is the engine, so the ratio is pure engine speedup. The two
   engines run in alternating reps (so a load spike hits both, not one side)
   and each side keeps its minimum: the rep least disturbed by scheduler
   noise, training the identical model every time (same seeds throughout). *)
let time_engines ~data ~epochs ~reps ~optimizer =
  let run engine =
    let mlp =
      Ml.Mlp.create (Rng.create 11)
        ~input_dim:(Ml.Dataset.n_features data)
        ~hidden:[| 32; 16 |] ~output_dim:data.Ml.Dataset.n_classes ()
    in
    let config =
      {
        Ml.Train.default_config with
        Ml.Train.epochs;
        batch_size = 32;
        patience = None;
        engine;
        optimizer;
      }
    in
    let t0 = Unix.gettimeofday () in
    let h = Ml.Train.fit (Rng.create 12) mlp config data in
    let dt = Unix.gettimeofday () -. t0 in
    (dt /. float_of_int h.Ml.Train.epochs_run, mlp)
  in
  let ps, m_ref = run Ml.Train.Per_sample in
  let bt, m_bat = run Ml.Train.Batched in
  let best_ps = ref ps and best_bt = ref bt in
  for _ = 2 to reps do
    let ps, _ = run Ml.Train.Per_sample in
    if ps < !best_ps then best_ps := ps;
    let bt, _ = run Ml.Train.Batched in
    if bt < !best_bt then best_bt := bt
  done;
  (!best_ps, !best_bt, m_ref, m_bat)

(* Engine step cost in isolation: repeated forward/backward over one resident
   batch vs the per-sample reference on the same rows — no optimizer, no
   shuffling, no gather, so the ratio is the pure kernel speedup. *)
let time_steps ~data ~reps =
  let nf = Ml.Dataset.n_features data in
  let make () =
    Ml.Mlp.create (Rng.create 11) ~input_dim:nf ~hidden:[| 32; 16 |]
      ~output_dim:data.Ml.Dataset.n_classes ()
  in
  let mlp_b = make () in
  let ws = Ml.Mlp.make_workspace mlp_b ~batch:32 in
  let targets = Ml.Dataset.target_matrix data in
  let nc = data.Ml.Dataset.n_classes in
  for k = 0 to 31 do
    Array.blit data.Ml.Dataset.x.(k) 0 ws.Ml.Mlp.x.Mat.data (k * nf) nf;
    Array.blit targets.Mat.data (k * nc) ws.Ml.Mlp.target.Mat.data (k * nc) nc
  done;
  let mlp_s = make () in
  let target_row = Array.make nc 0. in
  let inner = 2000 in
  let time_min f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to inner do
        f ()
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int inner in
      if dt < !best then best := dt
    done;
    !best
  in
  let batched = time_min (fun () -> Ml.Mlp.train_batch mlp_b ws) /. 32. in
  let per_sample =
    time_min (fun () ->
        for k = 0 to 31 do
          Array.blit targets.Mat.data (k * nc) target_row 0 nc;
          ignore
            (Ml.Mlp.train_sample mlp_s ~x:data.Ml.Dataset.x.(k)
               ~target:target_row)
        done)
    /. 32.
  in
  (per_sample, batched)

let params_equal a b =
  let pa = Ml.Mlp.parameter_buffers a and pb = Ml.Mlp.parameter_buffers b in
  Array.length pa = Array.length pb && Array.for_all2 ( = ) pa pb

(* The rung settings the pruned-DSE comparison runs under: a three-rung
   ladder starting earlier than the library default (successive halving pays
   mostly at the first rung — losers stopped at 15% of their budget instead
   of 25%), so the saving is visible even at smoke-test budgets. *)
let asha_settings =
  {
    Bo.Asha.rung_fractions = [| 0.15; 0.35; 0.6 |];
    keep_frac = 0.4;
    min_observations = 3;
  }

let epochs_of_history history =
  List.fold_left
    (fun acc e ->
      acc
      + int_of_float
          (Option.value
             (List.assoc_opt "epochs_trained" e.Bo.History.metadata)
             ~default:0.))
    0
    (Bo.History.entries history)

let pruned_count history =
  List.length
    (List.filter (fun e -> e.Bo.History.pruned) (Bo.History.entries history))

let dse_run ~prune =
  let options =
    {
      Bench_config.search_options with
      Compiler.emit_code = false;
      prune = (if prune then Some asha_settings else None);
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Compiler.search_model ~options (Platform.taurus ()) (Apps.ad_spec ()) in
  let dt = Unix.gettimeofday () -. t0 in
  let epochs =
    List.fold_left
      (fun acc (_, h) -> acc + epochs_of_history h)
      0 r.Compiler.histories
  in
  let pruned =
    List.fold_left (fun acc (_, h) -> acc + pruned_count h) 0 r.Compiler.histories
  in
  (r.Compiler.artifact.Evaluator.objective, epochs, pruned, dt)

let fingerprint history =
  (* Order-sensitive digest of the full evaluation log, pruned flags
     included: a scheduling-dependent pruning decision shows up here. *)
  List.fold_left
    (fun acc e ->
      let h =
        Hashtbl.hash
          ( Bo.Config.to_string e.Bo.History.config,
            e.Bo.History.objective,
            e.Bo.History.feasible,
            e.Bo.History.pruned )
      in
      (acc * 1_000_003) lxor h)
    0
    (Bo.History.entries history)

let det_run ~workers =
  Par.set_default_jobs workers;
  let options =
    {
      Bench_config.search_options with
      Compiler.emit_code = false;
      bo_settings =
        {
          Bench_config.search_options.Compiler.bo_settings with
          Bo.Optimizer.n_init = 4;
          n_iter = 8;
          batch_size = 4;
        };
      prune = Some asha_settings;
    }
  in
  let r = Compiler.search_model ~options (Platform.taurus ()) (Apps.ad_spec ()) in
  List.fold_left (fun acc (_, h) -> (acc * 7) lxor fingerprint h) 0
    r.Compiler.histories

let run () =
  Bench_config.section "Training engine: batched GEMM + rung pruning";
  (* Per-epoch speedup, batched vs per-sample. *)
  let rng = Rng.create Bench_config.seed in
  (* 1000 samples keeps the whole training set L2-resident, so the comparison
     measures the engines rather than DRAM stalls on the shuffled gather
     (which hit both paths identically and only dilute the ratio). The full
     run buys precision with more repetitions, not more rows. *)
  let n_train = 1000 in
  let data, _ = Nslkdd.generate_split rng ~n_train ~n_test:10 () in
  let epochs = if Bench_config.fast then 6 else 12 in
  let reps = if Bench_config.fast then 7 else 13 in
  (* Warm-up: touch both code paths once. *)
  let (_ : float * float * Ml.Mlp.t * Ml.Mlp.t) =
    time_engines ~data ~epochs:1 ~reps:1
      ~optimizer:(Ml.Optimizer.sgd ~lr:1e-2 ())
  in
  (* Headline per-epoch comparison under SGD: the optimizer step is the same
     shared code running once per batch in both engines, so the cheaper it
     is, the more the epoch ratio reflects the forward/backward engines
     themselves. Adam's heavier fixed per-batch cost (three divisions and a
     square root per parameter) dilutes both sides equally and is reported
     as a secondary entry. *)
  let per_sample_s, batched_s, _, _ =
    time_engines ~data ~epochs ~reps ~optimizer:(Ml.Optimizer.sgd ~lr:1e-2 ())
  in
  let speedup = per_sample_s /. batched_s in
  (* Bit-identity is checked under the default Adam config — the stricter
     setting, since Adam state evolves from every gradient bit. *)
  let ps_adam_s, bt_adam_s, m_ref, m_bat =
    time_engines ~data ~epochs ~reps:(1 + (reps / 2))
      ~optimizer:Ml.Train.default_config.Ml.Train.optimizer
  in
  let speedup_adam = ps_adam_s /. bt_adam_s in
  let identical = params_equal m_ref m_bat in
  let step_ps, step_bt = time_steps ~data ~reps in
  let step_speedup = step_ps /. step_bt in
  Printf.printf
    "  per-epoch (%d samples, batch 32, sgd): per-sample %.4f s, batched \
     %.4f s (%.2fx); adam: %.2fx; params %s\n"
    n_train per_sample_s batched_s speedup speedup_adam
    (if identical then "bit-identical" else "DIVERGED");
  Printf.printf
    "  per-step kernels (no optimizer): per-sample %.3f us, batched %.3f us \
     (%.2fx)\n"
    (1e6 *. step_ps) (1e6 *. step_bt) step_speedup;
  (* DSE epoch budget with vs without pruning, at a fixed quality floor: the
     pruned search must reach 99% of the unpruned search's best objective.
     (The two runs share seed and budget but diverge in exploration once the
     histories differ, so exact equality is not the bar — matched quality at
     a fraction of the epoch budget is.) *)
  let quality_floor = 0.99 in
  let best_full, epochs_full, _, dt_full = dse_run ~prune:false in
  let best_pruned, epochs_pruned, n_pruned, dt_pruned = dse_run ~prune:true in
  let ratio = float_of_int epochs_pruned /. float_of_int epochs_full in
  let floor_met = best_pruned >= quality_floor *. best_full in
  Printf.printf
    "  DSE (AD): full %d epochs -> best %.4f (%.1f s); pruned %d epochs \
     (%.0f%%, %d candidates stopped) -> best %.4f (%.1f s), %s\n"
    epochs_full best_full dt_full epochs_pruned (100. *. ratio) n_pruned
    best_pruned dt_pruned
    (if floor_met then "above the 99% quality floor"
     else "BELOW the 99% quality floor");
  (* Determinism: a pruned search must give the identical history at any
     worker count (fixed seed, fixed proposal batch size). *)
  let det_ok = det_run ~workers:1 = det_run ~workers:4 in
  Printf.printf "  determinism with pruning (batch 4, 1 vs 4 workers): %s\n"
    (if det_ok then "identical histories" else "MISMATCH");
  let json =
    Json.Object
      [
        ("bench", Json.String "train");
        ("fast", Json.Bool Bench_config.fast);
        ( "per_epoch",
          Json.Object
            [
              ("n_samples", Json.Number (float_of_int n_train));
              ("batch_size", Json.Number 32.);
              ("optimizer", Json.String "sgd");
              ("per_sample_s", Json.Number per_sample_s);
              ("batched_s", Json.Number batched_s);
              ("speedup", Json.Number speedup);
              ("per_sample_adam_s", Json.Number ps_adam_s);
              ("batched_adam_s", Json.Number bt_adam_s);
              ("speedup_adam", Json.Number speedup_adam);
              ("identical_params", Json.Bool identical);
            ] );
        ( "per_step",
          Json.Object
            [
              ("per_sample_us", Json.Number (1e6 *. step_ps));
              ("batched_us", Json.Number (1e6 *. step_bt));
              ("speedup", Json.Number step_speedup);
            ] );
        ( "dse",
          Json.Object
            [
              ("best_full", Json.Number best_full);
              ("best_pruned", Json.Number best_pruned);
              ("quality_floor", Json.Number quality_floor);
              ("floor_met", Json.Bool floor_met);
              ("epochs_full", Json.Number (float_of_int epochs_full));
              ("epochs_pruned", Json.Number (float_of_int epochs_pruned));
              ("epoch_ratio", Json.Number ratio);
              ("candidates_pruned", Json.Number (float_of_int n_pruned));
              ("wall_full_s", Json.Number dt_full);
              ("wall_pruned_s", Json.Number dt_pruned);
            ] );
        ("deterministic", Json.Bool det_ok);
      ]
  in
  Out_channel.with_open_text "BENCH_train.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string json);
      Out_channel.output_char oc '\n');
  Bench_config.note "  wrote BENCH_train.json\n"
