(* Hand-tuned baseline models (paper §5, "Baseline Applications"): fixed
   architectures taken from the prior work the paper compares against,
   trained with a fixed, conservative recipe — exactly what a careful human
   would ship without platform-aware design-space exploration.

   - AD: the Taurus/WINCOM anomaly-detection DNN (two small hidden layers).
   - TC: the hand-written DNN baseline the paper builds for IIsy's task,
     "3 hidden layers (10, 10, 5 neurons)".
   - BD: the FlowLens-derived model, "4 hidden layers of 10 neurons each". *)

open Homunculus_alchemy
open Homunculus_backends
open Homunculus_ml
module Rng = Homunculus_util.Rng

type result = {
  name : string;
  model_ir : Model_ir.t;
  f1 : float;  (** on the spec's test split, in [0, 1] *)
  params : int;
}

(* Each baseline keeps the training recipe of the work it came from — fixed
   once by its authors, with no platform-aware tuning. *)
let ad_recipe =
  (* Early DNN-IDS practice: plain SGD, short budget. *)
  {
    Train.epochs = 12;
    batch_size = 64;
    optimizer = Optimizer.sgd ~lr:0.01 ();
    patience = None;
    shuffle_each_epoch = true;
    lr_decay_per_epoch = 1.;
    engine = Train.Batched;
  }

let tc_recipe =
  (* The hand-written IIsy-comparison DNN: plain SGD, short budget. *)
  { ad_recipe with Train.epochs = 15 }

let bd_recipe =
  (* FlowLens-era training: Adam with early stopping disabled. *)
  { Train.default_config with Train.patience = None }

let train_fixed ~name ~hidden ~recipe spec =
  let data = Model_spec.load spec in
  let scaler, train = Scaler.fit_dataset data.Model_spec.train in
  let test = Scaler.apply_dataset scaler data.Model_spec.test in
  let input_dim = Dataset.n_features train in
  let mlp =
    Mlp.create
      (Rng.create Bench_config.seed)
      ~input_dim ~hidden ~output_dim:train.Dataset.n_classes ()
  in
  let _ = Train.fit (Rng.create (Bench_config.seed + 9)) mlp recipe train in
  let f1 = Train.evaluate_f1 mlp test in
  let model_ir = Model_ir.of_mlp ~name mlp in
  { name; model_ir; f1; params = Model_ir.param_count model_ir }

let ad () =
  train_fixed ~name:"Base-AD" ~hidden:[| 12; 8 |] ~recipe:ad_recipe (Apps.ad_spec ())

let tc () =
  train_fixed ~name:"Base-TC" ~hidden:[| 10; 10; 5 |] ~recipe:tc_recipe
    (Apps.tc_spec ())

let bd () =
  train_fixed ~name:"Base-BD" ~hidden:[| 10; 10; 10; 10 |] ~recipe:bd_recipe
    (Apps.bd_spec ())
