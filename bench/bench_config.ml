(* Shared knobs for the reproduction harness. Set HOMUNCULUS_BENCH_FAST=1 to
   run a scaled-down sweep (smaller datasets, fewer BO iterations) for smoke
   testing; the default budget reproduces the paper-shaped results. *)

module Bo = Homunculus_bo
open Homunculus_core

let fast =
  match Sys.getenv_opt "HOMUNCULUS_BENCH_FAST" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let seed = 2023 (* ASPLOS'23 *)

let ad_train, ad_test = if fast then (1200, 500) else (3000, 1200)
let tc_train, tc_test = if fast then (1200, 500) else (3000, 1200)
let bd_train_flows, bd_test_flows = if fast then (120, 60) else (300, 120)

let search_options =
  let settings =
    if fast then
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init = 5;
        n_iter = 10;
        pool_size = 64;
      }
    else
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init = 10;
        n_iter = 30;
        pool_size = 150;
      }
  in
  { Compiler.default_options with Compiler.seed; bo_settings = settings }

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.printf fmt

(* Several experiments share BENCH_serve.json (loadgen owns the top level,
   serve owns the "autopilot" member); read-modify-write keeps whichever ran
   first intact regardless of order. *)
module Json = Homunculus_util.Json

let bench_members path =
  if Sys.file_exists path then
    try
      match
        Json.of_string (In_channel.with_open_text path In_channel.input_all)
      with
      | Json.Object members -> members
      | _ -> []
    with _ -> []
  else []

let bench_member ~path ~key = List.assoc_opt key (bench_members path)

let set_bench_member ~path ~key value =
  let members = List.remove_assoc key (bench_members path) @ [ (key, value) ] in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        (Json.to_string ~pretty:true (Json.Object members));
      Out_channel.output_char oc '\n')
