(* Parallel DSE scaling: end-to-end Bayesian-optimization wall clock at
   --jobs 1/2/4, mirroring what `homc compile --jobs N` configures (an
   N-worker pool and an N-wide constant-liar proposal batch).

   Two effects compound here: batching fits the surrogate [n_iter / jobs]
   times instead of [n_iter] times for the same evaluation budget (an
   algorithmic win that shows up even on one core), and the pool spreads
   tree fitting, candidate scoring, and black-box evaluations across
   domains (a hardware win on multi-core hosts). The run also re-checks the
   determinism contract: at a fixed batch size, the history must be
   bit-identical at any worker count.

   Results land in BENCH_dse.json so the perf trajectory is tracked across
   PRs. *)

module Bo = Homunculus_bo
module Par = Homunculus_par.Par
module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json

let space () =
  Bo.Design_space.create
    [
      Bo.Param.int "neurons" ~lo:8 ~hi:128;
      Bo.Param.int "layers" ~lo:1 ~hi:4;
      Bo.Param.real "learning_rate" ~log_scale:true ~lo:1e-4 ~hi:1e-1;
      Bo.Param.real "weight_decay" ~lo:0. ~hi:0.1;
      Bo.Param.ordinal "batch" [| 16.; 32.; 64.; 128. |];
      Bo.Param.categorical "activation" [| "relu"; "tanh" |];
    ]

(* A cheap analytic black box keeps the measurement honest about BO overhead
   (surrogate fits + pool scoring dominate real DSE runs once training is
   cached or fast); [spin] adds a small deterministic training-cost stand-in
   so the batch path also overlaps some per-evaluation work. *)
let spin_iters = 20_000

let eval space config =
  let p = Bo.Design_space.encode space config in
  let acc = ref 0. in
  for i = 1 to spin_iters do
    acc := !acc +. (1. /. float_of_int i)
  done;
  let quality =
    !acc *. 0.
    +. Array.fold_left (fun a v -> a -. ((v -. 0.6) *. (v -. 0.6))) 1.5 p
  in
  {
    Bo.Optimizer.objective = quality;
    feasible = p.(0) +. p.(1) < 1.6;
    pruned = false;
    metadata = [];
  }

let settings ~budget ~jobs =
  let n_init = Stdlib.max 3 (budget / 4) in
  {
    Bo.Optimizer.default_settings with
    Bo.Optimizer.n_init;
    n_iter = budget - n_init;
    pool_size = (if Bench_config.fast then 64 else 150);
    batch_size = jobs;
  }

let run_once ~budget ~jobs =
  let sp = space () in
  let pool = Par.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let history =
    Bo.Optimizer.maximize (Rng.create Bench_config.seed)
      ~settings:(settings ~budget ~jobs) ~pool sp ~f:(eval sp)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Par.shutdown pool;
  (dt, history)

let fingerprint history =
  (* Order-sensitive digest of the full evaluation log. *)
  List.fold_left
    (fun acc e ->
      let h =
        Hashtbl.hash
          ( Bo.Config.to_string e.Bo.History.config,
            e.Bo.History.objective,
            e.Bo.History.feasible )
      in
      (acc * 1_000_003) lxor h)
    0
    (Bo.History.entries history)

let run () =
  Bench_config.section "DSE scaling: batched BO at --jobs 1/2/4";
  let budget = if Bench_config.fast then 24 else 100 in
  (* Warm-up run: touch every code path once so allocator and page-cache
     effects don't land on the jobs=1 measurement. *)
  let (_ : float * Bo.History.t) = run_once ~budget:(budget / 4) ~jobs:2 in
  let job_counts = [ 1; 2; 4 ] in
  let results =
    List.map
      (fun jobs ->
        let dt, history = run_once ~budget ~jobs in
        (jobs, dt, history))
      job_counts
  in
  let base =
    match results with (_, dt, _) :: _ -> dt | [] -> assert false
  in
  List.iter
    (fun (jobs, dt, history) ->
      let best =
        match Bo.History.best history with
        | Some e -> e.Bo.History.objective
        | None -> Float.nan
      in
      Printf.printf
        "  jobs %d: %6.2f s  (speedup %.2fx, %d evals, best %.4f)\n" jobs dt
        (base /. dt) (Bo.History.length history) best)
    results;
  (* Determinism: same seed and batch size must give the identical history
     whether the pool has 1 worker or 4. *)
  let sp = space () in
  let run_det workers =
    let pool = Par.create ~jobs:workers () in
    let h =
      Bo.Optimizer.maximize (Rng.create Bench_config.seed)
        ~settings:(settings ~budget:(Stdlib.min budget 24) ~jobs:4)
        ~pool sp ~f:(eval sp)
    in
    Par.shutdown pool;
    fingerprint h
  in
  let det_ok = run_det 1 = run_det 4 in
  Printf.printf "  determinism (batch 4, 1 vs 4 workers): %s\n"
    (if det_ok then "identical histories" else "MISMATCH");
  let json =
    Json.Object
      [
        ("bench", Json.String "dse");
        ("fast", Json.Bool Bench_config.fast);
        ("budget", Json.Number (float_of_int budget));
        ("host_cores", Json.Number (float_of_int (Domain.recommended_domain_count ())));
        ("deterministic", Json.Bool det_ok);
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, dt, _) ->
                 Json.Object
                   [
                     ("jobs", Json.Number (float_of_int jobs));
                     ("wall_s", Json.Number dt);
                     ("speedup", Json.Number (base /. dt));
                   ])
               results) );
      ]
  in
  Out_channel.with_open_text "BENCH_dse.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string json);
      Out_channel.output_char oc '\n');
  Bench_config.note "  wrote BENCH_dse.json\n"
