(* Parallel DSE scaling + the learned cost-model pre-filter A/B.

   Section 1 (scaling): end-to-end Bayesian-optimization wall clock at
   --jobs 1/2/4, mirroring what `homc compile --jobs N` configures (an
   N-worker pool and an N-wide constant-liar proposal batch). Two effects
   compound: batching fits the surrogate [n_iter / jobs] times instead of
   [n_iter] times for the same evaluation budget, and the pool spreads tree
   fitting, candidate scoring, and black-box evaluations across domains.
   The run also re-checks the determinism contract: at a fixed batch size,
   the history must be bit-identical at any worker count.

   Section 2 (cost model): the real compiler inner loop — train, lower,
   estimate — on a resource-constrained Taurus grid, with the learned
   feasibility pre-filter off vs on at jobs=1 and a fixed seed. The filter
   must deliver wall-clock speedup by skipping exact evaluations of
   clearly-infeasible candidates while leaving the winning artifact
   bit-for-bit identical. Per-candidate train/lower/estimate timing comes
   from Evaluator.Timing, so the JSON records where the saved time lived.

   Section 3 (refit cadence): surrogate refit batching (refit_every /
   refit_threshold) A/B on the synthetic loop, counting actual fits via
   [on_refit] and asserting the history stays bit-identical.

   Section 4 (differential validation): Check.Costmodel_eval re-evaluates
   every skipped candidate exactly and counts feasible-winner vetoes — the
   contract requires zero.

   Results land in BENCH_dse.json so the perf trajectory is tracked across
   PRs. *)

module Bo = Homunculus_bo
module Par = Homunculus_par.Par
module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json
module Compiler = Homunculus_core.Compiler
module Evaluator = Homunculus_core.Evaluator
module Platform = Homunculus_alchemy.Platform
module Model_spec = Homunculus_alchemy.Model_spec
module Nslkdd = Homunculus_netdata.Nslkdd
module Costmodel_eval = Homunculus_check.Costmodel_eval
module Resilience = Homunculus_resilience
module Dist = Homunculus_dist

(* Cores as (raw, effective): [raw] is the /proc/cpuinfo processor count (0
   when unreadable), which containers and some VMs under-report — earlier
   runs recorded host_cores: 1 next to a measured 2.2x speedup at 4 jobs.
   [effective] folds in the runtime's own parallelism estimate, which sees
   the scheduling reality the speedups actually ran on; both land in the
   JSON so a suspicious ratio can be audited. *)
let host_cores () =
  let raw =
    match
      In_channel.with_open_text "/proc/cpuinfo" (fun ic ->
          let count = ref 0 in
          let rec loop () =
            match In_channel.input_line ic with
            | Some line ->
                if String.length line >= 9 && String.sub line 0 9 = "processor"
                then incr count;
                loop ()
            | None -> ()
          in
          loop ();
          !count)
    with
    | n -> n
    | exception _ -> 0
  in
  (raw, Stdlib.max raw (Domain.recommended_domain_count ()))

let space () =
  Bo.Design_space.create
    [
      Bo.Param.int "neurons" ~lo:8 ~hi:128;
      Bo.Param.int "layers" ~lo:1 ~hi:4;
      Bo.Param.real "learning_rate" ~log_scale:true ~lo:1e-4 ~hi:1e-1;
      Bo.Param.real "weight_decay" ~lo:0. ~hi:0.1;
      Bo.Param.ordinal "batch" [| 16.; 32.; 64.; 128. |];
      Bo.Param.categorical "activation" [| "relu"; "tanh" |];
    ]

(* A cheap analytic black box keeps the measurement honest about BO overhead
   (surrogate fits + pool scoring dominate real DSE runs once training is
   cached or fast); [spin] adds a small deterministic training-cost stand-in
   so the batch path also overlaps some per-evaluation work. *)
let spin_iters = 20_000

let eval space config =
  let p = Bo.Design_space.encode space config in
  let acc = ref 0. in
  for i = 1 to spin_iters do
    acc := !acc +. (1. /. float_of_int i)
  done;
  let quality =
    !acc *. 0.
    +. Array.fold_left (fun a v -> a -. ((v -. 0.6) *. (v -. 0.6))) 1.5 p
  in
  {
    Bo.Optimizer.objective = quality;
    feasible = p.(0) +. p.(1) < 1.6;
    pruned = false;
    metadata = [];
  }

let settings ~budget ~jobs =
  let n_init = Stdlib.max 3 (budget / 4) in
  {
    Bo.Optimizer.default_settings with
    Bo.Optimizer.n_init;
    n_iter = budget - n_init;
    pool_size = (if Bench_config.fast then 64 else 150);
    batch_size = jobs;
  }

let run_once ~budget ~jobs =
  let sp = space () in
  let pool = Par.create ~jobs () in
  let t0 = Unix.gettimeofday () in
  let history =
    Bo.Optimizer.maximize (Rng.create Bench_config.seed)
      ~settings:(settings ~budget ~jobs) ~pool sp ~f:(eval sp)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Par.shutdown pool;
  (dt, history)

let fingerprint history =
  (* Order-sensitive digest of the full evaluation log. *)
  List.fold_left
    (fun acc e ->
      let h =
        Hashtbl.hash
          ( Bo.Config.to_string e.Bo.History.config,
            e.Bo.History.objective,
            e.Bo.History.feasible )
      in
      (acc * 1_000_003) lxor h)
    0
    (Bo.History.entries history)

(* ---------------------------------------------------------------- *)
(* Section 2: cost-model pre-filter A/B on the real compiler path.  *)

(* A Taurus grid small enough that a large share of the DNN design space
   blows the compute-unit budget: that is exactly the regime the filter is
   for, and the regime where the exact arm pays full training cost for
   candidates the estimator then rejects. *)
let cm_platform () =
  Platform.with_resources (Platform.taurus ()) ~rows:10 ~cols:10

let cm_budget = if Bench_config.fast then 24 else 100

let cm_spec () =
  let n_train, n_test = if Bench_config.fast then (300, 150) else (700, 300) in
  Model_spec.make ~name:"AD-cm" ~metric:Model_spec.F1
    ~algorithms:[ Model_spec.Dnn ]
    ~loader:(fun () ->
      let rng = Rng.create Bench_config.seed in
      let train, test = Nslkdd.generate_split rng ~n_train ~n_test () in
      Model_spec.data ~train ~test)
    ()

(* Exploration-heavy schedule: on an 88%-infeasible grid, the random phase
   is where an exact-only search burns most of its budget training doomed
   candidates — exactly the spend the filter exists to cut. The guided
   phase's own feasibility-weighted acquisition already avoids the region,
   so a warm-up-light schedule would leave the filter little to do. *)
let cm_options ~cost_model =
  let n_init = cm_budget * 7 / 10 in
  {
    Compiler.default_options with
    Compiler.seed = Bench_config.seed;
    bo_settings =
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init;
        n_iter = cm_budget - n_init;
        pool_size = (if Bench_config.fast then 64 else 150);
        batch_size = 1;
      };
    emit_code = false;
    cost_model;
  }

type cm_arm = {
  wall_s : float;
  timing : Evaluator.Timing.snapshot;
  result : Compiler.model_result;
}

let run_cm_arm ~platform ~spec ~cost_model =
  Evaluator.Timing.reset ();
  let t0 = Unix.gettimeofday () in
  let result = Compiler.search_model ~options:(cm_options ~cost_model) platform spec in
  let wall_s = Unix.gettimeofday () -. t0 in
  { wall_s; timing = Evaluator.Timing.snapshot (); result }

let artifact_fingerprint (a : Evaluator.artifact) =
  ( a.Evaluator.algorithm,
    Bo.Config.to_string a.Evaluator.config,
    Int64.bits_of_float a.Evaluator.objective )

let json_of_arm name (arm : cm_arm) =
  let t = arm.timing in
  let per_candidate total =
    if t.Evaluator.Timing.evaluations = 0 then 0.
    else total /. float_of_int t.Evaluator.Timing.evaluations
  in
  ( name,
    Json.Object
      [
        ("wall_s", Json.Number arm.wall_s);
        ("evaluations", Json.Number (float_of_int t.Evaluator.Timing.evaluations));
        ("estimates", Json.Number (float_of_int t.Evaluator.Timing.estimates));
        ("train_s", Json.Number t.Evaluator.Timing.train_s);
        ("lower_s", Json.Number t.Evaluator.Timing.lower_s);
        ("estimate_s", Json.Number t.Evaluator.Timing.estimate_s);
        ("per_candidate_train_s", Json.Number (per_candidate t.Evaluator.Timing.train_s));
        ("per_candidate_lower_s", Json.Number (per_candidate t.Evaluator.Timing.lower_s));
        ("per_candidate_estimate_s", Json.Number (per_candidate t.Evaluator.Timing.estimate_s));
      ] )

let run_cost_model_section () =
  Bench_config.section "DSE cost model: learned pre-filter off vs on (jobs 1)";
  let platform = cm_platform () in
  let spec = cm_spec () in
  (* Warm-up: load + cache the dataset so neither timed arm pays for it. *)
  let (_ : Model_spec.data) = Model_spec.load spec in
  let off = run_cm_arm ~platform ~spec ~cost_model:None in
  (* The DNN feature vector carries the analytic skeleton-feasibility bit,
     so a near-zero predicted p(feasible) is close to certain here: waive
     the 3-sigma winner guard below p = 0.1 instead of the default 0.02
     (which demands a unanimous 30-tree vote). *)
  let on =
    run_cm_arm ~platform ~spec
      ~cost_model:
        (Some
           {
             Bo.Cost_model.default_settings with
             Bo.Cost_model.min_observations = 6;
             conviction = 0.15;
             margin = 0.12;
           })
  in
  let speedup = off.wall_s /. on.wall_s in
  let est_off = off.timing.Evaluator.Timing.estimates in
  let est_on = on.timing.Evaluator.Timing.estimates in
  let est_reduction =
    if est_off = 0 then 0.
    else 1. -. (float_of_int est_on /. float_of_int est_off)
  in
  let winner_identical =
    artifact_fingerprint off.result.Compiler.artifact
    = artifact_fingerprint on.result.Compiler.artifact
  in
  let stats =
    match on.result.Compiler.cost_stats with
    | Some s -> s
    | None -> Bo.Cost_model.zero_stats
  in
  Printf.printf "  off: %6.2f s  (%d exact evals, %d estimator calls)\n"
    off.wall_s off.timing.Evaluator.Timing.evaluations est_off;
  Printf.printf "  on:  %6.2f s  (%d exact evals, %d estimator calls, %s)\n"
    on.wall_s on.timing.Evaluator.Timing.evaluations est_on
    (Bo.Cost_model.stats_summary stats);
  Printf.printf
    "  speedup %.2fx, estimator calls down %.0f%%, winning artifact %s\n"
    speedup (100. *. est_reduction)
    (if winner_identical then "bit-identical" else "DIVERGED");
  let json =
    Json.Object
      [
        ("budget", Json.Number (float_of_int cm_budget));
        ("jobs", Json.Number 1.);
        json_of_arm "off" off;
        json_of_arm "on" on;
        ("speedup", Json.Number speedup);
        ("estimate_reduction", Json.Number est_reduction);
        ("skipped", Json.Number (float_of_int stats.Bo.Cost_model.skipped));
        ("refits", Json.Number (float_of_int stats.Bo.Cost_model.refits));
        ("winner_identical", Json.Bool winner_identical);
      ]
  in
  (json, winner_identical)

(* ---------------------------------------------------------------- *)
(* Section 3: surrogate refit cadence A/B (refit_every 1 vs 4).     *)

let run_refit_arm ~budget ~jobs ~refit_every ~refit_threshold =
  let sp = space () in
  let refits = ref 0 in
  let pool = Par.create ~jobs () in
  let base = settings ~budget ~jobs:1 in
  let t0 = Unix.gettimeofday () in
  let history =
    Bo.Optimizer.maximize (Rng.create Bench_config.seed)
      ~settings:{ base with Bo.Optimizer.refit_every; refit_threshold }
      ~pool ~on_refit:(fun _ -> incr refits)
      sp ~f:(eval sp)
  in
  let dt = Unix.gettimeofday () -. t0 in
  Par.shutdown pool;
  (dt, !refits, fingerprint history)

let run_refit_section ~budget =
  Bench_config.section "DSE surrogate refit cadence: every round vs every 4";
  let n_init = Stdlib.max 3 (budget / 4) in
  let dt1, refits1, _ =
    run_refit_arm ~budget ~jobs:1 ~refit_every:1 ~refit_threshold:0
  in
  let dt4, refits4, fp4 =
    run_refit_arm ~budget ~jobs:1 ~refit_every:4 ~refit_threshold:n_init
  in
  (* A sparser cadence legitimately changes the proposals (the surrogate is
     staler between fits); the contract it must keep is determinism — the
     same cadence yields a bit-identical history at any worker count. *)
  let _, _, fp4' =
    run_refit_arm ~budget ~jobs:4 ~refit_every:4 ~refit_threshold:n_init
  in
  let deterministic = fp4 = fp4' in
  let saving = (dt1 -. dt4) /. dt1 in
  Printf.printf
    "  every 1: %6.2f s (%d refits)   every 4: %6.2f s (%d refits)\n" dt1
    refits1 dt4 refits4;
  Printf.printf "  timing saving %.0f%%, cadence-4 determinism (1 vs 4 workers): %s\n"
    (100. *. saving)
    (if deterministic then "identical histories" else "MISMATCH");
  Json.Object
    [
      ("refit_every_1_wall_s", Json.Number dt1);
      ("refit_every_1_fits", Json.Number (float_of_int refits1));
      ("refit_every_4_wall_s", Json.Number dt4);
      ("refit_every_4_fits", Json.Number (float_of_int refits4));
      ("timing_saving", Json.Number saving);
      ("deterministic", Json.Bool deterministic);
    ]

(* ---------------------------------------------------------------- *)
(* Section 4: differential validation of the filter's skips.        *)

let run_costmodel_eval_section () =
  Bench_config.section "DSE cost model: differential validation of skips";
  let sp = space () in
  let features = Bo.Design_space.encode sp in
  let budget = if Bench_config.fast then 40 else 80 in
  let n_init = Stdlib.max 3 (budget / 4) in
  let report =
    Costmodel_eval.run ~seed:Bench_config.seed
      ~settings:
        {
          Bo.Optimizer.default_settings with
          Bo.Optimizer.n_init;
          n_iter = budget - n_init;
          pool_size = 64;
        }
      ~cost_settings:
        { Bo.Cost_model.default_settings with Bo.Cost_model.min_observations = 10 }
      ~space:sp ~features ~eval:(eval sp) ()
  in
  Printf.printf "  %s\n" (Costmodel_eval.summary report);
  Json.Object
    [
      ("evaluated", Json.Number (float_of_int report.Costmodel_eval.evaluated));
      ("skipped", Json.Number (float_of_int report.Costmodel_eval.skipped));
      ( "mispredicted_feasible",
        Json.Number (float_of_int report.Costmodel_eval.mispredicted_feasible) );
      ( "feasible_winner_vetoes",
        Json.Number (float_of_int report.Costmodel_eval.feasible_winner_vetoes) );
      ("winner_matched", Json.Bool report.Costmodel_eval.winner_matched);
    ]

(* ---------------------------------------------------------------- *)
(* Section 5: journal append throughput — fsync per record vs group  *)
(* commit. The group-commit contract: every line still written whole, *)
(* a crash loses at most the unsynced tail, replay re-evaluates it.  *)

let run_journal_section () =
  Bench_config.section
    "Journal append throughput: fsync every record vs group commit (32)";
  let sp = space () in
  let rng = Rng.create Bench_config.seed in
  let configs = Array.init 64 (fun _ -> Bo.Design_space.sample rng sp) in
  let n = if Bench_config.fast then 400 else 2000 in
  let arm fsync_every =
    let path = Filename.temp_file "homunculus-journal" ".jsonl" in
    let journal = Resilience.Journal.open_ ~fsync_every path in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      ignore
        (Resilience.Journal.append journal
           {
             Resilience.Journal.scope = "bench/dnn";
             index = i;
             config = configs.(i mod Array.length configs);
             objective = float_of_int i /. float_of_int n;
             feasible = true;
             pruned = false;
             metadata = [];
             failure = None;
             kind = Resilience.Journal.Exact;
           })
    done;
    let dt = Unix.gettimeofday () -. t0 in
    Resilience.Journal.close journal;
    let loaded = Resilience.Journal.loaded (Resilience.Journal.load path) in
    Sys.remove path;
    (float_of_int n /. dt, loaded)
  in
  let rps_1, loaded_1 = arm 1 in
  let rps_32, loaded_32 = arm 32 in
  (* Group commit may not beat per-record fsync where fsync is already a
     no-op (tmpfs, aggressive write caches); the numbers are the point. *)
  let intact = loaded_1 = n && loaded_32 = n in
  Printf.printf
    "  fsync every 1: %8.0f rec/s   every 32: %8.0f rec/s  (%.2fx, %d \
     records, replay %s)\n"
    rps_1 rps_32 (rps_32 /. rps_1) n
    (if intact then "intact" else "LOSSY");
  Json.Object
    [
      ("records", Json.Number (float_of_int n));
      ("per_second_fsync_1", Json.Number rps_1);
      ("per_second_fsync_32", Json.Number rps_32);
      ("group_commit_speedup", Json.Number (rps_32 /. rps_1));
      ("replay_intact", Json.Bool intact);
    ]

(* ---------------------------------------------------------------- *)
(* Section 6: distributed coordinator/worker scaling + kill recovery *)
(* on the same resource-starved grid as the cost-model A/B — real    *)
(* train/lower/estimate per candidate, OS processes per worker.      *)

let dist_budget = if Bench_config.fast then 24 else 48

(* Exploration-heavy like the cost-model arms (the starved grid needs the
   random phase to stumble on the feasible region), proposed four at a
   time: every batch is a four-lease fan-out, so worker counts 1 and 4
   bracket the available process-level parallelism while the proposal
   stream stays fixed. *)
let dist_options =
  let n_init = dist_budget * 2 / 3 in
  {
    Compiler.default_options with
    Compiler.seed = Bench_config.seed;
    emit_code = false;
    bo_settings =
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init;
        n_iter = dist_budget - n_init;
        pool_size = (if Bench_config.fast then 64 else 150);
        batch_size = 4;
      };
  }

(* Entry point for the hidden `main.exe dse-dist-worker DIR ID [KILL]`
   argv: one worker process claiming leases out of DIR. [kill] simulates a
   SIGKILL after that many claims (exit 10 holding an unserved lease — the
   TTL-reissue path the recovery arm measures). *)
let dist_worker ~dir ~id ~kill =
  let platform = cm_platform () in
  let spec = cm_spec () in
  (* Load the dataset before claiming so the first lease's wall-clock
     measures evaluation, not data generation. *)
  let (_ : Model_spec.data) = Model_spec.load spec in
  let eval ~scope ~index ~config =
    Compiler.worker_eval ~options:dist_options ~platform ~specs:[ spec ]
      ~scope ~index ~config
  in
  let faults =
    Option.map
      (fun n ->
        Resilience.Faultplan.create
          [ Resilience.Faultplan.Kill_after { records = n } ])
      kill
  in
  match Dist.Worker.run ~dir ~id ~eval ~poll_s:0.005 ?faults () with
  | (_ : Dist.Worker.stats) -> ()
  | exception Resilience.Faultplan.Killed (_ : int) -> exit 10

let mk_temp_dir prefix =
  let rec go i =
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) i)
    in
    match Unix.mkdir path 0o755 with
    | () -> path
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go (i + 1)
  in
  go 0

let run_dist_arm ~platform ~spec ~workers ~kill =
  let dir = mk_temp_dir "homunculus-dist" in
  let local_eval ~scope ~index ~config =
    Compiler.worker_eval ~options:dist_options ~platform ~specs:[ spec ]
      ~scope ~index ~config
  in
  let coord =
    Dist.Coordinator.create ~dir ~ttl_s:1.0 ~poll_s:0.005 ~local_eval ()
  in
  (* Workers are this same bench binary re-invoked in worker mode, spawned
     before the clock starts (they idle-poll until the first batch), stdout
     routed to stderr so the bench's own stdout stays clean. *)
  let spawn i =
    let args =
      [ Sys.executable_name; "dse-dist-worker"; dir; string_of_int i ]
      @
      match kill with
      | Some (w, n) when w = i -> [ string_of_int n ]
      | Some _ | None -> []
    in
    Unix.create_process Sys.executable_name (Array.of_list args) Unix.stdin
      Unix.stderr Unix.stderr
  in
  let pids = List.init workers spawn in
  let t0 = Unix.gettimeofday () in
  let result =
    Compiler.search_model
      ~options:
        {
          dist_options with
          Compiler.dispatch =
            Some
              (fun ~scope batch -> Dist.Coordinator.dispatch coord ~scope batch);
        }
      platform spec
  in
  let dt = Unix.gettimeofday () -. t0 in
  Dist.Coordinator.finish coord;
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  (dt, result, Dist.Coordinator.stats coord)

let run_distributed_section () =
  Bench_config.section
    "DSE distributed: multi-process scaling + worker-kill recovery";
  let platform = cm_platform () in
  let spec = cm_spec () in
  (* Warm-up: cache the dataset so the coordinator arms don't pay for it
     (worker processes load their own copy before claiming). *)
  let (_ : Model_spec.data) = Model_spec.load spec in
  let t0 = Unix.gettimeofday () in
  let inline = Compiler.search_model ~options:dist_options platform spec in
  let t_inline = Unix.gettimeofday () -. t0 in
  let t_1, r_1, s_1 = run_dist_arm ~platform ~spec ~workers:1 ~kill:None in
  let t_4, r_4, s_4 = run_dist_arm ~platform ~spec ~workers:4 ~kill:None in
  let t_k, r_k, s_k =
    run_dist_arm ~platform ~spec ~workers:4 ~kill:(Some (1, 2))
  in
  let fp (r : Compiler.model_result) = fingerprint r.Compiler.history in
  let deterministic =
    fp inline = fp r_1 && fp r_1 = fp r_4 && fp r_4 = fp r_k
  in
  let winner_identical =
    List.for_all
      (fun (r : Compiler.model_result) ->
        artifact_fingerprint r.Compiler.artifact
        = artifact_fingerprint inline.Compiler.artifact)
      [ r_1; r_4; r_k ]
  in
  let speedup = t_1 /. t_4 in
  Printf.printf "  inline (in-process pool): %6.2f s\n" t_inline;
  Printf.printf "  1 worker process:  %6.2f s  (%d leases)\n" t_1
    s_1.Dist.Coordinator.leases_issued;
  Printf.printf "  4 worker processes: %6.2f s  (speedup %.2fx)\n" t_4 speedup;
  Printf.printf
    "  4 workers, one killed at claim 2: %6.2f s  (%d leases reissued, %d \
     inline)\n"
    t_k s_k.Dist.Coordinator.leases_reissued
    s_k.Dist.Coordinator.inline_evaluated;
  Printf.printf "  histories %s, winner %s\n"
    (if deterministic then "bit-identical across all arms" else "MISMATCH")
    (if winner_identical then "bit-identical" else "DIVERGED");
  let arm name wall (s : Dist.Coordinator.stats) =
    ( name,
      Json.Object
        [
          ("wall_s", Json.Number wall);
          ("leases_issued", Json.Number (float_of_int s.Dist.Coordinator.leases_issued));
          ("leases_reissued", Json.Number (float_of_int s.Dist.Coordinator.leases_reissued));
          ("inline_evaluated", Json.Number (float_of_int s.Dist.Coordinator.inline_evaluated));
          ("merged", Json.Number (float_of_int s.Dist.Coordinator.merged));
        ] )
  in
  Json.Object
    [
      ("budget", Json.Number (float_of_int dist_budget));
      ("batch_size", Json.Number 4.);
      ("inline_wall_s", Json.Number t_inline);
      arm "workers_1" t_1 s_1;
      arm "workers_4" t_4 s_4;
      arm "workers_4_one_killed" t_k s_k;
      ("speedup_4_workers", Json.Number speedup);
      ("reevaluated_after_kill", Json.Number (float_of_int s_k.Dist.Coordinator.leases_reissued));
      ("deterministic", Json.Bool deterministic);
      ("winner_identical", Json.Bool winner_identical);
    ]

let run () =
  Bench_config.section "DSE scaling: batched BO at --jobs 1/2/4";
  let budget = if Bench_config.fast then 24 else 100 in
  (* Warm-up run: touch every code path once so allocator and page-cache
     effects don't land on the jobs=1 measurement. *)
  let (_ : float * Bo.History.t) = run_once ~budget:(budget / 4) ~jobs:2 in
  let job_counts = [ 1; 2; 4 ] in
  let results =
    List.map
      (fun jobs ->
        let dt, history = run_once ~budget ~jobs in
        (jobs, dt, history))
      job_counts
  in
  let base =
    match results with (_, dt, _) :: _ -> dt | [] -> assert false
  in
  List.iter
    (fun (jobs, dt, history) ->
      let best =
        match Bo.History.best history with
        | Some e -> e.Bo.History.objective
        | None -> Float.nan
      in
      Printf.printf
        "  jobs %d: %6.2f s  (speedup %.2fx, %d evals, best %.4f)\n" jobs dt
        (base /. dt) (Bo.History.length history) best)
    results;
  (* Determinism: same seed and batch size must give the identical history
     whether the pool has 1 worker or 4. *)
  let sp = space () in
  let run_det workers =
    let pool = Par.create ~jobs:workers () in
    let h =
      Bo.Optimizer.maximize (Rng.create Bench_config.seed)
        ~settings:(settings ~budget:(Stdlib.min budget 24) ~jobs:4)
        ~pool sp ~f:(eval sp)
    in
    Par.shutdown pool;
    fingerprint h
  in
  let det_ok = run_det 1 = run_det 4 in
  Printf.printf "  determinism (batch 4, 1 vs 4 workers): %s\n"
    (if det_ok then "identical histories" else "MISMATCH");
  let cost_model_json, _winner_ok = run_cost_model_section () in
  let refit_json = run_refit_section ~budget in
  let eval_json = run_costmodel_eval_section () in
  let journal_json = run_journal_section () in
  let distributed_json = run_distributed_section () in
  let cores_raw, cores_effective = host_cores () in
  let json =
    Json.Object
      [
        ("bench", Json.String "dse");
        ("fast", Json.Bool Bench_config.fast);
        ("budget", Json.Number (float_of_int budget));
        ("host_cores", Json.Number (float_of_int cores_effective));
        ("host_cores_raw", Json.Number (float_of_int cores_raw));
        ("deterministic", Json.Bool det_ok);
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, dt, _) ->
                 Json.Object
                   [
                     ("jobs", Json.Number (float_of_int jobs));
                     ("wall_s", Json.Number dt);
                     ("speedup", Json.Number (base /. dt));
                   ])
               results) );
        ("cost_model", cost_model_json);
        ("refit_cadence", refit_json);
        ("costmodel_eval", eval_json);
        ("journal", journal_json);
        ("distributed", distributed_json);
      ]
  in
  Out_channel.with_open_text "BENCH_dse.json" (fun oc ->
      Out_channel.output_string oc (Json.to_string json);
      Out_channel.output_char oc '\n');
  Bench_config.note "  wrote BENCH_dse.json\n"
