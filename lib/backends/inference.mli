(** Reference interpreter for {!Model_ir} — the semantics the generated
    Spatial/P4 pipelines must implement.

    The optimization core trains models with the ML framework, but the code
    generators consume only the IR. Interpreting the IR directly gives a
    backend-independent oracle: for any input, the class the emitted hardware
    pipeline would produce. The test suite uses it to prove IR extraction
    preserved the trained model's decisions exactly. *)

val scores : Model_ir.t -> float array -> float array
(** Raw per-output scores: logits for DNNs, negated squared distances for
    KMeans (so argmax = nearest centroid), margins for SVMs, class
    distribution for trees. @raise Invalid_argument on dimension mismatch. *)

val predict : Model_ir.t -> float array -> int
(** [argmax (scores model x)] — the class/cluster the data plane reports. *)

val predict_all : Model_ir.t -> float array array -> int array

val mlp_of_ir : Model_ir.t -> Homunculus_ml.Mlp.t option
(** Rebuild a batched-inference MLP from a DNN IR ([None] for the MAT
    families), so serving loops can drain whole batches through
    {!Homunculus_ml.Mlp.logits_batch} instead of per-sample {!predict}.
    Decisions agree with {!predict} up to summation order: the reference
    interpreter seeds each neuron's accumulator with the bias, the GEMM
    adds it after the products, so logits can differ in the last ulp and
    an exactly-tied argmax can in principle resolve differently.
    @raise Invalid_argument on an activation name {!scores} would also
    reject. *)

val quantize_weights : Model_ir.t -> bits:int -> Model_ir.t
(** Fixed-point quantization of all trained parameters to [bits] fractional
    bits — the precision the Spatial backend deploys ([FixPt] in the emitted
    code, 16 fractional bits by default). Use with {!predict} to measure
    deployment-precision accuracy loss. @raise Invalid_argument unless
    [1 <= bits <= 52]. *)
