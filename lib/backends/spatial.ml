(* The Spatial backend: build a Spatial_ir program from the model IR (the
   template composition of Fig. 5), then pretty-print it. *)

open Spatial_ir
module Decision_tree = Homunculus_ml.Decision_tree

let weight_decls ~prefix layers =
  Array.to_list layers
  |> List.concat_map (fun (i, (l : Model_ir.dnn_layer)) ->
         [
           Comment
             (Printf.sprintf "Layer %d weights (%d x %d), trained offline" i
                l.Model_ir.n_out l.Model_ir.n_in);
           Lut_decl
             {
               name = Printf.sprintf "%s_W%d" prefix i;
               rows = l.Model_ir.n_out;
               cols = l.Model_ir.n_in;
               values = l.Model_ir.weights;
             };
           Lut_decl
             {
               name = Printf.sprintf "%s_B%d" prefix i;
               rows = 1;
               cols = l.Model_ir.n_out;
               values = [| l.Model_ir.biases |];
             };
         ])

let indexed layers = Array.mapi (fun i l -> (i, l)) layers

let dnn_program name (layers : Model_ir.dnn_layer array) =
  let n = Array.length layers in
  let buffers =
    Sram_alloc { name = "buf0"; size = layers.(0).Model_ir.n_in; buffered = true }
    :: (Array.to_list (indexed layers)
       |> List.map (fun (i, (l : Model_ir.dnn_layer)) ->
              Sram_alloc
                {
                  name = Printf.sprintf "buf%d" (i + 1);
                  size = l.Model_ir.n_out;
                  buffered = true;
                }))
  in
  let stages =
    Array.to_list (indexed layers)
    |> List.map (fun (i, (l : Model_ir.dnn_layer)) ->
           dense_layer ~layer_idx:i ~prefix:name
             ~src:(Printf.sprintf "buf%d" i)
             ~dst:(Printf.sprintf "buf%d" (i + 1))
             ~n_in:l.Model_ir.n_in ~n_out:l.Model_ir.n_out
             ~activation:l.Model_ir.activation)
  in
  {
    name;
    fixpt = "FixPt[TRUE, _16, _16]";
    decls = weight_decls ~prefix:name (indexed layers);
    accel =
      [
        Comment "Double-buffered SRAM between pipeline stages";
      ]
      @ buffers
      @ [
          Stream_loop
            ([ Pipe [ Raw "loadFeatures(packetIn, buf0)" ] ]
            @ stages
            @ [
                Pipe
                  [
                    Raw (Printf.sprintf "writeClass(argmax(buf%d), packetOut)" n);
                  ];
              ]);
        ];
  }

let single_block_program ~name ~decls ~dim ~compute =
  {
    name;
    fixpt = "FixPt[TRUE, _16, _16]";
    decls;
    accel =
      [
        Sram_alloc { name = "features"; size = dim; buffered = true };
        Stream_loop
          ([ Pipe [ Raw "loadFeatures(packetIn, features)" ] ] @ [ Pipe compute ]);
      ];
  }

let kmeans_program name centroids =
  let k = Array.length centroids in
  let dim = if k = 0 then 1 else Array.length centroids.(0) in
  let decls =
    [ Lut_decl { name = name ^ "_C"; rows = k; cols = dim; values = centroids } ]
  in
  let compute =
    [
      Sram_alloc { name = "dists"; size = k; buffered = false };
      Foreach
        {
          var = "c";
          bound = k;
          par = 1;
          body =
            [
              (* The per-coordinate difference must live inside the Reduce
                 body, where j is bound — hoisting it out would reference j
                 before the lambda introduces it. *)
              Reduce
                {
                  target = "dist";
                  var = "j";
                  bound = dim;
                  par = Stdlib.min 8 dim;
                  body =
                    (let d =
                       Binop
                         {
                           op = "-";
                           lhs = Index { base = "features"; indices = [ Var "j" ] };
                           rhs =
                             Index
                               { base = name ^ "_C"; indices = [ Var "c"; Var "j" ] };
                         }
                     in
                     Binop { op = "*"; lhs = d; rhs = d });
                  combine = "+";
                };
              Assign
                {
                  target = Index { base = "dists"; indices = [ Var "c" ] };
                  value = Var "dist";
                };
            ];
        };
      Raw "writeClass(argmin(dists), packetOut)";
    ]
  in
  single_block_program ~name ~decls ~dim ~compute

let svm_program name class_weights biases =
  let classes = Array.length class_weights in
  let dim = if classes = 0 then 1 else Array.length class_weights.(0) in
  let decls =
    [
      Lut_decl { name = name ^ "_W"; rows = classes; cols = dim; values = class_weights };
      Lut_decl { name = name ^ "_B"; rows = 1; cols = classes; values = [| biases |] };
    ]
  in
  let compute =
    [
      Sram_alloc { name = "margins"; size = classes; buffered = false };
      Foreach
        {
          var = "c";
          bound = classes;
          par = 1;
          body =
            [
              dot_product ~target:"m" ~weights:(name ^ "_W") ~input:"features"
                ~row:(Var "c") ~n:dim;
              Assign
                {
                  target = Index { base = "margins"; indices = [ Var "c" ] };
                  value =
                    Binop
                      {
                        op = "+";
                        lhs = Var "m";
                        rhs = Index { base = name ^ "_B"; indices = [ Var "c" ] };
                      };
                };
            ];
        };
      Raw "writeClass(argmax(margins), packetOut)";
    ]
  in
  single_block_program ~name ~decls ~dim ~compute

let rec tree_expr = function
  | Decision_tree.Leaf { distribution } ->
      Var (Printf.sprintf "%d.to[T]" (Homunculus_util.Stats.argmax distribution))
  | Decision_tree.Split { feature; threshold; left; right } ->
      Call
        {
          fn = "mux";
          args =
            [
              Binop
                {
                  op = "<=";
                  lhs = Index { base = "features"; indices = [ Int_const feature ] };
                  rhs = Var (Printf.sprintf "%.6f.to[T]" threshold);
                };
              tree_expr left;
              tree_expr right;
            ];
        }

let tree_program name root n_features =
  single_block_program ~name ~decls:[] ~dim:n_features
    ~compute:
      [
        Val { name = "cls"; value = tree_expr root };
        Raw "writeClass(cls, packetOut)";
      ]

let program_of model =
  match model with
  | Model_ir.Dnn { name; layers } -> dnn_program name layers
  | Model_ir.Kmeans { name; centroids } -> kmeans_program name centroids
  | Model_ir.Svm { name; class_weights; biases } ->
      svm_program name class_weights biases
  | Model_ir.Tree { name; root; n_features; _ } -> tree_program name root n_features

let emit model = Spatial_ir.print (program_of model)

(* Namespacing for bundles: duplicate model names get an index suffix. *)
let unique_names models =
  let seen = Hashtbl.create 8 in
  List.map
    (fun model ->
      let base = Model_ir.name model in
      let n = Option.value (Hashtbl.find_opt seen base) ~default:0 in
      Hashtbl.replace seen base (n + 1);
      let name = if n = 0 then base else Printf.sprintf "%s_%d" base n in
      (name, Model_ir.with_name model name))
    models

let emit_bundle ~name models =
  if models = [] then invalid_arg "Spatial.emit_bundle: no models";
  let named = unique_names models in
  (* Each model contributes its declarations plus one compute section; the
     shared streaming loop feeds every instance the packet's features and
     collects one verdict register per instance. *)
  let programs = List.map (fun (_, m) -> program_of m) named in
  let decls = List.concat_map (fun p -> p.Spatial_ir.decls) programs in
  let instance_sections =
    List.map
      (fun (instance, model) ->
        let inner = program_of model in
        (* Reuse the instance's Accel body minus its own stream loop: pull
           the stages out of the Stream_loop and rename its feature buffer. *)
        let stages =
          List.concat_map
            (function
              | Spatial_ir.Stream_loop body -> body
              | Spatial_ir.Comment _ -> []
              | other -> [ other ])
            inner.Spatial_ir.accel
        in
        Spatial_ir.Comment (Printf.sprintf "=== instance %s ===" instance)
        :: stages
        @ [
            Spatial_ir.Raw
              (Printf.sprintf "verdict_%s := classOut" instance);
          ])
      named
  in
  let program =
    {
      Spatial_ir.name;
      fixpt = "FixPt[TRUE, _16, _16]";
      decls;
      accel = [ Spatial_ir.Stream_loop (List.concat instance_sections) ];
    }
  in
  Spatial_ir.print program

let emit_dot_product_template ~n =
  if n <= 0 then invalid_arg "Spatial.emit_dot_product_template: n <= 0";
  let stmt = dot_product ~target:"dot" ~weights:"a_matrix" ~input:"b" ~row:(Var "i") ~n in
  Format.asprintf "%a@." Spatial_ir.pp_stmt stmt

let line_count code =
  String.split_on_char '\n' code
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
