type perf = { min_throughput_gpps : float; max_latency_ns : float }

let perf ~min_throughput_gpps ~max_latency_ns =
  if min_throughput_gpps <= 0. then invalid_arg "Resource.perf: throughput <= 0";
  if max_latency_ns <= 0. then invalid_arg "Resource.perf: latency <= 0";
  { min_throughput_gpps; max_latency_ns }

let line_rate = { min_throughput_gpps = 1.; max_latency_ns = 500. }

type usage = { resource : string; used : float; available : float }

let usage ~resource ~used ~available =
  if available <= 0. then invalid_arg "Resource.usage: available <= 0";
  if used < 0. then invalid_arg "Resource.usage: used < 0";
  { resource; used; available }

(* The smart constructor rejects [available <= 0.], but the record type is
   public (device descriptions build usages literally), so a zero-capacity
   usage can still reach these. Keep them total: an empty resource is 0%
   utilized when unused and unconditionally over budget otherwise — never
   inf/nan, which would poison percentage aggregation downstream. *)
let percent u =
  if u.available > 0. then 100. *. u.used /. u.available
  else if u.used <= 0. then 0.
  else Float.infinity

let fits u = if u.available <= 0. then u.used <= 0. else u.used <= u.available
let all_fit = List.for_all fits

type verdict = {
  usages : usage list;
  latency_ns : float;
  throughput_gpps : float;
  feasible : bool;
  rejection : string option;
}

let check perf ~usages ~latency_ns ~throughput_gpps =
  let rejection =
    match List.find_opt (fun u -> not (fits u)) usages with
    | Some u ->
        Some
          (Printf.sprintf "%s exceeded: %.0f > %.0f" u.resource u.used
             u.available)
    | None ->
        if throughput_gpps < perf.min_throughput_gpps then
          Some
            (Printf.sprintf "throughput %.3f Gpkt/s below target %.3f"
               throughput_gpps perf.min_throughput_gpps)
        else if latency_ns > perf.max_latency_ns then
          Some
            (Printf.sprintf "latency %.1f ns above budget %.1f" latency_ns
               perf.max_latency_ns)
        else None
  in
  {
    usages;
    latency_ns;
    throughput_gpps;
    feasible = rejection = None;
    rejection;
  }

let find_usage verdict name =
  List.find_opt (fun u -> String.equal u.resource name) verdict.usages

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun u ->
      Format.fprintf fmt "%-8s %6.0f / %6.0f (%5.1f%%)@," u.resource u.used
        u.available (percent u))
    v.usages;
  Format.fprintf fmt "latency  %.1f ns@,throughput %.3f Gpkt/s@,%s%s@]"
    v.latency_ns v.throughput_gpps
    (if v.feasible then "FEASIBLE" else "INFEASIBLE")
    (match v.rejection with Some r -> ": " ^ r | None -> "")
