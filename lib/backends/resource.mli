(** Shared resource-accounting vocabulary across backends.

    Every backend answers the optimization core with the same three kinds of
    facts (paper §3.3, "Feasibility Constraint Testing"): how much of each
    physical resource the mapped model uses, what latency/throughput the
    mapping achieves, and whether the whole thing is feasible. *)

type perf = {
  min_throughput_gpps : float;  (** giga-packets per second to sustain *)
  max_latency_ns : float;
}

val line_rate : perf
(** The paper's evaluation constraint: 1 Gpkt/s, 500 ns. *)

val perf : min_throughput_gpps:float -> max_latency_ns:float -> perf
(** @raise Invalid_argument on non-positive values. *)

type usage = { resource : string; used : float; available : float }

val usage : resource:string -> used:float -> available:float -> usage
val percent : usage -> float
(** [100 * used / available]. Total even though the record type admits
    [available <= 0.] (the smart constructor rejects it, literal records
    don't): a zero-capacity resource reads 0% when unused and [infinity] —
    never nan — when anything was charged against it. *)

val fits : usage -> bool
(** [used <= available]; a zero-capacity resource only fits when unused. *)

val all_fit : usage list -> bool

type verdict = {
  usages : usage list;
  latency_ns : float;
  throughput_gpps : float;
  feasible : bool;
  rejection : string option;  (** first violated constraint, when infeasible *)
}

val check : perf -> usages:usage list -> latency_ns:float ->
  throughput_gpps:float -> verdict
(** Assemble a verdict: feasible iff every usage fits and both performance
    targets are met; [rejection] names the first failure. *)

val find_usage : verdict -> string -> usage option

val pp_verdict : Format.formatter -> verdict -> unit
