module Decision_tree = Homunculus_ml.Decision_tree
module Mathx = Homunculus_util.Mathx

let apply_activation name z =
  match name with
  | "relu" -> if z > 0. then z else 0.
  | "sigmoid" -> Mathx.sigmoid z
  | "tanh" -> tanh z
  | "linear" -> z
  | other -> invalid_arg ("Inference.apply_activation: unknown " ^ other)

let dense_forward (l : Model_ir.dnn_layer) input =
  if Array.length input <> l.Model_ir.n_in then
    invalid_arg "Inference: layer input dimension mismatch";
  Array.init l.Model_ir.n_out (fun i ->
      let acc = ref l.Model_ir.biases.(i) in
      let row = l.Model_ir.weights.(i) in
      for j = 0 to l.Model_ir.n_in - 1 do
        acc := !acc +. (row.(j) *. input.(j))
      done;
      apply_activation l.Model_ir.activation !acc)

let scores model x =
  match model with
  | Model_ir.Dnn { layers; _ } ->
      Array.fold_left (fun input l -> dense_forward l input) x layers
  | Model_ir.Kmeans { centroids; _ } ->
      Array.map
        (fun c ->
          if Array.length c <> Array.length x then
            invalid_arg "Inference: centroid dimension mismatch";
          let acc = ref 0. in
          Array.iteri
            (fun j cj ->
              let d = x.(j) -. cj in
              acc := !acc +. (d *. d))
            c;
          -. !acc)
        centroids
  | Model_ir.Svm { class_weights; biases; _ } ->
      Array.mapi
        (fun c w ->
          if Array.length w <> Array.length x then
            invalid_arg "Inference: svm dimension mismatch";
          let acc = ref biases.(c) in
          Array.iteri (fun j wj -> acc := !acc +. (wj *. x.(j))) w;
          !acc)
        class_weights
  | Model_ir.Tree { root; n_features; _ } ->
      if Array.length x <> n_features then
        invalid_arg "Inference: tree dimension mismatch";
      let rec walk = function
        | Decision_tree.Leaf { distribution } -> distribution
        | Decision_tree.Split { feature; threshold; left; right } ->
            if x.(feature) <= threshold then walk left else walk right
      in
      walk root

let predict model x = Homunculus_util.Stats.argmax (scores model x)

let predict_all model xs = Array.map (predict model) xs

(* Rebuild a trainable/batchable MLP from a DNN IR so serving loops can
   drain whole batches through [Mlp.logits_batch]'s fused GEMM kernels.
   Per-layer activations carry over exactly ([Activation.apply] computes
   the same function as [apply_activation]); the one semantic gap is
   summation order — [dense_forward] seeds the accumulator with the bias
   while the GEMM adds it after the products — so logits may differ from
   [scores] in the last ulp. *)
let mlp_of_ir model =
  match model with
  | Model_ir.Kmeans _ | Model_ir.Svm _ | Model_ir.Tree _ -> None
  | Model_ir.Dnn { layers; _ } ->
      let open Homunculus_tensor in
      let to_layer (l : Model_ir.dnn_layer) =
        let w =
          Mat.init l.Model_ir.n_out l.Model_ir.n_in (fun i j ->
              l.Model_ir.weights.(i).(j))
        in
        let b = Array.copy l.Model_ir.biases in
        Homunculus_ml.Layer.of_params ~w ~b
          ~act:(Homunculus_ml.Activation.of_name l.Model_ir.activation)
      in
      Some (Homunculus_ml.Mlp.of_layers (Array.map to_layer layers))

let quantize_weights model ~bits =
  if bits < 1 || bits > 52 then
    invalid_arg "Inference.quantize_weights: bits outside [1, 52]";
  let scale = Float.of_int (1 lsl bits) in
  let q v = Float.round (v *. scale) /. scale in
  Model_ir.map_parameters q model
