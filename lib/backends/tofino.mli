(** Resource model of a Tofino-class PISA switch: a fixed pipeline of
    match-action tables (RMT, Bosshart et al. 2013).

    The paper's data points: an IIsy SVM consumes 8 MATs, "25% of switch
    tables", so the default device exposes 32 tables; Fig. 7 sweeps KMeans
    over budgets of 5 down to 1 tables. MAT-based switches always forward at
    line rate once a program fits, so feasibility is about tables, entries,
    and stage depth rather than throughput. *)

type device = {
  n_tables : int;
  entries_per_table : int;
  n_stages : int;  (** dependent tables must fit the stage budget *)
  base_latency_ns : float;  (** parser + deparser + queuing *)
  per_stage_latency_ns : float;
  line_rate_gpps : float;
}

val default_device : device
(** 32 tables, 4096 entries, 12 stages, ~400 ns end-to-end, 1 Gpkt/s. *)

val device_with_tables : int -> device
(** [default_device] with a reduced/extended table budget (Fig. 7's K5..K1
    sweep uses 5..1). @raise Invalid_argument on non-positive counts. *)

val tables_per_stage : int
(** Parallel tables per physical stage (4, RMT-style) — shared with the
    composition lowering so single-model estimates and multi-model packing
    agree on stage arithmetic. *)

val estimate :
  device -> Resource.perf -> Iisy.mapping -> Resource.verdict
(** Usages carry "MAT" (tables), "entries" (largest table), and "stages"
    (ceil(tables / tables-per-stage), assuming 4 parallel tables/stage). *)

val estimate_model :
  device -> Resource.perf -> Model_ir.t -> Resource.verdict
(** [estimate] composed with {!Iisy.map_model}. *)

val mats_used : Resource.verdict -> int
