(** A software switch runtime for MAT-mapped models — the deployment-side
    twin of {!P4gen.emit_entries}.

    Where {!Inference} evaluates the IR in floating point (what the model
    means), this module executes it the way a Tofino-class pipeline
    actually would: features quantized to 16-bit fixed-point keys, cluster
    cells as per-feature range tables with TCAM priority semantics (first
    match wins, a default action on miss), SVM votes and tree thresholds in
    integer arithmetic. The gap between the two is the fidelity the
    deployment loses to quantization and cell-shaped decision regions. *)

type t

val load :
  ?entries_per_feature:int ->
  ?calibration:float array array ->
  Model_ir.t ->
  t
(** Build the quantized tables (default granularity 64 cells/feature, the
    {!Iisy} default). [calibration] — a sample of representative raw inputs —
    sets each feature's fixed-point scale so the 16-bit key space covers the
    observed range plus headroom (how real deployments pick quantization
    parameters); without it, keys use the plain 8.8 encoding, which
    saturates beyond |x| = 128. @raise Invalid_argument for DNNs — they do
    not map to MATs; binarize first ({!Bnn.binarize_dnn}) and treat the
    result as its own model. *)

val feature_scales : t -> float array
(** The per-feature key scale chosen at load time. *)

val n_features : t -> int
(** Input dimension the tables were built for. *)

val classify : t -> float array -> int
(** Push one feature vector through the table pipeline. Equivalent to
    [encode_into] + [lookup] on a fresh workspace (and implemented that
    way), so [classify] is bit-identical to the allocation-free path. *)

val classify_all : t -> float array array -> int array

(** {2 Allocation-free hot path}

    The serving engine's steady-state drain. A [workspace] owns the key
    buffer one in-flight packet needs; encode then look up on the same
    workspace. Neither step allocates on the OCaml minor heap (asserted by
    a [Gc.minor_words] test), so a preallocated workspace gives a
    GC-silent drain loop. A workspace belongs to exactly one runtime value
    and must not be shared across concurrent drains. *)

type workspace

val make_workspace : t -> workspace
(** Allocate the (reusable) scratch buffers for [encode_into]/[lookup].
    The only allocating call on this path — do it once per engine, not per
    packet. *)

val workspace_keys : workspace -> int array
(** Snapshot of the 16-bit keys written by the most recent [encode_into]
    (a copy — safe to keep). Exposed for differential replay oracles. *)

val encode_into : t -> workspace -> float array -> unit
(** Quantize one feature vector into the workspace's key buffer using the
    runtime's per-feature scales — bit-identical to the keys [classify]
    derives. @raise Invalid_argument on dimension mismatch or a workspace
    from a smaller runtime. *)

val lookup : t -> workspace -> int
(** Table lookup on the keys most recently encoded into [workspace]:
    TCAM first-match over cluster cells (nearest quantized centroid on
    miss, counted in {!miss_count}), integer SVM vote, or quantized tree
    walk. First-match / first-maximum tie-breaking is identical to
    {!classify}. *)

val classify_into : t -> workspace -> src:float array array -> n:int -> dst:int array -> unit
(** Drain [src.(0 .. n-1)] through encode+lookup, writing verdicts to
    [dst.(0 .. n-1)]. Allocation-free given a preallocated [dst].
    @raise Invalid_argument if [n] exceeds either array. *)

val miss_count : t -> int
(** KMeans pipelines only: how many packets missed every cluster cell since
    [load] (they fall back to the default action: nearest quantized
    centroid). 0 for SVM/tree pipelines. *)

val fidelity : t -> Model_ir.t -> x:float array array -> float
(** Agreement rate between the table pipeline and the floating-point
    reference {!Inference.predict} on the given inputs. *)

val quantize : float -> int
(** The shared 8.8 fixed-point key encoding (signed, clamped to 16 bits). *)
