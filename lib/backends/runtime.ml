module Decision_tree = Homunculus_ml.Decision_tree
module Mathx = Homunculus_util.Mathx

let clamp16 v = Mathx.clamp_int ~lo:(-32768) ~hi:32767 v

let quantize v = clamp16 (int_of_float (Float.round (v *. 256.)))

let quantize_scaled scale v = clamp16 (int_of_float (Float.round (v *. scale)))

type kmeans_pipeline = {
  (* Per cluster: per-feature inclusive [lo, hi] ranges in key space, plus
     the quantized centroid for the default action. *)
  cells : (int * int) array array;
  centroids_q : int array array;
  mutable misses : int;
}

type svm_pipeline = {
  weights_q : int array array;
      (** per class, per feature, scaled so [w_q * x_q ~ 65536 * w * x] *)
  biases_q : int array;  (** 16.16 fixed *)
}

type pipeline =
  | Kmeans_tables of kmeans_pipeline
  | Svm_tables of svm_pipeline
  | Tree_tables of Decision_tree.node  (** thresholds pre-quantized *)

type t = { pipeline : pipeline; n_features : int; scales : float array }

let model_dimension = function
  | Model_ir.Dnn _ ->
      invalid_arg "Runtime.load: DNNs do not map to MATs (binarize first)"
  | Model_ir.Kmeans { centroids; _ } ->
      if Array.length centroids = 0 then 0 else Array.length centroids.(0)
  | Model_ir.Svm { class_weights; _ } ->
      if Array.length class_weights = 0 then 0
      else Array.length class_weights.(0)
  | Model_ir.Tree { n_features; _ } -> n_features

(* Per-feature key scale: cover the calibration sample's range (with 2x
   headroom) across the 16-bit key space; fall back to 8.8 fixed point. *)
let choose_scales ~calibration ~n_features =
  match calibration with
  | None -> Array.make n_features 256.
  | Some samples ->
      if Array.exists (fun row -> Array.length row <> n_features) samples then
        invalid_arg "Runtime.load: calibration dimension mismatch";
      Array.init n_features (fun f ->
          let max_abs = ref 1e-9 in
          Array.iter
            (fun row ->
              let v = Float.abs row.(f) in
              if v > !max_abs then max_abs := v)
            samples;
          32767. /. (2. *. !max_abs))

let load ?(entries_per_feature = 64) ?calibration model =
  let n_features = model_dimension model in
  let scales = choose_scales ~calibration ~n_features in
  match model with
  | Model_ir.Dnn _ -> assert false (* model_dimension already rejected *)
  | Model_ir.Kmeans { centroids; _ } as km ->
      let cells =
        match calibration with
        | Some samples when Array.length samples > 0 ->
            (* IIsy-style: derive each cluster's cell from the training
               points it wins, with a 10% span margin. *)
            let k = Array.length centroids in
            let lo = Array.make_matrix k n_features infinity in
            let hi = Array.make_matrix k n_features neg_infinity in
            Array.iter
              (fun row ->
                let c = Inference.predict km row in
                Array.iteri
                  (fun f v ->
                    if v < lo.(c).(f) then lo.(c).(f) <- v;
                    if v > hi.(c).(f) then hi.(c).(f) <- v)
                  row)
              samples;
            Array.mapi
              (fun c centroid ->
                Array.mapi
                  (fun f coord ->
                    if lo.(c).(f) > hi.(c).(f) then begin
                      (* Cluster won no calibration point: degenerate cell
                         around the centroid. *)
                      let center = quantize_scaled scales.(f) coord in
                      (center, center)
                    end
                    else
                      let margin = 0.1 *. (hi.(c).(f) -. lo.(c).(f)) in
                      ( quantize_scaled scales.(f) (lo.(c).(f) -. margin),
                        quantize_scaled scales.(f) (hi.(c).(f) +. margin) ))
                  centroid)
              centroids
        | Some _ | None ->
            (* No calibration: fixed-width cells around each centroid. *)
            let half = 65536 / (2 * entries_per_feature) in
            Array.map
              (fun centroid ->
                Array.mapi
                  (fun f coord ->
                    let center = quantize_scaled scales.(f) coord in
                    (center - half, center + half))
                  centroid)
              centroids
      in
      let centroids_q =
        Array.map
          (fun centroid ->
            Array.mapi (fun f c -> quantize_scaled scales.(f) c) centroid)
          centroids
      in
      {
        pipeline = Kmeans_tables { cells; centroids_q; misses = 0 };
        n_features;
        scales;
      }
  | Model_ir.Svm { class_weights; biases; _ } ->
      {
        pipeline =
          Svm_tables
            {
              weights_q =
                Array.map
                  (fun w ->
                    Array.mapi
                      (fun f wf ->
                        int_of_float (Float.round (wf *. 65536. /. scales.(f))))
                      w)
                  class_weights;
              biases_q =
                Array.map (fun b -> int_of_float (Float.round (b *. 65536.))) biases;
            };
        n_features;
        scales;
      }
  | Model_ir.Tree { root; _ } ->
      let rec q_node = function
        | Decision_tree.Leaf _ as leaf -> leaf
        | Decision_tree.Split { feature; threshold; left; right } ->
            Decision_tree.Split
              {
                feature;
                threshold = float_of_int (quantize_scaled scales.(feature) threshold);
                left = q_node left;
                right = q_node right;
              }
      in
      { pipeline = Tree_tables (q_node root); n_features; scales }

let feature_scales t = Array.copy t.scales

let n_features t = t.n_features

let check_input t x =
  if Array.length x <> t.n_features then
    invalid_arg "Runtime.classify: feature dimension mismatch"

(* ------------------------------------------------------------------ *)
(* Allocation-free hot path.

   The serving engine drains batches through [encode_into] + [lookup] on a
   per-engine [workspace]; none of the three may allocate in steady state
   (asserted by a [Gc.minor_words] test). Everything below is written as
   plain counted loops over pre-existing arrays: local [ref]s are compiled
   to mutable stack slots (they never escape), `Float.round` is an unboxed
   [@@noalloc] external, and all intermediate floats stay unboxed because
   they are consumed immediately within the same function body. *)

type workspace = { keys : int array }

let make_workspace t = { keys = Array.make (max 1 t.n_features) 0 }

let workspace_keys ws = Array.copy ws.keys

let encode_into t ws x =
  check_input t x;
  if Array.length ws.keys < t.n_features then
    invalid_arg "Runtime.encode_into: workspace from a different runtime";
  let scales = t.scales and keys = ws.keys in
  for f = 0 to t.n_features - 1 do
    (* Inlined [quantize_scaled scales.(f) x.(f)]: round, truncate, clamp —
       in that order, so keys are bit-identical to [classify]'s. *)
    let k = int_of_float (Float.round (x.(f) *. scales.(f))) in
    let k = if k < -32768 then -32768 else if k > 32767 then 32767 else k in
    keys.(f) <- k
  done

let lookup t ws =
  let keys = ws.keys in
  let nf = t.n_features in
  match t.pipeline with
  | Kmeans_tables p ->
      (* TCAM priority semantics: the first cluster whose every per-feature
         range matches wins. *)
      let n = Array.length p.cells in
      let c = ref 0 and hit = ref (-1) in
      while !hit < 0 && !c < n do
        let cell = p.cells.(!c) in
        let ok = ref true and f = ref 0 in
        while !ok && !f < nf do
          let lo, hi = cell.(!f) in
          let key = keys.(!f) in
          if key < lo || key > hi then ok := false else incr f
        done;
        if !ok then hit := !c else incr c
      done;
      if !hit >= 0 then !hit
      else begin
        (* Default action: nearest quantized centroid. *)
        p.misses <- p.misses + 1;
        let best = ref 0 and best_d = ref max_int in
        for c = 0 to Array.length p.centroids_q - 1 do
          let centroid = p.centroids_q.(c) in
          let d = ref 0 in
          for f = 0 to nf - 1 do
            let delta = keys.(f) - centroid.(f) in
            d := !d + (delta * delta)
          done;
          if !d < !best_d then begin
            best := c;
            best_d := !d
          end
        done;
        !best
      end
  | Svm_tables p ->
      (* Running max over integer scores; ties keep the first maximal class,
         exactly like argmax over the materialized score array. *)
      let best = ref 0 and best_s = ref min_int in
      for c = 0 to Array.length p.weights_q - 1 do
        let w = p.weights_q.(c) in
        let acc = ref p.biases_q.(c) in
        for f = 0 to nf - 1 do
          acc := !acc + (w.(f) * keys.(f))
        done;
        if !acc > !best_s then begin
          best := c;
          best_s := !acc
        end
      done;
      !best
  | Tree_tables root ->
      let node = ref root in
      let result = ref (-1) in
      while !result < 0 do
        match !node with
        | Decision_tree.Leaf { distribution } ->
            result := Homunculus_util.Stats.argmax distribution
        | Decision_tree.Split { feature; threshold; left; right } ->
            node :=
              (if float_of_int keys.(feature) <= threshold then left else right)
      done;
      !result

let classify_into t ws ~src ~n ~dst =
  if n < 0 || n > Array.length src || n > Array.length dst then
    invalid_arg "Runtime.classify_into: batch size out of bounds";
  for i = 0 to n - 1 do
    encode_into t ws src.(i);
    dst.(i) <- lookup t ws
  done

let classify t x =
  let ws = make_workspace t in
  encode_into t ws x;
  lookup t ws

let classify_all t xs = Array.map (classify t) xs

let miss_count t =
  match t.pipeline with
  | Kmeans_tables p -> p.misses
  | Svm_tables _ | Tree_tables _ -> 0

let fidelity t model ~x =
  if Array.length x = 0 then invalid_arg "Runtime.fidelity: empty input";
  let agree = ref 0 in
  Array.iter
    (fun sample ->
      if classify t sample = Inference.predict model sample then incr agree)
    x;
  float_of_int !agree /. float_of_int (Array.length x)
