(** Autopilot: drift-triggered incremental re-search with warm-started BO,
    budgets, and graceful degradation.

    The serving loop's {!Homunculus_serve.Monitor} turns accuracy decay into
    drift alarms; the autopilot turns each alarm into one budgeted
    {!Homunculus_core.Compiler.research} run over the updater's recent
    labeled traffic, warm-started from every journal the previous searches
    left behind, and hot-swaps the winner through the
    {!Homunculus_serve.Updater.accepts} margin — unattended.

    {2 Warm start = replay-then-continue}

    Each re-search is a {e generation}: journal [research-NNN.jsonl] in
    [journal_dir], with a [research-NNN.jsonl.done] marker written only when
    the search ran to completion (won or exhausted the space). A search of
    generation [g] merges the replay tables of {e every} journal on disk and
    re-drives the optimizer with the same [seed] under
    {!Homunculus_bo.Optimizer.continuation}[ ~replayed:P ~fresh], where [P]
    is the raw evaluation-record count of the {e completed} generations
    [< g]. The re-derived proposal prefix hits the replay cache (costing
    microseconds, journaling nothing), so warm-up is effectively skipped
    once [P >= n_init] and the whole budget lands on [fresh] strictly-new
    candidates — and because replay hits are free, a warm search reaches its
    fresh candidates measurably sooner than a cold one.

    A journal {e without} its [.done] marker is a crashed or budget-killed
    search: the next alarm {e resumes that generation} — same file, same
    settings (computed from completed journals only), same seed — so the
    resumed run re-derives the identical proposal sequence, replays the
    partial journal as a cache-hit prefix, and completes bit-for-bit the
    history the uninterrupted run would have produced.

    {2 Graceful degradation}

    The incumbent keeps serving throughout: the hook runs between service
    batches and only an accepted challenger changes the data plane. A
    timeout ({!Budget_exhausted}), an infeasible search, or a challenger
    below the {!Homunculus_serve.Updater.accepts} margin leaves the
    incumbent installed and is recorded as an {!event}. Consecutive
    non-installing searches back off exponentially (in monitor windows), on
    top of the monitor's own [cooldown_windows] hysteresis. A simulated
    crash ({!Homunculus_resilience.Faultplan.Killed}) propagates out of the
    serving loop — that is the crash the journals exist to survive. *)

module Compiler = Homunculus_core.Compiler
module Engine = Homunculus_serve.Engine
module Updater = Homunculus_serve.Updater

type config = {
  seed : int;
      (** drives the BO proposal stream and the train/holdout split of every
          generation — deliberately {e not} generation-dependent, so a
          restarted search re-derives the very proposals its journal holds *)
  platform : Homunculus_alchemy.Platform.t;
  spec_name : string;  (** stable spec name; scopes every journal record *)
  algorithms : Homunculus_alchemy.Model_spec.algorithm list;
  n_classes : int;
  bo_settings : Homunculus_bo.Optimizer.settings;
      (** base settings; [n_iter] is overwritten per generation by
          {!Homunculus_bo.Optimizer.continuation} *)
  fresh_evals : int;  (** strictly-new guided evaluations per re-search *)
  budget_s : float option;  (** wall-clock budget per re-search; [None]
                                runs to completion *)
  journal_dir : string;  (** generation journals + [.done] markers *)
  min_examples : int;
      (** decline to search below this many buffered labeled examples *)
  holdout_frac : float;  (** fraction of the snapshot held out as the
                             spec's test split *)
  min_gain : float;  (** {!Homunculus_serve.Updater.accepts} margin *)
  cost_model : Homunculus_bo.Cost_model.settings option;
      (** when set, the re-search reuses the learned pre-filter — trained
          from the same replayed observations the surrogate warm-starts
          from *)
  max_retries : int;  (** supervisor retries per candidate *)
  backoff_windows : int;
      (** base of the exponential backoff after a failed search, in monitor
          windows; 0 disables backoff *)
  backoff_max_windows : int;  (** backoff ceiling *)
  faults : Homunculus_resilience.Faultplan.t;
      (** fault injection for the re-search: [kill@N] simulates a crash
          after [N] fresh journal records; [research-timeout@G] forces
          generation [G]'s budget to be already expired (and keeps forcing
          it while generation [G] remains unfinished) *)
}

val default_config :
  platform:Homunculus_alchemy.Platform.t -> journal_dir:string -> config
(** seed 42, spec ["autopilot"], tree-only shortlist (cheap to retrain,
    MAT-mappable for quantized serving), 2 classes, 3 warm-up + 4 fresh
    evaluations, no budget, min 60 examples, 30% holdout, 0.02 margin, no
    cost model, 1 retry, backoff 1 doubling up to 8 windows, no faults. *)

type outcome =
  | Installed of { incumbent_f1 : float; challenger_f1 : float }
      (** the winner cleared the margin and was hot-swapped *)
  | Rejected of { incumbent_f1 : float; challenger_f1 : float }
      (** the search won but the challenger missed the margin; incumbent
          stays *)
  | Budget_exhausted
      (** the deadline passed; the partial journal resumes next alarm *)
  | Infeasible of string  (** the search completed without a feasible model *)
  | Too_few_examples of { have : int; need : int }
      (** updater buffer below [min_examples]; no search ran *)
  | Backing_off of { until_window : int }
      (** inside the post-failure backoff interval; no search ran *)

type event = {
  window : int;  (** monitor window of the triggering drift alarm *)
  reason : string;  (** the alarm's reason *)
  generation : int;  (** generation searched, [-1] when no search ran *)
  outcome : outcome;
  replayed : int;  (** proposals answered from the replay cache *)
  fresh : int;  (** evaluation records appended to this generation *)
  wall_s : float;  (** wall-clock cost of the attempt (0 when no search) *)
}

val outcome_to_string : outcome -> string

val event_to_string : event -> string
(** Deterministic rendering — window, generation, reason, and outcome only.
    [replayed], [fresh], and [wall_s] are omitted on purpose: a resumed run
    replays more (and journals less) than the uninterrupted run it is
    bit-identical to, so drivers print those to stderr and keep stdout
    diff-clean across a kill/resume. *)

type t

val create : config -> updater:Updater.t -> t
(** The updater supplies the labeled-traffic snapshot each re-search trains
    on. Creates [journal_dir] if missing.
    @raise Invalid_argument on a non-positive [n_classes], [min_examples],
    [fresh_evals < 0], a holdout fraction outside (0, 1), negative backoff,
    or an empty algorithm shortlist. *)

val hook : t -> Engine.research_hook
(** Plug into {!Homunculus_serve.Engine.create}[ ~research]. *)

val events : t -> event list
(** Every consumed drift alarm, oldest first. *)

val consecutive_failures : t -> int
(** Non-installing searches since the last install (feeds the backoff). *)

(** {2 Journal-directory introspection (tests, CLI)} *)

val generation_files : dir:string -> (int * string * bool) list
(** The [(generation, path, completed)] triples found in [dir], ascending by
    generation. A missing directory is empty. *)

val journal_path : dir:string -> generation:int -> string
val done_path : string -> string
(** The [.done] marker path for a generation journal path. *)
