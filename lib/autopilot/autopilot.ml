module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset
module Metrics = Homunculus_ml.Metrics
module Inference = Homunculus_backends.Inference
module Model_ir = Homunculus_backends.Model_ir
module Model_spec = Homunculus_alchemy.Model_spec
module Platform = Homunculus_alchemy.Platform
module Bo = Homunculus_bo
module Compiler = Homunculus_core.Compiler
module Journal = Homunculus_resilience.Journal
module Supervisor = Homunculus_resilience.Supervisor
module Faultplan = Homunculus_resilience.Faultplan
module Engine = Homunculus_serve.Engine
module Monitor = Homunculus_serve.Monitor
module Updater = Homunculus_serve.Updater

type config = {
  seed : int;
  platform : Platform.t;
  spec_name : string;
  algorithms : Model_spec.algorithm list;
  n_classes : int;
  bo_settings : Bo.Optimizer.settings;
  fresh_evals : int;
  budget_s : float option;
  journal_dir : string;
  min_examples : int;
  holdout_frac : float;
  min_gain : float;
  cost_model : Bo.Cost_model.settings option;
  max_retries : int;
  backoff_windows : int;
  backoff_max_windows : int;
  faults : Faultplan.t;
}

let default_config ~platform ~journal_dir =
  {
    seed = 42;
    platform;
    spec_name = "autopilot";
    algorithms = [ Model_spec.Tree ];
    n_classes = 2;
    bo_settings = { Bo.Optimizer.default_settings with Bo.Optimizer.n_init = 3 };
    fresh_evals = 4;
    budget_s = None;
    journal_dir;
    min_examples = 60;
    holdout_frac = 0.3;
    min_gain = 0.02;
    cost_model = None;
    max_retries = 1;
    backoff_windows = 1;
    backoff_max_windows = 8;
    faults = Faultplan.create [];
  }

type outcome =
  | Installed of { incumbent_f1 : float; challenger_f1 : float }
  | Rejected of { incumbent_f1 : float; challenger_f1 : float }
  | Budget_exhausted
  | Infeasible of string
  | Too_few_examples of { have : int; need : int }
  | Backing_off of { until_window : int }

type event = {
  window : int;
  reason : string;
  generation : int;
  outcome : outcome;
  replayed : int;
  fresh : int;
  wall_s : float;
}

let outcome_to_string = function
  | Installed { incumbent_f1; challenger_f1 } ->
      Printf.sprintf "installed incumbent_f1=%.4f challenger_f1=%.4f"
        incumbent_f1 challenger_f1
  | Rejected { incumbent_f1; challenger_f1 } ->
      Printf.sprintf "rejected incumbent_f1=%.4f challenger_f1=%.4f"
        incumbent_f1 challenger_f1
  | Budget_exhausted -> "budget-exhausted"
  | Infeasible msg -> Printf.sprintf "infeasible (%s)" msg
  | Too_few_examples { have; need } ->
      Printf.sprintf "too-few-examples have=%d need=%d" have need
  | Backing_off { until_window } ->
      Printf.sprintf "backing-off until_window=%d" until_window

(* Deliberately omits [replayed], [fresh], and [wall_s]: a resumed run
   replays more (and journals less) than the uninterrupted run it is
   bit-identical to, so those are accounting, not results — drivers print
   them to stderr. *)
let event_to_string e =
  Printf.sprintf "autopilot window=%d gen=%d reason=%s %s" e.window
    e.generation e.reason (outcome_to_string e.outcome)

(* {2 Generation journals} *)

let journal_path ~dir ~generation =
  Filename.concat dir (Printf.sprintf "research-%03d.jsonl" generation)

let done_path path = path ^ ".done"

let parse_generation file =
  let prefix = "research-" and suffix = ".jsonl" in
  let pl = String.length prefix and sl = String.length suffix in
  let fl = String.length file in
  if
    fl > pl + sl
    && String.sub file 0 pl = prefix
    && String.sub file (fl - sl) sl = suffix
  then int_of_string_opt (String.sub file pl (fl - pl - sl))
  else None

let generation_files ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun file ->
           match parse_generation file with
           | None -> None
           | Some g ->
               let path = Filename.concat dir file in
               Some (g, path, Sys.file_exists (done_path path)))
    |> List.sort (fun (a, _, _) (b, _, _) -> Stdlib.compare a b)

(* Raw (duplicate-preserving) evaluation-record counts per scope, maxed
   across scopes. A completed generation journals one record per proposal
   that was not already a replay hit, so summing these over the completed
   generations is exactly the length of the proposal prefix the next search
   will re-derive into cache hits — the [~replayed] argument of
   {!Bo.Optimizer.continuation}. Deduped counts would under-count: a search
   that proposed the same configuration twice journals twice and replays
   twice. *)
let proposals_recorded paths =
  let tbl = Hashtbl.create 7 in
  List.iter
    (fun path ->
      let recs, _ = Journal.read path in
      List.iter
        (fun (r : Journal.record) ->
          if Journal.is_evaluation r.kind then
            Hashtbl.replace tbl r.scope
              (1 + Option.value (Hashtbl.find_opt tbl r.scope) ~default:0))
        recs)
    paths;
  Hashtbl.fold (fun _ v acc -> Stdlib.max v acc) tbl 0

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_done path =
  let oc =
    open_out_gen [ Open_creat; Open_wronly; Open_trunc ] 0o644 (done_path path)
  in
  close_out oc

(* {2 The controller} *)

type t = {
  cfg : config;
  updater : Updater.t;
  mutable failures : int;
  mutable next_allowed_window : int;
  mutable rev_events : event list;
}

let create cfg ~updater =
  if cfg.n_classes <= 0 then invalid_arg "Autopilot.create: n_classes <= 0";
  if cfg.min_examples < 2 then invalid_arg "Autopilot.create: min_examples < 2";
  if cfg.fresh_evals < 0 then invalid_arg "Autopilot.create: fresh_evals < 0";
  if cfg.holdout_frac <= 0. || cfg.holdout_frac >= 1. then
    invalid_arg "Autopilot.create: holdout_frac outside (0, 1)";
  if cfg.backoff_windows < 0 || cfg.backoff_max_windows < 0 then
    invalid_arg "Autopilot.create: negative backoff";
  if cfg.algorithms = [] then
    invalid_arg "Autopilot.create: empty algorithm shortlist";
  mkdir_p cfg.journal_dir;
  {
    cfg;
    updater;
    failures = 0;
    next_allowed_window = 0;
    rev_events = [];
  }

let events t = List.rev t.rev_events
let consecutive_failures t = t.failures

let push t ~window ~reason ~generation ~outcome ~replayed ~fresh ~wall_s =
  t.rev_events <-
    { window; reason; generation; outcome; replayed; fresh; wall_s }
    :: t.rev_events

(* The same seed splits every generation's snapshot, so a process restart
   that replays the same serving trace re-derives the identical spec. *)
let spec_of_snapshot cfg ~xs ~ys =
  let n = Array.length xs in
  let rng = Rng.create cfg.seed in
  let perm = Rng.permutation rng n in
  let n_test =
    Stdlib.max 1 (int_of_float (cfg.holdout_frac *. float_of_int n))
  in
  let n_train = n - n_test in
  let slice off k =
    ( Array.init k (fun i -> xs.(perm.(off + i))),
      Array.init k (fun i -> ys.(perm.(off + i))) )
  in
  let x_test, y_test = slice 0 n_test in
  let x_train, y_train = slice n_test n_train in
  let dataset x y = Dataset.create ~x ~y ~n_classes:cfg.n_classes () in
  Model_spec.make ~name:cfg.spec_name ~algorithms:cfg.algorithms
    ~loader:(fun () ->
      Model_spec.data
        ~train:(dataset x_train y_train)
        ~test:(dataset x_test y_test))
    ()

let f1_on cfg model ~x ~y =
  let pred = Inference.predict_all model x in
  if cfg.n_classes = 2 then Metrics.f1 ~pred ~truth:y ()
  else Metrics.macro_f1 ~n_classes:cfg.n_classes ~pred ~truth:y

let backoff_delay cfg ~failures =
  if cfg.backoff_windows = 0 || failures <= 0 then 0
  else begin
    (* backoff_windows * 2^(failures-1), saturated at the ceiling without
       ever overflowing *)
    let d = ref cfg.backoff_windows in
    for _ = 2 to failures do
      if !d < cfg.backoff_max_windows then d := !d * 2
    done;
    Stdlib.min cfg.backoff_max_windows !d
  end

let note_failure t ~window =
  t.failures <- t.failures + 1;
  let delay = backoff_delay t.cfg ~failures:t.failures in
  if delay > 0 then
    t.next_allowed_window <-
      Stdlib.max t.next_allowed_window (window + 1 + delay)

let run_research t ~window ~reason ~incumbent ~xs ~ys =
  let cfg = t.cfg in
  let gens = generation_files ~dir:cfg.journal_dir in
  (* A journal without its [.done] marker is a crashed or budget-killed
     search: resume that generation in place. Its partial records replay as
     a cache-hit prefix, but the continuation arithmetic counts completed
     generations only — that is what makes the resumed run's settings (and
     therefore its proposal sequence) identical to the uninterrupted one. *)
  let generation =
    match List.rev gens with
    | (g, _, false) :: _ -> g
    | (g, _, true) :: _ -> g + 1
    | [] -> 0
  in
  let replayed_prior =
    proposals_recorded
      (List.filter_map
         (fun (g, p, completed) ->
           if completed && g < generation then Some p else None)
         gens)
  in
  let replay =
    match gens with
    | [] -> None
    | _ -> Some (Journal.merge (List.map (fun (_, p, _) -> Journal.load p) gens))
  in
  let settings =
    Bo.Optimizer.continuation cfg.bo_settings ~replayed:replayed_prior
      ~fresh:cfg.fresh_evals
  in
  let path = journal_path ~dir:cfg.journal_dir ~generation in
  let journal = Journal.open_ path in
  let supervisor =
    Supervisor.create
      ~settings:
        { Supervisor.default_settings with Supervisor.max_retries = cfg.max_retries }
      ~journal ?replay ~faults:cfg.faults ()
  in
  let options =
    {
      Compiler.default_options with
      Compiler.seed = cfg.seed;
      bo_settings = settings;
      emit_code = false;
      supervisor = Some supervisor;
      cost_model = cfg.cost_model;
    }
  in
  let spec = spec_of_snapshot cfg ~xs ~ys in
  let budget_s =
    if Faultplan.research_timeout_at cfg.faults ~generation then Some (-1.)
    else cfg.budget_s
  in
  (* A simulated crash (Faultplan.Killed) escapes through [finally]: the
     journal is flushed and closed, the exception reaches the serving loop's
     driver, and the next incarnation resumes this generation. *)
  let outcome, (stats : Compiler.research_stats) =
    Fun.protect
      ~finally:(fun () -> Journal.close journal)
      (fun () -> Compiler.research ~options ?budget_s cfg.platform spec)
  in
  let fresh = Journal.appended journal in
  let finish outcome reaction =
    push t ~window ~reason ~generation ~outcome ~replayed:stats.replayed
      ~fresh ~wall_s:stats.wall_s;
    reaction
  in
  match outcome with
  | Compiler.Research_won result ->
      write_done path;
      let data = Model_spec.load spec in
      let incumbent_f1 =
        f1_on cfg incumbent ~x:data.test.Dataset.x ~y:data.test.Dataset.y
      in
      let challenger_f1 = result.Compiler.artifact.objective in
      if Updater.accepts ~min_gain:cfg.min_gain ~incumbent_f1 ~challenger_f1
      then begin
        t.failures <- 0;
        finish
          (Installed { incumbent_f1; challenger_f1 })
          (Engine.Install
             {
               model = result.Compiler.artifact.model_ir;
               incumbent_f1;
               challenger_f1;
             })
      end
      else begin
        note_failure t ~window;
        finish (Rejected { incumbent_f1; challenger_f1 }) Engine.Keep
      end
  | Compiler.Research_infeasible msg ->
      write_done path;
      note_failure t ~window;
      finish (Infeasible msg) Engine.Keep
  | Compiler.Research_budget ->
      note_failure t ~window;
      finish Budget_exhausted Engine.Keep

let on_drift t ~now:_ ~(drift : Monitor.drift) ~incumbent =
  let window = drift.Monitor.window in
  let reason = drift.Monitor.reason in
  if t.cfg.backoff_windows > 0 && window < t.next_allowed_window then begin
    push t ~window ~reason ~generation:(-1)
      ~outcome:(Backing_off { until_window = t.next_allowed_window })
      ~replayed:0 ~fresh:0 ~wall_s:0.;
    Engine.Keep
  end
  else begin
    let xs, ys = Updater.snapshot t.updater in
    let have = Array.length xs in
    if have < t.cfg.min_examples then begin
      push t ~window ~reason ~generation:(-1)
        ~outcome:(Too_few_examples { have; need = t.cfg.min_examples })
        ~replayed:0 ~fresh:0 ~wall_s:0.;
      Engine.Keep
    end
    else run_research t ~window ~reason ~incumbent ~xs ~ys
  end

let hook t : Engine.research_hook =
 fun ~now ~drift ~incumbent -> on_drift t ~now ~drift ~incumbent
