(** Alchemy's [Model] construct (paper §3.1, Table 1): the user's declarative
    statement of *what* to learn — an objective metric, an optional algorithm
    shortlist, and a data loader — with no model architecture and no
    hyperparameters. *)

type metric = F1 | Accuracy | V_measure

val metric_to_string : metric -> string

type algorithm = Dnn | Kmeans | Svm | Tree

val algorithm_to_string : algorithm -> string

val algorithm_of_string : string -> algorithm
(** Inverse of {!algorithm_to_string} — search scopes and distributed lease
    records name algorithms by this string.
    @raise Invalid_argument on an unknown name. *)

val all_algorithms : algorithm list

type data = {
  train : Homunculus_ml.Dataset.t;
  test : Homunculus_ml.Dataset.t;
}

val data : train:Homunculus_ml.Dataset.t -> test:Homunculus_ml.Dataset.t -> data
(** @raise Invalid_argument when train and test schemas disagree. *)

type t

val make :
  name:string ->
  ?metric:metric ->
  ?algorithms:algorithm list ->
  loader:(unit -> data) ->
  unit ->
  t
(** Defaults: [metric = F1], [algorithms = all_algorithms] ("if no algorithm
    is listed, Homunculus selects the best performing algorithm from among
    the entire list of supported algorithms"). The loader runs lazily, once;
    the result is cached — mirroring the [@DataLoader] decorator. *)

val name : t -> string
val metric : t -> metric
val algorithms : t -> algorithm list
val load : t -> data
val feature_names : t -> string array
(** Feature schema of the (loaded) training data. *)
