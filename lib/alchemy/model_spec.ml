module Dataset = Homunculus_ml.Dataset

type metric = F1 | Accuracy | V_measure

let metric_to_string = function
  | F1 -> "f1"
  | Accuracy -> "accuracy"
  | V_measure -> "v_measure"

type algorithm = Dnn | Kmeans | Svm | Tree

let algorithm_to_string = function
  | Dnn -> "dnn"
  | Kmeans -> "kmeans"
  | Svm -> "svm"
  | Tree -> "tree"

let algorithm_of_string = function
  | "dnn" -> Dnn
  | "kmeans" -> Kmeans
  | "svm" -> Svm
  | "tree" -> Tree
  | s -> invalid_arg (Printf.sprintf "Model_spec.algorithm_of_string: %S" s)

let all_algorithms = [ Dnn; Kmeans; Svm; Tree ]

type data = { train : Dataset.t; test : Dataset.t }

let data ~train ~test =
  if train.Dataset.feature_names <> test.Dataset.feature_names then
    invalid_arg "Model_spec.data: train/test feature schema mismatch";
  if train.Dataset.n_classes <> test.Dataset.n_classes then
    invalid_arg "Model_spec.data: train/test class count mismatch";
  { train; test }

type t = {
  name : string;
  metric : metric;
  algorithms : algorithm list;
  loader : unit -> data;
  mutable cache : data option;
}

let make ~name ?(metric = F1) ?(algorithms = all_algorithms) ~loader () =
  if name = "" then invalid_arg "Model_spec.make: empty name";
  if algorithms = [] then invalid_arg "Model_spec.make: empty algorithm list";
  { name; metric; algorithms; loader; cache = None }

let name t = t.name
let metric t = t.metric
let algorithms t = t.algorithms

let load t =
  match t.cache with
  | Some d -> d
  | None ->
      let d = t.loader () in
      t.cache <- Some d;
      d

let feature_names t = (load t).train.Dataset.feature_names
