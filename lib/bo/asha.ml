type settings = {
  rung_fractions : float array;
  keep_frac : float;
  min_observations : int;
}

let default_settings =
  { rung_fractions = [| 0.25; 0.5 |]; keep_frac = 0.5; min_observations = 4 }

type t = {
  settings : settings;
  lock : Mutex.t;
  (* Metrics reported at each rung since the run began. Insertion order is
     scheduling-dependent (workers race on [record]), so nothing reads these
     directly: [freeze] sorts them into per-rung thresholds first. *)
  live : float list array;
  (* Per-rung continuation thresholds frozen at batch start ([nan] = rung has
     too few observations to prune). Every candidate of a batch is judged
     against the same frozen snapshot, which is what makes pruning decisions
     a function of proposal order alone, not of worker interleaving. *)
  frozen : float array;
  mutable epochs : int;
}

let validate (s : settings) =
  if Array.length s.rung_fractions = 0 then
    invalid_arg "Asha.create: no rung fractions";
  Array.iter
    (fun f ->
      if f <= 0. || f >= 1. then
        invalid_arg "Asha.create: rung fraction outside (0, 1)")
    s.rung_fractions;
  for i = 1 to Array.length s.rung_fractions - 1 do
    if s.rung_fractions.(i) <= s.rung_fractions.(i - 1) then
      invalid_arg "Asha.create: rung fractions not strictly increasing"
  done;
  if s.keep_frac <= 0. || s.keep_frac > 1. then
    invalid_arg "Asha.create: keep_frac outside (0, 1]";
  if s.min_observations < 1 then invalid_arg "Asha.create: min_observations < 1"

let create ?(settings = default_settings) () =
  validate settings;
  let n_rungs = Array.length settings.rung_fractions in
  {
    settings;
    lock = Mutex.create ();
    live = Array.make n_rungs [];
    frozen = Array.make n_rungs Float.nan;
    epochs = 0;
  }

let n_rungs t = Array.length t.settings.rung_fractions

let rungs_for t ~budget =
  if budget <= 0 then invalid_arg "Asha.rungs_for: budget <= 0";
  Array.map
    (fun f ->
      let e = int_of_float (Float.ceil (f *. float_of_int budget)) in
      Stdlib.min e budget)
    t.settings.rung_fractions

(* The lowest metric a candidate may have at this rung and still be in the
   top [keep_frac] of [metrics]. *)
let threshold s metrics =
  let n = List.length metrics in
  if n < s.min_observations then Float.nan
  else begin
    let sorted = Array.of_list metrics in
    Array.sort (fun a b -> compare (b : float) a) sorted;
    let keep =
      Stdlib.max 1 (int_of_float (Float.ceil (s.keep_frac *. float_of_int n)))
    in
    sorted.(Stdlib.min keep n - 1)
  end

let freeze t =
  Mutex.lock t.lock;
  Array.iteri
    (fun r metrics -> t.frozen.(r) <- threshold t.settings metrics)
    t.live;
  Mutex.unlock t.lock

let record t ~rung ~metric =
  if rung < 0 || rung >= n_rungs t then
    invalid_arg "Asha.record: rung out of range";
  Mutex.lock t.lock;
  t.live.(rung) <- metric :: t.live.(rung);
  Mutex.unlock t.lock

let decide t ~rung ~metric =
  if rung < 0 || rung >= n_rungs t then
    invalid_arg "Asha.decide: rung out of range";
  let cut = t.frozen.(rung) in
  (* nan: not enough observations when this batch was frozen — never prune
     on thin evidence. *)
  if Float.is_nan cut || metric >= cut then `Continue else `Stop

let note_epochs t n =
  if n < 0 then invalid_arg "Asha.note_epochs: negative epoch count";
  Mutex.lock t.lock;
  t.epochs <- t.epochs + n;
  Mutex.unlock t.lock

let epochs_spent t =
  Mutex.lock t.lock;
  let e = t.epochs in
  Mutex.unlock t.lock;
  e

let observations t =
  Mutex.lock t.lock;
  let counts = Array.map List.length t.live in
  Mutex.unlock t.lock;
  counts
