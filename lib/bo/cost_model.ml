module Rng = Homunculus_util.Rng
module Rfc = Homunculus_ml.Random_forest.Classifier
module Rfr = Homunculus_ml.Random_forest.Regressor

type settings = {
  margin : float;
  conviction : float;
  min_observations : int;
  refit_every : int;
  n_trees : int;
  winner_sigma : float;
}

let default_settings =
  {
    margin = 0.15;
    conviction = 0.02;
    min_observations = 12;
    refit_every = 4;
    n_trees = 30;
    winner_sigma = 3.0;
  }

let predicted_key = "cm_predicted"
let prob_key = "cm_p_feasible"

type verdict =
  | Exact_required of string
  | Predicted_infeasible of { p_feasible : float; predicted_objective : float }

type stats = {
  observations : int;
  consults : int;
  skipped : int;
  boundary : int;
  winner_guarded : int;
  refits : int;
}

let zero_stats =
  {
    observations = 0;
    consults = 0;
    skipped = 0;
    boundary = 0;
    winner_guarded = 0;
    refits = 0;
  }

let merge_stats a b =
  {
    observations = a.observations + b.observations;
    consults = a.consults + b.consults;
    skipped = a.skipped + b.skipped;
    boundary = a.boundary + b.boundary;
    winner_guarded = a.winner_guarded + b.winner_guarded;
    refits = a.refits + b.refits;
  }

let stats_summary s =
  Printf.sprintf
    "%d observations, %d consults, %d skipped, %d boundary fallbacks, %d \
     winner-guarded, %d refits"
    s.observations s.consults s.skipped s.boundary s.winner_guarded s.refits

(* One labeled exact evaluation. Features are extracted once, at observation
   time, and reused by every later refit. *)
type obs = {
  features : float array;
  feasible : bool;
  objective : float;
  pruned : bool;
}

type t = {
  settings : settings;
  extract : Config.t -> float array;
  rng : Rng.t;  (** private stream: refits never touch the search's RNG *)
  mutable observations : obs list;  (** newest first *)
  mutable n : int;
  mutable n_feasible : int;
  mutable n_infeasible : int;
  mutable best_observed : float option;
      (** highest feasible non-pruned objective seen — the incumbent the
          winner guard compares against. Derived purely from the observation
          stream, so a resumed search (which replays the same stream)
          reaches the same value. *)
  mutable fresh : int;  (** observations since the last refit *)
  mutable classifier : Rfc.t option;
  mutable regressor : Rfr.t option;
  (* counters *)
  mutable consults : int;
  mutable skipped : int;
  mutable boundary : int;
  mutable winner_guarded : int;
  mutable refits : int;
  mutable skipped_configs : Config.t list;  (** newest first *)
}

let create ?(settings = default_settings) ~seed ~features () =
  if settings.refit_every <= 0 then
    invalid_arg "Cost_model.create: refit_every <= 0";
  if settings.min_observations < 2 then
    invalid_arg "Cost_model.create: min_observations < 2";
  {
    settings;
    extract = features;
    rng = Rng.create seed;
    observations = [];
    n = 0;
    n_feasible = 0;
    n_infeasible = 0;
    best_observed = None;
    fresh = 0;
    classifier = None;
    regressor = None;
    consults = 0;
    skipped = 0;
    boundary = 0;
    winner_guarded = 0;
    refits = 0;
    skipped_configs = [];
  }

(* Refit both models from scratch on the cached feature vectors. Runs at
   observation time (never at classification time), so the model state is a
   pure function of the observation sequence: a resumed search, replaying the
   same exact evaluations in the same order, reproduces every prediction the
   original run made — which is what keeps `--resume` diff-clean with the
   filter enabled. *)
let refit t =
  let obs = Array.of_list (List.rev t.observations) in
  let x = Array.map (fun o -> o.features) obs in
  let y = Array.map (fun o -> if o.feasible then 1 else 0) obs in
  t.classifier <- Some (Rfc.fit t.rng ~n_trees:t.settings.n_trees ~x ~y ~n_classes:2 ());
  let full = Array.of_list
      (List.filter (fun o -> o.feasible && not o.pruned) (List.rev t.observations))
  in
  t.regressor <-
    (if Array.length full = 0 then None
     else
       let fx = Array.map (fun o -> o.features) full in
       let fy = Array.map (fun o -> o.objective) full in
       Some (Rfr.fit t.rng ~n_trees:t.settings.n_trees ~x:fx ~y:fy ()));
  t.refits <- t.refits + 1;
  t.fresh <- 0

let observe t ~config ~objective ~feasible ~pruned =
  let o = { features = t.extract config; feasible; objective; pruned } in
  t.observations <- o :: t.observations;
  t.n <- t.n + 1;
  if feasible then begin
    t.n_feasible <- t.n_feasible + 1;
    if (not pruned) && not (Float.is_nan objective) then
      t.best_observed <-
        Some
          (match t.best_observed with
          | Some b when b >= objective -> b
          | Some _ | None -> objective)
  end
  else t.n_infeasible <- t.n_infeasible + 1;
  t.fresh <- t.fresh + 1;
  if
    t.n >= t.settings.min_observations
    && t.n_feasible > 0 && t.n_infeasible > 0
    && (Option.is_none t.classifier || t.fresh >= t.settings.refit_every)
  then refit t

let classify t config =
  t.consults <- t.consults + 1;
  if t.settings.margin = infinity then Exact_required "filter disabled (margin = inf)"
  else
    match t.classifier with
    | None -> Exact_required "warm-up: too few (or one-sided) observations"
    | Some cls -> (
        let point = t.extract config in
        let p = (Rfc.predict_proba cls point).(1) in
        if p >= 0.5 -. t.settings.margin then begin
          if p < 0.5 +. t.settings.margin then t.boundary <- t.boundary + 1;
          Exact_required "predicted feasible or within the decision margin"
        end
        else
          match (t.best_observed, t.regressor) with
          | None, _ | _, None ->
              (* Never skip before a feasible incumbent exists: with nothing
                 to beat, any candidate is a potential winner. *)
              Exact_required "no feasible incumbent yet"
          | Some best, Some reg ->
              let mean, std = Rfr.predict_with_std reg point in
              if
                p >= t.settings.conviction
                && not (mean +. (t.settings.winner_sigma *. std) < best)
              then begin
                t.winner_guarded <- t.winner_guarded + 1;
                Exact_required "predicted objective could beat the incumbent"
              end
              else begin
                t.skipped <- t.skipped + 1;
                t.skipped_configs <- config :: t.skipped_configs;
                Predicted_infeasible { p_feasible = p; predicted_objective = mean }
              end)

let predicted_evaluation ~p_feasible ~predicted_objective =
  {
    Optimizer.objective = predicted_objective;
    feasible = false;
    pruned = false;
    metadata = [ (predicted_key, 1.); (prob_key, p_feasible) ];
  }

let is_predicted metadata = List.mem_assoc predicted_key metadata

let stats t =
  {
    observations = t.n;
    consults = t.consults;
    skipped = t.skipped;
    boundary = t.boundary;
    winner_guarded = t.winner_guarded;
    refits = t.refits;
  }

let skipped_configs t = List.rev t.skipped_configs

let prefilter t =
 fun ~index:(_ : int) config ->
  match classify t config with
  | Exact_required _ -> None
  | Predicted_infeasible { p_feasible; predicted_objective } ->
      Some (predicted_evaluation ~p_feasible ~predicted_objective)
