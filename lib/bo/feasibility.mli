(** Probability-of-feasibility model.

    Homunculus encodes data-plane resources and network constraints as
    feasibility requirements (paper §3.2.2); the optimizer learns which
    regions of the space violate them and discounts candidates there, as in
    constrained Bayesian optimization (Gardner et al. 2014). *)

type t

val fit :
  Homunculus_util.Rng.t ->
  ?n_trees:int ->
  ?pool:Homunculus_par.Par.pool ->
  x:float array array ->
  feasible:bool array ->
  unit ->
  t
(** Random-forest classifier on the encoded configurations. Degenerate
    histories (all feasible or all infeasible) yield constant predictors. *)

val prob_feasible : t -> float array -> float
