module Rfc = Homunculus_ml.Random_forest.Classifier

type t = Constant of float | Forest of Rfc.t

let fit rng ?(n_trees = 30) ?pool ~x ~feasible () =
  if Array.length x = 0 then invalid_arg "Feasibility.fit: empty input";
  if Array.length x <> Array.length feasible then
    invalid_arg "Feasibility.fit: length mismatch";
  let any_true = Array.exists (fun b -> b) feasible in
  let any_false = Array.exists not feasible in
  if not any_false then Constant 1.
  else if not any_true then Constant 0.5
    (* All observations infeasible: stay optimistic enough to keep searching. *)
  else
    let y = Array.map (fun b -> if b then 1 else 0) feasible in
    Forest (Rfc.fit rng ~n_trees ?pool ~x ~y ~n_classes:2 ())

let prob_feasible t point =
  match t with
  | Constant p -> p
  | Forest forest -> (Rfc.predict_proba forest point).(1)
