(** Asynchronous successive-halving (ASHA-style) rung scheduler for pruning
    weak candidates early during design-space exploration.

    Candidates train toward their own epoch budget but report their
    validation metric when they reach each {e rung} — a fixed fraction of
    that budget, so metrics at the same rung index are comparable across
    candidates with different budgets. Only candidates in the top
    [keep_frac] of the metrics seen at a rung continue; the rest stop and
    report their partial metric to the BO history with the [pruned] flag, so
    the surrogate still learns from them.

    Determinism contract: decisions compare against thresholds {e frozen} at
    the start of each proposal batch ({!freeze}, wired to
    [Bo.Optimizer.maximize]'s [on_batch_start]). Metrics recorded while a
    batch is in flight only influence the {e next} batch, and the threshold
    is computed from a sorted copy of the recorded metrics, so it does not
    depend on the order racing workers called {!record} in. For a fixed seed
    the pruning decisions — and hence the whole search — are identical at any
    worker count. *)

type settings = {
  rung_fractions : float array;
      (** fractions of a candidate's epoch budget at which rungs sit;
          strictly increasing, each in (0, 1) *)
  keep_frac : float;
      (** fraction of candidates that survive each rung, in (0, 1] *)
  min_observations : int;
      (** a rung prunes nothing until it has seen this many metrics (at
          freeze time) — protects the warm-up phase from thin evidence *)
}

val default_settings : settings
(** Rungs at 1/4 and 1/2 of the budget, keep the top half, need 4
    observations before pruning. *)

type t

val create : ?settings:settings -> unit -> t
(** @raise Invalid_argument on malformed settings. *)

val n_rungs : t -> int

val rungs_for : t -> budget:int -> int array
(** Absolute epoch index of each rung for a candidate with this epoch
    budget: [ceil (frac * budget)], capped at [budget]. A candidate reports
    when its epoch index reaches each value; entries equal to [budget] are
    pointless to prune at (nothing left to save) and callers skip them.
    @raise Invalid_argument if [budget <= 0]. *)

val freeze : t -> unit
(** Recompute the per-rung thresholds from all metrics recorded so far. Call
    once per proposal batch, before dispatching it (i.e. from
    [on_batch_start]); never while that batch's evaluations are running. *)

val record : t -> rung:int -> metric:float -> unit
(** Report a candidate's validation metric at a rung. Thread-safe; called
    from worker domains as candidates reach rungs. *)

val decide : t -> rung:int -> metric:float -> [ `Continue | `Stop ]
(** Judge a candidate against the frozen threshold of [rung]: [`Stop] iff the
    rung had at least [min_observations] metrics at freeze time and [metric]
    is below the top-[keep_frac] cut. Thread-safe (reads only the frozen
    snapshot). *)

val note_epochs : t -> int -> unit
(** Add to the cross-candidate count of training epochs actually run; the
    bench uses this for budget accounting. Thread-safe. *)

val epochs_spent : t -> int

val observations : t -> int array
(** Number of metrics recorded at each rung so far (test hook). *)
