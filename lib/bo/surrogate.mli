(** Probabilistic surrogate of the black-box objective.

    A random-forest regressor over encoded configurations; the cross-tree
    spread doubles as the predictive uncertainty, exactly as in HyperMapper's
    RF mode (paper §5). The optimizer fits it on the {e feasible} slice of
    the history — infeasible entries carry placeholder objectives (failure
    tags, predicted-infeasible commits), and nothing downstream ever
    consumes an infeasible entry's objective. *)

type t

val fit :
  Homunculus_util.Rng.t ->
  ?n_trees:int ->
  ?pool:Homunculus_par.Par.pool ->
  x:float array array ->
  y:float array ->
  unit ->
  t
(** Default 30 trees, fitted in parallel on [pool] (deterministic at any
    worker count). Empty input yields a constant predictor (mean 0, std 0)
    without consuming the RNG — the optimizer never consults the surrogate
    before a feasible incumbent exists, so the constant is never
    load-bearing. *)

val predict : t -> float array -> float * float
(** Mean and standard deviation of the objective at an encoded point. *)
