(** Probabilistic surrogate of the black-box objective.

    A random-forest regressor over encoded configurations; the cross-tree
    spread doubles as the predictive uncertainty, exactly as in HyperMapper's
    RF mode (paper §5). *)

type t

val fit :
  Homunculus_util.Rng.t ->
  ?n_trees:int ->
  ?pool:Homunculus_par.Par.pool ->
  x:float array array ->
  y:float array ->
  unit ->
  t
(** Default 30 trees, fitted in parallel on [pool] (deterministic at any
    worker count). @raise Invalid_argument on empty input. *)

val predict : t -> float array -> float * float
(** Mean and standard deviation of the objective at an encoded point. *)
