module Json = Homunculus_util.Json

let param_to_json (p : Param.t) =
  match p.Param.kind with
  | Param.Real { lo; hi; log_scale } ->
      Json.Object
        ([
           ("parameter_type", Json.String "real");
           ("values", Json.List [ Json.Number lo; Json.Number hi ]);
         ]
        @ if log_scale then [ ("transform", Json.String "log") ] else [])
  | Param.Int { lo; hi } ->
      Json.Object
        [
          ("parameter_type", Json.String "integer");
          ("values",
           Json.List [ Json.Number (float_of_int lo); Json.Number (float_of_int hi) ]);
        ]
  | Param.Ordinal values ->
      Json.Object
        [
          ("parameter_type", Json.String "ordinal");
          ("values", Json.List (Array.to_list (Array.map (fun v -> Json.Number v) values)));
        ]
  | Param.Categorical values ->
      Json.Object
        [
          ("parameter_type", Json.String "categorical");
          ("values", Json.List (Array.to_list (Array.map (fun v -> Json.String v) values)));
        ]

let design_space_to_json space =
  Json.Object
    (List.map
       (fun p -> (p.Param.name, param_to_json p))
       (Design_space.params space))

let scenario_to_json ~application_name ~objectives ?(iterations = 40)
    ?(doe_samples = 10) space =
  Json.Object
    [
      ("application_name", Json.String application_name);
      ("optimization_objectives",
       Json.List (List.map (fun o -> Json.String o) objectives));
      ("optimization_iterations", Json.Number (float_of_int iterations));
      ("design_of_experiment",
       Json.Object
         [
           ("doe_type", Json.String "random sampling");
           ("number_of_samples", Json.Number (float_of_int doe_samples));
         ]);
      ("models", Json.Object [ ("model", Json.String "random_forest") ]);
      ("input_parameters", design_space_to_json space);
    ]

let param_of_json name json =
  let kind = Json.get_string (Json.member json "parameter_type") in
  let values = Json.to_list (Json.member json "values") in
  match kind with
  | "real" -> (
      match values with
      | [ lo; hi ] ->
          let log_scale =
            match Json.member_opt json "transform" with
            | Some t -> String.equal (Json.get_string t) "log"
            | None -> false
          in
          Param.real ~log_scale name ~lo:(Json.to_float lo) ~hi:(Json.to_float hi)
      | _ -> invalid_arg "Serialize: real parameter needs [lo, hi]")
  | "integer" -> (
      match values with
      | [ lo; hi ] -> Param.int name ~lo:(Json.to_int lo) ~hi:(Json.to_int hi)
      | _ -> invalid_arg "Serialize: integer parameter needs [lo, hi]")
  | "ordinal" ->
      Param.ordinal name (Array.of_list (List.map Json.to_float values))
  | "categorical" ->
      Param.categorical name (Array.of_list (List.map Json.get_string values))
  | other -> invalid_arg ("Serialize: unknown parameter_type " ^ other)

let design_space_of_json json =
  let params_json =
    match Json.member_opt json "input_parameters" with
    | Some inner -> inner
    | None -> json
  in
  match params_json with
  | Json.Object members ->
      Design_space.create (List.map (fun (name, pj) -> param_of_json name pj) members)
  | Json.Null | Json.Bool _ | Json.Number _ | Json.String _ | Json.List _ ->
      invalid_arg "Serialize: input_parameters must be an object"

let value_to_json (p : Param.t) value =
  match (p.Param.kind, value) with
  | Param.Real _, Param.Real_value v -> Json.Number v
  | Param.Int _, Param.Int_value v -> Json.Number (float_of_int v)
  | Param.Ordinal values, Param.Index_value i -> Json.Number values.(i)
  | Param.Categorical values, Param.Index_value i -> Json.String values.(i)
  | (Param.Real _ | Param.Int _ | Param.Ordinal _ | Param.Categorical _), _ ->
      invalid_arg "Serialize: value shape mismatch"

let value_of_json (p : Param.t) json =
  match p.Param.kind with
  | Param.Real _ -> Param.Real_value (Json.to_float json)
  | Param.Int _ -> Param.Int_value (Json.to_int json)
  | Param.Ordinal values -> (
      let v = Json.to_float json in
      let found = ref None in
      Array.iteri (fun i x -> if x = v && !found = None then found := Some i) values;
      match !found with
      | Some i -> Param.Index_value i
      | None -> invalid_arg (Printf.sprintf "Serialize: %g not in ordinal domain" v))
  | Param.Categorical values -> (
      let s = Json.get_string json in
      let found = ref None in
      Array.iteri
        (fun i x -> if String.equal x s && !found = None then found := Some i)
        values;
      match !found with
      | Some i -> Param.Index_value i
      | None -> invalid_arg ("Serialize: " ^ s ^ " not in categorical domain"))

let config_to_json space config =
  Json.Object
    (List.map
       (fun p ->
         (p.Param.name, value_to_json p (Config.find config p.Param.name)))
       (Design_space.params space))

let config_of_json space json =
  let config =
    Config.make
      (List.map
         (fun p ->
           match Json.member_opt json p.Param.name with
           | Some vj -> (p.Param.name, value_of_json p vj)
           | None ->
               invalid_arg ("Serialize: missing parameter " ^ p.Param.name))
         (Design_space.params space))
  in
  if not (Design_space.validate space config) then
    invalid_arg "Serialize: configuration outside the design space";
  config

(* Self-describing configuration serialization: unlike {!config_to_json},
   which renders values against a known design space, the tagged form carries
   the value kind inline so a configuration written by one process (the
   search journal) can be read back without reconstructing the space. Members
   are sorted by name, making the compact rendering a canonical key. *)

let config_to_json_tagged config =
  let value_json = function
    | Param.Real_value v -> Json.Object [ ("real", Json.Number v) ]
    | Param.Int_value v ->
        Json.Object [ ("int", Json.Number (float_of_int v)) ]
    | Param.Index_value v ->
        Json.Object [ ("index", Json.Number (float_of_int v)) ]
  in
  Json.Object
    (List.sort
       (fun (a, _) (b, _) -> String.compare a b)
       (List.map (fun (name, v) -> (name, value_json v)) (Config.bindings config)))

let config_of_json_tagged json =
  match json with
  | Json.Object members ->
      Config.make
        (List.map
           (fun (name, vj) ->
             let value =
               match vj with
               | Json.Object [ ("real", n) ] -> Param.Real_value (Json.to_float n)
               | Json.Object [ ("int", n) ] -> Param.Int_value (Json.to_int n)
               | Json.Object [ ("index", n) ] -> Param.Index_value (Json.to_int n)
               | _ ->
                   invalid_arg
                     ("Serialize: malformed tagged value for " ^ name)
             in
             (name, value))
           members)
  | Json.Null | Json.Bool _ | Json.Number _ | Json.String _ | Json.List _ ->
      invalid_arg "Serialize: tagged configuration must be an object"

let config_key config =
  Json.to_string ~pretty:false (config_to_json_tagged config)

let history_to_json space history =
  Json.List
    (List.map
       (fun e ->
         match config_to_json space e.History.config with
         | Json.Object members ->
             Json.Object
               (members
               @ [
                   ("iteration", Json.Number (float_of_int e.History.iteration));
                   ("objective", Json.Number e.History.objective);
                   ("feasible", Json.Bool e.History.feasible);
                   ("pruned", Json.Bool e.History.pruned);
                 ])
         | _ -> assert false (* config_to_json always returns an object *))
       (History.entries history))

let history_of_json space json =
  let history = History.create () in
  List.iter
    (fun entry ->
      let config = config_of_json space entry in
      let pruned =
        (* Histories written before rung pruning existed lack the field. *)
        match Json.member_opt entry "pruned" with
        | Some j -> Json.to_bool j
        | None -> false
      in
      History.add history ~config
        ~objective:(Json.to_float (Json.member entry "objective"))
        ~feasible:(Json.to_bool (Json.member entry "feasible"))
        ~pruned ())
    (Json.to_list json);
  history
