type entry = {
  iteration : int;
  config : Config.t;
  objective : float;
  feasible : bool;
  metadata : (string * float) list;
}

type t = {
  mutable rev_entries : entry list;
  mutable count : int;
  (* Evaluated configs bucketed by [Config.hash], so [mem_config] — called
     once per proposal by the dedup loop — is O(1) expected instead of a
     scan over the whole run. Collisions are resolved with [Config.equal]. *)
  seen : (int, Config.t list) Hashtbl.t;
}

let create () = { rev_entries = []; count = 0; seen = Hashtbl.create 64 }

let add t ~config ~objective ~feasible ?(metadata = []) () =
  t.count <- t.count + 1;
  t.rev_entries <-
    { iteration = t.count; config; objective; feasible; metadata }
    :: t.rev_entries;
  let h = Config.hash config in
  let bucket = Option.value (Hashtbl.find_opt t.seen h) ~default:[] in
  if not (List.exists (Config.equal config) bucket) then
    Hashtbl.replace t.seen h (config :: bucket)

let entries t = List.rev t.rev_entries
let length t = t.count

let last t = match t.rev_entries with [] -> None | e :: _ -> Some e

let best t =
  List.fold_left
    (fun acc e ->
      if not e.feasible then acc
      else
        match acc with
        | Some b when b.objective >= e.objective -> acc
        | Some _ | None -> Some e)
    None t.rev_entries

let best_so_far t =
  let es = entries t in
  let out = Array.make (List.length es) neg_infinity in
  let best = ref neg_infinity in
  List.iteri
    (fun i e ->
      if e.feasible && e.objective > !best then best := e.objective;
      out.(i) <- !best)
    es;
  out

let feasible_fraction t =
  if t.count = 0 then 0.
  else
    let k = List.length (List.filter (fun e -> e.feasible) t.rev_entries) in
    float_of_int k /. float_of_int t.count

let mem_config t config =
  match Hashtbl.find_opt t.seen (Config.hash config) with
  | None -> false
  | Some bucket -> List.exists (Config.equal config) bucket
