type entry = {
  iteration : int;
  config : Config.t;
  objective : float;
  feasible : bool;
  pruned : bool;
  metadata : (string * float) list;
}

type t = {
  mutable rev_entries : entry list;
  mutable count : int;
  (* Evaluated configs bucketed by [Config.hash], so [mem_config] — called
     once per proposal by the dedup loop — is O(1) expected instead of a
     scan over the whole run. Collisions are resolved with [Config.equal]. *)
  seen : (int, Config.t list) Hashtbl.t;
  (* Incremental training matrices: the optimizer refits its surrogate on
     every round, and rebuilding (encode + list-to-array) the full history
     each time is O(n^2) over a run. Entries added with [~encoded] land in
     these growable parallel arrays instead, and [training_arrays] is a
     plain sub-array copy. *)
  mutable enc : float array array;
  mutable obj : float array;
  mutable feas : bool array;
  mutable all_encoded : bool;  (* every add so far carried [~encoded] *)
}

let create () =
  {
    rev_entries = [];
    count = 0;
    seen = Hashtbl.create 64;
    enc = Array.make 16 [||];
    obj = Array.make 16 0.;
    feas = Array.make 16 false;
    all_encoded = true;
  }

let grow t =
  let cap = Array.length t.obj in
  if t.count > cap then begin
    let cap' = 2 * cap in
    let enc = Array.make cap' [||] in
    let obj = Array.make cap' 0. in
    let feas = Array.make cap' false in
    Array.blit t.enc 0 enc 0 cap;
    Array.blit t.obj 0 obj 0 cap;
    Array.blit t.feas 0 feas 0 cap;
    t.enc <- enc;
    t.obj <- obj;
    t.feas <- feas
  end

let add t ~config ?encoded ~objective ~feasible ?(pruned = false)
    ?(metadata = []) () =
  t.count <- t.count + 1;
  t.rev_entries <-
    { iteration = t.count; config; objective; feasible; pruned; metadata }
    :: t.rev_entries;
  (match encoded with
  | Some point when t.all_encoded ->
      grow t;
      t.enc.(t.count - 1) <- point;
      t.obj.(t.count - 1) <- objective;
      t.feas.(t.count - 1) <- feasible
  | Some _ | None -> t.all_encoded <- false);
  let h = Config.hash config in
  let bucket = Option.value (Hashtbl.find_opt t.seen h) ~default:[] in
  if not (List.exists (Config.equal config) bucket) then
    Hashtbl.replace t.seen h (config :: bucket)

let entries t = List.rev t.rev_entries
let length t = t.count

let last t = match t.rev_entries with [] -> None | e :: _ -> Some e

(* Pruned entries carry a partial-budget metric: useful to the surrogate,
   but not comparable with fully trained candidates, so the incumbent and
   the regret curve skip them. *)
let best t =
  List.fold_left
    (fun acc e ->
      (* [Float.compare] is total with NaN below every real, so an entry
         whose objective is NaN can never displace the incumbent (a plain
         [>=] guard would let it: [b >= nan] is false). A lone NaN entry is
         no incumbent at all — it would poison the EI threshold. *)
      if (not e.feasible) || e.pruned || Float.is_nan e.objective then acc
      else
        match acc with
        | Some b when Float.compare b.objective e.objective >= 0 -> acc
        | Some _ | None -> Some e)
    None t.rev_entries

(* Winner order over ALL entries, failure-tagged and infeasible included:
   feasible before infeasible, fully trained before pruned, then objective
   descending (NaN-total: NaN ranks below every real), then the rendered
   configuration as a deterministic tie-break. Mirrors the evaluator's
   artifact comparison so a supervised search picking its winner from the
   history agrees with an unsupervised one comparing artifacts directly. *)
let compare_entries a b =
  let c = Bool.compare b.feasible a.feasible in
  if c <> 0 then c
  else
    let c = Bool.compare a.pruned b.pruned in
    if c <> 0 then c
    else
      let c = Float.compare b.objective a.objective in
      if c <> 0 then c
      else String.compare (Config.to_string a.config) (Config.to_string b.config)

let best_entry t =
  match List.rev t.rev_entries with
  | [] -> None
  | e :: rest ->
      Some
        (List.fold_left
           (fun acc e -> if compare_entries e acc < 0 then e else acc)
           e rest)

let best_so_far t =
  let es = entries t in
  let out = Array.make (List.length es) neg_infinity in
  let best = ref neg_infinity in
  List.iteri
    (fun i e ->
      if e.feasible && (not e.pruned) && e.objective > !best then
        best := e.objective;
      out.(i) <- !best)
    es;
  out

let feasible_fraction t =
  if t.count = 0 then 0.
  else
    let k = List.length (List.filter (fun e -> e.feasible) t.rev_entries) in
    float_of_int k /. float_of_int t.count

let mem_config t config =
  match Hashtbl.find_opt t.seen (Config.hash config) with
  | None -> false
  | Some bucket -> List.exists (Config.equal config) bucket

let training_arrays t =
  if not t.all_encoded then
    invalid_arg "History.training_arrays: entries added without ~encoded";
  ( Array.sub t.enc 0 t.count,
    Array.sub t.obj 0 t.count,
    Array.sub t.feas 0 t.count )
