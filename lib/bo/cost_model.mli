(** Learned feasibility/cost pre-filter for the DSE inner loop.

    Every candidate the search evaluates exactly (training + lowering +
    backend estimation) doubles as a free training example for a cheap
    random-forest pair fitted over {e architecture} features — features a
    pure extractor computes from the configuration alone, without training
    anything. Once warmed up, the filter classifies each proposal before it
    is dispatched: candidates it is confident are infeasible skip the exact
    evaluation entirely and enter the history as tagged predicted-infeasible
    entries (ASHA-style — the surrogate's feasibility model still learns the
    region), while everything else falls back to the exact evaluator.

    The contract that keeps the search's result trustworthy:

    - {b Boundary margin}: a candidate is only skipped when the predicted
      probability of feasibility is below [0.5 - margin]. Anything inside
      the margin band (or predicted feasible) is evaluated exactly.
      [margin = infinity] disables skipping entirely — the search is then
      bit-identical to the unfiltered one.
    - {b Never choose a winner on a prediction}: skipping requires a
      feasible incumbent to exist, and a candidate whose predicted objective
      could still beat that incumbent ([mean + winner_sigma * std] not below
      it) is evaluated exactly unless the feasibility probability is below
      the [conviction] floor. Predicted entries are committed as infeasible,
      so they can never out-rank any exactly-evaluated feasible artifact.
    - {b Determinism}: the filter owns a private RNG (refits never perturb
      the search's stream), refits happen at observation time (model state
      is a pure function of the observation sequence, which is what keeps a
      journal-resumed search's decisions identical to the original run's),
      and decisions are made sequentially in proposal order on the calling
      domain — the worker count cannot change them. *)

type settings = {
  margin : float;
      (** skip only when [p_feasible < 0.5 - margin]; [infinity] never
          skips *)
  conviction : float;
      (** feasibility probability below which the winner guard is waived
          (the model is so sure the candidate is infeasible that its
          predicted objective is moot) *)
  min_observations : int;  (** exact evaluations before the filter arms *)
  refit_every : int;  (** refit cadence, in observations *)
  n_trees : int;
  winner_sigma : float;
      (** optimism of the would-be-winner fallback: a skip also requires
          [predicted mean + winner_sigma * std < incumbent] *)
}

val default_settings : settings
(** margin 0.15, conviction 0.02, 12 warm-up observations, refit every 4,
    30 trees, 3-sigma winner guard. *)

type verdict =
  | Exact_required of string  (** reason, for diagnostics *)
  | Predicted_infeasible of { p_feasible : float; predicted_objective : float }

type stats = {
  observations : int;
  consults : int;
  skipped : int;
  boundary : int;  (** consults that fell inside the margin band *)
  winner_guarded : int;  (** skips vetoed by the would-be-winner rule *)
  refits : int;
}

val zero_stats : stats
val merge_stats : stats -> stats -> stats
val stats_summary : stats -> string

type t

val create :
  ?settings:settings ->
  seed:int ->
  features:(Config.t -> float array) ->
  unit ->
  t
(** [features] must be pure, cheap, and fixed-length for the lifetime of the
    filter (e.g. the design-space encoding concatenated with analytic
    architecture/platform features). @raise Invalid_argument when
    [refit_every <= 0] or [min_observations < 2]. *)

val observe :
  t -> config:Config.t -> objective:float -> feasible:bool -> pruned:bool ->
  unit
(** Record one {e exact} evaluation outcome (never a predicted one). May
    refit the internal models; feature vectors are cached, so refits never
    re-extract. *)

val classify : t -> Config.t -> verdict
(** Judge one candidate. Read-only with respect to the models (only
    counters mutate), so calling it is side-effect-free for determinism
    purposes. *)

val predicted_evaluation :
  p_feasible:float -> predicted_objective:float -> Optimizer.evaluation
(** The history entry a skipped candidate commits: infeasible, non-pruned,
    tagged with {!predicted_key} / {!prob_key} metadata. *)

val prefilter :
  t -> index:int -> Config.t -> Optimizer.evaluation option
(** {!classify} packaged for {!Optimizer.maximize_indexed}'s [?prefilter]
    hook: [Some predicted_evaluation] on a skip, [None] otherwise. Callers
    that journal evaluations should wrap this to bypass the filter for
    replayed records and to journal the predicted commits. *)

val predicted_key : string
(** Metadata tag ([= 1.]) marking predicted-infeasible history entries. *)

val prob_key : string
(** Metadata key carrying the predicted probability of feasibility. *)

val is_predicted : (string * float) list -> bool
(** Does this history-entry metadata carry the {!predicted_key} tag? *)

val stats : t -> stats
val skipped_configs : t -> Config.t list
(** Configurations skipped so far, in decision order — the corpus the
    differential validator re-evaluates exactly. *)
