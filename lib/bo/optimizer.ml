module Rng = Homunculus_util.Rng
module Par = Homunculus_par.Par

type settings = {
  n_init : int;
  n_iter : int;
  pool_size : int;
  local_search_frac : float;
  surrogate_trees : int;
  batch_size : int;
  refit_every : int;
  refit_threshold : int;
}

let default_settings =
  {
    n_init = 10;
    n_iter = 40;
    pool_size = 200;
    local_search_frac = 0.5;
    surrogate_trees = 30;
    batch_size = 1;
    refit_every = 1;
    refit_threshold = 0;
  }

(* Warm-start arithmetic for replay-then-continue: a re-search that replays
   [replayed] prior journal records re-derives those proposals as cache hits
   (same seed, same stream), so extending [n_iter] by the replayed guided
   tail leaves exactly [fresh] new guided evaluations to run live once the
   replay prefix is exhausted. When [replayed >= n_init] the whole warm-up
   phase is cache hits — the "skip n_init" rule costs nothing to honor
   because the warm-up proposals were already paid for. *)
let continuation settings ~replayed ~fresh =
  if fresh < 0 then invalid_arg "Bo.Optimizer.continuation: fresh < 0";
  let replayed = Stdlib.max 0 replayed in
  let guided_replayed = Stdlib.max 0 (replayed - settings.n_init) in
  { settings with n_iter = guided_replayed + fresh }

type evaluation = {
  objective : float;
  feasible : bool;
  pruned : bool;
  metadata : (string * float) list;
}

let record history space config { objective; feasible; pruned; metadata }
    ~on_iteration =
  History.add history ~config
    ~encoded:(Design_space.encode space config)
    ~objective ~feasible ~pruned ~metadata ();
  match (on_iteration, History.last history) with
  | Some callback, Some latest -> callback (History.length history) latest
  | (None, _ | _, None) -> ()

let random_search rng ~n space ~f =
  let history = History.create () in
  for _ = 1 to n do
    let config = Design_space.sample rng space in
    record history space config (f config) ~on_iteration:None
  done;
  history

let fresh_candidate rng space history ~pending =
  (* Avoid re-evaluating an exact duplicate (including candidates already
     chosen for the in-flight batch); give up after a few tries for small
     discrete spaces. *)
  let rec go attempts =
    let c = Design_space.sample rng space in
    if
      attempts <= 0
      || (not (History.mem_config history c))
         && not (List.exists (Config.equal c) pending)
    then c
    else go (attempts - 1)
  in
  go 8

(* Evaluate a batch of proposals concurrently, then commit the results to the
   history in proposal order. The black box runs on pool workers, so all the
   ordering the caller can observe (History contents, [on_iteration]
   callbacks) is fixed by the proposal order, not by scheduling. Each
   candidate's index is its eventual position in the history (commits happen
   per batch, so the base is the history length at dispatch time), giving
   the black box a schedule-independent identity for the proposal. *)
(* The pre-filter (when present) judges each proposal sequentially on the
   caller's domain, before the batch is dispatched — so its decisions depend
   only on proposal order, never on worker scheduling. Skipped candidates
   commit the filter's predicted evaluation in proposal order alongside the
   exact results. *)
(* [dispatch], when present, replaces the in-process pool for the exact
   evaluations: the surviving (index, config) pairs are handed over en bloc
   and the dispatcher returns their evaluations in the same order. The
   distributed coordinator plugs in here — proposals become leases to worker
   processes — and because proposals, pre-filter decisions, and commits all
   stay on the calling domain in proposal order, the history is identical
   whether the batch ran inline, on a pool, or on a fleet. *)
let evaluate_batch ~par ?prefilter ?dispatch history space ~f ~on_iteration
    batch =
  let base = History.length history in
  let decisions =
    match prefilter with
    | None -> Array.map (fun _ -> None) batch
    | Some judge -> Array.mapi (fun i config -> judge ~index:(base + i) config) batch
  in
  let work = ref [] in
  Array.iteri
    (fun i config ->
      if Option.is_none decisions.(i) then work := (base + i, config) :: !work)
    batch;
  let work = Array.of_list (List.rev !work) in
  let evals =
    match dispatch with
    | None ->
        Par.parallel_map ~pool:par ~chunk:1
          (fun (index, config) -> f ~index config)
          work
    | Some send ->
        let evals = send work in
        if Array.length evals <> Array.length work then
          invalid_arg "Bo.Optimizer: dispatch returned wrong arity";
        evals
  in
  let next = ref 0 in
  Array.iteri
    (fun i config ->
      let eval =
        match decisions.(i) with
        | Some predicted -> predicted
        | None ->
            let e = evals.(!next) in
            incr next;
            e
      in
      record history space config eval ~on_iteration)
    batch

let maximize_indexed rng ?(settings = default_settings) ?pool ?on_iteration
    ?on_batch_start ?prefilter ?on_refit ?dispatch space ~f =
  if settings.n_init <= 0 then invalid_arg "Bo.Optimizer.maximize: n_init <= 0";
  if settings.batch_size <= 0 then
    invalid_arg "Bo.Optimizer.maximize: batch_size <= 0";
  if settings.refit_every <= 0 then
    invalid_arg "Bo.Optimizer.maximize: refit_every <= 0";
  let par = match pool with Some p -> p | None -> Par.default () in
  let history = History.create () in
  let batch_start () =
    match on_batch_start with Some hook -> hook () | None -> ()
  in
  (* Phase 1: uniform random initialization, evaluated [batch_size] at a
     time. Proposals are drawn sequentially from [rng] (so the stream is
     independent of the worker count); only the evaluations overlap. *)
  let remaining = ref settings.n_init in
  while !remaining > 0 do
    let k = Stdlib.min settings.batch_size !remaining in
    let pending = ref [] in
    let batch =
      Array.init k (fun _ ->
          let c = fresh_candidate rng space history ~pending:!pending in
          pending := c :: !pending;
          c)
    in
    batch_start ();
    evaluate_batch ~par ?prefilter ?dispatch history space ~f ~on_iteration
      batch;
    remaining := !remaining - k
  done;
  (* Phase 2: surrogate-guided rounds. Each round proposes up to
     [batch_size] candidates from one surrogate (constant-liar batching), so
     a batched run spends the same evaluation budget over [n_iter /
     batch_size] refits — and once the history outgrows [refit_threshold],
     the surrogate pair is additionally reused until [refit_every] fresh
     evaluations have accumulated, amortizing forest fits over several
     rounds. Reused rounds consume no RNG for fitting; determinism is per
     (seed, settings), as always. *)
  let fitted = ref None in
  let remaining = ref settings.n_iter in
  while !remaining > 0 do
    let k = Stdlib.min settings.batch_size !remaining in
    let len = History.length history in
    let surrogate, feas_model =
      match !fitted with
      | Some (s, fm, fit_len)
        when len > settings.refit_threshold
             && len - fit_len < settings.refit_every ->
          (s, fm)
      | Some _ | None ->
          let x, y, feasible_flags = History.training_arrays history in
          (* The objective model learns from the feasible slice only:
             infeasible entries carry placeholder objectives (failure tags,
             predicted-infeasible commits) that nothing downstream consumes.
             The feasibility model still sees every entry. *)
          let keep = ref [] in
          Array.iteri
            (fun i flag -> if flag then keep := i :: !keep)
            feasible_flags;
          let sel = Array.of_list (List.rev !keep) in
          let s =
            Surrogate.fit rng ~n_trees:settings.surrogate_trees ~pool:par
              ~x:(Array.map (fun i -> x.(i)) sel)
              ~y:(Array.map (fun i -> y.(i)) sel)
              ()
          in
          let fm =
            Feasibility.fit rng ~n_trees:settings.surrogate_trees ~pool:par ~x
              ~feasible:feasible_flags ()
          in
          (match on_refit with Some hook -> hook len | None -> ());
          fitted := Some (s, fm, len);
          (s, fm)
    in
    let incumbent = History.best history in
    let best_value =
      match incumbent with
      | Some e -> e.History.objective
      | None -> neg_infinity
    in
    (* Candidate pool: uniform samples plus neighbors of the incumbent,
       drawn sequentially so the RNG stream is schedule-independent. *)
    let n_local =
      match incumbent with
      | None -> 0
      | Some _ ->
          int_of_float
            (settings.local_search_frac *. float_of_int settings.pool_size)
    in
    let candidates =
      Array.init settings.pool_size (fun i ->
          match incumbent with
          | Some e when i < n_local ->
              Design_space.neighbor rng space e.History.config
          | Some _ | None -> Design_space.sample rng space)
    in
    (* Scoring is pure: fan it out over the pool. *)
    let scores =
      Par.parallel_map ~pool:par
        (fun candidate ->
          if History.mem_config history candidate then neg_infinity
          else begin
            let point = Design_space.encode space candidate in
            let mean, std = Surrogate.predict surrogate point in
            let ei =
              Acquisition.expected_improvement ~mean ~std ~best:best_value
            in
            let p_feas = Feasibility.prob_feasible feas_model point in
            if ei = infinity then p_feas (* no incumbent: chase feasibility *)
            else ei *. p_feas
          end)
        candidates
    in
    (* Constant-liar batch proposal: pick the top-scoring candidate, then
       pretend it was already evaluated at the incumbent's value (the
       CL-max lie) and pick again. The lie leaves [best_value] — and hence
       every remaining EI score — unchanged, so without refitting the
       surrogate it reduces to selecting the k best distinct candidates;
       its only effect is that a proposal cannot be picked twice. Ties keep
       the lowest pool index, matching the sequential scan. *)
    let chosen = ref [] in
    let n_chosen = ref 0 in
    while !n_chosen < k do
      let best_i = ref (-1) in
      let best_s = ref neg_infinity in
      Array.iteri
        (fun i s ->
          if
            s > !best_s
            && not (List.exists (Config.equal candidates.(i)) !chosen)
          then begin
            best_i := i;
            best_s := s
          end)
        scores;
      let c =
        if !best_i >= 0 then begin
          scores.(!best_i) <- neg_infinity;
          candidates.(!best_i)
        end
        else
          (* Every pool candidate is a duplicate: fall back to fresh uniform
             samples, as the sequential loop did. *)
          fresh_candidate rng space history ~pending:!chosen
      in
      chosen := c :: !chosen;
      incr n_chosen
    done;
    let batch = Array.of_list (List.rev !chosen) in
    batch_start ();
    evaluate_batch ~par ?prefilter ?dispatch history space ~f ~on_iteration
      batch;
    remaining := !remaining - k
  done;
  history

let maximize rng ?settings ?pool ?on_iteration ?on_batch_start ?prefilter
    ?on_refit ?dispatch space ~f =
  maximize_indexed rng ?settings ?pool ?on_iteration ?on_batch_start ?prefilter
    ?on_refit ?dispatch space ~f:(fun ~index:_ config -> f config)
