(** JSON interchange in HyperMapper's configuration schema.

    The paper's implementation writes the Alchemy-derived design space to "a
    JSON configuration file describing searchable parameters. This JSON file
    is fed to HyperMapper to start the optimization process" (§4). This
    module emits and reads that same schema, so spaces and evaluation logs
    round-trip through files. *)

module Json = Homunculus_util.Json

val scenario_to_json :
  application_name:string ->
  objectives:string list ->
  ?iterations:int ->
  ?doe_samples:int ->
  Design_space.t ->
  Json.t
(** The full HyperMapper scenario document: application name, optimization
    objectives, iteration budget, design-of-experiment warm-up size, and
    one ["input_parameters"] member per parameter with its
    ["parameter_type"] ("real" | "integer" | "ordinal" | "categorical"),
    ["values"] (bounds or domain), and optional ["transform": "log"]. *)

val design_space_to_json : Design_space.t -> Json.t
(** Just the ["input_parameters"] object. *)

val design_space_of_json : Json.t -> Design_space.t
(** Inverse of {!design_space_to_json} (accepts a full scenario too).
    @raise Invalid_argument on malformed documents. *)

val config_to_json : Design_space.t -> Config.t -> Json.t
(** Raw values keyed by parameter name (ordinals by value, categoricals by
    label — HyperMapper's CSV/JSON convention). *)

val config_of_json : Design_space.t -> Json.t -> Config.t
(** @raise Invalid_argument when a member is missing or out of domain. *)

val config_to_json_tagged : Config.t -> Json.t
(** Self-describing form: each value is wrapped as [{"real": v}],
    [{"int": n}], or [{"index": i}] and members are sorted by name, so a
    configuration round-trips through a file without the design space in
    hand (the search journal's record format). *)

val config_of_json_tagged : Json.t -> Config.t
(** Inverse of {!config_to_json_tagged}.
    @raise Invalid_argument on malformed documents. *)

val config_key : Config.t -> string
(** Canonical text key for a configuration: the compact rendering of
    {!config_to_json_tagged}. Equal configurations produce equal keys
    regardless of binding order; the journal's replay cache indexes on it. *)

val history_to_json : Design_space.t -> History.t -> Json.t
(** Evaluation log: a list of objects with the configuration's raw values
    plus ["objective"], ["feasible"], and ["iteration"]. *)

val history_of_json : Design_space.t -> Json.t -> History.t
