module Rf = Homunculus_ml.Random_forest.Regressor

(* [Constant] covers the no-training-data case (e.g. a history whose every
   entry is infeasible, so the objective model has nothing to learn from).
   The optimizer only consults the surrogate once a feasible incumbent
   exists, so the constant's value is never load-bearing — but returning
   (0, 0) without consuming the RNG keeps the caller's stream identical to
   the non-degenerate run shape. *)
type t = Constant | Forest of Rf.t

let fit rng ?(n_trees = 30) ?pool ~x ~y () =
  if Array.length x = 0 then Constant
  else Forest (Rf.fit rng ~n_trees ?pool ~x ~y ())

let predict t point =
  match t with
  | Constant -> (0., 0.)
  | Forest forest -> Rf.predict_with_std forest point
