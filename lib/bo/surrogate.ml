module Rf = Homunculus_ml.Random_forest.Regressor

type t = Rf.t

let fit rng ?(n_trees = 30) ?pool ~x ~y () = Rf.fit rng ~n_trees ?pool ~x ~y ()

let predict t point = Rf.predict_with_std t point
