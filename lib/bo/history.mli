(** Evaluation log of an optimization run; the source of the paper's regret
    plots (Figs. 4 and 7: best objective so far per iteration). *)

type entry = {
  iteration : int;  (** 1-based evaluation index *)
  config : Config.t;
  objective : float;
  feasible : bool;
  pruned : bool;
      (** evaluation was stopped at a successive-halving rung, so [objective]
          is a partial-budget metric: the surrogate trains on it, but
          {!best} / {!best_so_far} skip it *)
  metadata : (string * float) list;
      (** backend measurements: resource counts, latency, throughput *)
}

type t

val create : unit -> t
val add : t -> config:Config.t -> ?encoded:float array -> objective:float ->
  feasible:bool -> ?pruned:bool -> ?metadata:(string * float) list -> unit ->
  unit
(** [~encoded] is the design-space encoding of [config]; when every add
    supplies it, the history maintains incremental training matrices and
    {!training_arrays} costs one sub-array copy instead of re-encoding the
    whole run per surrogate refit. [~pruned] (default [false]) marks a
    partial, rung-stopped evaluation. *)

val entries : t -> entry list
(** In evaluation order. *)

val length : t -> int

val last : t -> entry option
(** Most recently added entry. *)

val best : t -> entry option
(** Highest-objective feasible non-pruned entry; [None] if nothing feasible
    (and fully trained) yet. NaN objectives never win (and are never the
    incumbent): comparison uses the NaN-total [Float.compare] order. *)

val compare_entries : entry -> entry -> int
(** Winner order over all entries (negative = [a] is better): feasible
    before infeasible, fully trained before pruned, objective descending
    with NaN below every real, then the rendered configuration as a
    deterministic tie-break. *)

val best_entry : t -> entry option
(** Minimum of {!compare_entries} over the whole history — unlike {!best},
    infeasible and pruned entries are eligible (they lose to any feasible
    one), so a run whose every candidate failed still has a well-defined
    "least bad" entry. [None] only on an empty history. *)

val best_so_far : t -> float array
(** [best_so_far t].(i) is the best feasible non-pruned objective seen in
    evaluations [0..i]; [neg_infinity] before the first such one. This is the
    regret curve. *)

val feasible_fraction : t -> float
(** [0.] on an empty history. *)

val mem_config : t -> Config.t -> bool
(** Has this exact configuration already been evaluated? *)

val training_arrays : t -> float array array * float array * bool array
(** [(x, y, feasible)] in evaluation order, ready for surrogate and
    feasibility fitting. O(n) pointer copies — encodings are cached at
    {!add} time. @raise Invalid_argument if any entry was added without
    [~encoded]. *)
