(** The constrained Bayesian-optimization loop (HyperMapper's core algorithm
    as configured by the paper: uniform random warm-up, random-forest
    surrogate, Expected Improvement weighted by probability of feasibility),
    extended with constant-liar batch proposal so several candidates can be
    evaluated concurrently per surrogate fit. *)

type settings = {
  n_init : int;  (** uniform random warm-up evaluations *)
  n_iter : int;  (** model-guided evaluations after warm-up *)
  pool_size : int;  (** candidates scored per BO iteration *)
  local_search_frac : float;
      (** fraction of the pool drawn as neighbors of the incumbent rather
          than uniformly (exploitation vs exploration) *)
  surrogate_trees : int;
  batch_size : int;
      (** candidates proposed per surrogate fit (constant-liar batching) and
          evaluated concurrently on the worker pool. [1] recovers the
          classic fully-sequential loop; [k > 1] spends the same evaluation
          budget over [k] times fewer surrogate fits. *)
  refit_every : int;
      (** once the history holds more than [refit_threshold] entries, reuse
          the fitted surrogate pair until this many fresh evaluations have
          been committed since the last fit. [1] refits every round (the
          classic loop). *)
  refit_threshold : int;
      (** history length below which the surrogate is refitted every round
          regardless of [refit_every] — early rounds are where each new
          observation moves the model most. *)
}

val default_settings : settings
(** 10 warm-up, 40 guided, pool 200, 0.5 local, 30 trees, batch 1, refit
    every round. *)

val continuation : settings -> replayed:int -> fresh:int -> settings
(** Warm-start entry point for replay-then-continue searches: the settings
    for a re-search that replays [replayed] previously journaled
    evaluations (as supervisor cache hits) and then spends [fresh] {e new}
    guided evaluations. [n_init] is preserved — when [replayed >= n_init]
    every warm-up proposal is a cache hit, so the random-initialization
    phase is effectively skipped — and [n_iter] becomes
    [max 0 (replayed - n_init) + fresh]: the guided prefix the replay
    covers, plus the fresh budget. Because the re-driven optimizer consumes
    the same RNG stream, the resulting history is bit-for-bit the one a
    single longer search would have produced (the warm-start determinism
    contract tested by the autopilot suite).
    @raise Invalid_argument when [fresh < 0]. *)

type evaluation = {
  objective : float;  (** value to maximize, e.g. F1 *)
  feasible : bool;
  pruned : bool;
      (** the evaluation was stopped early at a successive-halving rung;
          [objective] is the partial-budget metric (recorded in the history
          with the same flag, so the surrogate learns from it but the
          incumbent ignores it) *)
  metadata : (string * float) list;
}

val maximize :
  Homunculus_util.Rng.t ->
  ?settings:settings ->
  ?pool:Homunculus_par.Par.pool ->
  ?on_iteration:(int -> History.entry -> unit) ->
  ?on_batch_start:(unit -> unit) ->
  ?prefilter:(index:int -> Config.t -> evaluation option) ->
  ?on_refit:(int -> unit) ->
  ?dispatch:((int * Config.t) array -> evaluation array) ->
  Design_space.t ->
  f:(Config.t -> evaluation) ->
  History.t
(** Run the full loop and return the evaluation history. The black box [f] is
    called exactly [n_init + n_iter] times (duplicate candidates are replaced
    by fresh uniform samples before evaluation when possible).

    Surrogate fits, candidate scoring, and batch evaluations run on [pool]
    (default {!Homunculus_par.Par.default}); [f] may be called from pool
    worker domains, concurrently with other calls within the same batch.
    The result is deterministic: for a fixed seed and settings, the returned
    history is identical at any worker count, because all random draws happen
    sequentially on the caller's RNG and results are committed in proposal
    order. [on_iteration] likewise fires in proposal order, on the calling
    domain.

    [on_batch_start] fires on the calling domain immediately before each
    batch of evaluations is dispatched (in both phases). A rung scheduler
    uses it to freeze the pruning thresholds a whole batch is judged
    against, which is what keeps pruning decisions independent of worker
    count.

    [prefilter] is consulted for every proposal, sequentially in proposal
    order on the calling domain, after [on_batch_start] and before the batch
    is dispatched. Returning [Some evaluation] commits that evaluation in
    the candidate's history slot without calling [f] (the learned cost
    model's predicted-infeasible skip); [None] evaluates exactly. Because
    decisions precede dispatch, they depend on the batch boundary (a
    batch-mate's outcome is not yet observable) but never on worker
    scheduling — the ASHA freeze rule, applied to filtering. [index] is the
    same proposal-order history index [f] would have received.

    [on_refit] fires (with the history length) each time the surrogate pair
    is actually fitted — the refit-cadence benches count these.

    [dispatch], when present, replaces the in-process pool for exact
    evaluations: each batch's surviving [(index, config)] pairs (after
    pre-filter skips) are handed over in proposal order and the dispatcher
    must return their evaluations in the same order ([f] is then never
    called). The distributed coordinator leases batches to worker processes
    through this hook; since proposals, pre-filter decisions, and commits
    all stay on the calling domain, the history remains bit-identical to an
    inline run. @raise Invalid_argument if the returned array's length
    differs from the batch's. *)

val maximize_indexed :
  Homunculus_util.Rng.t ->
  ?settings:settings ->
  ?pool:Homunculus_par.Par.pool ->
  ?on_iteration:(int -> History.entry -> unit) ->
  ?on_batch_start:(unit -> unit) ->
  ?prefilter:(index:int -> Config.t -> evaluation option) ->
  ?on_refit:(int -> unit) ->
  ?dispatch:((int * Config.t) array -> evaluation array) ->
  Design_space.t ->
  f:(index:int -> Config.t -> evaluation) ->
  History.t
(** {!maximize} with the candidate's proposal-order index passed to the
    black box: [index] is the 0-based position the evaluation will occupy in
    the returned history, fixed at proposal time and therefore identical at
    any worker count. Fault-injection plans and journals address candidates
    by this index. *)

val random_search :
  Homunculus_util.Rng.t ->
  n:int ->
  Design_space.t ->
  f:(Config.t -> evaluation) ->
  History.t
(** Pure random search baseline for the DSE ablation bench. *)
