open Homunculus_tensor

type t = {
  layers : Layer.t array;
  hidden_act : Activation.t;
  loss : Loss.t;
  input_dim : int;
}

let create rng ~input_dim ~hidden ~output_dim ?(hidden_act = Activation.Relu) () =
  if input_dim <= 0 || output_dim <= 0 then
    invalid_arg "Mlp.create: non-positive dimension";
  Array.iter
    (fun h -> if h <= 0 then invalid_arg "Mlp.create: non-positive hidden size")
    hidden;
  let dims = Array.concat [ [| input_dim |]; hidden; [| output_dim |] ] in
  let n_layers = Array.length dims - 1 in
  let layers =
    Array.init n_layers (fun i ->
        let act = if i = n_layers - 1 then Activation.Linear else hidden_act in
        Layer.create rng ~n_in:dims.(i) ~n_out:dims.(i + 1) ~act)
  in
  { layers; hidden_act; loss = Loss.Softmax_cross_entropy; input_dim }

let of_layers layers =
  let n = Array.length layers in
  if n = 0 then invalid_arg "Mlp.of_layers: empty layer stack";
  for i = 1 to n - 1 do
    if Layer.n_in layers.(i) <> Layer.n_out layers.(i - 1) then
      invalid_arg "Mlp.of_layers: layer dimension chain mismatch"
  done;
  let hidden_act =
    if n > 1 then layers.(0).Layer.act else Activation.Relu
  in
  { layers; hidden_act; loss = Loss.Softmax_cross_entropy;
    input_dim = Layer.n_in layers.(0) }

let layers t = t.layers

let layer_sizes t =
  Array.append [| t.input_dim |] (Array.map Layer.n_out t.layers)

let hidden_activation t = t.hidden_act

let param_count t =
  Array.fold_left (fun acc l -> acc + Layer.param_count l) 0 t.layers

let loss t = t.loss

let logits t x =
  Array.fold_left (fun input l -> snd (Layer.forward l input)) x t.layers

let predict_proba t x = Loss.probabilities t.loss (logits t x)

let predict t x = Vec.argmax (predict_proba t x)

(* Batched forward pass: one blocked [X * W^T] product per layer instead of
   one matvec per sample. Per output element the accumulation order matches
   [Layer.forward]'s matvec (ascending over the input dimension, then the
   bias), so batched predictions are bit-identical to the per-sample path. *)
let logits_batch t samples =
  Array.fold_left
    (fun acc l ->
      let z = Mat.matmul_nt acc l.Layer.w in
      Mat.add_row_inplace z l.Layer.b;
      Mat.map_inplace (Activation.apply l.Layer.act) z;
      z)
    (Mat.of_rows samples) t.layers

let predict_all t samples =
  if Array.length samples = 0 then [||]
  else begin
    (* Softmax is monotone, so the argmax of the logits is the argmax of
       [predict_proba]. *)
    let out = logits_batch t samples in
    Array.init out.Mat.rows (fun i -> Vec.argmax (Mat.row out i))
  end

let train_sample t ~x ~target =
  (* Forward with caches, then backward through the layer stack. *)
  let n = Array.length t.layers in
  let inputs = Array.make n x in
  let zs = Array.make n [||] in
  let activations = Array.make n [||] in
  let current = ref x in
  for i = 0 to n - 1 do
    inputs.(i) <- !current;
    let z, a = Layer.forward t.layers.(i) !current in
    zs.(i) <- z;
    activations.(i) <- a;
    current := a
  done;
  let out = !current in
  let loss_value = Loss.value t.loss ~logits:out ~target in
  let upstream = ref (Loss.gradient t.loss ~logits:out ~target) in
  for i = n - 1 downto 0 do
    upstream :=
      Layer.backward t.layers.(i) ~x:inputs.(i) ~z:zs.(i) ~a:activations.(i)
        ~upstream:!upstream
  done;
  loss_value

type workspace = {
  ws_batch : int;
  x : Mat.t;
  target : Mat.t;
  dloss : Mat.t;
  row_loss : float array;
  layer_ws : Layer.workspace array;
}

let make_workspace t ~batch =
  if batch <= 0 then invalid_arg "Mlp.make_workspace: batch <= 0";
  let n_out = Layer.n_out t.layers.(Array.length t.layers - 1) in
  {
    ws_batch = batch;
    x = Mat.create batch t.input_dim;
    target = Mat.create batch n_out;
    dloss = Mat.create batch n_out;
    row_loss = Array.make batch 0.;
    layer_ws = Array.map (fun l -> Layer.make_workspace l ~batch) t.layers;
  }

let workspace_batch ws = ws.ws_batch

(* Batched train step over ws.x / ws.target (filled by the caller): one fused
   forward/backward per layer, gradients accumulated into the layers, per-row
   losses left in ws.row_loss. Bit-identical to running [train_sample] over
   the rows in ascending order — see the reduction-order notes on
   [Layer.forward_batch]/[backward_batch] and [Loss.batch]. *)
let train_batch t ws =
  let n = Array.length t.layers in
  let input = ref ws.x in
  for i = 0 to n - 1 do
    Layer.forward_batch t.layers.(i) ws.layer_ws.(i) ~x:!input;
    input := ws.layer_ws.(i).Layer.a
  done;
  Loss.batch t.loss ~logits:!input ~target:ws.target ~grad:ws.dloss
    ~row_loss:ws.row_loss;
  let upstream = ref ws.dloss in
  for i = n - 1 downto 0 do
    let x = if i = 0 then ws.x else ws.layer_ws.(i - 1).Layer.a in
    Layer.backward_batch ~need_dx:(i > 0) t.layers.(i) ws.layer_ws.(i) ~x
      ~upstream:!upstream;
    upstream := ws.layer_ws.(i).Layer.dx
  done

let zero_grads t = Array.iter Layer.zero_grads t.layers

let scale_grads t alpha = Array.iter (fun l -> Layer.scale_grads l alpha) t.layers

let parameter_buffers t =
  Array.concat
    (Array.to_list
       (Array.map (fun l -> [| l.Layer.w.Mat.data; l.Layer.b |]) t.layers))

let gradient_buffers t =
  Array.concat
    (Array.to_list
       (Array.map (fun l -> [| l.Layer.grad_w.Mat.data; l.Layer.grad_b |]) t.layers))

let copy t = { t with layers = Array.map Layer.copy t.layers }
