(** Mini-batch training loop with optional early stopping, playing the role
    Keras plays in the paper's optimization core (§3.2.4). *)

type engine =
  | Batched
      (** fused matrix forward/backward over the whole mini-batch, reusing
          preallocated workspaces across steps (the default; see DESIGN.md
          "Batched training engine") *)
  | Per_sample
      (** the original one-sample-at-a-time loop, kept as the reference
          oracle the batched engine is checked against *)

type config = {
  epochs : int;
  batch_size : int;
  optimizer : Optimizer.algo;
  patience : int option;
      (** stop after this many epochs without validation improvement;
          requires a validation set (see {!fit}) *)
  shuffle_each_epoch : bool;
  lr_decay_per_epoch : float;
      (** multiply the learning rate by this after each epoch (1. = constant) *)
  engine : engine;
}

val default_config : config
(** 30 epochs, batch 32, Adam(1e-3), patience 5, constant learning rate,
    batched engine. *)

type history = {
  train_loss : float array;  (** mean per-sample loss per epoch *)
  val_metric : float array;  (** empty when no validation set was given *)
  epochs_run : int;
}

val fit :
  Homunculus_util.Rng.t ->
  Mlp.t ->
  config ->
  ?validation:Dataset.t ->
  ?on_epoch:
    (epoch:int -> loss:float -> metric:float option -> [ `Continue | `Stop ]) ->
  Dataset.t ->
  history
(** Trains in place. The validation metric is macro-F1 (binary F1 for
    two-class problems), which is also what early stopping monitors.

    Both engines visit samples in the same shuffled order and produce
    bit-identical parameters: the batched engine's kernels accumulate each
    output element in the same IEEE-754 order as the per-sample path (the
    reduction-order contract, documented on {!Mlp.train_batch}).

    [on_epoch] runs after each epoch's optimizer steps and validation
    bookkeeping with the 1-based epoch index, that epoch's mean training
    loss, and its validation metric (if any); returning [`Stop] ends
    training after that epoch. Successive-halving rung pruning hooks in
    here; the evaluation supervisor's divergence detector watches [loss].

    @raise Invalid_argument if [epochs <= 0], [batch_size <= 0], the training
    set is empty, or [patience] is set without a validation set (early
    stopping monitors the validation metric, so it could never fire). *)

val evaluate_f1 : Mlp.t -> Dataset.t -> float
(** F1 in [0, 1]: binary F1 (positive class 1) for two-class datasets, macro
    F1 otherwise. *)

val evaluate_accuracy : Mlp.t -> Dataset.t -> float
