module Rng = Homunculus_util.Rng
module Mat = Homunculus_tensor.Mat

type t = {
  x : float array array;
  y : int array;
  n_classes : int;
  feature_names : string array;
  mutable target_cache : Mat.t option;
}

let create ?feature_names ~x ~y ~n_classes () =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Dataset.create: |x| <> |y|";
  if n_classes <= 0 then invalid_arg "Dataset.create: n_classes <= 0";
  let d = if n = 0 then 0 else Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> d then invalid_arg "Dataset.create: ragged features")
    x;
  Array.iter
    (fun label ->
      if label < 0 || label >= n_classes then
        invalid_arg "Dataset.create: label out of range")
    y;
  let feature_names =
    match feature_names with
    | Some names ->
        if Array.length names <> d then
          invalid_arg "Dataset.create: feature_names length mismatch";
        names
    | None -> Array.init d (fun i -> Printf.sprintf "f%d" i)
  in
  { x; y; n_classes; feature_names; target_cache = None }

let n_samples t = Array.length t.x
let n_features t = Array.length t.feature_names

let subset t indices =
  {
    t with
    x = Array.map (fun i -> Array.copy t.x.(i)) indices;
    y = Array.map (fun i -> t.y.(i)) indices;
    target_cache = None;
  }

let shuffle rng t = subset t (Rng.permutation rng (n_samples t))

let split rng ~train_frac t =
  if train_frac <= 0. || train_frac >= 1. then
    invalid_arg "Dataset.split: train_frac outside (0, 1)";
  let n = n_samples t in
  let perm = Rng.permutation rng n in
  let n_train = int_of_float (Float.round (train_frac *. float_of_int n)) in
  let n_train = Homunculus_util.Mathx.clamp_int ~lo:1 ~hi:(n - 1) n_train in
  let train_idx = Array.sub perm 0 n_train in
  let test_idx = Array.sub perm n_train (n - n_train) in
  (subset t train_idx, subset t test_idx)

let class_counts t =
  let counts = Array.make t.n_classes 0 in
  Array.iter (fun label -> counts.(label) <- counts.(label) + 1) t.y;
  counts

let select_features t cols =
  Array.iter
    (fun c ->
      if c < 0 || c >= n_features t then
        invalid_arg "Dataset.select_features: column out of range")
    cols;
  {
    t with
    x = Array.map (fun row -> Array.map (fun c -> row.(c)) cols) t.x;
    feature_names = Array.map (fun c -> t.feature_names.(c)) cols;
  }

let feature_index t name =
  let rec go i =
    if i >= Array.length t.feature_names then None
    else if String.equal t.feature_names.(i) name then Some i
    else go (i + 1)
  in
  go 0

let concat_samples a b =
  if a.n_classes <> b.n_classes then
    invalid_arg "Dataset.concat_samples: n_classes mismatch";
  if a.feature_names <> b.feature_names then
    invalid_arg "Dataset.concat_samples: feature schema mismatch";
  {
    a with
    x = Array.append a.x b.x;
    y = Array.append a.y b.y;
    target_cache = None;
  }

let one_hot ~n_classes label =
  let v = Array.make n_classes 0. in
  v.(label) <- 1.;
  v

(* The cache build is guarded so that concurrent trainers (DSE workers fitting
   the same split repeatedly) never observe a torn matrix; the matrix itself
   is immutable once published, so readers outside the lock are safe. *)
let target_lock = Mutex.create ()

let target_matrix t =
  match t.target_cache with
  | Some m -> m
  | None ->
      Mutex.lock target_lock;
      let m =
        match t.target_cache with
        | Some m -> m (* lost the race; reuse the winner's matrix *)
        | None ->
            let n = Array.length t.y in
            let m = Mat.create n t.n_classes in
            for i = 0 to n - 1 do
              Mat.set m i t.y.(i) 1.
            done;
            t.target_cache <- Some m;
            m
      in
      Mutex.unlock target_lock;
      m
