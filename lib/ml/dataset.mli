(** Labeled datasets for supervised training.

    A dataset is a feature matrix plus integer class labels in
    [0 .. n_classes - 1]. Feature names travel with the data because the
    model-fusion pass (paper §3.2.5) reasons about feature-set overlap by
    name. *)

type t = {
  x : float array array;  (** [x.(i)] is the feature vector of sample [i] *)
  y : int array;  (** class labels, same length as [x] *)
  n_classes : int;
  feature_names : string array;  (** length = feature count *)
  mutable target_cache : Homunculus_tensor.Mat.t option;
      (** lazily built one-hot target matrix — read it via {!target_matrix},
          never directly *)
}

val create :
  ?feature_names:string array ->
  x:float array array ->
  y:int array ->
  n_classes:int ->
  unit ->
  t
(** @raise Invalid_argument on length mismatches, ragged features, or labels
    outside [0, n_classes). Default feature names are ["f0"; "f1"; ...]. *)

val n_samples : t -> int
val n_features : t -> int

val shuffle : Homunculus_util.Rng.t -> t -> t
(** Fresh dataset with rows permuted uniformly. *)

val split : Homunculus_util.Rng.t -> train_frac:float -> t -> t * t
(** Shuffled train/test split. @raise Invalid_argument unless
    [0. < train_frac < 1.]. *)

val subset : t -> int array -> t
(** Select rows by index. *)

val class_counts : t -> int array

val select_features : t -> int array -> t
(** Project onto a subset of feature columns (by index). *)

val feature_index : t -> string -> int option
(** Look up a feature column by name. *)

val concat_samples : t -> t -> t
(** Stack the rows of two datasets with identical schemas.
    @raise Invalid_argument on schema mismatch. *)

val one_hot : n_classes:int -> int -> float array

val target_matrix : t -> Homunculus_tensor.Mat.t
(** [n_samples x n_classes] one-hot matrix (row [i] is
    [one_hot ~n_classes y.(i)]), built lazily on first use and cached on the
    dataset, so repeated fits of the same split during DSE share one build
    instead of re-allocating per-sample targets per fit. Thread-safe; the
    returned matrix must not be mutated. *)
