(** Output losses. The MLP's final layer emits raw logits; the loss couples
    the link function (softmax) with the error so the gradient with respect to
    the logits stays numerically simple. *)

type t =
  | Softmax_cross_entropy  (** multi-class; also used for binary with 2 logits *)
  | Mse  (** regression / auxiliary heads *)

val value : t -> logits:float array -> target:float array -> float
(** [target] is one-hot for cross-entropy, raw values for MSE. *)

val gradient : t -> logits:float array -> target:float array -> float array
(** dL/dlogits. For softmax cross-entropy this is [softmax logits - target]. *)

val batch :
  t ->
  logits:Homunculus_tensor.Mat.t ->
  target:Homunculus_tensor.Mat.t ->
  grad:Homunculus_tensor.Mat.t ->
  row_loss:float array ->
  unit
(** Batched loss: row [s] of [grad] receives dL/dlogits for sample [s] and
    [row_loss.(s)] its loss, in one pass over the batch. Bit-identical per
    row to {!value} / {!gradient}; [grad] and [row_loss] are caller-owned
    workspaces. *)

val probabilities : t -> float array -> float array
(** Decision-time link: softmax for cross-entropy, identity for MSE. *)

val name : t -> string
