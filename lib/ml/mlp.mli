(** Multi-layer perceptron (the model family Homunculus searches over for the
    Taurus backend).

    Hidden layers use a configurable activation (ReLU by default); the output
    layer is linear and coupled to a softmax cross-entropy loss, so
    [predict_proba] returns class probabilities. *)

open Homunculus_tensor

type t

val create :
  Homunculus_util.Rng.t ->
  input_dim:int ->
  hidden:int array ->
  output_dim:int ->
  ?hidden_act:Activation.t ->
  unit ->
  t
(** @raise Invalid_argument on non-positive dimensions. *)

val of_layers : Layer.t array -> t
(** Wrap an existing layer stack (not copied) — for rebuilding a network
    from serialized parameters. Each layer keeps its own activation (so
    {!logits_batch} honors it exactly); the reported hidden activation is
    the first layer's. The loss defaults to softmax cross-entropy.
    @raise Invalid_argument on an empty stack or a dimension-chain
    mismatch. *)

val layers : t -> Layer.t array
val layer_sizes : t -> int array
(** [input_dim; hidden...; output_dim]. *)

val hidden_activation : t -> Activation.t
val param_count : t -> int
val loss : t -> Loss.t

val logits : t -> Vec.t -> Vec.t
val predict_proba : t -> Vec.t -> Vec.t
val predict : t -> Vec.t -> int

val logits_batch : t -> float array array -> Mat.t
(** Forward the whole batch through one blocked [X * W^T] product per layer
    (row [i] holds sample [i]'s logits). Bit-identical to mapping {!logits}
    over the rows, but far cheaper for the test-set-sized batches the
    evaluator and validation loop feed it. *)

val predict_all : t -> float array array -> int array
(** Batched argmax over {!logits_batch}. *)

val train_sample : t -> x:Vec.t -> target:Vec.t -> float
(** Run forward + backward for one sample, accumulating gradients into the
    layers; returns the per-sample loss. Call [zero_grads] before a batch and
    feed the layers' gradient buffers to an optimizer afterwards. This is the
    reference path the batched engine is checked against. *)

type workspace = {
  ws_batch : int;  (** row capacity every buffer was sized for *)
  x : Mat.t;  (** batch x input_dim: caller fills rows before [train_batch] *)
  target : Mat.t;  (** batch x n_classes: caller fills one-hot rows *)
  dloss : Mat.t;  (** batch x n_classes: dL/dlogits scratch *)
  row_loss : float array;  (** per-row losses after [train_batch] *)
  layer_ws : Layer.workspace array;
}
(** All buffers for one batched training step, allocated once per
    (batch, architecture) shape by {!make_workspace} and reused across steps
    — the steady-state loop allocates only [n_classes]-sized loss
    temporaries. *)

val make_workspace : t -> batch:int -> workspace
val workspace_batch : workspace -> int

val train_batch : t -> workspace -> unit
(** Fused batched forward + backward over the rows of [ws.x]/[ws.target]:
    accumulates gradients into the layers (like {!train_sample} does) and
    leaves per-row losses in [ws.row_loss]. Bit-identical to calling
    {!train_sample} on each row in ascending order — the documented
    reduction-order contract of the batched engine. *)

val zero_grads : t -> unit
val scale_grads : t -> float -> unit

val parameter_buffers : t -> float array array
(** Flat views of all trainable parameters, ordered [w0; b0; w1; b1; ...]. *)

val gradient_buffers : t -> float array array
(** Flat views of the matching gradient accumulators. *)

val copy : t -> t
