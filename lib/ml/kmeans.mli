(** Lloyd's KMeans with kmeans++ initialization.

    Used by the IIsy/MAT backend path (Fig. 7), where the cluster count is
    bounded by the available match-action tables. *)

type t

val fit :
  Homunculus_util.Rng.t ->
  k:int ->
  ?max_iter:int ->
  ?n_init:int ->
  ?pool:Homunculus_par.Par.pool ->
  float array array ->
  t
(** [n_init] independent restarts keep the best inertia (default 3,
    [max_iter] default 100). Restarts run in parallel on [pool] (default
    {!Homunculus_par.Par.default}) from pre-split RNG streams; ties keep the
    lowest restart index, so the result is identical at any worker count.
    @raise Invalid_argument if [k <= 0] or there are fewer samples than
    clusters. *)

val k : t -> int
val centroids : t -> float array array
val inertia : t -> float
(** Sum of squared distances of samples to their assigned centroid. *)

val predict : t -> float array -> int
val predict_all : t -> float array array -> int array

val merge_clusters : t -> into:int -> t
(** Coarsen the model to [into] clusters by greedily merging the closest
    centroid pairs (weighted by assigned mass). This is how Homunculus fits a
    KMeans into fewer MATs at the cost of fidelity (paper §5.2.2).
    @raise Invalid_argument unless [1 <= into <= k]. *)
