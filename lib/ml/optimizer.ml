type algo =
  | Sgd of { lr : float; momentum : float; weight_decay : float }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float;
    }

let sgd ?(momentum = 0.) ?(weight_decay = 0.) ~lr () =
  Sgd { lr; momentum; weight_decay }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ?(weight_decay = 0.)
    ~lr () =
  Adam { lr; beta1; beta2; eps; weight_decay }

type state =
  | Sgd_state of float array array  (* velocity per buffer *)
  | Adam_state of { m : float array array; v : float array array; mutable t : int }

type t = {
  algo : algo;
  state : state;
  sizes : int array;
  mutable live_lr : float;
}

let learning_rate = function Sgd { lr; _ } -> lr | Adam { lr; _ } -> lr

let create algo sizes =
  let buffers () = Array.map (fun n -> Array.make n 0.) sizes in
  let state =
    match algo with
    | Sgd _ -> Sgd_state (buffers ())
    | Adam _ -> Adam_state { m = buffers (); v = buffers (); t = 0 }
  in
  { algo; state; sizes; live_lr = learning_rate algo }

let check t params grads =
  if
    Array.length params <> Array.length t.sizes
    || Array.length grads <> Array.length t.sizes
  then invalid_arg "Optimizer.step: buffer count mismatch";
  Array.iteri
    (fun i n ->
      if Array.length params.(i) <> n || Array.length grads.(i) <> n then
        invalid_arg "Optimizer.step: buffer size mismatch")
    t.sizes

(* The update loops run once per mini-batch over every parameter, so they are
   part of the training hot path. Loop-invariant subexpressions are hoisted
   (identical floating-point values, computed once) and the weight-decay
   branch is lifted out of the per-element loop; the per-element arithmetic
   is unchanged, so updates are bit-identical to the textbook form. Unsafe
   accesses are covered by [check].

   [grad_scale] multiplies each gradient as it is read, exactly where a
   separate [scale_grads] pass would have written it back first: the product
   is formed before any optimizer arithmetic touches it, so folding the scale
   in here is bit-identical to pre-scaling while saving a full read-modify-
   write sweep over every gradient buffer per batch. *)
let step ?(grad_scale = 1.) t ~params ~grads =
  check t params grads;
  let lr = t.live_lr in
  match (t.algo, t.state) with
  | Sgd { momentum; weight_decay; _ }, Sgd_state velocity ->
      let decay = 1. -. (lr *. weight_decay) in
      Array.iteri
        (fun b p ->
          let g = grads.(b) and v = velocity.(b) in
          for i = 0 to Array.length p - 1 do
            if weight_decay > 0. then
              Array.unsafe_set p i (Array.unsafe_get p i *. decay);
            Array.unsafe_set v i
              ((momentum *. Array.unsafe_get v i)
              -. (lr *. (Array.unsafe_get g i *. grad_scale)));
            Array.unsafe_set p i (Array.unsafe_get p i +. Array.unsafe_get v i)
          done)
        params
  | Adam { beta1; beta2; eps; weight_decay; _ }, Adam_state st ->
      st.t <- st.t + 1;
      let bc1 = 1. -. (beta1 ** float_of_int st.t) in
      let bc2 = 1. -. (beta2 ** float_of_int st.t) in
      let one_m_b1 = 1. -. beta1 and one_m_b2 = 1. -. beta2 in
      let decay = 1. -. (lr *. weight_decay) in
      Array.iteri
        (fun b p ->
          let g = grads.(b) and m = st.m.(b) and v = st.v.(b) in
          for i = 0 to Array.length p - 1 do
            if weight_decay > 0. then
              Array.unsafe_set p i (Array.unsafe_get p i *. decay);
            let gi = Array.unsafe_get g i *. grad_scale in
            let mi = (beta1 *. Array.unsafe_get m i) +. (one_m_b1 *. gi) in
            let vi = (beta2 *. Array.unsafe_get v i) +. (one_m_b2 *. gi *. gi) in
            Array.unsafe_set m i mi;
            Array.unsafe_set v i vi;
            let m_hat = mi /. bc1 and v_hat = vi /. bc2 in
            Array.unsafe_set p i
              (Array.unsafe_get p i -. (lr *. m_hat /. (sqrt v_hat +. eps)))
          done)
        params
  | Sgd _, Adam_state _ | Adam _, Sgd_state _ ->
      assert false (* create ties algo and state together *)

let algo t = t.algo

let set_learning_rate t lr =
  if lr <= 0. then invalid_arg "Optimizer.set_learning_rate: non-positive rate";
  t.live_lr <- lr

let current_learning_rate t = t.live_lr
