open Homunculus_tensor
module Rng = Homunculus_util.Rng
module Par = Homunculus_par.Par

type t = {
  centroids : float array array;
  inertia : float;
  weights : float array;  (** fraction of training mass per cluster *)
}

let nearest centroids x =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun c mu ->
      let d = Vec.sq_dist x mu in
      if d < !best_d then begin
        best := c;
        best_d := d
      end)
    centroids;
  (!best, !best_d)

let plus_plus_init rng ~k x =
  let n = Array.length x in
  let centroids = Array.make k x.(Rng.int rng n) in
  let dist2 = Array.make n infinity in
  for c = 1 to k - 1 do
    let prev = centroids.(c - 1) in
    for i = 0 to n - 1 do
      dist2.(i) <- Stdlib.min dist2.(i) (Vec.sq_dist x.(i) prev)
    done;
    let total = Array.fold_left ( +. ) 0. dist2 in
    if total <= 0. then centroids.(c) <- x.(Rng.int rng n)
    else begin
      let target = Rng.float rng total in
      let acc = ref 0. and chosen = ref (n - 1) in
      (try
         for i = 0 to n - 1 do
           acc := !acc +. dist2.(i);
           if target < !acc then begin
             chosen := i;
             raise Exit
           end
         done
       with Exit -> ());
      centroids.(c) <- x.(!chosen)
    end
  done;
  Array.map Array.copy centroids

let lloyd ~max_iter ~k x centroids =
  let n = Array.length x in
  let d = Array.length x.(0) in
  let assign = Array.make n 0 in
  let changed = ref true in
  let iter = ref 0 in
  while !changed && !iter < max_iter do
    incr iter;
    changed := false;
    for i = 0 to n - 1 do
      let c, _ = nearest centroids x.(i) in
      if c <> assign.(i) then begin
        assign.(i) <- c;
        changed := true
      end
    done;
    let sums = Array.make_matrix k d 0. in
    let counts = Array.make k 0 in
    for i = 0 to n - 1 do
      let c = assign.(i) in
      counts.(c) <- counts.(c) + 1;
      for j = 0 to d - 1 do
        sums.(c).(j) <- sums.(c).(j) +. x.(i).(j)
      done
    done;
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        centroids.(c) <-
          Array.map (fun s -> s /. float_of_int counts.(c)) sums.(c)
      (* Empty clusters keep their previous centroid. *)
    done
  done;
  let inertia = ref 0. in
  let counts = Array.make k 0 in
  for i = 0 to n - 1 do
    let c, dist = nearest centroids x.(i) in
    counts.(c) <- counts.(c) + 1;
    inertia := !inertia +. dist
  done;
  let weights =
    Array.map (fun c -> float_of_int c /. float_of_int n) counts
  in
  { centroids; inertia = !inertia; weights }

let fit rng ~k ?(max_iter = 100) ?(n_init = 3) ?pool x =
  if k <= 0 then invalid_arg "Kmeans.fit: k <= 0";
  if Array.length x < k then invalid_arg "Kmeans.fit: fewer samples than clusters";
  (* The restarts are independent: pre-split one stream per restart and run
     them on the pool. The winner is the first restart (in index order)
     attaining the minimum inertia — the same tie rule the sequential loop
     used — so the fitted model is identical at any worker count. *)
  let restarts = Rng.split_n rng (Stdlib.max 1 n_init) in
  let models =
    Par.parallel_map ?pool
      (fun rng -> lloyd ~max_iter ~k x (plus_plus_init rng ~k x))
      restarts
  in
  let best = ref models.(0) in
  for i = 1 to Array.length models - 1 do
    if models.(i).inertia < !best.inertia then best := models.(i)
  done;
  !best

let k t = Array.length t.centroids
let centroids t = Array.map Array.copy t.centroids
let inertia t = t.inertia

let predict t x = fst (nearest t.centroids x)
let predict_all t xs = Array.map (predict t) xs

let merge_clusters t ~into =
  if into < 1 || into > k t then invalid_arg "Kmeans.merge_clusters: bad target";
  let centroids = ref (Array.map Array.copy t.centroids) in
  let weights = ref (Array.copy t.weights) in
  while Array.length !centroids > into do
    let cs = !centroids and ws = !weights in
    let m = Array.length cs in
    (* Find the closest pair of centroids. *)
    let bi = ref 0 and bj = ref 1 and best = ref infinity in
    for i = 0 to m - 1 do
      for j = i + 1 to m - 1 do
        let d = Vec.sq_dist cs.(i) cs.(j) in
        if d < !best then begin
          best := d;
          bi := i;
          bj := j
        end
      done
    done;
    let wi = ws.(!bi) and wj = ws.(!bj) in
    let wsum = if wi +. wj > 0. then wi +. wj else 1. in
    let merged =
      Array.init (Array.length cs.(0)) (fun idx ->
          ((wi *. cs.(!bi).(idx)) +. (wj *. cs.(!bj).(idx))) /. wsum)
    in
    let next_c = ref [] and next_w = ref [] in
    for i = m - 1 downto 0 do
      if i <> !bi && i <> !bj then begin
        next_c := cs.(i) :: !next_c;
        next_w := ws.(i) :: !next_w
      end
    done;
    centroids := Array.of_list (merged :: !next_c);
    weights := Array.of_list ((wi +. wj) :: !next_w)
  done;
  { centroids = !centroids; weights = !weights; inertia = t.inertia }
