module Rng = Homunculus_util.Rng
module Mat = Homunculus_tensor.Mat

type engine = Batched | Per_sample

type config = {
  epochs : int;
  batch_size : int;
  optimizer : Optimizer.algo;
  patience : int option;
  shuffle_each_epoch : bool;
  lr_decay_per_epoch : float;
  engine : engine;
}

let default_config =
  {
    epochs = 30;
    batch_size = 32;
    optimizer = Optimizer.adam ~lr:1e-3 ();
    patience = Some 5;
    shuffle_each_epoch = true;
    lr_decay_per_epoch = 1.;
    engine = Batched;
  }

type history = {
  train_loss : float array;
  val_metric : float array;
  epochs_run : int;
}

let evaluate_f1 model (d : Dataset.t) =
  let pred = Mlp.predict_all model d.Dataset.x in
  if d.Dataset.n_classes = 2 then Metrics.f1 ~pred ~truth:d.Dataset.y ()
  else Metrics.macro_f1 ~n_classes:d.Dataset.n_classes ~pred ~truth:d.Dataset.y

let evaluate_accuracy model (d : Dataset.t) =
  let pred = Mlp.predict_all model d.Dataset.x in
  Metrics.accuracy ~pred ~truth:d.Dataset.y

let fit rng model config ?validation ?on_epoch (train : Dataset.t) =
  if config.epochs <= 0 then invalid_arg "Train.fit: epochs <= 0";
  if config.batch_size <= 0 then invalid_arg "Train.fit: batch_size <= 0";
  let n = Dataset.n_samples train in
  if n = 0 then invalid_arg "Train.fit: empty training set";
  (* Early stopping monitors the validation metric; without a validation set
     it could never fire, so passing patience without one is a config bug. *)
  (match (config.patience, validation) with
  | Some _, None -> invalid_arg "Train.fit: patience requires a validation set"
  | (Some _, Some _ | None, _) -> ());
  let input_dim = Dataset.n_features train in
  let n_classes = train.Dataset.n_classes in
  let params = Mlp.parameter_buffers model in
  let grads = Mlp.gradient_buffers model in
  let sizes = Array.map Array.length params in
  let opt = Optimizer.create config.optimizer sizes in
  let targets = Dataset.target_matrix train in
  (* Workspaces are created once per batch shape and reused for every step of
     every epoch; an epoch sees at most two shapes (full and remainder). *)
  let ws_cache = ref [] in
  let ws_for batch =
    match List.assoc_opt batch !ws_cache with
    | Some ws -> ws
    | None ->
        let ws = Mlp.make_workspace model ~batch in
        ws_cache := (batch, ws) :: !ws_cache;
        ws
  in
  let target_row = Array.make n_classes 0. in
  let order = Array.init n (fun i -> i) in
  let train_losses = ref [] in
  let val_metrics = ref [] in
  let best_val = ref neg_infinity in
  let best_params = ref None in
  let stale = ref 0 in
  let epochs_run = ref 0 in
  (try
     for _epoch = 1 to config.epochs do
       incr epochs_run;
       if config.shuffle_each_epoch then Rng.shuffle_in_place rng order;
       let epoch_loss = ref 0. in
       let pos = ref 0 in
       while !pos < n do
         let batch_end = min n (!pos + config.batch_size) in
         let batch_n = batch_end - !pos in
         Mlp.zero_grads model;
         (match config.engine with
         | Per_sample ->
             (* Reference oracle: exactly the pre-batching training loop. *)
             for k = !pos to batch_end - 1 do
               let i = order.(k) in
               Array.blit targets.Mat.data (i * n_classes) target_row 0
                 n_classes;
               epoch_loss :=
                 !epoch_loss
                 +. Mlp.train_sample model ~x:train.Dataset.x.(i)
                      ~target:target_row
             done
         | Batched ->
             let ws = ws_for batch_n in
             (* Manual gather loops: rows here are a handful of floats, where
                an [Array.blit] call costs more than the copy itself. *)
             let xd = ws.Mlp.x.Mat.data and td = ws.Mlp.target.Mat.data in
             let tgd = targets.Mat.data in
             for k = 0 to batch_n - 1 do
               let i = order.(!pos + k) in
               let src = train.Dataset.x.(i) in
               let xbase = k * input_dim in
               for j = 0 to input_dim - 1 do
                 Array.unsafe_set xd (xbase + j) (Array.unsafe_get src j)
               done;
               let tsrc = i * n_classes and tdst = k * n_classes in
               for j = 0 to n_classes - 1 do
                 Array.unsafe_set td (tdst + j)
                   (Array.unsafe_get tgd (tsrc + j))
               done
             done;
             Mlp.train_batch model ws;
             (* Fold row losses in sample order so the reported epoch loss is
                bit-identical to the per-sample path's running sum. *)
             for k = 0 to batch_n - 1 do
               epoch_loss := !epoch_loss +. ws.Mlp.row_loss.(k)
             done);
         (* Mean gradient: the 1/batch scale is folded into the optimizer
            read (bit-identical to a separate [scale_grads] sweep). *)
         Optimizer.step opt ~grad_scale:(1. /. float_of_int batch_n) ~params
           ~grads;
         pos := batch_end
       done;
       train_losses := (!epoch_loss /. float_of_int n) :: !train_losses;
       if config.lr_decay_per_epoch <> 1. then
         Optimizer.set_learning_rate opt
           (Optimizer.current_learning_rate opt *. config.lr_decay_per_epoch);
       let metric_opt =
         match validation with
         | None -> None
         | Some v -> Some (evaluate_f1 model v)
       in
       let patience_stop = ref false in
       (match metric_opt with
       | None -> ()
       | Some metric ->
           val_metrics := metric :: !val_metrics;
           if metric > !best_val then begin
             best_val := metric;
             best_params := Some (Array.map Array.copy params);
             stale := 0
           end
           else begin
             incr stale;
             match config.patience with
             | Some p when !stale >= p -> patience_stop := true
             | Some _ | None -> ()
           end);
       (* The rung hook sees the epoch's metric even when patience is about
          to stop the run, so a scheduler's accounting stays complete. *)
       (match on_epoch with
       | Some hook -> (
           match
             hook ~epoch:!epochs_run
               ~loss:(!epoch_loss /. float_of_int n)
               ~metric:metric_opt
           with
           | `Stop -> raise Exit
           | `Continue -> ())
       | None -> ());
       if !patience_stop then raise Exit
     done
   with Exit -> ());
  (* Restore the best validation checkpoint, if we tracked one. *)
  (match !best_params with
  | Some saved ->
      Array.iteri
        (fun b src -> Array.blit src 0 params.(b) 0 (Array.length src))
        saved
  | None -> ());
  {
    train_loss = Array.of_list (List.rev !train_losses);
    val_metric = Array.of_list (List.rev !val_metrics);
    epochs_run = !epochs_run;
  }
