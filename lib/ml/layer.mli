(** A fully connected (dense) layer: [a = act (W x + b)].

    Weights are stored as an [n_out x n_in] matrix so a forward pass is a
    single [Mat.matvec]. Gradient buffers live alongside the parameters and
    are accumulated across a mini-batch, then consumed by the optimizer. *)

open Homunculus_tensor

type t = {
  w : Mat.t;
  b : Vec.t;
  act : Activation.t;
  grad_w : Mat.t;
  grad_b : Vec.t;
}

val create :
  Homunculus_util.Rng.t -> n_in:int -> n_out:int -> act:Activation.t -> t
(** He-style initialization scaled by fan-in; biases start at zero. *)

val of_params : w:Mat.t -> b:Vec.t -> act:Activation.t -> t
(** Wrap existing parameters (not copied) in a layer with fresh zeroed
    gradient buffers — for rebuilding a network from a serialized IR.
    @raise Invalid_argument if [b]'s dimension is not [w]'s row count. *)

val n_in : t -> int
val n_out : t -> int
val param_count : t -> int

val forward : t -> Vec.t -> Vec.t * Vec.t
(** [forward layer x] is [(z, a)]: pre-activation and activation. *)

val backward :
  t -> x:Vec.t -> z:Vec.t -> a:Vec.t -> upstream:Vec.t -> Vec.t
(** Accumulate parameter gradients for one sample and return dL/dx for the
    layer below. [upstream] is dL/da. *)

type workspace = {
  z : Mat.t;  (** batch x n_out: pre-activations *)
  a : Mat.t;  (** batch x n_out: activations *)
  delta : Mat.t;  (** batch x n_out: dL/dz *)
  dx : Mat.t;  (** batch x n_in: dL/dx for the layer below *)
  nz : int array;
      (** batch x n_out: per-row ascending indices where delta <> 0,
          compacted by the ReLU backward arm *)
  nz_cnt : int array;  (** per-row count of live entries in [nz] *)
}
(** Preallocated buffers for the batched fast path, sized once per
    (batch, layer) shape by {!make_workspace} and reused across steps. *)

val make_workspace : t -> batch:int -> workspace

val forward_batch : t -> workspace -> x:Mat.t -> unit
(** One [X * W^T] GEMM plus bias broadcast and activation over a whole
    mini-batch ([x] is batch x n_in, row per sample), filling [ws.z] and
    [ws.a]. Row [s] is bit-identical to [forward] on sample [s]: per output
    element the accumulation runs over ascending input index with a single
    accumulator, then adds the bias, exactly like [Mat.matvec]. *)

val backward_batch :
  ?need_dx:bool -> t -> workspace -> x:Mat.t -> upstream:Mat.t -> unit
(** Batched backward: computes [ws.delta] from [upstream] (dL/da, batch x
    n_out), accumulates parameter gradients, and leaves dL/dx in [ws.dx].
    Bit-identical to folding {!backward} over the batch rows in ascending
    order — the weight-gradient GEMM is sample-major with the same
    skip-zero-rows rule as [Mat.outer_accum], and the [dx] GEMM matches
    [Mat.matvec_t]'s ascending-row accumulation. [need_dx:false] (for the
    bottom layer, whose dx has no consumer) skips the dx GEMM entirely and
    leaves [ws.dx] stale; parameter gradients are unaffected. *)

val zero_grads : t -> unit
val scale_grads : t -> float -> unit
(** Divide accumulated gradients, e.g. by the batch size. *)

val copy : t -> t
(** Deep copy (fresh parameter and gradient buffers). *)
