module Rng = Homunculus_util.Rng
module Stats = Homunculus_util.Stats
module Par = Homunculus_par.Par

let bootstrap rng n = Array.init n (fun _ -> Rng.int rng n)

(* Trees are embarrassingly parallel: pre-split one RNG stream per tree (in
   index order, off the caller's generator) and fit the forest on the domain
   pool. Tree [i] sees the same stream at any worker count, so the fitted
   forest is identical whether the pool has 1 or N domains. *)
let fit_trees ?pool rng n_trees fit_one =
  let rngs = Rng.split_n rng n_trees in
  Par.parallel_map ?pool fit_one rngs

module Classifier = struct
  type t = { trees : Decision_tree.Classifier.t array; n_classes : int }

  let fit rng ?(n_trees = 30) ?params ?pool ~x ~y ~n_classes () =
    let n = Array.length x in
    if n = 0 then invalid_arg "Random_forest.Classifier.fit: empty input";
    let n_features = Array.length x.(0) in
    let params =
      match params with
      | Some p -> p
      | None ->
          {
            Decision_tree.default_params with
            m_try = Some (Stdlib.max 1 (int_of_float (sqrt (float_of_int n_features))));
          }
    in
    let trees =
      fit_trees ?pool rng n_trees (fun rng ->
          let idx = bootstrap rng n in
          let bx = Array.map (fun i -> x.(i)) idx in
          let by = Array.map (fun i -> y.(i)) idx in
          Decision_tree.Classifier.fit ~rng ~params ~x:bx ~y:by ~n_classes ())
    in
    { trees; n_classes }

  let predict_proba t sample =
    let acc = Array.make t.n_classes 0. in
    Array.iter
      (fun tree ->
        let p = Decision_tree.Classifier.predict_proba tree sample in
        Array.iteri (fun c v -> acc.(c) <- acc.(c) +. v) p)
      t.trees;
    let n = float_of_int (Array.length t.trees) in
    Array.map (fun v -> v /. n) acc

  let predict t sample = Stats.argmax (predict_proba t sample)
  let predict_all t samples = Array.map (predict t) samples
  let n_trees t = Array.length t.trees
end

module Regressor = struct
  type t = { trees : Decision_tree.Regressor.t array }

  let fit rng ?(n_trees = 30) ?params ?pool ~x ~y () =
    let n = Array.length x in
    if n = 0 then invalid_arg "Random_forest.Regressor.fit: empty input";
    let n_features = Array.length x.(0) in
    let params =
      match params with
      | Some p -> p
      | None ->
          {
            Decision_tree.default_params with
            m_try = Some (Stdlib.max 1 (n_features / 3));
          }
    in
    let trees =
      fit_trees ?pool rng n_trees (fun rng ->
          let idx = bootstrap rng n in
          let bx = Array.map (fun i -> x.(i)) idx in
          let by = Array.map (fun i -> y.(i)) idx in
          Decision_tree.Regressor.fit ~rng ~params ~x:bx ~y:by ())
    in
    { trees }

  let per_tree t sample =
    Array.map (fun tree -> Decision_tree.Regressor.predict tree sample) t.trees

  let predict t sample = Stats.mean (per_tree t sample)

  let predict_with_std t sample =
    let preds = per_tree t sample in
    (Stats.mean preds, Stats.std preds)

  let n_trees t = Array.length t.trees
end
