module Mathx = Homunculus_util.Mathx
open Homunculus_tensor

type t = Softmax_cross_entropy | Mse

let value t ~logits ~target =
  match t with
  | Softmax_cross_entropy ->
      let lse = Mathx.log_sum_exp logits in
      let acc = ref 0. in
      Array.iteri
        (fun i ti -> if ti > 0. then acc := !acc -. (ti *. (logits.(i) -. lse)))
        target;
      !acc
  | Mse ->
      let acc = ref 0. in
      Array.iteri
        (fun i ti ->
          let d = logits.(i) -. ti in
          acc := !acc +. (d *. d))
        target;
      !acc /. float_of_int (Array.length logits)

let gradient t ~logits ~target =
  match t with
  | Softmax_cross_entropy ->
      let p = Mathx.softmax logits in
      Array.mapi (fun i pi -> pi -. target.(i)) p
  | Mse ->
      let n = float_of_int (Array.length logits) in
      Array.mapi (fun i li -> 2. *. (li -. target.(i)) /. n) logits

let batch t ~logits ~target ~grad ~row_loss =
  let b = logits.Mat.rows and c = logits.Mat.cols in
  if target.Mat.rows <> b || target.Mat.cols <> c then
    invalid_arg "Loss.batch: target shape mismatch";
  if grad.Mat.rows <> b || grad.Mat.cols <> c then
    invalid_arg "Loss.batch: gradient shape mismatch";
  if Array.length row_loss < b then invalid_arg "Loss.batch: row_loss too short";
  (* One allocation-free pass over the batch. Each row replicates the exact
     arithmetic (operation order included) of the per-sample [value] /
     [gradient] above, so losses and gradients are bit-identical to the
     per-sample path. *)
  let ld = logits.Mat.data and td = target.Mat.data and gd = grad.Mat.data in
  if c = 0 then Array.fill row_loss 0 b 0.
  else
    match t with
  | Softmax_cross_entropy ->
      for s = 0 to b - 1 do
        let base = s * c in
        (* [Mathx.log_sum_exp]: running max seeded with element 0, then the
           exp-sum in ascending order. The scan spells out [Stdlib.max] on
           floats — keep current unless the candidate compares greater, where
           NaN (unordered, so [x <> x]) never wins — because the polymorphic
           [Stdlib.max] boxes both floats and calls into C on every element. *)
        let m = ref (Array.unsafe_get ld base) in
        for j = 0 to c - 1 do
          let x = Array.unsafe_get ld (base + j) in
          if not (!m >= x || x <> x) then m := x
        done;
        let lse =
          if !m = neg_infinity then neg_infinity
          else begin
            let acc = ref 0. in
            for j = 0 to c - 1 do
              acc := !acc +. exp (Array.unsafe_get ld (base + j) -. !m)
            done;
            !m +. log !acc
          end
        in
        let v = ref 0. in
        for j = 0 to c - 1 do
          let ti = Array.unsafe_get td (base + j) in
          if ti > 0. then
            v := !v -. (ti *. (Array.unsafe_get ld (base + j) -. lse))
        done;
        row_loss.(s) <- !v;
        for j = 0 to c - 1 do
          Array.unsafe_set gd (base + j)
            (exp (Array.unsafe_get ld (base + j) -. lse)
            -. Array.unsafe_get td (base + j))
        done
      done
  | Mse ->
      let n = float_of_int c in
      for s = 0 to b - 1 do
        let base = s * c in
        let acc = ref 0. in
        for j = 0 to c - 1 do
          let d = Array.unsafe_get ld (base + j) -. Array.unsafe_get td (base + j) in
          acc := !acc +. (d *. d)
        done;
        row_loss.(s) <- !acc /. n;
        for j = 0 to c - 1 do
          Array.unsafe_set gd (base + j)
            (2.
            *. (Array.unsafe_get ld (base + j) -. Array.unsafe_get td (base + j))
            /. n)
        done
      done

let probabilities t logits =
  match t with
  | Softmax_cross_entropy -> Mathx.softmax logits
  | Mse -> Array.copy logits

let name = function
  | Softmax_cross_entropy -> "softmax_cross_entropy"
  | Mse -> "mse"
