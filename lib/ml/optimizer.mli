(** First-order parameter-update rules.

    An optimizer instance owns per-buffer auxiliary state (momentum velocity,
    Adam moments) for a fixed set of flat parameter buffers, registered once
    at creation. *)

type algo =
  | Sgd of { lr : float; momentum : float; weight_decay : float }
  | Adam of {
      lr : float;
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float;
    }

val sgd : ?momentum:float -> ?weight_decay:float -> lr:float -> unit -> algo
(** [weight_decay] (default 0.) applies decoupled L2 shrinkage before each
    update. *)

val adam :
  ?beta1:float -> ?beta2:float -> ?eps:float -> ?weight_decay:float ->
  lr:float -> unit -> algo
(** AdamW-style decoupled weight decay (default 0.). *)

type t

val create : algo -> int array -> t
(** [create algo sizes] registers one buffer per entry of [sizes]. *)

val step :
  ?grad_scale:float -> t -> params:float array array ->
  grads:float array array -> unit
(** Apply one update in place. [params] and [grads] must match the registered
    buffer count and sizes. @raise Invalid_argument otherwise.

    [grad_scale] (default 1.) multiplies each gradient as it is read,
    bit-identical to scaling the buffers beforehand (e.g. by [1/batch]) but
    without the extra read-modify-write sweep; [grads] is left untouched. *)

val algo : t -> algo
val learning_rate : algo -> float

val set_learning_rate : t -> float -> unit
(** Override the live learning rate (used by schedules); auxiliary state is
    preserved. @raise Invalid_argument on non-positive rates. *)

val current_learning_rate : t -> float
