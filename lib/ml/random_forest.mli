(** Random forests: bagged CART trees with per-split feature subsampling.

    The regressor is the Bayesian-optimization surrogate model the paper
    configures in HyperMapper (§5: "Random Forests surrogate ... known to work
    well with systems workloads"); its per-tree spread provides the
    uncertainty estimate consumed by Expected Improvement. *)

module Classifier : sig
  type t

  val fit :
    Homunculus_util.Rng.t ->
    ?n_trees:int ->
    ?params:Decision_tree.params ->
    ?pool:Homunculus_par.Par.pool ->
    x:float array array ->
    y:int array ->
    n_classes:int ->
    unit ->
    t
  (** Defaults: 30 trees, [m_try = sqrt n_features], depth 12. Trees are
      fitted on [pool] (default {!Homunculus_par.Par.default}) from
      pre-split per-tree RNG streams, so the forest is identical at any
      worker count. *)

  val predict_proba : t -> float array -> float array
  (** Mean of per-tree class distributions. *)

  val predict : t -> float array -> int
  val predict_all : t -> float array array -> int array
  val n_trees : t -> int
end

module Regressor : sig
  type t

  val fit :
    Homunculus_util.Rng.t ->
    ?n_trees:int ->
    ?params:Decision_tree.params ->
    ?pool:Homunculus_par.Par.pool ->
    x:float array array ->
    y:float array ->
    unit ->
    t
  (** Defaults: 30 trees, [m_try = max(1, n_features / 3)], depth 12. Same
      pre-split parallel fitting (and determinism guarantee) as
      {!Classifier.fit}. *)

  val predict : t -> float array -> float
  val predict_with_std : t -> float array -> float * float
  (** Mean and standard deviation across trees (the BO uncertainty signal). *)

  val n_trees : t -> int
end
