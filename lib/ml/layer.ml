open Homunculus_tensor
module Rng = Homunculus_util.Rng

type t = {
  w : Mat.t;
  b : Vec.t;
  act : Activation.t;
  grad_w : Mat.t;
  grad_b : Vec.t;
}

let create rng ~n_in ~n_out ~act =
  let scale = sqrt (2. /. float_of_int n_in) in
  {
    w = Mat.init n_out n_in (fun _ _ -> Rng.gaussian rng ~sigma:scale ());
    b = Vec.create n_out;
    act;
    grad_w = Mat.create n_out n_in;
    grad_b = Vec.create n_out;
  }

let of_params ~w ~b ~act =
  if Vec.dim b <> w.Mat.rows then
    invalid_arg "Layer.of_params: bias dimension <> weight rows";
  {
    w;
    b;
    act;
    grad_w = Mat.create w.Mat.rows w.Mat.cols;
    grad_b = Vec.create w.Mat.rows;
  }

let n_in t = t.w.Mat.cols
let n_out t = t.w.Mat.rows
let param_count t = Mat.n_elements t.w + Vec.dim t.b

let forward t x =
  let z = Mat.matvec t.w x in
  Vec.add_in_place z t.b;
  let a = Activation.apply_vec t.act z in
  (z, a)

let backward t ~x ~z ~a ~upstream =
  (* delta = dL/dz = upstream (dL/da) * act'(z). *)
  let delta =
    Array.init (Vec.dim upstream) (fun i ->
        upstream.(i) *. Activation.derivative t.act ~z:z.(i) ~a:a.(i))
  in
  Mat.outer_accum ~alpha:1. ~u:delta ~v:x ~acc:t.grad_w;
  Vec.add_in_place t.grad_b delta;
  Mat.matvec_t t.w delta

(* Batched fast path: one GEMM per layer over a whole mini-batch, with every
   intermediate living in a preallocated workspace so the steady-state training
   loop allocates nothing per step. Reduction-order contract: each workspace
   kernel accumulates per output element in the same ascending-index order as
   the per-sample path ([matvec] / [outer_accum] / [matvec_t]), so the batched
   engine is bit-identical to folding [forward]/[backward] over the batch. *)

type workspace = {
  z : Mat.t;  (* batch x n_out: pre-activations *)
  a : Mat.t;  (* batch x n_out: activations *)
  delta : Mat.t;  (* batch x n_out: dL/dz *)
  dx : Mat.t;  (* batch x n_in: dL/dx, the upstream for the layer below *)
  nz : int array;  (* batch x n_out: per-row compact nonzero-delta indices *)
  nz_cnt : int array;  (* per-row count of entries in [nz] *)
}

let make_workspace t ~batch =
  if batch <= 0 then invalid_arg "Layer.make_workspace: batch <= 0";
  {
    z = Mat.create batch (n_out t);
    a = Mat.create batch (n_out t);
    delta = Mat.create batch (n_out t);
    dx = Mat.create batch (n_in t);
    nz = Array.make (batch * n_out t) 0;
    nz_cnt = Array.make batch 0;
  }

let forward_batch t ws ~x =
  (* z = x W^T + b, row s = [forward] of sample s. Kernel choice by shape
     (both are bit-identical to [matvec] per element): at tiny fan-in the
     dot form is all loop overhead, so repack W^T (n_in*n_out copies — the
     weights moved since the last step) and run the contiguous saxpy GEMM;
     otherwise the register-accumulator dot form wins. *)
  (* The GEMM epilogue adds the bias in-register — the same op order as
     [matvec] followed by [Vec.add_in_place] — and, for ReLU/linear layers,
     applies the activation into [ws.a] in the same epilogue, so [ws.z] holds
     the finished pre-activations and no separate sweep re-loads them. Each
     fused arm computes exactly [Activation.apply]. *)
  (match t.act with
  | Activation.Relu ->
      Mat.matmul_nt_into ~bias:t.b ~post:(`Relu ws.a) x t.w ~out:ws.z
  | Activation.Linear ->
      Mat.matmul_nt_into ~bias:t.b ~post:(`Copy ws.a) x t.w ~out:ws.z
  | Activation.Tanh | Activation.Sigmoid ->
      Mat.matmul_nt_into ~bias:t.b x t.w ~out:ws.z;
      (* Transcendental activations stay a per-variant second pass (one
         dispatch per batch, not per element). *)
      let zd = ws.z.Mat.data and ad = ws.a.Mat.data in
      let n = Array.length zd in
      if t.act = Activation.Tanh then
        for i = 0 to n - 1 do
          Array.unsafe_set ad i (tanh (Array.unsafe_get zd i))
        done
      else
        for i = 0 to n - 1 do
          Array.unsafe_set ad i
            (Homunculus_util.Mathx.sigmoid (Array.unsafe_get zd i))
        done)

let backward_batch ?(need_dx = true) t ws ~x ~upstream =
  (* delta = upstream * act'(z), elementwise. *)
  let ud = upstream.Mat.data
  and zd = ws.z.Mat.data
  and ad = ws.a.Mat.data
  and dd = ws.delta.Mat.data in
  let rows = ws.delta.Mat.rows and m = ws.delta.Mat.cols in
  (* Per-variant loops computing exactly
     [upstream * Activation.derivative ~z ~a], with grad_b accumulated in the
     same sweep — sample-major, ascending index, exactly the order per-sample
     [Vec.add_in_place] feeds it. The ReLU arm also compacts, per row, the
     ascending indices where delta <> 0 — exactly the entries
     [Mat.outer_accum] / [Mat.matvec_t] would keep — so the gradient and dx
     sweeps below can stream branch-free over roughly half the work instead
     of re-testing (and mispredicting) every coefficient twice. *)
  let gb = t.grad_b in
  let compacted =
    match t.act with
    | Activation.Relu ->
        let nz = ws.nz and nz_cnt = ws.nz_cnt in
        for s = 0 to rows - 1 do
          let base = s * m in
          let cnt = ref 0 in
          for i = 0 to m - 1 do
            let u = Array.unsafe_get ud (base + i) in
            (* [u *. 0.] (not a literal [0.]) so signed zeros and NaN/inf
               upstreams propagate exactly as the per-sample
               [u *. derivative] does. *)
            let d =
              if Array.unsafe_get zd (base + i) > 0. then u else u *. 0.
            in
            Array.unsafe_set dd (base + i) d;
            Array.unsafe_set gb i (Array.unsafe_get gb i +. d);
            if d <> 0. then begin
              Array.unsafe_set nz (base + !cnt) i;
              incr cnt
            end
          done;
          Array.unsafe_set nz_cnt s !cnt
        done;
        true
    | Activation.Linear ->
        for s = 0 to rows - 1 do
          let base = s * m in
          for i = 0 to m - 1 do
            let u = Array.unsafe_get ud (base + i) in
            Array.unsafe_set dd (base + i) u;
            Array.unsafe_set gb i (Array.unsafe_get gb i +. u)
          done
        done;
        false
    | Activation.Tanh ->
        for s = 0 to rows - 1 do
          let base = s * m in
          for i = 0 to m - 1 do
            let a = Array.unsafe_get ad (base + i) in
            let d = Array.unsafe_get ud (base + i) *. (1. -. (a *. a)) in
            Array.unsafe_set dd (base + i) d;
            Array.unsafe_set gb i (Array.unsafe_get gb i +. d)
          done
        done;
        false
    | Activation.Sigmoid ->
        for s = 0 to rows - 1 do
          let base = s * m in
          for i = 0 to m - 1 do
            let a = Array.unsafe_get ad (base + i) in
            let d = Array.unsafe_get ud (base + i) *. (a *. (1. -. a)) in
            Array.unsafe_set dd (base + i) d;
            Array.unsafe_set gb i (Array.unsafe_get gb i +. d)
          done
        done;
        false
  in
  (* grad_w += delta^T x, sample-major — the exact op sequence of per-sample
     [outer_accum], including its skip-zero rule (the compact lists hold
     precisely the surviving entries, in the same ascending order). *)
  if compacted then begin
    let nz = ws.nz and nz_cnt = ws.nz_cnt in
    let gw = t.grad_w.Mat.data and xd = x.Mat.data in
    let nx = x.Mat.cols in
    for s = 0 to rows - 1 do
      let base = s * m and xbase = s * nx in
      for p = 0 to Array.unsafe_get nz_cnt s - 1 do
        let i = Array.unsafe_get nz (base + p) in
        let c = Array.unsafe_get dd (base + i) in
        let obase = i * nx in
        let j = ref 0 in
        while !j + 3 < nx do
          let j0 = !j in
          Array.unsafe_set gw (obase + j0)
            (Array.unsafe_get gw (obase + j0)
            +. (c *. Array.unsafe_get xd (xbase + j0)));
          Array.unsafe_set gw (obase + j0 + 1)
            (Array.unsafe_get gw (obase + j0 + 1)
            +. (c *. Array.unsafe_get xd (xbase + j0 + 1)));
          Array.unsafe_set gw (obase + j0 + 2)
            (Array.unsafe_get gw (obase + j0 + 2)
            +. (c *. Array.unsafe_get xd (xbase + j0 + 2)));
          Array.unsafe_set gw (obase + j0 + 3)
            (Array.unsafe_get gw (obase + j0 + 3)
            +. (c *. Array.unsafe_get xd (xbase + j0 + 3)));
          j := j0 + 4
        done;
        while !j < nx do
          Array.unsafe_set gw (obase + !j)
            (Array.unsafe_get gw (obase + !j)
            +. (c *. Array.unsafe_get xd (xbase + !j)));
          incr j
        done
      done
    done
  end
  else Mat.gemm_tn_accum ~a:ws.delta ~b:x ~acc:t.grad_w;
  (* dx = delta W, accumulated over ascending rows of W with [matvec_t]'s
     zero skip (the compact lists are exactly the rows it keeps). The bottom
     layer has no consumer for dx — parameters don't depend on it — so
     callers elide the whole GEMM there. *)
  if need_dx then begin
    if compacted then begin
      let nz = ws.nz and nz_cnt = ws.nz_cnt in
      let wd = t.w.Mat.data and dxd = ws.dx.Mat.data in
      let nin = ws.dx.Mat.cols in
      for s = 0 to rows - 1 do
        let base = s * m and obase = s * nin in
        let cnt = Array.unsafe_get nz_cnt s in
        (* The first live entry writes [0. +. c*w] directly — the exact
           value fill-then-accumulate would produce (signed zeros included)
           — saving the fill sweep and the first pass's loads. *)
        if cnt = 0 then Array.fill dxd obase nin 0.
        else begin
          let i0 = Array.unsafe_get nz base in
          let c = Array.unsafe_get dd (base + i0) in
          let wbase = i0 * nin in
          for j = 0 to nin - 1 do
            Array.unsafe_set dxd (obase + j)
              (0. +. (c *. Array.unsafe_get wd (wbase + j)))
          done
        end;
        for p = 1 to cnt - 1 do
          let i = Array.unsafe_get nz (base + p) in
          let c = Array.unsafe_get dd (base + i) in
          let wbase = i * nin in
          let j = ref 0 in
          while !j + 3 < nin do
            let j0 = !j in
            Array.unsafe_set dxd (obase + j0)
              (Array.unsafe_get dxd (obase + j0)
              +. (c *. Array.unsafe_get wd (wbase + j0)));
            Array.unsafe_set dxd (obase + j0 + 1)
              (Array.unsafe_get dxd (obase + j0 + 1)
              +. (c *. Array.unsafe_get wd (wbase + j0 + 1)));
            Array.unsafe_set dxd (obase + j0 + 2)
              (Array.unsafe_get dxd (obase + j0 + 2)
              +. (c *. Array.unsafe_get wd (wbase + j0 + 2)));
            Array.unsafe_set dxd (obase + j0 + 3)
              (Array.unsafe_get dxd (obase + j0 + 3)
              +. (c *. Array.unsafe_get wd (wbase + j0 + 3)));
            j := j0 + 4
          done;
          while !j < nin do
            Array.unsafe_set dxd (obase + !j)
              (Array.unsafe_get dxd (obase + !j)
              +. (c *. Array.unsafe_get wd (wbase + !j)));
            incr j
          done
        done
      done
    end
    else Mat.matmul_nn_into ws.delta t.w ~out:ws.dx
  end

let zero_grads t =
  Array.fill t.grad_w.Mat.data 0 (Array.length t.grad_w.Mat.data) 0.;
  Vec.fill t.grad_b 0.

let scale_grads t alpha =
  let d = t.grad_w.Mat.data in
  for i = 0 to Array.length d - 1 do
    Array.unsafe_set d i (Array.unsafe_get d i *. alpha)
  done;
  let b = t.grad_b in
  for i = 0 to Vec.dim b - 1 do
    Array.unsafe_set b i (Array.unsafe_get b i *. alpha)
  done

let copy t =
  {
    w = Mat.copy t.w;
    b = Vec.copy t.b;
    act = t.act;
    grad_w = Mat.copy t.grad_w;
    grad_b = Vec.copy t.grad_b;
  }
