(** Minimal JSON abstract syntax, printer, and parser.

    The paper's implementation serializes design spaces to a JSON
    configuration file consumed by HyperMapper (§4); this module provides
    the same interchange surface without external dependencies. It supports
    the full JSON grammar except for surrogate-pair escapes (non-BMP code
    points in [\u] escapes are replaced with ['?']). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default true) indents with two spaces. Numbers that
    are integral print without a decimal point. Non-finite numbers print as
    the [NaN] / [Infinity] / [-Infinity] extension literals (as Python's
    [json] module emits), which {!of_string} parses back, so every float the
    system can produce survives a write -> read cycle. *)

exception Parse_error of { position : int; message : string }

val of_string : string -> t
(** Parse a complete JSON document. @raise Parse_error with the byte offset
    of the failure. *)

(** Accessors ([Invalid_argument] on shape mismatch, [Not_found] for missing
    object members): *)

val member : t -> string -> t
val member_opt : t -> string -> t option
val to_float : t -> float
val to_int : t -> int
(** @raise Invalid_argument when the number is not integral. *)

val to_bool : t -> bool
val to_list : t -> t list
val get_string : t -> string

val equal : t -> t -> bool
(** Structural equality with order-insensitive objects. Numbers compare with
    [Float.equal], so [Number nan] equals itself. *)
