type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

(* Printing *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_to_string v =
  (* Strict JSON has no non-finite literals, but the journal and conformance
     artifacts must survive a write -> read cycle for any float the system
     produces (diverged losses, unbounded latencies). We use the same
     extension Python's [json] module emits: NaN / Infinity / -Infinity. *)
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "Infinity"
  else if v = Float.neg_infinity then "-Infinity"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_string ?(pretty = true) t =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number v -> Buffer.add_string buf (number_to_string v)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            go (depth + 1) item)
          items;
        newline ();
        indent depth;
        Buffer.add_char buf ']'
    | Object [] -> Buffer.add_string buf "{}"
    | Object members ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, value) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            Buffer.add_string buf (escape_string key);
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) value)
          members;
        newline ();
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* Parsing *)

exception Parse_error of { position : int; message : string }

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_whitespace st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> fail st (Printf.sprintf "expected '%c', found '%c'" c got)
  | None -> fail st (Printf.sprintf "expected '%c', found end of input" c)

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.input
    && String.sub st.input st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if st.pos + 4 > String.length st.input then
                  fail st "truncated \\u escape";
                let hex = String.sub st.input st.pos 4 in
                st.pos <- st.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> fail st "invalid \\u escape"
                in
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | other -> fail st (Printf.sprintf "invalid escape '\\%c'" other));
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_number_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_number_char c ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  let text = String.sub st.input start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> v
  | None ->
      st.pos <- start;
      fail st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_whitespace st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> parse_literal st "null" Null
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'N' -> parse_literal st "NaN" (Number Float.nan)
  | Some 'I' -> parse_literal st "Infinity" (Number Float.infinity)
  | Some '"' -> String (parse_string_body st)
  | Some '[' ->
      advance st;
      skip_whitespace st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [ parse_value st ] in
        skip_whitespace st;
        while peek st = Some ',' do
          advance st;
          items := parse_value st :: !items;
          skip_whitespace st
        done;
        expect st ']';
        List (List.rev !items)
      end
  | Some '{' ->
      advance st;
      skip_whitespace st;
      if peek st = Some '}' then begin
        advance st;
        Object []
      end
      else begin
        let parse_member () =
          skip_whitespace st;
          let key = parse_string_body st in
          skip_whitespace st;
          expect st ':';
          let value = parse_value st in
          (key, value)
        in
        let members = ref [ parse_member () ] in
        skip_whitespace st;
        while peek st = Some ',' do
          advance st;
          members := parse_member () :: !members;
          skip_whitespace st
        done;
        expect st '}';
        Object (List.rev !members)
      end
  | Some '-'
    when st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = 'I' ->
      parse_literal st "-Infinity" (Number Float.neg_infinity)
  | Some ('0' .. '9' | '-') -> Number (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let of_string input =
  let st = { input; pos = 0 } in
  let value = parse_value st in
  skip_whitespace st;
  if st.pos <> String.length input then fail st "trailing garbage";
  value

(* Accessors *)

let member_opt t key =
  match t with
  | Object members -> List.assoc_opt key members
  | Null | Bool _ | Number _ | String _ | List _ ->
      invalid_arg "Json.member: not an object"

let member t key =
  match member_opt t key with Some v -> v | None -> raise Not_found

let to_float = function
  | Number v -> v
  | Null | Bool _ | String _ | List _ | Object _ ->
      invalid_arg "Json.to_float: not a number"

let to_int t =
  let v = to_float t in
  if Float.is_integer v then int_of_float v
  else invalid_arg "Json.to_int: not an integer"

let to_bool = function
  | Bool b -> b
  | Null | Number _ | String _ | List _ | Object _ ->
      invalid_arg "Json.to_bool: not a boolean"

let to_list = function
  | List items -> items
  | Null | Bool _ | Number _ | String _ | Object _ ->
      invalid_arg "Json.to_list: not a list"

let get_string = function
  | String s -> s
  | Null | Bool _ | Number _ | List _ | Object _ ->
      invalid_arg "Json.get_string: not a string"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  (* [Float.equal] (not [=]) so NaN payloads compare equal to themselves and
     round-trip properties hold for non-finite numbers. *)
  | Number x, Number y -> Float.equal x y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
      List.length xs = List.length ys && List.for_all2 equal xs ys
  | Object xs, Object ys ->
      let sort = List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) in
      let xs = sort xs and ys = sort ys in
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | (Null | Bool _ | Number _ | String _ | List _ | Object _), _ -> false
