type t = { mutable state : int64; mutable cached_gaussian : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed =
  { state = Int64.of_int seed; cached_gaussian = None }

let copy t = { state = t.state; cached_gaussian = t.cached_gaussian }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s; cached_gaussian = None }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: n < 0";
  (* Explicit loop: the streams must be derived in index order regardless of
     how the stdlib schedules [Array.init] callbacks. *)
  let out = Array.make n t in
  for i = 0 to n - 1 do
    out.(i) <- split t
  done;
  out

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the 62 low bits avoids modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (int64 t) land mask in
    let r = v mod bound in
    if v - r + (bound - 1) >= 0 then r else draw ()
  in
  draw ()

let float t bound =
  (* 53 random bits -> uniform in [0, 1), then scale. *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0) *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let gaussian t ?(mu = 0.) ?(sigma = 1.) () =
  match t.cached_gaussian with
  | Some z ->
      t.cached_gaussian <- None;
      mu +. (sigma *. z)
  | None ->
      let rec polar () =
        let u = uniform t (-1.) 1. and v = uniform t (-1.) 1. in
        let s = (u *. u) +. (v *. v) in
        if s >= 1. || s = 0. then polar ()
        else
          let f = sqrt (-2. *. log s /. s) in
          (u *. f, v *. f)
      in
      let z0, z1 = polar () in
      t.cached_gaussian <- Some z1;
      mu +. (sigma *. z0)

let exponential t rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let pareto t ~xm ~alpha =
  let u = 1.0 -. float t 1.0 in
  xm /. (u ** (1.0 /. alpha))

let lognormal t ~mu ~sigma = exp (gaussian t ~mu ~sigma ())

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_weighted t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice_weighted: empty array";
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
  if total <= 0. then invalid_arg "Rng.choice_weighted: weights sum to zero";
  let target = float t total in
  let n = Array.length arr in
  let rec go i acc =
    if i = n - 1 then fst arr.(i)
    else
      let acc = acc +. snd arr.(i) in
      if target < acc then fst arr.(i) else go (i + 1) acc
  in
  go 0 0.

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle_in_place t arr;
  arr

let sample_indices t ~n ~k =
  if k > n then invalid_arg "Rng.sample_indices: k > n";
  (* Floyd's algorithm: k distinct values without building [0..n-1]. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let pos = ref 0 in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    let v = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen v ();
    out.(!pos) <- v;
    incr pos
  done;
  out
