(** Deterministic pseudo-random number generation.

    All stochastic components of the system (dataset synthesis, weight
    initialization, Bayesian-optimization sampling, traffic simulation) draw
    from explicit [Rng.t] values rather than global state, so that every
    experiment is reproducible from a single integer seed. The generator is
    splitmix64, which is fast, has a 64-bit state, and supports cheap
    splitting into independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t]. Use one split per subsystem so that adding draws in one place does
    not perturb another. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent generators in index order. This is
    the pre-splitting step that makes parallel loops deterministic: hand
    stream [i] to task [i] and the results cannot depend on which domain ran
    which task. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform over [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform over [0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform over [lo, hi). *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> ?mu:float -> ?sigma:float -> unit -> float
(** Normal deviate via Box–Muller; defaults [mu = 0.], [sigma = 1.]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate). @raise Invalid_argument if
    [rate <= 0.]. *)

val pareto : t -> xm:float -> alpha:float -> float
(** Pareto(x_m, alpha) heavy-tailed deviate (packet sizes, flow lengths). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal deviate. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on [||]. *)

val choice_weighted : t -> ('a * float) array -> 'a
(** Sample proportionally to the (non-negative, not all zero) weights. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)

val sample_indices : t -> n:int -> k:int -> int array
(** [sample_indices t ~n ~k] draws [k] distinct indices from [0..n-1]
    (Floyd's algorithm). @raise Invalid_argument if [k > n]. *)
