(** Predicates over packet/flow features — the [Pred] half of the NetCore-style
    policy algebra (frenetic lineage: header tests closed under And/Or/Not).

    An atom is either a parsed packet feature (by schema name) or the class
    emitted by an upstream tenant in a sequential composition. Predicates
    have two consumers with one semantics:

    - {!eval} is the specification: direct evaluation against a feature
      lookup. A test over an absent atom (an upstream tenant whose guard did
      not match, so it emitted no class) is [false].
    - {!clauses} is the implementation: compilation to disjunctive normal
      form, one match-action entry per clause, each clause a conjunction of
      per-atom ranges. This is what the guard tables of a lowered
      composition hold.

    For any simplified predicate that {!clauses} accepts, matching any
    clause agrees exactly with {!eval} — the differential oracle in
    [lib/check] exercises this on every composed pipeline. *)

type cmp = Ge | Lt | Eq

type atom =
  | Field of string  (** a feature of the composed pipeline's union schema *)
  | Class of string  (** the decision of the named upstream tenant *)

type t =
  | True
  | False
  | Test of { atom : atom; op : cmp; value : float }
  | And of t * t
  | Or of t * t
  | Not of t

(** Constructors. *)

val field_ge : string -> float -> t
val field_lt : string -> float -> t
val field_eq : string -> float -> t

val field_between : string -> lo:float -> hi:float -> t
(** [lo <= field < hi]. *)

val class_is : string -> int -> t
(** [class_is tenant c]: the upstream [tenant] decided class [c]. False when
    the tenant's guard did not match (no decision was emitted). *)

val conj : t list -> t
(** [And] fold; [True] for []. *)

val disj : t list -> t
(** [Or] fold; [False] for []. *)

val atoms : t -> atom list
(** Distinct atoms, first-occurrence order. *)

val fields : t -> string list
val classes : t -> string list
(** Upstream tenants referenced through [Class] atoms. *)

val eval : t -> lookup:(atom -> float option) -> bool
(** Direct evaluation. [lookup] returns [None] for absent atoms (an upstream
    tenant with no decision); a [Test] over an absent atom is [false].
    Always call through {!simplify}d predicates — simplification rewrites
    [Not (Test Ge/Lt)] into the complement test, and the two forms differ on
    absent atoms. The rest of the system only ever stores simplified
    predicates. *)

val simplify : t -> t
(** Negation-normal form (negations pushed to the leaves, [Ge]/[Lt]
    complemented away, only [Not (Test Eq)] survives) plus constant folding
    ([And (False, _)] → [False], [Or (True, _)] → [True], units dropped,
    double negation and syntactic idempotence eliminated). Idempotent. *)

val equal : t -> t -> bool
(** Structural equality. *)

val to_string : t -> string

(** {2 Table compilation} *)

type range = {
  atom : atom;
  lo : float;  (** inclusive; [neg_infinity] when unconstrained *)
  hi : float;  (** exclusive; [infinity] when unconstrained *)
  eq : float option;  (** exact-match literal; overrides [lo]/[hi] *)
}

type clause = range list
(** A conjunction with at most one range per atom — one guard-table entry. *)

val max_clauses : int
(** DNF expansion cap (128); predicates beyond it are rejected rather than
    silently exploding the guard table. *)

val clauses : t -> (clause list, string) result
(** Compile to DNF with per-atom range merging and dead-clause elimination.
    [Ok []] means the predicate is unsatisfiable. [Error] on negated
    equality tests (not expressible as a single match entry) and on
    predicates that expand past {!max_clauses}. *)

val clause_matches : clause -> lookup:(atom -> float option) -> bool

val n_entries : clause list -> int
(** Match entries the guard table needs — [List.length], at least 1. *)
