type cmp = Ge | Lt | Eq

type atom =
  | Field of string
  | Class of string

type t =
  | True
  | False
  | Test of { atom : atom; op : cmp; value : float }
  | And of t * t
  | Or of t * t
  | Not of t

let field_ge name value = Test { atom = Field name; op = Ge; value }
let field_lt name value = Test { atom = Field name; op = Lt; value }
let field_eq name value = Test { atom = Field name; op = Eq; value }

let field_between name ~lo ~hi = And (field_ge name lo, field_lt name hi)

let class_is tenant c =
  Test { atom = Class tenant; op = Eq; value = float_of_int c }

let conj = function [] -> True | p :: rest -> List.fold_left (fun a b -> And (a, b)) p rest
let disj = function [] -> False | p :: rest -> List.fold_left (fun a b -> Or (a, b)) p rest

let rec equal a b =
  match (a, b) with
  | True, True | False, False -> true
  | Test a, Test b -> a.atom = b.atom && a.op = b.op && Float.equal a.value b.value
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Not a, Not b -> equal a b
  | (True | False | Test _ | And _ | Or _ | Not _), _ -> false

let atoms p =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | True | False -> ()
    | Test { atom; _ } ->
        if not (Hashtbl.mem seen atom) then begin
          Hashtbl.add seen atom ();
          acc := atom :: !acc
        end
    | And (a, b) | Or (a, b) -> go a; go b
    | Not a -> go a
  in
  go p;
  List.rev !acc

let fields p =
  List.filter_map (function Field f -> Some f | Class _ -> None) (atoms p)

let classes p =
  List.filter_map (function Class c -> Some c | Field _ -> None) (atoms p)

let rec eval p ~lookup =
  match p with
  | True -> true
  | False -> false
  | Test { atom; op; value } -> (
      match lookup atom with
      | None -> false
      | Some x -> (
          match op with Ge -> x >= value | Lt -> x < value | Eq -> x = value))
  | And (a, b) -> eval a ~lookup && eval b ~lookup
  | Or (a, b) -> eval a ~lookup || eval b ~lookup
  | Not a -> not (eval a ~lookup)

(* Negation-normal form: push Not to the leaves, complementing Ge/Lt on the
   way down. Only negated equality tests survive as Not nodes. *)
let rec nnf = function
  | (True | False | Test _) as p -> p
  | And (a, b) -> And (nnf a, nnf b)
  | Or (a, b) -> Or (nnf a, nnf b)
  | Not p -> negate p

and negate = function
  | True -> False
  | False -> True
  | Test { atom; op = Ge; value } -> Test { atom; op = Lt; value }
  | Test { atom; op = Lt; value } -> Test { atom; op = Ge; value }
  | Test { op = Eq; _ } as t -> Not t
  | And (a, b) -> Or (negate a, negate b)
  | Or (a, b) -> And (negate a, negate b)
  | Not p -> nnf p

let rec fold_consts = function
  | And (a, b) -> (
      match (fold_consts a, fold_consts b) with
      | False, _ | _, False -> False
      | True, p | p, True -> p
      | a, b when equal a b -> a
      | a, b -> And (a, b))
  | Or (a, b) -> (
      match (fold_consts a, fold_consts b) with
      | True, _ | _, True -> True
      | False, p | p, False -> p
      | a, b when equal a b -> a
      | a, b -> Or (a, b))
  | Not p -> (
      match fold_consts p with
      | True -> False
      | False -> True
      | p -> Not p)
  | p -> p

let simplify p = fold_consts (nnf p)

let atom_to_string = function
  | Field f -> f
  | Class t -> Printf.sprintf "class(%s)" t

let cmp_to_string = function Ge -> ">=" | Lt -> "<" | Eq -> "="

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Test { atom; op; value } ->
      Printf.sprintf "%s %s %g" (atom_to_string atom) (cmp_to_string op) value
  | And (a, b) -> Printf.sprintf "(%s && %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "!%s" (to_string a)

(* Table compilation: DNF over per-atom ranges. *)

type range = { atom : atom; lo : float; hi : float; eq : float option }

type clause = range list

let max_clauses = 128

let range_of_test atom op value =
  match op with
  | Ge -> { atom; lo = value; hi = Float.infinity; eq = None }
  | Lt -> { atom; lo = Float.neg_infinity; hi = value; eq = None }
  | Eq -> { atom; lo = value; hi = value; eq = Some value }

(* Conjoin two ranges over the same atom; None when the intersection is
   empty (the clause is dead). *)
let merge_range a b =
  match (a.eq, b.eq) with
  | Some x, Some y -> if Float.equal x y then Some a else None
  | Some x, None -> if b.lo <= x && x < b.hi then Some a else None
  | None, Some y -> if a.lo <= y && y < a.hi then Some b else None
  | None, None ->
      let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
      if lo < hi then Some { a with lo; hi } else None

let clause_add clause r =
  let rec go acc = function
    | [] -> Some (List.rev (r :: acc))
    | r' :: rest when r'.atom = r.atom -> (
        match merge_range r' r with
        | Some merged -> Some (List.rev_append acc (merged :: rest))
        | None -> None)
    | r' :: rest -> go (r' :: acc) rest
  in
  go [] clause

let clause_conjoin a b =
  List.fold_left
    (fun acc r -> match acc with None -> None | Some c -> clause_add c r)
    (Some a) b

let clauses p =
  let exception Reject of string in
  let cap cs =
    if List.length cs > max_clauses then
      raise
        (Reject
           (Printf.sprintf "guard expands to more than %d match entries"
              max_clauses))
    else cs
  in
  let rec go = function
    | True -> [ [] ]
    | False -> []
    | Test { atom; op; value } -> [ [ range_of_test atom op value ] ]
    | Or (a, b) -> cap (go a @ go b)
    | And (a, b) ->
        let ca = go a and cb = go b in
        cap
          (List.concat_map
             (fun c1 -> List.filter_map (fun c2 -> clause_conjoin c1 c2) cb)
             ca)
    | Not (Test { op = Eq; _ }) ->
        raise (Reject "negated equality tests are not table-compilable")
    | Not _ -> raise (Reject "unsimplified negation")
  in
  match go (simplify p) with
  | cs -> Ok cs
  | exception Reject msg -> Error msg

let range_matches r ~lookup =
  match lookup r.atom with
  | None -> false
  | Some x -> (
      match r.eq with
      | Some v -> x = v
      | None -> r.lo <= x && x < r.hi)

let clause_matches clause ~lookup = List.for_all (range_matches ~lookup) clause

let n_entries cs = Stdlib.max 1 (List.length cs)
