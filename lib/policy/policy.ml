open Homunculus_alchemy

type t =
  | Model of Model_spec.t
  | Guard of Pred.t * t
  | Seq of t * t
  | Par of t list

let model s = Model s
let guard p t = Guard (p, t)
let seq a b = Seq (a, b)
let par ts = Par ts
let drop = Par []
let ( >>> ) = seq

let rec models = function
  | Model s -> [ s ]
  | Guard (_, t) -> models t
  | Seq (a, b) -> models a @ models b
  | Par ts -> List.concat_map models ts

let n_models t = List.length (models t)

(* Normal form: drop | leaf | Seq/Par over normal forms, where a leaf is
   [Model _] or [Guard (p, Model _)] with p already simplified and neither
   constant. Guards are pushed down to the leaves (conjoining along the
   path), dead branches vanish, Par flattens. *)
let rec normalize p =
  match p with
  | Model _ -> p
  | Guard (pr, q) -> push (Pred.simplify pr) (normalize q)
  | Seq (a, b) -> (
      match (normalize a, normalize b) with
      | Par [], _ | _, Par [] -> Par []
      | a, b -> Seq (a, b))
  | Par ts ->
      let ts =
        List.concat_map
          (fun t -> match normalize t with Par sub -> sub | t -> [ t ])
          ts
      in
      (match ts with [ t ] -> t | ts -> Par ts)

(* Push a simplified guard into an already-normal policy. *)
and push pr q =
  match (pr, q) with
  | Pred.False, _ -> Par []
  | Pred.True, q -> q
  | pr, Guard (pr2, q2) -> push (Pred.simplify (Pred.And (pr, pr2))) q2
  | pr, Seq (a, b) -> (
      match (push pr a, push pr b) with
      | Par [], _ | _, Par [] -> Par []
      | a, b -> Seq (a, b))
  | pr, Par ts -> (
      let ts =
        List.concat_map
          (fun t -> match push pr t with Par sub -> sub | t -> [ t ])
          ts
      in
      match ts with [ t ] -> t | ts -> Par ts)
  | pr, (Model _ as m) -> Guard (pr, m)

type tenant = {
  id : string;
  spec : Model_spec.t;
  pred : Pred.t;
  upstream : string list;
}

let tenants p =
  let counter = ref 0 in
  let leaf spec pred upstream =
    let id = Printf.sprintf "t%d_%s" !counter (Model_spec.name spec) in
    incr counter;
    { id; spec; pred; upstream }
  in
  let rec go upstream = function
    | Model spec -> [ leaf spec Pred.True upstream ]
    | Guard (pred, Model spec) -> [ leaf spec pred upstream ]
    | Guard _ -> assert false (* not in normal form *)
    | Seq (a, b) ->
        let ta = go upstream a in
        ta @ go (List.map (fun t -> t.id) ta) b
    | Par ts -> List.concat_map (go upstream) ts
  in
  match normalize p with Par [] -> [] | q -> go [] q

let rec to_string = function
  | Model s -> Model_spec.name s
  | Guard (p, t) -> Printf.sprintf "(%s ? %s)" (Pred.to_string p) (to_string t)
  | Seq (a, b) -> Printf.sprintf "(%s >> %s)" (to_string a) (to_string b)
  | Par [] -> "drop"
  | Par ts -> "(" ^ String.concat " | " (List.map to_string ts) ^ ")"
