(** The NetCore-style composition algebra (paper §3.2.5 extended; ROADMAP
    item 3): many trained models, one data plane.

    A policy composes model specs under per-tenant guards:

    - [Model s] — a Homunculus model spec (what to learn);
    - [Guard (p, t)] — run [t] only on packets matching [p] (NetCore's
      [Filter p; t]);
    - [Seq (a, b)] — [a]'s tables execute before [b]'s, and [b]'s guards may
      match on [a]'s emitted classes ({!Pred.class_is});
    - [Par ts] — tenants co-resident on the same packet stream ([Par []] is
      the empty policy, NetCore's [drop]).

    {!normalize} rewrites to a guarded-leaf normal form; {!tenants} then
    reads off the flat tenant list the lowering ({!Lower.compose}) and the
    search driver ([Compiler.compile_policy]) consume. *)

open Homunculus_alchemy

type t =
  | Model of Model_spec.t
  | Guard of Pred.t * t
  | Seq of t * t
  | Par of t list

val model : Model_spec.t -> t
val guard : Pred.t -> t -> t
val seq : t -> t -> t
val par : t list -> t

val drop : t
(** [Par []] — matches nothing, runs nothing. *)

val ( >>> ) : t -> t -> t
(** Infix {!seq}. *)

val models : t -> Model_spec.t list
(** Leaf specs, left-to-right. *)

val n_models : t -> int

val normalize : t -> t
(** Rewrite to normal form. Rules (each preserves the per-tenant semantics):

    - predicate simplification: every guard predicate through
      {!Pred.simplify};
    - guard hoisting: [Guard (p, Guard (q, t))] → [Guard (p && q, t)],
      and guards distribute through [Seq]/[Par] down to the leaves, so each
      surviving leaf carries exactly the conjunction of the guards on its
      path;
    - dead-branch elimination: [Guard (False, t)] → {!drop}; {!drop}
      disappears from [Par] and absorbs [Seq] (a sequential stage whose
      upstream never runs can never run either);
    - structural cleanup: nested [Par] flattens, singleton [Par] collapses.

    The result is {!drop}, a leaf ([Model _] or [Guard (p, Model _)] with
    [p] neither [True] nor [False]), or [Seq]/[Par] nodes over such leaves.
    Idempotent. *)

type tenant = {
  id : string;  (** ["t<i>_<spec name>"], [i] the leaf index *)
  spec : Model_spec.t;
  pred : Pred.t;  (** simplified path guard; [True] when unguarded *)
  upstream : string list;
      (** ids of the tenants in the left operand of the enclosing [Seq] —
          their tables must execute first, and their classes are matchable *)
}

val tenants : t -> tenant list
(** Normalize, then flatten to the tenant list in leaf order (upstream
    tenants always precede their downstreams). *)

val to_string : t -> string
(** E.g. ["((serror_rate >= 0.05 ? ad) | (frame_size < 1200 ? tc))"]. *)
