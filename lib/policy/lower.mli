(** Compositional lowering: N trained models + their guards → ONE shared
    data-plane pipeline, with contention-aware feasibility.

    On MAT targets (Tofino) every tenant contributes a guard table (its
    predicate compiled to match entries via {!Pred.clauses}) plus its
    model's match-action tables ({!Homunculus_backends.Iisy.table_graph});
    the merged dependency DAG — guard before model roots, upstream sinks
    before downstream guards — goes through
    {!Homunculus_backends.Stage_alloc.allocate} once, so independent
    tenants pack into shared stages and the stage budget reflects genuine
    contention. On Taurus grids the tenants' per-layer demands (plus one CU
    per guard) go through a single multi-model
    {!Homunculus_backends.Placement.place}, band-packing every tenant onto
    one fabric. Either way the combined {!Homunculus_backends.Resource}
    verdict aggregates usage across all co-resident models.

    Input features are unioned by name: the composed pipeline parses one
    feature vector covering every tenant's schema, and each tenant reads its
    slice through a projection. *)

module Stage_alloc = Homunculus_backends.Stage_alloc
module Placement = Homunculus_backends.Placement
module Taurus = Homunculus_backends.Taurus
module Tofino = Homunculus_backends.Tofino
module Model_ir = Homunculus_backends.Model_ir
module Resource = Homunculus_backends.Resource

type input = {
  in_id : string;
  in_pred : Pred.t;  (** simplified ({!Pred.simplify}) *)
  in_model : Model_ir.t;  (** trained, raw-feature (standardization folded) *)
  in_features : string array;  (** the model's own input schema, in order *)
  in_upstream : string list;  (** ids of tenants that must execute earlier *)
}

val input_of_tenant : Policy.tenant -> model:Model_ir.t -> input
(** Features come from the tenant spec's (loaded) dataset schema. *)

type tenant = {
  id : string;
  pred : Pred.t;
  clauses : Pred.clause list option;
      (** [None] when the tenant is unguarded (predicate [True]) *)
  model : Model_ir.t;
  proj : int array;  (** model input index → union-schema index *)
  upstream : string list;
  guard_table : string option;  (** ["g__<id>"] when guarded *)
  tables : Stage_alloc.table list;
      (** the tenant's own (prefixed) model tables; [] on grid targets *)
}

type pipeline =
  | Mat of {
      device : Tofino.device;
      tables : Stage_alloc.table list;  (** the full merged DAG *)
      allocation : Stage_alloc.allocation;
    }
  | Grid of {
      grid : Taurus.grid;
      placement : Placement.placement;
      cus : int;  (** summed across tenants, guards included *)
      mus : int;
      pipeline_cycles : int;  (** longest Seq chain, guard hops included *)
    }

type t = {
  features : string array;  (** union input schema, first-seen order *)
  tenants : tenant list;
  pipeline : pipeline;
  verdict : Resource.verdict;  (** combined across all co-resident models *)
}

type error =
  | Unknown_field of { tenant : string; field : string }
      (** a guard tests a feature no tenant's schema provides *)
  | Unknown_upstream of { tenant : string; upstream : string }
      (** a guard matches the class of a tenant that is not upstream *)
  | Bad_guard of { tenant : string; reason : string }
      (** unsatisfiable or not table-compilable *)
  | Allocation of Stage_alloc.error
      (** the merged DAG does not fit the stage budget *)
  | Placement_failed of string  (** the grid ran out of tiles *)
  | Unsupported of string

val error_to_string : error -> string

val union_features : input list -> string array

val compose :
  Homunculus_alchemy.Platform.t -> input list -> (t, error) result
(** Lower a tenant list (upstreams before downstreams, ids unique) onto the
    platform's full device. Over-subscription surfaces as
    [Error (Allocation (Capacity_exceeded _))] / [Error (Placement_failed _)]
    when the pipeline cannot even be laid out, or as an infeasible combined
    verdict (with [rejection] set) when it fits structurally but busts a
    resource or performance budget. @raise Invalid_argument on duplicate or
    empty tenant lists and on malformed upstream order. *)

val guard_table_count : t -> int

val stages_used : t -> int
(** Shared stages of a MAT composition; 0 for grid targets. *)

val standalone_stages : Tofino.device -> tenant -> int
(** Stages the tenant would occupy deployed alone (its guard table plus its
    model tables, cross-tenant dependencies dropped) — the baseline for the
    sharing win: a composed pipeline's {!stages_used} beats the sum of its
    tenants' standalone stages whenever packing shares a stage. 0 for grid
    tenants (no tables). *)

val summary : t -> string
(** Deterministic multi-line fingerprint of the whole composition — union
    schema, per-tenant guards/tables/projection, stage map or floor plan,
    combined verdict. Bit-identical summaries mean bit-identical
    compositions; the bench uses this for the any-jobs determinism check. *)
