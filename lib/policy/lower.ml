module Stage_alloc = Homunculus_backends.Stage_alloc
module Placement = Homunculus_backends.Placement
module Taurus = Homunculus_backends.Taurus
module Tofino = Homunculus_backends.Tofino
module Iisy = Homunculus_backends.Iisy
module Model_ir = Homunculus_backends.Model_ir
module Resource = Homunculus_backends.Resource
module Platform = Homunculus_alchemy.Platform

type input = {
  in_id : string;
  in_pred : Pred.t;
  in_model : Model_ir.t;
  in_features : string array;
  in_upstream : string list;
}

let input_of_tenant (t : Policy.tenant) ~model =
  {
    in_id = t.Policy.id;
    in_pred = t.Policy.pred;
    in_model = model;
    in_features = Homunculus_alchemy.Model_spec.feature_names t.Policy.spec;
    in_upstream = t.Policy.upstream;
  }

type tenant = {
  id : string;
  pred : Pred.t;
  clauses : Pred.clause list option;
  model : Model_ir.t;
  proj : int array;
  upstream : string list;
  guard_table : string option;
  tables : Stage_alloc.table list;
}

type pipeline =
  | Mat of {
      device : Tofino.device;
      tables : Stage_alloc.table list;
      allocation : Stage_alloc.allocation;
    }
  | Grid of {
      grid : Taurus.grid;
      placement : Placement.placement;
      cus : int;
      mus : int;
      pipeline_cycles : int;
    }

type t = {
  features : string array;
  tenants : tenant list;
  pipeline : pipeline;
  verdict : Resource.verdict;
}

type error =
  | Unknown_field of { tenant : string; field : string }
  | Unknown_upstream of { tenant : string; upstream : string }
  | Bad_guard of { tenant : string; reason : string }
  | Allocation of Stage_alloc.error
  | Placement_failed of string
  | Unsupported of string

let error_to_string = function
  | Unknown_field { tenant; field } ->
      Printf.sprintf "tenant %s: guard tests unknown field %S" tenant field
  | Unknown_upstream { tenant; upstream } ->
      Printf.sprintf
        "tenant %s: guard matches class of %s, which is not upstream" tenant
        upstream
  | Bad_guard { tenant; reason } ->
      Printf.sprintf "tenant %s: guard not table-compilable: %s" tenant reason
  | Allocation e -> "stage allocation: " ^ Stage_alloc.error_to_string e
  | Placement_failed msg -> "grid placement: " ^ msg
  | Unsupported msg -> "unsupported: " ^ msg

let union_features inputs =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (fun i ->
      Array.iter
        (fun f ->
          if not (Hashtbl.mem seen f) then begin
            Hashtbl.add seen f (List.length !acc);
            acc := f :: !acc
          end)
        i.in_features)
    inputs;
  Array.of_list (List.rev !acc)

let prefix id name = id ^ "__" ^ name
let guard_name id = "g__" ^ id

(* Tables of [tables] nothing else in [tables] depends on — the tenant's
   exit points, which downstream guards must wait for. *)
let sinks (tables : Stage_alloc.table list) =
  let depended = Hashtbl.create 16 in
  List.iter
    (fun (t : Stage_alloc.table) ->
      List.iter (fun d -> Hashtbl.replace depended d ()) t.Stage_alloc.depends_on)
    tables;
  List.filter_map
    (fun (t : Stage_alloc.table) ->
      if Hashtbl.mem depended t.Stage_alloc.name then None
      else Some t.Stage_alloc.name)
    tables

exception Fail of error

(* Validate structure (raising Invalid_argument on caller bugs per the mli)
   and guards (raising [Fail] on user-facing rejections); returns tenants
   with [tables] left empty — the backend paths fill them in. *)
let elaborate inputs =
  if inputs = [] then invalid_arg "Lower.compose: empty tenant list";
  let ids = Hashtbl.create 8 in
  let features = union_features inputs in
  let feature_index = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace feature_index f i) features;
  let tenants =
    List.map
      (fun i ->
        if Hashtbl.mem ids i.in_id then
          invalid_arg
            (Printf.sprintf "Lower.compose: duplicate tenant id %s" i.in_id);
        List.iter
          (fun u ->
            if not (Hashtbl.mem ids u) then
              invalid_arg
                (Printf.sprintf
                   "Lower.compose: tenant %s lists upstream %s, which does \
                    not precede it"
                   i.in_id u))
          i.in_upstream;
        Hashtbl.replace ids i.in_id ();
        if Array.length i.in_features <> Model_ir.input_dim i.in_model then
          invalid_arg
            (Printf.sprintf
               "Lower.compose: tenant %s: %d feature names for a %d-input \
                model"
               i.in_id
               (Array.length i.in_features)
               (Model_ir.input_dim i.in_model));
        let pred = Pred.simplify i.in_pred in
        List.iter
          (fun f ->
            if not (Hashtbl.mem feature_index f) then
              raise (Fail (Unknown_field { tenant = i.in_id; field = f })))
          (Pred.fields pred);
        List.iter
          (fun c ->
            if not (List.mem c i.in_upstream) then
              raise
                (Fail (Unknown_upstream { tenant = i.in_id; upstream = c })))
          (Pred.classes pred);
        let clauses =
          match pred with
          | Pred.True -> None
          | _ -> (
              match Pred.clauses pred with
              | Error reason ->
                  raise (Fail (Bad_guard { tenant = i.in_id; reason }))
              | Ok [] ->
                  raise
                    (Fail
                       (Bad_guard
                          { tenant = i.in_id; reason = "unsatisfiable guard" }))
              | Ok cs -> Some cs)
        in
        let proj =
          Array.map (fun f -> Hashtbl.find feature_index f) i.in_features
        in
        {
          id = i.in_id;
          pred;
          clauses;
          model = i.in_model;
          proj;
          upstream = i.in_upstream;
          guard_table =
            (match clauses with
            | None -> None
            | Some _ -> Some (guard_name i.in_id));
          tables = [];
        })
      inputs
  in
  (features, tenants)

(* ------------------------------------------------------------------ *)
(* MAT lowering: one merged dependency DAG through one allocation.    *)
(* ------------------------------------------------------------------ *)

let mat_tenant_tables upstream_sinks t =
  let raw = Iisy.table_graph t.model in
  let own =
    List.map
      (fun (tbl : Stage_alloc.table) ->
        {
          Stage_alloc.name = prefix t.id tbl.Stage_alloc.name;
          depends_on = List.map (prefix t.id) tbl.Stage_alloc.depends_on;
        })
      raw
  in
  (* Roots wait on the guard when guarded, otherwise directly on every
     upstream tenant's sink tables — either way the Seq order is a real
     match-after-action dependency in the merged DAG. *)
  let entry_deps =
    match t.guard_table with
    | Some g -> [ g ]
    | None ->
        List.concat_map
          (fun u -> try List.assoc u upstream_sinks with Not_found -> [])
          t.upstream
  in
  let own =
    List.map
      (fun (tbl : Stage_alloc.table) ->
        if tbl.Stage_alloc.depends_on = [] then
          { tbl with Stage_alloc.depends_on = entry_deps }
        else tbl)
      own
  in
  let guard =
    match t.guard_table with
    | None -> []
    | Some g ->
        [
          {
            Stage_alloc.name = g;
            depends_on =
              List.concat_map
                (fun u -> try List.assoc u upstream_sinks with Not_found -> [])
                t.upstream;
          };
        ]
  in
  (guard, own)

let compose_mat device perf tenants =
  let _, rev_tenants, rev_tables =
    List.fold_left
      (fun (upstream_sinks, acc_tenants, acc_tables) t ->
        let guard, own = mat_tenant_tables upstream_sinks t in
        let t = { t with tables = own } in
        ((t.id, sinks own) :: upstream_sinks, t :: acc_tenants,
         List.rev_append own (List.rev_append guard acc_tables)))
      ([], [], []) tenants
  in
  let tenants = List.rev rev_tenants in
  let tables = List.rev rev_tables in
  match
    Stage_alloc.allocate ~n_stages:device.Tofino.n_stages
      ~tables_per_stage:Tofino.tables_per_stage tables
  with
  | Error e -> raise (Fail (Allocation e))
  | Ok allocation ->
      let n_tables = List.length tables in
      let max_entries =
        List.fold_left
          (fun acc t ->
            let guard_entries =
              match t.clauses with
              | None -> 0
              | Some cs -> Pred.n_entries cs
            in
            let model_entries = Iisy.max_entries (Iisy.map_model t.model) in
            Stdlib.max acc (Stdlib.max guard_entries model_entries))
          0 tenants
      in
      let usages =
        [
          Resource.usage ~resource:"MAT" ~used:(float_of_int n_tables)
            ~available:(float_of_int device.Tofino.n_tables);
          Resource.usage ~resource:"entries" ~used:(float_of_int max_entries)
            ~available:(float_of_int device.Tofino.entries_per_table);
          Resource.usage ~resource:"stages"
            ~used:(float_of_int allocation.Stage_alloc.stages_used)
            ~available:(float_of_int device.Tofino.n_stages);
        ]
      in
      let latency_ns =
        device.Tofino.base_latency_ns
        +. float_of_int allocation.Stage_alloc.stages_used
           *. device.Tofino.per_stage_latency_ns
      in
      let verdict =
        Resource.check perf ~usages ~latency_ns
          ~throughput_gpps:device.Tofino.line_rate_gpps
      in
      (tenants, Mat { device; tables; allocation }, verdict)

(* ------------------------------------------------------------------ *)
(* Grid lowering: one multi-model band-packed placement.              *)
(* ------------------------------------------------------------------ *)

let compose_grid grid perf tenants =
  let demands =
    List.concat_map
      (fun t ->
        let guard =
          match t.guard_table with Some g -> [ (g, 1, 0) ] | None -> []
        in
        guard
        @ List.map
            (fun (label, cus, mus) -> (prefix t.id label, cus, mus))
            (Taurus.layer_demands grid t.model))
      tenants
  in
  match Placement.place grid demands with
  | Error msg -> raise (Fail (Placement_failed msg))
  | Ok placement ->
      let cus = List.fold_left (fun a (_, c, _) -> a + c) 0 demands in
      let mus = List.fold_left (fun a (_, _, m) -> a + m) 0 demands in
      (* Longest Seq chain in cycles; a guard adds one matching hop. Since
         the whole composition placed at once, nothing is time-multiplexed
         and every tenant runs at II = 1. *)
      let own_cycles t =
        let m = Taurus.map_model grid t.model in
        m.Taurus.pipeline_cycles
        + (match t.guard_table with Some _ -> 1 | None -> 0)
      in
      let depth = Hashtbl.create 8 in
      List.iter
        (fun t ->
          let upstream_depth =
            List.fold_left
              (fun acc u ->
                Stdlib.max acc (try Hashtbl.find depth u with Not_found -> 0))
              0 t.upstream
          in
          Hashtbl.replace depth t.id (upstream_depth + own_cycles t))
        tenants;
      let pipeline_cycles =
        Hashtbl.fold (fun _ d acc -> Stdlib.max d acc) depth 0
      in
      let usages =
        [
          Resource.usage ~resource:"CU" ~used:(float_of_int cus)
            ~available:(float_of_int (Taurus.available_cus grid));
          Resource.usage ~resource:"MU" ~used:(float_of_int mus)
            ~available:(float_of_int (Taurus.available_mus grid));
        ]
      in
      let latency_ns =
        float_of_int (pipeline_cycles + grid.Taurus.overhead_cycles)
        /. grid.Taurus.clock_ghz
      in
      let verdict =
        Resource.check perf ~usages ~latency_ns
          ~throughput_gpps:grid.Taurus.clock_ghz
      in
      (tenants, Grid { grid; placement; cus; mus; pipeline_cycles }, verdict)

let compose (platform : Platform.t) inputs =
  match
    let features, tenants = elaborate inputs in
    let tenants, pipeline, verdict =
      match platform.Platform.target with
      | Platform.Tofino device ->
          compose_mat device platform.Platform.perf tenants
      | Platform.Taurus grid -> compose_grid grid platform.Platform.perf tenants
      | Platform.Fpga _ ->
          raise
            (Fail
               (Unsupported
                  "FPGA targets have no composition lowering yet; use Tofino \
                   or Taurus"))
    in
    { features; tenants; pipeline; verdict }
  with
  | t -> Ok t
  | exception Fail e -> Error e

let guard_table_count t =
  List.length (List.filter (fun tn -> tn.guard_table <> None) t.tenants)

let stages_used t =
  match t.pipeline with
  | Mat { allocation; _ } -> allocation.Stage_alloc.stages_used
  | Grid _ -> 0

let standalone_stages device (tn : tenant) =
  if tn.tables = [] then 0
  else begin
    let own = Hashtbl.create 16 in
    List.iter
      (fun (t : Stage_alloc.table) -> Hashtbl.replace own t.Stage_alloc.name ())
      tn.tables;
    Option.iter (fun g -> Hashtbl.replace own g ()) tn.guard_table;
    let prune (t : Stage_alloc.table) =
      {
        t with
        Stage_alloc.depends_on =
          List.filter (Hashtbl.mem own) t.Stage_alloc.depends_on;
      }
    in
    let tables =
      (match tn.guard_table with
      | Some g -> [ { Stage_alloc.name = g; depends_on = [] } ]
      | None -> [])
      @ List.map prune tn.tables
    in
    match
      Stage_alloc.allocate ~n_stages:device.Tofino.n_stages
        ~tables_per_stage:Tofino.tables_per_stage tables
    with
    | Ok a -> a.Stage_alloc.stages_used
    | Error (Stage_alloc.Capacity_exceeded { needed_stages; _ }) ->
        needed_stages
    | Error _ -> device.Tofino.n_stages + 1
  end

let summary t =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf "features: %s\n" (String.concat "," (Array.to_list t.features));
  List.iter
    (fun tn ->
      addf "tenant %s algo=%s pred=%s entries=%d proj=[%s] upstream=[%s]\n"
        tn.id
        (Model_ir.algorithm tn.model)
        (Pred.to_string tn.pred)
        (match tn.clauses with None -> 0 | Some cs -> Pred.n_entries cs)
        (String.concat ","
           (List.map string_of_int (Array.to_list tn.proj)))
        (String.concat "," tn.upstream))
    t.tenants;
  (match t.pipeline with
  | Mat { tables; allocation; _ } ->
      addf "mat tables=%d stages=%d occupancy=[%s]\n" (List.length tables)
        allocation.Stage_alloc.stages_used
        (String.concat ","
           (List.map string_of_int
              (Array.to_list allocation.Stage_alloc.occupancy)));
      List.iter
        (fun (tbl : Stage_alloc.table) ->
          addf "  %s -> stage %d\n" tbl.Stage_alloc.name
            (List.assoc tbl.Stage_alloc.name allocation.Stage_alloc.stage_of))
        tables
  | Grid { placement; cus; mus; pipeline_cycles; _ } ->
      addf "grid cus=%d mus=%d cycles=%d util=%.4f wirelength=%.1f\n" cus mus
        pipeline_cycles
        (Placement.utilization placement)
        (Placement.wirelength placement);
      let floor_plan = Placement.render placement in
      Buffer.add_string buf floor_plan;
      if floor_plan = "" || floor_plan.[String.length floor_plan - 1] <> '\n'
      then Buffer.add_char buf '\n');
  addf "verdict feasible=%b latency=%.1fns throughput=%.3fgpps%s\n"
    t.verdict.Resource.feasible t.verdict.Resource.latency_ns
    t.verdict.Resource.throughput_gpps
    (match t.verdict.Resource.rejection with
    | None -> ""
    | Some r -> " rejection=" ^ r);
  List.iter
    (fun (u : Resource.usage) ->
      addf "  %s %.0f/%.0f\n" u.Resource.resource u.Resource.used
        u.Resource.available)
    t.verdict.Resource.usages;
  Buffer.contents buf
