module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset
module Scaler = Homunculus_ml.Scaler
module Metrics = Homunculus_ml.Metrics
module Mlp = Homunculus_ml.Mlp
module Train = Homunculus_ml.Train
module Svm = Homunculus_ml.Svm
module Decision_tree = Homunculus_ml.Decision_tree
module Model_ir = Homunculus_backends.Model_ir
module Inference = Homunculus_backends.Inference
module Botnet = Homunculus_netdata.Botnet
module Flow = Homunculus_netdata.Flow

type config = {
  capacity : int;
  min_buffer : int;
  holdout_frac : float;
  min_gain : float;
  max_swaps : int;
  train : Train.config;
  hidden : int array option;
}

let default_config =
  {
    capacity = 2000;
    min_buffer = 400;
    holdout_frac = 0.3;
    min_gain = 0.02;
    max_swaps = 4;
    (* no validation split here, so early stopping can't apply *)
    train = { Train.default_config with Train.patience = None };
    hidden = None;
  }

type decision = {
  ts : float;
  reason : string;
  buffer_size : int;
  incumbent_f1 : float;
  challenger_f1 : float;
  accepted : bool;
  note : string;
}

type t = {
  config : config;
  rng : Rng.t;
  n_features : int;
  n_classes : int;
  features : float array array;  (* capacity slots; only [size] are live *)
  labels : int array;
  mutable size : int;
  mutable seen : int;
  mutable accepted_swaps : int;
  mutable rev_decisions : decision list;
}

let create rng ?(config = default_config) ~n_features ~n_classes () =
  if config.capacity <= 0 then invalid_arg "Updater.create: capacity <= 0";
  if config.holdout_frac <= 0. || config.holdout_frac >= 1. then
    invalid_arg "Updater.create: holdout_frac outside (0, 1)";
  if n_features <= 0 || n_classes <= 0 then
    invalid_arg "Updater.create: non-positive dimensions";
  {
    config;
    rng;
    n_features;
    n_classes;
    features = Array.make config.capacity [||];
    labels = Array.make config.capacity 0;
    size = 0;
    seen = 0;
    accepted_swaps = 0;
    rev_decisions = [];
  }

let record t ~features ~label =
  if Array.length features <> t.n_features then
    invalid_arg "Updater.record: feature dimension mismatch";
  if label < 0 || label >= t.n_classes then
    invalid_arg "Updater.record: label out of range";
  t.seen <- t.seen + 1;
  let slot =
    if t.size < t.config.capacity then begin
      let s = t.size in
      t.size <- t.size + 1;
      s
    end
    else Rng.int t.rng t.config.capacity
  in
  t.features.(slot) <- features;
  t.labels.(slot) <- label

let size t = t.size
let seen t = t.seen
let swaps_accepted t = t.accepted_swaps
let decisions t = List.rev t.rev_decisions

let calibration_sample t ~n =
  let k = Stdlib.min n t.size in
  Array.init k (fun i -> t.features.(i))

let snapshot t =
  ( Array.init t.size (fun i -> t.features.(i)),
    Array.sub t.labels 0 t.size )

let f1_of t ~pred ~truth =
  if t.n_classes = 2 then Metrics.f1 ~pred ~truth ()
  else Metrics.macro_f1 ~n_classes:t.n_classes ~pred ~truth

let decline t ~ts ~reason ~note =
  t.rev_decisions <-
    {
      ts;
      reason;
      buffer_size = t.size;
      incumbent_f1 = Float.nan;
      challenger_f1 = Float.nan;
      accepted = false;
      note;
    }
    :: t.rev_decisions;
  None

(* Retrain the incumbent's algorithm on (x, y); the returned model consumes
   raw features. *)
let train_challenger t ~incumbent ~x ~y =
  let name = Model_ir.name incumbent in
  let dataset std_x =
    Dataset.create ~x:std_x ~y ~n_classes:t.n_classes ()
  in
  match Model_ir.algorithm incumbent with
  | "dnn" ->
      let hidden =
        match t.config.hidden with
        | Some h -> h
        | None ->
            let dims = Model_ir.dnn_layer_dims incumbent in
            Array.sub dims 1 (Array.length dims - 2)
      in
      let scaler = Scaler.fit x in
      let rng = Rng.split t.rng in
      let mlp =
        Mlp.create rng ~input_dim:t.n_features ~hidden
          ~output_dim:t.n_classes ()
      in
      ignore (Train.fit rng mlp t.config.train (dataset (Scaler.transform scaler x)));
      Some
        (Model_ir.fold_standardization ~mean:(Scaler.mean scaler)
           ~stddev:(Scaler.stddev scaler)
           (Model_ir.of_mlp ~name mlp))
  | "svm" ->
      let scaler = Scaler.fit x in
      let svm = Svm.fit (Rng.split t.rng) (dataset (Scaler.transform scaler x)) in
      Some
        (Model_ir.fold_standardization ~mean:(Scaler.mean scaler)
           ~stddev:(Scaler.stddev scaler)
           (Model_ir.of_svm ~name svm))
  | "tree" ->
      (* Trees split on raw thresholds; no standardization needed. *)
      let clf =
        Decision_tree.Classifier.fit ~x ~y ~n_classes:t.n_classes ()
      in
      Some
        (Model_ir.Tree
           {
             name;
             root = Decision_tree.Classifier.root clf;
             n_features = t.n_features;
             n_classes = t.n_classes;
           })
  | _ -> None

(* The swap decision, isolated so its edge cases are testable: a holdout F1
   that comes back NaN (degenerate holdout, broken metric) must never
   promote a challenger — [c >= nan +. g] happens to be false, but we spell
   the guard out rather than lean on IEEE comparison falling the safe way. *)
let accepts ~min_gain ~incumbent_f1 ~challenger_f1 =
  (not (Float.is_nan challenger_f1))
  && (not (Float.is_nan incumbent_f1))
  && challenger_f1 >= incumbent_f1 +. min_gain

let try_update t ~incumbent ~ts ~reason =
  if t.accepted_swaps >= t.config.max_swaps then
    decline t ~ts ~reason ~note:"swap budget exhausted"
  else if t.size < t.config.min_buffer then
    decline t ~ts ~reason ~note:"buffer below min_buffer"
  else begin
    let n = t.size in
    let perm = Rng.permutation t.rng n in
    let n_hold =
      Stdlib.max 1 (int_of_float (t.config.holdout_frac *. float_of_int n))
    in
    let n_train = n - n_hold in
    let x_hold = Array.init n_hold (fun i -> t.features.(perm.(i))) in
    let y_hold = Array.init n_hold (fun i -> t.labels.(perm.(i))) in
    let x_train = Array.init n_train (fun i -> t.features.(perm.(n_hold + i))) in
    let y_train = Array.init n_train (fun i -> t.labels.(perm.(n_hold + i))) in
    let incumbent_f1 =
      f1_of t ~pred:(Inference.predict_all incumbent x_hold) ~truth:y_hold
    in
    match train_challenger t ~incumbent ~x:x_train ~y:y_train with
    | None ->
        decline t ~ts ~reason
          ~note:
            (Printf.sprintf "no online retraining for %s models"
               (Model_ir.algorithm incumbent))
    | Some challenger ->
        let challenger_f1 =
          f1_of t ~pred:(Inference.predict_all challenger x_hold) ~truth:y_hold
        in
        let accepted =
          accepts ~min_gain:t.config.min_gain ~incumbent_f1 ~challenger_f1
        in
        if accepted then t.accepted_swaps <- t.accepted_swaps + 1;
        t.rev_decisions <-
          {
            ts;
            reason;
            buffer_size = n;
            incumbent_f1;
            challenger_f1;
            accepted;
            note = (if accepted then "swapped" else "challenger below margin");
          }
          :: t.rev_decisions;
        if accepted then Some challenger else None
  end

let bootstrap rng ?(algorithm = `Dnn) ?(hidden = [| 16 |])
    ?(train = { Train.default_config with Train.patience = None })
    ?(prefixes = [ 4; 8; 16; 32; 64; 128 ])
    ~bins ~name flows =
  if Array.length flows = 0 then invalid_arg "Updater.bootstrap: no flows";
  let xs = ref [] and ys = ref [] in
  Array.iter
    (fun f ->
      let label = Flow.label_to_int f.Flow.label in
      let add features =
        xs := features :: !xs;
        ys := label :: !ys
      in
      List.iter
        (fun k ->
          if k <= Flow.n_packets f then
            add (Botnet.flow_features bins f ~first_packets:k ()))
        prefixes;
      add (Botnet.flow_features bins f ()))
    flows;
  let x = Array.of_list (List.rev !xs) in
  let y = Array.of_list (List.rev !ys) in
  let n_features = Botnet.n_features bins in
  let scaler = Scaler.fit x in
  let std = Scaler.transform scaler x in
  let fold ir =
    Model_ir.fold_standardization ~mean:(Scaler.mean scaler)
      ~stddev:(Scaler.stddev scaler) ir
  in
  match algorithm with
  | `Dnn ->
      let mlp =
        Mlp.create rng ~input_dim:n_features ~hidden ~output_dim:2 ()
      in
      ignore
        (Train.fit rng mlp train (Dataset.create ~x:std ~y ~n_classes:2 ()));
      fold (Model_ir.of_mlp ~name mlp)
  | `Svm ->
      fold
        (Model_ir.of_svm ~name
           (Svm.fit rng (Dataset.create ~x:std ~y ~n_classes:2 ())))
  | `Tree ->
      let clf = Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
      Model_ir.Tree
        {
          name;
          root = Decision_tree.Classifier.root clf;
          n_features;
          n_classes = 2;
        }
