(** Model refresh on drift: retrain, validate, hand back a challenger.

    The updater keeps a recency-biased reservoir of labeled events (once
    the buffer is full, each new example overwrites a uniformly random
    slot, so older traffic decays geometrically — "recent" without a hard
    cutoff). When the monitor's drift detector fires, {!try_update}
    retrains the incumbent's algorithm from scratch on the buffer,
    standardization folded back so the challenger consumes raw features
    ({!Homunculus_backends.Model_ir.fold_standardization}), and validates
    it against the incumbent on a held-out split of the same buffer. Only a
    challenger that beats the incumbent's F1 by [min_gain] is returned —
    the Taurus runtime-update contract is that swapping weights is cheap,
    but swapping in a worse model is not. *)

type config = {
  capacity : int;  (** reservoir slots *)
  min_buffer : int;  (** decline to retrain below this many examples *)
  holdout_frac : float;  (** fraction of the buffer held out for validation *)
  min_gain : float;  (** required challenger-over-incumbent F1 margin *)
  max_swaps : int;  (** hard cap on accepted updates per run *)
  train : Homunculus_ml.Train.config;  (** DNN retraining hyperparameters —
      reuse the artifact's training configuration *)
  hidden : int array option;
      (** DNN challenger architecture; [None] inherits the incumbent's
          hidden layer sizes *)
}

val default_config : config
(** 2000 slots, min 400, 30% holdout, 0.02 F1 margin, 4 swaps max,
    {!Homunculus_ml.Train.default_config}. *)

type decision = {
  ts : float;  (** virtual time of the attempt *)
  reason : string;  (** the drift reason that triggered it *)
  buffer_size : int;
  incumbent_f1 : float;  (** on the holdout split; [nan] when declined
                             before validation *)
  challenger_f1 : float;
  accepted : bool;
  note : string;  (** why a declined attempt was declined *)
}

type t

val create :
  Homunculus_util.Rng.t -> ?config:config -> n_features:int ->
  n_classes:int -> unit -> t
(** @raise Invalid_argument on non-positive capacity or a holdout fraction
    outside (0, 1). *)

val record : t -> features:float array -> label:int -> unit
(** Offer one labeled example to the reservoir. *)

val size : t -> int
val seen : t -> int
(** Examples currently buffered / offered over the whole run. *)

val swaps_accepted : t -> int

val decisions : t -> decision list
(** Every update attempt, oldest first. *)

val calibration_sample : t -> n:int -> float array array
(** Up to [n] buffered feature vectors — quantization calibration for
    reloading a {!Homunculus_backends.Runtime} after a swap. *)

val snapshot : t -> float array array * int array
(** The live reservoir contents, [(features, labels)], in slot order: the
    recent labeled traffic an autopilot re-search trains and validates
    against. The feature rows are shared (not copied); the label array is
    fresh. *)

val accepts :
  min_gain:float -> incumbent_f1:float -> challenger_f1:float -> bool
(** The swap decision {!try_update} applies: the challenger must clear the
    incumbent's holdout F1 by [min_gain]. A NaN on either side declines —
    a garbage holdout measurement must never promote a challenger. *)

val try_update :
  t ->
  incumbent:Homunculus_backends.Model_ir.t ->
  ts:float ->
  reason:string ->
  Homunculus_backends.Model_ir.t option
(** Retrain and validate; [Some challenger] only when it clears the margin.
    The challenger matches the incumbent's algorithm (DNN, SVM, or tree —
    KMeans incumbents are declined: online re-clustering has no labels to
    validate against). Every call appends a {!decision}. *)

val bootstrap :
  Homunculus_util.Rng.t ->
  ?algorithm:[ `Dnn | `Svm | `Tree ] ->
  ?hidden:int array ->
  ?train:Homunculus_ml.Train.config ->
  ?prefixes:int list ->
  bins:Homunculus_netdata.Botnet.bins ->
  name:string ->
  Homunculus_netdata.Flow.t array ->
  Homunculus_backends.Model_ir.t
(** Train the {e initial} serving artifact from a labeled flow population,
    on the same feature space the {!Stream} emits: each flow contributes
    its partial flowmarkers at the given prefix lengths (default
    [4; 8; 16; 32; 64; 128], prefixes beyond the flow skipped) plus its
    full-flow marker. Defaults: a DNN with one hidden layer of 16,
    {!Homunculus_ml.Train.default_config}. Standardization is folded back,
    so the model consumes raw features. *)
