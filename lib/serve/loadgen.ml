module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json

type process =
  | Poisson
  | Bursty of { mean_burst : int; peak_factor : float }

type gen = {
  rng : Rng.t;
  rate : float;
  process : process;
  mutable clock : float;
  mutable burst_left : int;  (* Bursty: in-burst packets still to emit *)
}

let process_name = function
  | Poisson -> "poisson"
  | Bursty { mean_burst; peak_factor } ->
      Printf.sprintf "bursty_b%d_p%g" mean_burst peak_factor

let generator rng ~rate ~process =
  if not (rate > 0.) then invalid_arg "Loadgen.generator: rate <= 0";
  (match process with
  | Poisson -> ()
  | Bursty { mean_burst; peak_factor } ->
      if mean_burst < 1 then
        invalid_arg "Loadgen.generator: mean_burst < 1";
      if not (peak_factor >= 1.) then
        invalid_arg "Loadgen.generator: peak_factor < 1");
  { rng; rate; process; clock = 0.; burst_left = 0 }

(* Off-gap mean for the on/off process, chosen so the long-run rate is
   exactly [rate]: one cycle emits E[B] = mean_burst packets over one off
   gap plus (B - 1) in-burst gaps of mean 1/(peak_factor * rate), so
   off_mean = (mean_burst - (mean_burst - 1)/peak_factor) / rate. At
   peak_factor = 1 or mean_burst = 1 this degenerates to Exp(rate) —
   plain Poisson. *)
let off_mean ~rate ~mean_burst ~peak_factor =
  let mb = float_of_int mean_burst in
  (mb -. ((mb -. 1.) /. peak_factor)) /. rate

let next_arrival g =
  let gap =
    match g.process with
    | Poisson -> Rng.exponential g.rng g.rate
    | Bursty { mean_burst; peak_factor } ->
        if g.burst_left > 0 then begin
          g.burst_left <- g.burst_left - 1;
          Rng.exponential g.rng (peak_factor *. g.rate)
        end
        else begin
          (* Start a new burst: off gap first, then burst length uniform on
             1 .. 2*mean_burst - 1 (mean = mean_burst); this packet is the
             burst's first. *)
          let om = off_mean ~rate:g.rate ~mean_burst ~peak_factor in
          let gap = Rng.exponential g.rng (1. /. om) in
          let b = 1 + Rng.int g.rng ((2 * mean_burst) - 1) in
          g.burst_left <- b - 1;
          gap
        end
  in
  g.clock <- g.clock +. gap;
  g.clock

let arrivals g ~n =
  if n < 0 then invalid_arg "Loadgen.arrivals: n < 0";
  Array.init n (fun _ -> next_arrival g)

let retime g events =
  Array.map (fun e -> { e with Stream.ts = next_arrival g }) events

type result = {
  label : string;
  rate : float;
  process : process;
  offered : int;
  served : int;
  dropped : int;
  wall_s : float;
  sustained_ips : float;
  latencies : float array;
  summary : Engine.summary;
}

let drive ?(label = "loadgen") engine ~rate ~process events =
  let n = Array.length events in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Engine.step engine events.(i)
  done;
  let summary = Engine.finish engine in
  let wall = Unix.gettimeofday () -. t0 in
  let tr = Engine.trace engine in
  let latencies =
    Array.init tr.Engine.n (fun i ->
        tr.Engine.completions.(i) -. tr.Engine.arrivals.(i))
  in
  {
    label;
    rate;
    process;
    offered = summary.Engine.offered;
    served = summary.Engine.served;
    dropped = summary.Engine.dropped;
    wall_s = wall;
    sustained_ips =
      (if wall > 0. then float_of_int summary.Engine.served /. wall else 0.);
    latencies;
    summary;
  }

let num v : Json.t = if Float.is_nan v then Json.Null else Json.Number v
let int i : Json.t = Json.Number (float_of_int i)

let result_to_json r =
  let drop_rate =
    if r.offered = 0 then 0.
    else float_of_int r.dropped /. float_of_int r.offered
  in
  Json.Object
    [
      ("label", Json.String r.label);
      ("process", Json.String (process_name r.process));
      ("offered_rate_pps", num r.rate);
      ("offered", int r.offered);
      ("served", int r.served);
      ("dropped", int r.dropped);
      ("drop_rate", num drop_rate);
      ("wall_s", num r.wall_s);
      ("sustained_inferences_per_s", num r.sustained_ips);
      ("latency", Report.latency_to_json r.latencies);
    ]

let p99 r =
  if Array.length r.latencies = 0 then Float.nan
  else Report.percentile 99. r.latencies
