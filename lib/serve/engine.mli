(** The online serving loop: admission, batched classification, verdicts,
    and zero-downtime model hot-swap.

    Packets enter through a bounded ingress queue (sized the way
    {!Homunculus_backends.Pipeline_sim.config_of_mapping} sizes a mapped
    pipeline's buffer) and are drained at a fixed service rate in
    classification batches, all in the trace's virtual time — a packet
    arriving while the queue is full is dropped and counted, exactly the
    overflow semantics of {!Homunculus_backends.Pipeline_sim}. Verdicts
    flow into a {!Monitor}; once labels arrive, labeled events feed an
    optional {!Updater}. When the monitor's drift detector fires, the
    engine asks the updater for a validated challenger and, if one clears
    the margin, installs it {e between} service batches: the classifier
    reference (and, in quantized mode, the rebuilt
    {!Homunculus_backends.Runtime} tables) is replaced atomically while
    every queued packet stays queued — Taurus's runtime weight-update
    semantics, where the pipeline keeps accepting traffic mid-update. Each
    swap records the queue depth it preserved and the drops it caused
    (always 0 by construction, asserted in the record). *)

type mode =
  | Reference  (** floating-point {!Homunculus_backends.Inference} *)
  | Quantized
      (** fixed-point MAT execution via {!Homunculus_backends.Runtime};
          requires a MAT-mappable model (not a raw DNN) *)

type config = {
  queue_capacity : int;  (** ingress buffer, packets *)
  batch_size : int;  (** classification batch *)
  service_rate_pps : float;  (** drained packets per virtual second *)
  mode : mode;
  entries_per_feature : int;  (** quantized table granularity *)
  trace_capacity : int;
      (** record per-packet service records for the first this-many served
          packets (arrival/completion time, verdict, epoch, truth,
          features) into preallocated buffers; 0 (the default) disables
          tracing. The loadgen and the differential replay oracle read the
          trace back through {!trace}. *)
}

val default_config : config
(** Queue 64 (the {!Homunculus_backends.Pipeline_sim} default), batches of
    32, 200 pkt/s against trace-scale timestamps, [Reference] mode,
    64 entries/feature, no trace. *)

val config_of_mapping :
  ?service_rate_pps:float ->
  Homunculus_backends.Taurus.grid ->
  Homunculus_backends.Taurus.mapping ->
  config
(** Derive queue capacity from the mapped pipeline's simulator
    configuration. The hardware service rate (clock / II) is absurdly fast
    against second-scale trace time, so replays that want queueing pressure
    pass an explicit [service_rate_pps] (default: clock / II in packets per
    virtual second). *)

type swap = {
  swap_ts : float;  (** virtual time of the swap *)
  swap_reason : string;  (** drift reason that triggered it *)
  queue_preserved : int;  (** packets in flight, kept across the swap *)
  dropped_during_swap : int;  (** 0: the swap never pauses admission *)
  incumbent_f1 : float;  (** holdout scores from the updater's validation *)
  challenger_f1 : float;
}

type summary = {
  offered : int;
  served : int;
  dropped : int;
  swaps : swap list;  (** oldest first *)
  drift_events : Monitor.drift list;
  windows : Monitor.window list;
  final_model : Homunculus_backends.Model_ir.t;
  updater_decisions : Updater.decision list;  (** empty without an updater *)
}

type reaction =
  | Keep
      (** the incumbent stays installed; the monitor is re-armed (its
          cooldown still applies) *)
  | Install of {
      model : Homunculus_backends.Model_ir.t;
      incumbent_f1 : float;  (** validation scores recorded in the swap *)
      challenger_f1 : float;
    }
      (** hot-swap [model] in between service batches, exactly like an
          updater-validated challenger *)

type research_hook =
  now:float -> drift:Monitor.drift -> incumbent:Homunculus_backends.Model_ir.t ->
  reaction
(** The autopilot's entry point: called (between service batches, on the
    serving thread, in virtual time [now]) when a drift alarm is consumed,
    with the currently serving model. Whatever the hook does — including a
    long re-search — the incumbent keeps serving until the returned
    [Install] lands; an exception propagates out of {!step}/{!run} (that is
    how a simulated {!Homunculus_resilience.Faultplan.Killed} crash reaches
    the driver). *)

type t

val create :
  ?config:config ->
  model:Homunculus_backends.Model_ir.t ->
  monitor:Monitor.t ->
  ?updater:Updater.t ->
  ?research:research_hook ->
  unit ->
  t
(** When [research] is present it owns the drift reaction: the updater (if
    any) still buffers labeled traffic and supplies quantization
    calibration, but {!Updater.try_update} is never called — challengers
    come from the hook.
    @raise Invalid_argument on a non-positive queue, batch, or rate — or,
    in [Quantized] mode, on a model {!Homunculus_backends.Runtime.load}
    rejects. *)

val model : t -> Homunculus_backends.Model_ir.t
(** The classifier currently serving (changes after a hot-swap). *)

val current_runtime : t -> Homunculus_backends.Runtime.t option
(** The fixed-point tables currently serving ([Some] iff [Quantized] mode;
    rebuilt on every hot-swap). *)

val epoch : t -> int
(** How many hot-swaps have been installed: packets served before the
    first swap carry epoch 0, packets after the [n]th swap epoch [n]. The
    epoch, the classifier, and (in quantized mode) the runtime tables and
    their workspace change together, strictly between service batches — a
    batch in flight always completes against the tables it started with. *)

val epoch_runtimes : t -> Homunculus_backends.Runtime.t array
(** Quantized mode: every table generation that ever served, indexed by
    epoch (length [epoch t + 1]) — the replay oracle re-runs each traced
    packet against [epoch_runtimes.(epochs.(i))]. [[||]] in Reference
    mode. *)

val epoch_models : t -> Homunculus_backends.Model_ir.t array
(** Every classifier generation that ever served, indexed by epoch. *)

type trace = {
  n : int;  (** recorded packets (≤ served, capped by [trace_capacity]) *)
  arrivals : float array;  (** per packet: virtual arrival time *)
  completions : float array;  (** virtual service-completion time *)
  verdicts : int array;  (** class the engine reported *)
  epochs : int array;  (** table/model generation that served it *)
  truths : int array;  (** delayed ground-truth label *)
  xs : float array array;  (** the feature vector classified (not copied) *)
}

val trace : t -> trace
(** Copy out the per-packet service records captured so far (first
    [trace_capacity] served packets, in service order). Service latency of
    packet [i] is [completions.(i) -. arrivals.(i)]. *)

val run : t -> Stream.event array -> summary
(** Replay the whole event stream through the loop and drain everything
    still queued or awaiting labels at the end. Deterministic: virtual time
    comes from event timestamps, randomness only from the seeded RNGs
    handed to the stream and updater. @raise Invalid_argument on
    out-of-order events. *)

(** {2 Incremental driving}

    [run] is [step] folded over the events plus [finish]; open-loop load
    generators drive the same three entry points directly so they can
    wrap wall-clock measurement around the drain. *)

val step : t -> Stream.event -> unit
(** Advance virtual time to the event's arrival (draining whatever the
    service rate allows), then admit the event — or drop it if the ingress
    queue is full. Callers must feed events in ascending [ts] order;
    unlike {!run}, [step] does not re-check. *)

val finish : t -> summary
(** Drain everything still queued, flush pending labels, and summarize. *)
