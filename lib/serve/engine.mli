(** The online serving loop: admission, batched classification, verdicts,
    and zero-downtime model hot-swap.

    Packets enter through a bounded ingress queue (sized the way
    {!Homunculus_backends.Pipeline_sim.config_of_mapping} sizes a mapped
    pipeline's buffer) and are drained at a fixed service rate in
    classification batches, all in the trace's virtual time — a packet
    arriving while the queue is full is dropped and counted, exactly the
    overflow semantics of {!Homunculus_backends.Pipeline_sim}. Verdicts
    flow into a {!Monitor}; once labels arrive, labeled events feed an
    optional {!Updater}. When the monitor's drift detector fires, the
    engine asks the updater for a validated challenger and, if one clears
    the margin, installs it {e between} service batches: the classifier
    reference (and, in quantized mode, the rebuilt
    {!Homunculus_backends.Runtime} tables) is replaced atomically while
    every queued packet stays queued — Taurus's runtime weight-update
    semantics, where the pipeline keeps accepting traffic mid-update. Each
    swap records the queue depth it preserved and the drops it caused
    (always 0 by construction, asserted in the record). *)

type mode =
  | Reference  (** floating-point {!Homunculus_backends.Inference} *)
  | Quantized
      (** fixed-point MAT execution via {!Homunculus_backends.Runtime};
          requires a MAT-mappable model (not a raw DNN) *)

type config = {
  queue_capacity : int;  (** ingress buffer, packets *)
  batch_size : int;  (** classification batch *)
  service_rate_pps : float;  (** drained packets per virtual second *)
  mode : mode;
  entries_per_feature : int;  (** quantized table granularity *)
}

val default_config : config
(** Queue 64 (the {!Homunculus_backends.Pipeline_sim} default), batches of
    32, 200 pkt/s against trace-scale timestamps, [Reference] mode,
    64 entries/feature. *)

val config_of_mapping :
  ?service_rate_pps:float ->
  Homunculus_backends.Taurus.grid ->
  Homunculus_backends.Taurus.mapping ->
  config
(** Derive queue capacity from the mapped pipeline's simulator
    configuration. The hardware service rate (clock / II) is absurdly fast
    against second-scale trace time, so replays that want queueing pressure
    pass an explicit [service_rate_pps] (default: clock / II in packets per
    virtual second). *)

type swap = {
  swap_ts : float;  (** virtual time of the swap *)
  swap_reason : string;  (** drift reason that triggered it *)
  queue_preserved : int;  (** packets in flight, kept across the swap *)
  dropped_during_swap : int;  (** 0: the swap never pauses admission *)
  incumbent_f1 : float;  (** holdout scores from the updater's validation *)
  challenger_f1 : float;
}

type summary = {
  offered : int;
  served : int;
  dropped : int;
  swaps : swap list;  (** oldest first *)
  drift_events : Monitor.drift list;
  windows : Monitor.window list;
  final_model : Homunculus_backends.Model_ir.t;
  updater_decisions : Updater.decision list;  (** empty without an updater *)
}

type t

val create :
  ?config:config ->
  model:Homunculus_backends.Model_ir.t ->
  monitor:Monitor.t ->
  ?updater:Updater.t ->
  unit ->
  t
(** @raise Invalid_argument on a non-positive queue, batch, or rate — or,
    in [Quantized] mode, on a model {!Homunculus_backends.Runtime.load}
    rejects. *)

val model : t -> Homunculus_backends.Model_ir.t
(** The classifier currently serving (changes after a hot-swap). *)

val run : t -> Stream.event array -> summary
(** Replay the whole event stream through the loop and drain everything
    still queued or awaiting labels at the end. Deterministic: virtual time
    comes from event timestamps, randomness only from the seeded RNGs
    handed to the stream and updater. @raise Invalid_argument on
    out-of-order events. *)
