(** Open-loop load generation for the serving engine — the
    [simple-packet-gen] role in the NuevoMatchUP-style measurement setup.

    Arrivals come from a seeded stochastic process at a target long-run
    rate, {e independent of service progress} (open loop): a saturated
    engine sees the queue fill and drops packets rather than back-pressure
    the generator, which is what makes the measured drop rate and tail
    latency honest. Virtual arrival/service time gives deterministic
    latency percentiles; the wall clock around the drain gives sustained
    inferences per second on the host. *)

type process =
  | Poisson  (** i.i.d. Exp(rate) inter-arrival gaps *)
  | Bursty of { mean_burst : int; peak_factor : float }
      (** on/off: bursts of mean [mean_burst] packets (uniform on
          [1, 2*mean_burst-1]) arriving at [peak_factor * rate], separated
          by off gaps sized so the long-run rate is still exactly the
          target. [peak_factor >= 1.]; both [1] degenerate to Poisson. *)

type gen
(** Stateful arrival-time generator. Deterministic for a fixed seed, and
    chunk-invariant: drawing [n] arrivals in any split of calls yields the
    bit-identical sequence as one call, so a loadgen that batches its
    synthesis cannot perturb the workload. *)

val process_name : process -> string
(** Short stable identifier, e.g. ["poisson"], ["bursty_b8_p4"]. *)

val generator : Homunculus_util.Rng.t -> rate:float -> process:process -> gen
(** @raise Invalid_argument unless [rate > 0], [mean_burst >= 1] and
    [peak_factor >= 1]. *)

val next_arrival : gen -> float
(** The next absolute arrival timestamp (non-decreasing; starts from
    virtual time 0). *)

val arrivals : gen -> n:int -> float array
(** The next [n] arrival timestamps. *)

val retime : gen -> Stream.event array -> Stream.event array
(** Re-stamp a feature-carrying trace with open-loop arrival times, in
    order: event [i] keeps its features/label and arrives at the
    generator's [i]th arrival. This is how dataset- or flow-derived
    payloads are pushed through the engine at a controlled rate. *)

type result = {
  label : string;
  rate : float;  (** target offered rate, packets per virtual second *)
  process : process;
  offered : int;
  served : int;
  dropped : int;
  wall_s : float;  (** host wall-clock spent inside the replay *)
  sustained_ips : float;  (** served / wall_s: sustained inferences/sec *)
  latencies : float array;
      (** virtual-time service latency (completion - arrival) per traced
          packet, in service order — deterministic for a fixed seed *)
  summary : Engine.summary;
}

val drive :
  ?label:string ->
  Engine.t ->
  rate:float ->
  process:process ->
  Stream.event array ->
  result
(** Feed the (ascending-timestamp) events through {!Engine.step} +
    {!Engine.finish}, timing the whole replay on the wall clock. Latency
    percentiles need the engine created with a positive
    [trace_capacity]. [rate]/[process] are recorded, not re-derived. *)

val result_to_json : result -> Homunculus_util.Json.t
(** The BENCH_serve.json record: offered/served/dropped counts, drop
    rate, wall time, sustained inferences/sec, and the nearest-rank
    latency summary ({!Report.latency_to_json}). *)

val p99 : result -> float
(** Nearest-rank p99 service latency in virtual seconds — the SLO-gate
    statistic ([nan] when nothing was traced). *)
