module Json = Homunculus_util.Json

let num v : Json.t = if Float.is_nan v then Json.Null else Json.Number v
let int i : Json.t = Json.Number (float_of_int i)

(* Nearest-rank percentile (the SLO convention): the reported p99 is a
   latency some packet actually experienced, never a value interpolated
   between two samples. rank = ceil(p/100 * n) on the ascending-sorted
   sample, 1-based; p = 0 degenerates to the minimum. Deliberately NOT
   [Stats.percentile], which linearly interpolates between order
   statistics — on a 1000-sample vector the interpolated p999 blends the
   two largest observations into a latency nobody saw. *)
let percentile p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Report.percentile: empty sample";
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg "Report.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  (* p/100*n is inexact in binary (99.9/100*1000 = 999.0000000000001);
     without the relative epsilon, ceil would bump exact ranks up one and
     report p999 as the maximum on a 1000-sample vector. *)
  let r = p /. 100. *. float_of_int n in
  let rank = int_of_float (Float.ceil (r -. (1e-9 *. Float.max 1. r))) in
  sorted.(Stdlib.max 0 (rank - 1))

let latency_to_json latencies =
  let n = Array.length latencies in
  if n = 0 then
    Json.Object [ ("n", int 0) ]
  else begin
    let sum = Array.fold_left ( +. ) 0. latencies in
    Json.Object
      [
        ("n", int n);
        ("mean_s", num (sum /. float_of_int n));
        ("p50_s", num (percentile 50. latencies));
        ("p99_s", num (percentile 99. latencies));
        ("p999_s", num (percentile 99.9 latencies));
        ("max_s", num (percentile 100. latencies));
      ]
  end

let confusion_to_json c =
  Json.List
    (Array.to_list c
    |> List.map (fun row -> Json.List (Array.to_list row |> List.map int)))

let window_to_json (w : Monitor.window) =
  Json.Object
    [
      ("index", int w.Monitor.index);
      ("t_start", num w.Monitor.t_start);
      ("t_end", num w.Monitor.t_end);
      ("events", int w.Monitor.events);
      ("accuracy", num w.Monitor.accuracy);
      ("f1", num w.Monitor.f1);
      ("confusion", confusion_to_json w.Monitor.confusion);
      ("throughput_eps", num w.Monitor.throughput_eps);
      ("mean_queue_depth", num w.Monitor.mean_queue_depth);
      ("max_queue_depth", int w.Monitor.max_queue_depth);
    ]

let drift_to_json (d : Monitor.drift) =
  Json.Object
    [
      ("ts", num d.Monitor.ts);
      ("window", int d.Monitor.window);
      ("reason", Json.String d.Monitor.reason);
      ("value", num d.Monitor.value);
    ]

let swap_to_json (s : Engine.swap) =
  Json.Object
    [
      ("ts", num s.Engine.swap_ts);
      ("reason", Json.String s.Engine.swap_reason);
      ("queue_preserved", int s.Engine.queue_preserved);
      ("dropped_during_swap", int s.Engine.dropped_during_swap);
      ("incumbent_f1", num s.Engine.incumbent_f1);
      ("challenger_f1", num s.Engine.challenger_f1);
    ]

let decision_to_json (d : Updater.decision) =
  Json.Object
    [
      ("ts", num d.Updater.ts);
      ("reason", Json.String d.Updater.reason);
      ("buffer_size", int d.Updater.buffer_size);
      ("incumbent_f1", num d.Updater.incumbent_f1);
      ("challenger_f1", num d.Updater.challenger_f1);
      ("accepted", Json.Bool d.Updater.accepted);
      ("note", Json.String d.Updater.note);
    ]

let summary_to_json (s : Engine.summary) =
  Json.Object
    [
      ("offered", int s.Engine.offered);
      ("served", int s.Engine.served);
      ("dropped", int s.Engine.dropped);
      ("model", Json.String (Homunculus_backends.Model_ir.name s.Engine.final_model));
      ( "algorithm",
        Json.String (Homunculus_backends.Model_ir.algorithm s.Engine.final_model) );
      ("windows", Json.List (List.map window_to_json s.Engine.windows));
      ("drifts", Json.List (List.map drift_to_json s.Engine.drift_events));
      ("swaps", Json.List (List.map swap_to_json s.Engine.swaps));
      ( "decisions",
        Json.List (List.map decision_to_json s.Engine.updater_decisions) );
    ]

let tag name json =
  match (json : Json.t) with
  | Json.Object members -> Json.Object (("event", Json.String name) :: members)
  | other -> Json.Object [ ("event", Json.String name); ("record", other) ]

let timeline (s : Engine.summary) =
  let records =
    List.map
      (fun w -> (w.Monitor.t_end, 0, tag "window" (window_to_json w)))
      s.Engine.windows
    @ List.map
        (fun d -> (d.Monitor.ts, 1, tag "drift" (drift_to_json d)))
        s.Engine.drift_events
    @ List.map
        (fun d -> (d.Updater.ts, 2, tag "decision" (decision_to_json d)))
        s.Engine.updater_decisions
    @ List.map
        (fun sw -> (sw.Engine.swap_ts, 3, tag "swap" (swap_to_json sw)))
        s.Engine.swaps
  in
  List.stable_sort
    (fun (t1, k1, _) (t2, k2, _) -> compare (t1, k1) (t2, k2))
    records
  |> List.map (fun (_, _, j) -> j)

let to_jsonl s =
  timeline s
  |> List.map (fun j -> Json.to_string ~pretty:false j)
  |> String.concat "\n"
  |> fun body -> if body = "" then "" else body ^ "\n"

let write_jsonl ~path s =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_jsonl s))
