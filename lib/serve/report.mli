(** Serialize a serving run as JSON — the timeline a dashboard or a
    regression harness would consume, via {!Homunculus_util.Json} (no
    external dependencies, like the rest of the system's interchange). *)

val percentile : float -> float array -> float
(** [percentile p xs] — nearest-rank percentile (the SLO convention):
    sort ascending, take element [ceil (p/100 * n)] (1-based; [p = 0]
    gives the minimum, [p = 100] the maximum). Always returns a value some
    sample actually took, never an interpolation between two samples —
    unlike {!Homunculus_util.Stats.percentile}. The input is not modified.
    @raise Invalid_argument on an empty sample or [p] outside [0, 100]. *)

val latency_to_json : float array -> Homunculus_util.Json.t
(** Latency-sample summary: count, mean, and nearest-rank p50 / p99 /
    p999 / max, in seconds. *)

val window_to_json : Monitor.window -> Homunculus_util.Json.t
val drift_to_json : Monitor.drift -> Homunculus_util.Json.t
val swap_to_json : Engine.swap -> Homunculus_util.Json.t
val decision_to_json : Updater.decision -> Homunculus_util.Json.t

val summary_to_json : Engine.summary -> Homunculus_util.Json.t
(** One object: run totals plus the full windows / drifts / swaps /
    decisions lists. *)

val timeline : Engine.summary -> Homunculus_util.Json.t list
(** The run as a flat, virtual-time-ordered sequence of records, each
    tagged with an ["event"] member (["window"], ["drift"], ["swap"], or
    ["decision"]). *)

val to_jsonl : Engine.summary -> string
(** {!timeline}, one compact JSON object per line. *)

val write_jsonl : path:string -> Engine.summary -> unit
