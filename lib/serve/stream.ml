module Rng = Homunculus_util.Rng
open Homunculus_netdata

type event = {
  ts : float;
  flow_id : int;
  app : string;
  label : int;
  packet_index : int;
  features : float array;
}

type config = {
  bins : Botnet.bins;
  min_packets : int;
  sram_bytes : int;
}

let default_config = { bins = Botnet.Fused; min_packets = 4; sram_bytes = 1 lsl 16 }

let specs_of_bins = function
  | Botnet.Full -> (Botnet.pl_spec_full, Botnet.ipt_spec_full)
  | Botnet.Fused -> (Botnet.pl_spec_fused, Botnet.ipt_spec_fused)

let n_features config = Botnet.n_features config.bins

let bin_of spec v =
  let i = int_of_float (v /. spec.Histogram.bin_width) in
  Homunculus_util.Mathx.clamp_int ~lo:0 ~hi:(spec.Histogram.n_bins - 1) i

(* Normalize the two halves of a raw marker independently, the way
   Flow.flowmarker normalizes its two histograms. *)
let features_of_marker ~pl_bins marker =
  let n = Array.length marker in
  let out = Array.make n 0. in
  let normalize lo hi =
    let sum = ref 0. in
    for i = lo to hi - 1 do
      sum := !sum +. marker.(i)
    done;
    if !sum > 0. then
      for i = lo to hi - 1 do
        out.(i) <- marker.(i) /. !sum
      done
  in
  normalize 0 pl_bins;
  normalize pl_bins n;
  out

let events_scheduled ?(config = default_config) scheduled =
  let pl_spec, ipt_spec = specs_of_bins config.bins in
  let pl_bins = pl_spec.Histogram.n_bins in
  let marker_bins = pl_bins + ipt_spec.Histogram.n_bins in
  let table =
    Flow_table.create ~sram_bytes:config.sram_bytes ~marker_bins ()
  in
  (* One timeline entry per packet, sorted by arrival time. *)
  let arrivals =
    Array.to_list scheduled
    |> List.concat_map (fun (start, flow) ->
           if start < 0. then invalid_arg "Stream.events_scheduled: negative start";
           Array.to_list flow.Flow.packets
           |> List.mapi (fun i p -> (start +. p.Packet.ts, flow, i)))
    |> List.sort (fun (t1, f1, i1) (t2, f2, i2) ->
           compare (t1, f1.Flow.id, i1) (t2, f2.Flow.id, i2))
  in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let out = ref [] in
  List.iter
    (fun (ts, flow, i) ->
      let id = flow.Flow.id in
      let key = Flow_table.key_of_ints id id in
      let size = float_of_int flow.Flow.packets.(i).Packet.size in
      Flow_table.record table key ~value:1. ~bin:(bin_of pl_spec size);
      (match Hashtbl.find_opt last_ts id with
      | Some prev ->
          let gap = ts -. prev in
          Flow_table.record table key ~value:1.
            ~bin:(pl_bins + bin_of ipt_spec gap)
      | None -> ());
      Hashtbl.replace last_ts id ts;
      if i + 1 >= config.min_packets then
        let marker =
          match Flow_table.marker table key with
          | Some m -> m
          | None -> Array.make marker_bins 0.
        in
        out :=
          {
            ts;
            flow_id = id;
            app = flow.Flow.app;
            label = Flow.label_to_int flow.Flow.label;
            packet_index = i + 1;
            features = features_of_marker ~pl_bins marker;
          }
          :: !out)
    arrivals;
  Array.of_list (List.rev !out)

let events rng ?(config = default_config) ?(start_window_s = 600.) flows =
  let scheduled =
    Array.map (fun f -> (Rng.float rng start_window_s, f)) flows
  in
  events_scheduled ~config scheduled

let of_samples ?(app = "synthetic") ?labels ~ts xs =
  let n = Array.length xs in
  if Array.length ts <> n then
    invalid_arg "Stream.of_samples: timestamp/sample length mismatch";
  (match labels with
  | Some l when Array.length l <> n ->
      invalid_arg "Stream.of_samples: label/sample length mismatch"
  | _ -> ());
  Array.init n (fun i ->
      {
        ts = ts.(i);
        flow_id = i;
        app;
        label = (match labels with Some l -> l.(i) | None -> 0);
        packet_index = 1;
        features = xs.(i);
      })

let shift_botnet ?(size_scale = 6.) ?(gap_scale = 0.1) flows =
  Array.map
    (fun f ->
      match f.Flow.label with
      | Flow.Benign -> f
      | Flow.Botnet ->
          let packets =
            Array.map
              (fun p ->
                Packet.make
                  ~ts:(p.Packet.ts *. gap_scale)
                  ~size:
                    (Homunculus_util.Mathx.clamp_int ~lo:40 ~hi:1500
                       (int_of_float (float_of_int p.Packet.size *. size_scale))))
              f.Flow.packets
          in
          Flow.make ~id:f.Flow.id ~label:f.Flow.label ~app:f.Flow.app ~packets)
    flows

let renumber ~from flows =
  Array.mapi
    (fun i f ->
      Flow.make ~id:(from + i) ~label:f.Flow.label ~app:f.Flow.app
        ~packets:f.Flow.packets)
    flows
