type config = {
  window_events : int;
  label_delay_s : float;
  baseline_windows : int;
  acc_drop : float;
  ph_delta : float;
  ph_lambda : float;
  cooldown_windows : int;
}

let default_config =
  {
    window_events = 250;
    label_delay_s = 5.;
    baseline_windows = 3;
    acc_drop = 0.15;
    ph_delta = 0.005;
    ph_lambda = 25.;
    cooldown_windows = 0;
  }

type window = {
  index : int;
  t_start : float;
  t_end : float;
  events : int;
  accuracy : float;
  f1 : float;
  confusion : int array array;
  throughput_eps : float;
  mean_queue_depth : float;
  max_queue_depth : int;
}

type drift = { ts : float; window : int; reason : string; value : float }

type labeled = {
  lts : float;
  lfeatures : float array;
  lpred : int;
  ltruth : int;
}

type t = {
  config : config;
  n_classes : int;
  pending : (float * int * labeled) Queue.t;  (* label-arrival ts, queue depth *)
  (* current window accumulators *)
  mutable w_count : int;
  mutable w_correct : int;
  mutable w_confusion : int array array;
  mutable w_t_start : float;
  mutable w_t_end : float;
  mutable w_queue_sum : int;
  mutable w_queue_max : int;
  mutable next_window : int;
  mutable rev_windows : window list;
  (* Page–Hinkley state over the error indicator *)
  mutable ph_n : int;
  mutable ph_mean : float;
  mutable ph_m : float;
  mutable ph_min : float;
  (* drift baseline and alarm latch *)
  mutable baseline_accs : float list;  (* oldest first, capped *)
  mutable baseline : float option;
  mutable armed : bool;
  mutable pending_alarm : drift option;
  mutable rev_drifts : drift list;
  (* Alarm hysteresis: no alarm may fire for a window below this index.
     Advanced when a pending alarm is consumed through [poll_drift]. *)
  mutable cooldown_until : int;
  mutable forced_windows : int list;  (* injected-drift window indices *)
}

let create ?(config = default_config) ~n_classes () =
  if config.window_events <= 0 then
    invalid_arg "Monitor.create: window_events <= 0";
  if config.label_delay_s < 0. then
    invalid_arg "Monitor.create: negative label_delay_s";
  if config.cooldown_windows < 0 then
    invalid_arg "Monitor.create: negative cooldown_windows";
  if n_classes <= 0 then invalid_arg "Monitor.create: n_classes <= 0";
  {
    config;
    n_classes;
    pending = Queue.create ();
    w_count = 0;
    w_correct = 0;
    w_confusion = Array.make_matrix n_classes n_classes 0;
    w_t_start = 0.;
    w_t_end = 0.;
    w_queue_sum = 0;
    w_queue_max = 0;
    next_window = 0;
    rev_windows = [];
    ph_n = 0;
    ph_mean = 0.;
    ph_m = 0.;
    ph_min = 0.;
    baseline_accs = [];
    baseline = None;
    armed = true;
    pending_alarm = None;
    rev_drifts = [];
    cooldown_until = 0;
    forced_windows = [];
  }

let observe t ~ts ~queue_depth ~features ~pred ~truth =
  if pred < 0 || pred >= t.n_classes then
    invalid_arg "Monitor.observe: pred out of range";
  if truth < 0 || truth >= t.n_classes then
    invalid_arg "Monitor.observe: truth out of range";
  Queue.add
    ( ts +. t.config.label_delay_s,
      queue_depth,
      { lts = ts +. t.config.label_delay_s; lfeatures = features; lpred = pred; ltruth = truth } )
    t.pending

(* F1 from a confusion matrix: binary (positive class 1) for two classes,
   macro otherwise — the convention of Ml.Train.evaluate_f1. *)
let f1_of_confusion c =
  let n = Array.length c in
  let class_f1 k =
    let tp = ref 0 and fp = ref 0 and fn = ref 0 in
    for i = 0 to n - 1 do
      if i = k then tp := c.(k).(k)
      else begin
        fp := !fp + c.(i).(k);
        fn := !fn + c.(k).(i)
      end
    done;
    let denom = (2 * !tp) + !fp + !fn in
    if denom = 0 then 0. else 2. *. float_of_int !tp /. float_of_int denom
  in
  if n = 2 then class_f1 1
  else begin
    let sum = ref 0. in
    for k = 0 to n - 1 do
      sum := !sum +. class_f1 k
    done;
    !sum /. float_of_int n
  end

(* A fire during the cooldown that follows a consumed alarm is swallowed
   entirely (not deferred): hysteresis means the reaction to the previous
   alarm gets [cooldown_windows] windows to show up in the metrics before
   the detector may demand another one. *)
let fire t ~ts ~window ~reason ~value =
  if window >= t.cooldown_until then begin
    let d = { ts; window; reason; value } in
    t.armed <- false;
    t.pending_alarm <- Some d;
    t.rev_drifts <- d :: t.rev_drifts
  end

let close_window t =
  let n = t.w_count in
  let accuracy = float_of_int t.w_correct /. float_of_int n in
  let span = t.w_t_end -. t.w_t_start in
  let w =
    {
      index = t.next_window;
      t_start = t.w_t_start;
      t_end = t.w_t_end;
      events = n;
      accuracy;
      f1 = f1_of_confusion t.w_confusion;
      confusion = t.w_confusion;
      throughput_eps = (if span > 0. then float_of_int n /. span else 0.);
      mean_queue_depth = float_of_int t.w_queue_sum /. float_of_int n;
      max_queue_depth = t.w_queue_max;
    }
  in
  t.rev_windows <- w :: t.rev_windows;
  t.next_window <- t.next_window + 1;
  t.w_count <- 0;
  t.w_correct <- 0;
  t.w_confusion <- Array.make_matrix t.n_classes t.n_classes 0;
  t.w_queue_sum <- 0;
  t.w_queue_max <- 0;
  (* Drift logic at window granularity. *)
  (match t.baseline with
  | None ->
      t.baseline_accs <- t.baseline_accs @ [ accuracy ];
      if List.length t.baseline_accs >= t.config.baseline_windows then begin
        let k = t.config.baseline_windows in
        let first_k = List.filteri (fun i _ -> i < k) t.baseline_accs in
        t.baseline <-
          Some (List.fold_left ( +. ) 0. first_k /. float_of_int k)
      end
  | Some b ->
      if t.armed && accuracy < b -. t.config.acc_drop then
        fire t ~ts:w.t_end ~window:w.index ~reason:"accuracy_drop"
          ~value:accuracy);
  if t.armed && List.mem w.index t.forced_windows then
    fire t ~ts:w.t_end ~window:w.index ~reason:"injected" ~value:w.accuracy

let fold_labeled t (label_ts, queue_depth, l) =
  if t.w_count = 0 then t.w_t_start <- label_ts;
  t.w_t_end <- label_ts;
  t.w_count <- t.w_count + 1;
  if l.lpred = l.ltruth then t.w_correct <- t.w_correct + 1;
  t.w_confusion.(l.ltruth).(l.lpred) <-
    t.w_confusion.(l.ltruth).(l.lpred) + 1;
  t.w_queue_sum <- t.w_queue_sum + queue_depth;
  t.w_queue_max <- Stdlib.max t.w_queue_max queue_depth;
  (* Page–Hinkley on the error indicator. *)
  let x = if l.lpred = l.ltruth then 0. else 1. in
  t.ph_n <- t.ph_n + 1;
  t.ph_mean <- t.ph_mean +. ((x -. t.ph_mean) /. float_of_int t.ph_n);
  t.ph_m <- t.ph_m +. (x -. t.ph_mean -. t.config.ph_delta);
  t.ph_min <- Stdlib.min t.ph_min t.ph_m;
  if
    t.armed && t.baseline <> None
    && t.ph_m -. t.ph_min > t.config.ph_lambda
  then
    fire t ~ts:label_ts ~window:t.next_window ~reason:"page_hinkley"
      ~value:(t.ph_m -. t.ph_min);
  if t.w_count >= t.config.window_events then close_window t

let advance t ~now =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt t.pending with
    | Some ((label_ts, _, _) as entry) when label_ts <= now ->
        ignore (Queue.pop t.pending);
        fold_labeled t entry;
        let _, _, l = entry in
        out := l :: !out
    | Some _ | None -> continue := false
  done;
  List.rev !out

let drain t =
  let out = ref [] in
  while not (Queue.is_empty t.pending) do
    let entry = Queue.pop t.pending in
    fold_labeled t entry;
    let _, _, l = entry in
    out := l :: !out
  done;
  if t.w_count > 0 then close_window t;
  List.rev !out

let poll_drift t =
  let d = t.pending_alarm in
  t.pending_alarm <- None;
  (match d with
  | Some alarm ->
      t.cooldown_until <-
        Stdlib.max t.cooldown_until
          (alarm.window + t.config.cooldown_windows)
  | None -> ());
  d

let force_drift_at t ~window =
  if window < 0 then invalid_arg "Monitor.force_drift_at: negative window";
  if not (List.mem window t.forced_windows) then
    t.forced_windows <- window :: t.forced_windows

let reset_ph t =
  t.ph_n <- 0;
  t.ph_mean <- 0.;
  t.ph_m <- 0.;
  t.ph_min <- 0.

let rebaseline t =
  reset_ph t;
  t.baseline_accs <- [];
  t.baseline <- None;
  t.armed <- true;
  t.pending_alarm <- None

let rearm t =
  reset_ph t;
  t.armed <- true;
  t.pending_alarm <- None

let windows t = List.rev t.rev_windows
let drifts t = List.rev t.rev_drifts
let baseline_accuracy t = t.baseline
