(** Time-ordered per-packet event source for the online serving loop.

    A compiled artifact classifies *partial* flowmarkers — per-flow
    histograms that grow one packet at a time (paper §5.1.1). This module
    turns a flow population ({!Homunculus_netdata.Flowsim} output or a
    {!Homunculus_netdata.Trace} loaded from disk) into the packet arrival
    sequence a switch would see: flows are staggered over a virtual-time
    window, their packets are merge-sorted into one timeline, and each
    packet carries the feature vector the data plane would have accumulated
    for its flow at that instant. Per-flow state lives in a fixed-capacity
    {!Homunculus_netdata.Flow_table}, so hash collisions evict markers
    mid-flow exactly as a register file would. Everything is driven by a
    seeded {!Homunculus_util.Rng} and packet timestamps — no wall clock. *)

type event = {
  ts : float;  (** absolute virtual arrival time, seconds *)
  flow_id : int;
  app : string;  (** generating application *)
  label : int;  (** delayed ground truth: 0 = benign, 1 = botnet *)
  packet_index : int;  (** 1-based position within the flow *)
  features : float array;
      (** the flow's partial flowmarker after this packet: normalized
          packet-length histogram concatenated with the normalized
          inter-arrival histogram, matching
          {!Homunculus_netdata.Botnet.flow_features} *)
}

type config = {
  bins : Homunculus_netdata.Botnet.bins;  (** flowmarker binning *)
  min_packets : int;
      (** emit events only from this packet index on; earlier packets still
          update flow state but produce no classification work (a deployment
          debounces near-empty markers) *)
  sram_bytes : int;
      (** flow-state register budget backing the {!Flow_table} *)
}

val default_config : config
(** [Fused] bins (30 features), [min_packets = 4], 64 KiB of flow state. *)

val n_features : config -> int

val events_scheduled :
  ?config:config -> (float * Homunculus_netdata.Flow.t) array -> event array
(** [(start_offset, flow)] pairs: each flow's packets are shifted by its
    start offset and all packets are merged into one ascending timeline
    (ties broken by flow id). Flow ids should be unique — the flow table and
    inter-arrival tracking key on them. *)

val events :
  Homunculus_util.Rng.t ->
  ?config:config ->
  ?start_window_s:float ->
  Homunculus_netdata.Flow.t array ->
  event array
(** Draw each flow's start offset uniformly from [\[0, start_window_s)]
    (default 600 s) and build the timeline. *)

val of_samples :
  ?app:string ->
  ?labels:int array ->
  ts:float array ->
  float array array ->
  event array
(** Wrap pre-built feature vectors (dataset rows, e.g.
    {!Homunculus_netdata.Nslkdd} / {!Homunculus_netdata.Iot} draws) as a
    packet timeline: event [i] arrives at [ts.(i)] carrying [xs.(i)]
    (not copied) with flow id [i] and ground truth [labels.(i)] (0 when
    omitted). Timestamps are taken as given — pass an ascending vector
    (e.g. from an open-loop arrival process) or {!Engine.run} will
    reject the result. @raise Invalid_argument on length mismatches. *)

val shift_botnet :
  ?size_scale:float ->
  ?gap_scale:float ->
  Homunculus_netdata.Flow.t array ->
  Homunculus_netdata.Flow.t array
(** Concept-drift injector: rewrite every botnet flow as if the botmaster
    changed the C&C protocol — packet sizes scaled by [size_scale]
    (default 6, small keepalives become mid-size messages) and timestamps
    by [gap_scale] (default 0.1, long command gaps shrink toward benign
    pacing). Benign flows and all labels are untouched, so the shifted
    population is still separable — just not where the old model learned
    the boundary. Sizes are clamped to [40, 1500] wire bytes. *)

val renumber : from:int -> Homunculus_netdata.Flow.t array -> Homunculus_netdata.Flow.t array
(** Fresh flow ids [from, from+1, ...] — use when concatenating populations
    into one trace so flow-state keys stay distinct. *)
