module Model_ir = Homunculus_backends.Model_ir
module Inference = Homunculus_backends.Inference
module Runtime = Homunculus_backends.Runtime
module Pipeline_sim = Homunculus_backends.Pipeline_sim
module Taurus = Homunculus_backends.Taurus
module Mlp = Homunculus_ml.Mlp

type mode = Reference | Quantized

type config = {
  queue_capacity : int;
  batch_size : int;
  service_rate_pps : float;
  mode : mode;
  entries_per_feature : int;
  trace_capacity : int;
}

let default_config =
  {
    queue_capacity = 64;
    batch_size = 32;
    service_rate_pps = 200.;
    mode = Reference;
    entries_per_feature = 64;
    trace_capacity = 0;
  }

let config_of_mapping ?service_rate_pps grid mapping =
  let sim = Pipeline_sim.config_of_mapping grid mapping in
  let rate =
    match service_rate_pps with
    | Some r -> r
    | None ->
        sim.Pipeline_sim.clock_ghz *. 1e9
        /. float_of_int sim.Pipeline_sim.ii_cycles
  in
  {
    default_config with
    queue_capacity = sim.Pipeline_sim.queue_capacity;
    service_rate_pps = rate;
  }

type swap = {
  swap_ts : float;
  swap_reason : string;
  queue_preserved : int;
  dropped_during_swap : int;
  incumbent_f1 : float;
  challenger_f1 : float;
}

type summary = {
  offered : int;
  served : int;
  dropped : int;
  swaps : swap list;
  drift_events : Monitor.drift list;
  windows : Monitor.window list;
  final_model : Model_ir.t;
  updater_decisions : Updater.decision list;
}

type trace = {
  n : int;
  arrivals : float array;
  completions : float array;
  verdicts : int array;
  epochs : int array;
  truths : int array;
  xs : float array array;
}

type reaction =
  | Keep
  | Install of {
      model : Model_ir.t;
      incumbent_f1 : float;
      challenger_f1 : float;
    }

type research_hook =
  now:float -> drift:Monitor.drift -> incumbent:Model_ir.t -> reaction

type t = {
  config : config;
  mutable model_ir : Model_ir.t;
  mutable runtime : Runtime.t option;  (* Some in Quantized mode *)
  mutable rt_ws : Runtime.workspace option;  (* paired with [runtime] *)
  mutable ref_mlp : Mlp.t option;  (* Some in Reference mode for DNN IRs *)
  monitor : Monitor.t;
  updater : Updater.t option;
  research : research_hook option;
  queue : Stream.event Queue.t;
  mutable srv : float;  (* virtual time the server is next free *)
  mutable offered : int;
  mutable served : int;
  mutable dropped : int;
  mutable rev_swaps : swap list;
  mutable epoch : int;  (* 0, +1 per installed hot-swap *)
  mutable rev_epoch_runtimes : Runtime.t list;  (* retired, newest first *)
  mutable rev_epoch_models : Model_ir.t list;  (* retired, newest first *)
  (* Preallocated drain workspaces: the steady-state batch loop pops into
     these instead of allocating per batch. [batch_x] holds pointers to the
     popped events' feature arrays, never copies. *)
  batch_ev : Stream.event array;
  batch_x : float array array;
  verdicts : int array;
  (* Preallocated trace ring (first [trace_capacity] served packets). *)
  trace_arrival : float array;
  trace_done : float array;
  trace_verdict : int array;
  trace_epoch : int array;
  trace_truth : int array;
  trace_x : float array array;
  mutable trace_len : int;
}

let dummy_event =
  {
    Stream.ts = 0.;
    flow_id = -1;
    app = "";
    label = 0;
    packet_index = 0;
    features = [||];
  }

let load_runtime config model =
  Runtime.load ~entries_per_feature:config.entries_per_feature model

let create ?(config = default_config) ~model ~monitor ?updater ?research () =
  if config.queue_capacity <= 0 then invalid_arg "Engine.create: queue_capacity <= 0";
  if config.batch_size <= 0 then invalid_arg "Engine.create: batch_size <= 0";
  if config.service_rate_pps <= 0. then
    invalid_arg "Engine.create: service_rate_pps <= 0";
  if config.trace_capacity < 0 then
    invalid_arg "Engine.create: trace_capacity < 0";
  let runtime =
    match config.mode with
    | Reference -> None
    | Quantized -> Some (load_runtime config model)
  in
  let ref_mlp =
    match config.mode with
    | Reference -> Inference.mlp_of_ir model
    | Quantized -> None
  in
  let cap = config.trace_capacity in
  {
    config;
    model_ir = model;
    runtime;
    rt_ws = Option.map Runtime.make_workspace runtime;
    ref_mlp;
    monitor;
    updater;
    research;
    queue = Queue.create ();
    srv = 0.;
    offered = 0;
    served = 0;
    dropped = 0;
    rev_swaps = [];
    epoch = 0;
    rev_epoch_runtimes = [];
    rev_epoch_models = [];
    batch_ev = Array.make config.batch_size dummy_event;
    batch_x = Array.make config.batch_size [||];
    verdicts = Array.make config.batch_size 0;
    trace_arrival = Array.make cap 0.;
    trace_done = Array.make cap 0.;
    trace_verdict = Array.make cap 0;
    trace_epoch = Array.make cap 0;
    trace_truth = Array.make cap 0;
    trace_x = Array.make cap [||];
    trace_len = 0;
  }

let model t = t.model_ir

let current_runtime t = t.runtime

let epoch t = t.epoch

let epoch_runtimes t =
  match t.runtime with
  | None -> [||]
  | Some rt -> Array.of_list (List.rev (rt :: t.rev_epoch_runtimes))

let epoch_models t = Array.of_list (List.rev (t.model_ir :: t.rev_epoch_models))

let trace t =
  {
    n = t.trace_len;
    arrivals = Array.sub t.trace_arrival 0 t.trace_len;
    completions = Array.sub t.trace_done 0 t.trace_len;
    verdicts = Array.sub t.trace_verdict 0 t.trace_len;
    epochs = Array.sub t.trace_epoch 0 t.trace_len;
    truths = Array.sub t.trace_truth 0 t.trace_len;
    xs = Array.sub t.trace_x 0 t.trace_len;
  }

(* Classify [batch_x.(0 .. k-1)] into [verdicts.(0 .. k-1)]. The quantized
   arm is the allocation-free hot path: encode + lookup on the per-engine
   runtime workspace, nothing touches the minor heap. The reference arm
   drains DNNs through [Mlp.logits_batch]'s fused batch GEMM (one product
   per layer instead of one matvec per sample) and the MAT families through
   the per-sample interpreter. *)
let classify_batch_into t k =
  match (t.runtime, t.rt_ws) with
  | Some rt, Some ws ->
      Runtime.classify_into rt ws ~src:t.batch_x ~n:k ~dst:t.verdicts
  | _ -> (
      match t.ref_mlp with
      | Some mlp ->
          let rows =
            if k = Array.length t.batch_x then t.batch_x
            else Array.sub t.batch_x 0 k
          in
          let preds = Mlp.predict_all mlp rows in
          Array.blit preds 0 t.verdicts 0 k
      | None ->
          for i = 0 to k - 1 do
            t.verdicts.(i) <- Inference.predict t.model_ir t.batch_x.(i)
          done)

(* Feed newly labeled events to the updater's example buffer. *)
let absorb_labeled t labeled =
  match t.updater with
  | None -> ()
  | Some u ->
      List.iter
        (fun l ->
          Updater.record u ~features:l.Monitor.lfeatures ~label:l.Monitor.ltruth)
        labeled

(* Drift reaction: retrain + validate; install the challenger between
   batches without touching the queue. Swap atomicity contract: the epoch
   counter, the classifier reference, and (in quantized mode) the rebuilt
   runtime + workspace all change together, strictly between batches — a
   batch already popped into the drain workspaces always completes against
   the tables it started with, and every packet it serves is stamped with
   the pre-swap epoch. *)
(* Install a validated challenger between batches: retire the serving
   model/runtime to the epoch stacks, rebuild the quantized tables when
   needed, stamp a swap record, and re-baseline the monitor. The queue is
   untouched. *)
let install t ~now ~reason ~incumbent_f1 ~challenger_f1 challenger =
  let drops_before = t.dropped in
  let queue_len = Queue.length t.queue in
  t.rev_epoch_models <- t.model_ir :: t.rev_epoch_models;
  t.model_ir <- challenger;
  (match t.config.mode with
  | Reference -> t.ref_mlp <- Inference.mlp_of_ir challenger
  | Quantized ->
      (match t.runtime with
      | Some rt -> t.rev_epoch_runtimes <- rt :: t.rev_epoch_runtimes
      | None -> ());
      let rt =
        match t.updater with
        | Some u ->
            let calibration = Updater.calibration_sample u ~n:256 in
            Runtime.load ~entries_per_feature:t.config.entries_per_feature
              ~calibration challenger
        | None ->
            Runtime.load ~entries_per_feature:t.config.entries_per_feature
              challenger
      in
      t.runtime <- Some rt;
      t.rt_ws <- Some (Runtime.make_workspace rt));
  t.epoch <- t.epoch + 1;
  t.rev_swaps <-
    {
      swap_ts = now;
      swap_reason = reason;
      queue_preserved = queue_len;
      dropped_during_swap = t.dropped - drops_before;
      incumbent_f1;
      challenger_f1;
    }
    :: t.rev_swaps;
  Monitor.rebaseline t.monitor

let maybe_swap t ~now =
  match Monitor.poll_drift t.monitor with
  | None -> ()
  | Some drift -> (
      match (t.research, t.updater) with
      | Some hook, _ -> (
          (* Autopilot: the re-search hook owns the reaction. The incumbent
             keeps serving for as long as the hook runs; a [Keep] leaves it
             installed and just re-arms the detectors — the serving path is
             never worse off than before the drift. *)
          match hook ~now ~drift ~incumbent:t.model_ir with
          | Keep -> Monitor.rearm t.monitor
          | Install { model; incumbent_f1; challenger_f1 } ->
              install t ~now ~reason:drift.Monitor.reason ~incumbent_f1
                ~challenger_f1 model)
      | None, None -> ()  (* monitoring only: the alarm stays latched/logged *)
      | None, Some u -> (
          match
            Updater.try_update u ~incumbent:t.model_ir ~ts:now
              ~reason:drift.Monitor.reason
          with
          | None -> Monitor.rearm t.monitor
          | Some challenger ->
              let last_decision =
                match List.rev (Updater.decisions u) with
                | d :: _ -> d
                | [] -> assert false
              in
              install t ~now ~reason:drift.Monitor.reason
                ~incumbent_f1:last_decision.Updater.incumbent_f1
                ~challenger_f1:last_decision.Updater.challenger_f1 challenger))

(* Serve one batch of up to [batch_size] queued packets, advancing virtual
   time by one service slot per packet. *)
let serve_one_batch t =
  let k = Stdlib.min t.config.batch_size (Queue.length t.queue) in
  for i = 0 to k - 1 do
    let e = Queue.pop t.queue in
    t.batch_ev.(i) <- e;
    t.batch_x.(i) <- e.Stream.features
  done;
  classify_batch_into t k;
  let slot = 1. /. t.config.service_rate_pps in
  let depth = Queue.length t.queue in
  let cap = Array.length t.trace_arrival in
  for i = 0 to k - 1 do
    let e = t.batch_ev.(i) in
    let done_ts = t.srv +. (float_of_int (i + 1) *. slot) in
    Monitor.observe t.monitor ~ts:done_ts ~queue_depth:depth
      ~features:e.Stream.features ~pred:t.verdicts.(i) ~truth:e.Stream.label;
    if t.trace_len < cap then begin
      let j = t.trace_len in
      t.trace_arrival.(j) <- e.Stream.ts;
      t.trace_done.(j) <- done_ts;
      t.trace_verdict.(j) <- t.verdicts.(i);
      t.trace_epoch.(j) <- t.epoch;
      t.trace_truth.(j) <- e.Stream.label;
      t.trace_x.(j) <- e.Stream.features;
      t.trace_len <- j + 1
    end
  done;
  t.srv <- t.srv +. (float_of_int k *. slot);
  t.served <- t.served + k;
  let labeled = Monitor.advance t.monitor ~now:t.srv in
  absorb_labeled t labeled;
  maybe_swap t ~now:t.srv;
  k

(* Serve whatever the service rate allows before virtual time [now]. *)
let drain_until t ~now =
  let budget =
    int_of_float ((now -. t.srv) *. t.config.service_rate_pps)
  in
  let budget = ref (Stdlib.max 0 budget) in
  let continue = ref true in
  while !continue && !budget > 0 && not (Queue.is_empty t.queue) do
    let saved_batch = Stdlib.min t.config.batch_size !budget in
    if saved_batch < t.config.batch_size && Queue.length t.queue > saved_batch
    then begin
      (* Not enough service slots before [now] for a full batch on a deep
         queue — stop and let the next arrival re-open the budget. *)
      continue := false
    end
    else begin
      let k = serve_one_batch t in
      budget := !budget - k
    end
  done;
  (* An idle server does not bank service slots. *)
  if Queue.is_empty t.queue && t.srv < now then t.srv <- now

let drain_all t =
  while not (Queue.is_empty t.queue) do
    ignore (serve_one_batch t)
  done

let offer t (e : Stream.event) =
  t.offered <- t.offered + 1;
  if Queue.length t.queue >= t.config.queue_capacity then
    t.dropped <- t.dropped + 1
  else Queue.add e t.queue

let step t (e : Stream.event) =
  drain_until t ~now:e.Stream.ts;
  let labeled = Monitor.advance t.monitor ~now:e.Stream.ts in
  absorb_labeled t labeled;
  maybe_swap t ~now:e.Stream.ts;
  offer t e

let finish t =
  drain_all t;
  let labeled = Monitor.drain t.monitor in
  absorb_labeled t labeled;
  {
    offered = t.offered;
    served = t.served;
    dropped = t.dropped;
    swaps = List.rev t.rev_swaps;
    drift_events = Monitor.drifts t.monitor;
    windows = Monitor.windows t.monitor;
    final_model = t.model_ir;
    updater_decisions =
      (match t.updater with None -> [] | Some u -> Updater.decisions u);
  }

let run t events =
  let last_ts = ref neg_infinity in
  Array.iter
    (fun (e : Stream.event) ->
      if e.Stream.ts < !last_ts then
        invalid_arg "Engine.run: events out of order";
      last_ts := e.Stream.ts;
      step t e)
    events;
  finish t
