module Model_ir = Homunculus_backends.Model_ir
module Inference = Homunculus_backends.Inference
module Runtime = Homunculus_backends.Runtime
module Pipeline_sim = Homunculus_backends.Pipeline_sim
module Taurus = Homunculus_backends.Taurus

type mode = Reference | Quantized

type config = {
  queue_capacity : int;
  batch_size : int;
  service_rate_pps : float;
  mode : mode;
  entries_per_feature : int;
}

let default_config =
  {
    queue_capacity = 64;
    batch_size = 32;
    service_rate_pps = 200.;
    mode = Reference;
    entries_per_feature = 64;
  }

let config_of_mapping ?service_rate_pps grid mapping =
  let sim = Pipeline_sim.config_of_mapping grid mapping in
  let rate =
    match service_rate_pps with
    | Some r -> r
    | None ->
        sim.Pipeline_sim.clock_ghz *. 1e9
        /. float_of_int sim.Pipeline_sim.ii_cycles
  in
  {
    default_config with
    queue_capacity = sim.Pipeline_sim.queue_capacity;
    service_rate_pps = rate;
  }

type swap = {
  swap_ts : float;
  swap_reason : string;
  queue_preserved : int;
  dropped_during_swap : int;
  incumbent_f1 : float;
  challenger_f1 : float;
}

type summary = {
  offered : int;
  served : int;
  dropped : int;
  swaps : swap list;
  drift_events : Monitor.drift list;
  windows : Monitor.window list;
  final_model : Model_ir.t;
  updater_decisions : Updater.decision list;
}

type t = {
  config : config;
  mutable model_ir : Model_ir.t;
  mutable runtime : Runtime.t option;  (* Some in Quantized mode *)
  monitor : Monitor.t;
  updater : Updater.t option;
  queue : Stream.event Queue.t;
  mutable srv : float;  (* virtual time the server is next free *)
  mutable offered : int;
  mutable served : int;
  mutable dropped : int;
  mutable rev_swaps : swap list;
}

let load_runtime config model =
  Runtime.load ~entries_per_feature:config.entries_per_feature model

let create ?(config = default_config) ~model ~monitor ?updater () =
  if config.queue_capacity <= 0 then invalid_arg "Engine.create: queue_capacity <= 0";
  if config.batch_size <= 0 then invalid_arg "Engine.create: batch_size <= 0";
  if config.service_rate_pps <= 0. then
    invalid_arg "Engine.create: service_rate_pps <= 0";
  let runtime =
    match config.mode with
    | Reference -> None
    | Quantized -> Some (load_runtime config model)
  in
  {
    config;
    model_ir = model;
    runtime;
    monitor;
    updater;
    queue = Queue.create ();
    srv = 0.;
    offered = 0;
    served = 0;
    dropped = 0;
    rev_swaps = [];
  }

let model t = t.model_ir

let classify_batch t xs =
  match t.runtime with
  | Some rt -> Runtime.classify_all rt xs
  | None -> Inference.predict_all t.model_ir xs

(* Feed newly labeled events to the updater's example buffer. *)
let absorb_labeled t labeled =
  match t.updater with
  | None -> ()
  | Some u ->
      List.iter
        (fun l ->
          Updater.record u ~features:l.Monitor.lfeatures ~label:l.Monitor.ltruth)
        labeled

(* Drift reaction: retrain + validate; install the challenger between
   batches without touching the queue. *)
let maybe_swap t ~now =
  match Monitor.poll_drift t.monitor with
  | None -> ()
  | Some drift -> (
      match t.updater with
      | None -> ()  (* monitoring only: the alarm stays latched/logged *)
      | Some u -> (
          let drops_before = t.dropped in
          let queue_len = Queue.length t.queue in
          match
            Updater.try_update u ~incumbent:t.model_ir ~ts:now
              ~reason:drift.Monitor.reason
          with
          | None -> Monitor.rearm t.monitor
          | Some challenger ->
              t.model_ir <- challenger;
              (match t.config.mode with
              | Reference -> ()
              | Quantized ->
                  let calibration = Updater.calibration_sample u ~n:256 in
                  t.runtime <-
                    Some
                      (Runtime.load
                         ~entries_per_feature:t.config.entries_per_feature
                         ~calibration challenger));
              let last_decision =
                match List.rev (Updater.decisions u) with
                | d :: _ -> d
                | [] -> assert false
              in
              t.rev_swaps <-
                {
                  swap_ts = now;
                  swap_reason = drift.Monitor.reason;
                  queue_preserved = queue_len;
                  dropped_during_swap = t.dropped - drops_before;
                  incumbent_f1 = last_decision.Updater.incumbent_f1;
                  challenger_f1 = last_decision.Updater.challenger_f1;
                }
                :: t.rev_swaps;
              Monitor.rebaseline t.monitor))

(* Serve one batch of up to [batch_size] queued packets, advancing virtual
   time by one service slot per packet. *)
let serve_one_batch t =
  let k = Stdlib.min t.config.batch_size (Queue.length t.queue) in
  let batch = Array.init k (fun _ -> Queue.pop t.queue) in
  let verdicts = classify_batch t (Array.map (fun e -> e.Stream.features) batch) in
  let slot = 1. /. t.config.service_rate_pps in
  Array.iteri
    (fun i e ->
      let done_ts = t.srv +. (float_of_int (i + 1) *. slot) in
      Monitor.observe t.monitor ~ts:done_ts ~queue_depth:(Queue.length t.queue)
        ~features:e.Stream.features ~pred:verdicts.(i) ~truth:e.Stream.label)
    batch;
  t.srv <- t.srv +. (float_of_int k *. slot);
  t.served <- t.served + k;
  let labeled = Monitor.advance t.monitor ~now:t.srv in
  absorb_labeled t labeled;
  maybe_swap t ~now:t.srv;
  k

(* Serve whatever the service rate allows before virtual time [now]. *)
let drain_until t ~now =
  let budget =
    int_of_float ((now -. t.srv) *. t.config.service_rate_pps)
  in
  let budget = ref (Stdlib.max 0 budget) in
  let continue = ref true in
  while !continue && !budget > 0 && not (Queue.is_empty t.queue) do
    let saved_batch = Stdlib.min t.config.batch_size !budget in
    if saved_batch < t.config.batch_size && Queue.length t.queue > saved_batch
    then begin
      (* Not enough service slots before [now] for a full batch on a deep
         queue — stop and let the next arrival re-open the budget. *)
      continue := false
    end
    else begin
      let k = serve_one_batch t in
      budget := !budget - k
    end
  done;
  (* An idle server does not bank service slots. *)
  if Queue.is_empty t.queue && t.srv < now then t.srv <- now

let drain_all t =
  while not (Queue.is_empty t.queue) do
    ignore (serve_one_batch t)
  done

let run t events =
  let last_ts = ref neg_infinity in
  Array.iter
    (fun (e : Stream.event) ->
      if e.Stream.ts < !last_ts then
        invalid_arg "Engine.run: events out of order";
      last_ts := e.Stream.ts;
      drain_until t ~now:e.Stream.ts;
      let labeled = Monitor.advance t.monitor ~now:e.Stream.ts in
      absorb_labeled t labeled;
      maybe_swap t ~now:e.Stream.ts;
      t.offered <- t.offered + 1;
      if Queue.length t.queue >= t.config.queue_capacity then
        t.dropped <- t.dropped + 1
      else Queue.add e t.queue)
    events;
  drain_all t;
  let labeled = Monitor.drain t.monitor in
  absorb_labeled t labeled;
  {
    offered = t.offered;
    served = t.served;
    dropped = t.dropped;
    swaps = List.rev t.rev_swaps;
    drift_events = Monitor.drifts t.monitor;
    windows = Monitor.windows t.monitor;
    final_model = t.model_ir;
    updater_decisions =
      (match t.updater with None -> [] | Some u -> Updater.decisions u);
  }
