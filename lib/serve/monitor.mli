(** Online health monitoring for a serving pipeline.

    Verdicts stream in at classification time, but ground truth arrives
    late — in deployment, from an out-of-band labeling pipeline (honeypots,
    offline DPI); here, after a configurable virtual-time delay. The
    monitor buffers each served event until its label lands, folds labeled
    events into tumbling evaluation windows (accuracy, F1, confusion
    counts, throughput, queue depth), and runs two drift detectors over the
    labeled error stream:

    - {b windowed accuracy drop}: a completed window's accuracy falls more
      than [acc_drop] below the baseline established over the first
      [baseline_windows] windows after (re)start;
    - {b Page–Hinkley}: the classic sequential test on the per-event error
      indicator — cumulative deviation from the running mean exceeding
      [ph_lambda] signals a sustained upward shift in error rate.

    A fired alarm latches: no further alarms until {!rebaseline} (after a
    successful hot-swap) or {!rearm} (after a declined update) — the
    serving engine, not the detector, owns the reaction policy. On top of
    the latch, [cooldown_windows] adds hysteresis: once an alarm has been
    {e consumed} through {!poll_drift}, no new alarm may fire for a window
    whose index is within [cooldown_windows] of the consumed alarm's, even
    after a re-arm — the reaction gets that long to show up in the metrics
    before the detector may demand another one. *)

type config = {
  window_events : int;  (** labeled events per evaluation window *)
  label_delay_s : float;  (** virtual-time lag of ground truth *)
  baseline_windows : int;  (** windows averaged into the drift baseline *)
  acc_drop : float;  (** accuracy-drop alarm threshold *)
  ph_delta : float;  (** Page–Hinkley insensitivity margin *)
  ph_lambda : float;  (** Page–Hinkley alarm threshold *)
  cooldown_windows : int;
      (** alarm hysteresis: after an alarm is consumed via {!poll_drift},
          no alarm fires for a window within this many windows of it *)
}

val default_config : config
(** 250-event windows, 5 s label delay, 3 baseline windows, 0.15 accuracy
    drop, PH delta 0.005 / lambda 25, no cooldown. *)

type window = {
  index : int;  (** 0-based, over the whole run *)
  t_start : float;
  t_end : float;  (** label-arrival times of first/last member event *)
  events : int;
  accuracy : float;
  f1 : float;  (** binary F1 (positive class 1) for 2 classes, else macro *)
  confusion : int array array;  (** [confusion.(truth).(pred)] *)
  throughput_eps : float;  (** labeled events per virtual second; 0 for an
                               instantaneous window *)
  mean_queue_depth : float;
  max_queue_depth : int;
}

type drift = {
  ts : float;  (** label-arrival time of the triggering event *)
  window : int;  (** index of the window being filled when it fired *)
  reason : string;
      (** ["accuracy_drop"], ["page_hinkley"], or ["injected"] (a forced
          alarm registered by {!force_drift_at}) *)
  value : float;  (** the statistic that crossed its threshold *)
}

type labeled = {
  lts : float;  (** when the label arrived *)
  lfeatures : float array;
  lpred : int;
  ltruth : int;
}

type t

val create : ?config:config -> n_classes:int -> unit -> t
(** @raise Invalid_argument on non-positive [window_events], [n_classes],
    or negative [label_delay_s]. *)

val observe :
  t -> ts:float -> queue_depth:int -> features:float array -> pred:int ->
  truth:int -> unit
(** Record one served packet; its label becomes visible at
    [ts + label_delay_s]. *)

val advance : t -> now:float -> labeled list
(** Release every buffered event whose label has arrived by [now], folding
    each into the current window and the drift detectors. Returns the newly
    labeled events in arrival order — the engine feeds them to the updater's
    example buffer. *)

val drain : t -> labeled list
(** End of stream: release everything still pending and close the current
    partial window if non-empty. *)

val poll_drift : t -> drift option
(** The alarm raised since the last poll, if any. Reading clears the
    pending alarm but keeps the detector latched — and starts the
    [cooldown_windows] hysteresis clock from the consumed alarm's
    window. *)

val force_drift_at : t -> window:int -> unit
(** Register a forced alarm: when the window with this index closes, an
    alarm with reason ["injected"] fires regardless of the baseline — but
    still subject to the latch and the cooldown, exactly like an organic
    one. This is how a [drift@W] fault-injection entry reaches the
    detector (the serving layer knows nothing of fault plans).
    @raise Invalid_argument on a negative window. *)

val rebaseline : t -> unit
(** Forget baseline and detector state and re-arm — call after a hot-swap
    installs a new model. *)

val rearm : t -> unit
(** Re-arm the detectors without resetting the baseline — call when an
    update attempt was declined and the incumbent keeps serving. *)

val windows : t -> window list
(** Completed windows, oldest first. *)

val drifts : t -> drift list
(** Every alarm fired over the run, oldest first. *)

val baseline_accuracy : t -> float option
(** The current drift baseline, once established. *)
