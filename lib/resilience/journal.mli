(** Crash-safe search journal: an append-only JSONL write-ahead log of
    evaluation outcomes, and the replay cache that turns it back into a
    deterministic resume.

    Each line is [{"sum": "<fnv1a64 hex>", "rec": {...}}] where the checksum
    covers the compact rendering of the record object. Appends are fsync'd
    under a mutex, so a crash leaves at worst one truncated final line —
    which the loader detects (parse failure or checksum mismatch) and drops.

    Resume does not trust the journal's ordering: the optimizer is re-driven
    with its original seed, and each proposal it re-derives is looked up by
    (scope, canonical configuration key). Cache hits return the recorded
    evaluation without re-running training, so the rebuilt
    {!Homunculus_bo.History.t} is bit-for-bit the one an uninterrupted
    search would have produced. *)

module Json = Homunculus_util.Json
module Bo = Homunculus_bo

type failure = { failure_class : string; message : string; retries : int }
(** Terminal failure annotation: classification code ([divergence],
    [backend], [budget]), human-readable message, and how many retries were
    burned before giving up. *)

type kind = Exact | Predicted | Lease | Release
(** How the record came to be. [Exact] ran the full train/lower/estimate
    pipeline; [Predicted] is a cost-model predicted-infeasible skip; both
    are evaluations and enter the replay table. [Lease] and [Release] are
    distributed-coordination records (a candidate handed to a worker, and
    the coordinator observing its completion): they share the WAL format
    but never enter the replay table. Journals written before this field
    existed omit the member and parse as [Exact] — back-compatible both
    ways, since the loader's checksum covers the raw line, not the
    re-serialized record. *)

val is_evaluation : kind -> bool
(** [true] for [Exact] and [Predicted] — the kinds that replay. *)

type record = {
  scope : string;  (** search scope, e.g. ["spec-name/dnn"] *)
  index : int;  (** proposal-order candidate index within the scope *)
  config : Bo.Config.t;
  objective : float;
  feasible : bool;
  pruned : bool;
  metadata : (string * float) list;
  failure : failure option;
  kind : kind;
}

val record_to_json : record -> Json.t
val record_of_json : Json.t -> record
(** @raise Invalid_argument on malformed documents. *)

val line_of_record : record -> string
(** One checksummed JSONL line (no trailing newline). *)

val record_of_line : string -> record option
(** [None] for corrupt, truncated, or checksum-mismatched lines. *)

(** {1 Append handle} *)

type t

val open_ : ?fsync_every:int -> string -> t
(** Open (creating if absent) for fsync'd appends at end of file.

    [fsync_every] (default 1) batches fsyncs: the handle syncs once per that
    many appends instead of after every record (group commit), plus on
    {!sync} and {!close}. Bounded-loss durability contract: every line is
    still written whole, so a crash loses at most the last [fsync_every - 1]
    unsynced records and one torn tail line — replay drops the torn line via
    its checksum and simply re-evaluates anything missing.
    @raise Invalid_argument when [fsync_every < 1]. *)

val append : t -> record -> int
(** Write one record (durable immediately at [fsync_every = 1], durable by
    the next group commit otherwise); returns the handle-local record count
    (lines inherited from a previous run are not counted — kill thresholds
    measure the current run's progress). Thread-safe. *)

val sync : t -> unit
(** Flush any unsynced group-committed appends to disk now. *)

val appended : t -> int
val path : t -> string

val close : t -> unit
(** Flush pending appends, then close the descriptor. *)

(** {1 Replay cache} *)

type replay

val load : string -> replay
(** Read a journal file (missing file = empty cache), dropping invalid
    lines. Later records for the same (scope, config) supersede earlier
    ones; lease/release records are skipped. *)

val read : string -> record list * replay
(** Both views of a journal from a single streaming pass over the file: the
    raw valid records in file order (all kinds, duplicates preserved) and
    the replay table {!load} would have built. Callers that need both — the
    coordinator merge does, per surrogate refit — avoid reading and
    re-checksumming the file twice. *)

val find : replay -> scope:string -> config:Bo.Config.t -> record option
val loaded : replay -> int
(** Evaluation records absorbed (lease/release records do not count). *)

val dropped : replay -> int

val merge : replay list -> replay
(** Deterministic union: on key conflicts, tables later in the list win
    (the cross-file analogue of later-record-wins). [loaded]/[dropped]
    counters are summed. *)

val records : string -> record list
(** All valid evaluation records in a journal file after later-record-wins
    dedup, sorted by (scope, index) — for inspection and tests. *)

(** {1 Incremental tail reader}

    The coordinator re-reads every worker journal once per poll; a [reader]
    makes that O(new bytes) instead of O(file) by remembering its offset. A
    partial trailing line stays buffered until its newline arrives. *)

type reader

val reader : string -> reader
(** A reader positioned at the start of [path]; the file need not exist yet
    (polls return nothing until it does). *)

val poll : reader -> record list
(** Complete, valid records appended since the previous poll, in file
    order. Invalid complete lines are counted and skipped. *)

val reader_path : reader -> string
val reader_dropped : reader -> int
