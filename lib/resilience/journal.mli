(** Crash-safe search journal: an append-only JSONL write-ahead log of
    evaluation outcomes, and the replay cache that turns it back into a
    deterministic resume.

    Each line is [{"sum": "<fnv1a64 hex>", "rec": {...}}] where the checksum
    covers the compact rendering of the record object. Appends are fsync'd
    under a mutex, so a crash leaves at worst one truncated final line —
    which the loader detects (parse failure or checksum mismatch) and drops.

    Resume does not trust the journal's ordering: the optimizer is re-driven
    with its original seed, and each proposal it re-derives is looked up by
    (scope, canonical configuration key). Cache hits return the recorded
    evaluation without re-running training, so the rebuilt
    {!Homunculus_bo.History.t} is bit-for-bit the one an uninterrupted
    search would have produced. *)

module Json = Homunculus_util.Json
module Bo = Homunculus_bo

type failure = { failure_class : string; message : string; retries : int }
(** Terminal failure annotation: classification code ([divergence],
    [backend], [budget]), human-readable message, and how many retries were
    burned before giving up. *)

type kind = Exact | Predicted
(** How the recorded evaluation was obtained: [Exact] ran the full
    train/lower/estimate pipeline; [Predicted] is a cost-model
    predicted-infeasible skip. Journals written before this field existed
    omit the member and parse as [Exact] — back-compatible both ways, since
    the loader's checksum covers the raw line, not the re-serialized
    record. *)

type record = {
  scope : string;  (** search scope, e.g. ["spec-name/dnn"] *)
  index : int;  (** proposal-order candidate index within the scope *)
  config : Bo.Config.t;
  objective : float;
  feasible : bool;
  pruned : bool;
  metadata : (string * float) list;
  failure : failure option;
  kind : kind;
}

val record_to_json : record -> Json.t
val record_of_json : Json.t -> record
(** @raise Invalid_argument on malformed documents. *)

val line_of_record : record -> string
(** One checksummed JSONL line (no trailing newline). *)

val record_of_line : string -> record option
(** [None] for corrupt, truncated, or checksum-mismatched lines. *)

(** {1 Append handle} *)

type t

val open_ : string -> t
(** Open (creating if absent) for fsync'd appends at end of file. *)

val append : t -> record -> int
(** Write one record durably; returns the handle-local record count (lines
    inherited from a previous run are not counted — kill thresholds measure
    the current run's progress). Thread-safe. *)

val appended : t -> int
val path : t -> string
val close : t -> unit

(** {1 Replay cache} *)

type replay

val load : string -> replay
(** Read a journal file (missing file = empty cache), dropping invalid
    lines. Later records for the same (scope, config) supersede earlier
    ones. *)

val find : replay -> scope:string -> config:Bo.Config.t -> record option
val loaded : replay -> int
val dropped : replay -> int

val records : string -> record list
(** All valid records in a journal file, sorted by (scope, index) — for
    inspection and tests. *)
