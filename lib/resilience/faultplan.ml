(* Deterministic fault plans for the evaluation supervisor.

   A plan is a fixed list of faults addressed by the optimizer's proposal
   index (candidate 0 is the first proposal, in proposal order — the same
   order at any worker count), so an injected failure fires at the same
   point of the search wherever the candidate happens to execute. All
   queries are pure functions of (plan, index, attempt); the plan carries no
   mutable state, which is what makes fault-injection runs reproducible and
   lets the same plan drive both arms of an A/B comparison. *)

exception Injected of string
(** A simulated backend/trainer exception, raised by the supervisor on
    behalf of a [Raise_on] fault. *)

exception Killed of int
(** A simulated process crash: raised once the journal has absorbed the
    configured number of records. The payload is that record count. *)

type fault =
  | Raise_on of { index : int; attempts : int }
      (** raise {!Injected} for candidate [index]'s first [attempts]
          attempts; [max_int] means every attempt (a hard failure that ends
          in quarantine), [1] a transient failure the first retry clears *)
  | Nan_loss_on of { index : int; epoch : int }
      (** make candidate [index]'s training loss read as NaN at [epoch],
          triggering the supervisor's divergence detection *)
  | Timeout_on of { index : int }
      (** candidate [index] exhausts its wall-clock budget immediately *)
  | Infeasible_on of { index : int; objective : float; pruned : bool }
      (** candidate [index] evaluates to a plain infeasible result without
          any failure machinery — the control arm for "the final best model
          matches the run where those candidates were merely infeasible" *)
  | Kill_after of { records : int }
      (** crash the search (raise {!Killed}) once the journal holds
          [records] records *)
  | Drift_on of { window : int }
      (** force the serving monitor's drift detector to fire when
          evaluation window [window] closes — the autopilot's trigger path,
          exercised without having to degrade the traffic *)
  | Research_timeout_on of { generation : int }
      (** make re-search [generation] exhaust its wall-clock budget before
          evaluating anything, deterministically driving the autopilot's
          graceful-degradation branch *)

type t = fault list

let create faults = faults
let faults t = t

let fault_to_string = function
  | Raise_on { index; attempts } when attempts = max_int ->
      Printf.sprintf "raise@%d" index
  | Raise_on { index; attempts } -> Printf.sprintf "raise@%d:%d" index attempts
  | Nan_loss_on { index; epoch } -> Printf.sprintf "nan@%d:%d" index epoch
  | Timeout_on { index } -> Printf.sprintf "timeout@%d" index
  | Infeasible_on { index; objective = 0.; pruned = false } ->
      Printf.sprintf "infeasible@%d" index
  | Infeasible_on { index; objective; pruned } ->
      Printf.sprintf "infeasible@%d:%h%s" index objective
        (if pruned then ":pruned" else "")
  | Kill_after { records } -> Printf.sprintf "kill@%d" records
  | Drift_on { window } -> Printf.sprintf "drift@%d" window
  | Research_timeout_on { generation } ->
      Printf.sprintf "research-timeout@%d" generation

let to_string t = String.concat "," (List.map fault_to_string t)

let fault_of_string text =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "Faultplan.of_string: %S (expected raise@K[:N], nan@K:E, timeout@K, \
          infeasible@K[:OBJ[:pruned]], drift@W, research-timeout@G, or \
          kill@N)"
         text)
  in
  let int_of s = match int_of_string_opt s with Some v -> v | None -> fail () in
  match String.index_opt text '@' with
  | None -> fail ()
  | Some at -> (
      let kind = String.sub text 0 at in
      let rest = String.sub text (at + 1) (String.length text - at - 1) in
      let parts = String.split_on_char ':' rest in
      match (kind, parts) with
      | "raise", [ k ] -> Raise_on { index = int_of k; attempts = max_int }
      | "raise", [ k; n ] -> Raise_on { index = int_of k; attempts = int_of n }
      | "nan", [ k; e ] -> Nan_loss_on { index = int_of k; epoch = int_of e }
      | "timeout", [ k ] -> Timeout_on { index = int_of k }
      | "infeasible", [ k ] ->
          Infeasible_on { index = int_of k; objective = 0.; pruned = false }
      | "infeasible", [ k; obj ] ->
          let objective =
            match float_of_string_opt obj with Some v -> v | None -> fail ()
          in
          Infeasible_on { index = int_of k; objective; pruned = false }
      | "infeasible", [ k; obj; "pruned" ] ->
          let objective =
            match float_of_string_opt obj with Some v -> v | None -> fail ()
          in
          Infeasible_on { index = int_of k; objective; pruned = true }
      | "kill", [ n ] -> Kill_after { records = int_of n }
      | "drift", [ w ] -> Drift_on { window = int_of w }
      | "research-timeout", [ g ] ->
          Research_timeout_on { generation = int_of g }
      | _ -> fail ())

let of_string text =
  match String.trim text with
  | "" -> []
  | text ->
      List.map
        (fun part -> fault_of_string (String.trim part))
        (String.split_on_char ',' text)

(* Supervisor-facing queries. *)

let check_raise t ~index ~attempt =
  List.iter
    (function
      | Raise_on { index = i; attempts } when i = index && attempt < attempts ->
          raise
            (Injected
               (Printf.sprintf "injected failure for candidate %d (attempt %d)"
                  index attempt))
      | _ -> ())
    t

let nan_epoch_at t ~index =
  List.find_map
    (function
      | Nan_loss_on { index = i; epoch } when i = index -> Some epoch
      | _ -> None)
    t

let timeout_at t ~index =
  List.exists (function Timeout_on { index = i } -> i = index | _ -> false) t

let infeasible_at t ~index =
  List.find_map
    (function
      | Infeasible_on { index = i; objective; pruned } when i = index ->
          Some (objective, pruned)
      | _ -> None)
    t

let check_kill t ~records =
  List.iter
    (function
      | Kill_after { records = n } when records >= n -> raise (Killed records)
      | _ -> ())
    t

let drift_windows t =
  List.filter_map (function Drift_on { window } -> Some window | _ -> None) t

let research_timeout_at t ~generation =
  List.exists
    (function
      | Research_timeout_on { generation = g } -> g = generation
      | _ -> false)
    t
