(** Deterministic fault plans for exercising the evaluation supervisor.

    A plan is a fixed list of faults addressed by the optimizer's proposal
    index — candidate 0 is the first proposal drawn, in proposal order, the
    same order at any worker count — so an injected failure fires at the
    same point of the search wherever the candidate happens to execute.
    Queries are pure functions of (plan, index, attempt): the plan carries
    no mutable state, which keeps fault-injection runs reproducible and lets
    one plan drive both arms of an A/B comparison. *)

exception Injected of string
(** A simulated backend/trainer exception, raised on behalf of a
    [Raise_on] fault. *)

exception Killed of int
(** A simulated process crash, raised once the journal has absorbed the
    configured number of records. The payload is that record count. *)

type fault =
  | Raise_on of { index : int; attempts : int }
      (** Raise {!Injected} for candidate [index]'s first [attempts]
          attempts. [max_int] means every attempt (a hard failure that ends
          quarantined); [1] is a transient failure one retry clears. *)
  | Nan_loss_on of { index : int; epoch : int }
      (** Candidate [index]'s training loss reads as NaN at [epoch],
          triggering the supervisor's divergence detection. *)
  | Timeout_on of { index : int }
      (** Candidate [index] exhausts its wall-clock budget immediately. *)
  | Infeasible_on of { index : int; objective : float; pruned : bool }
      (** Candidate [index] evaluates to a plain infeasible result with no
          failure machinery involved — the control arm for asserting that a
          failure-laden search matches a merely-infeasible one. *)
  | Kill_after of { records : int }
      (** Crash the search (raise {!Killed}) once the journal holds
          [records] records. *)
  | Drift_on of { window : int }
      (** Force the serving monitor's drift detector to fire when
          evaluation window [window] closes (the autopilot trigger path) —
          applied by the serving driver via
          [Homunculus_serve.Monitor.force_drift_at]. *)
  | Research_timeout_on of { generation : int }
      (** Make autopilot re-search [generation] (0-based, the [NNN] of its
          [research-NNN.jsonl] journal) exhaust its wall-clock budget before
          evaluating a single candidate, driving the
          incumbent-keeps-serving degradation branch deterministically.
          Applies on every attempt of that generation — an unfinished
          generation is retried on the next alarm, so the fault keeps
          holding it back until the plan changes. *)

type t

val create : fault list -> t
val faults : t -> fault list

val to_string : t -> string
(** Compact text form, e.g. ["raise@3,nan@5:2,timeout@7,kill@4"]. *)

val of_string : string -> t
(** Parse the [--faults] grammar: comma-separated [raise@K[:N]], [nan@K:E],
    [timeout@K], [infeasible@K[:OBJ[:pruned]]], [drift@W],
    [research-timeout@G], [kill@N]. The empty string is the empty plan.
    @raise Invalid_argument on malformed input. *)

val check_raise : t -> index:int -> attempt:int -> unit
(** @raise Injected when a [Raise_on] fault targets this candidate and
    [attempt] (0-based) is below its attempt count. *)

val nan_epoch_at : t -> index:int -> int option
(** The epoch at which this candidate's loss should turn NaN, if any. *)

val timeout_at : t -> index:int -> bool
(** Whether this candidate should exhaust its budget immediately. *)

val infeasible_at : t -> index:int -> (float * bool) option
(** The [(objective, pruned)] of a forced plain-infeasible evaluation. *)

val check_kill : t -> records:int -> unit
(** @raise Killed when a [Kill_after] threshold is reached. *)

val drift_windows : t -> int list
(** The window indices of every [Drift_on] fault, in plan order — the
    serving driver pre-registers each with the monitor. *)

val research_timeout_at : t -> generation:int -> bool
(** Whether this re-search generation should time out before evaluating. *)
