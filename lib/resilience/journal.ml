module Json = Homunculus_util.Json
module Bo = Homunculus_bo

type failure = { failure_class : string; message : string; retries : int }
type kind = Exact | Predicted | Lease | Release

(* Evaluation records carry the search's actual outcomes; coordination
   records (leases handed to distributed workers, and their releases) share
   the same line format so one checksummed WAL serves both roles, but they
   never enter the replay table — a lease is a promise, not a result. *)
let is_evaluation = function
  | Exact | Predicted -> true
  | Lease | Release -> false

type record = {
  scope : string;
  index : int;
  config : Bo.Config.t;
  objective : float;
  feasible : bool;
  pruned : bool;
  metadata : (string * float) list;
  failure : failure option;
  kind : kind;
}

(* 64-bit FNV-1a over the compact rendering of the record object. The
   parser preserves member order and the printer's number rendering
   round-trips ([%.0f] for integral values, [%.17g] otherwise), so a line we
   wrote re-renders byte-identically after parsing — which is what lets the
   loader verify the checksum without storing the original text. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let checksum s = Printf.sprintf "%016Lx" (fnv1a64 s)

let failure_to_json f =
  Json.Object
    [
      ("class", Json.String f.failure_class);
      ("message", Json.String f.message);
      ("retries", Json.Number (float_of_int f.retries));
    ]

let failure_of_json json =
  {
    failure_class = Json.get_string (Json.member json "class");
    message = Json.get_string (Json.member json "message");
    retries = Json.to_int (Json.member json "retries");
  }

let record_to_json r =
  Json.Object
    [
      ("scope", Json.String r.scope);
      ("index", Json.Number (float_of_int r.index));
      ("config", Bo.Serialize.config_to_json_tagged r.config);
      ("objective", Json.Number r.objective);
      ("feasible", Json.Bool r.feasible);
      ("pruned", Json.Bool r.pruned);
      ("metadata",
       Json.Object (List.map (fun (k, v) -> (k, Json.Number v)) r.metadata));
      ("failure",
       match r.failure with None -> Json.Null | Some f -> failure_to_json f);
      ("kind",
       Json.String
         (match r.kind with
         | Exact -> "exact"
         | Predicted -> "predicted"
         | Lease -> "lease"
         | Release -> "release"));
    ]

let record_of_json json =
  {
    scope = Json.get_string (Json.member json "scope");
    index = Json.to_int (Json.member json "index");
    config = Bo.Serialize.config_of_json_tagged (Json.member json "config");
    objective = Json.to_float (Json.member json "objective");
    feasible = Json.to_bool (Json.member json "feasible");
    pruned = Json.to_bool (Json.member json "pruned");
    metadata =
      (match Json.member json "metadata" with
      | Json.Object members ->
          List.map (fun (k, v) -> (k, Json.to_float v)) members
      | _ -> invalid_arg "Journal: metadata must be an object");
    failure =
      (match Json.member json "failure" with
      | Json.Null -> None
      | f -> Some (failure_of_json f));
    kind =
      (* Journals written before the cost-model pre-filter carry no kind
         member: every one of their records was an exact evaluation. *)
      (match Json.member_opt json "kind" with
      | Some (Json.String "predicted") -> Predicted
      | Some (Json.String "lease") -> Lease
      | Some (Json.String "release") -> Release
      | Some _ | None -> Exact);
  }

let line_of_record r =
  let rec_text = Json.to_string ~pretty:false (record_to_json r) in
  Printf.sprintf "{\"sum\":%s,\"rec\":%s}"
    (Json.to_string ~pretty:false (Json.String (checksum rec_text)))
    rec_text

(* A line survives loading only if it parses, carries both members, and the
   re-rendered record matches its recorded checksum — a truncated final line
   (the crash case the WAL exists for) or a corrupted byte fails one of
   those and is dropped rather than poisoning the resume. *)
let record_of_line line =
  match Json.of_string line with
  | exception _ -> None
  | json -> (
      match (Json.member_opt json "sum", Json.member_opt json "rec") with
      | Some (Json.String sum), Some rec_json -> (
          let rec_text = Json.to_string ~pretty:false rec_json in
          if not (String.equal sum (checksum rec_text)) then None
          else match record_of_json rec_json with
            | r -> Some r
            | exception _ -> None)
      | _ -> None)

(* Append handle: fsync'd writes serialized by a mutex so parallel
   evaluation workers never interleave partial lines. The record count is
   handle-local — [Faultplan.Kill_after] measures records absorbed by the
   current run, not lines inherited from a previous incarnation.

   Group commit: with [fsync_every = k > 1] the handle fsyncs once per [k]
   appends (and on [sync]/[close]) instead of once per record. Every line is
   still written whole under the mutex, so the durability contract weakens
   only in degree: a crash can lose at most the last [k - 1] fully-written
   but unsynced records plus one torn tail line — all of which replay
   already tolerates (a lost record is just re-evaluated, a torn line is
   dropped by the checksum). *)

type t = {
  path : string;
  fd : Unix.file_descr;
  mutex : Mutex.t;
  fsync_every : int;
  mutable unsynced : int;
  mutable records : int;
}

let open_ ?(fsync_every = 1) path =
  if fsync_every < 1 then invalid_arg "Journal.open_: fsync_every < 1";
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { path; fd; mutex = Mutex.create (); fsync_every; unsynced = 0; records = 0 }

let path t = t.path
let appended t = t.records

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let append t record =
  let line = line_of_record record ^ "\n" in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      write_all t.fd (Bytes.of_string line);
      t.unsynced <- t.unsynced + 1;
      if t.unsynced >= t.fsync_every then begin
        Unix.fsync t.fd;
        t.unsynced <- 0
      end;
      t.records <- t.records + 1;
      t.records)

let sync t =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      if t.unsynced > 0 then begin
        Unix.fsync t.fd;
        t.unsynced <- 0
      end)

let close t =
  (try sync t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Replay cache: records keyed by (scope, canonical configuration key).
   Resume re-drives the optimizer with the original seed; every proposal it
   re-derives hits the cache and returns the recorded evaluation instantly,
   so the rebuilt history is bit-for-bit the uninterrupted one. Later
   records for the same key win (a retried-then-recorded evaluation
   supersedes an earlier incarnation's). *)

type replay = {
  table : (string, record) Hashtbl.t;
  mutable loaded : int;
  mutable dropped : int;
}

let key ~scope ~config = scope ^ "\x00" ^ Bo.Serialize.config_key config

let empty_replay () = { table = Hashtbl.create 64; loaded = 0; dropped = 0 }

(* Absorb one parsed record into a replay table. Coordination kinds (lease /
   release) are provenance, not outcomes: they never shadow an evaluation
   and are not counted as loaded. *)
let absorb replay r =
  if is_evaluation r.kind then begin
    replay.loaded <- replay.loaded + 1;
    Hashtbl.replace replay.table (key ~scope:r.scope ~config:r.config) r
  end

(* Single streaming pass over a journal file: every valid record is handed
   to [f] in file order, invalid lines are counted. [load], [records], and
   [read] are all one call to this — a caller that needs both the replay
   table and the raw record list pays for one read and one checksum pass,
   not two (the coordinator merge hits that path per surrogate refit). *)
let fold_records path ~init ~f =
  let dropped = ref 0 in
  let acc = ref init in
  (if Sys.file_exists path then
     let ic = open_in path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match record_of_line line with
               | Some r -> acc := f !acc r
               | None -> incr dropped
           done
         with End_of_file -> ()));
  (!acc, !dropped)

let read path =
  let replay = empty_replay () in
  let raw, dropped =
    fold_records path ~init:[] ~f:(fun acc r ->
        absorb replay r;
        r :: acc)
  in
  replay.dropped <- dropped;
  (List.rev raw, replay)

let load path =
  let replay = empty_replay () in
  let (), dropped =
    fold_records path ~init:() ~f:(fun () r -> absorb replay r)
  in
  replay.dropped <- dropped;
  replay

let find replay ~scope ~config =
  Hashtbl.find_opt replay.table (key ~scope ~config)

let loaded replay = replay.loaded
let dropped replay = replay.dropped

(* Deterministic union of several replay tables: tables later in the list
   supersede earlier ones on key conflicts, mirroring the later-record-wins
   rule within one file. In the distributed search conflicts only arise from
   reissued leases, whose evaluations are bit-identical by construction
   (config-derived seeds), so the choice of winner is unobservable — but it
   is still fixed, because the coordinator merges worker journals in sorted
   file order. *)
let merge replays =
  let out = empty_replay () in
  List.iter
    (fun r ->
      out.loaded <- out.loaded + r.loaded;
      out.dropped <- out.dropped + r.dropped;
      Hashtbl.iter (fun k v -> Hashtbl.replace out.table k v) r.table)
    replays;
  out

let records path =
  let _, replay = read path in
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) replay.table [] in
  List.sort (fun a b -> compare (a.scope, a.index) (b.scope, b.index)) all

(* Incremental tail reader: re-polling a growing journal re-reads only the
   bytes appended since the previous poll. A partial final line (a writer
   mid-append, or a crash's torn tail) stays buffered until its newline
   arrives; if it never does, it is simply never returned. *)

type reader = {
  reader_path : string;
  mutable offset : int;
  pending : Buffer.t;
  mutable reader_dropped : int;
}

let reader reader_path =
  { reader_path; offset = 0; pending = Buffer.create 256; reader_dropped = 0 }

let reader_path r = r.reader_path

let poll r =
  if not (Sys.file_exists r.reader_path) then []
  else begin
    let ic = open_in_bin r.reader_path in
    let fresh =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len <= r.offset then ""
          else begin
            seek_in ic r.offset;
            let n = len - r.offset in
            let bytes = really_input_string ic n in
            r.offset <- len;
            bytes
          end)
    in
    Buffer.add_string r.pending fresh;
    let text = Buffer.contents r.pending in
    match String.rindex_opt text '\n' with
    | None -> []
    | Some last ->
        Buffer.clear r.pending;
        Buffer.add_string r.pending
          (String.sub text (last + 1) (String.length text - last - 1));
        let complete = String.sub text 0 last in
        List.filter_map
          (fun line ->
            if String.trim line = "" then None
            else
              match record_of_line line with
              | Some _ as some -> some
              | None ->
                  r.reader_dropped <- r.reader_dropped + 1;
                  None)
          (String.split_on_char '\n' complete)
  end

let reader_dropped r = r.reader_dropped
