module Json = Homunculus_util.Json
module Bo = Homunculus_bo

type failure = { failure_class : string; message : string; retries : int }
type kind = Exact | Predicted

type record = {
  scope : string;
  index : int;
  config : Bo.Config.t;
  objective : float;
  feasible : bool;
  pruned : bool;
  metadata : (string * float) list;
  failure : failure option;
  kind : kind;
}

(* 64-bit FNV-1a over the compact rendering of the record object. The
   parser preserves member order and the printer's number rendering
   round-trips ([%.0f] for integral values, [%.17g] otherwise), so a line we
   wrote re-renders byte-identically after parsing — which is what lets the
   loader verify the checksum without storing the original text. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let checksum s = Printf.sprintf "%016Lx" (fnv1a64 s)

let failure_to_json f =
  Json.Object
    [
      ("class", Json.String f.failure_class);
      ("message", Json.String f.message);
      ("retries", Json.Number (float_of_int f.retries));
    ]

let failure_of_json json =
  {
    failure_class = Json.get_string (Json.member json "class");
    message = Json.get_string (Json.member json "message");
    retries = Json.to_int (Json.member json "retries");
  }

let record_to_json r =
  Json.Object
    [
      ("scope", Json.String r.scope);
      ("index", Json.Number (float_of_int r.index));
      ("config", Bo.Serialize.config_to_json_tagged r.config);
      ("objective", Json.Number r.objective);
      ("feasible", Json.Bool r.feasible);
      ("pruned", Json.Bool r.pruned);
      ("metadata",
       Json.Object (List.map (fun (k, v) -> (k, Json.Number v)) r.metadata));
      ("failure",
       match r.failure with None -> Json.Null | Some f -> failure_to_json f);
      ("kind",
       Json.String (match r.kind with Exact -> "exact" | Predicted -> "predicted"));
    ]

let record_of_json json =
  {
    scope = Json.get_string (Json.member json "scope");
    index = Json.to_int (Json.member json "index");
    config = Bo.Serialize.config_of_json_tagged (Json.member json "config");
    objective = Json.to_float (Json.member json "objective");
    feasible = Json.to_bool (Json.member json "feasible");
    pruned = Json.to_bool (Json.member json "pruned");
    metadata =
      (match Json.member json "metadata" with
      | Json.Object members ->
          List.map (fun (k, v) -> (k, Json.to_float v)) members
      | _ -> invalid_arg "Journal: metadata must be an object");
    failure =
      (match Json.member json "failure" with
      | Json.Null -> None
      | f -> Some (failure_of_json f));
    kind =
      (* Journals written before the cost-model pre-filter carry no kind
         member: every one of their records was an exact evaluation. *)
      (match Json.member_opt json "kind" with
      | Some (Json.String "predicted") -> Predicted
      | Some _ | None -> Exact);
  }

let line_of_record r =
  let rec_text = Json.to_string ~pretty:false (record_to_json r) in
  Printf.sprintf "{\"sum\":%s,\"rec\":%s}"
    (Json.to_string ~pretty:false (Json.String (checksum rec_text)))
    rec_text

(* A line survives loading only if it parses, carries both members, and the
   re-rendered record matches its recorded checksum — a truncated final line
   (the crash case the WAL exists for) or a corrupted byte fails one of
   those and is dropped rather than poisoning the resume. *)
let record_of_line line =
  match Json.of_string line with
  | exception _ -> None
  | json -> (
      match (Json.member_opt json "sum", Json.member_opt json "rec") with
      | Some (Json.String sum), Some rec_json -> (
          let rec_text = Json.to_string ~pretty:false rec_json in
          if not (String.equal sum (checksum rec_text)) then None
          else match record_of_json rec_json with
            | r -> Some r
            | exception _ -> None)
      | _ -> None)

(* Append handle: one fsync'd write per record, serialized by a mutex so
   parallel evaluation workers never interleave partial lines. The record
   count is handle-local — [Faultplan.Kill_after] measures records absorbed
   by the current run, not lines inherited from a previous incarnation. *)

type t = {
  path : string;
  fd : Unix.file_descr;
  mutex : Mutex.t;
  mutable records : int;
}

let open_ path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { path; fd; mutex = Mutex.create (); records = 0 }

let path t = t.path
let appended t = t.records

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let append t record =
  let line = line_of_record record ^ "\n" in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      write_all t.fd (Bytes.of_string line);
      Unix.fsync t.fd;
      t.records <- t.records + 1;
      t.records)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Replay cache: records keyed by (scope, canonical configuration key).
   Resume re-drives the optimizer with the original seed; every proposal it
   re-derives hits the cache and returns the recorded evaluation instantly,
   so the rebuilt history is bit-for-bit the uninterrupted one. Later
   records for the same key win (a retried-then-recorded evaluation
   supersedes an earlier incarnation's). *)

type replay = { table : (string, record) Hashtbl.t; loaded : int; dropped : int }

let key ~scope ~config = scope ^ "\x00" ^ Bo.Serialize.config_key config

let load path =
  let table = Hashtbl.create 64 in
  let loaded = ref 0 and dropped = ref 0 in
  (if Sys.file_exists path then
     let ic = open_in path in
     Fun.protect
       ~finally:(fun () -> close_in_noerr ic)
       (fun () ->
         try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match record_of_line line with
               | Some r ->
                   incr loaded;
                   Hashtbl.replace table (key ~scope:r.scope ~config:r.config) r
               | None -> incr dropped
           done
         with End_of_file -> ()));
  { table; loaded = !loaded; dropped = !dropped }

let find replay ~scope ~config =
  Hashtbl.find_opt replay.table (key ~scope ~config)

let loaded replay = replay.loaded
let dropped replay = replay.dropped

let records path =
  let replay = load path in
  let all = Hashtbl.fold (fun _ r acc -> r :: acc) replay.table [] in
  List.sort (fun a b -> compare (a.scope, a.index) (b.scope, b.index)) all
