(** Evaluation supervisor: wraps a candidate evaluation with failure
    classification, bounded retry, divergence detection, a wall-clock
    budget, journaling, and replay-based resume.

    The supervisor's contract with the search's determinism guarantee: it
    never consumes randomness, retries reuse the candidate's own
    config-derived seed, and a replay hit returns the recorded evaluation
    verbatim — so a resumed search commits exactly the entries an
    uninterrupted one would, in the same proposal order. *)

module Bo = Homunculus_bo

type failure_class =
  | Divergence  (** non-finite training loss; never retried *)
  | Backend  (** any other exception; retried up to [max_retries] *)
  | Budget  (** per-candidate wall-clock budget exhausted; never retried *)

val class_name : failure_class -> string
val class_code : failure_class -> float
val class_of_code : float -> failure_class option

val failure_key : string
(** History-metadata key carrying {!class_code} on failure entries. *)

val retries_key : string
(** History-metadata key carrying the number of retries burned. *)

exception Diverged of { epoch : int; last_metric : float option }
exception Timed_out of { elapsed_s : float }

type settings = {
  max_retries : int;  (** extra attempts after the first, [Backend] only *)
  retry_backend : bool;
  budget_s : float option;  (** per-candidate wall-clock budget *)
}

val default_settings : settings
(** one retry for backend failures, no wall-clock budget *)

type context = {
  attempt : int;  (** 0-based attempt number *)
  started : float;
  deadline : float option;
  nan_epoch : int option;
      (** epoch at which a [Nan_loss_on] fault turns the loss NaN *)
  mutable last_metric : float option;
      (** last finite validation metric seen; a divergence failure reports
          it as the partial-budget objective *)
}

val epoch_guard : context -> epoch:int -> loss:float -> metric:float option -> unit
(** Per-epoch check, intended for [Train.fit]'s [on_epoch] hook: records
    the validation metric, then
    @raise Diverged when the loss is NaN/infinite (or a fault says so)
    @raise Timed_out when the wall-clock deadline has passed. The clock is
    monotonic (max-guarded against [gettimeofday] stepping backwards). *)

type t

val create :
  ?settings:settings ->
  ?journal:Journal.t ->
  ?replay:Journal.replay ->
  ?faults:Faultplan.t ->
  unit ->
  t

val supervise :
  t ->
  scope:string ->
  index:int ->
  config:Bo.Config.t ->
  (context -> Bo.Optimizer.evaluation) ->
  Bo.Optimizer.evaluation
(** Run one candidate evaluation under supervision:

    - a replay-cache hit returns the recorded evaluation immediately;
    - otherwise the thunk runs with a fresh {!context} per attempt;
    - {!Diverged} ends the candidate as an infeasible, pruned entry whose
      objective is the last finite validation metric (the surrogate learns
      from the partial observation, the incumbent ignores it);
    - {!Timed_out} ends it as infeasible with objective 0;
    - any other exception is retried up to [max_retries] times, then ends
      it as infeasible ([Out_of_memory], [Stack_overflow], [Sys.Break],
      and {!Faultplan.Killed} propagate instead);
    - the final outcome — success or tagged failure — is appended durably
      to the journal before being returned.

    Failure entries carry [{!failure_key}; {!retries_key}] metadata, so they
    are distinguishable from merely-infeasible evaluations in the history.
    Thread-safe; called concurrently from evaluation-pool workers. *)

val recorded : t -> scope:string -> config:Bo.Config.t -> bool
(** Does the replay cache hold a record for this (scope, config)? The
    cost-model pre-filter consults this first: a recorded candidate must be
    replayed verbatim through {!supervise} (whatever its recorded kind),
    never re-judged by the filter — which is what keeps a resumed search's
    history identical to the uninterrupted one. *)

val record_predicted :
  t ->
  scope:string ->
  index:int ->
  config:Bo.Config.t ->
  eval:Bo.Optimizer.evaluation ->
  unit
(** Journal a cost-model predicted-infeasible skip (kind [Predicted]) — the
    evaluation never ran, so none of {!supervise}'s failure machinery
    applies. Durable before the skip is committed to the history, like every
    other outcome. *)

val replayed_count : t -> int
val failure_count : t -> int

val predicted_count : t -> int
(** Predicted-infeasible skips journaled by {!record_predicted} this run. *)
