module Bo = Homunculus_bo

(* Wall-clock source for evaluation budgets. [Unix.gettimeofday] can step
   backwards under NTP adjustment; a deadline computed before a step would
   then never expire (or expire twice). The max-guard makes the reading
   monotonic non-decreasing across all domains. *)
module Monotonic = struct
  let last = Atomic.make neg_infinity

  let rec now () =
    let t = Unix.gettimeofday () in
    let prev = Atomic.get last in
    if t >= prev then if Atomic.compare_and_set last prev t then t else now ()
    else prev
end

type failure_class = Divergence | Backend | Budget

let class_name = function
  | Divergence -> "divergence"
  | Backend -> "backend"
  | Budget -> "budget"

let class_code = function Divergence -> 1. | Backend -> 2. | Budget -> 3.

let class_of_code code =
  if code = 1. then Some Divergence
  else if code = 2. then Some Backend
  else if code = 3. then Some Budget
  else None

let failure_key = "failure"
let retries_key = "failure_retries"

exception Diverged of { epoch : int; last_metric : float option }
exception Timed_out of { elapsed_s : float }

type settings = {
  max_retries : int;
  retry_backend : bool;
  budget_s : float option;
}

let default_settings = { max_retries = 1; retry_backend = true; budget_s = None }

type context = {
  attempt : int;
  started : float;
  deadline : float option;
  nan_epoch : int option;
  mutable last_metric : float option;
}

let epoch_guard ctx ~epoch ~loss ~metric =
  (match metric with
  | Some m when Float.is_finite m -> ctx.last_metric <- Some m
  | Some _ | None -> ());
  let loss =
    (* A [Nan_loss_on] fault makes the loss read as NaN from its epoch on,
       exercising the same detection path a real divergence takes. *)
    match ctx.nan_epoch with Some e when epoch >= e -> Float.nan | _ -> loss
  in
  if not (Float.is_finite loss) then
    raise (Diverged { epoch; last_metric = ctx.last_metric });
  match ctx.deadline with
  | Some d ->
      let now = Monotonic.now () in
      if now > d then raise (Timed_out { elapsed_s = now -. ctx.started })
  | None -> ()

type t = {
  settings : settings;
  journal : Journal.t option;
  replay : Journal.replay option;
  faults : Faultplan.t option;
  replayed : int Atomic.t;
  failures : int Atomic.t;
  predicted : int Atomic.t;
}

let create ?(settings = default_settings) ?journal ?replay ?faults () =
  {
    settings;
    journal;
    replay;
    faults;
    replayed = Atomic.make 0;
    failures = Atomic.make 0;
    predicted = Atomic.make 0;
  }

let replayed_count t = Atomic.get t.replayed
let failure_count t = Atomic.get t.failures
let predicted_count t = Atomic.get t.predicted

let recorded t ~scope ~config =
  match t.replay with
  | None -> false
  | Some replay -> Option.is_some (Journal.find replay ~scope ~config)

let eval_of_record (r : Journal.record) : Bo.Optimizer.evaluation =
  {
    objective = r.objective;
    feasible = r.feasible;
    pruned = r.pruned;
    metadata = r.metadata;
  }

let commit t ~scope ~index ~config ~(eval : Bo.Optimizer.evaluation) ~failure
    ~kind =
  (match t.journal with
  | None -> ()
  | Some journal ->
      let count =
        Journal.append journal
          {
            scope;
            index;
            config;
            objective = eval.objective;
            feasible = eval.feasible;
            pruned = eval.pruned;
            metadata = eval.metadata;
            failure;
            kind;
          }
      in
      Option.iter (fun plan -> Faultplan.check_kill plan ~records:count) t.faults);
  eval

let record_predicted t ~scope ~index ~config ~eval =
  Atomic.incr t.predicted;
  ignore
    (commit t ~scope ~index ~config ~eval ~failure:None ~kind:Journal.Predicted)

let supervise t ~scope ~index ~config thunk =
  match
    Option.bind t.replay (fun replay -> Journal.find replay ~scope ~config)
  with
  | Some r ->
      (* Recorded outcome from a previous incarnation: return it verbatim —
         no re-training, no journal write, no fault checks — so the rebuilt
         history is bit-for-bit the uninterrupted one. *)
      Atomic.incr t.replayed;
      eval_of_record r
  | None -> (
      match
        Option.bind t.faults (fun plan -> Faultplan.infeasible_at plan ~index)
      with
      | Some (objective, pruned) ->
          (* Control arm: the candidate is merely infeasible, with none of
             the failure machinery involved. *)
          commit t ~scope ~index ~config
            ~eval:{ objective; feasible = false; pruned; metadata = [] }
            ~failure:None ~kind:Journal.Exact
      | None ->
          let fail ~attempt cls message ~objective ~pruned =
            Atomic.incr t.failures;
            let metadata =
              [ (failure_key, class_code cls); (retries_key, float_of_int attempt) ]
            in
            let eval : Bo.Optimizer.evaluation =
              { objective; feasible = false; pruned; metadata }
            in
            commit t ~scope ~index ~config ~eval
              ~failure:
                (Some
                   {
                     Journal.failure_class = class_name cls;
                     message;
                     retries = attempt;
                   })
              ~kind:Journal.Exact
          in
          let rec attempt_loop attempt =
            let started = Monotonic.now () in
            let ctx =
              {
                attempt;
                started;
                deadline =
                  Option.map (fun b -> started +. b) t.settings.budget_s;
                nan_epoch =
                  Option.bind t.faults (fun plan ->
                      Faultplan.nan_epoch_at plan ~index);
                last_metric = None;
              }
            in
            match
              Option.iter
                (fun plan ->
                  Faultplan.check_raise plan ~index ~attempt;
                  if Faultplan.timeout_at plan ~index then
                    raise (Timed_out { elapsed_s = 0. }))
                t.faults;
              thunk ctx
            with
            | eval ->
                commit t ~scope ~index ~config ~eval ~failure:None
                  ~kind:Journal.Exact
            | exception ((Out_of_memory | Stack_overflow | Sys.Break) as e) ->
                raise e
            | exception (Faultplan.Killed _ as e) -> raise e
            | exception Diverged { epoch; last_metric } ->
                (* Non-finite loss: never retried (the same data and seed
                   diverge again), but the last finite validation metric is
                   kept as a partial-budget observation, like an ASHA-pruned
                   run, so the surrogate still learns from it. *)
                fail ~attempt Divergence
                  (Printf.sprintf "training diverged at epoch %d" epoch)
                  ~objective:(Option.value last_metric ~default:0.)
                  ~pruned:true
            | exception Timed_out { elapsed_s } ->
                fail ~attempt Budget
                  (Printf.sprintf "wall-clock budget exhausted after %.3fs"
                     elapsed_s)
                  ~objective:0. ~pruned:false
            | exception e ->
                if t.settings.retry_backend && attempt < t.settings.max_retries
                then attempt_loop (attempt + 1)
                else
                  fail ~attempt Backend (Printexc.to_string e) ~objective:0.
                    ~pruned:false
          in
          attempt_loop 0)
