type pool = {
  jobs : int;
  lock : Mutex.t;
  work : (unit -> unit) Queue.t;  (* guarded by [lock] *)
  wake : Condition.t;  (* signalled on new work and on shutdown *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Tasks that call back into the pool run their nested regions inline —
   a worker blocking on sub-tasks that only workers can run would deadlock
   a pool of depth-one queues. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

let recommended_jobs () =
  match Sys.getenv_opt "PAR_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let worker pool =
  Domain.DLS.set in_worker_key true;
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    let rec next () =
      match Queue.take_opt pool.work with
      | Some task -> Some task
      | None ->
          if pool.stop then None
          else begin
            Condition.wait pool.wake pool.lock;
            next ()
          end
    in
    let task = next () in
    Mutex.unlock pool.lock;
    match task with
    | Some task -> task ()
    | None -> running := false
  done

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> recommended_jobs () in
  if jobs < 1 then invalid_arg "Par.create: jobs < 1";
  let pool =
    {
      jobs;
      lock = Mutex.create ();
      work = Queue.create ();
      wake = Condition.create ();
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* Process-wide default pool, lazily created and torn down at exit (a domain
   blocked in [Condition.wait] would otherwise keep the runtime alive). *)

let default_pool = ref None
let exit_hook_registered = ref false

let register_exit_hook () =
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    Stdlib.at_exit (fun () ->
        match !default_pool with Some p -> shutdown p | None -> ())
  end

let default () =
  match !default_pool with
  | Some p -> p
  | None ->
      let p = create () in
      default_pool := Some p;
      register_exit_hook ();
      p

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Par.set_default_jobs: jobs < 1";
  (match !default_pool with Some p -> shutdown p | None -> ());
  default_pool := Some (create ~jobs ());
  register_exit_hook ()

(* A region = a batch of wrapped tasks pushed at once. The caller helps drain
   the queue, then blocks until the last straggler (possibly on another
   domain) signals completion. Tasks handed to [run_region] never raise:
   error capture happens one layer up, per chunk. *)

let run_region pool tasks =
  let remaining = ref (Array.length tasks) in
  let done_lock = Mutex.create () in
  let done_cond = Condition.create () in
  let wrap task () =
    task ();
    Mutex.lock done_lock;
    decr remaining;
    if !remaining = 0 then Condition.broadcast done_cond;
    Mutex.unlock done_lock
  in
  Mutex.lock pool.lock;
  Array.iter (fun task -> Queue.add (wrap task) pool.work) tasks;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.lock;
  let draining = ref true in
  while !draining do
    Mutex.lock pool.lock;
    let task = Queue.take_opt pool.work in
    Mutex.unlock pool.lock;
    match task with Some task -> task () | None -> draining := false
  done;
  Mutex.lock done_lock;
  while !remaining > 0 do
    Condition.wait done_cond done_lock
  done;
  Mutex.unlock done_lock

(* Run [n_tasks] chunk bodies, sequentially or on the pool, capturing one
   exception per chunk and re-raising the lowest-index one so failures are
   independent of scheduling. *)

let exec_chunks pool n_tasks run_chunk =
  if n_tasks > 0 then begin
    let errors = Array.make n_tasks None in
    let guarded c () =
      try run_chunk c
      with e -> errors.(c) <- Some (e, Printexc.get_raw_backtrace ())
    in
    if pool.jobs = 1 || n_tasks = 1 || in_worker () || pool.stop then
      for c = 0 to n_tasks - 1 do
        guarded c ()
      done
    else run_region pool (Array.init n_tasks guarded);
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors
  end

let default_chunk pool n = Stdlib.max 1 ((n + (4 * pool.jobs) - 1) / (4 * pool.jobs))

let parallel_for ?pool ?chunk ~lo ~hi f =
  let pool = match pool with Some p -> p | None -> default () in
  let n = hi - lo in
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> if c < 1 then invalid_arg "Par.parallel_for: chunk < 1" else c
      | None -> default_chunk pool n
    in
    let n_tasks = (n + chunk - 1) / chunk in
    exec_chunks pool n_tasks (fun c ->
        let first = lo + (c * chunk) in
        let last = Stdlib.min hi (first + chunk) - 1 in
        for i = first to last do
          f i
        done)
  end

let parallel_map ?pool ?chunk f arr =
  let pool = match pool with Some p -> p | None -> default () in
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~pool ?chunk ~lo:0 ~hi:n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every index written *))
      out
  end

let run_in_parallel ?pool thunks =
  let pool = match pool with Some p -> p | None -> default () in
  parallel_map ~pool ~chunk:1 (fun thunk -> thunk ()) thunks
