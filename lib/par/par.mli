(** Deterministic work pool over OCaml 5 domains.

    The DSE loop is dominated by embarrassingly parallel work — candidate
    training, per-tree forest fits, KMeans restarts — so the pool favors a
    simple, predictable design over work stealing:

    - a fixed set of worker domains, created once and reused for every
      parallel region (spawning a domain costs far more than a task);
    - [parallel_for]/[parallel_map] split the index range into contiguous
      chunks, and the calling domain participates in draining the queue;
    - results are written at their own index, so the output never depends on
      which domain ran which chunk;
    - exceptions raised by tasks are captured per chunk and the one from the
      {e lowest} index is re-raised after the whole region has drained, so a
      failure is reported identically at any worker count.

    Determinism contract: a task must depend only on its index (feed each
    task a pre-split {!Homunculus_util.Rng.t}, never a shared one). Under
    that contract results are bit-identical whether the pool has 1 or N
    domains — the property the BO determinism test pins down.

    Nested parallel regions (a task calling back into [parallel_map]) run
    inline on the calling worker rather than deadlocking on the queue. *)

type pool

val recommended_jobs : unit -> int
(** [PAR_JOBS] from the environment when set to a positive integer,
    otherwise {!Domain.recommended_domain_count}. *)

val create : ?jobs:int -> unit -> pool
(** A pool that runs parallel regions on [jobs] domains total (the caller
    plus [jobs - 1] spawned workers; default {!recommended_jobs}). [jobs = 1]
    spawns nothing and runs every region sequentially in the caller.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : pool -> int

val shutdown : pool -> unit
(** Stop and join the worker domains. Idempotent. Regions submitted after
    shutdown run sequentially in the caller, so a shut-down pool is still
    safe to use (e.g. from [at_exit] races). *)

val default : unit -> pool
(** The process-wide pool, created on first use with {!recommended_jobs}
    workers and shut down automatically at exit. *)

val set_default_jobs : int -> unit
(** Replace the default pool with one of the given size (shutting down the
    previous one). Drives the [--jobs] CLI flag.
    @raise Invalid_argument if [jobs < 1]. *)

val parallel_for : ?pool:pool -> ?chunk:int -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for ~lo ~hi f] runs [f i] for [lo <= i < hi] ([hi] exclusive),
    split into chunks of [chunk] consecutive indices (default: enough chunks
    for ~4 per worker). [pool] defaults to {!default}. *)

val parallel_map : ?pool:pool -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Like [Array.map], with elements processed in parallel chunks. The result
    array is in input order regardless of scheduling. *)

val run_in_parallel : ?pool:pool -> (unit -> 'a) array -> 'a array
(** Run independent thunks, one task each (no chunking): the right shape for
    a handful of coarse jobs like batched candidate evaluations. *)
