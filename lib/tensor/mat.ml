type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty input";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matvec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.matvec: dimension mismatch";
  let out = Array.make m.rows 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. v.(j))
    done;
    out.(i) <- !acc
  done;
  out

let matvec_t m v =
  if Array.length v <> m.rows then invalid_arg "Mat.matvec_t: dimension mismatch";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let vi = v.(i) in
    if vi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. vi)
      done
  done;
  out

(* Both products accumulate out(i,j) over k in ascending order with a single
   accumulator, so the blocked/packed path below is bit-identical to the
   textbook triple loop — the equivalence test checks exact equality. *)

(* [a] is m-by-k row-major, [bt] is n-by-k row-major (i.e. B already
   transposed): both operands stream contiguously in the inner dot product.
   Blocking keeps a tile of bt rows hot in cache while the i-loop sweeps. *)
let matmul_packed a bt out =
  let kdim = a.cols and n = bt.rows in
  let block = 64 in
  let jj = ref 0 in
  while !jj < n do
    let j_hi = Stdlib.min n (!jj + block) in
    let ii = ref 0 in
    while !ii < a.rows do
      let i_hi = Stdlib.min a.rows (!ii + block) in
      for i = !ii to i_hi - 1 do
        let abase = i * kdim in
        let obase = i * n in
        for j = !jj to j_hi - 1 do
          let bbase = j * kdim in
          let acc = ref 0. in
          for p = 0 to kdim - 1 do
            acc := !acc +. (a.data.(abase + p) *. bt.data.(bbase + p))
          done;
          out.data.(obase + j) <- !acc
        done
      done;
      ii := i_hi
    done;
    jj := j_hi
  done

let matmul_nt a b =
  if a.cols <> b.cols then invalid_arg "Mat.matmul_nt: dimension mismatch";
  let out = create a.rows b.rows in
  matmul_packed a b out;
  out

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  let out = create a.rows b.cols in
  if a.rows * a.cols * b.cols <= 16384 then
    (* Small product: the i-k-j loop is already cache-friendly and skipping
       the packing transpose wins. *)
    for i = 0 to a.rows - 1 do
      let obase = i * b.cols in
      for k = 0 to a.cols - 1 do
        let aik = a.data.((i * a.cols) + k) in
        let bbase = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(obase + j) <- out.data.(obase + j) +. (aik *. b.data.(bbase + j))
        done
      done
    done
  else matmul_packed a (transpose b) out;
  out

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": shape mismatch")

(* The element-wise operations sit on the MLP training hot path; explicit
   loops avoid one closure invocation per element. *)

let add a b =
  check_same_shape "Mat.add" a b;
  let n = Array.length a.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- a.data.(i) +. b.data.(i)
  done;
  { a with data }

let add_inplace a b =
  check_same_shape "Mat.add_inplace" a b;
  for i = 0 to Array.length a.data - 1 do
    a.data.(i) <- a.data.(i) +. b.data.(i)
  done

let scale alpha m =
  let n = Array.length m.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- alpha *. m.data.(i)
  done;
  { m with data }

let scale_inplace alpha m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- alpha *. m.data.(i)
  done

let axpy ~alpha ~x ~y =
  check_same_shape "Mat.axpy" x y;
  for i = 0 to Array.length x.data - 1 do
    y.data.(i) <- (alpha *. x.data.(i)) +. y.data.(i)
  done

let map f m =
  let n = Array.length m.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- f m.data.(i)
  done;
  { m with data }

let map_inplace f m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- f m.data.(i)
  done

let add_row_inplace m v =
  if Array.length v <> m.cols then
    invalid_arg "Mat.add_row_inplace: dimension mismatch";
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      m.data.(base + j) <- m.data.(base + j) +. v.(j)
    done
  done

let frobenius m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0. m.data)

let outer u v =
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let outer_accum ~alpha ~u ~v ~acc =
  if Array.length u <> acc.rows || Array.length v <> acc.cols then
    invalid_arg "Mat.outer_accum: shape mismatch";
  for i = 0 to acc.rows - 1 do
    let base = i * acc.cols in
    let s = alpha *. u.(i) in
    if s <> 0. then
      for j = 0 to acc.cols - 1 do
        acc.data.(base + j) <- acc.data.(base + j) +. (s *. v.(j))
      done
  done

let n_elements m = m.rows * m.cols

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.4f" (get m i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
