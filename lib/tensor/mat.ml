type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty input";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x

let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> get m i j)

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matvec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.matvec: dimension mismatch";
  let out = Array.make m.rows 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0. in
    for j = 0 to m.cols - 1 do
      acc := !acc +. (m.data.(base + j) *. v.(j))
    done;
    out.(i) <- !acc
  done;
  out

let matvec_t m v =
  if Array.length v <> m.rows then invalid_arg "Mat.matvec_t: dimension mismatch";
  let out = Array.make m.cols 0. in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let vi = v.(i) in
    if vi <> 0. then
      for j = 0 to m.cols - 1 do
        out.(j) <- out.(j) +. (m.data.(base + j) *. vi)
      done
  done;
  out

(* Both products accumulate out(i,j) over k in ascending order with a single
   accumulator, so the blocked/packed path below is bit-identical to the
   textbook triple loop — the equivalence test checks exact equality. *)

(* [a] is m-by-k row-major, [bt] is n-by-k row-major (i.e. B already
   transposed): both operands stream contiguously in the inner dot product.
   Blocking keeps a tile of bt rows hot in cache while the i-loop sweeps. The
   dot is written inline (a call per output element costs a boxed float
   return) with unsafe accesses — bounds come from the callers' shape checks.
   The 4-way unrolling keeps a SINGLE accumulator fed in ascending index
   order: it reduces loop overhead without reassociating the sum, so results
   stay bit-identical to the naive triple loop. *)
let matmul_packed ?(bias = [||]) ?post a bt out =
  let kdim = a.cols and n = bt.rows in
  let ad = a.data and bd = bt.data and od = out.data in
  let hb = Array.length bias > 0 in
  (* Optional fused epilogue: the elementwise map runs on the finished
     accumulator while it is still in a register, replacing a second sweep
     that would re-load every output element. [pmode] is a plain int so the
     per-group dispatch below is a predicted two-way branch, not a variant
     match in the hot loop. *)
  let pmode, pd =
    match post with
    | None -> (0, od)
    | Some (`Copy dst) -> (1, dst.data)
    | Some (`Relu dst) -> (2, dst.data)
  in
  begin
    (* 8-wide microkernel: eight output columns share one sweep of the [a]
       row, so each iteration issues one a-load plus eight b-loads for eight
       multiply-adds — the shared load amortizes to ~1.1 loads per FMA, and
       the eight independent accumulator chains hide FP-add latency. Each
       accumulator is still a single register fed in ascending k —
       bit-identical per element. *)
    for i = 0 to a.rows - 1 do
      let abase = i * kdim in
      let obase = i * n in
      let j = ref 0 in
      while !j + 7 < n do
        let j0 = !j in
        let b0 = j0 * kdim in
        let b1 = b0 + kdim in
        let b2 = b1 + kdim in
        let b3 = b2 + kdim in
        let b4 = b3 + kdim in
        let b5 = b4 + kdim in
        let b6 = b5 + kdim in
        let b7 = b6 + kdim in
        let acc0 = ref 0.
        and acc1 = ref 0.
        and acc2 = ref 0.
        and acc3 = ref 0.
        and acc4 = ref 0.
        and acc5 = ref 0.
        and acc6 = ref 0.
        and acc7 = ref 0. in
        for p = 0 to kdim - 1 do
          let av = Array.unsafe_get ad (abase + p) in
          acc0 := !acc0 +. (av *. Array.unsafe_get bd (b0 + p));
          acc1 := !acc1 +. (av *. Array.unsafe_get bd (b1 + p));
          acc2 := !acc2 +. (av *. Array.unsafe_get bd (b2 + p));
          acc3 := !acc3 +. (av *. Array.unsafe_get bd (b3 + p));
          acc4 := !acc4 +. (av *. Array.unsafe_get bd (b4 + p));
          acc5 := !acc5 +. (av *. Array.unsafe_get bd (b5 + p));
          acc6 := !acc6 +. (av *. Array.unsafe_get bd (b6 + p));
          acc7 := !acc7 +. (av *. Array.unsafe_get bd (b7 + p))
        done;
        if hb then begin
          (* The bias joins after the whole dot, exactly where the per-sample
             path's [Vec.add_in_place] adds it. *)
          acc0 := !acc0 +. Array.unsafe_get bias j0;
          acc1 := !acc1 +. Array.unsafe_get bias (j0 + 1);
          acc2 := !acc2 +. Array.unsafe_get bias (j0 + 2);
          acc3 := !acc3 +. Array.unsafe_get bias (j0 + 3);
          acc4 := !acc4 +. Array.unsafe_get bias (j0 + 4);
          acc5 := !acc5 +. Array.unsafe_get bias (j0 + 5);
          acc6 := !acc6 +. Array.unsafe_get bias (j0 + 6);
          acc7 := !acc7 +. Array.unsafe_get bias (j0 + 7)
        end;
        Array.unsafe_set od (obase + j0) !acc0;
        Array.unsafe_set od (obase + j0 + 1) !acc1;
        Array.unsafe_set od (obase + j0 + 2) !acc2;
        Array.unsafe_set od (obase + j0 + 3) !acc3;
        Array.unsafe_set od (obase + j0 + 4) !acc4;
        Array.unsafe_set od (obase + j0 + 5) !acc5;
        Array.unsafe_set od (obase + j0 + 6) !acc6;
        Array.unsafe_set od (obase + j0 + 7) !acc7;
        if pmode > 0 then
          if pmode = 1 then begin
            Array.unsafe_set pd (obase + j0) !acc0;
            Array.unsafe_set pd (obase + j0 + 1) !acc1;
            Array.unsafe_set pd (obase + j0 + 2) !acc2;
            Array.unsafe_set pd (obase + j0 + 3) !acc3;
            Array.unsafe_set pd (obase + j0 + 4) !acc4;
            Array.unsafe_set pd (obase + j0 + 5) !acc5;
            Array.unsafe_set pd (obase + j0 + 6) !acc6;
            Array.unsafe_set pd (obase + j0 + 7) !acc7
          end
          else begin
            let v0 = !acc0 and v1 = !acc1 and v2 = !acc2 and v3 = !acc3 in
            let v4 = !acc4 and v5 = !acc5 and v6 = !acc6 and v7 = !acc7 in
            Array.unsafe_set pd (obase + j0) (if v0 > 0. then v0 else 0.);
            Array.unsafe_set pd (obase + j0 + 1) (if v1 > 0. then v1 else 0.);
            Array.unsafe_set pd (obase + j0 + 2) (if v2 > 0. then v2 else 0.);
            Array.unsafe_set pd (obase + j0 + 3) (if v3 > 0. then v3 else 0.);
            Array.unsafe_set pd (obase + j0 + 4) (if v4 > 0. then v4 else 0.);
            Array.unsafe_set pd (obase + j0 + 5) (if v5 > 0. then v5 else 0.);
            Array.unsafe_set pd (obase + j0 + 6) (if v6 > 0. then v6 else 0.);
            Array.unsafe_set pd (obase + j0 + 7) (if v7 > 0. then v7 else 0.)
          end;
        j := j0 + 8
      done;
      (* Remainder columns, two dots at a time where possible. *)
      while !j + 1 < n do
        let j0 = !j in
        let b0 = j0 * kdim in
        let b1 = b0 + kdim in
        let acc0 = ref 0. and acc1 = ref 0. in
        for p = 0 to kdim - 1 do
          let av = Array.unsafe_get ad (abase + p) in
          acc0 := !acc0 +. (av *. Array.unsafe_get bd (b0 + p));
          acc1 := !acc1 +. (av *. Array.unsafe_get bd (b1 + p))
        done;
        if hb then begin
          acc0 := !acc0 +. Array.unsafe_get bias j0;
          acc1 := !acc1 +. Array.unsafe_get bias (j0 + 1)
        end;
        Array.unsafe_set od (obase + j0) !acc0;
        Array.unsafe_set od (obase + j0 + 1) !acc1;
        if pmode > 0 then
          if pmode = 1 then begin
            Array.unsafe_set pd (obase + j0) !acc0;
            Array.unsafe_set pd (obase + j0 + 1) !acc1
          end
          else begin
            let v0 = !acc0 and v1 = !acc1 in
            Array.unsafe_set pd (obase + j0) (if v0 > 0. then v0 else 0.);
            Array.unsafe_set pd (obase + j0 + 1) (if v1 > 0. then v1 else 0.)
          end;
        j := j0 + 2
      done;
      if !j < n then begin
        let bbase = !j * kdim in
        let acc = ref 0. in
        for p = 0 to kdim - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get ad (abase + p)
               *. Array.unsafe_get bd (bbase + p))
        done;
        if hb then acc := !acc +. Array.unsafe_get bias !j;
        Array.unsafe_set od (obase + !j) !acc;
        if pmode > 0 then begin
          let v = !acc in
          Array.unsafe_set pd (obase + !j)
            (if pmode = 1 then v else if v > 0. then v else 0.)
        end
      end
    done
  end

let matmul_nt_into ?bias ?post a b ~out =
  if a.cols <> b.cols then invalid_arg "Mat.matmul_nt_into: dimension mismatch";
  if out.rows <> a.rows || out.cols <> b.rows then
    invalid_arg "Mat.matmul_nt_into: output shape mismatch";
  (match bias with
  | Some v when Array.length v <> b.rows ->
      invalid_arg "Mat.matmul_nt_into: bias length mismatch"
  | Some _ | None -> ());
  (match post with
  | Some (`Copy d | `Relu d) when d.rows <> out.rows || d.cols <> out.cols ->
      invalid_arg "Mat.matmul_nt_into: post destination shape mismatch"
  | Some _ | None -> ());
  matmul_packed ?bias ?post a b out

let matmul_nt a b =
  if a.cols <> b.cols then invalid_arg "Mat.matmul_nt: dimension mismatch";
  let out = create a.rows b.rows in
  matmul_packed a b out;
  out

let transpose_into m ~out =
  if out.rows <> m.cols || out.cols <> m.rows then
    invalid_arg "Mat.transpose_into: shape mismatch";
  let md = m.data and od = out.data in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set od ((j * out.cols) + i) (Array.unsafe_get md (base + j))
    done
  done

(* acc <- acc + a^T b, where [a] is s-by-m and [b] is s-by-n (both row-major
   with the shared dimension as rows): the shape of a batched weight-gradient
   update (delta^T X). The loop nest is sample-major and skips rows of [a]
   that are exactly zero, so per element of [acc] the additions happen in the
   same order (and with the same skip rule) as folding [outer_accum] over the
   samples one at a time — the batched training path is bit-identical to the
   per-sample reference because of this. *)
let gemm_tn_accum ~a ~b ~acc =
  if a.rows <> b.rows then invalid_arg "Mat.gemm_tn_accum: row mismatch";
  if acc.rows <> a.cols || acc.cols <> b.cols then
    invalid_arg "Mat.gemm_tn_accum: accumulator shape mismatch";
  let m = a.cols and n = b.cols in
  let ad = a.data and bd = b.data and accd = acc.data in
  for s = 0 to a.rows - 1 do
    let abase = s * m and bbase = s * n in
    for i = 0 to m - 1 do
      let c = Array.unsafe_get ad (abase + i) in
      if c <> 0. then begin
        let obase = i * n in
        (* 4-way unroll over independent output elements. *)
        let j = ref 0 in
        while !j + 3 < n do
          let j0 = !j in
          Array.unsafe_set accd (obase + j0)
            (Array.unsafe_get accd (obase + j0)
            +. (c *. Array.unsafe_get bd (bbase + j0)));
          Array.unsafe_set accd (obase + j0 + 1)
            (Array.unsafe_get accd (obase + j0 + 1)
            +. (c *. Array.unsafe_get bd (bbase + j0 + 1)));
          Array.unsafe_set accd (obase + j0 + 2)
            (Array.unsafe_get accd (obase + j0 + 2)
            +. (c *. Array.unsafe_get bd (bbase + j0 + 2)));
          Array.unsafe_set accd (obase + j0 + 3)
            (Array.unsafe_get accd (obase + j0 + 3)
            +. (c *. Array.unsafe_get bd (bbase + j0 + 3)));
          j := j0 + 4
        done;
        while !j < n do
          Array.unsafe_set accd (obase + !j)
            (Array.unsafe_get accd (obase + !j)
            +. (c *. Array.unsafe_get bd (bbase + !j)));
          incr j
        done
      end
    done
  done

(* out <- a b, saxpy-style with no skipping: per element of [out] the sum
   runs over ascending rows of [b] with a single (memory) accumulator —
   exactly [matvec]'s accumulation order once [b] is a packed W^T. Memory
   accumulators across a row of [out] are independent, so unlike the dot
   form this is not serialized on FP-add latency. Both streams contiguous. *)
let matmul_into a b ~out =
  if a.cols <> b.rows then invalid_arg "Mat.matmul_into: dimension mismatch";
  if out.rows <> a.rows || out.cols <> b.cols then
    invalid_arg "Mat.matmul_into: output shape mismatch";
  let k = a.cols and n = b.cols in
  let ad = a.data and bd = b.data and od = out.data in
  for s = 0 to a.rows - 1 do
    let abase = s * k and obase = s * n in
    if k = 0 then Array.fill od obase n 0.
    else begin
      (* The k=0 pass writes [0. +. c*b] directly — the exact value the
         fill-then-accumulate form would produce (including signed zeros) —
         saving a full sweep over the output row. Each later pass is a short
         load-fma-store chain per element, so independent elements pipeline
         instead of serializing on FP-add latency. *)
      let c = Array.unsafe_get ad abase in
      for j = 0 to n - 1 do
        Array.unsafe_set od (obase + j) (0. +. (c *. Array.unsafe_get bd j))
      done;
      for i = 1 to k - 1 do
        let c = Array.unsafe_get ad (abase + i) in
        let bbase = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set od (obase + j)
            (Array.unsafe_get od (obase + j)
            +. (c *. Array.unsafe_get bd (bbase + j)))
        done
      done
    end
  done

(* out <- a b with [b] row-major and untransposed: per element of [out] the
   sum runs over ascending rows of [b] with a single (memory) accumulator and
   skips rows where the [a] coefficient is exactly zero — row [s] of [out] is
   the exact op sequence of [matvec_t b (row a s)], which is what makes the
   batched dL/dx bit-identical to the per-sample path without packing W^T
   every step. The saxpy inner loop streams both [b] and [out] contiguously. *)
let matmul_nn_into a b ~out =
  if a.cols <> b.rows then invalid_arg "Mat.matmul_nn_into: dimension mismatch";
  if out.rows <> a.rows || out.cols <> b.cols then
    invalid_arg "Mat.matmul_nn_into: output shape mismatch";
  let k = a.cols and n = b.cols in
  let ad = a.data and bd = b.data and od = out.data in
  for s = 0 to a.rows - 1 do
    let abase = s * k and obase = s * n in
    (* The first surviving coefficient writes [0. +. c*b] directly — the
       exact value fill-then-accumulate would produce (signed zeros
       included) — saving the fill sweep whenever any coefficient is live. *)
    let inited = ref false in
    for i = 0 to k - 1 do
      let c = Array.unsafe_get ad (abase + i) in
      if c <> 0. then begin
        if not !inited then begin
          inited := true;
          let bbase = i * n in
          for j = 0 to n - 1 do
            Array.unsafe_set od (obase + j)
              (0. +. (c *. Array.unsafe_get bd (bbase + j)))
          done
        end
        else begin
          let bbase = i * n in
          (* 4-way unroll over independent output elements. *)
          let j = ref 0 in
          while !j + 3 < n do
            let j0 = !j in
            Array.unsafe_set od (obase + j0)
              (Array.unsafe_get od (obase + j0)
              +. (c *. Array.unsafe_get bd (bbase + j0)));
            Array.unsafe_set od (obase + j0 + 1)
              (Array.unsafe_get od (obase + j0 + 1)
              +. (c *. Array.unsafe_get bd (bbase + j0 + 1)));
            Array.unsafe_set od (obase + j0 + 2)
              (Array.unsafe_get od (obase + j0 + 2)
              +. (c *. Array.unsafe_get bd (bbase + j0 + 2)));
            Array.unsafe_set od (obase + j0 + 3)
              (Array.unsafe_get od (obase + j0 + 3)
              +. (c *. Array.unsafe_get bd (bbase + j0 + 3)));
            j := j0 + 4
          done;
          while !j < n do
            Array.unsafe_set od (obase + !j)
              (Array.unsafe_get od (obase + !j)
              +. (c *. Array.unsafe_get bd (bbase + !j)));
            incr j
          done
        end
      end
    done;
    if not !inited then Array.fill od obase n 0.
  done

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: dimension mismatch";
  let out = create a.rows b.cols in
  if a.rows * a.cols * b.cols <= 16384 then
    (* Small product: the i-k-j loop is already cache-friendly and skipping
       the packing transpose wins. *)
    for i = 0 to a.rows - 1 do
      let obase = i * b.cols in
      for k = 0 to a.cols - 1 do
        let aik = a.data.((i * a.cols) + k) in
        let bbase = k * b.cols in
        for j = 0 to b.cols - 1 do
          out.data.(obase + j) <- out.data.(obase + j) +. (aik *. b.data.(bbase + j))
        done
      done
    done
  else matmul_packed a (transpose b) out;
  out

let check_same_shape name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (name ^ ": shape mismatch")

(* The element-wise operations sit on the MLP training hot path; explicit
   loops avoid one closure invocation per element. *)

let add a b =
  check_same_shape "Mat.add" a b;
  let n = Array.length a.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- a.data.(i) +. b.data.(i)
  done;
  { a with data }

let add_inplace a b =
  check_same_shape "Mat.add_inplace" a b;
  for i = 0 to Array.length a.data - 1 do
    a.data.(i) <- a.data.(i) +. b.data.(i)
  done

let scale alpha m =
  let n = Array.length m.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- alpha *. m.data.(i)
  done;
  { m with data }

let scale_inplace alpha m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- alpha *. m.data.(i)
  done

let axpy ~alpha ~x ~y =
  check_same_shape "Mat.axpy" x y;
  for i = 0 to Array.length x.data - 1 do
    y.data.(i) <- (alpha *. x.data.(i)) +. y.data.(i)
  done

let map f m =
  let n = Array.length m.data in
  let data = Array.make n 0. in
  for i = 0 to n - 1 do
    data.(i) <- f m.data.(i)
  done;
  { m with data }

let map_inplace f m =
  for i = 0 to Array.length m.data - 1 do
    m.data.(i) <- f m.data.(i)
  done

let add_row_inplace m v =
  if Array.length v <> m.cols then
    invalid_arg "Mat.add_row_inplace: dimension mismatch";
  let md = m.data in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set md (base + j)
        (Array.unsafe_get md (base + j) +. Array.unsafe_get v j)
    done
  done

let frobenius m = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0. m.data)

let outer u v =
  init (Array.length u) (Array.length v) (fun i j -> u.(i) *. v.(j))

let outer_accum ~alpha ~u ~v ~acc =
  if Array.length u <> acc.rows || Array.length v <> acc.cols then
    invalid_arg "Mat.outer_accum: shape mismatch";
  for i = 0 to acc.rows - 1 do
    let base = i * acc.cols in
    let s = alpha *. u.(i) in
    if s <> 0. then
      for j = 0 to acc.cols - 1 do
        acc.data.(base + j) <- acc.data.(base + j) +. (s *. v.(j))
      done
  done

let n_elements m = m.rows * m.cols

let pp fmt m =
  Format.fprintf fmt "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt " ";
      Format.fprintf fmt "%8.4f" (get m i j)
    done;
    Format.fprintf fmt "]@,"
  done;
  Format.fprintf fmt "@]"
