(** Dense row-major float matrices. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** @raise Invalid_argument on ragged or empty input. *)

val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val col : t -> int -> Vec.t
(** Fresh copy of a column. *)

val transpose : t -> t
val matvec : t -> Vec.t -> Vec.t
(** [matvec m v] with [dim v = m.cols]; result has [m.rows] entries. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m v] computes [transpose m * v] without materializing the
    transpose; [dim v = m.rows]. *)

val matmul : t -> t -> t
(** Cache-blocked product. Large operands are computed against a packed
    (transposed) copy of the right-hand side so both inner streams are
    contiguous; accumulation order per output element matches the textbook
    triple loop, so results are bit-identical to the naive reference. *)

val matmul_nt : t -> t -> t
(** [matmul_nt a b] is [matmul a (transpose b)] without materializing the
    transpose — [b] is already the packed operand. [a] is [m*k], [b] is
    [n*k], the result is [m*n]. This is the natural shape for a batched
    dense-layer forward pass ([X * W^T]). *)

val add : t -> t -> t
val add_inplace : t -> t -> unit
(** [add_inplace a b] is [a <- a + b] without allocating. *)

val scale : float -> t -> t
val scale_inplace : float -> t -> unit
val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y <- alpha * x + y]. *)

val map : (float -> float) -> t -> t
val map_inplace : (float -> float) -> t -> unit
val add_row_inplace : t -> Vec.t -> unit
(** Add a row vector ([dim v = cols]) to every row in place: the bias
    broadcast of a batched layer forward. *)

val frobenius : t -> float
val outer : Vec.t -> Vec.t -> t
(** [outer u v] has shape [dim u * dim v]. *)

val outer_accum : alpha:float -> u:Vec.t -> v:Vec.t -> acc:t -> unit
(** In-place rank-1 update [acc <- acc + alpha * u v^T]. *)

val n_elements : t -> int
val pp : Format.formatter -> t -> unit
