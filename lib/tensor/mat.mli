(** Dense row-major float matrices. *)

type t = {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
val of_rows : float array array -> t
(** @raise Invalid_argument on ragged or empty input. *)

val copy : t -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val col : t -> int -> Vec.t
(** Fresh copy of a column. *)

val transpose : t -> t
val matvec : t -> Vec.t -> Vec.t
(** [matvec m v] with [dim v = m.cols]; result has [m.rows] entries. *)

val matvec_t : t -> Vec.t -> Vec.t
(** [matvec_t m v] computes [transpose m * v] without materializing the
    transpose; [dim v = m.rows]. *)

val matmul : t -> t -> t
(** Cache-blocked product. Large operands are computed against a packed
    (transposed) copy of the right-hand side so both inner streams are
    contiguous; accumulation order per output element matches the textbook
    triple loop, so results are bit-identical to the naive reference. *)

val matmul_nt : t -> t -> t
(** [matmul_nt a b] is [matmul a (transpose b)] without materializing the
    transpose — [b] is already the packed operand. [a] is [m*k], [b] is
    [n*k], the result is [m*n]. This is the natural shape for a batched
    dense-layer forward pass ([X * W^T]). *)

val matmul_nt_into :
  ?bias:Vec.t -> ?post:[ `Copy of t | `Relu of t ] -> t -> t -> out:t -> unit
(** {!matmul_nt} writing into a preallocated [m*n] output — the allocation-free
    kernel under the batched training engine's reused workspaces. Every
    element of [out] is overwritten. [?bias] (length [n]) is added to each
    output element in the kernel's epilogue, after the whole dot product —
    the same op order as a matvec followed by a bias add — saving a separate
    load/store pass over [out]. [?post] extends the same epilogue with an
    elementwise map into a second [m*n] matrix while the finished value is
    still in a register: [`Copy dst] stores it unchanged (a linear
    activation), [`Relu dst] stores [if v > 0. then v else 0.] — both are
    bit-identical to running the map as a separate pass over [out], minus
    that pass's loads. *)

val transpose_into : t -> out:t -> unit
(** Transpose into a preallocated [cols*rows] output. *)

val matmul_into : t -> t -> out:t -> unit
(** [matmul_into a b ~out] is [out <- a * b] ([a : m*k], [b : k*n],
    [out : m*n]) with both operands streamed contiguously, saxpy-style: per
    output element the contributions accumulate over ascending [k] with a
    single accumulator and nothing skipped — with [b] a packed W^T this is
    exactly {!matvec}'s op sequence per row, and the independent per-output
    accumulators avoid the FP-add latency chain of a dot-product form. The
    batched forward kernel. *)

val matmul_nn_into : t -> t -> out:t -> unit
(** [matmul_nn_into a b ~out] is [out <- a * b] ([a : m*k], [b : k*n],
    [out : m*n]) without packing [b]: per output element the sum runs over
    ascending rows of [b] with the same skip-zero-coefficients rule as
    {!matvec_t}, so row [s] of [out] is bit-identical to
    [matvec_t b (row a s)]. This is the batched dL/dx kernel
    ([dx = delta * W]); the zero skip pays off because ReLU deltas are
    frequently exactly zero. *)

val gemm_tn_accum : a:t -> b:t -> acc:t -> unit
(** In-place [acc <- acc + transpose a * b] with [a : s*m], [b : s*n],
    [acc : m*n] — a fused batch of rank-1 updates, sample-major. Rows of [a]
    equal to zero are skipped exactly as {!outer_accum} skips them, so the
    result is bit-identical to folding [outer_accum] over the [s] samples in
    ascending order. This is the batched weight-gradient kernel
    ([grad_w += delta^T X]). *)

val add : t -> t -> t
val add_inplace : t -> t -> unit
(** [add_inplace a b] is [a <- a + b] without allocating. *)

val scale : float -> t -> t
val scale_inplace : float -> t -> unit
val axpy : alpha:float -> x:t -> y:t -> unit
(** In-place [y <- alpha * x + y]. *)

val map : (float -> float) -> t -> t
val map_inplace : (float -> float) -> t -> unit
val add_row_inplace : t -> Vec.t -> unit
(** Add a row vector ([dim v = cols]) to every row in place: the bias
    broadcast of a batched layer forward. *)

val frobenius : t -> float
val outer : Vec.t -> Vec.t -> t
(** [outer u v] has shape [dim u * dim v]. *)

val outer_accum : alpha:float -> u:Vec.t -> v:Vec.t -> acc:t -> unit
(** In-place rank-1 update [acc <- acc + alpha * u v^T]. *)

val n_elements : t -> int
val pp : Format.formatter -> t -> unit
