open Homunculus_alchemy
open Homunculus_backends
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng
module Supervisor = Homunculus_resilience.Supervisor

exception No_feasible_model of string
exception Search_budget_exhausted

let log_src = Logs.Src.create "homunculus.compiler" ~doc:"Homunculus compiler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type options = {
  seed : int;
  bo_settings : Bo.Optimizer.settings;
  emit_code : bool;
  fusion_threshold : float option;
  prune : Bo.Asha.settings option;
  supervisor : Supervisor.t option;
  cost_model : Bo.Cost_model.settings option;
  deadline : float option;
  dispatch :
    (scope:string -> (int * Bo.Config.t) array -> Bo.Optimizer.evaluation array)
    option;
}

let default_options =
  {
    seed = 42;
    bo_settings = Bo.Optimizer.default_settings;
    emit_code = true;
    fusion_threshold = None;
    prune = None;
    supervisor = None;
    cost_model = None;
    dispatch = None;
    deadline = None;
  }

let quick_options =
  {
    default_options with
    bo_settings =
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init = 5;
        n_iter = 10;
        pool_size = 64;
      };
  }

type model_result = {
  spec : Model_spec.t;
  artifact : Evaluator.artifact;
  history : Bo.History.t;
  histories : (Model_spec.algorithm * Bo.History.t) list;
  code : string option;
  cost_stats : Bo.Cost_model.stats option;
}

type result = {
  platform : Platform.t;
  schedule : Schedule.t;
  models : model_result list;
  combined : Schedule.combined;
  bundle_code : string option;
}

let emit_code platform model_ir =
  match platform.Platform.target with
  | Platform.Taurus _ -> Spatial.emit model_ir
  | Platform.Fpga _ -> (
      (* The FPGA flow compiles Spatial down to RTL (paper §5.2); ship both
         artifacts. Classical models stay at the Spatial level. *)
      match model_ir with
      | Model_ir.Dnn _ -> Spatial.emit model_ir ^ "\n" ^ Verilog.emit model_ir
      | Model_ir.Kmeans _ | Model_ir.Svm _ | Model_ir.Tree _ ->
          Spatial.emit model_ir)
  | Platform.Tofino _ ->
      P4gen.emit model_ir ^ "\n" ^ P4gen.emit_entries model_ir

let search_algorithm rng ~seed ~settings ?prune ?supervisor ?cost_model
    ?dispatch ?deadline platform spec algorithm =
  let data = Model_spec.load spec in
  let input_dim =
    Homunculus_ml.Dataset.n_features data.Model_spec.train
  in
  let space = Space_builder.build platform algorithm ~input_dim in
  let scope =
    Model_spec.name spec ^ "/" ^ Model_spec.algorithm_to_string algorithm
  in
  (* The learned pre-filter judges candidates on the design-space encoding
     concatenated with the skeleton's analytic architecture features. Its
     seed is scope-derived (not the search RNG): the filter owns a private
     stream, so enabling it never perturbs the proposal sequence. *)
  let cm =
    Option.map
      (fun cm_settings ->
        let n_classes =
          data.Model_spec.train.Homunculus_ml.Dataset.n_classes
        in
        let features config =
          Array.append
            (Bo.Design_space.encode space config)
            (Evaluator.features_of_candidate platform algorithm ~input_dim
               ~n_classes config)
        in
        Bo.Cost_model.create ~settings:cm_settings
          ~seed:(seed lxor Hashtbl.hash scope)
          ~features ())
      cost_model
  in
  (* Rung pruning only pays off where training is epoch-iterative. *)
  let sched =
    match (prune, algorithm) with
    | Some s, Model_spec.Dnn -> Some (Bo.Asha.create ~settings:s ())
    | (Some _, _ | None, _) -> None
  in
  (* [eval] may run on worker domains when the optimizer batches proposals;
     the running best is guarded by a mutex, and because
     [Evaluator.compare_artifacts] is a total order the winner is the same
     whatever order the batch completes in. *)
  let best = ref None in
  let best_lock = Mutex.create () in
  (* A per-configuration seed makes the black box deterministic: the same
     suggestion always measures the same, which stabilizes the search —
     and makes the winning artifact rebuildable from just its config. *)
  let run_eval ?guard config =
    let eval_rng = Rng.create (seed lxor Bo.Config.hash config) in
    let artifact =
      Evaluator.evaluate eval_rng ?prune:sched ?guard platform spec algorithm
        config
    in
    Mutex.lock best_lock;
    best := Evaluator.better_artifact !best artifact;
    Mutex.unlock best_lock;
    artifact
  in
  let eval ~index config =
    match supervisor with
    | None -> Evaluator.to_bo_evaluation (run_eval config)
    | Some sup ->
        (* Supervised: failures become tagged infeasible evaluations instead
           of killing the search, and recorded outcomes replay without
           re-training. Retries reuse the same config-derived seed. *)
        Supervisor.supervise sup ~scope ~index ~config (fun ctx ->
            Evaluator.to_bo_evaluation
              (run_eval ~guard:(Supervisor.epoch_guard ctx) config))
  in
  (* The whole-search wall-clock deadline is enforced at batch boundaries,
     on the calling domain, before the batch is dispatched: candidates in
     flight always finish (and are journaled), so a budget abort leaves the
     journal holding only completed evaluations — exactly what a warm
     restart wants to replay. *)
  let on_batch_start =
    match (deadline, sched) with
    | None, None -> None
    | _ ->
        Some
          (fun () ->
            (match deadline with
            | Some d when Unix.gettimeofday () > d ->
                raise Search_budget_exhausted
            | Some _ | None -> ());
            Option.iter Bo.Asha.freeze sched)
  in
  (* Pre-filter plumbing. Replayed candidates bypass the filter entirely —
     the supervisor returns the recorded outcome (exact or predicted)
     verbatim — so a resumed run's history matches the uninterrupted one
     even though the filter's counters start over. Fresh skips are journaled
     durably before they are committed. *)
  let prefilter =
    Option.map
      (fun cm ~index config ->
        let replayed =
          match supervisor with
          | Some sup -> Supervisor.recorded sup ~scope ~config
          | None -> false
        in
        if replayed then None
        else
          match Bo.Cost_model.classify cm config with
          | Bo.Cost_model.Exact_required _ -> None
          | Bo.Cost_model.Predicted_infeasible { p_feasible; predicted_objective }
            ->
              let eval =
                Bo.Cost_model.predicted_evaluation ~p_feasible
                  ~predicted_objective
              in
              (match supervisor with
              | Some sup ->
                  Supervisor.record_predicted sup ~scope ~index ~config ~eval
              | None -> ());
              Some eval)
      cm
  in
  (* Feed every committed exact outcome back as a training example. Fires in
     proposal order on the calling domain, so the filter's model state is a
     pure function of the committed sequence — identical on resume.
     Predicted commits and failure-tagged entries are not observations: the
     former were never measured, the latter's infeasibility is a training
     accident (divergence, timeout), not a property of the architecture. *)
  let on_iteration =
    Option.map
      (fun cm (_ : int) (e : Bo.History.entry) ->
        if
          not
            (Bo.Cost_model.is_predicted e.Bo.History.metadata
            || List.mem_assoc Supervisor.failure_key e.Bo.History.metadata)
        then
          Bo.Cost_model.observe cm ~config:e.Bo.History.config
            ~objective:e.Bo.History.objective ~feasible:e.Bo.History.feasible
            ~pruned:e.Bo.History.pruned)
      cm
  in
  (* Distributed dispatch: batches go out as leases to worker processes
     instead of the in-process pool; [eval] then never runs here, so the
     winner must come from the history path below (same as replay). *)
  let dispatch = Option.map (fun d -> d ~scope) dispatch in
  let history =
    Bo.Optimizer.maximize_indexed rng ~settings ?on_iteration ?on_batch_start
      ?prefilter ?dispatch space ~f:eval
  in
  let winner =
    match (supervisor, cm, dispatch) with
    | None, None, None -> !best
    | _ -> (
        (* Replayed evaluations never ran the artifact-producing thunk, so
           [!best] can miss the true winner on a resumed search. Pick it
           from the history (whose order mirrors [compare_artifacts]) and
           rebuild the artifact deterministically if it wasn't cached. A
           failure-tagged winner has no artifact — rebuilding would just
           fail again — and a predicted-infeasible winner was never
           evaluated at all: the final artifact is never chosen on a
           prediction. *)
        match Bo.History.best_entry history with
        | None -> None
        | Some e
          when List.mem_assoc Supervisor.failure_key e.Bo.History.metadata
               || Bo.Cost_model.is_predicted e.Bo.History.metadata ->
            None
        | Some e -> (
            match !best with
            | Some a when Bo.Config.equal a.Evaluator.config e.Bo.History.config
              ->
                Some a
            | Some _ | None -> Some (run_eval e.Bo.History.config)))
  in
  (winner, history, sched, Option.map Bo.Cost_model.stats cm)

let search_model ?(options = default_options) platform spec =
  (* ASHA rungs share mutable per-batch thresholds that live in this
     process; a leased batch evaluates elsewhere, so the combination cannot
     keep its determinism contract. Refuse rather than silently diverge. *)
  if Option.is_some options.dispatch && Option.is_some options.prune then
    invalid_arg "Compiler.search_model: dispatch is incompatible with prune";
  let candidates = Candidate.filter platform spec in
  if candidates = [] then
    raise
      (No_feasible_model
         (Printf.sprintf
            "%s: no candidate algorithm survives filtering on %s"
            (Model_spec.name spec) (Platform.name platform)));
  Log.info (fun m ->
      m "%s on %s: candidates [%s]" (Model_spec.name spec) (Platform.name platform)
        (String.concat "; " (List.map Model_spec.algorithm_to_string candidates)));
  (* Split the evaluation budget across the parallel per-algorithm runs. *)
  let n = List.length candidates in
  let settings =
    {
      options.bo_settings with
      Bo.Optimizer.n_iter =
        Stdlib.max 1 (options.bo_settings.Bo.Optimizer.n_iter / n);
    }
  in
  let master = Rng.create options.seed in
  let runs =
    List.map
      (fun algorithm ->
        let rng = Rng.split master in
        let best, history, (_ : Bo.Asha.t option), stats =
          search_algorithm rng ~seed:options.seed ~settings
            ?prune:options.prune ?supervisor:options.supervisor
            ?cost_model:options.cost_model ?dispatch:options.dispatch
            ?deadline:options.deadline platform spec algorithm
        in
        (algorithm, best, history, stats))
      candidates
  in
  let cost_stats =
    List.fold_left
      (fun acc (_, _, _, stats) ->
        match (acc, stats) with
        | None, s | s, None -> s
        | Some a, Some b -> Some (Bo.Cost_model.merge_stats a b))
      None runs
  in
  let best =
    List.fold_left
      (fun acc (_, candidate, _, _) ->
        match candidate with
        | Some c -> Evaluator.better_artifact acc c
        | None -> acc)
      None runs
  in
  match best with
  | None ->
      raise
        (No_feasible_model
           (Printf.sprintf "%s: search produced no models" (Model_spec.name spec)))
  | Some artifact when not artifact.Evaluator.verdict.Resource.feasible ->
      raise
        (No_feasible_model
           (Printf.sprintf "%s: no configuration met the constraints (best %s)"
              (Model_spec.name spec)
              (Option.value artifact.Evaluator.verdict.Resource.rejection
                 ~default:"unknown rejection")))
  | Some artifact ->
      Log.info (fun m ->
          m "%s: best %s, objective %.4f, %s" (Model_spec.name spec)
            (Model_spec.algorithm_to_string artifact.Evaluator.algorithm)
            artifact.Evaluator.objective
            (if artifact.Evaluator.verdict.Resource.feasible then "feasible"
             else "INFEASIBLE"));
      let winning_history =
        List.find_map
          (fun (algorithm, _, history, _) ->
            if algorithm = artifact.Evaluator.algorithm then Some history
            else None)
          runs
        |> Option.get
      in
      {
        spec;
        artifact;
        history = winning_history;
        histories = List.map (fun (a, _, h, _) -> (a, h)) runs;
        code =
          (if options.emit_code then
             Some (emit_code platform artifact.Evaluator.model_ir)
           else None);
        cost_stats;
      }

(* The worker-process side of distributed dispatch: evaluate one leased
   candidate exactly as the inline search would have. The scope string
   carries everything positional ("<spec-name>/<algorithm>"); the
   config-derived seed carries everything stochastic — so any process
   produces the same evaluation for the same lease. No ASHA (incompatible
   with dispatch), no cost model (the pre-filter runs coordinator-side,
   skips never become leases), no best-artifact tracking (the coordinator
   picks the winner from the merged history and rebuilds it). *)
let worker_eval ~options ~platform ~specs ~scope ~index ~config =
  let name, algorithm =
    match String.rindex_opt scope '/' with
    | None ->
        invalid_arg (Printf.sprintf "Compiler.worker_eval: bad scope %S" scope)
    | Some i ->
        ( String.sub scope 0 i,
          Model_spec.algorithm_of_string
            (String.sub scope (i + 1) (String.length scope - i - 1)) )
  in
  let spec =
    match List.find_opt (fun s -> Model_spec.name s = name) specs with
    | Some s -> s
    | None ->
        invalid_arg
          (Printf.sprintf "Compiler.worker_eval: no spec named %S" name)
  in
  let run_eval ?guard () =
    let eval_rng = Rng.create (options.seed lxor Bo.Config.hash config) in
    Evaluator.evaluate eval_rng ?guard platform spec algorithm config
  in
  match options.supervisor with
  | None -> Evaluator.to_bo_evaluation (run_eval ())
  | Some sup ->
      Supervisor.supervise sup ~scope ~index ~config (fun ctx ->
          Evaluator.to_bo_evaluation
            (run_eval ~guard:(Supervisor.epoch_guard ctx) ()))

(* Incremental re-search: one budgeted search_model run whose failure modes
   are data, not exceptions — the autopilot's degradation branches key off
   the outcome constructor. The deadline is absolute wall clock computed
   here, so replay cache hits (which cost microseconds) effectively extend
   how much of the budget reaches fresh evaluations: a warm start spends
   the same seconds on strictly newer candidates. *)
type research_stats = { wall_s : float; replayed : int }

type research_outcome =
  | Research_won of model_result
  | Research_infeasible of string
  | Research_budget

let research ?(options = default_options) ?budget_s platform spec =
  let started = Unix.gettimeofday () in
  let options =
    match budget_s with
    | None -> options
    | Some b -> { options with deadline = Some (started +. b) }
  in
  let replayed () =
    match options.supervisor with
    | Some s -> Supervisor.replayed_count s
    | None -> 0
  in
  let before = replayed () in
  let outcome =
    match search_model ~options platform spec with
    | r -> Research_won r
    | exception No_feasible_model msg -> Research_infeasible msg
    | exception Search_budget_exhausted -> Research_budget
  in
  ( outcome,
    {
      wall_s = Unix.gettimeofday () -. started;
      replayed = replayed () - before;
    } )

type tradeoff_point = {
  artifact : Evaluator.artifact;
  resource_fraction : float;
  weight : float;
}

let resource_fraction (verdict : Resource.verdict) =
  List.fold_left
    (fun acc u -> Stdlib.max acc (u.Resource.used /. u.Resource.available))
    0. verdict.Resource.usages

let search_tradeoff ?(options = default_options) ?(n_scalarizations = 5)
    platform spec =
  if n_scalarizations <= 0 then
    invalid_arg "Compiler.search_tradeoff: n_scalarizations <= 0";
  let candidates = Candidate.filter platform spec in
  if candidates = [] then
    raise
      (No_feasible_model
         (Printf.sprintf "%s: no candidate algorithm survives filtering"
            (Model_spec.name spec)));
  let algorithm = List.hd candidates in
  let data = Model_spec.load spec in
  let input_dim = Homunculus_ml.Dataset.n_features data.Model_spec.train in
  let space = Space_builder.build platform algorithm ~input_dim in
  let master = Rng.create options.seed in
  let points = ref [] in
  for _ = 1 to n_scalarizations do
    let run_rng = Rng.split master in
    let weight = Rng.uniform run_rng 0.3 1.0 in
    (* Same concurrency story as [search_algorithm]: the scalarized running
       best lives behind a mutex and is ranked by a total order (feasible
       first, then scalarized score, then configuration string), so batched
       evaluation order cannot change the winner. *)
    let score a f =
      (weight *. a.Evaluator.objective) -. ((1. -. weight) *. f)
    in
    let ranks_higher (a, af) (b, bf) =
      let fc =
        Bool.compare b.Evaluator.verdict.Resource.feasible
          a.Evaluator.verdict.Resource.feasible
      in
      if fc <> 0 then fc < 0
      else
        let sc = Float.compare (score b bf) (score a af) in
        if sc <> 0 then sc < 0
        else
          String.compare
            (Bo.Config.to_string a.Evaluator.config)
            (Bo.Config.to_string b.Evaluator.config)
          < 0
    in
    let best = ref None in
    let best_lock = Mutex.create () in
    let eval config =
      let eval_rng = Rng.create (options.seed lxor Bo.Config.hash config) in
      let artifact = Evaluator.evaluate eval_rng platform spec algorithm config in
      let fraction = resource_fraction artifact.Evaluator.verdict in
      Mutex.lock best_lock;
      (match !best with
      | Some incumbent when not (ranks_higher (artifact, fraction) incumbent) ->
          ()
      | Some _ | None -> best := Some (artifact, fraction));
      Mutex.unlock best_lock;
      {
        Bo.Optimizer.objective =
          (weight *. artifact.Evaluator.objective) -. ((1. -. weight) *. fraction);
        feasible = artifact.Evaluator.verdict.Resource.feasible;
        pruned = artifact.Evaluator.pruned;
        metadata = [];
      }
    in
    let (_ : Bo.History.t) =
      Bo.Optimizer.maximize run_rng ~settings:options.bo_settings space ~f:eval
    in
    match !best with
    | Some (artifact, fraction) when artifact.Evaluator.verdict.Resource.feasible ->
        points := { artifact; resource_fraction = fraction; weight } :: !points
    | Some _ | None -> ()
  done;
  if !points = [] then
    raise
      (No_feasible_model
         (Printf.sprintf "%s: no scalarization found a feasible model"
            (Model_spec.name spec)));
  (* Keep the non-dominated set over (objective, -resource_fraction). *)
  let arr = Array.of_list !points in
  let coords =
    Array.map
      (fun p -> [| p.artifact.Evaluator.objective; -.p.resource_fraction |])
      arr
  in
  let front = Bo.Scalarize.pareto_front coords in
  Array.to_list (Array.map (fun i -> arr.(i)) front)
  |> List.sort (fun a b ->
         compare b.artifact.Evaluator.objective a.artifact.Evaluator.objective)

module Policy = Homunculus_policy.Policy
module Lower = Homunculus_policy.Lower

type policy_result = {
  policy : Policy.t;
  tenant_models : (Policy.tenant * model_result) list;
  composed : Lower.t;
}

let shared_budget (platform : Platform.t) n =
  if n <= 1 then platform
  else
    match platform.Platform.target with
    | Platform.Tofino d ->
        (* One guard table per tenant comes off the top; each member then
           searches against an even slice of what remains. *)
        let per = Stdlib.max 2 ((d.Tofino.n_tables - n) / n) in
        Platform.with_tables platform per
    | Platform.Taurus g ->
        let cols = Stdlib.max 2 (g.Taurus.cols / n) in
        Platform.with_resources platform ~rows:g.Taurus.rows ~cols
    | Platform.Fpga _ -> platform

let compile_policy ?(options = default_options) platform policy =
  let policy = Policy.normalize policy in
  let tenants = Policy.tenants policy in
  if tenants = [] then
    invalid_arg "Compiler.compile_policy: policy normalizes to drop";
  let member_platform = shared_budget platform (List.length tenants) in
  (* Search each distinct spec once against the budget slice; tenants
     instantiating the same spec share the winner. *)
  let searched = ref [] in
  let result_for spec =
    let name = Model_spec.name spec in
    match List.assoc_opt name !searched with
    | Some r -> r
    | None ->
        let r = search_model ~options member_platform spec in
        searched := (name, r) :: !searched;
        r
  in
  let tenant_models =
    List.map (fun (t : Policy.tenant) -> (t, result_for t.Policy.spec)) tenants
  in
  let inputs =
    List.map
      (fun ((t : Policy.tenant), (r : model_result)) ->
        Lower.input_of_tenant t ~model:r.artifact.Evaluator.model_ir)
      tenant_models
  in
  match Lower.compose platform inputs with
  | Error e -> Error e
  | Ok composed -> Ok { policy; tenant_models; composed }

(* Fusion pass: fold parallel compositions of fusable specs into one spec
   (paper §3.2.5). Only Par nodes fuse — sequential models see different
   upstream data by construction. *)
let rec apply_fusion ~threshold schedule =
  match schedule with
  | Schedule.Model _ -> schedule
  | Schedule.Seq (a, b) ->
      Schedule.Seq (apply_fusion ~threshold a, apply_fusion ~threshold b)
  | Schedule.Par (a, b) -> (
      let a = apply_fusion ~threshold a and b = apply_fusion ~threshold b in
      match (a, b) with
      | Schedule.Model sa, Schedule.Model sb
        when Model_spec.name sa <> Model_spec.name sb
             && Fusion.can_fuse ~threshold sa sb ->
          Schedule.Model
            (Fusion.fuse
               ~name:(Model_spec.name sa ^ "+" ^ Model_spec.name sb)
               sa sb)
      | _ -> Schedule.Par (a, b))

let generate ?(options = default_options) platform schedule =
  let schedule =
    match options.fusion_threshold with
    | Some threshold -> apply_fusion ~threshold schedule
    | None -> schedule
  in
  (* Search each distinct spec once; chained copies share the result. *)
  let specs = Schedule.models schedule in
  let distinct =
    List.fold_left
      (fun acc spec ->
        if List.exists (fun s -> Model_spec.name s = Model_spec.name spec) acc
        then acc
        else spec :: acc)
      [] specs
    |> List.rev
  in
  let models = List.map (search_model ~options platform) distinct in
  let result_for name =
    List.find (fun r -> Model_spec.name r.spec = name) models
  in
  let combined =
    Schedule.combine schedule ~perf:(Platform.perf platform)
      ~estimate:(fun spec ->
        (result_for (Model_spec.name spec)).artifact.Evaluator.verdict)
  in
  let bundle_code =
    let bundle_models () =
      List.map
        (fun spec ->
          (result_for (Model_spec.name spec)).artifact.Evaluator.model_ir)
        specs
    in
    match (options.emit_code, platform.Platform.target, specs) with
    | true, (Platform.Taurus _ | Platform.Fpga _), _ :: _ :: _ ->
        Some (Spatial.emit_bundle ~name:"pipeline" (bundle_models ()))
    | true, Platform.Tofino _, _ :: _ :: _ -> (
        (* Duplicate specs produce duplicate table names; namespace them. *)
        let models =
          List.mapi
            (fun i m -> Model_ir.with_name m (Printf.sprintf "m%d_%s" i (Model_ir.name m)))
            (bundle_models ())
        in
        try
          Some
            (P4_ir.print
               (P4_ir.merge ~name:"pipeline" (List.map P4gen.program_of models)))
        with Invalid_argument _ -> None (* e.g. a DNN slipped in *))
    | _ -> None
  in
  { platform; schedule; models; combined; bundle_code }
