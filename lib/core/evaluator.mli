(** The black box the Bayesian optimizer probes (paper §3.2.4): take one
    suggested configuration, train the corresponding model with the ML
    framework, measure the user's objective on held-out data, then generate
    the hardware mapping and query the backend for feasibility. *)

open Homunculus_alchemy
open Homunculus_backends

type artifact = {
  algorithm : Model_spec.algorithm;
  config : Homunculus_bo.Config.t;
  model_ir : Model_ir.t;
  verdict : Resource.verdict;
  objective : float;  (** the spec's metric on its test split, in [0, 1] *)
  pruned : bool;
      (** training was stopped at a successive-halving rung, so [objective]
          reflects a partial epoch budget *)
  epochs_trained : int;
      (** epochs the fit actually ran (0 for non-epoch algorithms) *)
}

(** Process-wide accounting of what exact evaluations cost, split into the
    three phases the DSE bench reports: training, lowering (name/
    standardization folding + objective), and backend estimation. Counters
    are mutex-guarded (evaluations run on pool workers) and deliberately
    kept out of history metadata, so reading them never perturbs a search's
    determinism. [estimates] is the "exact simulator invocations" metric:
    one per {!Homunculus_alchemy.Platform.estimate} call on a trained
    model ({!features_of_candidate}'s skeleton estimates are not charged). *)
module Timing : sig
  type snapshot = {
    evaluations : int;
    estimates : int;
    train_s : float;
    lower_s : float;
    estimate_s : float;
  }

  val reset : unit -> unit
  val snapshot : unit -> snapshot

  val charge : train:float -> lower:float -> estimate:float -> unit
  (** One exact evaluation's phase durations (seconds). Exposed for
      synthetic benches; {!evaluate} calls it itself. *)
end

val evaluate :
  Homunculus_util.Rng.t ->
  ?prune:Homunculus_bo.Asha.t ->
  ?guard:(epoch:int -> loss:float -> metric:float option -> unit) ->
  Platform.t ->
  Model_spec.t ->
  Model_spec.algorithm ->
  Homunculus_bo.Config.t ->
  artifact
(** Train + map + judge one configuration. Features are standardized with a
    scaler fitted on the training split; DNNs hold out 20% of the training
    data for early stopping so the test split stays untouched during
    training.

    With [?prune], DNN training reports its validation metric to the shared
    rung scheduler at each rung of the candidate's own epoch budget and
    stops early when the scheduler says so; the artifact then carries
    [pruned = true]. Non-DNN algorithms train in one shot and ignore the
    scheduler.

    [?guard] runs at every DNN training epoch, before rung accounting, with
    the epoch's mean training loss and validation metric; the evaluation
    supervisor uses it for divergence detection (non-finite loss) and
    wall-clock budget enforcement — it aborts the evaluation by raising.
    Non-DNN algorithms never call it. *)

val features_of_candidate :
  Platform.t ->
  Model_spec.algorithm ->
  input_dim:int ->
  n_classes:int ->
  Homunculus_bo.Config.t ->
  float array
(** Pure architecture/placement features for the learned cost-model
    pre-filter — computed {e without training anything}: a zero-weight
    skeleton model with the candidate's exact shape is lowered through
    {!Homunculus_alchemy.Platform.estimate}, and the resulting analytic
    verdict becomes the feature vector: [param_count; input_dim; n_classes;
    latency_ns; throughput_gpps; skeleton-feasible; perf targets] followed
    by [used; available; used/available] per backend resource. Fixed-length
    for a fixed (platform, algorithm, dataset); deterministic; does not
    touch {!Timing}. Callers typically prepend the design-space encoding. *)

val compare_artifacts : artifact -> artifact -> int
(** Total order used to rank search results: feasible before infeasible,
    then fully trained before pruned, then higher objective, then the
    lexicographically smaller configuration string. Because the order is
    total, folding {!better_artifact} over a set of artifacts yields the
    same winner in any order — the parallel search depends on this for
    determinism. *)

val better_artifact : artifact option -> artifact -> artifact option
(** [better_artifact current candidate] keeps the higher-ranked of the two
    under {!compare_artifacts}. *)

val to_bo_evaluation : artifact -> Homunculus_bo.Optimizer.evaluation
(** Objective + feasibility + pruned flag + backend measurements as metadata
    ("params", "latency_ns", "throughput_gpps", "epochs_trained", plus
    per-resource usage). *)
