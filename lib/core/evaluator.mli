(** The black box the Bayesian optimizer probes (paper §3.2.4): take one
    suggested configuration, train the corresponding model with the ML
    framework, measure the user's objective on held-out data, then generate
    the hardware mapping and query the backend for feasibility. *)

open Homunculus_alchemy
open Homunculus_backends

type artifact = {
  algorithm : Model_spec.algorithm;
  config : Homunculus_bo.Config.t;
  model_ir : Model_ir.t;
  verdict : Resource.verdict;
  objective : float;  (** the spec's metric on its test split, in [0, 1] *)
  pruned : bool;
      (** training was stopped at a successive-halving rung, so [objective]
          reflects a partial epoch budget *)
  epochs_trained : int;
      (** epochs the fit actually ran (0 for non-epoch algorithms) *)
}

val evaluate :
  Homunculus_util.Rng.t ->
  ?prune:Homunculus_bo.Asha.t ->
  ?guard:(epoch:int -> loss:float -> metric:float option -> unit) ->
  Platform.t ->
  Model_spec.t ->
  Model_spec.algorithm ->
  Homunculus_bo.Config.t ->
  artifact
(** Train + map + judge one configuration. Features are standardized with a
    scaler fitted on the training split; DNNs hold out 20% of the training
    data for early stopping so the test split stays untouched during
    training.

    With [?prune], DNN training reports its validation metric to the shared
    rung scheduler at each rung of the candidate's own epoch budget and
    stops early when the scheduler says so; the artifact then carries
    [pruned = true]. Non-DNN algorithms train in one shot and ignore the
    scheduler.

    [?guard] runs at every DNN training epoch, before rung accounting, with
    the epoch's mean training loss and validation metric; the evaluation
    supervisor uses it for divergence detection (non-finite loss) and
    wall-clock budget enforcement — it aborts the evaluation by raising.
    Non-DNN algorithms never call it. *)

val compare_artifacts : artifact -> artifact -> int
(** Total order used to rank search results: feasible before infeasible,
    then fully trained before pruned, then higher objective, then the
    lexicographically smaller configuration string. Because the order is
    total, folding {!better_artifact} over a set of artifacts yields the
    same winner in any order — the parallel search depends on this for
    determinism. *)

val better_artifact : artifact option -> artifact -> artifact option
(** [better_artifact current candidate] keeps the higher-ranked of the two
    under {!compare_artifacts}. *)

val to_bo_evaluation : artifact -> Homunculus_bo.Optimizer.evaluation
(** Objective + feasibility + pruned flag + backend measurements as metadata
    ("params", "latency_ns", "throughput_gpps", "epochs_trained", plus
    per-resource usage). *)
