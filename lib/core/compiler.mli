(** The Homunculus driver: Alchemy program in, searched + trained + mapped
    models and backend code out (paper Fig. 2, the [homunculus.generate]
    call of Fig. 3). *)

open Homunculus_alchemy
module Bo = Homunculus_bo

exception No_feasible_model of string
(** Raised when candidate filtering leaves no algorithm, or the whole search
    finishes without one feasible configuration ("... until the final output
    meets the constraints, or no feasible solution exists"). *)

exception Search_budget_exhausted
(** Raised from inside a search when [options.deadline] passes. Checked at
    batch boundaries on the calling domain, before the batch is dispatched,
    so the journal (when a supervisor carries one) holds only completed
    evaluations — a budget-killed search resumes exactly like a crashed
    one. *)

type options = {
  seed : int;
  bo_settings : Bo.Optimizer.settings;
  emit_code : bool;
  fusion_threshold : float option;
      (** when set, adjacent parallel models with enough feature overlap are
          fused before search (paper §3.2.5); [None] disables the pass *)
  prune : Bo.Asha.settings option;
      (** when set, epoch-iterative candidates (DNNs) train under a
          successive-halving rung scheduler: weak configurations stop at a
          fraction of their epoch budget and enter the BO history as pruned
          partial observations. Deterministic for a fixed seed at any worker
          count (see {!Bo.Asha}). [None] trains every candidate to its full
          budget. *)
  supervisor : Homunculus_resilience.Supervisor.t option;
      (** when set, every candidate evaluation runs under the fault
          supervisor: trainer divergence, backend exceptions, and budget
          exhaustion become tagged infeasible history entries instead of
          aborting the search; outcomes are journaled durably when the
          supervisor carries a journal, and previously recorded outcomes
          replay without re-training (deterministic resume). The winning
          artifact is then selected from the history
          ({!Bo.History.best_entry}) and rebuilt from its config-derived
          seed if the evaluation was replayed. [None] lets exceptions
          propagate, as before. *)
  cost_model : Bo.Cost_model.settings option;
      (** when set, every per-algorithm search runs behind a learned
          feasibility/cost pre-filter ({!Bo.Cost_model}) trained online on
          the exact evaluations the search pays for anyway: candidates the
          filter is confident are infeasible skip training entirely and
          enter the history as tagged predicted-infeasible entries.
          Boundary candidates fall back to the exact evaluator, and the
          winning artifact is never chosen on a prediction (a
          predicted-tagged best entry is vetoed like a failure-tagged one).
          Composes with the supervisor: journal-replayed candidates bypass
          the filter, fresh skips are journaled with kind [predicted].
          [None] evaluates every candidate exactly, as before. *)
  deadline : float option;
      (** absolute wall-clock time ([Unix.gettimeofday] scale) after which
          the search raises {!Search_budget_exhausted} instead of starting
          another batch. Checked only at batch boundaries: a batch already
          dispatched runs to completion, so every journaled evaluation is a
          finished one. [None] (the default) never times out. *)
  dispatch :
    (scope:string -> (int * Bo.Config.t) array -> Bo.Optimizer.evaluation array)
    option;
      (** when set, every batch of exact evaluations is handed to this hook
          (the distributed coordinator) instead of the in-process pool; the
          hook returns the evaluations in batch order. The winning artifact
          is then picked from the history and rebuilt locally, as on a
          resumed search. Incompatible with [prune] (ASHA's per-batch rung
          thresholds are process-local state) — {!search_model} raises
          [Invalid_argument] on the combination. [None] evaluates
          in-process, as before. *)
}

val default_options : options
(** seed 42, default BO settings, code emission on, fusion off, pruning
    off, no supervisor. *)

val quick_options : options
(** A small-budget variant (5 warm-up + 10 guided) for tests and examples. *)

type model_result = {
  spec : Model_spec.t;
  artifact : Evaluator.artifact;  (** the winning configuration *)
  history : Bo.History.t;  (** full log of the winning algorithm's search *)
  histories : (Model_spec.algorithm * Bo.History.t) list;
      (** one search per surviving candidate algorithm *)
  code : string option;  (** backend source for the winner *)
  cost_stats : Bo.Cost_model.stats option;
      (** pre-filter counters merged across the per-algorithm searches;
          [None] when [options.cost_model] was off *)
}

type result = {
  platform : Platform.t;
  schedule : Schedule.t;
  models : model_result list;  (** one per distinct spec name *)
  combined : Schedule.combined;  (** whole-pipeline feasibility *)
  bundle_code : string option;
      (** for multi-model schedules on Spatial targets: one program hosting
          every instance in schedule order (repeated specs become namespaced
          instances) *)
}

val worker_eval :
  options:options ->
  platform:Platform.t ->
  specs:Model_spec.t list ->
  scope:string ->
  index:int ->
  config:Bo.Config.t ->
  Bo.Optimizer.evaluation
(** Evaluate one leased candidate the way the inline search would have: the
    scope string (["<spec-name>/<algorithm>"], as built by the per-algorithm
    search and carried by every lease and journal record) selects the model,
    and the config-derived seed makes the result identical in any process.
    Runs under [options.supervisor] when present (worker-local retries and
    budgets; give the worker's supervisor no journal — the worker loop owns
    its journal appends). [options.prune] and [options.cost_model] are
    ignored: pruning is incompatible with dispatch and the cost-model
    pre-filter runs coordinator-side, so leases are always exact.
    @raise Invalid_argument on an unparseable scope or unknown spec name. *)

val search_model :
  ?options:options -> Platform.t -> Model_spec.t -> model_result
(** Optimize a single spec: filter candidates, run one BO search per
    surviving algorithm, keep the best feasible artifact.
    @raise No_feasible_model when nothing feasible is found. *)

(** {2 Incremental re-search — the autopilot's budgeted search step} *)

type research_stats = {
  wall_s : float;  (** wall-clock seconds the whole attempt took *)
  replayed : int;
      (** evaluations answered from the supervisor's replay cache (0 without
          a supervisor) — the warm-start discount: replayed proposals cost
          microseconds, so the budget is spent on strictly new candidates *)
}

type research_outcome =
  | Research_won of model_result  (** a feasible winner inside the budget *)
  | Research_infeasible of string
      (** the search completed but found nothing feasible
          ({!No_feasible_model}'s payload) *)
  | Research_budget  (** the deadline passed first *)

val research :
  ?options:options ->
  ?budget_s:float ->
  Platform.t ->
  Model_spec.t ->
  research_outcome * research_stats
(** One budgeted {!search_model} run whose failure modes are data instead of
    exceptions, so an unattended caller (the autopilot) can degrade
    gracefully: on [Research_infeasible] or [Research_budget] the caller
    keeps its incumbent and records the event. [budget_s], when given,
    overrides [options.deadline] with [now + budget_s] ([budget_s <= 0.]
    therefore times out before the first batch — the forced-failure arm).
    Any other exception (including {!Homunculus_resilience.Faultplan.Killed})
    propagates: a simulated crash must look like a crash. *)

val generate : ?options:options -> Platform.t -> Schedule.t -> result
(** The full pipeline: search every distinct model of the schedule (repeated
    specs are searched once and instantiated per occurrence), then fold the
    schedule-level resource verdict. *)

val emit_code : Platform.t -> Homunculus_backends.Model_ir.t -> string
(** Spatial for Taurus/FPGA targets, P4 (+ table entries) for Tofino. *)

(** {2 Policy compilation — many models, one data plane} *)

type policy_result = {
  policy : Homunculus_policy.Policy.t;  (** the normalized policy *)
  tenant_models :
    (Homunculus_policy.Policy.tenant * model_result) list;
      (** per tenant, in tenant order; tenants sharing a spec name share a
          [model_result] (the spec is searched once) *)
  composed : Homunculus_policy.Lower.t;
      (** the one shared pipeline hosting every tenant *)
}

val shared_budget : Platform.t -> int -> Platform.t
(** The per-member search constraint of {!compile_policy}: the platform with
    its spatial resources cut to an [1/n] slice — Tofino table budget split
    evenly after reserving one guard table per tenant, Taurus grid columns
    divided — so [n] independently searched winners plus their guards stand
    a fighting chance of co-residing. Performance targets are left whole:
    every member must sustain line rate on its own. Identity for [n <= 1]
    and for FPGA targets. *)

val compile_policy :
  ?options:options ->
  Platform.t ->
  Homunculus_policy.Policy.t ->
  (policy_result, Homunculus_policy.Lower.error) Stdlib.result
(** Normalize the policy, search each distinct member spec under the
    {!shared_budget} slice of the platform, then lower the full tenant list
    onto the {e whole} platform through
    {!Homunculus_policy.Lower.compose}. [Error] carries the lowering
    rejection (over-subscription, bad guard, ...); search failures raise
    {!No_feasible_model} as usual. @raise Invalid_argument on a policy that
    normalizes to [drop]. *)

type tradeoff_point = {
  artifact : Evaluator.artifact;
  resource_fraction : float;
      (** max over resources of used/available, in [0, 1] for feasible
          points *)
  weight : float;  (** the scalarization weight that produced this point *)
}

val search_tradeoff :
  ?options:options ->
  ?n_scalarizations:int ->
  Platform.t ->
  Model_spec.t ->
  tradeoff_point list
(** Multi-objective search (HyperMapper's random-scalarization mode,
    Paria et al. 2019): run [n_scalarizations] (default 5) searches, each
    maximizing [w * objective - (1 - w) * resource_fraction] for a random
    simplex weight [w], and return the non-dominated feasible artifacts
    sorted by descending objective. Exposes the accuracy-vs-footprint
    trade-off the paper discusses (bigger models score higher but burn more
    CUs/power). @raise No_feasible_model when nothing feasible is found. *)
