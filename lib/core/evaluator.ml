open Homunculus_alchemy
open Homunculus_backends
open Homunculus_ml
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng

type artifact = {
  algorithm : Model_spec.algorithm;
  config : Bo.Config.t;
  model_ir : Model_ir.t;
  verdict : Resource.verdict;
  objective : float;
  pruned : bool;
  epochs_trained : int;
}

(* Process-wide accounting of where exact evaluations spend their time.
   Mutex-guarded (evaluations run on pool workers); kept out of History
   metadata so enabling the counters cannot perturb a search's determinism.
   The [estimates] count is the bench's "exact simulator invocations"
   metric: one per [Platform.estimate] call made on a trained model. *)
module Timing = struct
  type snapshot = {
    evaluations : int;
    estimates : int;
    train_s : float;
    lower_s : float;
    estimate_s : float;
  }

  let lock = Mutex.create ()
  let evaluations = ref 0
  let estimates = ref 0
  let train_s = ref 0.
  let lower_s = ref 0.
  let estimate_s = ref 0.

  let reset () =
    Mutex.lock lock;
    evaluations := 0;
    estimates := 0;
    train_s := 0.;
    lower_s := 0.;
    estimate_s := 0.;
    Mutex.unlock lock

  let snapshot () =
    Mutex.lock lock;
    let s =
      {
        evaluations = !evaluations;
        estimates = !estimates;
        train_s = !train_s;
        lower_s = !lower_s;
        estimate_s = !estimate_s;
      }
    in
    Mutex.unlock lock;
    s

  let charge ~train ~lower ~estimate =
    Mutex.lock lock;
    incr evaluations;
    incr estimates;
    train_s := !train_s +. train;
    lower_s := !lower_s +. lower;
    estimate_s := !estimate_s +. estimate;
    Mutex.unlock lock
end

let metric_value metric ~n_classes ~pred ~truth =
  match metric with
  | Model_spec.F1 ->
      if n_classes = 2 then Metrics.f1 ~pred ~truth ()
      else Metrics.macro_f1 ~n_classes ~pred ~truth
  | Model_spec.Accuracy -> Metrics.accuracy ~pred ~truth
  | Model_spec.V_measure -> Metrics.v_measure ~pred ~truth ()

let train_dnn rng ?prune ?guard config ~train ~test =
  let hidden = Space_builder.hidden_layers_of_config config in
  let lr = Bo.Config.get_float config "learning_rate" in
  let batch_idx = Bo.Config.get_index config "batch_size" in
  let batch_size = int_of_float Space_builder.batch_sizes.(batch_idx) in
  let epochs = Bo.Config.get_int config "epochs" in
  let act_idx = Bo.Config.get_index config "activation" in
  let weight_decay = Bo.Config.get_float config "weight_decay" in
  let lr_decay = [| 0.9; 0.97; 1.0 |].(Bo.Config.get_index config "lr_decay") in
  let hidden_act =
    match act_idx with 0 -> Activation.Relu | _ -> Activation.Tanh
  in
  let input_dim = Dataset.n_features train in
  let mlp =
    Mlp.create rng ~input_dim ~hidden
      ~output_dim:train.Dataset.n_classes ~hidden_act ()
  in
  let fit_set, val_set = Dataset.split rng ~train_frac:0.8 train in
  let train_config =
    {
      Train.default_config with
      Train.epochs;
      batch_size;
      optimizer = Optimizer.adam ~lr ~weight_decay ();
      lr_decay_per_epoch = lr_decay;
    }
  in
  (* Rung pruning: when the candidate's epoch index hits a rung (a fixed
     fraction of its own budget), report the validation metric to the shared
     scheduler and stop if it falls below the threshold frozen for this
     proposal batch. Rungs that coincide with the full budget save nothing
     and are skipped. *)
  let was_pruned = ref false in
  let asha_hook =
    match prune with
    | None -> None
    | Some sched ->
        let rungs = Bo.Asha.rungs_for sched ~budget:epochs in
        Some
          (fun ~epoch ~metric ->
            match metric with
            | None -> `Continue
            | Some m ->
                Array.iteri
                  (fun r rung_epoch ->
                    if rung_epoch = epoch && rung_epoch < epochs then begin
                      Bo.Asha.record sched ~rung:r ~metric:m;
                      match Bo.Asha.decide sched ~rung:r ~metric:m with
                      | `Stop -> was_pruned := true
                      | `Continue -> ()
                    end)
                  rungs;
                if !was_pruned then `Stop else `Continue)
  in
  let on_epoch =
    (* The supervisor's guard runs before the rung scheduler: a diverging
       candidate aborts (by raising) rather than reporting a garbage metric
       to the shared rungs. *)
    match (guard, asha_hook) with
    | None, None -> None
    | guard, asha_hook ->
        Some
          (fun ~epoch ~loss ~metric ->
            (match guard with
            | Some check -> check ~epoch ~loss ~metric
            | None -> ());
            match asha_hook with
            | Some hook -> hook ~epoch ~metric
            | None -> `Continue)
  in
  let history =
    Train.fit rng mlp train_config ~validation:val_set ?on_epoch fit_set
  in
  (match prune with
  | Some sched -> Bo.Asha.note_epochs sched history.Train.epochs_run
  | None -> ());
  let pred = Mlp.predict_all mlp test.Dataset.x in
  (Model_ir.of_mlp ~name:"model" mlp, pred, !was_pruned,
   history.Train.epochs_run)

let train_kmeans rng config ~train ~test =
  let k = Bo.Config.get_int config "k" in
  let km = Kmeans.fit rng ~k ~max_iter:100 ~n_init:8 train.Dataset.x in
  let pred = Kmeans.predict_all km test.Dataset.x in
  (Model_ir.of_kmeans ~name:"model" km, pred)

let train_svm rng config ~train ~test =
  let lambda = Bo.Config.get_float config "lambda" in
  let epochs = Bo.Config.get_int config "epochs" in
  let svm = Svm.fit rng ~lambda ~epochs train in
  let pred = Svm.predict_all svm test.Dataset.x in
  (Model_ir.of_svm ~name:"model" svm, pred)

let train_tree rng config ~train ~test =
  let params =
    {
      Decision_tree.max_depth = Bo.Config.get_int config "max_depth";
      min_samples_leaf = Bo.Config.get_int config "min_samples_leaf";
      m_try = None;
    }
  in
  let tree =
    Decision_tree.Classifier.fit ~rng ~params ~x:train.Dataset.x
      ~y:train.Dataset.y ~n_classes:train.Dataset.n_classes ()
  in
  let pred = Decision_tree.Classifier.predict_all tree test.Dataset.x in
  let ir =
    Model_ir.Tree
      {
        name = "model";
        root = Decision_tree.Classifier.root tree;
        n_features = Dataset.n_features train;
        n_classes = train.Dataset.n_classes;
      }
  in
  (ir, pred)

let evaluate rng ?prune ?guard platform spec algorithm config =
  let data = Model_spec.load spec in
  let scaler, train = Scaler.fit_dataset data.Model_spec.train in
  let test = Scaler.apply_dataset scaler data.Model_spec.test in
  let t0 = Unix.gettimeofday () in
  let model_ir, pred, pruned, epochs_trained =
    match algorithm with
    | Model_spec.Dnn -> train_dnn rng ?prune ?guard config ~train ~test
    | Model_spec.Kmeans ->
        let ir, pred = train_kmeans rng config ~train ~test in
        (ir, pred, false, 0)
    | Model_spec.Svm ->
        let ir, pred = train_svm rng config ~train ~test in
        (ir, pred, false, 0)
    | Model_spec.Tree ->
        let ir, pred = train_tree rng config ~train ~test in
        (ir, pred, false, 0)
  in
  let t1 = Unix.gettimeofday () in
  let model_ir = Model_ir.with_name model_ir (Model_spec.name spec) in
  (* Deployed pipelines parse raw packet features; absorb the training-time
     standardization into the model so the artifact is self-contained. *)
  let model_ir =
    Model_ir.fold_standardization ~mean:(Scaler.mean scaler)
      ~stddev:(Scaler.stddev scaler) model_ir
  in
  let objective =
    metric_value (Model_spec.metric spec) ~n_classes:test.Dataset.n_classes
      ~pred ~truth:test.Dataset.y
  in
  let t2 = Unix.gettimeofday () in
  let verdict = Platform.estimate platform model_ir in
  let t3 = Unix.gettimeofday () in
  Timing.charge ~train:(t1 -. t0) ~lower:(t2 -. t1) ~estimate:(t3 -. t2);
  { algorithm; config; model_ir; verdict; objective; pruned; epochs_trained }

(* A zero-weight model with the candidate's exact shape: everything the
   backend estimators charge for (layer dimensions, centroid/table counts,
   parameter footprints) is determined by the configuration alone, so the
   skeleton's analytic verdict is computable without training anything. For
   trees — whose trained shape is data-dependent — the skeleton is the
   configured upper bound (a full tree at [max_depth], capped), so its
   features bound the real artifact rather than equal it; the learned filter
   absorbs the difference. *)
let skeleton_ir algorithm ~input_dim ~n_classes config =
  match algorithm with
  | Model_spec.Dnn ->
      let hidden = Space_builder.hidden_layers_of_config config in
      let dims =
        Array.concat [ [| input_dim |]; hidden; [| n_classes |] ]
      in
      let act =
        match Bo.Config.get_index config "activation" with
        | 0 -> "relu"
        | _ -> "tanh"
      in
      let layers =
        Array.init
          (Array.length dims - 1)
          (fun i ->
            {
              Model_ir.n_in = dims.(i);
              n_out = dims.(i + 1);
              activation =
                (if i = Array.length dims - 2 then "linear" else act);
              weights = Array.make_matrix dims.(i + 1) dims.(i) 0.;
              biases = Array.make dims.(i + 1) 0.;
            })
      in
      Model_ir.Dnn { name = "candidate"; layers }
  | Model_spec.Kmeans ->
      let k = Bo.Config.get_int config "k" in
      Model_ir.Kmeans
        { name = "candidate"; centroids = Array.make_matrix k input_dim 0. }
  | Model_spec.Svm ->
      Model_ir.Svm
        {
          name = "candidate";
          class_weights = Array.make_matrix n_classes input_dim 0.;
          biases = Array.make n_classes 0.;
        }
  | Model_spec.Tree ->
      let depth = Stdlib.min (Bo.Config.get_int config "max_depth") 12 in
      let rec full d =
        if d = 0 then
          Decision_tree.Leaf { distribution = Array.make n_classes 0. }
        else
          Decision_tree.Split
            { feature = 0; threshold = 0.; left = full (d - 1); right = full (d - 1) }
      in
      Model_ir.Tree
        { name = "candidate"; root = full depth; n_features = input_dim; n_classes }

let features_of_candidate platform algorithm ~input_dim ~n_classes config =
  let ir = skeleton_ir algorithm ~input_dim ~n_classes config in
  let v = Platform.estimate platform ir in
  let perf = Platform.perf platform in
  let usage_features =
    List.concat_map
      (fun u ->
        [
          u.Resource.used;
          u.Resource.available;
          (if u.Resource.available > 0. then u.Resource.used /. u.Resource.available
           else 1.);
        ])
      v.Resource.usages
  in
  Array.of_list
    ([
       float_of_int (Model_ir.param_count ir);
       float_of_int input_dim;
       float_of_int n_classes;
       v.Resource.latency_ns;
       v.Resource.throughput_gpps;
       (if v.Resource.feasible then 1. else 0.);
       perf.Resource.max_latency_ns;
       perf.Resource.min_throughput_gpps;
     ]
    @ usage_features)

let compare_artifacts a b =
  (* Total order: feasible before infeasible, then fully trained before
     pruned (a pruned artifact's objective is a partial-budget metric, not
     comparable with a full run's), then higher objective, then the
     lexicographically smaller configuration. Totality is what makes a
     running maximum independent of evaluation order, which the parallel
     search relies on for determinism. *)
  let fc =
    Bool.compare b.verdict.Resource.feasible a.verdict.Resource.feasible
  in
  if fc <> 0 then fc
  else
    let pc = Bool.compare a.pruned b.pruned in
    if pc <> 0 then pc
    else
      let oc = Float.compare b.objective a.objective in
      if oc <> 0 then oc
      else
        String.compare
          (Bo.Config.to_string a.config)
          (Bo.Config.to_string b.config)

let better_artifact current candidate =
  match current with
  | None -> Some candidate
  | Some best ->
      if compare_artifacts candidate best < 0 then Some candidate else Some best

let to_bo_evaluation artifact =
  let usage_meta =
    List.map
      (fun u -> (u.Resource.resource, u.Resource.used))
      artifact.verdict.Resource.usages
  in
  {
    Bo.Optimizer.objective = artifact.objective;
    feasible = artifact.verdict.Resource.feasible;
    pruned = artifact.pruned;
    metadata =
      [
        ("params", float_of_int (Model_ir.param_count artifact.model_ir));
        ("latency_ns", artifact.verdict.Resource.latency_ns);
        ("throughput_gpps", artifact.verdict.Resource.throughput_gpps);
        ("epochs_trained", float_of_int artifact.epochs_trained);
      ]
      @ usage_meta;
  }
