(** On-disk coordination protocol for the distributed DSE.

    A coordination directory [DIR] is the only channel between the
    coordinator and its workers — no sockets, no shared memory — so a worker
    is just a process (local today, remote over a shared filesystem
    tomorrow) and a dead worker leaves nothing to clean up but files:

    {v
      DIR/tasks/    candidate leases up for grabs (one JSON file each)
      DIR/active/   leases claimed by some worker (claim = atomic rename)
      DIR/workers/  per-worker evaluation journals (worker-<id>.jsonl)
      DIR/coordinator.jsonl   lease/release WAL (accounting + post-mortem)
      DIR/done      marker: the search is over, workers should exit
    v}

    Claiming is [Unix.rename] from [tasks/] to [active/]: atomic on POSIX,
    so exactly one worker wins each task file; losers see [ENOENT] and move
    on. Task filenames sort by candidate index, so workers drain leases in
    proposal order. *)

module Bo = Homunculus_bo

type task = {
  scope : string;  (** search scope, e.g. ["spec-name/dnn"] *)
  index : int;  (** proposal-order candidate index within the scope *)
  config : Bo.Config.t;
  generation : int;
      (** reissue counter: a TTL-expired lease is republished with the next
          generation (and a distinct filename, so a stale claim of the old
          file cannot collide) *)
}

val ensure_dirs : string -> unit
(** Create [DIR] and its subdirectories (idempotent). *)

val tasks_dir : string -> string
val active_dir : string -> string
val workers_dir : string -> string
val coordinator_journal : string -> string
val worker_journal : dir:string -> id:int -> string
val worker_journals : string -> string list
(** Worker journal paths currently present, sorted by filename — the
    deterministic merge order. *)

val task_filename : task -> string
(** Encodes (index, generation, scope); lexicographic order equals
    proposal-index order. *)

val publish : dir:string -> task -> unit
(** Write the task file into [tasks/] via tmp-file + atomic rename, so a
    concurrently listing worker never sees a partial file. *)

val pending : string -> string list
(** Claimable task filenames under [DIR/tasks], sorted (= index order). *)

val claim : dir:string -> string -> task option
(** Atomically move [tasks/name] to [active/name] and parse it. [None] when
    another worker won the race (or the file is unreadable). *)

val release : dir:string -> string -> unit
(** Remove a claimed task file from [active/] (after its evaluation is
    journaled). Missing file is fine. *)

val mark_done : string -> unit
val is_done : string -> bool
