(** The coordinator side of the distributed DSE.

    Plugs into {!Homunculus_bo.Optimizer.maximize_indexed}'s [dispatch]
    hook: each batch of (proposal-index, configuration) pairs is published
    as lease files for worker processes to claim, and the call returns once
    every candidate's evaluation has been read back from the per-worker
    journals — in batch order, so the optimizer's commit loop (and hence
    the {!Homunculus_bo.History.t}) is bit-identical to an inline run.

    Elasticity and fault tolerance come from two rules:

    - a lease not completed within [ttl_s] is republished (next
      generation), so a SIGKILL'd worker costs only its in-flight leases —
      each re-evaluation is bit-identical anyway (config-derived seeds),
      so duplicated completions are unobservable;
    - a lease that expires [max_reissues] times is evaluated inline via
      [local_eval], so the search completes even with zero live workers.

    Reusing a coordination directory is a distributed resume: worker
    journals already present are merged before anything is leased, and
    previously evaluated candidates never leave the coordinator. *)

module Bo = Homunculus_bo

type stats = {
  leases_issued : int;  (** fresh leases published *)
  leases_reissued : int;  (** TTL-expired leases republished *)
  inline_evaluated : int;  (** reissue budget exhausted, ran locally *)
  replay_hits : int;  (** candidates answered from merged journals *)
  merged : int;  (** evaluation records absorbed from worker journals *)
}

type t

val create :
  dir:string ->
  ?ttl_s:float ->
  ?poll_s:float ->
  ?max_reissues:int ->
  local_eval:
    (scope:string -> index:int -> config:Bo.Config.t -> Bo.Optimizer.evaluation) ->
  unit ->
  t
(** Open (creating if needed) the coordination directory. Stale task files
    and any done marker from a previous coordinator are cleared; worker
    journals are kept and merged (distributed resume). Defaults:
    [ttl_s = 30.], [poll_s = 0.05], [max_reissues = 4]. *)

val dispatch : t -> scope:string -> (int * Bo.Config.t) array -> Bo.Optimizer.evaluation array
(** Lease the batch out and block until every evaluation is in, returning
    them in batch order. Pass [fun batch -> dispatch t ~scope batch] as the
    optimizer's [dispatch] hook. *)

val finish : t -> unit
(** Write the done marker (workers drain and exit), sync and close the
    coordinator journal. *)

val stats : t -> stats
