module Bo = Homunculus_bo
module Journal = Homunculus_resilience.Journal

type stats = {
  leases_issued : int;
  leases_reissued : int;
  inline_evaluated : int;
  replay_hits : int;
  merged : int;
}

type t = {
  dir : string;
  ttl_s : float;
  poll_s : float;
  max_reissues : int;
  local_eval :
    scope:string -> index:int -> config:Bo.Config.t -> Bo.Optimizer.evaluation;
  journal : Journal.t;  (** lease/release WAL, accounting only *)
  leases : Lease.t;
  readers : (string, Journal.reader) Hashtbl.t;  (** worker journal tails *)
  results : (string * int, Journal.record) Hashtbl.t;
      (** evaluations read back, keyed by (scope, proposal index) *)
  mutable leases_issued : int;
  mutable leases_reissued : int;
  mutable inline_evaluated : int;
  mutable replay_hits : int;
  mutable merged : int;
}

let clear_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun name ->
        try Unix.unlink (Filename.concat dir name)
        with Unix.Unix_error _ -> ())
      (Sys.readdir dir)

let create ~dir ?(ttl_s = 30.) ?(poll_s = 0.05) ?(max_reissues = 4)
    ~local_eval () =
  if ttl_s <= 0. then invalid_arg "Coordinator.create: ttl_s <= 0";
  if poll_s <= 0. then invalid_arg "Coordinator.create: poll_s <= 0";
  if max_reissues < 0 then invalid_arg "Coordinator.create: max_reissues < 0";
  Protocol.ensure_dirs dir;
  (* Leases from a dead coordinator are promises nobody will keep — clear
     them before workers can claim them. Worker journals stay: everything
     already evaluated is merged below, which is what makes reusing the
     directory a distributed resume. The coordinator starts before its
     workers, so nothing races this sweep. *)
  clear_dir (Protocol.tasks_dir dir);
  clear_dir (Protocol.active_dir dir);
  (try Unix.unlink (Filename.concat dir "done") with Unix.Unix_error _ -> ());
  {
    dir;
    ttl_s;
    poll_s;
    max_reissues;
    local_eval;
    journal = Journal.open_ (Protocol.coordinator_journal dir);
    leases = Lease.create ();
    readers = Hashtbl.create 8;
    results = Hashtbl.create 256;
    leases_issued = 0;
    leases_reissued = 0;
    inline_evaluated = 0;
    replay_hits = 0;
    merged = 0;
  }

let coordination_record ~kind ~scope ~index ~config ~generation =
  {
    Journal.scope;
    index;
    config;
    objective = 0.;
    feasible = false;
    pruned = false;
    metadata = [ ("generation", float_of_int generation) ];
    failure = None;
    kind;
  }

let evaluation_of_record (r : Journal.record) =
  {
    Bo.Optimizer.objective = r.Journal.objective;
    feasible = r.Journal.feasible;
    pruned = r.Journal.pruned;
    metadata = r.Journal.metadata;
  }

(* Absorb everything newly appended to every worker journal. Journals are
   scanned in sorted filename order and each journal in file order, so when
   duplicate completions exist (a reissued lease evaluated twice) the winner
   is fixed — not that it matters for the history: duplicate evaluations of
   one candidate are bit-identical by construction. *)
let absorb t =
  List.iter
    (fun path ->
      let reader =
        match Hashtbl.find_opt t.readers path with
        | Some r -> r
        | None ->
            let r = Journal.reader path in
            Hashtbl.replace t.readers path r;
            r
      in
      List.iter
        (fun (r : Journal.record) ->
          if Journal.is_evaluation r.Journal.kind then begin
            t.merged <- t.merged + 1;
            Hashtbl.replace t.results (r.Journal.scope, r.Journal.index) r;
            if Lease.complete t.leases ~scope:r.Journal.scope ~index:r.Journal.index
            then
              ignore
                (Journal.append t.journal
                   (coordination_record ~kind:Journal.Release
                      ~scope:r.Journal.scope ~index:r.Journal.index
                      ~config:r.Journal.config ~generation:0))
          end)
        (Journal.poll reader))
    (Protocol.worker_journals t.dir)

let result_for t ~scope ~index ~config =
  match Hashtbl.find_opt t.results (scope, index) with
  | Some r when Bo.Config.equal r.Journal.config config ->
      Some (evaluation_of_record r)
  | Some _ | None -> None

let publish_lease t ~scope ~index ~config ~generation =
  Protocol.publish ~dir:t.dir
    { Protocol.scope; index; config; generation };
  ignore
    (Journal.append t.journal
       (coordination_record ~kind:Journal.Lease ~scope ~index ~config
          ~generation))

let dispatch t ~scope batch =
  let n = Array.length batch in
  let out = Array.make n None in
  let pending = ref 0 in
  (* Merge whatever workers (or a previous run) have already journaled,
     then lease only the genuinely new candidates. *)
  absorb t;
  Array.iteri
    (fun i (index, config) ->
      match result_for t ~scope ~index ~config with
      | Some eval ->
          out.(i) <- Some eval;
          t.replay_hits <- t.replay_hits + 1
      | None ->
          incr pending;
          let (_ : Lease.entry) =
            Lease.issue t.leases ~now:(Unix.gettimeofday ()) ~scope ~index
              ~config
          in
          t.leases_issued <- t.leases_issued + 1;
          publish_lease t ~scope ~index ~config ~generation:0)
    batch;
  while !pending > 0 do
    Unix.sleepf t.poll_s;
    absorb t;
    Array.iteri
      (fun i (index, config) ->
        if Option.is_none out.(i) then
          match result_for t ~scope ~index ~config with
          | Some eval ->
              out.(i) <- Some eval;
              decr pending
          | None -> ())
      batch;
    (* Quiet leases: republish (next generation) while the reissue budget
       lasts, then fall back to evaluating inline — the search must finish
       even if every worker is dead, and the inline result is bit-identical
       to what any worker would have produced. *)
    let now = Unix.gettimeofday () in
    List.iter
      (fun (e : Lease.entry) ->
        if e.Lease.reissues >= t.max_reissues then begin
          let eval =
            t.local_eval ~scope:e.Lease.scope ~index:e.Lease.index
              ~config:e.Lease.config
          in
          Hashtbl.replace t.results
            (e.Lease.scope, e.Lease.index)
            {
              Journal.scope = e.Lease.scope;
              index = e.Lease.index;
              config = e.Lease.config;
              objective = eval.Bo.Optimizer.objective;
              feasible = eval.Bo.Optimizer.feasible;
              pruned = eval.Bo.Optimizer.pruned;
              metadata = eval.Bo.Optimizer.metadata;
              failure = None;
              kind = Journal.Exact;
            };
          ignore (Lease.complete t.leases ~scope:e.Lease.scope ~index:e.Lease.index);
          t.inline_evaluated <- t.inline_evaluated + 1
        end
        else begin
          Lease.reissue e ~now;
          t.leases_reissued <- t.leases_reissued + 1;
          publish_lease t ~scope:e.Lease.scope ~index:e.Lease.index
            ~config:e.Lease.config ~generation:e.Lease.generation
        end)
      (Lease.expired t.leases ~now ~ttl_s:t.ttl_s)
  done;
  Array.map Option.get out

let finish t =
  Protocol.mark_done t.dir;
  Journal.close t.journal

let stats t =
  {
    leases_issued = t.leases_issued;
    leases_reissued = t.leases_reissued;
    inline_evaluated = t.inline_evaluated;
    replay_hits = t.replay_hits;
    merged = t.merged;
  }
