module Json = Homunculus_util.Json
module Bo = Homunculus_bo

type task = {
  scope : string;
  index : int;
  config : Bo.Config.t;
  generation : int;
}

let tasks_dir dir = Filename.concat dir "tasks"
let active_dir dir = Filename.concat dir "active"
let workers_dir dir = Filename.concat dir "workers"
let coordinator_journal dir = Filename.concat dir "coordinator.jsonl"
let done_marker dir = Filename.concat dir "done"

let worker_journal ~dir ~id =
  Filename.concat (workers_dir dir) (Printf.sprintf "worker-%03d.jsonl" id)

let mkdir_p path =
  if not (Sys.file_exists path) then
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let ensure_dirs dir =
  mkdir_p dir;
  mkdir_p (tasks_dir dir);
  mkdir_p (active_dir dir);
  mkdir_p (workers_dir dir)

let worker_journals dir =
  let d = workers_dir dir in
  if not (Sys.file_exists d) then []
  else
    Sys.readdir d |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".jsonl")
    |> List.sort String.compare
    |> List.map (Filename.concat d)

(* Index first and zero-padded so that lexicographic filename order is
   proposal-index order — workers drain the task directory smallest-index
   first, matching the inline evaluator's dispatch order. *)
let task_filename t =
  let slug =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      t.scope
  in
  Printf.sprintf "%012d-g%03d-%s.task" t.index t.generation slug

let task_to_json t =
  Json.Object
    [
      ("scope", Json.String t.scope);
      ("index", Json.Number (float_of_int t.index));
      ("generation", Json.Number (float_of_int t.generation));
      ("config", Bo.Serialize.config_to_json_tagged t.config);
    ]

let task_of_json json =
  {
    scope = Json.get_string (Json.member json "scope");
    index = Json.to_int (Json.member json "index");
    generation = Json.to_int (Json.member json "generation");
    config = Bo.Serialize.config_of_json_tagged (Json.member json "config");
  }

(* Publish via tmp file + rename within the tasks directory (same
   filesystem, hence atomic): a worker listing the directory either sees the
   whole task file or none of it. The dot prefix keeps half-written files
   out of [pending]. *)
let publish ~dir t =
  let name = task_filename t in
  let tmp = Filename.concat (tasks_dir dir) ("." ^ name ^ ".tmp") in
  let oc = open_out tmp in
  output_string oc (Json.to_string ~pretty:false (task_to_json t));
  close_out oc;
  Unix.rename tmp (Filename.concat (tasks_dir dir) name)

let pending dir =
  let d = tasks_dir dir in
  if not (Sys.file_exists d) then []
  else
    Sys.readdir d |> Array.to_list
    |> List.filter (fun n -> Filename.check_suffix n ".task")
    |> List.sort String.compare

let claim ~dir name =
  let src = Filename.concat (tasks_dir dir) name in
  let dst = Filename.concat (active_dir dir) name in
  match Unix.rename src dst with
  | () -> (
      let ic = open_in dst in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match task_of_json (Json.of_string text) with
      | t -> Some t
      | exception _ -> None)
  | exception Unix.Unix_error _ -> None

let release ~dir name =
  try Unix.unlink (Filename.concat (active_dir dir) name)
  with Unix.Unix_error _ -> ()

let mark_done dir =
  let path = done_marker dir in
  let oc = open_out path in
  output_string oc "done\n";
  close_out oc

let is_done dir = Sys.file_exists (done_marker dir)
