(** The coordinator's in-memory lease table: which candidate indices are
    out with workers, since when, and how many times each has been
    reissued. Purely bookkeeping — expiry policy (TTL, reissue budget)
    lives in {!Coordinator}; this module just answers "what is
    outstanding and what has gone quiet". *)

module Bo = Homunculus_bo

type entry = {
  scope : string;
  index : int;
  config : Bo.Config.t;
  mutable generation : int;  (** matches the latest published task file *)
  mutable issued_at : float;  (** wall-clock of the latest (re)issue *)
  mutable reissues : int;
}

type t

val create : unit -> t

val issue :
  t -> now:float -> scope:string -> index:int -> config:Bo.Config.t -> entry
(** Register a fresh lease (generation 0). *)

val reissue : entry -> now:float -> unit
(** Bump the generation and reset the expiry clock — call when republishing
    an expired lease's task file. *)

val complete : t -> scope:string -> index:int -> bool
(** Drop the lease; [false] when no such lease was outstanding (a duplicate
    or stale completion — harmless). *)

val expired : t -> now:float -> ttl_s:float -> entry list
(** Outstanding leases whose latest issue is older than [ttl_s], sorted by
    (scope, index) so reissue order is deterministic. *)

val outstanding : t -> int
