module Bo = Homunculus_bo
module Resilience = Homunculus_resilience
module Journal = Resilience.Journal
module Faultplan = Resilience.Faultplan

type stats = { claims : int; evaluated : int }

let run ~dir ~id ~eval ?(poll_s = 0.05) ?fsync_every ?faults () =
  Protocol.ensure_dirs dir;
  let journal = Journal.open_ ?fsync_every (Protocol.worker_journal ~dir ~id) in
  let claims = ref 0 in
  let evaluated = ref 0 in
  Fun.protect
    ~finally:(fun () -> Journal.close journal)
    (fun () ->
      let stop = ref false in
      while not !stop do
        (* Claim the smallest-index task we can win. Losing every race this
           round is not idleness — more tasks may already be visible — so
           only an empty directory consults the done marker or sleeps. *)
        let rec grab = function
          | [] -> None
          | name :: rest -> (
              match Protocol.claim ~dir name with
              | Some task -> Some (name, task)
              | None -> grab rest)
        in
        match Protocol.pending dir with
        | [] -> if Protocol.is_done dir then stop := true else Unix.sleepf poll_s
        | names -> (
            match grab names with
            | None -> ()
            | Some (name, task) ->
                incr claims;
                (* Simulated SIGKILL: die after the claim, before the
                   evaluation — the abandoned lease is what TTL reissue
                   recovers. Measured in claims so the threshold is
                   independent of journal batching. *)
                (match faults with
                | Some plan -> Faultplan.check_kill plan ~records:!claims
                | None -> ());
                let result =
                  eval ~scope:task.Protocol.scope ~index:task.Protocol.index
                    ~config:task.Protocol.config
                in
                ignore
                  (Journal.append journal
                     {
                       Journal.scope = task.Protocol.scope;
                       index = task.Protocol.index;
                       config = task.Protocol.config;
                       objective = result.Bo.Optimizer.objective;
                       feasible = result.Bo.Optimizer.feasible;
                       pruned = result.Bo.Optimizer.pruned;
                       metadata = result.Bo.Optimizer.metadata;
                       failure = None;
                       kind = Journal.Exact;
                     });
                incr evaluated;
                Protocol.release ~dir name)
      done);
  { claims = !claims; evaluated = !evaluated }
