module Bo = Homunculus_bo

type entry = {
  scope : string;
  index : int;
  config : Bo.Config.t;
  mutable generation : int;
  mutable issued_at : float;
  mutable reissues : int;
}

type t = { table : (string * int, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let issue t ~now ~scope ~index ~config =
  let entry =
    { scope; index; config; generation = 0; issued_at = now; reissues = 0 }
  in
  Hashtbl.replace t.table (scope, index) entry;
  entry

let reissue entry ~now =
  entry.generation <- entry.generation + 1;
  entry.reissues <- entry.reissues + 1;
  entry.issued_at <- now

let complete t ~scope ~index =
  if Hashtbl.mem t.table (scope, index) then begin
    Hashtbl.remove t.table (scope, index);
    true
  end
  else false

let expired t ~now ~ttl_s =
  Hashtbl.fold
    (fun _ e acc -> if now -. e.issued_at > ttl_s then e :: acc else acc)
    t.table []
  |> List.sort (fun a b -> compare (a.scope, a.index) (b.scope, b.index))

let outstanding t = Hashtbl.length t.table
