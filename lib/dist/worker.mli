(** The worker side of the distributed DSE: claim leases, evaluate, journal.

    A worker owns one append-only journal ([DIR/workers/worker-<id>.jsonl])
    and appends one [Exact] evaluation record per completed lease — the
    journal {e is} the result channel, so worker crash-safety is exactly
    journal crash-safety (a torn tail line is dropped by the coordinator's
    checksummed reader, the lease times out and is reissued).

    The worker never touches the optimizer: it evaluates whatever candidate
    indices it wins, with config-derived seeds, so any worker (or the
    coordinator itself) produces bit-identical results for the same lease. *)

module Bo = Homunculus_bo
module Resilience = Homunculus_resilience

type stats = {
  claims : int;  (** leases won (includes any abandoned by a fault kill) *)
  evaluated : int;  (** evaluations journaled *)
}

val run :
  dir:string ->
  id:int ->
  eval:
    (scope:string -> index:int -> config:Bo.Config.t -> Bo.Optimizer.evaluation) ->
  ?poll_s:float ->
  ?fsync_every:int ->
  ?faults:Resilience.Faultplan.t ->
  unit ->
  stats
(** Drain leases until the coordinator's done marker appears and no
    claimable task remains. [poll_s] (default 0.05) is the idle sleep;
    [fsync_every] is passed to the journal (group commit).

    [faults] simulates worker death: {!Resilience.Faultplan.check_kill} is
    consulted against the number of {e claims} (not journaled records),
    immediately after a claim succeeds and before its evaluation runs — so
    a [kill@N] plan dies holding an unserved lease, which is precisely the
    case the coordinator's TTL reissue exists for. The journal is flushed
    before {!Resilience.Faultplan.Killed} propagates (records already
    appended were durable anyway; only the in-flight lease is lost). *)
