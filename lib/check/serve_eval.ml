module Runtime = Homunculus_backends.Runtime
module Engine = Homunculus_serve.Engine

type mismatch = {
  index : int;
  epoch : int;
  engine_verdict : int;
  replay_verdict : int;
}

type replay = { replayed : int; mismatches : mismatch list }

let replay_quantized engine =
  let tr = Engine.trace engine in
  let rts = Engine.epoch_runtimes engine in
  if Array.length rts = 0 then
    invalid_arg
      "Serve_eval.replay_quantized: engine holds no runtime (Reference mode?)";
  let wss = Array.map Runtime.make_workspace rts in
  let mismatches = ref [] in
  (* Walk backwards so the mismatch list comes out in service order. *)
  for i = tr.Engine.n - 1 downto 0 do
    let epoch = tr.Engine.epochs.(i) in
    if epoch < 0 || epoch >= Array.length rts then
      invalid_arg "Serve_eval.replay_quantized: trace epoch out of range";
    let rt = rts.(epoch) and ws = wss.(epoch) in
    Runtime.encode_into rt ws tr.Engine.xs.(i);
    let v = Runtime.lookup rt ws in
    if v <> tr.Engine.verdicts.(i) then
      mismatches :=
        {
          index = i;
          epoch;
          engine_verdict = tr.Engine.verdicts.(i);
          replay_verdict = v;
        }
        :: !mismatches
  done;
  { replayed = tr.Engine.n; mismatches = !mismatches }

type agreement = { compared : int; agreed : int; rate : float }

let agreement a b =
  if a.Engine.n <> b.Engine.n then
    invalid_arg "Serve_eval.agreement: traces cover different packet counts";
  let agreed = ref 0 in
  for i = 0 to a.Engine.n - 1 do
    if a.Engine.verdicts.(i) = b.Engine.verdicts.(i) then incr agreed
  done;
  {
    compared = a.Engine.n;
    agreed = !agreed;
    rate =
      (if a.Engine.n = 0 then 1.
       else float_of_int !agreed /. float_of_int a.Engine.n);
  }
