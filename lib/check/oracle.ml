module Model_ir = Homunculus_backends.Model_ir
module Inference = Homunculus_backends.Inference
module Runtime = Homunculus_backends.Runtime
module Spatial = Homunculus_backends.Spatial
module Spatial_ir = Homunculus_backends.Spatial_ir
module P4gen = Homunculus_backends.P4gen
module P4_ir = Homunculus_backends.P4_ir
module Iisy = Homunculus_backends.Iisy
module Ir_io = Homunculus_backends.Ir_io
module Decision_tree = Homunculus_ml.Decision_tree

type backend = Spatial | Mat_runtime | P4

let all_backends = [ Spatial; Mat_runtime; P4 ]

let backend_to_string = function
  | Spatial -> "spatial"
  | Mat_runtime -> "runtime"
  | P4 -> "p4"

let backend_of_string = function
  | "spatial" -> Some Spatial
  | "runtime" -> Some Mat_runtime
  | "p4" -> Some P4
  | _ -> None

let applicable backend model =
  match (backend, model) with
  | (Mat_runtime | P4), Model_ir.Dnn _ -> false
  | _ -> true

let kmeans_agreement_floor = 0.9

type violation = { sample : int; expected : int; got : int; detail : string }

type comparison = {
  backend : backend;
  n_samples : int;
  agreed : int;
  excused : int;
  violations : violation list;
}

(* --- tolerance helpers --------------------------------------------------- *)

(* Reference margin between the winning label and a challenger; the
   challenger index may come from a buggy backend, so guard the bounds. *)
let margin_between scores ~winner ~challenger =
  if challenger < 0 || challenger >= Array.length scores then infinity
  else scores.(winner) -. scores.(challenger)

let top_two_margin scores =
  let winner = Homunculus_util.Stats.argmax scores in
  let second = ref neg_infinity in
  Array.iteri (fun i s -> if i <> winner && s > !second then second := s) scores;
  if !second = neg_infinity then infinity else scores.(winner) -. !second

let near_tie scores =
  let m = top_two_margin scores in
  m <= 1e-6 *. (1. +. Float.abs scores.(Homunculus_util.Stats.argmax scores))

(* Trees: is the sample within [tol_keys] quantization steps (at per-feature
   scale [scales.(f)]) of any split threshold? If not, quantized and exact
   walks take identical paths. *)
let tree_near_split ~scales ~tol_keys root x =
  let rec scan = function
    | Decision_tree.Leaf _ -> false
    | Decision_tree.Split { feature; threshold; left; right } ->
        Float.abs ((x.(feature) -. threshold) *. scales.(feature))
        <= tol_keys +. 1e-9
        || scan left || scan right
  in
  scan root

(* SVMs under the runtime's encoding: keys are round(x * s_f), weights are
   round(w * 65536 / s_f), biases round(b * 65536). Worst-case absolute
   error of one quantized score row, in 65536-score units. *)
let runtime_svm_row_error ~scales w x =
  let acc = ref 0.5 (* bias rounding *) in
  Array.iteri
    (fun f wf ->
      acc :=
        !acc
        +. (0.5 *. Float.abs wf *. 65536. /. scales.(f))
        +. (0.5 *. Float.abs x.(f) *. scales.(f))
        +. 0.25)
    w;
  !acc

(* SVMs under the P4 entries encoding: weights, keys, and biases all use the
   plain 8.8 scale; bias rows are rescaled by 256 at execution. *)
let p4_svm_row_error w x =
  let acc = ref 128. (* bias rounding, scaled by 256 *) in
  Array.iteri
    (fun f wf ->
      acc := !acc +. (128. *. (Float.abs wf +. Float.abs x.(f))) +. 0.25)
    w;
  !acc

let svm_excused ~row_error ~class_weights scores ~winner ~challenger =
  challenger >= 0
  && challenger < Array.length class_weights
  && 65536. *. margin_between scores ~winner ~challenger
     <= row_error class_weights.(winner)
        +. row_error class_weights.(challenger)
        +. 2.

(* --- per-backend comparison --------------------------------------------- *)

let sample_compare ~excused_when case got_of =
  let n = Array.length case.Case.inputs in
  let agreed = ref 0 and excused = ref 0 and violations = ref [] in
  for i = 0 to n - 1 do
    let x = case.Case.inputs.(i) in
    let expected = Inference.predict case.Case.model x in
    let got = got_of x in
    if got = expected then incr agreed
    else
      match excused_when x ~expected ~got with
      | Some _ -> incr excused
      | None ->
          violations :=
            {
              sample = i;
              expected;
              got;
              detail =
                Printf.sprintf "label %d != reference %d on sample %d" got
                  expected i;
            }
            :: !violations
  done;
  (!agreed, !excused, List.rev !violations)

let spatial_excuse model x ~expected:_ ~got:_ =
  let scores = Inference.scores model x in
  if near_tie scores then Some "near-tie"
  else
    match model with
    | Model_ir.Tree { root; _ } ->
        (* Thresholds are printed with %.6f into the Spatial source. *)
        if tree_near_split ~scales:(Array.make (Array.length x) 1.) ~tol_keys:2e-6 root x
        then Some "printed-threshold rounding"
        else None
    | _ -> None

let quantized_excuse ~scales ~svm_error model x ~expected ~got =
  match model with
  | Model_ir.Tree { root; _ } ->
      if tree_near_split ~scales ~tol_keys:1. root x then
        Some "within one key unit of a split"
      else None
  | Model_ir.Svm { class_weights; _ } ->
      let scores = Inference.scores model x in
      if
        svm_excused ~row_error:(svm_error x) ~class_weights scores
          ~winner:expected ~challenger:got
      then Some "margin inside fixed-point error bound"
      else None
  | Model_ir.Kmeans _ | Model_ir.Dnn _ -> None

(* The P4 entries dump stores each cluster as a per-feature key range of
   half-width 65536/(2*entries_per_feature) around the quantized centroid
   (P4gen.emit_entries). A sample whose key falls outside every cluster's
   cell misses all tables and deterministically takes the default class 0 —
   the encoding's designed behavior, not an arithmetic fault — so such
   samples are excused outright instead of counting against the floor. *)
let p4_all_cells_miss ?(entries_per_feature = 64) centroids x =
  let q v = int_of_float (Float.round (v *. 256.)) land 0xFFFF in
  let half = 65536 / (2 * entries_per_feature) in
  let in_cell centroid =
    let ok = ref true in
    Array.iteri
      (fun f coord ->
        let center = q coord in
        let lo = Stdlib.max 0 (center - half)
        and hi = Stdlib.min 65535 (center + half) in
        let key = q x.(f) in
        if key < lo || key > hi then ok := false)
      centroid;
    !ok
  in
  not (Array.exists in_cell centroids)

(* KMeans cells are lossy by design: the rule is an aggregate agreement
   floor over the samples the encoding can represent at all, with
   [miss_excused] filtering out the ones it provably cannot. *)
let kmeans_compare ?(miss_excused = fun _ _ -> false) backend case got_all =
  let expected = Inference.predict_all case.Case.model case.Case.inputs in
  let n = Array.length expected in
  let agreed = ref 0 and excused_misses = ref 0 in
  let first_disagreement = ref None in
  Array.iteri
    (fun i e ->
      if got_all.(i) = e then incr agreed
      else if miss_excused case.Case.inputs.(i) got_all.(i) then
        incr excused_misses
      else if !first_disagreement = None then first_disagreement := Some i)
    expected;
  let counted = n - !excused_misses in
  let rate = float_of_int !agreed /. float_of_int (Stdlib.max 1 counted) in
  if counted = 0 || rate >= kmeans_agreement_floor then
    { backend; n_samples = n; agreed = !agreed; excused = n - !agreed; violations = [] }
  else
    let i = Option.value !first_disagreement ~default:0 in
    {
      backend;
      n_samples = n;
      agreed = !agreed;
      excused = !excused_misses;
      violations =
        [
          {
            sample = i;
            expected = expected.(i);
            got = got_all.(i);
            detail =
              Printf.sprintf "cluster agreement %.3f below floor %.2f" rate
                kmeans_agreement_floor;
          };
        ];
    }

let compare_exn backend case =
  let model = case.Case.model in
  let n = Array.length case.Case.inputs in
  match backend with
  | Spatial ->
      let program = Spatial.program_of model in
      let agreed, excused, violations =
        sample_compare ~excused_when:(spatial_excuse model) case
          (Spatial_eval.predict program)
      in
      { backend; n_samples = n; agreed; excused; violations }
  | Mat_runtime -> (
      let rt = Runtime.load model in
      match model with
      | Model_ir.Kmeans _ ->
          kmeans_compare backend case (Runtime.classify_all rt case.Case.inputs)
      | _ ->
          let scales = Runtime.feature_scales rt in
          let agreed, excused, violations =
            sample_compare
              ~excused_when:
                (quantized_excuse ~scales
                   ~svm_error:(fun x w -> runtime_svm_row_error ~scales w x)
                   model)
              case (Runtime.classify rt)
          in
          { backend; n_samples = n; agreed; excused; violations })
  | P4 -> (
      let pv = P4_eval.load model in
      match model with
      | Model_ir.Kmeans { centroids; _ } ->
          let miss_excused x got = got = 0 && p4_all_cells_miss centroids x in
          kmeans_compare ~miss_excused backend case
            (P4_eval.classify_all pv case.Case.inputs)
      | _ ->
          let scales = Array.make (Model_ir.input_dim model) 256. in
          let agreed, excused, violations =
            sample_compare
              ~excused_when:
                (quantized_excuse ~scales
                   ~svm_error:(fun x w -> p4_svm_row_error w x)
                   model)
              case (P4_eval.classify pv)
          in
          { backend; n_samples = n; agreed; excused; violations })

let compare backend case =
  try compare_exn backend case with
  | Spatial_eval.Unsupported msg ->
      {
        backend;
        n_samples = Array.length case.Case.inputs;
        agreed = 0;
        excused = 0;
        violations =
          [ { sample = -1; expected = -1; got = -1;
              detail = "spatial interpreter rejected the program: " ^ msg } ];
      }
  | P4_eval.Bad_entries msg ->
      {
        backend;
        n_samples = Array.length case.Case.inputs;
        agreed = 0;
        excused = 0;
        violations =
          [ { sample = -1; expected = -1; got = -1;
              detail = "entries dump rejected: " ^ msg } ];
      }
  | Invalid_argument msg ->
      {
        backend;
        n_samples = Array.length case.Case.inputs;
        agreed = 0;
        excused = 0;
        violations =
          [ { sample = -1; expected = -1; got = -1;
              detail = "backend raised Invalid_argument: " ^ msg } ];
      }

let violates backend case = (compare backend case).violations <> []

(* --- backend-independent invariants -------------------------------------- *)

type invariant_failure = { invariant : string; detail : string }

let mat_mappable = function Model_ir.Dnn _ -> false | _ -> true

let check_roundtrip case acc =
  let model = case.Case.model in
  try
    let reloaded = Ir_io.of_json (Ir_io.to_json model) in
    match Model_ir.validate reloaded with
    | Error msg ->
        { invariant = "ir_io-roundtrip"; detail = "reloaded model invalid: " ^ msg }
        :: acc
    | Ok () ->
        let before = Inference.predict_all model case.Case.inputs in
        let after = Inference.predict_all reloaded case.Case.inputs in
        if before = after then acc
        else
          { invariant = "ir_io-roundtrip";
            detail = "reloaded model changes verdicts" }
          :: acc
  with exn ->
    { invariant = "ir_io-roundtrip"; detail = Printexc.to_string exn } :: acc

let check_resource_monotone case acc =
  let model = case.Case.model in
  if not (mat_mappable model) then acc
  else
    try
      let report epf =
        let m = Iisy.map_model ~entries_per_feature:epf model in
        ( List.fold_left (fun t (tbl : Iisy.table) -> t + tbl.Iisy.entries) 0
            m.Iisy.tables,
          Iisy.max_entries m )
      in
      let r32 = report 32 and r64 = report 64 and r128 = report 128 in
      let mono (t1, m1) (t2, m2) = t1 <= t2 && m1 <= m2 in
      if mono r32 r64 && mono r64 r128 then acc
      else
        { invariant = "resource-monotonicity";
          detail = "IIsy entry counts shrink as granularity grows" }
        :: acc
    with exn ->
      { invariant = "resource-monotonicity"; detail = Printexc.to_string exn }
      :: acc

let check_p4_structure case acc =
  let model = case.Case.model in
  if not (mat_mappable model) then acc
  else
    try
      let program = P4gen.program_of model in
      let mapping = Iisy.map_model model in
      let acc =
        if P4_ir.table_count program >= Iisy.n_tables mapping then acc
        else
          { invariant = "p4-table-count";
            detail =
              Printf.sprintf "program declares %d tables, mapping claims %d"
                (P4_ir.table_count program) (Iisy.n_tables mapping) }
          :: acc
      in
      match P4_eval.validate_against program (P4gen.emit_entries model) with
      | Ok () -> acc
      | Error msg -> { invariant = "p4-entries-valid"; detail = msg } :: acc
    with exn ->
      { invariant = "p4-structure"; detail = Printexc.to_string exn } :: acc

let check_spatial_structure case acc =
  try
    let program = Spatial.program_of case.Case.model in
    if
      Spatial_ir.count_statements program > 0
      && String.length (Spatial_ir.print program) > 0
    then acc
    else
      { invariant = "spatial-nonempty"; detail = "emitted program is empty" }
      :: acc
  with exn ->
    { invariant = "spatial-structure"; detail = Printexc.to_string exn } :: acc

let check_invariants case =
  []
  |> check_roundtrip case
  |> check_resource_monotone case
  |> check_p4_structure case
  |> check_spatial_structure case
  |> List.rev
