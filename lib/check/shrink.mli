(** Greedy minimization of a failing case.

    Given a predicate [still_fails] (typically
    [fun c -> Oracle.violates backend c]), repeatedly tries
    strictly-smaller variants of the case — fewer input rows, dropped
    features, removed hidden neurons and square layers, promoted tree
    subtrees, dropped centroids/classes, zeroed or rounded input cells —
    keeping a variant whenever the failure survives, until a full pass
    makes no progress or the predicate-evaluation budget runs out.

    Shrinking preserves the *failure*, not the model's semantics: any
    smaller case on which the predicate still fails is a better
    reproducer. *)

val shrink : ?budget:int -> still_fails:(Case.t -> bool) -> Case.t -> Case.t
(** [budget] caps predicate evaluations (default 400). The input case is
    assumed failing; the result is failing and no larger. *)
