module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json

type options = {
  seed : int;
  trials : int;
  backends : Oracle.backend list;
  families : Gen.family list;
  artifact_dir : string option;
  max_shrink : int;
}

let default_options =
  {
    seed = 42;
    trials = 100;
    backends = Oracle.all_backends;
    families = Gen.all_families;
    artifact_dir = None;
    max_shrink = 400;
  }

type stats = {
  backend : Oracle.backend;
  cases : int;
  samples : int;
  agreed : int;
  excused : int;
  violation_count : int;
}

type failure = {
  trial : int;
  family : Gen.family;
  kind : string;
  failed_backend : Oracle.backend option;
  detail : string;
  case : Case.t;
  artifact : string option;
}

type report = {
  run_seed : int;
  run_trials : int;
  stats : stats list;
  failures : failure list;
}

(* --- artifact persistence ------------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let artifact_json ~options ~(failure : failure) =
  Json.Object
    [
      ("kind", Json.String failure.kind);
      ( "backend",
        match failure.failed_backend with
        | Some b -> Json.String (Oracle.backend_to_string b)
        | None -> Json.Null );
      ("trial", Json.Number (float_of_int failure.trial));
      ("family", Json.String (Gen.family_to_string failure.family));
      ("seed", Json.Number (float_of_int options.seed));
      ("detail", Json.String failure.detail);
      ("case", Case.to_json failure.case);
    ]

let persist options failure =
  match options.artifact_dir with
  | None -> failure
  | Some dir ->
      mkdir_p dir;
      let tag =
        match failure.failed_backend with
        | Some b -> Oracle.backend_to_string b
        | None -> "invariant"
      in
      let path = Filename.concat dir (Printf.sprintf "violation_t%03d_%s.json" failure.trial tag) in
      let oc = open_out path in
      output_string oc (Json.to_string (artifact_json ~options ~failure));
      output_char oc '\n';
      close_out oc;
      { failure with artifact = Some path }

(* --- the run loop ---------------------------------------------------------- *)

type acc = {
  mutable a_cases : int;
  mutable a_samples : int;
  mutable a_agreed : int;
  mutable a_excused : int;
  mutable a_violations : int;
}

let first_violation_detail (c : Oracle.comparison) =
  match c.Oracle.violations with
  | [] -> "no violations"
  | v :: _ ->
      Printf.sprintf "sample %d: expected %d, got %d (%s)" v.Oracle.sample
        v.Oracle.expected v.Oracle.got v.Oracle.detail

let run options =
  let master = Rng.create options.seed in
  let accs =
    List.map
      (fun b ->
        (b, { a_cases = 0; a_samples = 0; a_agreed = 0; a_excused = 0; a_violations = 0 }))
      options.backends
  in
  let failures = ref [] in
  let n_fams = Stdlib.max 1 (List.length options.families) in
  for trial = 0 to options.trials - 1 do
    let rng = Rng.split master in
    let family = List.nth options.families (trial mod n_fams) in
    let case = Gen.case rng family in
    (* Backend-independent invariants first. *)
    List.iter
      (fun (inv : Oracle.invariant_failure) ->
        let still_fails c =
          List.exists
            (fun (f : Oracle.invariant_failure) -> f.Oracle.invariant = inv.Oracle.invariant)
            (Oracle.check_invariants c)
        in
        let shrunk = Shrink.shrink ~budget:options.max_shrink ~still_fails case in
        let failure =
          {
            trial;
            family;
            kind = "invariant";
            failed_backend = None;
            detail = Printf.sprintf "%s: %s" inv.Oracle.invariant inv.Oracle.detail;
            case = shrunk;
            artifact = None;
          }
        in
        failures := persist options failure :: !failures)
      (Oracle.check_invariants case);
    (* Differential comparisons. *)
    List.iter
      (fun (backend, acc) ->
        if Oracle.applicable backend case.Case.model then begin
          let cmp = Oracle.compare backend case in
          acc.a_cases <- acc.a_cases + 1;
          acc.a_samples <- acc.a_samples + cmp.Oracle.n_samples;
          acc.a_agreed <- acc.a_agreed + cmp.Oracle.agreed;
          acc.a_excused <- acc.a_excused + cmp.Oracle.excused;
          acc.a_violations <- acc.a_violations + List.length cmp.Oracle.violations;
          if cmp.Oracle.violations <> [] then begin
            let shrunk =
              Shrink.shrink ~budget:options.max_shrink
                ~still_fails:(Oracle.violates backend) case
            in
            let shrunk_cmp = Oracle.compare backend shrunk in
            let failure =
              {
                trial;
                family;
                kind = "divergence";
                failed_backend = Some backend;
                detail = first_violation_detail shrunk_cmp;
                case = shrunk;
                artifact = None;
              }
            in
            failures := persist options failure :: !failures
          end
        end)
      accs
  done;
  let stats =
    List.map
      (fun (backend, acc) ->
        {
          backend;
          cases = acc.a_cases;
          samples = acc.a_samples;
          agreed = acc.a_agreed;
          excused = acc.a_excused;
          violation_count = acc.a_violations;
        })
      accs
  in
  {
    run_seed = options.seed;
    run_trials = options.trials;
    stats;
    failures = List.rev !failures;
  }

let ok report = report.failures = []

(* --- rendering ------------------------------------------------------------- *)

let render report =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "conformance: seed=%d trials=%d\n" report.run_seed
    report.run_trials;
  Printf.bprintf buf "  %-12s %6s %8s %8s %8s %10s\n" "backend" "cases"
    "samples" "agreed" "excused" "violations";
  List.iter
    (fun s ->
      Printf.bprintf buf "  %-12s %6d %8d %8d %8d %10d\n"
        (Oracle.backend_to_string s.backend)
        s.cases s.samples s.agreed s.excused s.violation_count)
    report.stats;
  if report.failures = [] then Buffer.add_string buf "result: PASS\n"
  else begin
    Printf.bprintf buf "result: FAIL (%d failure%s)\n"
      (List.length report.failures)
      (if List.length report.failures = 1 then "" else "s");
    List.iter
      (fun f ->
        Printf.bprintf buf "  trial %d (%s) %s%s: %s\n" f.trial
          (Gen.family_to_string f.family)
          f.kind
          (match f.failed_backend with
          | Some b -> " on " ^ Oracle.backend_to_string b
          | None -> "")
          f.detail;
        Printf.bprintf buf "    shrunk to %d input row%s, size %d%s\n"
          (Case.n_inputs f.case)
          (if Case.n_inputs f.case = 1 then "" else "s")
          (Case.size f.case)
          (match f.artifact with
          | Some p -> Printf.sprintf " -> %s" p
          | None -> ""))
      report.failures
  end;
  Buffer.contents buf

(* --- replay ---------------------------------------------------------------- *)

type replay_outcome = {
  replay_case : Case.t;
  comparisons : Oracle.comparison list;
  invariant_failures : Oracle.invariant_failure list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay ~path =
  let doc = Json.of_string (read_file path) in
  let case_doc = Option.value (Json.member_opt doc "case") ~default:doc in
  let case = Case.of_json case_doc in
  let backends =
    match Json.member_opt doc "backend" with
    | Some (Json.String s) -> (
        match Oracle.backend_of_string s with
        | Some b -> [ b ]
        | None -> invalid_arg (Printf.sprintf "unknown backend %S in artifact" s))
    | _ -> Oracle.all_backends
  in
  let comparisons =
    backends
    |> List.filter (fun b -> Oracle.applicable b case.Case.model)
    |> List.map (fun b -> Oracle.compare b case)
  in
  { replay_case = case; comparisons; invariant_failures = Oracle.check_invariants case }

let replay_ok outcome =
  outcome.invariant_failures = []
  && List.for_all (fun c -> c.Oracle.violations = []) outcome.comparisons

let render_replay outcome =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "replay: %d input row%s, size %d\n"
    (Case.n_inputs outcome.replay_case)
    (if Case.n_inputs outcome.replay_case = 1 then "" else "s")
    (Case.size outcome.replay_case);
  List.iter
    (fun (c : Oracle.comparison) ->
      Printf.bprintf buf "  %-12s agreed %d/%d excused %d violations %d\n"
        (Oracle.backend_to_string c.Oracle.backend)
        c.Oracle.agreed c.Oracle.n_samples c.Oracle.excused
        (List.length c.Oracle.violations);
      List.iter
        (fun (v : Oracle.violation) ->
          Printf.bprintf buf "    sample %d: expected %d, got %d (%s)\n"
            v.Oracle.sample v.Oracle.expected v.Oracle.got v.Oracle.detail)
        c.Oracle.violations)
    outcome.comparisons;
  List.iter
    (fun (f : Oracle.invariant_failure) ->
      Printf.bprintf buf "  invariant %s: %s\n" f.Oracle.invariant f.Oracle.detail)
    outcome.invariant_failures;
  Buffer.add_string buf
    (if replay_ok outcome then "result: PASS\n" else "result: FAIL\n");
  Buffer.contents buf
