module Spatial_ir = Homunculus_backends.Spatial_ir
module Spatial = Homunculus_backends.Spatial
module Mathx = Homunculus_util.Mathx

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type env = {
  scalars : (string, float) Hashtbl.t;
  arrays : (string, float array) Hashtbl.t;
  luts : (string, float array array) Hashtbl.t;
  input : float array;
  mutable verdict : int option;
}

(* Literals like "0.to[T]", "-0.123456.to[T]", "3.to[T]" appear as [Var]s in
   the emitted templates. *)
let to_t_literal name =
  let suffix = ".to[T]" in
  let n = String.length name and s = String.length suffix in
  if n > s && String.sub name (n - s) s = suffix then
    float_of_string_opt (String.sub name 0 (n - s))
  else None

let index_of v = Float.to_int v

let rec eval env = function
  | Spatial_ir.Const v -> v
  | Spatial_ir.Int_const v -> float_of_int v
  | Spatial_ir.Var name -> (
      match to_t_literal name with
      | Some v -> v
      | None -> (
          match Hashtbl.find_opt env.scalars name with
          | Some v -> v
          | None -> unsupported "unbound variable %s" name))
  | Spatial_ir.Index { base; indices } -> (
      let idx = List.map (fun e -> index_of (eval env e)) indices in
      match (Hashtbl.find_opt env.luts base, idx) with
      | Some lut, [ r; c ] -> lut.(r).(c)
      | Some lut, [ c ] when Array.length lut = 1 -> lut.(0).(c)
      | Some _, _ -> unsupported "LUT %s indexed with wrong arity" base
      | None, [ i ] -> (
          match Hashtbl.find_opt env.arrays base with
          | Some arr -> arr.(i)
          | None -> unsupported "unknown memory %s" base)
      | None, _ -> unsupported "unknown memory %s" base)
  | Spatial_ir.Binop { op; lhs; rhs } -> (
      let l = eval env lhs and r = eval env rhs in
      match op with
      | "+" -> l +. r
      | "-" -> l -. r
      | "*" -> l *. r
      | "<=" -> if l <= r then 1. else 0.
      | other -> unsupported "operator %s" other)
  | Spatial_ir.Call { fn; args } -> (
      match (fn, args) with
      | "max", [ a; b ] ->
          let a = eval env a and b = eval env b in
          if a >= b then a else b
      | "sigmoid", [ a ] -> Mathx.sigmoid (eval env a)
      | "tanh_approx", [ a ] -> tanh (eval env a)
      | "mux", [ c; t; f ] -> if eval env c <> 0. then eval env t else eval env f
      | other, _ -> unsupported "call %s" other)

let argbest cmp arr =
  if Array.length arr = 0 then unsupported "argmax/argmin of empty buffer";
  let best = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if cmp arr.(i) arr.(!best) then best := i
  done;
  !best

let find_array env name =
  match Hashtbl.find_opt env.arrays name with
  | Some arr -> arr
  | None -> unsupported "unknown buffer %s" name

(* The host-interface escape hatches the templates use:
     loadFeatures(packetIn, BUF)
     writeClass(argmax(BUF), packetOut)
     writeClass(argmin(BUF), packetOut)
     writeClass(VAR, packetOut) *)
let exec_raw env text =
  let text = String.trim text in
  let strip ~prefix ~suffix s =
    let pl = String.length prefix and sl = String.length suffix in
    let n = String.length s in
    if n >= pl + sl && String.sub s 0 pl = prefix && String.sub s (n - sl) sl = suffix
    then Some (String.sub s pl (n - pl - sl))
    else None
  in
  match strip ~prefix:"loadFeatures(packetIn, " ~suffix:")" text with
  | Some buf ->
      let arr = find_array env (String.trim buf) in
      if Array.length arr <> Array.length env.input then
        invalid_arg "Spatial_eval: input does not match the feature buffer";
      Array.blit env.input 0 arr 0 (Array.length arr)
  | None -> (
      match strip ~prefix:"writeClass(" ~suffix:", packetOut)" text with
      | Some arg -> (
          let arg = String.trim arg in
          match
            ( strip ~prefix:"argmax(" ~suffix:")" arg,
              strip ~prefix:"argmin(" ~suffix:")" arg )
          with
          | Some buf, _ ->
              env.verdict <- Some (argbest ( > ) (find_array env (String.trim buf)))
          | None, Some buf ->
              env.verdict <- Some (argbest ( < ) (find_array env (String.trim buf)))
          | None, None -> (
              match Hashtbl.find_opt env.scalars arg with
              | Some v -> env.verdict <- Some (index_of v)
              | None -> unsupported "writeClass of unknown value %s" arg))
      | None -> unsupported "raw statement %S" text)

let rec exec env = function
  | Spatial_ir.Comment _ -> ()
  | Spatial_ir.Val { name; value } ->
      Hashtbl.replace env.scalars name (eval env value)
  | Spatial_ir.Assign { target = Index { base; indices = [ i ] }; value } ->
      let arr = find_array env base in
      arr.(index_of (eval env i)) <- eval env value
  | Spatial_ir.Assign _ -> unsupported "assignment to a non-buffer target"
  | Spatial_ir.Foreach { var; bound; body; _ } ->
      for i = 0 to bound - 1 do
        Hashtbl.replace env.scalars var (float_of_int i);
        List.iter (exec env) body
      done;
      Hashtbl.remove env.scalars var
  | Spatial_ir.Reduce { target; var; bound; body; combine; _ } ->
      if combine <> "+" then unsupported "reduce combinator %s" combine;
      let acc = ref 0. in
      for i = 0 to bound - 1 do
        Hashtbl.replace env.scalars var (float_of_int i);
        acc := !acc +. eval env body
      done;
      Hashtbl.remove env.scalars var;
      Hashtbl.replace env.scalars target !acc
  | Spatial_ir.Pipe body | Spatial_ir.Stream_loop body ->
      List.iter (exec env) body
  | Spatial_ir.Sram_alloc { name; size; _ } ->
      Hashtbl.replace env.arrays name (Array.make size 0.)
  | Spatial_ir.Lut_decl { name; values; _ } ->
      Hashtbl.replace env.luts name values
  | Spatial_ir.Raw text -> exec_raw env text

let predict (program : Spatial_ir.program) input =
  let env =
    {
      scalars = Hashtbl.create 16;
      arrays = Hashtbl.create 8;
      luts = Hashtbl.create 8;
      input;
      verdict = None;
    }
  in
  List.iter (exec env) program.Spatial_ir.decls;
  List.iter (exec env) program.Spatial_ir.accel;
  match env.verdict with
  | Some c -> c
  | None -> unsupported "program never executed writeClass"

let predict_all program inputs = Array.map (predict program) inputs

let predict_model model input = predict (Spatial.program_of model) input
