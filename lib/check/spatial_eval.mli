(** An interpreter for the {!Homunculus_backends.Spatial_ir} programs the
    Taurus backend emits — the "what would the FPGA pipeline compute"
    oracle of the conformance harness.

    Where {!Homunculus_backends.Inference} evaluates the model IR (what the
    model means), this module evaluates the *generated program*: LUT
    declarations, SRAM buffers, Foreach/Reduce loops, mux trees, and the
    host-interface [Raw] statements ([loadFeatures] / [writeClass]). A
    divergence between the two means the template composition in
    {!Homunculus_backends.Spatial} broke the model's semantics.

    Arithmetic is evaluated in double precision — the idealized FixPt type;
    the oracle's near-tie tolerance absorbs the summation-order difference
    against the reference interpreter. *)

module Spatial_ir = Homunculus_backends.Spatial_ir

exception Unsupported of string
(** A construct the interpreter does not model (an unknown [Raw] form,
    operator, or call); programs built by
    {!Homunculus_backends.Spatial.program_of} never raise it. *)

val predict : Spatial_ir.program -> float array -> int
(** Run one feature vector through the program's streaming body and return
    the class [writeClass] reports. @raise Invalid_argument when the input
    does not match the program's feature buffer, @raise Unsupported on
    constructs outside the emitted template language. *)

val predict_all : Spatial_ir.program -> float array array -> int array

val predict_model : Homunculus_backends.Model_ir.t -> float array -> int
(** [predict (Spatial.program_of model)] — the full generate-then-interpret
    path. *)
