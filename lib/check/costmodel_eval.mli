(** Differential oracle for the learned cost-model pre-filter.

    The filter's contract ({!Homunculus_bo.Cost_model}) promises that
    skipping "clearly infeasible" candidates never changes what the search
    ultimately delivers. This module checks that promise empirically: it
    drives the same seeded search twice — once exact, once through the
    filter — then re-evaluates {e every} skipped candidate exactly and
    counts how often the filter was wrong, and whether any of its mistakes
    could have mattered.

    Tolerance rule: mispredictions are expected (the filter is a learned
    model; the margin band exists because its boundary is fuzzy) — but a
    {e feasible-winner veto} is a contract violation: a skipped candidate
    that turns out both feasible and better than the filtered search's
    winner means the filter discarded the artifact the user should have
    received. A healthy corpus reports [feasible_winner_vetoes = 0] and
    [winner_matched = true]. *)

module Bo = Homunculus_bo

type winner = { config : Bo.Config.t; objective : float }

type report = {
  evaluated : int;  (** history length of each run (identical budgets) *)
  skipped : int;  (** candidates the filter committed as predicted *)
  exact_refiltered : int;  (** skipped candidates re-evaluated post hoc *)
  mispredicted_feasible : int;
      (** skipped candidates that are in fact feasible (non-pruned) *)
  feasible_winner_vetoes : int;
      (** mispredicted-feasible candidates whose exact objective beats the
          filtered run's winner — the violation class; must be 0 *)
  winner_matched : bool;
      (** same winning config, bit-identical objective, both runs *)
  exact_winner : winner option;
  filtered_winner : winner option;
  stats : Bo.Cost_model.stats;
}

val run :
  seed:int ->
  ?settings:Bo.Optimizer.settings ->
  ?cost_settings:Bo.Cost_model.settings ->
  space:Bo.Design_space.t ->
  features:(Bo.Config.t -> float array) ->
  eval:(Bo.Config.t -> Bo.Optimizer.evaluation) ->
  unit ->
  report
(** Replay one search corpus through both paths. [eval] must be a
    deterministic function of the configuration (evaluation caches are fine;
    hidden state is not) — the exact arm and the post-hoc re-evaluation of
    skipped candidates rely on it measuring the same thing twice. Runs
    sequentially on the calling domain. *)

val summary : report -> string
(** One-line human rendering, stable across runs with the same report. *)
