module Lower = Homunculus_policy.Lower
module Pred = Homunculus_policy.Pred
module Inference = Homunculus_backends.Inference

type decision = { tenant : string; cls : int option }

let feature_index (t : Lower.t) =
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace idx f i) t.Lower.features;
  idx

(* Run one sample through every tenant in order, with [matches] deciding
   whether a tenant's guard fires given the atom lookup of the moment. *)
let eval_sample (t : Lower.t) idx ~matches vec =
  if Array.length vec < Array.length t.Lower.features then
    invalid_arg "Compose_eval: vector narrower than the union schema";
  let decided = Hashtbl.create 8 in
  let lookup = function
    | Pred.Field f -> (
        match Hashtbl.find_opt idx f with
        | Some i -> Some vec.(i)
        | None -> None)
    | Pred.Class u -> (
        match Hashtbl.find_opt decided u with
        | Some (Some c) -> Some (float_of_int c)
        | Some None | None -> None)
  in
  List.map
    (fun (tn : Lower.tenant) ->
      let cls =
        if matches tn ~lookup then begin
          let projected = Array.map (fun j -> vec.(j)) tn.Lower.proj in
          Some (Inference.predict tn.Lower.model projected)
        end
        else None
      in
      Hashtbl.replace decided tn.Lower.id cls;
      { tenant = tn.Lower.id; cls })
    t.Lower.tenants

let reference t vecs =
  let idx = feature_index t in
  let matches (tn : Lower.tenant) ~lookup =
    Pred.eval tn.Lower.pred ~lookup
  in
  Array.map (eval_sample t idx ~matches) vecs

let decisions t vecs =
  let idx = feature_index t in
  let matches (tn : Lower.tenant) ~lookup =
    match tn.Lower.clauses with
    | None -> true
    | Some cs -> List.exists (Pred.clause_matches ~lookup) cs
  in
  Array.map (eval_sample t idx ~matches) vecs

type violation = {
  sample : int;
  v_tenant : string;
  expected : int option;
  got : int option;
}

let check t vecs =
  let expected = reference t vecs and got = decisions t vecs in
  let violations = ref [] in
  Array.iteri
    (fun i exp ->
      List.iter2
        (fun (e : decision) (g : decision) ->
          if e.cls <> g.cls then
            violations :=
              { sample = i; v_tenant = e.tenant; expected = e.cls; got = g.cls }
              :: !violations)
        exp got.(i))
    expected;
  List.rev !violations

module Rng = Homunculus_util.Rng

let corpus rng ~features ~n sources =
  if n <= 0 then invalid_arg "Compose_eval.corpus: n <= 0";
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i f -> Hashtbl.replace idx f i) features;
  let sources =
    List.map
      (fun (schema, rows) ->
        if Array.length rows = 0 then
          invalid_arg "Compose_eval.corpus: empty source";
        (Array.map (Hashtbl.find_opt idx) schema, rows))
      sources
  in
  Array.init n (fun _ ->
      let vec = Array.make (Array.length features) 0. in
      List.iter
        (fun (slots, rows) ->
          let row = rows.(Rng.int rng (Array.length rows)) in
          Array.iteri
            (fun j slot ->
              match slot with Some i -> vec.(i) <- row.(j) | None -> ())
            slots)
        sources;
      vec)

let violation_to_string v =
  let cls = function None -> "no-match" | Some c -> string_of_int c in
  Printf.sprintf "sample %d tenant %s: reference=%s pipeline=%s" v.sample
    v.v_tenant (cls v.expected) (cls v.got)
