module Model_ir = Homunculus_backends.Model_ir
module P4_ir = Homunculus_backends.P4_ir
module P4gen = Homunculus_backends.P4gen
module Range_match = Homunculus_backends.Range_match

exception Bad_entries of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_entries s)) fmt

(* The same 8.8 key encoding as P4gen.quantize; decode restores the sign the
   16-bit wraparound discarded. *)
let quantize v = int_of_float (Float.round (v *. 256.)) land 0xFFFF

let signed16 v = if v land 0x8000 <> 0 then v - 65536 else v

type tree_tables = {
  splits : (int * int, int * int) Hashtbl.t;
      (** (level, idx) -> (feature, signed quantized threshold) *)
  leaf_class : (int * int, int) Hashtbl.t;  (** (level, idx) -> class *)
}

type pipeline =
  | Kmeans_entries of {
      n_clusters : int;
      rows : (int * int, Range_match.ternary list) Hashtbl.t;
          (** (cluster, feature) -> TCAM rows *)
    }
  | Svm_entries of {
      n_classes : int;
      weights : (int * int, int) Hashtbl.t;  (** (class, feature) -> w *)
      biases : (int, int) Hashtbl.t;
    }
  | Tree_entries of tree_tables

type t = { pipeline : pipeline; n_features : int }

(* --- parsing ------------------------------------------------------------ *)

let split_ws line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* Table names look like "<model>_cluster3"; model names may themselves
   contain underscores, so match on the last role marker. *)
let role_index ~marker table =
  let ml = String.length marker in
  let tl = String.length table in
  let rec find i best =
    if i + ml > tl then best
    else if String.sub table i ml = marker then find (i + 1) (Some i)
    else find (i + 1) best
  in
  match find 0 None with
  | None -> None
  | Some i -> int_of_string_opt (String.sub table (i + ml) (tl - i - ml))

let has_suffix ~suffix s =
  let sl = String.length suffix and n = String.length s in
  n >= sl && String.sub s (n - sl) sl = suffix

let parse_ternary bits =
  let width = String.length bits in
  let value = ref 0 and mask = ref 0 in
  String.iteri
    (fun i c ->
      let bit = 1 lsl (width - 1 - i) in
      match c with
      | '0' -> mask := !mask lor bit
      | '1' ->
          mask := !mask lor bit;
          value := !value lor bit
      | '*' -> ()
      | _ -> bad "bad ternary pattern %s" bits)
    bits;
  { Range_match.value = !value; mask = !mask }

type raw_entry =
  | Cluster_row of { cluster : int; feature : int; row : Range_match.ternary }
  | Svm_weight of { cls : int; feature : int; weight : int }
  | Svm_bias of { cls : int; bias : int }
  | Tree_split of { level : int; idx : int; feature : int; threshold : int }
  | Tree_leaf of { cls : int; idx : int }

let parse_line line =
  match split_ws line with
  | [] -> None
  | first :: _ when String.length first > 0 && first.[0] = '#' -> None
  | [ "table_add"; table; "set_class"; cls; "=>"; feat; "ternary"; bits ] -> (
      match role_index ~marker:"_cluster" table with
      | Some cluster ->
          let feature =
            match
              if String.length feat > 1 && feat.[0] = 'f' then
                int_of_string_opt (String.sub feat 1 (String.length feat - 1))
              else None
            with
            | Some f -> f
            | None -> bad "bad feature tag %s" feat
          in
          ignore cls;
          Some (Cluster_row { cluster; feature; row = parse_ternary bits })
      | None -> bad "unrecognized ternary row for table %s" table)
  | [ "table_add"; table; "set_vote"; cls; "=>"; "weight"; w ] -> (
      match (role_index ~marker:"_feature" table, int_of_string_opt cls,
             int_of_string_opt w)
      with
      | Some feature, Some cls, Some weight ->
          Some (Svm_weight { cls; feature; weight = signed16 weight })
      | _ -> bad "bad SVM weight row: %s" line)
  | [ "table_add"; table; "set_class"; cls; "=>"; "bias"; b ]
    when has_suffix ~suffix:"_decision" table -> (
      match (int_of_string_opt cls, int_of_string_opt b) with
      | Some cls, Some bias -> Some (Svm_bias { cls; bias = signed16 bias })
      | _ -> bad "bad SVM bias row: %s" line)
  | [ "table_add"; table; "set_vote"; idx; "=>"; "feature"; f; "le"; q ] -> (
      match (role_index ~marker:"_level" table, int_of_string_opt idx,
             int_of_string_opt f, int_of_string_opt q)
      with
      | Some level, Some idx, Some feature, Some threshold ->
          Some (Tree_split { level; idx; feature; threshold = signed16 threshold })
      | _ -> bad "bad tree split row: %s" line)
  | [ "table_add"; table; "set_class"; cls; "=>"; "leaf"; idx ]
    when has_suffix ~suffix:"_leaves" table -> (
      match (int_of_string_opt cls, int_of_string_opt idx) with
      | Some cls, Some idx -> Some (Tree_leaf { cls; idx })
      | _ -> bad "bad tree leaf row: %s" line)
  | _ -> bad "unrecognized entry line: %s" line

(* The leaf table keys rows by per-level index only, which is ambiguous when
   leaves at different depths share an index value. The emission order is
   the tree's preorder walk, so replaying that walk over the (unambiguous)
   split entries pairs every leaf entry with its true (level, idx)
   position. *)
let resolve_leaves splits leaves =
  let table = Hashtbl.create 16 in
  let remaining = ref leaves in
  let rec walk level idx =
    if Hashtbl.mem splits (level, idx) then begin
      walk (level + 1) (2 * idx);
      walk (level + 1) ((2 * idx) + 1)
    end
    else
      match !remaining with
      | [] -> bad "entries declare fewer leaves than the splits imply"
      | (cls, leaf_idx) :: rest ->
          if leaf_idx <> idx then
            bad "leaf emission order broken: expected idx %d, got %d" idx
              leaf_idx;
          Hashtbl.replace table (level, idx) cls;
          remaining := rest
  in
  (* Split entries are emitted preorder too; an empty split table means the
     whole tree is a single leaf at the root. *)
  walk 0 0;
  if !remaining <> [] then bad "entries declare more leaves than the splits imply";
  table

let of_entries ~n_features text =
  let entries =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" then None else parse_line l)
  in
  if entries = [] then bad "empty entries dump";
  let pipeline =
    match entries with
    | [] -> bad "empty entries dump"
    | Cluster_row _ :: _ ->
        let rows = Hashtbl.create 64 in
        let n_clusters = ref 0 in
        List.iter
          (function
            | Cluster_row { cluster; feature; row } ->
                if cluster + 1 > !n_clusters then n_clusters := cluster + 1;
                let key = (cluster, feature) in
                let prev =
                  Option.value (Hashtbl.find_opt rows key) ~default:[]
                in
                Hashtbl.replace rows key (prev @ [ row ])
            | _ -> bad "mixed entry families in one dump")
          entries;
        Kmeans_entries { n_clusters = !n_clusters; rows }
    | (Svm_weight _ | Svm_bias _) :: _ ->
        let weights = Hashtbl.create 64 and biases = Hashtbl.create 8 in
        let n_classes = ref 0 in
        List.iter
          (function
            | Svm_weight { cls; feature; weight } ->
                if cls + 1 > !n_classes then n_classes := cls + 1;
                Hashtbl.replace weights (cls, feature) weight
            | Svm_bias { cls; bias } ->
                if cls + 1 > !n_classes then n_classes := cls + 1;
                Hashtbl.replace biases cls bias
            | _ -> bad "mixed entry families in one dump")
          entries;
        Svm_entries { n_classes = !n_classes; weights; biases }
    | (Tree_split _ | Tree_leaf _) :: _ ->
        let splits = Hashtbl.create 32 in
        let leaves = ref [] in
        List.iter
          (function
            | Tree_split { level; idx; feature; threshold } ->
                Hashtbl.replace splits (level, idx) (feature, threshold)
            | Tree_leaf { cls; idx } -> leaves := (cls, idx) :: !leaves
            | _ -> bad "mixed entry families in one dump")
          entries;
        let leaf_class = resolve_leaves splits (List.rev !leaves) in
        Tree_entries { splits; leaf_class }
  in
  { pipeline; n_features }

let load ?entries_per_feature model =
  let text = P4gen.emit_entries ?entries_per_feature model in
  of_entries ~n_features:(Model_ir.input_dim model) text

(* --- execution ----------------------------------------------------------- *)

let check_input t x =
  if Array.length x <> t.n_features then
    invalid_arg "P4_eval.classify: feature dimension mismatch"

let classify t x =
  check_input t x;
  let keys = Array.map quantize x in
  match t.pipeline with
  | Kmeans_entries { n_clusters; rows } ->
      (* Cluster tables apply in declaration order; each hit overwrites
         meta.class_result, so the last matching cluster wins. A full miss
         leaves the zero-initialized metadata: class 0. *)
      let verdict = ref 0 in
      for c = 0 to n_clusters - 1 do
        let hit = ref true in
        for f = 0 to t.n_features - 1 do
          match Hashtbl.find_opt rows (c, f) with
          | None -> hit := false
          | Some ternaries ->
              if
                not
                  (List.exists
                     (fun row -> Range_match.matches row keys.(f))
                     ternaries)
              then hit := false
        done;
        if !hit then verdict := c
      done;
      !verdict
  | Svm_entries { n_classes; weights; biases } ->
      let skeys = Array.map signed16 keys in
      let score c =
        let acc = ref (256 * Option.value (Hashtbl.find_opt biases c) ~default:0) in
        for f = 0 to t.n_features - 1 do
          match Hashtbl.find_opt weights (c, f) with
          | Some w -> acc := !acc + (w * skeys.(f))
          | None -> () (* zero weights are not emitted *)
        done;
        !acc
      in
      let best = ref 0 and best_score = ref min_int in
      for c = 0 to n_classes - 1 do
        let s = score c in
        if s > !best_score then begin
          best := c;
          best_score := s
        end
      done;
      !best
  | Tree_entries { splits; leaf_class } ->
      let skeys = Array.map signed16 keys in
      let rec walk level idx =
        match Hashtbl.find_opt splits (level, idx) with
        | Some (feature, threshold) ->
            if skeys.(feature) <= threshold then walk (level + 1) (2 * idx)
            else walk (level + 1) ((2 * idx) + 1)
        | None -> (
            match Hashtbl.find_opt leaf_class (level, idx) with
            | Some cls -> cls
            | None -> bad "walk reached position (%d, %d) with no entry" level idx)
      in
      walk 0 0

let classify_all t xs = Array.map (classify t) xs

(* --- structural validation ---------------------------------------------- *)

let validate_against (program : P4_ir.program) text =
  let tables =
    List.map
      (fun tbl -> (tbl.P4_ir.table_name, tbl.P4_ir.action_refs))
      program.P4_ir.ingress.P4_ir.tables
  in
  let check_line line =
    match split_ws line with
    | [] -> Ok ()
    | first :: _ when String.length first > 0 && first.[0] = '#' -> Ok ()
    | "table_add" :: table :: action :: _ -> (
        match List.assoc_opt table tables with
        | None -> Error (Printf.sprintf "entry targets undeclared table %s" table)
        | Some actions ->
            if List.mem action actions then Ok ()
            else
              Error
                (Printf.sprintf "table %s does not offer action %s" table action))
    | _ -> Error (Printf.sprintf "unparseable entry line: %s" line)
  in
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> List.fold_left
       (fun acc line -> match acc with Error _ -> acc | Ok () -> check_line line)
       (Ok ())
