module Json = Homunculus_util.Json
module Model_ir = Homunculus_backends.Model_ir
module Ir_io = Homunculus_backends.Ir_io

type t = { model : Model_ir.t; inputs : float array array }

let n_inputs t = Array.length t.inputs

let cell_penalty v =
  if v = 0. then 0 else if Float.is_integer v then 1 else 2

let size t =
  let cells =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc v -> acc + 1 + cell_penalty v) acc row)
      0 t.inputs
  in
  Model_ir.param_count t.model + cells

(* Hexadecimal float literals, like Ir_io, so artifacts replay bit-exactly. *)
let float_to_json v = Json.String (Printf.sprintf "%h" v)

let float_of_json = function
  | Json.String s -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg ("Case: bad float literal " ^ s))
  | Json.Number v -> v
  | Json.Null | Json.Bool _ | Json.List _ | Json.Object _ ->
      invalid_arg "Case: expected a float"

let to_json t =
  Json.Object
    [
      ("model", Ir_io.to_json t.model);
      ( "inputs",
        Json.List
          (Array.to_list
             (Array.map
                (fun row ->
                  Json.List (Array.to_list (Array.map float_to_json row)))
                t.inputs)) );
    ]

let of_json j =
  let model = Ir_io.of_json (Json.member j "model") in
  let inputs =
    Json.to_list (Json.member j "inputs")
    |> List.map (fun row ->
           Array.of_list (List.map float_of_json (Json.to_list row)))
    |> Array.of_list
  in
  let dim = Model_ir.input_dim model in
  Array.iter
    (fun row ->
      if Array.length row <> dim then
        invalid_arg "Case.of_json: input row does not match the model dimension")
    inputs;
  { model; inputs }
