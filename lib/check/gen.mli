(** Seeded generators for random conformance cases.

    Each family produces a model whose parameters and inputs stay inside the
    numeric envelope the quantized deployment paths can represent (16-bit
    keys at the 8.8 fixed-point scale saturate beyond |x| = 128), so every
    cross-backend disagreement the oracle reports is a semantic divergence,
    not an encoding overflow the generator provoked on purpose. KMeans
    cases use non-negative, well-separated centroids because the P4 entries
    dump stores cluster cells as unsigned TCAM ranges. *)

type family = Mlp | Tree | Forest | Svm | Kmeans

val all_families : family list
val family_to_string : family -> string
val family_of_string : string -> family option

val family_of_model : Homunculus_backends.Model_ir.t -> family
(** The generator family a model would belong to ([Forest] reports as
    [Tree]: forest cases are fitted bagged trees). *)

val case : Homunculus_util.Rng.t -> family -> Case.t
(** One random (model, input batch) pair. [Mlp] draws random shapes and
    hidden activations; [Tree] builds random split structures; [Forest]
    fits a bagged CART tree on synthetic blob data (realistic fitted
    thresholds, as opposed to [Tree]'s structural randomness); [Svm] draws
    Gaussian class weights; [Kmeans] places separated centroids and samples
    inputs around them. *)
