(** The differential oracle: push one case through a deployment path and
    compare its verdicts against the floating-point reference
    ({!Homunculus_backends.Inference}) under explicit tolerance rules.

    Tolerance rules, per backend:

    - {b Spatial} (all model families): labels must agree exactly. A
      disagreement is excused only when the reference's top-two scores are
      within a relative [1e-6] near-tie (the interpreter and the reference
      sum dot products in different orders), or — for trees — when the
      sample sits within [2e-6] of a split threshold (the Spatial template
      prints thresholds with [%.6f]).
    - {b Mat_runtime} / {b P4} trees: quantization moves every threshold
      and key by at most half a step, so a disagreement is excused only
      when some split of the tree lies within one key unit of the sample;
      a sample that clears every threshold by more than one key unit must
      take the identical path.
    - {b Mat_runtime} / {b P4} SVMs: a disagreement is excused only when
      the reference margin between the two labels is inside the summed
      worst-case fixed-point rounding error of both score rows; a margin
      beyond that bound can only flip if the backend's arithmetic is wrong.
    - {b Mat_runtime} / {b P4} KMeans: cluster cells are a lossy encoding
      of Voronoi regions by design, so the rule is aggregate: batch
      agreement must reach {!kmeans_agreement_floor}. Disagreements under a
      passing rate count as excused. On the P4 path, a sample whose key
      falls outside {e every} cluster's cell provably misses all tables and
      takes the default class 0 — that is the encoding's designed behavior,
      so such samples are excused outright and excluded from the floor's
      denominator.

    Every rule is sound: a reported violation cannot be caused by rounding
    a correct implementation is allowed to do. *)

module Model_ir = Homunculus_backends.Model_ir

type backend = Spatial | Mat_runtime | P4

val all_backends : backend list
val backend_to_string : backend -> string
val backend_of_string : string -> backend option

val applicable : backend -> Model_ir.t -> bool
(** MAT paths (runtime, P4) reject DNNs; Spatial takes every family. *)

val kmeans_agreement_floor : float

type violation = {
  sample : int;  (** index into the case's inputs; [-1] for batch-level *)
  expected : int;
  got : int;
  detail : string;
}

type comparison = {
  backend : backend;
  n_samples : int;
  agreed : int;
  excused : int;
  violations : violation list;
}

val compare : backend -> Case.t -> comparison
(** Backend-level failures (an interpreter rejection, a malformed entries
    dump) are reported as a batch-level violation rather than raised. *)

val violates : backend -> Case.t -> bool
(** [compare] has a non-empty violation list — the shrinker's predicate. *)

type invariant_failure = { invariant : string; detail : string }

val check_invariants : Case.t -> invariant_failure list
(** Backend-independent invariants of one case: {!Homunculus_backends.Ir_io}
    round-trips preserve verdicts bit-exactly and still validate; the IIsy
    resource report grows monotonically with quantization granularity; the
    P4 program declares at least the tables the resource mapping claims;
    the entries dump only targets declared tables; the Spatial program is
    non-trivial. *)
