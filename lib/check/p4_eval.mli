(** An executor for the MAT backend's control-plane entry dumps — the "what
    would the switch compute" oracle of the conformance harness.

    {!Homunculus_backends.P4gen} splits its output like a real deployment:
    the P4 program ({!Homunculus_backends.P4_ir}) declares tables, and
    [emit_entries] dumps the rows the control plane would install. This
    module parses that dump back and executes it with match-action
    semantics: 8.8 fixed-point keys, ternary TCAM rows for cluster cells,
    per-feature vote accumulation for SVMs, level-indexed branch tables for
    trees (the leaf table is disambiguated by replaying the preorder
    emission of the splits), and last-hit-wins apply ordering — exactly the
    pipeline {!Homunculus_backends.P4_ir.program} applies tables in.

    A divergence against {!Homunculus_backends.Inference} beyond the
    oracle's quantization tolerance means the entry computation (not just
    the program skeleton) broke the model's semantics. *)

module Model_ir = Homunculus_backends.Model_ir
module P4_ir = Homunculus_backends.P4_ir

exception Bad_entries of string
(** The dump does not parse, or its rows are inconsistent with the table
    structure (e.g. a leaf row with no matching tree position). *)

type t

val load : ?entries_per_feature:int -> Model_ir.t -> t
(** Emit the model's entries with
    {!Homunculus_backends.P4gen.emit_entries} and parse them back.
    @raise Invalid_argument for DNNs (they do not map to MATs). *)

val of_entries : n_features:int -> string -> t
(** Parse a raw entries dump (family is inferred from the table names).
    @raise Bad_entries when it cannot be interpreted. *)

val classify : t -> float array -> int
(** Execute the match-action pipeline for one feature vector. KMeans
    pipelines report class 0 when no cluster cell matches (the zero-valued
    metadata default a v1model switch would leave in place). *)

val classify_all : t -> float array array -> int array

val validate_against : P4_ir.program -> string -> (unit, string) result
(** Every [table_add] row in the dump must reference a table declared by
    the program, with an action that table actually offers. *)
