(** Differential oracle for composed pipelines ({!Homunculus_policy.Lower}).

    Two executable semantics of one composition:

    - {!reference} — the specification: each tenant's guard is the predicate
      itself ({!Homunculus_policy.Pred.eval}) and its model is the
      standalone trained model applied to the tenant's own feature slice.
    - {!decisions} — the data plane: each tenant's guard is its compiled
      guard {e table} (DNF clause matching, exactly what the lowered
      match-action entries hold) and its model reads the shared union
      feature vector through the tenant's projection.

    A composition is correct when the two bit-match on every sample: same
    set of tenants fire, same class from each. {!check} reports every
    disagreement; the [homc compose] CLI and the CI smoke job exit non-zero
    on any violation. *)

module Lower = Homunculus_policy.Lower

type decision = {
  tenant : string;
  cls : int option;  (** [None] when the tenant's guard did not match *)
}

val reference : Lower.t -> float array array -> decision list array
(** Specification semantics, one decision list (in tenant order) per union
    feature vector. Downstream guards observe upstream decisions of the
    same semantics. @raise Invalid_argument on vectors narrower than the
    union schema. *)

val decisions : Lower.t -> float array array -> decision list array
(** Data-plane semantics: guard tables + shared-pipeline projections. *)

type violation = {
  sample : int;
  v_tenant : string;
  expected : int option;
  got : int option;
}

val check : Lower.t -> float array array -> violation list
(** [[]] iff {!reference} and {!decisions} agree bit-exactly everywhere. *)

val violation_to_string : violation -> string

val corpus :
  Homunculus_util.Rng.t ->
  features:string array ->
  n:int ->
  (string array * float array array) list ->
  float array array
(** [corpus rng ~features ~n sources] synthesizes [n] union-schema vectors
    by drawing, per vector, one random row from every [(schema, rows)]
    source and scattering its values into the union slots — so each sample
    carries realistic marginals for every tenant's feature slice at once.
    Later sources win overlapping names. Unsourced union slots stay 0.
    @raise Invalid_argument on an empty source or [n <= 0]. *)
