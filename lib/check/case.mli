(** A differential-testing case: one trained model plus the input batch it is
    checked on. Cases are what the generators produce, what the oracle
    compares across backends, what the shrinker minimizes, and what failure
    artifacts persist to disk. *)

module Json = Homunculus_util.Json
module Model_ir = Homunculus_backends.Model_ir

type t = { model : Model_ir.t; inputs : float array array }

val n_inputs : t -> int

val size : t -> int
(** Shrinking order: parameter count plus total input cells plus a small
    penalty per non-zero, non-integral input value. Every shrink step must
    strictly decrease this. *)

val to_json : t -> Json.t
(** Model via {!Homunculus_backends.Ir_io.to_json}; inputs as hexadecimal
    float literals, so a persisted case replays bit-exactly. *)

val of_json : Json.t -> t
(** @raise Invalid_argument on malformed documents or when the inputs do not
    match the model's input dimension. *)
