(** Differential oracle for the serving engine's quantized hot path.

    The engine's steady-state drain classifies through preallocated
    {!Homunculus_backends.Runtime} workspaces; this module re-derives every
    traced verdict from first principles — a fresh
    [encode_into] + [lookup] against the table generation (epoch) that
    served the packet — and demands {e exact} equality. Unlike
    {!Oracle}'s quantization-tolerance rules, there is no excusable gap
    here: both sides run the same fixed-point semantics, so any mismatch
    is a bug in the drain's buffer reuse, batching, or swap atomicity.

    Tolerance rule: none. Verdicts must be bit-identical packet-for-packet,
    including packets served across a mid-trace hot-swap (the trace's epoch
    stamp selects the matching entry of {!Engine.epoch_runtimes}). *)

type mismatch = {
  index : int;  (** position in the engine's service-order trace *)
  epoch : int;  (** table generation that served the packet *)
  engine_verdict : int;
  replay_verdict : int;
}

type replay = {
  replayed : int;  (** traced packets re-derived *)
  mismatches : mismatch list;  (** service order; empty = bit-identical *)
}

val replay_quantized : Homunculus_serve.Engine.t -> replay
(** Replay the engine's recorded trace through pure
    {!Homunculus_backends.Runtime.encode_into} +
    {!Homunculus_backends.Runtime.lookup} on fresh workspaces, one per
    epoch, and collect every verdict disagreement. Run it after the
    serving run completes (the trace and the epoch table are final); the
    replay shares the engine's runtime values, so KMeans
    {!Homunculus_backends.Runtime.miss_count} accounting advances.
    @raise Invalid_argument on a Reference-mode engine or a trace whose
    epoch stamps do not match the engine's swap history. *)

type agreement = {
  compared : int;
  agreed : int;
  rate : float;  (** [1.] on an empty trace *)
}

val agreement :
  Homunculus_serve.Engine.trace -> Homunculus_serve.Engine.trace -> agreement
(** Packet-for-packet verdict agreement between two traces of the same
    event stream (e.g. Reference vs Quantized mode) — the
    quantization-fidelity readout of a serving run. @raise
    Invalid_argument when the traces cover different packet counts. *)
