module Model_ir = Homunculus_backends.Model_ir
module Decision_tree = Homunculus_ml.Decision_tree

(* --- structural transformations ------------------------------------------ *)

let drop_col m f =
  Array.map
    (fun row -> Array.init (Array.length row - 1) (fun j -> if j < f then row.(j) else row.(j + 1)))
    m

let drop_row m k =
  Array.init (Array.length m - 1) (fun i -> if i < k then m.(i) else m.(i + 1))

let rec tree_uses_feature f = function
  | Decision_tree.Leaf _ -> false
  | Decision_tree.Split { feature; left; right; _ } ->
      feature = f || tree_uses_feature f left || tree_uses_feature f right

let rec tree_remap_features f = function
  | Decision_tree.Leaf _ as leaf -> leaf
  | Decision_tree.Split { feature; threshold; left; right } ->
      Decision_tree.Split
        {
          feature = (if feature > f then feature - 1 else feature);
          threshold;
          left = tree_remap_features f left;
          right = tree_remap_features f right;
        }

(* Drop input feature [f] from the model; None when the model cannot lose
   that feature (last one, or a tree that still tests it). *)
let drop_feature_model model f =
  match model with
  | Model_ir.Dnn { name; layers } when Model_ir.input_dim model > 1 ->
      let layers = Array.copy layers in
      let l0 = layers.(0) in
      layers.(0) <-
        { l0 with Model_ir.n_in = l0.Model_ir.n_in - 1;
          weights = drop_col l0.Model_ir.weights f };
      Some (Model_ir.Dnn { name; layers })
  | Model_ir.Dnn _ -> None
  | Model_ir.Svm { name; class_weights; biases } when Model_ir.input_dim model > 1
    ->
      Some
        (Model_ir.Svm { name; class_weights = drop_col class_weights f; biases })
  | Model_ir.Svm _ -> None
  | Model_ir.Kmeans { name; centroids } when Model_ir.input_dim model > 1 ->
      Some (Model_ir.Kmeans { name; centroids = drop_col centroids f })
  | Model_ir.Kmeans _ -> None
  | Model_ir.Tree { name; root; n_features; n_classes } ->
      if n_features <= 1 || tree_uses_feature f root then None
      else
        Some
          (Model_ir.Tree
             { name; root = tree_remap_features f root; n_features = n_features - 1;
               n_classes })

let drop_feature case f =
  match drop_feature_model case.Case.model f with
  | None -> None
  | Some model ->
      Some { Case.model; inputs = Array.map (fun row -> (drop_col [| row |] f).(0)) case.Case.inputs }

(* Remove hidden neuron [k] of layer [i]: its output row and the next
   layer's matching input column. *)
let drop_neuron case i k =
  match case.Case.model with
  | Model_ir.Dnn { name; layers }
    when i < Array.length layers - 1 && layers.(i).Model_ir.n_out > 1 ->
      let layers = Array.copy layers in
      let li = layers.(i) and ln = layers.(i + 1) in
      layers.(i) <-
        { li with Model_ir.n_out = li.Model_ir.n_out - 1;
          weights = drop_row li.Model_ir.weights k;
          biases = (drop_col [| li.Model_ir.biases |] k).(0) };
      layers.(i + 1) <-
        { ln with Model_ir.n_in = ln.Model_ir.n_in - 1;
          weights = drop_col ln.Model_ir.weights k };
      Some { case with Case.model = Model_ir.Dnn { name; layers } }
  | _ -> None

(* Delete hidden layer [i] entirely; only legal when it is square (its
   removal keeps the layer chain consistent). *)
let drop_layer case i =
  match case.Case.model with
  | Model_ir.Dnn { name; layers }
    when Array.length layers > 1
         && i < Array.length layers - 1
         && layers.(i).Model_ir.n_in = layers.(i).Model_ir.n_out ->
      let layers =
        Array.init
          (Array.length layers - 1)
          (fun j -> if j < i then layers.(j) else layers.(j + 1))
      in
      Some { case with Case.model = Model_ir.Dnn { name; layers } }
  | _ -> None

(* Promote a child over a split node; [path] is the list of branch choices
   (false = left) leading to the node. *)
let rec promote_at root path ~right =
  match (root, path) with
  | Decision_tree.Split { left; right = r; _ }, [] ->
      Some (if right then r else left)
  | Decision_tree.Split { feature; threshold; left; right = r }, b :: rest ->
      if b then
        Option.map
          (fun r' -> Decision_tree.Split { feature; threshold; left; right = r' })
          (promote_at r rest ~right)
      else
        Option.map
          (fun l' -> Decision_tree.Split { feature; threshold; left = l'; right = r })
          (promote_at left rest ~right)
  | Decision_tree.Leaf _, _ -> None

let split_paths root =
  let acc = ref [] in
  let rec walk node path =
    match node with
    | Decision_tree.Leaf _ -> ()
    | Decision_tree.Split { left; right; _ } ->
        acc := List.rev path :: !acc;
        walk left (false :: path);
        walk right (true :: path)
  in
  walk root [];
  List.rev !acc

let promote_subtree case path ~right =
  match case.Case.model with
  | Model_ir.Tree { name; root; n_features; n_classes } ->
      Option.map
        (fun root ->
          { case with
            Case.model = Model_ir.Tree { name; root; n_features; n_classes } })
        (promote_at root path ~right)
  | _ -> None

let drop_centroid case c =
  match case.Case.model with
  | Model_ir.Kmeans { name; centroids } when Array.length centroids > 1 ->
      Some
        { case with
          Case.model = Model_ir.Kmeans { name; centroids = drop_row centroids c } }
  | _ -> None

let drop_class case c =
  match case.Case.model with
  | Model_ir.Svm { name; class_weights; biases } when Array.length class_weights > 2
    ->
      Some
        { case with
          Case.model =
            Model_ir.Svm
              { name; class_weights = drop_row class_weights c;
                biases = (drop_col [| biases |] c).(0) } }
  | _ -> None

let keep_rows case idx =
  { case with Case.inputs = Array.map (fun i -> case.Case.inputs.(i)) idx }

let set_cell case i f v =
  let inputs = Array.map Array.copy case.Case.inputs in
  inputs.(i).(f) <- v;
  { case with Case.inputs = inputs }

(* --- candidate enumeration ----------------------------------------------- *)

(* Ordered so the biggest wins come first: fewer rows, then a smaller
   model, then simpler values. *)
let candidates case =
  let n = Array.length case.Case.inputs in
  let dim = Model_ir.input_dim case.Case.model in
  let rows =
    if n <= 1 then []
    else
      (* Single rows first (the usual fixpoint), then halves. *)
      List.init (Stdlib.min n 12) (fun i -> keep_rows case [| i |])
      @ [
          keep_rows case (Array.init (n / 2) (fun i -> i));
          keep_rows case (Array.init (n - (n / 2)) (fun i -> (n / 2) + i));
        ]
  in
  let features =
    List.init dim (fun f -> drop_feature case f) |> List.filter_map Fun.id
  in
  let model_shrinks =
    match case.Case.model with
    | Model_ir.Dnn { layers; _ } ->
        let layer_drops =
          List.init (Array.length layers) (fun i -> drop_layer case i)
        in
        let neuron_drops =
          List.concat
            (List.init
               (Array.length layers - 1)
               (fun i ->
                 List.init
                   (Stdlib.min layers.(i).Model_ir.n_out 8)
                   (fun k -> drop_neuron case i k)))
        in
        List.filter_map Fun.id (layer_drops @ neuron_drops)
    | Model_ir.Tree { root; _ } ->
        split_paths root
        |> List.concat_map (fun path ->
               [ promote_subtree case path ~right:false;
                 promote_subtree case path ~right:true ])
        |> List.filter_map Fun.id
    | Model_ir.Kmeans { centroids; _ } ->
        List.init (Array.length centroids) (fun c -> drop_centroid case c)
        |> List.filter_map Fun.id
    | Model_ir.Svm { class_weights; _ } ->
        List.init (Array.length class_weights) (fun c -> drop_class case c)
        |> List.filter_map Fun.id
  in
  let cell_simplify =
    if n * dim > 64 then []
    else
      List.concat
        (List.init n (fun i ->
             List.concat
               (List.init dim (fun f ->
                    let v = case.Case.inputs.(i).(f) in
                    let rounded = Float.round v in
                    (if v <> 0. then [ set_cell case i f 0. ] else [])
                    @
                    if v <> rounded then [ set_cell case i f rounded ] else []))))
  in
  rows @ features @ model_shrinks @ cell_simplify

(* --- greedy loop ---------------------------------------------------------- *)

let shrink ?(budget = 400) ~still_fails case =
  let calls = ref 0 in
  let fails c =
    if !calls >= budget then false
    else begin
      incr calls;
      try still_fails c with _ -> false
    end
  in
  let current = ref case in
  let progress = ref true in
  while !progress && !calls < budget do
    progress := false;
    let rec try_candidates = function
      | [] -> ()
      | candidate :: rest ->
          if Case.size candidate < Case.size !current && fails candidate then begin
            current := candidate;
            progress := true
          end
          else try_candidates rest
    in
    try_candidates (candidates !current)
  done;
  !current
