module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng

type winner = { config : Bo.Config.t; objective : float }

type report = {
  evaluated : int;
  skipped : int;
  exact_refiltered : int;
  mispredicted_feasible : int;
  feasible_winner_vetoes : int;
  winner_matched : bool;
  exact_winner : winner option;
  filtered_winner : winner option;
  stats : Bo.Cost_model.stats;
}

let winner_of_history history =
  Option.map
    (fun (e : Bo.History.entry) ->
      { config = e.Bo.History.config; objective = e.Bo.History.objective })
    (Bo.History.best history)

let run ~seed ?settings ?cost_settings ~space ~features ~eval () =
  (* Exact arm: the reference corpus. *)
  let exact_history =
    Bo.Optimizer.maximize (Rng.create seed) ?settings space ~f:eval
  in
  (* Filtered arm: same seed, same settings, judged by a freshly warmed
     filter. The observation feed mirrors the compiler's wiring: every
     committed entry except the filter's own predicted skips trains it. *)
  let cm = Bo.Cost_model.create ?settings:cost_settings ~seed ~features () in
  let on_iteration (_ : int) (e : Bo.History.entry) =
    if not (Bo.Cost_model.is_predicted e.Bo.History.metadata) then
      Bo.Cost_model.observe cm ~config:e.Bo.History.config
        ~objective:e.Bo.History.objective ~feasible:e.Bo.History.feasible
        ~pruned:e.Bo.History.pruned
  in
  let filtered_history =
    Bo.Optimizer.maximize (Rng.create seed) ?settings ~on_iteration
      ~prefilter:(Bo.Cost_model.prefilter cm) space ~f:eval
  in
  let exact_winner = winner_of_history exact_history in
  let filtered_winner = winner_of_history filtered_history in
  (* Post-hoc audit: evaluate every skipped candidate exactly. A skip that
     turns out feasible is a misprediction; a misprediction that also beats
     the filtered run's winner is the violation the contract forbids. *)
  let skipped = Bo.Cost_model.skipped_configs cm in
  let mispredicted = ref 0 and vetoes = ref 0 in
  List.iter
    (fun config ->
      let (e : Bo.Optimizer.evaluation) = eval config in
      if e.Bo.Optimizer.feasible && not e.Bo.Optimizer.pruned then begin
        incr mispredicted;
        let beats_winner =
          match filtered_winner with
          | None -> true
          | Some w -> e.Bo.Optimizer.objective > w.objective
        in
        if beats_winner then incr vetoes
      end)
    skipped;
  let winner_matched =
    match (exact_winner, filtered_winner) with
    | None, None -> true
    | Some a, Some b ->
        Bo.Config.equal a.config b.config
        && Int64.bits_of_float a.objective = Int64.bits_of_float b.objective
    | Some _, None | None, Some _ -> false
  in
  {
    evaluated = Bo.History.length exact_history;
    skipped = List.length skipped;
    exact_refiltered = List.length skipped;
    mispredicted_feasible = !mispredicted;
    feasible_winner_vetoes = !vetoes;
    winner_matched;
    exact_winner;
    filtered_winner;
    stats = Bo.Cost_model.stats cm;
  }

let summary r =
  Printf.sprintf
    "%d evaluated, %d skipped (%d re-checked): %d mispredicted-feasible, %d \
     feasible-winner vetoes, winner %s"
    r.evaluated r.skipped r.exact_refiltered r.mispredicted_feasible
    r.feasible_winner_vetoes
    (if r.winner_matched then "matched" else "DIVERGED")
