module Rng = Homunculus_util.Rng
module Model_ir = Homunculus_backends.Model_ir
module Decision_tree = Homunculus_ml.Decision_tree

type family = Mlp | Tree | Forest | Svm | Kmeans

let all_families = [ Mlp; Tree; Forest; Svm; Kmeans ]

let family_to_string = function
  | Mlp -> "mlp"
  | Tree -> "tree"
  | Forest -> "forest"
  | Svm -> "svm"
  | Kmeans -> "kmeans"

let family_of_string = function
  | "mlp" -> Some Mlp
  | "tree" -> Some Tree
  | "forest" -> Some Forest
  | "svm" -> Some Svm
  | "kmeans" -> Some Kmeans
  | _ -> None

let family_of_model = function
  | Model_ir.Dnn _ -> Mlp
  | Model_ir.Tree _ -> Tree
  | Model_ir.Svm _ -> Svm
  | Model_ir.Kmeans _ -> Kmeans

let batch rng ~n ~dim ~lo ~hi =
  Array.init n (fun _ -> Array.init dim (fun _ -> Rng.uniform rng lo hi))

let batch_size rng = 16 + Rng.int rng 25 (* 16..40 inputs per case *)

(* MLP: random shapes and hidden activations; Glorot-ish weight magnitudes
   keep pre-activations in a range where sigmoid/tanh are not all saturated. *)

let activations = [| "relu"; "sigmoid"; "tanh"; "linear" |]

let gen_mlp rng =
  let input_dim = 1 + Rng.int rng 8 in
  let n_hidden = Rng.int rng 3 in
  let n_classes = 2 + Rng.int rng 3 in
  let dims =
    Array.concat
      [
        [| input_dim |];
        Array.init n_hidden (fun _ -> 1 + Rng.int rng 8);
        [| n_classes |];
      ]
  in
  let layers =
    Array.init
      (Array.length dims - 1)
      (fun i ->
        let n_in = dims.(i) and n_out = dims.(i + 1) in
        let sigma = 1. /. sqrt (float_of_int n_in) in
        {
          Model_ir.n_in;
          n_out;
          activation =
            (if i = Array.length dims - 2 then "linear"
             else Rng.choice rng activations);
          weights =
            Array.init n_out (fun _ ->
                Array.init n_in (fun _ -> Rng.gaussian rng ~sigma ()));
          biases = Array.init n_out (fun _ -> Rng.gaussian rng ~sigma:0.3 ());
        })
  in
  let model = Model_ir.Dnn { name = "m"; layers } in
  let inputs = batch rng ~n:(batch_size rng) ~dim:input_dim ~lo:(-4.) ~hi:4. in
  { Case.model; inputs }

(* Tree: random split structure. Thresholds and inputs stay within the 8.8
   key range so quantized comparisons never saturate. *)

let gen_leaf rng ~n_classes =
  let d = Array.init n_classes (fun _ -> Rng.float rng 1.) in
  let s = Array.fold_left ( +. ) 0. d in
  let d = if s = 0. then Array.make n_classes (1. /. float_of_int n_classes)
          else Array.map (fun v -> v /. s) d in
  Decision_tree.Leaf { distribution = d }

let rec gen_node rng ~depth ~n_features ~n_classes =
  if depth <= 0 || Rng.bernoulli rng 0.25 then gen_leaf rng ~n_classes
  else
    Decision_tree.Split
      {
        feature = Rng.int rng n_features;
        threshold = Rng.uniform rng (-20.) 20.;
        left = gen_node rng ~depth:(depth - 1) ~n_features ~n_classes;
        right = gen_node rng ~depth:(depth - 1) ~n_features ~n_classes;
      }

let gen_tree rng =
  let n_features = 1 + Rng.int rng 6 in
  let n_classes = 2 + Rng.int rng 3 in
  let depth = 2 + Rng.int rng 4 in
  (* Force at least one split so the case exercises threshold comparisons. *)
  let root =
    Decision_tree.Split
      {
        feature = Rng.int rng n_features;
        threshold = Rng.uniform rng (-20.) 20.;
        left = gen_node rng ~depth:(depth - 1) ~n_features ~n_classes;
        right = gen_node rng ~depth:(depth - 1) ~n_features ~n_classes;
      }
  in
  let model = Model_ir.Tree { name = "m"; root; n_features; n_classes } in
  let inputs = batch rng ~n:(batch_size rng) ~dim:n_features ~lo:(-25.) ~hi:25. in
  { Case.model; inputs }

(* Forest: one bagged CART tree fitted on synthetic blob data — realistic
   thresholds (they sit at data midpoints) versus [gen_tree]'s structural
   randomness. *)

let gen_forest_tree rng =
  let n_features = 2 + Rng.int rng 4 in
  let n_classes = 2 + Rng.int rng 2 in
  let centers =
    Array.init n_classes (fun _ ->
        Array.init n_features (fun _ -> Rng.uniform rng (-15.) 15.))
  in
  let sample_of cls =
    Array.init n_features (fun f ->
        centers.(cls).(f) +. Rng.gaussian rng ~sigma:2.5 ())
  in
  let n = 120 in
  let y = Array.init n (fun _ -> Rng.int rng n_classes) in
  let x = Array.map sample_of y in
  (* Bootstrap resample: the bagging half of a random forest. *)
  let idx = Array.init n (fun _ -> Rng.int rng n) in
  let xb = Array.map (fun i -> x.(i)) idx in
  let yb = Array.map (fun i -> y.(i)) idx in
  let params =
    {
      Decision_tree.max_depth = 3 + Rng.int rng 5;
      min_samples_leaf = 2;
      m_try = Some (Stdlib.max 1 (n_features / 2));
    }
  in
  let tree =
    Decision_tree.Classifier.fit ~rng:(Rng.split rng) ~params ~x:xb ~y:yb
      ~n_classes ()
  in
  let model =
    Model_ir.Tree
      {
        name = "m";
        root = Decision_tree.Classifier.root tree;
        n_features;
        n_classes;
      }
  in
  let inputs =
    Array.init (batch_size rng) (fun _ -> sample_of (Rng.int rng n_classes))
  in
  { Case.model; inputs }

(* SVM: Gaussian class weights, small biases, inputs bounded so quantized
   votes stay far from 16-bit saturation. *)

let gen_svm rng =
  let dim = 1 + Rng.int rng 8 in
  let n_classes = 2 + Rng.int rng 3 in
  let class_weights =
    Array.init n_classes (fun _ ->
        Array.init dim (fun _ -> Rng.gaussian rng ~sigma:1. ()))
  in
  let biases = Array.init n_classes (fun _ -> Rng.gaussian rng ~sigma:0.5 ()) in
  let model = Model_ir.Svm { name = "m"; class_weights; biases } in
  let inputs = batch rng ~n:(batch_size rng) ~dim ~lo:(-8.) ~hi:8. in
  { Case.model; inputs }

(* KMeans: non-negative coordinates (the P4 entries dump stores unsigned
   TCAM ranges) and centroids separated by more than twice the default
   fixed cell half-width (2.0 raw units at the 8.8 scale), so cluster cells
   never overlap and the only divergences left are genuine quantization
   effects. Inputs concentrate around centroids, like clustered data. *)

let gen_kmeans rng =
  let dim = 1 + Rng.int rng 6 in
  let k = 2 + Rng.int rng 4 in
  let min_sep = 14. in
  let centroids = Array.make k [||] in
  let placed = ref 0 in
  let attempts = ref 0 in
  while !placed < k && !attempts < 400 do
    incr attempts;
    let c = Array.init dim (fun _ -> Rng.uniform rng 5. 95.) in
    let clash = ref false in
    for i = 0 to !placed - 1 do
      let linf =
        Array.fold_left Float.max 0.
          (Array.mapi (fun f v -> Float.abs (v -. centroids.(i).(f))) c)
      in
      if linf < min_sep then clash := true
    done;
    if not !clash then begin
      centroids.(!placed) <- c;
      incr placed
    end
  done;
  (* Rejection sampling can stall in low dimensions: fall back to a
     deterministic lattice with jitter. The lattice replaces every centroid,
     not just the missing ones — a lattice slot could land within the
     separation radius of an already-placed random centroid, and two
     near-coincident centroids have overlapping cluster cells (last-hit-wins
     would then legitimately pick the non-nearest one). Adjacent slots sit
     18 apart with at most 4 of jitter, so L-inf separation stays >= 14. *)
  if !placed < k then
    for i = 0 to k - 1 do
      centroids.(i) <-
        Array.init dim (fun f ->
            let base = 5. +. (float_of_int i *. 18.) in
            let v = base +. Rng.uniform rng 0. 4. +. float_of_int (f mod 2) in
            Float.min 95. v)
    done;
  let model = Model_ir.Kmeans { name = "m"; centroids } in
  let inputs =
    Array.init (batch_size rng) (fun _ ->
        let c = centroids.(Rng.int rng k) in
        Array.map
          (fun v ->
            Float.max 0. (Float.min 100. (v +. Rng.gaussian rng ~sigma:1. ())))
          c)
  in
  { Case.model; inputs }

let case rng = function
  | Mlp -> gen_mlp rng
  | Tree -> gen_tree rng
  | Forest -> gen_forest_tree rng
  | Svm -> gen_svm rng
  | Kmeans -> gen_kmeans rng
