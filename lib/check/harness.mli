(** The conformance driver: generate cases, compare every applicable backend
    against the floating-point reference, check case invariants, shrink any
    failure, and persist it as a JSON reproducer artifact. *)

type options = {
  seed : int;
  trials : int;
  backends : Oracle.backend list;
  families : Gen.family list;
  artifact_dir : string option;  (** where shrunk reproducers are written *)
  max_shrink : int;  (** shrinker predicate-evaluation budget per failure *)
}

val default_options : options
(** seed 42, 100 trials, every backend, every family, no artifact dir,
    shrink budget 400. *)

type stats = {
  backend : Oracle.backend;
  cases : int;  (** cases this backend was applicable to *)
  samples : int;
  agreed : int;
  excused : int;
  violation_count : int;
}

type failure = {
  trial : int;
  family : Gen.family;
  kind : string;  (** ["divergence"] or ["invariant"] *)
  failed_backend : Oracle.backend option;  (** [None] for invariants *)
  detail : string;
  case : Case.t;  (** already shrunk *)
  artifact : string option;  (** path, when [artifact_dir] was given *)
}

type report = {
  run_seed : int;
  run_trials : int;
  stats : stats list;
  failures : failure list;
}

val run : options -> report

val ok : report -> bool
(** No failures. *)

val render : report -> string
(** Human-readable multi-line summary: a per-backend agreement table
    followed by one block per failure. *)

type replay_outcome = {
  replay_case : Case.t;
  comparisons : Oracle.comparison list;
  invariant_failures : Oracle.invariant_failure list;
}

val replay : path:string -> replay_outcome
(** Load a persisted artifact (either a bare case document or a failure
    artifact with a ["case"] member) and re-run the oracle on it. When the
    artifact names a backend, only that backend is re-checked; otherwise
    every applicable one is. @raise Sys_error / Invalid_argument on
    unreadable or malformed artifacts. *)

val replay_ok : replay_outcome -> bool
val render_replay : replay_outcome -> string
