(* Deployment walkthrough: everything that happens after the search.

   The compiler's artifact is a trained Model_ir. This example takes one
   through the full deployment tool-chain: persist it to disk, verify the
   reloaded model is bit-exact, check the fixed-point precision the hardware
   will use, place it on the Taurus grid (floor plan included), run it
   through the cycle-level pipeline simulator under bursty load, and — for
   the MAT path — execute it with real quantized-table semantics and measure
   the fidelity loss versus the floating-point reference.

   Run with: dune exec examples/deployment.exe *)

open Homunculus_alchemy
open Homunculus_backends
open Homunculus_core
module Rng = Homunculus_util.Rng
module Iot = Homunculus_netdata.Iot
module Dataset = Homunculus_ml.Dataset

let () =
  (* Search a small model for the TC task on Taurus. *)
  let loader () =
    let rng = Rng.create 99 in
    let train, test = Iot.generate_split rng ~n_train:1500 ~n_test:600 () in
    Model_spec.data ~train ~test
  in
  let spec =
    Model_spec.make ~name:"tc" ~algorithms:[ Model_spec.Dnn ] ~loader ()
  in
  let result =
    Compiler.search_model ~options:Compiler.quick_options (Platform.taurus ()) spec
  in
  let model = result.Compiler.artifact.Evaluator.model_ir in
  Printf.printf "searched model: %s, %d params, F1 %.1f\n"
    (Model_ir.algorithm model)
    (Model_ir.param_count model)
    (100. *. result.Compiler.artifact.Evaluator.objective);

  (* 1. Persist and reload, bit-exact. *)
  let path = Filename.temp_file "homunculus_model" ".json" in
  Ir_io.save ~path model;
  let reloaded = Ir_io.load ~path in
  Sys.remove path;
  let data = Model_spec.load spec in
  let sample = data.Model_spec.test.Dataset.x.(0) in
  Printf.printf "1. saved + reloaded: scores bit-exact = %b\n"
    (Inference.scores model sample = Inference.scores reloaded sample);

  (* 2. Fixed-point deployment precision. *)
  let q16 = Inference.quantize_weights model ~bits:16 in
  let xs = data.Model_spec.test.Dataset.x in
  let agreement q =
    let same = ref 0 in
    Array.iter
      (fun x -> if Inference.predict model x = Inference.predict q x then incr same)
      xs;
    100. *. float_of_int !same /. float_of_int (Array.length xs)
  in
  Printf.printf "2. FixPt16 decision agreement: %.1f%% (FixPt4: %.1f%%)\n"
    (agreement q16)
    (agreement (Inference.quantize_weights model ~bits:4));

  (* 3. Grid placement. *)
  (match Placement.place_model Taurus.default_grid model with
  | Ok p ->
      Printf.printf
        "3. placed on the 16x16 grid: %.0f%% utilization, wirelength %.1f\n%s"
        (100. *. Placement.utilization p)
        (Placement.wirelength p) (Placement.render p)
  | Error e -> Printf.printf "3. placement failed: %s\n" e);

  (* 4. Cycle-level simulation under Poisson load at line rate. *)
  let mapping = Taurus.map_model Taurus.default_grid model in
  let sim_config = Pipeline_sim.config_of_mapping Taurus.default_grid mapping in
  let arrivals =
    Pipeline_sim.poisson_arrivals (Rng.create 7) ~rate_gpps:0.9 ~n:20000
  in
  let stats = Pipeline_sim.simulate sim_config ~arrivals_ns:arrivals in
  Printf.printf
    "4. 20k packets at 0.9 Gpkt/s Poisson: %.3f Gpkt/s delivered, mean %.1f ns, \
     p99 %.1f ns, %d drops\n"
    stats.Pipeline_sim.achieved_gpps stats.Pipeline_sim.mean_latency_ns
    stats.Pipeline_sim.p99_latency_ns stats.Pipeline_sim.packets_dropped;

  (* 5. N2Net binarization for the MAT path. Binary weights need comparable
     feature scales, so this path binarizes the standardized-space network
     and keeps the normalization as a preceding pipeline step (absorbed by
     table quantization on a real switch). *)
  let scaler5, train5 = Homunculus_ml.Scaler.fit_dataset data.Model_spec.train in
  let test5 = Homunculus_ml.Scaler.apply_dataset scaler5 data.Model_spec.test in
  let mlp5 =
    Homunculus_ml.Mlp.create (Rng.create 5) ~input_dim:7 ~hidden:[| 10; 8 |]
      ~output_dim:5 ()
  in
  let _ =
    Homunculus_ml.Train.fit (Rng.create 6)
      mlp5
      {
        Homunculus_ml.Train.default_config with
        Homunculus_ml.Train.epochs = 20;
        Homunculus_ml.Train.patience = None;
      }
      train5
  in
  let scaled_ir = Model_ir.of_mlp ~name:"tc_scaled" mlp5 in
  let full_acc, bin_acc =
    Bnn.accuracy_cost scaled_ir ~x:test5.Dataset.x ~y:test5.Dataset.y
  in
  Printf.printf
    "5. weight binarization: accuracy %.1f%% -> %.1f%%, MAT cost %d tables\n"
    (100. *. full_acc) (100. *. bin_acc)
    (Bnn.mats_for_binarized scaled_ir);

  (* 6. The MAT runtime on a table-mappable model: train a KMeans variant,
     fold the scaler so it consumes raw features, and execute it with
     quantized TCAM semantics (keys calibrated on the training sample). *)
  let scaler, train_s = Homunculus_ml.Scaler.fit_dataset data.Model_spec.train in
  let km = Homunculus_ml.Kmeans.fit (Rng.create 8) ~k:5 train_s.Dataset.x in
  let km_ir =
    Model_ir.fold_standardization
      ~mean:(Homunculus_ml.Scaler.mean scaler)
      ~stddev:(Homunculus_ml.Scaler.stddev scaler)
      (Model_ir.of_kmeans ~name:"tc_kmeans" km)
  in
  let rt = Runtime.load ~calibration:data.Model_spec.train.Dataset.x km_ir in
  let fidelity = Runtime.fidelity rt km_ir ~x:data.Model_spec.test.Dataset.x in
  Printf.printf
    "6. MAT runtime (quantized range tables): %.1f%% fidelity vs float \
     reference, %d cell misses\n"
    (100. *. fidelity) (Runtime.miss_count rt)
