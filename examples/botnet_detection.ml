(* Botnet detection with per-packet partial flowmarkers (paper §5.1.1).

   FlowLens-style detectors aggregate packet-size and inter-arrival-time
   histograms for up to an hour before classifying a flow. This example
   reproduces the paper's headline reaction-time result: a model trained on
   full-flow histograms still detects botnets from *partial* histograms a
   few packets into the flow — shrinking reaction time from 3,600 s to the
   switch's pipeline latency.

   Run with: dune exec examples/botnet_detection.exe *)

open Homunculus_alchemy
open Homunculus_core
open Homunculus_netdata
module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset

let () =
  let rng = Rng.create 33 in
  (* Show the Fig. 6 contrast first: average class histograms diverge. *)
  let flows = Flowsim.generate rng () in
  let show label =
    let pl, ipt =
      Flowsim.average_flowmarker flows ~label ~pl_spec:Botnet.pl_spec_fused
        ~ipt_spec:Botnet.ipt_spec_fused
    in
    Printf.printf "%-7s PL bins (64 B):  %s\n" (Flow.label_to_string label)
      (String.concat " " (List.map (Printf.sprintf "%.2f") (Array.to_list pl)));
    Printf.printf "        IPT bins (34 s): %s\n"
      (String.concat " " (List.map (Printf.sprintf "%.2f") (Array.to_list ipt)))
  in
  show Flow.Benign;
  show Flow.Botnet;

  (* Train on full-flow markers, evaluate on per-packet partial markers. *)
  let loader () =
    let rng = Rng.create 34 in
    let train, test =
      Botnet.generate rng ~n_train_flows:250 ~n_test_flows:100 ()
    in
    Model_spec.data ~train ~test
  in
  let bd =
    Model_spec.make ~name:"botnet_detection" ~metric:Model_spec.F1
      ~algorithms:[ Model_spec.Dnn ] ~loader ()
  in
  let result =
    Compiler.generate ~options:Compiler.quick_options (Platform.taurus ())
      (Schedule.model bd)
  in
  print_newline ();
  print_string (Report.result_summary result);
  (match result.Compiler.models with
  | [ m ] ->
      let a = m.Compiler.artifact in
      Printf.printf
        "\nper-packet F1 of %.1f means a verdict every packet, ~%.0f ns after\n\
         arrival — versus waiting 3,600 s for a full flowmarker.\n"
        (100. *. a.Evaluator.objective)
        a.Evaluator.verdict.Homunculus_backends.Resource.latency_ns
  | _ -> assert false);
  (* Reaction-time curve: F1 as a function of packets seen so far. *)
  let data = Model_spec.load bd in
  let scaler, train_s = Homunculus_ml.Scaler.fit_dataset data.Model_spec.train in
  ignore train_s;
  let test_flows = Flowsim.generate (Rng.create 35) () in
  match result.Compiler.models with
  | [ m ] -> (
      match m.Compiler.artifact.Evaluator.model_ir with
      | Homunculus_backends.Model_ir.Dnn _ ->
          Printf.printf "\nreaction-time curve (packets seen -> F1%%):\n";
          (* One fixed MLP trained on full-flow markers, probed at growing
             prefix lengths. *)
          let mlp =
            Homunculus_ml.Mlp.create (Rng.create 36) ~input_dim:30
              ~hidden:[| 12; 8 |] ~output_dim:2 ()
          in
          let train_scaled =
            Homunculus_ml.Scaler.apply_dataset scaler data.Model_spec.train
          in
          let _ =
            Homunculus_ml.Train.fit (Rng.create 37) mlp
              {
                Homunculus_ml.Train.default_config with
                Homunculus_ml.Train.epochs = 25;
                Homunculus_ml.Train.patience = None;
              }
              train_scaled
          in
          List.iter
            (fun k ->
              let samples =
                Array.to_list test_flows
                |> List.filter (fun f -> Flow.n_packets f >= 2)
                |> List.map (fun f ->
                       ( Botnet.flow_features Botnet.Fused f ~first_packets:k (),
                         Flow.label_to_int f.Flow.label ))
              in
              let x = Array.of_list (List.map fst samples) in
              let y = Array.of_list (List.map snd samples) in
              let x = Homunculus_ml.Scaler.transform scaler x in
              let pred = Homunculus_ml.Mlp.predict_all mlp x in
              let f1 = Homunculus_ml.Metrics.f1 ~pred ~truth:y () in
              Printf.printf "  %3d packets: F1 = %.1f\n" k (100. *. f1))
            [ 2; 4; 8; 16; 32; 64 ]
      | _ -> ())
  | _ -> ()
