(* Two-tenant composition: many models, ONE data plane (lib/policy).

   A datacenter switch rarely hosts a single model. Here two tenants
   co-reside on one Tofino pipeline:

   - an anomaly detector guarded onto suspicious traffic
     (high connection fan-out or elevated SYN-error rates), and
   - an IoT traffic classifier guarded onto small-frame device chatter.

   The policy algebra composes them in parallel; [Compiler.compile_policy]
   searches each member under a shared-budget slice of the switch, then
   lowers both — guard tables plus match-action tables — into a single
   stage-allocated pipeline. The same program also demonstrates the
   failure mode: clone tenants until the pipeline over-subscribes and the
   lowering rejects the composition instead of emitting a broken program.

   Run with: dune exec examples/compose_tenants.exe *)

open Homunculus_alchemy
open Homunculus_core
module Rng = Homunculus_util.Rng
module Nslkdd = Homunculus_netdata.Nslkdd
module Iot = Homunculus_netdata.Iot
module Policy = Homunculus_policy.Policy
module Pred = Homunculus_policy.Pred
module Lower = Homunculus_policy.Lower
module Resource = Homunculus_backends.Resource

let ad_spec =
  Model_spec.make ~name:"anomaly_detection" ~metric:Model_spec.F1
    ~algorithms:[ Model_spec.Svm; Model_spec.Tree ]
    ~loader:(fun () ->
      let rng = Rng.create 50 in
      let train, test = Nslkdd.generate_split rng ~n_train:1200 ~n_test:500 () in
      Model_spec.data ~train ~test)
    ()

let tc_spec =
  Model_spec.make ~name:"traffic_classification" ~metric:Model_spec.F1
    ~algorithms:[ Model_spec.Svm; Model_spec.Tree ]
    ~loader:(fun () ->
      let rng = Rng.create 51 in
      let train, test = Iot.generate_split rng ~n_train:1200 ~n_test:500 () in
      Model_spec.data ~train ~test)
    ()

let () =
  let platform = Platform.tofino () in

  (* Per-tenant steering guards over raw packet features. *)
  let suspicious =
    Pred.disj
      [ Pred.field_ge "host_count" 20.; Pred.field_ge "serror_rate" 0.1 ]
  in
  let iot_chatter = Pred.field_lt "frame_size" 1200. in
  let policy =
    Policy.par
      [
        Policy.guard suspicious (Policy.model ad_spec);
        Policy.guard iot_chatter (Policy.model tc_spec);
      ]
  in
  Printf.printf "policy: %s\n\n" (Policy.to_string (Policy.normalize policy));

  match Compiler.compile_policy ~options:Compiler.quick_options platform policy with
  | Error e -> Printf.printf "rejected: %s\n" (Lower.error_to_string e)
  | Ok pr ->
      let composed = pr.Compiler.composed in
      List.iter
        (fun ((t : Policy.tenant), (m : Compiler.model_result)) ->
          Printf.printf "%-28s %-6s objective %.3f\n" t.Policy.id
            (Model_spec.algorithm_to_string
               m.Compiler.artifact.Evaluator.algorithm)
            m.Compiler.artifact.Evaluator.objective)
        pr.Compiler.tenant_models;
      (match composed.Lower.pipeline with
      | Lower.Mat { device; _ } ->
          let standalone =
            List.fold_left
              (fun acc tn -> acc + Lower.standalone_stages device tn)
              0 composed.Lower.tenants
          in
          (* The sharing win: independent tenants pack into the same
             physical stages, so the composition is shallower than the sum
             of its parts. *)
          Printf.printf "\nshared pipeline: %d stages (standalone sum %d)\n"
            (Lower.stages_used composed) standalone
      | Lower.Grid _ -> ());
      Printf.printf "feasible at line rate: %b\n\n"
        composed.Lower.verdict.Resource.feasible;

      (* Over-subscription: keep cloning the classifier until the stage
         allocator runs out of pipeline — the composition is rejected with
         a diagnosis, never silently truncated. *)
      let inputs =
        List.map
          (fun ((t : Policy.tenant), (m : Compiler.model_result)) ->
            Lower.input_of_tenant t
              ~model:m.Compiler.artifact.Evaluator.model_ir)
          pr.Compiler.tenant_models
      in
      let clones =
        match List.rev inputs with
        | last :: _ ->
            List.init 4 (fun i ->
                { last with Lower.in_id = Printf.sprintf "%s_clone%d" last.Lower.in_id i })
        | [] -> []
      in
      (match Lower.compose platform (inputs @ clones) with
      | Error e ->
          Printf.printf "6-tenant overload rejected: %s\n"
            (Lower.error_to_string e)
      | Ok t ->
          Printf.printf "6-tenant overload: feasible=%b%s\n"
            t.Lower.verdict.Resource.feasible
            (match t.Lower.verdict.Resource.rejection with
            | Some r -> " (" ^ r ^ ")"
            | None -> ""))
