(* Candidate filtering, space building, evaluation, fusion, and the full
   compiler driver. *)
open Homunculus_alchemy
open Homunculus_backends
open Homunculus_core
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset

(* A small, learnable two-feature task. *)
let blob_dataset seed n =
  let rng = Rng.create seed in
  let x =
    Array.init n (fun i ->
        let mu = if i mod 2 = 0 then -2. else 2. in
        [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  let y = Array.init n (fun i -> i mod 2) in
  Dataset.create ~feature_names:[| "a"; "b" |] ~x ~y ~n_classes:2 ()

let blob_spec ?(name = "blobs") ?algorithms () =
  Model_spec.make ~name ?algorithms
    ~loader:(fun () ->
      Model_spec.data ~train:(blob_dataset 1 120) ~test:(blob_dataset 2 60))
    ()

let cluster_spec ?(name = "clusters") () =
  Model_spec.make ~name ~metric:Model_spec.V_measure
    ~algorithms:[ Model_spec.Kmeans ]
    ~loader:(fun () ->
      Model_spec.data ~train:(blob_dataset 3 120) ~test:(blob_dataset 4 60))
    ()

let tiny_options =
  {
    Compiler.default_options with
    Compiler.bo_settings =
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init = 3;
        n_iter = 3;
        pool_size = 32;
      };
  }

(* Candidate *)

let test_metric_compatibility () =
  Alcotest.(check bool) "vmeasure kmeans" true
    (Candidate.metric_compatible Model_spec.V_measure Model_spec.Kmeans);
  Alcotest.(check bool) "vmeasure dnn" false
    (Candidate.metric_compatible Model_spec.V_measure Model_spec.Dnn);
  Alcotest.(check bool) "f1 kmeans" false
    (Candidate.metric_compatible Model_spec.F1 Model_spec.Kmeans);
  Alcotest.(check bool) "f1 tree" true
    (Candidate.metric_compatible Model_spec.F1 Model_spec.Tree)

let test_platform_compatibility () =
  Alcotest.(check bool) "taurus dnn" true
    (Candidate.platform_compatible (Platform.taurus ()) Model_spec.Dnn);
  Alcotest.(check bool) "tofino dnn" false
    (Candidate.platform_compatible (Platform.tofino ()) Model_spec.Dnn)

let test_filter_intersects () =
  let algos = Candidate.filter (Platform.taurus ()) (blob_spec ()) in
  (* F1 on Taurus: dnn/svm/tree survive, kmeans is metric-incompatible. *)
  Alcotest.(check (list string)) "supervised survive" [ "dnn"; "svm"; "tree" ]
    (List.map Model_spec.algorithm_to_string algos)

let test_filter_kmeans_for_clustering () =
  let algos = Candidate.filter (Platform.tofino ()) (cluster_spec ()) in
  Alcotest.(check (list string)) "kmeans only" [ "kmeans" ]
    (List.map Model_spec.algorithm_to_string algos)

(* Space builder *)

let test_dnn_space_contents () =
  let s = Space_builder.build (Platform.taurus ()) Model_spec.Dnn ~input_dim:7 in
  Alcotest.(check bool) "has n_layers" true
    (Bo.Design_space.find_param s "n_layers" <> None);
  Alcotest.(check bool) "has learning_rate" true
    (Bo.Design_space.find_param s "learning_rate" <> None);
  Alcotest.(check bool) "has width9" true
    (Bo.Design_space.find_param s "width9" <> None);
  Alcotest.(check bool) "has weight_decay" true
    (Bo.Design_space.find_param s "weight_decay" <> None);
  Alcotest.(check int) "dim = 7 + 10 widths" 17 (Bo.Design_space.dim s)

let test_width_bound_shrinks_with_grid () =
  let big = Space_builder.dnn_width_bound (Platform.taurus ()) ~input_dim:7 in
  let small =
    Space_builder.dnn_width_bound
      (Platform.with_resources (Platform.taurus ()) ~rows:4 ~cols:4)
      ~input_dim:7
  in
  Alcotest.(check bool) "smaller grid, narrower bound" true (small < big);
  Alcotest.(check bool) "clamped sane" true (small >= 4 && big <= 64)

let test_kmeans_space_tofino_budget () =
  let s =
    Space_builder.build
      (Platform.with_tables (Platform.tofino ()) 5)
      Model_spec.Kmeans ~input_dim:7
  in
  match Bo.Design_space.find_param s "k" with
  | Some { Bo.Param.kind = Bo.Param.Int { hi; _ }; _ } ->
      Alcotest.(check int) "k bounded by tables" 5 hi
  | _ -> Alcotest.fail "k parameter missing"

let test_hidden_layers_decoding () =
  let config =
    Bo.Config.make
      ([ ("n_layers", Bo.Param.Int_value 2) ]
      @ List.init 10 (fun i ->
            (Printf.sprintf "width%d" i, Bo.Param.Int_value (i + 3))))
  in
  Alcotest.(check (array int)) "first two widths" [| 3; 4 |]
    (Space_builder.hidden_layers_of_config config)

(* Evaluator *)

let sample_config space = Bo.Design_space.sample (Rng.create 5) space

let test_evaluator_dnn_artifact () =
  let platform = Platform.taurus () in
  let spec = blob_spec () in
  let space = Space_builder.build platform Model_spec.Dnn ~input_dim:2 in
  let artifact =
    Evaluator.evaluate (Rng.create 6) platform spec Model_spec.Dnn
      (sample_config space)
  in
  Alcotest.(check bool) "objective sane" true
    (artifact.Evaluator.objective >= 0. && artifact.Evaluator.objective <= 1.);
  Alcotest.(check string) "model named after spec" "blobs"
    (Model_ir.name artifact.Evaluator.model_ir);
  Alcotest.(check string) "algorithm" "dnn"
    (Model_ir.algorithm artifact.Evaluator.model_ir)

let test_evaluator_learns_blobs () =
  let platform = Platform.taurus () in
  let spec = blob_spec () in
  let config =
    Bo.Config.make
      ([
         ("n_layers", Bo.Param.Int_value 1);
         ("learning_rate", Bo.Param.Real_value 0.01);
         ("batch_size", Bo.Param.Index_value 1);
         ("epochs", Bo.Param.Int_value 25);
         ("activation", Bo.Param.Index_value 0);
         ("weight_decay", Bo.Param.Real_value 1e-6);
         ("lr_decay", Bo.Param.Index_value 2);
       ]
      @ List.init 10 (fun i ->
            (Printf.sprintf "width%d" i, Bo.Param.Int_value 8)))
  in
  let artifact =
    Evaluator.evaluate (Rng.create 7) platform spec Model_spec.Dnn config
  in
  Alcotest.(check bool) "high f1 on separable blobs" true
    (artifact.Evaluator.objective > 0.9);
  Alcotest.(check bool) "feasible" true
    artifact.Evaluator.verdict.Resource.feasible

let test_evaluator_tree_and_svm () =
  let platform = Platform.taurus () in
  let spec = blob_spec () in
  let tree_config =
    Bo.Config.make
      [ ("max_depth", Bo.Param.Int_value 5); ("min_samples_leaf", Bo.Param.Int_value 2) ]
  in
  let a = Evaluator.evaluate (Rng.create 8) platform spec Model_spec.Tree tree_config in
  Alcotest.(check string) "tree" "tree" (Model_ir.algorithm a.Evaluator.model_ir);
  Alcotest.(check bool) "tree learns" true (a.Evaluator.objective > 0.85);
  let svm_config =
    Bo.Config.make
      [ ("lambda", Bo.Param.Real_value 1e-4); ("epochs", Bo.Param.Int_value 15) ]
  in
  let b = Evaluator.evaluate (Rng.create 9) platform spec Model_spec.Svm svm_config in
  Alcotest.(check bool) "svm learns" true (b.Evaluator.objective > 0.85)

let test_evaluator_kmeans_vmeasure () =
  let platform = Platform.taurus () in
  let spec = cluster_spec () in
  let config = Bo.Config.make [ ("k", Bo.Param.Int_value 2) ] in
  let a = Evaluator.evaluate (Rng.create 10) platform spec Model_spec.Kmeans config in
  Alcotest.(check bool) "clusters align with blobs" true (a.Evaluator.objective > 0.7)

let test_evaluator_bo_metadata () =
  let platform = Platform.taurus () in
  let spec = blob_spec () in
  let space = Space_builder.build platform Model_spec.Dnn ~input_dim:2 in
  let a =
    Evaluator.evaluate (Rng.create 11) platform spec Model_spec.Dnn
      (sample_config space)
  in
  let e = Evaluator.to_bo_evaluation a in
  Alcotest.(check bool) "params metadata" true (List.mem_assoc "params" e.Bo.Optimizer.metadata);
  Alcotest.(check bool) "CU metadata" true (List.mem_assoc "CU" e.Bo.Optimizer.metadata);
  Alcotest.(check (float 0.)) "objective copied" a.Evaluator.objective
    e.Bo.Optimizer.objective

(* Fusion *)

let named_spec name features seed =
  Model_spec.make ~name
    ~loader:(fun () ->
      let rng = Rng.create seed in
      let n = 60 in
      let x =
        Array.init n (fun i ->
            Array.init (Array.length features) (fun _ ->
                Rng.gaussian rng ~mu:(if i mod 2 = 0 then -2. else 2.) ()))
      in
      let y = Array.init n (fun i -> i mod 2) in
      let mk () = Dataset.create ~feature_names:features ~x ~y ~n_classes:2 () in
      Model_spec.data ~train:(mk ()) ~test:(mk ()))
    ()

let test_feature_overlap () =
  let a = named_spec "a" [| "x"; "y"; "z" |] 1 in
  let b = named_spec "b" [| "y"; "z"; "w" |] 2 in
  Alcotest.(check (float 1e-9)) "jaccard 2/4" 0.5 (Fusion.feature_overlap a b);
  let c = named_spec "c" [| "p"; "q" |] 3 in
  Alcotest.(check (float 1e-9)) "disjoint" 0. (Fusion.feature_overlap a c)

let test_can_fuse () =
  let a = named_spec "a" [| "x"; "y"; "z" |] 1 in
  let b = named_spec "b" [| "x"; "y"; "w" |] 2 in
  Alcotest.(check bool) "overlapping" true (Fusion.can_fuse a b);
  let c = named_spec "c" [| "p"; "q" |] 3 in
  Alcotest.(check bool) "disjoint" false (Fusion.can_fuse a c)

let test_fuse_union_schema () =
  let a = named_spec "a" [| "x"; "y" |] 1 in
  let b = named_spec "b" [| "y"; "z" |] 2 in
  let fused = Fusion.fuse ~name:"ab" a b in
  let data = Model_spec.load fused in
  Alcotest.(check (array string)) "union schema" [| "x"; "y"; "z" |]
    data.Model_spec.train.Dataset.feature_names;
  (* Pooled samples from both sources. *)
  Alcotest.(check int) "pooled train" 120 (Dataset.n_samples data.Model_spec.train)

let test_fuse_fills_missing_with_zero () =
  let a = named_spec "a" [| "x" |] 1 in
  let b = named_spec "b" [| "x"; "z" |] 2 in
  let fused = Fusion.fuse ~name:"ab" a b in
  let data = Model_spec.load fused in
  (* Rows originating from [a] have z = 0. *)
  let da = Model_spec.load a in
  let n_a = Dataset.n_samples da.Model_spec.train in
  let z_col = Option.get (Dataset.feature_index data.Model_spec.train "z") in
  let all_zero = ref true in
  for i = 0 to n_a - 1 do
    if data.Model_spec.train.Dataset.x.(i).(z_col) <> 0. then all_zero := false
  done;
  Alcotest.(check bool) "a-rows have zero z" true !all_zero

(* Compiler *)

let test_search_model_feasible_result () =
  let r =
    Compiler.search_model ~options:tiny_options (Platform.taurus ())
      (blob_spec ~algorithms:[ Model_spec.Tree ] ())
  in
  Alcotest.(check bool) "feasible" true
    r.Compiler.artifact.Evaluator.verdict.Resource.feasible;
  Alcotest.(check bool) "good objective" true
    (r.Compiler.artifact.Evaluator.objective > 0.8);
  Alcotest.(check int) "one algorithm searched" 1 (List.length r.Compiler.histories);
  Alcotest.(check bool) "code emitted" true (r.Compiler.code <> None)

let test_search_model_budget_split () =
  let r =
    Compiler.search_model ~options:tiny_options (Platform.taurus ())
      (blob_spec ~algorithms:[ Model_spec.Tree; Model_spec.Svm ] ())
  in
  Alcotest.(check int) "two searches" 2 (List.length r.Compiler.histories);
  List.iter
    (fun (_, h) ->
      (* n_iter 3 split over 2 algorithms -> 3 init + 1 guided each. *)
      Alcotest.(check int) "per-algorithm budget" 4 (Bo.History.length h))
    r.Compiler.histories

let test_search_model_no_candidates () =
  (* V-measure spec restricted to DNN: metric filter leaves nothing. *)
  let bad =
    Model_spec.make ~name:"impossible" ~metric:Model_spec.V_measure
      ~algorithms:[ Model_spec.Dnn ]
      ~loader:(fun () ->
        Model_spec.data ~train:(blob_dataset 1 30) ~test:(blob_dataset 2 20))
      ()
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Compiler.search_model ~options:tiny_options (Platform.taurus ()) bad);
       false
     with Compiler.No_feasible_model _ -> true)

let test_generate_schedule_dedup () =
  let spec = blob_spec ~algorithms:[ Model_spec.Tree ] () in
  let chain = Schedule.(model spec >>> model spec >>> model spec) in
  let r = Compiler.generate ~options:tiny_options (Platform.taurus ()) chain in
  Alcotest.(check int) "searched once" 1 (List.length r.Compiler.models);
  Alcotest.(check int) "three verdicts combined" 3
    (List.length r.Compiler.combined.Schedule.per_model)

let test_generate_fusion_pass () =
  let a = named_spec "fa" [| "x"; "y" |] 5 in
  let b = named_spec "fb" [| "x"; "y" |] 6 in
  let options = { tiny_options with Compiler.fusion_threshold = Some 0.5 } in
  let r =
    Compiler.generate ~options (Platform.taurus ())
      Schedule.(model a ||| model b)
  in
  (* The parallel pair fuses into a single searched model. *)
  Alcotest.(check int) "one fused model" 1 (List.length r.Compiler.models);
  Alcotest.(check string) "fused name" "fa+fb"
    (Model_spec.name (List.hd r.Compiler.models).Compiler.spec)

let test_generate_without_fusion_keeps_two () =
  let a = named_spec "ga" [| "x"; "y" |] 7 in
  let b = named_spec "gb" [| "x"; "y" |] 8 in
  let r =
    Compiler.generate ~options:tiny_options (Platform.taurus ())
      Schedule.(model a ||| model b)
  in
  Alcotest.(check int) "two models" 2 (List.length r.Compiler.models)

let test_emit_code_dispatch () =
  let km = Model_ir.Kmeans { name = "k"; centroids = Array.make_matrix 3 4 0.1 } in
  let spatial = Compiler.emit_code (Platform.taurus ()) km in
  let p4 = Compiler.emit_code (Platform.tofino ()) km in
  let has code sub =
    let n = String.length code and m = String.length sub in
    let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "spatial" true (has spatial "Accel {");
  Alcotest.(check bool) "p4 program" true (has p4 "control Ingress");
  Alcotest.(check bool) "p4 entries appended" true (has p4 "table_add")

(* Report *)

let test_search_tradeoff_front () =
  let points =
    Compiler.search_tradeoff ~options:tiny_options ~n_scalarizations:3
      (Platform.taurus ())
      (blob_spec ~algorithms:[ Model_spec.Tree ] ())
  in
  Alcotest.(check bool) "non-empty front" true (points <> []);
  List.iter
    (fun p ->
      Alcotest.(check bool) "feasible" true
        p.Compiler.artifact.Evaluator.verdict.Resource.feasible;
      Alcotest.(check bool) "fraction sane" true
        (p.Compiler.resource_fraction >= 0. && p.Compiler.resource_fraction <= 1.))
    points;
  (* Sorted by descending objective; resources must then be ascending or the
     point would be dominated. *)
  let rec check_pareto = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "objective descending" true
          (a.Compiler.artifact.Evaluator.objective
          >= b.Compiler.artifact.Evaluator.objective);
        Alcotest.(check bool) "resources not dominated" true
          (a.Compiler.resource_fraction >= b.Compiler.resource_fraction);
        check_pareto rest
    | [ _ ] | [] -> ()
  in
  check_pareto points

let test_evaluator_deterministic_per_config () =
  (* The compiler derives a per-config seed, so re-proposals measure the
     same; the evaluator itself must be a pure function of its rng. *)
  let platform = Platform.taurus () in
  let spec = blob_spec () in
  let config =
    Bo.Config.make
      [ ("max_depth", Bo.Param.Int_value 5); ("min_samples_leaf", Bo.Param.Int_value 2) ]
  in
  let a = Evaluator.evaluate (Rng.create 42) platform spec Model_spec.Tree config in
  let b = Evaluator.evaluate (Rng.create 42) platform spec Model_spec.Tree config in
  Alcotest.(check (float 0.)) "same objective" a.Evaluator.objective
    b.Evaluator.objective

(* Regression: an artifact whose objective came back NaN (degenerate metric)
   must rank strictly below every real-valued artifact — feasible or not —
   and must never displace an incumbent through the running-best fold. *)
let test_compare_artifacts_nan_ranks_last () =
  let platform = Platform.taurus () in
  let spec = blob_spec () in
  let config =
    Bo.Config.make
      [ ("max_depth", Bo.Param.Int_value 5); ("min_samples_leaf", Bo.Param.Int_value 2) ]
  in
  let real = Evaluator.evaluate (Rng.create 8) platform spec Model_spec.Tree config in
  let nan_artifact = { real with Evaluator.objective = Float.nan } in
  Alcotest.(check bool) "real beats NaN" true
    (Evaluator.compare_artifacts real nan_artifact < 0);
  Alcotest.(check bool) "NaN loses to real" true
    (Evaluator.compare_artifacts nan_artifact real > 0);
  Alcotest.(check int) "NaN ties itself" 0
    (Evaluator.compare_artifacts nan_artifact nan_artifact);
  (* The fold the parallel search uses for its running best. *)
  (match Evaluator.better_artifact (Some real) nan_artifact with
  | Some kept ->
      Alcotest.(check bool) "incumbent survives NaN challenger" true
        (Int64.bits_of_float kept.Evaluator.objective
        = Int64.bits_of_float real.Evaluator.objective)
  | None -> Alcotest.fail "fold dropped the incumbent");
  (match Evaluator.better_artifact (Some nan_artifact) real with
  | Some kept ->
      Alcotest.(check bool) "real displaces NaN incumbent" true
        (not (Float.is_nan kept.Evaluator.objective))
  | None -> Alcotest.fail "fold dropped both")

let test_report_rendering () =
  let r =
    Compiler.search_model ~options:tiny_options (Platform.taurus ())
      (blob_spec ~algorithms:[ Model_spec.Tree ] ())
  in
  let row = Report.model_row r in
  Alcotest.(check bool) "row mentions model" true
    (String.length row > 10 && String.sub row 0 5 = "blobs");
  let summary = Report.verdict_summary r.Compiler.artifact.Evaluator.verdict in
  Alcotest.(check bool) "summary mentions feasibility" true
    (String.length summary > 0);
  let regret = Report.render_regret r.Compiler.history in
  Alcotest.(check bool) "plot non-empty" true (String.length regret > 50)

let test_report_regret_series_monotone () =
  let r =
    Compiler.search_model ~options:tiny_options (Platform.taurus ())
      (blob_spec ~algorithms:[ Model_spec.Tree ] ())
  in
  let series = Report.regret_series r.Compiler.history in
  let ok = ref true in
  for i = 1 to Array.length series - 1 do
    if snd series.(i) < snd series.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "monotone" true !ok

let suite =
  [
    Alcotest.test_case "metric compatibility" `Quick test_metric_compatibility;
    Alcotest.test_case "platform compatibility" `Quick test_platform_compatibility;
    Alcotest.test_case "filter intersects" `Quick test_filter_intersects;
    Alcotest.test_case "filter clustering" `Quick test_filter_kmeans_for_clustering;
    Alcotest.test_case "dnn space contents" `Quick test_dnn_space_contents;
    Alcotest.test_case "width bound vs grid" `Quick test_width_bound_shrinks_with_grid;
    Alcotest.test_case "kmeans space budget" `Quick test_kmeans_space_tofino_budget;
    Alcotest.test_case "hidden layer decoding" `Quick test_hidden_layers_decoding;
    Alcotest.test_case "evaluator dnn artifact" `Quick test_evaluator_dnn_artifact;
    Alcotest.test_case "evaluator learns blobs" `Quick test_evaluator_learns_blobs;
    Alcotest.test_case "evaluator tree/svm" `Quick test_evaluator_tree_and_svm;
    Alcotest.test_case "evaluator kmeans" `Quick test_evaluator_kmeans_vmeasure;
    Alcotest.test_case "evaluator metadata" `Quick test_evaluator_bo_metadata;
    Alcotest.test_case "fusion overlap" `Quick test_feature_overlap;
    Alcotest.test_case "fusion can_fuse" `Quick test_can_fuse;
    Alcotest.test_case "fusion union schema" `Quick test_fuse_union_schema;
    Alcotest.test_case "fusion zero fill" `Quick test_fuse_fills_missing_with_zero;
    Alcotest.test_case "search model result" `Quick test_search_model_feasible_result;
    Alcotest.test_case "search budget split" `Quick test_search_model_budget_split;
    Alcotest.test_case "search no candidates" `Quick test_search_model_no_candidates;
    Alcotest.test_case "generate dedup" `Quick test_generate_schedule_dedup;
    Alcotest.test_case "generate fusion" `Quick test_generate_fusion_pass;
    Alcotest.test_case "generate no fusion" `Quick test_generate_without_fusion_keeps_two;
    Alcotest.test_case "emit code dispatch" `Quick test_emit_code_dispatch;
    Alcotest.test_case "tradeoff pareto front" `Quick test_search_tradeoff_front;
    Alcotest.test_case "compare_artifacts NaN ranks last" `Quick
      test_compare_artifacts_nan_ranks_last;
    Alcotest.test_case "evaluator deterministic" `Quick
      test_evaluator_deterministic_per_config;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
    Alcotest.test_case "report regret monotone" `Quick test_report_regret_series_monotone;
  ]
