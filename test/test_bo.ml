(* Parameters, design spaces, history, acquisition, surrogate, optimizer. *)
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng

let rng () = Rng.create 99

(* Param *)

let test_param_constructors_validate () =
  Alcotest.check_raises "real lo>=hi" (Invalid_argument "Param.real: lo >= hi")
    (fun () -> ignore (Bo.Param.real "x" ~lo:1. ~hi:1.));
  Alcotest.check_raises "log needs positive"
    (Invalid_argument "Param.real: log scale needs lo > 0") (fun () ->
      ignore (Bo.Param.real ~log_scale:true "x" ~lo:0. ~hi:1.));
  Alcotest.check_raises "int lo>hi" (Invalid_argument "Param.int: lo > hi")
    (fun () -> ignore (Bo.Param.int "x" ~lo:2 ~hi:1));
  Alcotest.check_raises "empty ordinal"
    (Invalid_argument "Param.ordinal: empty domain") (fun () ->
      ignore (Bo.Param.ordinal "x" [||]));
  Alcotest.check_raises "unsorted ordinal"
    (Invalid_argument "Param.ordinal: values must be increasing") (fun () ->
      ignore (Bo.Param.ordinal "x" [| 2.; 1. |]))

let test_param_validate () =
  let p = Bo.Param.int "n" ~lo:1 ~hi:5 in
  Alcotest.(check bool) "in range" true (Bo.Param.validate p (Bo.Param.Int_value 3));
  Alcotest.(check bool) "out of range" false
    (Bo.Param.validate p (Bo.Param.Int_value 9));
  Alcotest.(check bool) "wrong shape" false
    (Bo.Param.validate p (Bo.Param.Real_value 3.))

let test_param_sample_in_domain () =
  let r = rng () in
  let params =
    [
      Bo.Param.real "a" ~lo:(-2.) ~hi:3.;
      Bo.Param.real ~log_scale:true "b" ~lo:1e-4 ~hi:1.;
      Bo.Param.int "c" ~lo:0 ~hi:10;
      Bo.Param.ordinal "d" [| 1.; 2.; 4. |];
      Bo.Param.categorical "e" [| "x"; "y" |];
    ]
  in
  List.iter
    (fun p ->
      for _ = 1 to 200 do
        Alcotest.(check bool) "sample valid" true
          (Bo.Param.validate p (Bo.Param.sample r p))
      done)
    params

let test_param_neighbor_valid_and_local () =
  let r = rng () in
  let p = Bo.Param.int "n" ~lo:0 ~hi:100 in
  for _ = 1 to 100 do
    let v = Bo.Param.sample r p in
    let n = Bo.Param.neighbor r p v in
    Alcotest.(check bool) "valid" true (Bo.Param.validate p n);
    match (v, n) with
    | Bo.Param.Int_value a, Bo.Param.Int_value b ->
        Alcotest.(check bool) "unit step" true (abs (a - b) <= 1)
    | _ -> Alcotest.fail "unexpected shapes"
  done

let test_param_log_neighbor_chain_stays_valid () =
  (* Regression: the exp/log roundtrip used to overshoot the domain by one
     ulp, poisoning later neighbor calls on the incumbent. *)
  let r = rng () in
  let p = Bo.Param.real ~log_scale:true "lr" ~lo:1e-4 ~hi:1e-1 in
  let v = ref (Bo.Param.sample r p) in
  for _ = 1 to 2000 do
    v := Bo.Param.neighbor r p !v;
    Alcotest.(check bool) "chain stays valid" true (Bo.Param.validate p !v)
  done

let test_param_neighbor_rejects_invalid () =
  let r = rng () in
  let p = Bo.Param.int "n" ~lo:0 ~hi:5 in
  Alcotest.check_raises "invalid input"
    (Invalid_argument "Param.neighbor: invalid value") (fun () ->
      ignore (Bo.Param.neighbor r p (Bo.Param.Int_value 99)))

let test_param_encode_normalizes () =
  let p = Bo.Param.int "n" ~lo:10 ~hi:20 in
  Alcotest.(check (float 1e-9)) "lo" 0. (Bo.Param.encode p (Bo.Param.Int_value 10));
  Alcotest.(check (float 1e-9)) "hi" 1. (Bo.Param.encode p (Bo.Param.Int_value 20));
  Alcotest.(check (float 1e-9)) "mid" 0.5 (Bo.Param.encode p (Bo.Param.Int_value 15));
  let lr = Bo.Param.real ~log_scale:true "lr" ~lo:1e-4 ~hi:1e-0 in
  Alcotest.(check (float 1e-9)) "log mid" 0.5
    (Bo.Param.encode lr (Bo.Param.Real_value 1e-2))

let test_param_cardinality () =
  Alcotest.(check (option int)) "int" (Some 11)
    (Bo.Param.cardinality (Bo.Param.int "n" ~lo:0 ~hi:10));
  Alcotest.(check (option int)) "real" None
    (Bo.Param.cardinality (Bo.Param.real "x" ~lo:0. ~hi:1.));
  Alcotest.(check (option int)) "cat" (Some 2)
    (Bo.Param.cardinality (Bo.Param.categorical "c" [| "a"; "b" |]))

let test_param_value_to_string () =
  let p = Bo.Param.categorical "c" [| "relu"; "tanh" |] in
  Alcotest.(check string) "categorical" "tanh"
    (Bo.Param.value_to_string p (Bo.Param.Index_value 1))

(* Config *)

let test_config_getters () =
  let c =
    Bo.Config.make
      [ ("a", Bo.Param.Int_value 3); ("b", Bo.Param.Real_value 0.5);
        ("c", Bo.Param.Index_value 1) ]
  in
  Alcotest.(check int) "int" 3 (Bo.Config.get_int c "a");
  Alcotest.(check (float 0.)) "float" 0.5 (Bo.Config.get_float c "b");
  Alcotest.(check int) "index" 1 (Bo.Config.get_index c "c")

let test_config_rejects_duplicates () =
  Alcotest.check_raises "dup" (Invalid_argument "Config.make: duplicate parameter names")
    (fun () ->
      ignore
        (Bo.Config.make
           [ ("a", Bo.Param.Int_value 1); ("a", Bo.Param.Int_value 2) ]))

let test_config_equal_order_insensitive () =
  let a =
    Bo.Config.make [ ("x", Bo.Param.Int_value 1); ("y", Bo.Param.Int_value 2) ]
  in
  let b =
    Bo.Config.make [ ("y", Bo.Param.Int_value 2); ("x", Bo.Param.Int_value 1) ]
  in
  Alcotest.(check bool) "equal" true (Bo.Config.equal a b)

let test_config_wrong_shape_getter () =
  let c = Bo.Config.make [ ("a", Bo.Param.Int_value 3) ] in
  Alcotest.check_raises "wrong shape"
    (Invalid_argument "Config.get_float: a is not a real") (fun () ->
      ignore (Bo.Config.get_float c "a"))

(* Design space *)

let space () =
  Bo.Design_space.create
    [
      Bo.Param.int "n" ~lo:1 ~hi:8;
      Bo.Param.real "lr" ~lo:0.01 ~hi:0.1;
      Bo.Param.categorical "act" [| "relu"; "tanh" |];
    ]

let test_space_sample_valid () =
  let s = space () in
  let r = rng () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "valid" true
      (Bo.Design_space.validate s (Bo.Design_space.sample r s))
  done

let test_space_rejects_duplicates () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Design_space.create: duplicate parameter names")
    (fun () ->
      ignore
        (Bo.Design_space.create
           [ Bo.Param.int "x" ~lo:0 ~hi:1; Bo.Param.int "x" ~lo:0 ~hi:2 ]))

let test_space_encode_dim () =
  let s = space () in
  let r = rng () in
  let e = Bo.Design_space.encode s (Bo.Design_space.sample r s) in
  Alcotest.(check int) "3 dims" 3 (Array.length e)

let test_space_neighbor_valid () =
  let s = space () in
  let r = rng () in
  for _ = 1 to 100 do
    let c = Bo.Design_space.sample r s in
    Alcotest.(check bool) "valid" true
      (Bo.Design_space.validate s (Bo.Design_space.neighbor r s c))
  done

let test_space_validate_catches_missing () =
  let s = space () in
  let c = Bo.Config.make [ ("n", Bo.Param.Int_value 1) ] in
  Alcotest.(check bool) "missing params" false (Bo.Design_space.validate s c)

let test_space_log_cardinality () =
  let s =
    Bo.Design_space.create
      [ Bo.Param.int "a" ~lo:1 ~hi:10; Bo.Param.categorical "b" [| "x"; "y" |] ]
  in
  Alcotest.(check (float 1e-9)) "log 20" (log 20.)
    (Bo.Design_space.log_cardinality s)

(* History *)

let cfg n = Bo.Config.make [ ("n", Bo.Param.Int_value n) ]

let test_history_best_ignores_infeasible () =
  let h = Bo.History.create () in
  Bo.History.add h ~config:(cfg 1) ~objective:0.9 ~feasible:false ();
  Bo.History.add h ~config:(cfg 2) ~objective:0.5 ~feasible:true ();
  Bo.History.add h ~config:(cfg 3) ~objective:0.7 ~feasible:true ();
  match Bo.History.best h with
  | Some e ->
      Alcotest.(check (float 0.)) "best feasible" 0.7 e.Bo.History.objective
  | None -> Alcotest.fail "expected a best entry"

(* Regression: a feasible entry whose objective is NaN must never become the
   incumbent. The old [>=] guard let it through ([b >= nan] is false), which
   poisoned the EI threshold for the rest of the search. *)
let test_history_best_nan_never_wins () =
  let h = Bo.History.create () in
  Bo.History.add h ~config:(cfg 1) ~objective:Float.nan ~feasible:true ();
  Alcotest.(check bool) "lone NaN is no incumbent" true
    (Bo.History.best h = None);
  Bo.History.add h ~config:(cfg 2) ~objective:0.5 ~feasible:true ();
  Bo.History.add h ~config:(cfg 3) ~objective:Float.nan ~feasible:true ();
  (match Bo.History.best h with
  | Some e -> Alcotest.(check (float 0.)) "real entry wins" 0.5 e.Bo.History.objective
  | None -> Alcotest.fail "expected a best entry")

let test_history_best_entry_total () =
  let h = Bo.History.create () in
  Alcotest.(check bool) "empty" true (Bo.History.best_entry h = None);
  (* All infeasible: the least-bad entry is still defined. *)
  Bo.History.add h ~config:(cfg 1) ~objective:0.2 ~feasible:false ();
  Bo.History.add h ~config:(cfg 2) ~objective:0.6 ~feasible:false ();
  (match Bo.History.best_entry h with
  | Some e -> Alcotest.(check (float 0.)) "best infeasible" 0.6 e.Bo.History.objective
  | None -> Alcotest.fail "expected an entry");
  (* Any feasible entry beats every infeasible one, and NaN ranks below
     every real. *)
  Bo.History.add h ~config:(cfg 3) ~objective:Float.nan ~feasible:true ();
  Bo.History.add h ~config:(cfg 4) ~objective:0.1 ~feasible:true ();
  (match Bo.History.best_entry h with
  | Some e ->
      Alcotest.(check bool) "feasible wins" true e.Bo.History.feasible;
      Alcotest.(check (float 0.)) "real beats NaN" 0.1 e.Bo.History.objective
  | None -> Alcotest.fail "expected an entry")

let test_history_best_so_far_monotone () =
  let h = Bo.History.create () in
  List.iter
    (fun (o, f) -> Bo.History.add h ~config:(cfg (int_of_float (o *. 100.))) ~objective:o ~feasible:f ())
    [ (0.3, false); (0.2, true); (0.8, false); (0.5, true); (0.4, true) ];
  let curve = Bo.History.best_so_far h in
  Alcotest.(check (array (float 1e-9))) "curve"
    [| neg_infinity; 0.2; 0.2; 0.5; 0.5 |] curve

let test_history_feasible_fraction () =
  let h = Bo.History.create () in
  Alcotest.(check (float 0.)) "empty" 0. (Bo.History.feasible_fraction h);
  Bo.History.add h ~config:(cfg 1) ~objective:0.1 ~feasible:true ();
  Bo.History.add h ~config:(cfg 2) ~objective:0.1 ~feasible:false ();
  Alcotest.(check (float 1e-9)) "half" 0.5 (Bo.History.feasible_fraction h)

let test_history_mem_config () =
  let h = Bo.History.create () in
  Bo.History.add h ~config:(cfg 1) ~objective:0.1 ~feasible:true ();
  Alcotest.(check bool) "member" true (Bo.History.mem_config h (cfg 1));
  Alcotest.(check bool) "not member" false (Bo.History.mem_config h (cfg 2))

let test_history_last () =
  let h = Bo.History.create () in
  Alcotest.(check bool) "empty" true (Bo.History.last h = None);
  Bo.History.add h ~config:(cfg 1) ~objective:0.1 ~feasible:true ();
  Bo.History.add h ~config:(cfg 2) ~objective:0.2 ~feasible:true ();
  match Bo.History.last h with
  | Some e -> Alcotest.(check int) "iteration" 2 e.Bo.History.iteration
  | None -> Alcotest.fail "expected last"

(* Acquisition *)

let test_ei_zero_std () =
  Alcotest.(check (float 1e-9)) "no improvement" 0.
    (Bo.Acquisition.expected_improvement ~mean:0.4 ~std:0. ~best:0.5);
  Alcotest.(check (float 1e-9)) "deterministic improvement" 0.1
    (Bo.Acquisition.expected_improvement ~mean:0.6 ~std:0. ~best:0.5)

let test_ei_no_incumbent () =
  Alcotest.(check bool) "infinite" true
    (Bo.Acquisition.expected_improvement ~mean:0. ~std:1. ~best:neg_infinity
    = infinity)

let test_ei_increases_with_mean_and_std () =
  let base = Bo.Acquisition.expected_improvement ~mean:0.5 ~std:0.1 ~best:0.5 in
  let higher_mean =
    Bo.Acquisition.expected_improvement ~mean:0.6 ~std:0.1 ~best:0.5
  in
  let higher_std =
    Bo.Acquisition.expected_improvement ~mean:0.5 ~std:0.3 ~best:0.5
  in
  Alcotest.(check bool) "mean helps" true (higher_mean > base);
  Alcotest.(check bool) "uncertainty helps" true (higher_std > base);
  Alcotest.(check bool) "positive" true (base > 0.)

let test_ucb () =
  Alcotest.(check (float 1e-9)) "ucb" 1.2
    (Bo.Acquisition.upper_confidence_bound ~mean:1. ~std:0.1 ~kappa:2.)

(* Surrogate *)

let test_surrogate_fits_smooth_function () =
  let r = rng () in
  let x = Array.init 120 (fun i -> [| float_of_int i /. 120. |]) in
  let y = Array.map (fun p -> sin (6. *. p.(0))) x in
  let s = Bo.Surrogate.fit r ~x ~y () in
  let mean, std = Bo.Surrogate.predict s [| 0.5 |] in
  Alcotest.(check bool) "mean close" true (Float.abs (mean -. sin 3.) < 0.25);
  Alcotest.(check bool) "std finite" true (std >= 0. && Float.is_finite std)

(* Feasibility *)

let test_feasibility_constant_cases () =
  let r = rng () in
  let x = [| [| 0. |]; [| 1. |] |] in
  let all_true = Bo.Feasibility.fit r ~x ~feasible:[| true; true |] () in
  Alcotest.(check (float 1e-9)) "always feasible" 1.
    (Bo.Feasibility.prob_feasible all_true [| 0.5 |]);
  let all_false = Bo.Feasibility.fit r ~x ~feasible:[| false; false |] () in
  Alcotest.(check (float 1e-9)) "optimistic prior" 0.5
    (Bo.Feasibility.prob_feasible all_false [| 0.5 |])

let test_feasibility_learns_region () =
  let r = rng () in
  let x = Array.init 200 (fun i -> [| float_of_int i /. 200. |]) in
  let feasible = Array.map (fun p -> p.(0) < 0.5) x in
  let m = Bo.Feasibility.fit r ~x ~feasible () in
  Alcotest.(check bool) "low side feasible" true
    (Bo.Feasibility.prob_feasible m [| 0.1 |] > 0.8);
  Alcotest.(check bool) "high side infeasible" true
    (Bo.Feasibility.prob_feasible m [| 0.9 |] < 0.2)

(* Scalarize *)

let test_scalarize_weights_normalized () =
  let s = Bo.Scalarize.of_weights [| 2.; 6. |] in
  Alcotest.(check (array (float 1e-9))) "normalized" [| 0.25; 0.75 |]
    (Bo.Scalarize.weights s)

let test_scalarize_apply () =
  let s = Bo.Scalarize.of_weights [| 1.; 1. |] in
  Alcotest.(check (float 1e-9)) "mean" 0.5 (Bo.Scalarize.apply s [| 0.; 1. |])

let test_scalarize_rejects () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Scalarize.of_weights: negative weight") (fun () ->
      ignore (Bo.Scalarize.of_weights [| -1.; 2. |]))

let test_scalarize_draw_simplex () =
  let r = rng () in
  for _ = 1 to 50 do
    let s = Bo.Scalarize.draw r ~n_objectives:4 in
    let w = Bo.Scalarize.weights s in
    Alcotest.(check (float 1e-9)) "sums to 1" 1. (Array.fold_left ( +. ) 0. w);
    Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.)) w
  done

let test_pareto_front () =
  let points = [| [| 1.; 1. |]; [| 2.; 0.5 |]; [| 0.5; 2. |]; [| 0.4; 0.4 |] |] in
  let front = Bo.Scalarize.pareto_front points in
  Alcotest.(check (array int)) "dominated point excluded" [| 0; 1; 2 |] front

let test_chebyshev_prefers_balanced () =
  let s = Bo.Scalarize.of_weights [| 1.; 1. |] in
  let reference = [| 1.; 1. |] in
  let balanced = Bo.Scalarize.apply_chebyshev s ~reference [| 0.8; 0.8 |] in
  let lopsided = Bo.Scalarize.apply_chebyshev s ~reference [| 1.; 0.2 |] in
  Alcotest.(check bool) "balanced wins" true (balanced > lopsided)

(* Optimizer end-to-end on a known landscape. *)

let quadratic_space =
  Bo.Design_space.create
    [ Bo.Param.real "x" ~lo:(-5.) ~hi:5.; Bo.Param.real "y" ~lo:(-5.) ~hi:5. ]

let quadratic_eval config =
  let x = Bo.Config.get_float config "x" and y = Bo.Config.get_float config "y" in
  {
    Bo.Optimizer.objective = -.((x -. 2.) ** 2.) -. ((y +. 1.) ** 2.);
    feasible = true;
    pruned = false;
    metadata = [];
  }

let test_optimizer_calls_black_box_exactly () =
  let count = ref 0 in
  let f config =
    incr count;
    quadratic_eval config
  in
  let settings =
    { Bo.Optimizer.default_settings with Bo.Optimizer.n_init = 5; n_iter = 7 }
  in
  let h = Bo.Optimizer.maximize (rng ()) ~settings quadratic_space ~f in
  Alcotest.(check int) "12 evaluations" 12 !count;
  Alcotest.(check int) "history length" 12 (Bo.History.length h)

let test_optimizer_beats_warmup () =
  (* BO is stochastic; judge typical behaviour across three seeds. *)
  let run seed =
    let settings =
      {
        Bo.Optimizer.default_settings with
        Bo.Optimizer.n_init = 8;
        n_iter = 25;
        pool_size = 100;
      }
    in
    let h =
      Bo.Optimizer.maximize (Rng.create seed) ~settings quadratic_space
        ~f:quadratic_eval
    in
    let curve = Bo.History.best_so_far h in
    (curve.(7), curve.(Array.length curve - 1))
  in
  let runs = List.map run [ 1; 2; 3 ] in
  List.iter
    (fun (warm, final) ->
      Alcotest.(check bool) "never regresses" true (final >= warm))
    runs;
  let improved = List.filter (fun (w, f) -> f > w) runs in
  Alcotest.(check bool) "improves past warm-up on most seeds" true
    (List.length improved >= 2);
  let best_final = List.fold_left (fun acc (_, f) -> Stdlib.max acc f) neg_infinity runs in
  Alcotest.(check bool) "gets close to optimum" true (best_final > -1.5)

let test_optimizer_respects_feasibility () =
  (* Optimum at x=2 is infeasible; best feasible is on the x<=0 side. *)
  let f config =
    let x = Bo.Config.get_float config "x" in
    let y = Bo.Config.get_float config "y" in
    {
      Bo.Optimizer.objective = -.((x -. 2.) ** 2.) -. (y ** 2.);
      feasible = x <= 0.;
      pruned = false;
      metadata = [];
    }
  in
  let settings =
    { Bo.Optimizer.default_settings with Bo.Optimizer.n_init = 10; n_iter = 20 }
  in
  let h = Bo.Optimizer.maximize (rng ()) ~settings quadratic_space ~f in
  match Bo.History.best h with
  | Some e ->
      Alcotest.(check bool) "best is feasible" true e.Bo.History.feasible;
      Alcotest.(check bool) "x <= 0" true (Bo.Config.get_float e.Bo.History.config "x" <= 0.)
  | None -> Alcotest.fail "expected a feasible best"

let test_optimizer_callback_invoked () =
  let calls = ref 0 in
  let settings =
    { Bo.Optimizer.default_settings with Bo.Optimizer.n_init = 3; n_iter = 2 }
  in
  let _ =
    Bo.Optimizer.maximize (rng ()) ~settings
      ~on_iteration:(fun i entry ->
        incr calls;
        Alcotest.(check int) "iteration matches" i entry.Bo.History.iteration)
      quadratic_space ~f:quadratic_eval
  in
  Alcotest.(check int) "5 callbacks" 5 !calls

let test_optimizer_batched_budget_exact () =
  (* Batching regroups evaluations into concurrent rounds but must not change
     the total budget, even when batch_size does not divide n_init/n_iter. *)
  let count = ref 0 in
  let lock = Mutex.create () in
  let f config =
    Mutex.lock lock;
    incr count;
    Mutex.unlock lock;
    quadratic_eval config
  in
  let settings =
    {
      Bo.Optimizer.default_settings with
      Bo.Optimizer.n_init = 5;
      n_iter = 7;
      batch_size = 3;
    }
  in
  let pool = Homunculus_par.Par.create ~jobs:4 () in
  let h = Bo.Optimizer.maximize (rng ()) ~settings ~pool quadratic_space ~f in
  Homunculus_par.Par.shutdown pool;
  Alcotest.(check int) "12 evaluations" 12 !count;
  Alcotest.(check int) "history length" 12 (Bo.History.length h)

let entries_identical a b =
  let open Bo.History in
  List.length (entries a) = List.length (entries b)
  && List.for_all2
       (fun x y ->
         x.iteration = y.iteration
         && Bo.Config.equal x.config y.config
         && x.objective = y.objective
         && x.feasible = y.feasible
         && x.metadata = y.metadata)
       (entries a) (entries b)

let test_optimizer_deterministic_across_worker_counts () =
  (* The hard guarantee behind --jobs: for a fixed seed and settings
     (including batch_size), the history is bit-identical whether the pool
     has one worker or several. *)
  let settings =
    {
      Bo.Optimizer.default_settings with
      Bo.Optimizer.n_init = 6;
      n_iter = 10;
      pool_size = 40;
      surrogate_trees = 10;
      batch_size = 3;
    }
  in
  let run jobs =
    let pool = Homunculus_par.Par.create ~jobs () in
    let h =
      Bo.Optimizer.maximize (Rng.create 7) ~settings ~pool quadratic_space
        ~f:quadratic_eval
    in
    Homunculus_par.Par.shutdown pool;
    h
  in
  let h1 = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "history identical at jobs=%d" jobs)
        true
        (entries_identical h1 (run jobs)))
    [ 2; 4 ]

let test_random_search_budget () =
  let count = ref 0 in
  let f config =
    incr count;
    quadratic_eval config
  in
  let h = Bo.Optimizer.random_search (rng ()) ~n:9 quadratic_space ~f in
  Alcotest.(check int) "9 evals" 9 !count;
  Alcotest.(check int) "9 entries" 9 (Bo.History.length h)

let suite =
  [
    Alcotest.test_case "param constructors validate" `Quick test_param_constructors_validate;
    Alcotest.test_case "param validate" `Quick test_param_validate;
    Alcotest.test_case "param sample in domain" `Quick test_param_sample_in_domain;
    Alcotest.test_case "param neighbor local" `Quick test_param_neighbor_valid_and_local;
    Alcotest.test_case "param neighbor rejects" `Quick test_param_neighbor_rejects_invalid;
    Alcotest.test_case "param log neighbor chain" `Quick
      test_param_log_neighbor_chain_stays_valid;
    Alcotest.test_case "param encode" `Quick test_param_encode_normalizes;
    Alcotest.test_case "param cardinality" `Quick test_param_cardinality;
    Alcotest.test_case "param to_string" `Quick test_param_value_to_string;
    Alcotest.test_case "config getters" `Quick test_config_getters;
    Alcotest.test_case "config rejects duplicates" `Quick test_config_rejects_duplicates;
    Alcotest.test_case "config equal unordered" `Quick test_config_equal_order_insensitive;
    Alcotest.test_case "config shape errors" `Quick test_config_wrong_shape_getter;
    Alcotest.test_case "space sample valid" `Quick test_space_sample_valid;
    Alcotest.test_case "space rejects duplicates" `Quick test_space_rejects_duplicates;
    Alcotest.test_case "space encode dim" `Quick test_space_encode_dim;
    Alcotest.test_case "space neighbor valid" `Quick test_space_neighbor_valid;
    Alcotest.test_case "space validate missing" `Quick test_space_validate_catches_missing;
    Alcotest.test_case "space log cardinality" `Quick test_space_log_cardinality;
    Alcotest.test_case "history best feasible" `Quick test_history_best_ignores_infeasible;
    Alcotest.test_case "history best NaN never wins" `Quick
      test_history_best_nan_never_wins;
    Alcotest.test_case "history best_entry total" `Quick
      test_history_best_entry_total;
    Alcotest.test_case "history regret curve" `Quick test_history_best_so_far_monotone;
    Alcotest.test_case "history feasible fraction" `Quick test_history_feasible_fraction;
    Alcotest.test_case "history mem config" `Quick test_history_mem_config;
    Alcotest.test_case "history last" `Quick test_history_last;
    Alcotest.test_case "EI zero std" `Quick test_ei_zero_std;
    Alcotest.test_case "EI no incumbent" `Quick test_ei_no_incumbent;
    Alcotest.test_case "EI monotone" `Quick test_ei_increases_with_mean_and_std;
    Alcotest.test_case "UCB" `Quick test_ucb;
    Alcotest.test_case "surrogate fits" `Quick test_surrogate_fits_smooth_function;
    Alcotest.test_case "feasibility constants" `Quick test_feasibility_constant_cases;
    Alcotest.test_case "feasibility learns region" `Quick test_feasibility_learns_region;
    Alcotest.test_case "scalarize normalizes" `Quick test_scalarize_weights_normalized;
    Alcotest.test_case "scalarize apply" `Quick test_scalarize_apply;
    Alcotest.test_case "scalarize rejects" `Quick test_scalarize_rejects;
    Alcotest.test_case "scalarize simplex" `Quick test_scalarize_draw_simplex;
    Alcotest.test_case "pareto front" `Quick test_pareto_front;
    Alcotest.test_case "chebyshev balanced" `Quick test_chebyshev_prefers_balanced;
    Alcotest.test_case "optimizer budget exact" `Quick test_optimizer_calls_black_box_exactly;
    Alcotest.test_case "optimizer beats warm-up" `Quick test_optimizer_beats_warmup;
    Alcotest.test_case "optimizer feasibility" `Quick test_optimizer_respects_feasibility;
    Alcotest.test_case "optimizer callback" `Quick test_optimizer_callback_invoked;
    Alcotest.test_case "optimizer batched budget exact" `Quick
      test_optimizer_batched_budget_exact;
    Alcotest.test_case "optimizer deterministic across workers" `Quick
      test_optimizer_deterministic_across_worker_counts;
    Alcotest.test_case "random search budget" `Quick test_random_search_budget;
  ]
