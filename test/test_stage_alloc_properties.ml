(* qcheck properties over the RMT stage allocator: random dependency DAGs
   (edges only ever point at earlier tables, so they are acyclic by
   construction) allocated under random stage budgets. DAGs derive from an
   integer seed through Rng — qcheck shrinks over seeds and every failure
   reproduces from one integer. *)
module Stage_alloc = Homunculus_backends.Stage_alloc
module Rng = Homunculus_util.Rng

(* A random DAG: table i may depend on any subset of tables 0..i-1 (sparse,
   ~2 edges per table) — the shape of merged multi-tenant table graphs. *)
let random_tables rng =
  let n = 1 + Rng.int rng 24 in
  List.init n (fun i ->
      let deps = ref [] in
      if i > 0 then
        for _ = 1 to Rng.int rng 3 do
          let d = Rng.int rng i in
          let name = Printf.sprintf "t%d" d in
          if not (List.mem name !deps) then deps := name :: !deps
        done;
      { Stage_alloc.name = Printf.sprintf "t%d" i; depends_on = !deps })

let random_case seed =
  let rng = Rng.create seed in
  let tables = random_tables rng in
  let tables_per_stage = 1 + Rng.int rng 5 in
  let n_stages = 1 + Rng.int rng 30 in
  (tables, n_stages, tables_per_stage)

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let with_allocation seed f =
  let tables, n_stages, tables_per_stage = random_case seed in
  match Stage_alloc.allocate ~n_stages ~tables_per_stage tables with
  | Error (Stage_alloc.Capacity_exceeded _) -> true (* rejection is fine *)
  | Error e ->
      QCheck.Test.fail_reportf "unexpected error: %s"
        (Stage_alloc.error_to_string e)
  | Ok allocation -> f tables ~n_stages ~tables_per_stage allocation

let prop_deps_strictly_earlier =
  QCheck.Test.make ~name:"every table lands strictly after its dependencies"
    ~count:500 seed_gen (fun seed ->
      with_allocation seed (fun tables ~n_stages:_ ~tables_per_stage:_ a ->
          List.for_all
            (fun (t : Stage_alloc.table) ->
              let stage = List.assoc t.Stage_alloc.name a.Stage_alloc.stage_of in
              List.for_all
                (fun d -> List.assoc d a.Stage_alloc.stage_of < stage)
                t.Stage_alloc.depends_on)
            tables))

let prop_occupancy_within_capacity =
  QCheck.Test.make
    ~name:"per-stage occupancy never exceeds tables_per_stage and sums to n"
    ~count:500 seed_gen (fun seed ->
      with_allocation seed (fun tables ~n_stages:_ ~tables_per_stage a ->
          Array.for_all (fun o -> o <= tables_per_stage) a.Stage_alloc.occupancy
          && Array.fold_left ( + ) 0 a.Stage_alloc.occupancy
             = List.length tables
          && Array.length a.Stage_alloc.occupancy = a.Stage_alloc.stages_used))

let prop_critical_path_lower_bound =
  QCheck.Test.make
    ~name:"critical path lower-bounds stages_used; equality at capacity 1+"
    ~count:500 seed_gen (fun seed ->
      with_allocation seed (fun tables ~n_stages:_ ~tables_per_stage:_ a ->
          let cp = Stage_alloc.critical_path tables in
          cp <= a.Stage_alloc.stages_used))

(* With unlimited per-stage capacity the greedy levelizer is exactly the
   critical path — the bound is tight, not just safe. *)
let prop_critical_path_tight_when_uncapped =
  QCheck.Test.make ~name:"uncapped allocation uses exactly critical_path stages"
    ~count:500 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let tables = random_tables rng in
      let n = List.length tables in
      match Stage_alloc.allocate ~n_stages:(n + 1) ~tables_per_stage:n tables with
      | Error e ->
          QCheck.Test.fail_reportf "uncapped allocation failed: %s"
            (Stage_alloc.error_to_string e)
      | Ok a -> a.Stage_alloc.stages_used = Stage_alloc.critical_path tables)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_deps_strictly_earlier;
      prop_occupancy_within_capacity;
      prop_critical_path_lower_bound;
      prop_critical_path_tight_when_uncapped;
    ]
