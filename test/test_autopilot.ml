(* The autopilot control plane: generation-journal bookkeeping, the
   end-to-end regime-shift loop (forced drift -> warm-started re-search ->
   hot-swap through the updater margin), graceful degradation under a
   forced research failure (the incumbent's windows are bit-identical to a
   monitoring-only run), the warm-start = replay-then-continue identity as
   a qcheck property, and kill-mid-re-search resume (stdout-diff-clean
   events, bit-identical generation journal). *)

open Homunculus_netdata
open Homunculus_serve
module Rng = Homunculus_util.Rng
module Bo = Homunculus_bo
module Model_spec = Homunculus_alchemy.Model_spec
module Platform = Homunculus_alchemy.Platform
module Compiler = Homunculus_core.Compiler
module Evaluator = Homunculus_core.Evaluator
module Journal = Homunculus_resilience.Journal
module Supervisor = Homunculus_resilience.Supervisor
module Faultplan = Homunculus_resilience.Faultplan
module Autopilot = Homunculus_autopilot.Autopilot

let temp_dir () =
  let path = Filename.temp_file "autopilot" ".d" in
  Sys.remove path;
  (* Autopilot.create mkdir_p's it. *)
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Sys.rmdir dir
  end

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* {2 Journal-directory bookkeeping} *)

let test_generation_files () =
  let dir = temp_dir () in
  Alcotest.(check (list (triple int string bool)))
    "missing dir is empty" []
    (Autopilot.generation_files ~dir);
  Unix.mkdir dir 0o755;
  let touch p = close_out (open_out p) in
  let p0 = Autopilot.journal_path ~dir ~generation:0 in
  let p2 = Autopilot.journal_path ~dir ~generation:2 in
  Alcotest.(check string) "journal path" "research-000.jsonl"
    (Filename.basename p0);
  Alcotest.(check string) "done path" (p0 ^ ".done") (Autopilot.done_path p0);
  touch p2;
  touch (Autopilot.done_path p2);
  touch p0;
  touch (Filename.concat dir "not-a-journal.txt");
  Alcotest.(check (list (triple int string bool)))
    "ascending, completion flags, strangers ignored"
    [ (0, p0, false); (2, p2, true) ]
    (Autopilot.generation_files ~dir);
  rm_rf dir

let test_create_validates () =
  let dir = temp_dir () in
  let updater = Updater.create (Rng.create 1) ~n_features:3 ~n_classes:2 () in
  let cfg = Autopilot.default_config ~platform:(Platform.taurus ()) ~journal_dir:dir in
  let raises cfg =
    match Autopilot.create cfg ~updater with
    | (_ : Autopilot.t) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "bad holdout" true
    (raises { cfg with Autopilot.holdout_frac = 1. });
  Alcotest.(check bool) "bad fresh" true
    (raises { cfg with Autopilot.fresh_evals = -1 });
  Alcotest.(check bool) "empty shortlist" true
    (raises { cfg with Autopilot.algorithms = [] });
  Alcotest.(check bool) "negative backoff" true
    (raises { cfg with Autopilot.backoff_windows = -1 });
  let t = Autopilot.create cfg ~updater in
  Alcotest.(check bool) "journal dir created" true
    (Sys.file_exists dir && Sys.is_directory dir);
  Alcotest.(check int) "no failures yet" 0 (Autopilot.consecutive_failures t);
  rm_rf dir

(* {2 The regime-shift scenario}

   The incumbent is a tree bootstrapped on ORIGINAL traffic; the stream
   serves SHIFTED botnet flows, so a challenger retrained on the updater's
   reservoir (which only ever sees shifted traffic) has a genuine edge.
   Drift alarms are forced at fixed windows — deterministic and fast, the
   organic detectors have their own tests. *)

let scenario_mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 160 }

let scenario () =
  let rng = Rng.create 4040 in
  let train = Flowsim.generate rng ~mix:(scenario_mix 60) () in
  let model =
    Updater.bootstrap (Rng.split rng) ~algorithm:`Tree ~bins:Botnet.Fused
      ~name:"ap" train
  in
  let shifted =
    Stream.shift_botnet (Flowsim.generate rng ~mix:(scenario_mix 80) ())
  in
  let events = Stream.events (Rng.create 4141) shifted in
  (model, events)

let pilot_config ~dir ?(faults = Faultplan.create []) () =
  {
    (Autopilot.default_config ~platform:(Platform.taurus ()) ~journal_dir:dir) with
    Autopilot.seed = 11;
    fresh_evals = 2;
    min_examples = 60;
    faults;
  }

let run_serving ?pilot_cfg ~model ~events ~forced () =
  let monitor =
    Monitor.create
      ~config:
        {
          Monitor.default_config with
          Monitor.window_events = 150;
          label_delay_s = 1.;
          (* Only the forced windows alarm: the organic detectors would keep
             re-firing on the degraded incumbent and make the alarm count
             depend on the searched challengers. They have their own tests. *)
          acc_drop = 2.;
          ph_lambda = 1e12;
        }
      ~n_classes:2 ()
  in
  List.iter (fun window -> Monitor.force_drift_at monitor ~window) forced;
  match pilot_cfg with
  | None ->
      let engine = Engine.create ~model ~monitor () in
      (Engine.run engine events, None)
  | Some cfg ->
      let updater =
        Updater.create (Rng.create 7) ~n_features:30 ~n_classes:2 ()
      in
      let pilot = Autopilot.create cfg ~updater in
      let engine =
        Engine.create ~model ~monitor ~updater ~research:(Autopilot.hook pilot) ()
      in
      (Engine.run engine events, Some pilot)

let installed_count events =
  List.length
    (List.filter
       (fun (e : Autopilot.event) ->
         match e.Autopilot.outcome with
         | Autopilot.Installed _ -> true
         | _ -> false)
       events)

let test_end_to_end_regime_shift () =
  let model, events = scenario () in
  let dir = temp_dir () in
  let summary, pilot =
    run_serving ~pilot_cfg:(pilot_config ~dir ()) ~model ~events
      ~forced:[ 1; 3 ] ()
  in
  let pilot = Option.get pilot in
  let evs = Autopilot.events pilot in
  Alcotest.(check int) "both alarms handled" 2 (List.length evs);
  let e0 = List.nth evs 0 and e1 = List.nth evs 1 in
  Alcotest.(check int) "first alarm at window 1" 1 e0.Autopilot.window;
  Alcotest.(check string) "forced alarms are injected" "injected"
    e0.Autopilot.reason;
  Alcotest.(check int) "generation 0 first" 0 e0.Autopilot.generation;
  Alcotest.(check int) "generation 1 second" 1 e1.Autopilot.generation;
  (* Generation 0 is cold; generation 1 replays exactly the n_init + fresh
     proposals generation 0 journaled — warm-up skipped, the whole budget
     on fresh candidates. *)
  Alcotest.(check int) "gen 0 cold" 0 e0.Autopilot.replayed;
  Alcotest.(check int) "gen 0 journals n_init + fresh" 5 e0.Autopilot.fresh;
  Alcotest.(check int) "gen 1 warm-started past warm-up" 5
    e1.Autopilot.replayed;
  Alcotest.(check int) "gen 1 journals only fresh" 2 e1.Autopilot.fresh;
  (match Autopilot.generation_files ~dir with
  | [ (0, _, true); (1, _, true) ] -> ()
  | gens -> Alcotest.failf "expected two completed generations, got %d"
              (List.length gens));
  (* The winner flowed through the updater margin into a hot swap. *)
  let installs = installed_count evs in
  Alcotest.(check bool) "at least one install" true (installs >= 1);
  Alcotest.(check int) "every install is a hot swap" installs
    (List.length summary.Engine.swaps);
  List.iter
    (fun (s : Engine.swap) ->
      Alcotest.(check bool) "validated margin" true
        (s.Engine.challenger_f1 >= s.Engine.incumbent_f1 +. 0.02);
      Alcotest.(check int) "no drops during the swap" 0
        s.Engine.dropped_during_swap)
    summary.Engine.swaps;
  (* Same seeds, fresh journal dir: the whole loop is reproducible. *)
  let dir2 = temp_dir () in
  let summary2, pilot2 =
    run_serving ~pilot_cfg:(pilot_config ~dir:dir2 ()) ~model ~events
      ~forced:[ 1; 3 ] ()
  in
  Alcotest.(check (list string)) "deterministic events"
    (List.map Autopilot.event_to_string evs)
    (List.map Autopilot.event_to_string (Autopilot.events (Option.get pilot2)));
  Alcotest.(check int) "deterministic swaps"
    (List.length summary.Engine.swaps)
    (List.length summary2.Engine.swaps);
  rm_rf dir;
  rm_rf dir2

(* Graceful degradation: research-timeout@0 keeps generation 0's budget
   pre-expired (and, because an unfinished generation is retried, keeps
   holding it back) — every alarm degrades to Keep, the incumbent serves
   throughout, and the windowed metrics are bit-identical to a run with no
   autopilot at all. The never-worse guarantee, observed end to end. *)
let test_forced_failure_never_worse () =
  let model, events = scenario () in
  let dir = temp_dir () in
  let summary, pilot =
    run_serving
      ~pilot_cfg:
        (pilot_config ~dir ~faults:(Faultplan.of_string "research-timeout@0") ())
      ~model ~events ~forced:[ 1; 2; 3 ] ()
  in
  let pilot = Option.get pilot in
  let baseline, _ = run_serving ~model ~events ~forced:[ 1; 2; 3 ] () in
  Alcotest.(check int) "never swaps" 0 (List.length summary.Engine.swaps);
  Alcotest.(check bool) "incumbent still installed" true
    (summary.Engine.final_model == model);
  (match List.map (fun (e : Autopilot.event) -> e.Autopilot.outcome)
           (Autopilot.events pilot)
   with
  | [ Autopilot.Budget_exhausted; Autopilot.Backing_off _;
      Autopilot.Budget_exhausted ] -> ()
  | os ->
      Alcotest.failf "expected budget, backoff, budget; got [%s]"
        (String.concat "; "
           (List.map Autopilot.outcome_to_string os)));
  Alcotest.(check int) "failures accumulate" 2
    (Autopilot.consecutive_failures pilot);
  (* The budget-killed generation never completes: no .done, resumed as
     generation 0 on every attempt. *)
  (match Autopilot.generation_files ~dir with
  | [ (0, _, false) ] -> ()
  | gens -> Alcotest.failf "expected one incomplete generation, got %d"
              (List.length gens));
  (* Accuracy is never below the no-autopilot baseline: with the incumbent
     untouched, every window metric is bit-identical. *)
  let f1s (s : Engine.summary) =
    List.map (fun w -> Int64.bits_of_float w.Monitor.f1) s.Engine.windows
  in
  Alcotest.(check (list int64)) "windowed F1 identical to baseline"
    (f1s baseline) (f1s summary);
  Alcotest.(check int) "served identical" baseline.Engine.served
    summary.Engine.served;
  rm_rf dir

(* {2 Warm start = replay-then-continue, as a property}

   For any seed: a journaled prior search of [n_init + A] evaluations,
   replayed under [Optimizer.continuation ~replayed:(n_init + A) ~fresh:B],
   produces the bit-for-bit history and winner of one uninterrupted search
   of [n_init + A + B] evaluations. This is the identity the autopilot's
   generation arithmetic rests on. *)
let prop_warm_equals_cold =
  let seed_gen =
    QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)
  in
  QCheck.Test.make ~name:"warm-started search == replay-then-continue" ~count:5
    seed_gen (fun seed ->
      let spec =
        Test_core.blob_spec ~name:"apwarm" ~algorithms:[ Model_spec.Tree ] ()
      in
      let platform = Platform.taurus () in
      let prior = 2 and fresh = 2 in
      let base =
        {
          Test_core.tiny_options.Compiler.bo_settings with
          Bo.Optimizer.n_init = 3;
          n_iter = prior;
          batch_size = 2;
        }
      in
      let options supervisor settings =
        {
          Test_core.tiny_options with
          Compiler.seed;
          bo_settings = settings;
          supervisor;
        }
      in
      let path = Filename.temp_file "ap_warm" ".jsonl" in
      let journal = Journal.open_ path in
      let sup = Supervisor.create ~journal () in
      ignore
        (Compiler.search_model ~options:(options (Some sup) base) platform spec);
      Journal.close journal;
      let warm =
        let sup = Supervisor.create ~replay:(Journal.load path) () in
        let settings =
          Bo.Optimizer.continuation base
            ~replayed:(base.Bo.Optimizer.n_init + prior)
            ~fresh
        in
        Compiler.search_model
          ~options:(options (Some sup) settings)
          platform spec
      in
      let cold =
        let settings = { base with Bo.Optimizer.n_iter = prior + fresh } in
        Compiler.search_model ~options:(options None settings) platform spec
      in
      Sys.remove path;
      Test_resilience.histories_identical warm.Compiler.history
        cold.Compiler.history
      && Bo.Config.equal warm.Compiler.artifact.Evaluator.config
           cold.Compiler.artifact.Evaluator.config
      && Int64.bits_of_float warm.Compiler.artifact.Evaluator.objective
         = Int64.bits_of_float cold.Compiler.artifact.Evaluator.objective)

(* Kill mid-re-search, resume, and require the second incarnation to be
   indistinguishable on stdout: the crashed generation resumes in place,
   its journal completes to the exact bytes the uninterrupted run writes,
   and the rendered events (which deliberately omit the replay accounting)
   match a control run that never crashed. *)
let test_kill_mid_research_resume () =
  let model, events = scenario () in
  let killed_dir = temp_dir () and control_dir = temp_dir () in
  (* First incarnation: crash once generation 0's journal holds 2 fresh
     records. The exception escapes the serving loop — that is the crash
     the journals exist to survive. *)
  (match
     run_serving
       ~pilot_cfg:(pilot_config ~dir:killed_dir ~faults:(Faultplan.of_string "kill@2") ())
       ~model ~events ~forced:[ 1; 3 ] ()
   with
  | (_ : Engine.summary * Autopilot.t option) ->
      Alcotest.fail "serving loop survived its own simulated crash"
  | exception Faultplan.Killed n ->
      Alcotest.(check int) "killed at the threshold" 2 n);
  (match Autopilot.generation_files ~dir:killed_dir with
  | [ (0, path, false) ] ->
      let replay = Journal.load path in
      Alcotest.(check int) "partial journal flushed on the way down" 2
        (Journal.loaded replay)
  | gens -> Alcotest.failf "expected one partial generation, got %d"
              (List.length gens));
  (* Second incarnation (same journal dir) and an uninterrupted control
     (fresh dir): same events, same swaps, same journal bytes. *)
  let summary_r, pilot_r =
    run_serving ~pilot_cfg:(pilot_config ~dir:killed_dir ()) ~model ~events
      ~forced:[ 1; 3 ] ()
  in
  let summary_c, pilot_c =
    run_serving ~pilot_cfg:(pilot_config ~dir:control_dir ()) ~model ~events
      ~forced:[ 1; 3 ] ()
  in
  let strings p = List.map Autopilot.event_to_string (Autopilot.events (Option.get p)) in
  Alcotest.(check (list string)) "rendered events diff-clean across the crash"
    (strings pilot_c) (strings pilot_r);
  Alcotest.(check (list (float 0.))) "same swap instants"
    (List.map (fun s -> s.Engine.swap_ts) summary_c.Engine.swaps)
    (List.map (fun s -> s.Engine.swap_ts) summary_r.Engine.swaps);
  List.iter2
    (fun (g_r, p_r, done_r) (g_c, p_c, done_c) ->
      Alcotest.(check int) "same generations" g_c g_r;
      Alcotest.(check bool) "same completion" done_c done_r;
      Alcotest.(check string)
        (Printf.sprintf "generation %d journal bit-identical" g_r)
        (read_file p_c) (read_file p_r))
    (Autopilot.generation_files ~dir:killed_dir)
    (Autopilot.generation_files ~dir:control_dir);
  rm_rf killed_dir;
  rm_rf control_dir

let suite =
  [
    Alcotest.test_case "generation files" `Quick test_generation_files;
    Alcotest.test_case "create validates" `Quick test_create_validates;
    Alcotest.test_case "end-to-end regime shift" `Quick
      test_end_to_end_regime_shift;
    Alcotest.test_case "forced failure never worse" `Quick
      test_forced_failure_never_worse;
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
    Alcotest.test_case "kill mid-re-search resume" `Quick
      test_kill_mid_research_resume;
  ]
