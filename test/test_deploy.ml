(* Deployment-side passes: BNN binarization, the MAT runtime interpreter,
   IR persistence, reaction-time analysis, and Hyperband search. *)
open Homunculus_backends
module Ml = Homunculus_ml
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng
open Homunculus_netdata

(* Bnn *)

let trained_mlp_ir seed =
  let rng = Rng.create seed in
  let x =
    Array.init 200 (fun i ->
        let mu = if i mod 2 = 0 then -2. else 2. in
        [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  let y = Array.init 200 (fun i -> i mod 2) in
  let d = Ml.Dataset.create ~x ~y ~n_classes:2 () in
  let mlp = Ml.Mlp.create (Rng.create 1) ~input_dim:2 ~hidden:[| 8 |] ~output_dim:2 () in
  let config = { Ml.Train.default_config with Ml.Train.epochs = 20; patience = None } in
  let _ = Ml.Train.fit (Rng.create 2) mlp config d in
  (Model_ir.of_mlp ~name:"blobs" mlp, x, y)

let test_binarize_makes_weights_binary () =
  let ir, _, _ = trained_mlp_ir 10 in
  Alcotest.(check bool) "not binary before" true (Bnn.binary_fraction ir < 0.9);
  let b = Bnn.binarize_dnn ir in
  Alcotest.(check (float 1e-9)) "fully binary after" 1. (Bnn.binary_fraction b)

let test_binarize_preserves_shape () =
  let ir, _, _ = trained_mlp_ir 11 in
  let b = Bnn.binarize_dnn ir in
  Alcotest.(check int) "params" (Model_ir.param_count ir) (Model_ir.param_count b);
  Alcotest.(check bool) "validates" true (Model_ir.validate b = Ok ())

let test_binarize_accuracy_tradeoff () =
  let ir, x, y = trained_mlp_ir 12 in
  let full, binary = Bnn.accuracy_cost ir ~x ~y in
  (* On easy blobs the binarized net stays usable but cannot beat full
     precision by much; both must be far above chance. *)
  Alcotest.(check bool) "full precision strong" true (full > 0.9);
  Alcotest.(check bool) "binarized still works" true (binary > 0.7);
  Alcotest.(check bool) "binarization never helps a lot" true (binary <= full +. 0.05)

let test_binarize_rejects_non_dnn () =
  Alcotest.check_raises "kmeans" (Invalid_argument "Bnn.binarize_dnn: not a DNN")
    (fun () ->
      ignore (Bnn.binarize_dnn (Model_ir.Kmeans { name = "k"; centroids = [| [| 0. |] |] })))

let test_binarized_mats_counted () =
  let ir, _, _ = trained_mlp_ir 13 in
  Alcotest.(check bool) "MAT cost positive" true (Bnn.mats_for_binarized ir > 0)

(* Runtime *)

let test_runtime_rejects_dnn () =
  let ir, _, _ = trained_mlp_ir 14 in
  Alcotest.check_raises "dnn"
    (Invalid_argument "Runtime.load: DNNs do not map to MATs (binarize first)")
    (fun () -> ignore (Runtime.load ir))

let test_runtime_svm_fidelity () =
  let rng = Rng.create 15 in
  let x =
    Array.init 200 (fun i ->
        let mu = if i mod 2 = 0 then -2. else 2. in
        [| Rng.gaussian rng ~mu (); Rng.gaussian rng ~mu () |])
  in
  let y = Array.init 200 (fun i -> i mod 2) in
  let d = Ml.Dataset.create ~x ~y ~n_classes:2 () in
  let svm = Ml.Svm.fit rng d in
  let ir = Model_ir.of_svm ~name:"s" svm in
  let rt = Runtime.load ir in
  Alcotest.(check bool) "high fidelity" true (Runtime.fidelity rt ir ~x > 0.95);
  Alcotest.(check int) "svm has no misses" 0 (Runtime.miss_count rt)

let test_runtime_tree_fidelity () =
  let rng = Rng.create 16 in
  let x = Array.init 200 (fun _ -> [| Rng.uniform rng (-2.) 2.; Rng.uniform rng (-2.) 2. |]) in
  let y = Array.map (fun r -> if r.(0) *. r.(1) > 0. then 1 else 0) x in
  let tree = Ml.Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
  let ir =
    Model_ir.Tree
      { name = "t"; root = Ml.Decision_tree.Classifier.root tree; n_features = 2; n_classes = 2 }
  in
  let rt = Runtime.load ir in
  Alcotest.(check bool) "tree fidelity" true (Runtime.fidelity rt ir ~x > 0.95)

let test_runtime_kmeans_cells_and_misses () =
  let rng = Rng.create 17 in
  let x =
    Array.init 200 (fun i ->
        let mu = if i mod 2 = 0 then -1.5 else 1.5 in
        [| Rng.gaussian rng ~mu ~sigma:0.3 () |])
  in
  let km = Ml.Kmeans.fit rng ~k:2 x in
  let ir = Model_ir.of_kmeans ~name:"k" km in
  let rt = Runtime.load ir in
  let fid = Runtime.fidelity rt ir ~x in
  Alcotest.(check bool) "cells approximate nearest-centroid" true (fid > 0.9);
  (* A point far outside every cell exercises the default action. *)
  let far = [| 100. |] in
  let verdict = Runtime.classify rt far in
  Alcotest.(check int) "default action used" 1 (Runtime.miss_count rt);
  Alcotest.(check int) "default = nearest centroid" (Inference.predict ir far) verdict

let test_runtime_quantize () =
  Alcotest.(check int) "unit scale" 256 (Runtime.quantize 1.);
  Alcotest.(check int) "clamps" 32767 (Runtime.quantize 1e9);
  Alcotest.(check int) "negative clamps" (-32768) (Runtime.quantize (-1e9))

(* Quantization edges: the 8.8 key encoding covers |x| < 128; beyond that
   every input collapses onto the clamped key unless a calibration sample
   widens the per-feature scale. *)

let test_runtime_quantize_saturation_boundary () =
  Alcotest.(check bool) "in range is not clamped" true
    (Runtime.quantize 127. < 32767);
  Alcotest.(check int) "saturates at 128" 32767 (Runtime.quantize 128.);
  Alcotest.(check int) "saturated values collapse" (Runtime.quantize 200.)
    (Runtime.quantize 1000.);
  Alcotest.(check int) "negative saturation collapses"
    (Runtime.quantize (-200.))
    (Runtime.quantize (-1e6))

(* A one-feature SVM that predicts class 0 iff x > threshold: scores are
   [x - t] and [t - x], so the decision boundary sits exactly at [t]. *)
let step_svm ~threshold =
  Model_ir.Svm
    {
      name = "step";
      class_weights = [| [| 1. |]; [| -1. |] |];
      biases = [| -.threshold; threshold |];
    }

let test_runtime_quantization_in_range_agreement () =
  let ir = step_svm ~threshold:50. in
  let rt = Runtime.load ir in
  let rng = Rng.create 18 in
  (* In-range inputs clear of the boundary by more than the rounding error
     of the 8.8 keys: the table pipeline must agree with the FP reference
     everywhere, not just on average. *)
  let x =
    Array.init 500 (fun _ ->
        let v = Rng.uniform rng (-120.) 120. in
        [| (if Float.abs (v -. 50.) < 1. then 60. else v) |])
  in
  Alcotest.(check (array int))
    "exact agreement with Inference in range"
    (Inference.predict_all ir x) (Runtime.classify_all rt x)

let test_runtime_saturation_needs_calibration () =
  let ir = step_svm ~threshold:300. in
  let rt = Runtime.load ir in
  (* Both inputs exceed |x| = 128: without calibration they quantize to the
     same clamped key, so the pipeline cannot tell them apart even though
     the FP reference puts them on opposite sides of the boundary. *)
  Alcotest.(check bool) "FP reference distinguishes them" true
    (Inference.predict ir [| 200. |] <> Inference.predict ir [| 400. |]);
  Alcotest.(check int) "saturated keys are indistinguishable"
    (Runtime.classify rt [| 200. |])
    (Runtime.classify rt [| 400. |]);
  Alcotest.(check (float 1e-9)) "default scale is 8.8" 256.
    (Runtime.feature_scales rt).(0);
  (* A calibration sample covering the observed range widens the scale and
     restores agreement with the reference. *)
  let calibration = Array.init 32 (fun i -> [| float_of_int i *. 16. |]) in
  let rtc = Runtime.load ~calibration ir in
  Alcotest.(check bool) "calibrated scale is wider" true
    ((Runtime.feature_scales rtc).(0) < 256.);
  Alcotest.(check int) "calibrated agrees at 200"
    (Inference.predict ir [| 200. |])
    (Runtime.classify rtc [| 200. |]);
  Alcotest.(check int) "calibrated agrees at 400"
    (Inference.predict ir [| 400. |])
    (Runtime.classify rtc [| 400. |])

(* Ir_io *)

let test_ir_io_roundtrip_dnn () =
  let ir, x, _ = trained_mlp_ir 18 in
  let path = Filename.temp_file "homunculus" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ir_io.save ~path ir;
      let back = Ir_io.load ~path in
      Alcotest.(check string) "name" (Model_ir.name ir) (Model_ir.name back);
      Array.iter
        (fun sample ->
          let a = Inference.scores ir sample and b = Inference.scores back sample in
          Array.iteri
            (fun i v -> Alcotest.(check (float 0.)) "bit-exact scores" v b.(i))
            a |> ignore;
          ignore b)
        (Array.sub x 0 20))

let test_ir_io_roundtrip_all_algorithms () =
  let tree =
    Model_ir.Tree
      {
        name = "t";
        root =
          Ml.Decision_tree.Split
            {
              feature = 1;
              threshold = 0.125;
              left = Ml.Decision_tree.Leaf { distribution = [| 0.75; 0.25 |] };
              right = Ml.Decision_tree.Leaf { distribution = [| 0.1; 0.9 |] };
            };
        n_features = 3;
        n_classes = 2;
      }
  in
  let kmeans = Model_ir.Kmeans { name = "k"; centroids = [| [| 0.1; -0.2 |]; [| 3.; 4. |] |] } in
  let svm =
    Model_ir.Svm { name = "s"; class_weights = [| [| 1.5; -2.25 |] |]; biases = [| 0.5 |] }
  in
  List.iter
    (fun ir ->
      let back = Ir_io.of_json (Ir_io.to_json ir) in
      Alcotest.(check bool)
        (Model_ir.algorithm ir ^ " roundtrip")
        true (back = ir))
    [ tree; kmeans; svm ]

let test_ir_io_rejects_garbage () =
  Alcotest.(check bool) "unknown algorithm" true
    (try
       ignore
         (Ir_io.of_json
            (Homunculus_util.Json.of_string {| {"algorithm": "gan", "name": "x"} |}));
       false
     with Invalid_argument _ -> true)

(* Reaction *)

let simple_classifier flows =
  (* Train a quick tree on full-flow markers. *)
  let x = Array.map (fun f -> Botnet.flow_features Botnet.Fused f ()) flows in
  let y = Array.map (fun f -> Flow.label_to_int f.Flow.label) flows in
  let tree = Ml.Decision_tree.Classifier.fit ~x ~y ~n_classes:2 () in
  fun features -> Ml.Decision_tree.Classifier.predict tree features

let test_detection_curve_improves () =
  let rng = Rng.create 19 in
  let flows = Flowsim.generate rng () in
  let classify = simple_classifier flows in
  let curve =
    Reaction.detection_curve ~classify ~bins:Botnet.Fused
      ~prefix_lengths:[ 2; 16; 120 ] flows
  in
  (match curve with
  | [ early; mid; late ] ->
      Alcotest.(check bool) "more packets help" true
        (late.Reaction.f1 >= early.Reaction.f1 -. 0.05);
      Alcotest.(check bool) "mid decent" true (mid.Reaction.f1 > 0.6);
      Alcotest.(check bool) "flow counts shrink" true
        (late.Reaction.n_flows <= early.Reaction.n_flows)
  | _ -> Alcotest.fail "expected three points")

let test_reaction_times_and_summary () =
  let rng = Rng.create 20 in
  let flows = Flowsim.generate rng () in
  let classify = simple_classifier flows in
  let reactions = Reaction.reaction_times ~classify ~bins:Botnet.Fused flows in
  Alcotest.(check bool) "covers all botnet flows" true
    (List.length reactions > 0);
  let s = Reaction.summarize reactions in
  Alcotest.(check bool) "most flows detected" true (s.Reaction.detection_rate > 0.7);
  Alcotest.(check bool) "fast detection" true (s.Reaction.mean_packets < 60.);
  (* The paper's claim: far below the 3600 s flowmarker window. *)
  Alcotest.(check bool) "well under an hour" true (s.Reaction.median_seconds < 3600.)

let test_reaction_confirm_debounces () =
  let rng = Rng.create 21 in
  let flows = Flowsim.generate rng () in
  let classify = simple_classifier flows in
  let fast = Reaction.summarize (Reaction.reaction_times ~classify ~bins:Botnet.Fused ~confirm:1 flows) in
  let slow = Reaction.summarize (Reaction.reaction_times ~classify ~bins:Botnet.Fused ~confirm:5 flows) in
  Alcotest.(check bool) "confirmation delays verdicts" true
    (slow.Reaction.detected = 0
    || slow.Reaction.mean_packets >= fast.Reaction.mean_packets)

(* Hyperband *)

let quadratic_space =
  Bo.Design_space.create
    [ Bo.Param.real "x" ~lo:(-5.) ~hi:5.; Bo.Param.real "y" ~lo:(-5.) ~hi:5. ]

let test_hyperband_budget_accounting () =
  let s = Bo.Hyperband.default_settings in
  Alcotest.(check int) "rungs" 4 (Bo.Hyperband.n_rungs s);
  (* 27 + 9 + 3 + 1 *)
  Alcotest.(check int) "evals" 40 (Bo.Hyperband.total_evaluations s)

let test_hyperband_finds_good_point () =
  let f config ~fidelity =
    let x = Bo.Config.get_float config "x" and y = Bo.Config.get_float config "y" in
    ignore fidelity;
    {
      Bo.Hyperband.objective = -.((x -. 2.) ** 2.) -. ((y +. 1.) ** 2.);
      feasible = true;
    }
  in
  let h = Bo.Hyperband.search (Rng.create 22) quadratic_space ~f in
  Alcotest.(check int) "evaluation count" 40 (Bo.History.length h);
  match Bo.History.best h with
  | Some e -> Alcotest.(check bool) "found decent point" true (e.Bo.History.objective > -4.)
  | None -> Alcotest.fail "expected a best"

let test_hyperband_fidelity_grows () =
  let fidelities = ref [] in
  let f _config ~fidelity =
    fidelities := fidelity :: !fidelities;
    { Bo.Hyperband.objective = 0.; feasible = true }
  in
  let _ = Bo.Hyperband.search (Rng.create 23) quadratic_space ~f in
  let fs = List.rev !fidelities in
  Alcotest.(check bool) "starts low" true (List.hd fs < 0.5);
  Alcotest.(check (float 1e-9)) "ends at full fidelity" 1.
    (List.nth fs (List.length fs - 1))

let test_hyperband_drops_infeasible () =
  let f config ~fidelity =
    ignore fidelity;
    let x = Bo.Config.get_float config "x" in
    { Bo.Hyperband.objective = x; feasible = x <= 0. }
  in
  let h = Bo.Hyperband.search (Rng.create 24) quadratic_space ~f in
  match Bo.History.best h with
  | Some e ->
      Alcotest.(check bool) "best is feasible" true e.Bo.History.feasible;
      Alcotest.(check bool) "x <= 0" true
        (Bo.Config.get_float e.Bo.History.config "x" <= 0.)
  | None -> Alcotest.fail "expected a feasible best"

let suite =
  [
    Alcotest.test_case "bnn binarizes" `Quick test_binarize_makes_weights_binary;
    Alcotest.test_case "bnn shape" `Quick test_binarize_preserves_shape;
    Alcotest.test_case "bnn accuracy tradeoff" `Quick test_binarize_accuracy_tradeoff;
    Alcotest.test_case "bnn rejects non-dnn" `Quick test_binarize_rejects_non_dnn;
    Alcotest.test_case "bnn MAT cost" `Quick test_binarized_mats_counted;
    Alcotest.test_case "runtime rejects dnn" `Quick test_runtime_rejects_dnn;
    Alcotest.test_case "runtime svm fidelity" `Quick test_runtime_svm_fidelity;
    Alcotest.test_case "runtime tree fidelity" `Quick test_runtime_tree_fidelity;
    Alcotest.test_case "runtime kmeans cells" `Quick test_runtime_kmeans_cells_and_misses;
    Alcotest.test_case "runtime quantize" `Quick test_runtime_quantize;
    Alcotest.test_case "runtime saturation boundary" `Quick
      test_runtime_quantize_saturation_boundary;
    Alcotest.test_case "runtime in-range agreement" `Quick
      test_runtime_quantization_in_range_agreement;
    Alcotest.test_case "runtime calibration rescues saturation" `Quick
      test_runtime_saturation_needs_calibration;
    Alcotest.test_case "ir_io dnn roundtrip" `Quick test_ir_io_roundtrip_dnn;
    Alcotest.test_case "ir_io all algorithms" `Quick test_ir_io_roundtrip_all_algorithms;
    Alcotest.test_case "ir_io rejects garbage" `Quick test_ir_io_rejects_garbage;
    Alcotest.test_case "reaction curve" `Quick test_detection_curve_improves;
    Alcotest.test_case "reaction times" `Quick test_reaction_times_and_summary;
    Alcotest.test_case "reaction debounce" `Quick test_reaction_confirm_debounces;
    Alcotest.test_case "hyperband budget" `Quick test_hyperband_budget_accounting;
    Alcotest.test_case "hyperband optimizes" `Quick test_hyperband_finds_good_point;
    Alcotest.test_case "hyperband fidelity" `Quick test_hyperband_fidelity_grows;
    Alcotest.test_case "hyperband feasibility" `Quick test_hyperband_drops_infeasible;
  ]
