open Homunculus_tensor

let feq = Alcotest.(check (float 1e-9))
let farr = Alcotest.(check (array (float 1e-9)))

(* Vec *)

let test_vec_create () =
  farr "zeros" [| 0.; 0.; 0. |] (Vec.create 3)

let test_vec_dot () =
  feq "dot" 32. (Vec.dot [| 1.; 2.; 3. |] [| 4.; 5.; 6. |])

let test_vec_dot_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot [| 1. |] [| 1.; 2. |]))

let test_vec_add_sub_mul () =
  farr "add" [| 5.; 7. |] (Vec.add [| 1.; 2. |] [| 4.; 5. |]);
  farr "sub" [| -3.; -3. |] (Vec.sub [| 1.; 2. |] [| 4.; 5. |]);
  farr "mul" [| 4.; 10. |] (Vec.mul [| 1.; 2. |] [| 4.; 5. |])

let test_vec_scale () = farr "scale" [| 2.; 4. |] (Vec.scale 2. [| 1.; 2. |])

let test_vec_axpy () =
  let y = [| 1.; 1. |] in
  Vec.axpy ~alpha:2. ~x:[| 3.; 4. |] ~y;
  farr "axpy" [| 7.; 9. |] y

let test_vec_add_in_place () =
  let dst = [| 1.; 2. |] in
  Vec.add_in_place dst [| 10.; 20. |];
  farr "add_in_place" [| 11.; 22. |] dst

let test_vec_norm_dist () =
  feq "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  feq "sq_dist" 25. (Vec.sq_dist [| 0.; 0. |] [| 3.; 4. |])

let test_vec_sum_argmax () =
  feq "sum" 6. (Vec.sum [| 1.; 2.; 3. |]);
  Alcotest.(check int) "argmax" 1 (Vec.argmax [| 1.; 5.; 3. |])

let test_vec_concat () =
  farr "concat" [| 1.; 2.; 3. |] (Vec.concat [| 1. |] [| 2.; 3. |])

(* Mat *)

let test_mat_init_get () =
  let m = Mat.init 2 3 (fun i j -> float_of_int ((10 * i) + j)) in
  feq "m(0,0)" 0. (Mat.get m 0 0);
  feq "m(1,2)" 12. (Mat.get m 1 2)

let test_mat_of_rows () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  feq "m(1,0)" 3. (Mat.get m 1 0)

let test_mat_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Mat.of_rows [| [| 1. |]; [| 1.; 2. |] |]))

let test_mat_set () =
  let m = Mat.create 2 2 in
  Mat.set m 0 1 9.;
  feq "set" 9. (Mat.get m 0 1)

let test_mat_row_col () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  farr "row" [| 3.; 4. |] (Mat.row m 1);
  farr "col" [| 2.; 4. |] (Mat.col m 1)

let test_mat_row_is_copy () =
  let m = Mat.of_rows [| [| 1.; 2. |] |] in
  let r = Mat.row m 0 in
  r.(0) <- 99.;
  feq "original intact" 1. (Mat.get m 0 0)

let test_mat_transpose () =
  let m = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose m in
  Alcotest.(check int) "rows" 3 t.Mat.rows;
  feq "t(2,1)" 6. (Mat.get t 2 1)

let test_mat_matvec () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  farr "matvec" [| 5.; 11. |] (Mat.matvec m [| 1.; 2. |])

let test_mat_matvec_t () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  (* transpose(m) * v *)
  farr "matvec_t" [| 7.; 10. |] (Mat.matvec_t m [| 1.; 2. |])

let test_mat_matvec_t_equals_transpose () =
  let m = Mat.init 3 4 (fun i j -> float_of_int ((i * 4) + j)) in
  let v = [| 1.; -2.; 0.5 |] in
  farr "agree" (Mat.matvec (Mat.transpose m) v) (Mat.matvec_t m v)

let test_mat_matmul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.matmul a b in
  farr "row0" [| 19.; 22. |] (Mat.row c 0);
  farr "row1" [| 43.; 50. |] (Mat.row c 1)

let test_mat_matmul_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Mat.matmul: dimension mismatch")
    (fun () -> ignore (Mat.matmul (Mat.create 2 3) (Mat.create 2 3)))

let test_mat_add_scale () =
  let a = Mat.of_rows [| [| 1.; 2. |] |] in
  let b = Mat.of_rows [| [| 10.; 20. |] |] in
  farr "add" [| 11.; 22. |] (Mat.row (Mat.add a b) 0);
  farr "scale" [| 2.; 4. |] (Mat.row (Mat.scale 2. a) 0)

let test_mat_axpy () =
  let x = Mat.of_rows [| [| 1.; 2. |] |] in
  let y = Mat.of_rows [| [| 10.; 10. |] |] in
  Mat.axpy ~alpha:3. ~x ~y;
  farr "axpy" [| 13.; 16. |] (Mat.row y 0)

let test_mat_frobenius () =
  feq "frobenius" 5. (Mat.frobenius (Mat.of_rows [| [| 3.; 4. |] |]))

let test_mat_outer () =
  let o = Mat.outer [| 1.; 2. |] [| 3.; 4.; 5. |] in
  Alcotest.(check int) "shape" 2 o.Mat.rows;
  farr "row1" [| 6.; 8.; 10. |] (Mat.row o 1)

let test_mat_outer_accum () =
  let acc = Mat.create 2 2 in
  Mat.outer_accum ~alpha:2. ~u:[| 1.; 2. |] ~v:[| 3.; 4. |] ~acc;
  farr "row0" [| 6.; 8. |] (Mat.row acc 0);
  farr "row1" [| 12.; 16. |] (Mat.row acc 1);
  Mat.outer_accum ~alpha:1. ~u:[| 1.; 0. |] ~v:[| 1.; 1. |] ~acc;
  farr "accumulates" [| 7.; 9. |] (Mat.row acc 0)

let test_mat_copy_independent () =
  let a = Mat.create 1 1 in
  let b = Mat.copy a in
  Mat.set b 0 0 5.;
  feq "original" 0. (Mat.get a 0 0)

let test_mat_inplace_ops () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Mat.add_inplace m (Mat.of_rows [| [| 10.; 10. |]; [| 10.; 10. |] |]);
  farr "add_inplace" [| 11.; 12. |] (Mat.row m 0);
  Mat.scale_inplace 2. m;
  farr "scale_inplace" [| 22.; 24. |] (Mat.row m 0);
  Mat.map_inplace (fun v -> v -. 1.) m;
  farr "map_inplace" [| 21.; 23. |] (Mat.row m 0);
  Mat.add_row_inplace m [| 1.; -1. |];
  farr "add_row row0" [| 22.; 22. |] (Mat.row m 0);
  farr "add_row row1" [| 26.; 26. |] (Mat.row m 1)

let test_mat_add_row_inplace_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Mat.add_row_inplace: dimension mismatch") (fun () ->
      Mat.add_row_inplace (Mat.create 2 3) [| 1.; 2. |])

let test_mat_matmul_nt () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  (* a * transpose(b) *)
  let c = Mat.matmul_nt a b in
  farr "row0" [| 17.; 23. |] (Mat.row c 0);
  farr "row1" [| 39.; 53. |] (Mat.row c 1);
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Mat.matmul_nt: dimension mismatch") (fun () ->
      ignore (Mat.matmul_nt (Mat.create 2 3) (Mat.create 2 4)))

(* Reference ikj product: one accumulator per output cell, k ascending —
   the exact accumulation order both matmul paths promise to preserve. *)
let naive_matmul a b =
  let out = Mat.create a.Mat.rows b.Mat.cols in
  for i = 0 to a.Mat.rows - 1 do
    for j = 0 to b.Mat.cols - 1 do
      let acc = ref 0. in
      for k = 0 to a.Mat.cols - 1 do
        acc := !acc +. (Mat.get a i k *. Mat.get b k j)
      done;
      Mat.set out i j !acc
    done
  done;
  out

let random_mat rng r c =
  Mat.init r c (fun _ _ -> Homunculus_util.Rng.uniform rng (-2.) 2.)

let test_mat_matmul_blocked_matches_naive_exactly () =
  (* Shapes straddle the small/large dispatch threshold (16384 flops) so both
     the plain-ikj and the packed-blocked path are exercised; equality is
     exact, not approximate — the blocked kernel must preserve IEEE
     accumulation order. *)
  let rng = Homunculus_util.Rng.create 1234 in
  List.iter
    (fun (m, k, n) ->
      let a = random_mat rng m k and b = random_mat rng k n in
      let fast = Mat.matmul a b and slow = naive_matmul a b in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%dx%d bit-identical" m k n)
        true (fast = slow))
    [
      (1, 1, 1); (3, 5, 2); (17, 9, 13); (25, 25, 25);
      (* > threshold: packed/blocked path, including non-multiple-of-block
         edge tiles *) (40, 40, 40); (65, 70, 33); (130, 7, 19);
    ]

let prop_matvec_linear =
  QCheck.Test.make ~name:"matvec is linear" ~count:100
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (s, t) ->
      let m = Mat.init 3 3 (fun i j -> float_of_int (i + j)) in
      let u = [| 1.; 0.; 2. |] and v = [| 0.; 3.; 1. |] in
      let lhs =
        Mat.matvec m (Array.init 3 (fun i -> (s *. u.(i)) +. (t *. v.(i))))
      in
      let mu = Mat.matvec m u and mv = Mat.matvec m v in
      let rhs = Array.init 3 (fun i -> (s *. mu.(i)) +. (t *. mv.(i))) in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) lhs rhs)

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involution" ~count:50
    QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (r, c) ->
      let m = Mat.init r c (fun i j -> float_of_int ((i * 31) + j)) in
      Mat.transpose (Mat.transpose m) = m)

let suite =
  [
    Alcotest.test_case "vec create" `Quick test_vec_create;
    Alcotest.test_case "vec dot" `Quick test_vec_dot;
    Alcotest.test_case "vec dot mismatch" `Quick test_vec_dot_mismatch;
    Alcotest.test_case "vec add/sub/mul" `Quick test_vec_add_sub_mul;
    Alcotest.test_case "vec scale" `Quick test_vec_scale;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec add_in_place" `Quick test_vec_add_in_place;
    Alcotest.test_case "vec norm/dist" `Quick test_vec_norm_dist;
    Alcotest.test_case "vec sum/argmax" `Quick test_vec_sum_argmax;
    Alcotest.test_case "vec concat" `Quick test_vec_concat;
    Alcotest.test_case "mat init/get" `Quick test_mat_init_get;
    Alcotest.test_case "mat of_rows" `Quick test_mat_of_rows;
    Alcotest.test_case "mat of_rows ragged" `Quick test_mat_of_rows_ragged;
    Alcotest.test_case "mat set" `Quick test_mat_set;
    Alcotest.test_case "mat row/col" `Quick test_mat_row_col;
    Alcotest.test_case "mat row is copy" `Quick test_mat_row_is_copy;
    Alcotest.test_case "mat transpose" `Quick test_mat_transpose;
    Alcotest.test_case "mat matvec" `Quick test_mat_matvec;
    Alcotest.test_case "mat matvec_t" `Quick test_mat_matvec_t;
    Alcotest.test_case "matvec_t = transpose matvec" `Quick
      test_mat_matvec_t_equals_transpose;
    Alcotest.test_case "mat matmul" `Quick test_mat_matmul;
    Alcotest.test_case "mat matmul mismatch" `Quick test_mat_matmul_mismatch;
    Alcotest.test_case "mat add/scale" `Quick test_mat_add_scale;
    Alcotest.test_case "mat axpy" `Quick test_mat_axpy;
    Alcotest.test_case "mat frobenius" `Quick test_mat_frobenius;
    Alcotest.test_case "mat outer" `Quick test_mat_outer;
    Alcotest.test_case "mat outer_accum" `Quick test_mat_outer_accum;
    Alcotest.test_case "mat copy independent" `Quick test_mat_copy_independent;
    Alcotest.test_case "mat in-place ops" `Quick test_mat_inplace_ops;
    Alcotest.test_case "mat add_row_inplace mismatch" `Quick
      test_mat_add_row_inplace_mismatch;
    Alcotest.test_case "mat matmul_nt" `Quick test_mat_matmul_nt;
    Alcotest.test_case "mat matmul blocked = naive" `Quick
      test_mat_matmul_blocked_matches_naive_exactly;
    QCheck_alcotest.to_alcotest prop_matvec_linear;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
  ]
