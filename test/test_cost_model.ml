(* The learned cost-model pre-filter: its contract properties (margin = inf
   is bit-identical to the exact path at any worker count; predicted entries
   never out-rank exactly-evaluated feasible ones), the Costmodel_eval
   differential oracle on a separable synthetic problem, and the refit
   cadence of the surrogate pair. *)
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng
module Par = Homunculus_par.Par
module Costmodel_eval = Homunculus_check.Costmodel_eval

(* A cleanly separable synthetic black box: the upper half of the x axis is
   infeasible, and the objective rises away from the boundary, so the winner
   lives far from the region the filter learns to skip. *)
let space =
  Bo.Design_space.create
    [ Bo.Param.real "x" ~lo:0. ~hi:1.; Bo.Param.real "y" ~lo:0. ~hi:1. ]

let eval config : Bo.Optimizer.evaluation =
  let x = Bo.Config.get_float config "x" in
  let y = Bo.Config.get_float config "y" in
  let feasible = x < 0.5 in
  {
    objective = (if feasible then y *. (1. -. x) else 0.);
    feasible;
    pruned = false;
    metadata = [];
  }

let features config = Bo.Design_space.encode space config

let settings ?(batch_size = 1) ?(n_iter = 30) () =
  {
    Bo.Optimizer.default_settings with
    Bo.Optimizer.n_init = 10;
    n_iter;
    pool_size = 40;
    surrogate_trees = 10;
    batch_size;
  }

let entries_equal (a : Bo.History.entry) (b : Bo.History.entry) =
  Bo.Config.equal a.Bo.History.config b.Bo.History.config
  && Int64.bits_of_float a.Bo.History.objective
     = Int64.bits_of_float b.Bo.History.objective
  && a.Bo.History.feasible = b.Bo.History.feasible
  && a.Bo.History.pruned = b.Bo.History.pruned
  && a.Bo.History.metadata = b.Bo.History.metadata

let histories_equal a b =
  Bo.History.length a = Bo.History.length b
  && List.for_all2 entries_equal (Bo.History.entries a) (Bo.History.entries b)

let filtered_history ~seed ~settings ~cm_settings ?pool () =
  let cm = Bo.Cost_model.create ~settings:cm_settings ~seed ~features () in
  let on_iteration (_ : int) (e : Bo.History.entry) =
    if not (Bo.Cost_model.is_predicted e.Bo.History.metadata) then
      Bo.Cost_model.observe cm ~config:e.Bo.History.config
        ~objective:e.Bo.History.objective ~feasible:e.Bo.History.feasible
        ~pruned:e.Bo.History.pruned
  in
  let history =
    Bo.Optimizer.maximize (Rng.create seed) ~settings ?pool ~on_iteration
      ~prefilter:(Bo.Cost_model.prefilter cm) space ~f:eval
  in
  (history, cm)

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

(* Property (a): with margin = infinity the filter never skips, so the
   filtered search — observations, refits, counters and all — commits a
   bit-identical history and winner, whatever the batch size. *)
let prop_infinite_margin_identity =
  QCheck.Test.make
    ~name:"margin = inf filter is bit-identical to the exact path" ~count:25
    seed_gen (fun seed ->
      let batch_size = 1 + (seed mod 3) in
      let settings = settings ~batch_size () in
      let exact =
        Bo.Optimizer.maximize (Rng.create seed) ~settings space ~f:eval
      in
      let filtered, cm =
        filtered_history ~seed ~settings
          ~cm_settings:
            {
              Bo.Cost_model.default_settings with
              Bo.Cost_model.margin = infinity;
              min_observations = 8;
            }
          ()
      in
      (Bo.Cost_model.stats cm).Bo.Cost_model.skipped = 0
      && histories_equal exact filtered)

(* Pre-filter decisions are made sequentially in proposal order, so the
   worker count cannot change them: the same seeded filtered search commits
   the same history on 1 worker and on 4. *)
let prop_filter_worker_determinism =
  let pool1 = Par.create ~jobs:1 () in
  let pool4 = Par.create ~jobs:4 () in
  QCheck.Test.make ~name:"filtered search is deterministic at any worker count"
    ~count:10 seed_gen (fun seed ->
      let settings = settings ~batch_size:4 () in
      let cm_settings =
        { Bo.Cost_model.default_settings with Bo.Cost_model.min_observations = 8 }
      in
      let h1, _ = filtered_history ~seed ~settings ~cm_settings ~pool:pool1 () in
      let h4, _ = filtered_history ~seed ~settings ~cm_settings ~pool:pool4 () in
      histories_equal h1 h4)

(* Property (b): predicted entries are committed infeasible, and the history
   order ranks every feasible entry above every infeasible one — so a
   predicted skip can never out-rank a complete feasible evaluation. *)
let prop_predicted_never_outranks_feasible =
  QCheck.Test.make
    ~name:"predicted entries never out-rank a complete feasible entry"
    ~count:100 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let history = Bo.History.create () in
      let n = 3 + Rng.int rng 20 in
      let any_feasible = ref false in
      for _ = 1 to n do
        let config = Bo.Design_space.sample rng space in
        let eval =
          if Rng.bool rng then begin
            (* A predicted skip with an arbitrarily flattering objective. *)
            Bo.Cost_model.predicted_evaluation
              ~p_feasible:(Rng.float rng 0.35)
              ~predicted_objective:(Rng.float rng 10.)
          end
          else begin
            any_feasible := true;
            {
              Bo.Optimizer.objective = Rng.float rng 1.;
              feasible = true;
              pruned = false;
              metadata = [];
            }
          end
        in
        Bo.History.add history ~config ~objective:eval.Bo.Optimizer.objective
          ~feasible:eval.Bo.Optimizer.feasible ~pruned:eval.Bo.Optimizer.pruned
          ~metadata:eval.Bo.Optimizer.metadata ()
      done;
      match Bo.History.best_entry history with
      | None -> not !any_feasible
      | Some e ->
          (not !any_feasible)
          || not (Bo.Cost_model.is_predicted e.Bo.History.metadata))

(* Differential oracle on the separable problem: the filter may mispredict
   near the boundary, but it must never veto a feasible candidate that
   would have won, and the delivered winner must match the exact search's. *)
let prop_no_feasible_winner_vetoes =
  QCheck.Test.make ~name:"Costmodel_eval reports 0 feasible-winner vetoes"
    ~count:15 seed_gen (fun seed ->
      let report =
        Costmodel_eval.run ~seed ~settings:(settings ~n_iter:40 ())
          ~cost_settings:
            {
              Bo.Cost_model.default_settings with
              Bo.Cost_model.min_observations = 10;
            }
          ~space ~features ~eval ()
      in
      report.Costmodel_eval.feasible_winner_vetoes = 0
      && report.Costmodel_eval.winner_matched)

(* Unit behavior *)

let observe_grid cm n =
  (* A deterministic labeled sweep across the boundary. *)
  for i = 0 to n - 1 do
    let x = float_of_int i /. float_of_int (n - 1) in
    let config = Bo.Config.make [ ("x", Bo.Param.Real_value x); ("y", Bo.Param.Real_value 0.5) ] in
    let e = eval config in
    Bo.Cost_model.observe cm ~config ~objective:e.Bo.Optimizer.objective
      ~feasible:e.Bo.Optimizer.feasible ~pruned:e.Bo.Optimizer.pruned
  done

let probe x =
  Bo.Config.make [ ("x", Bo.Param.Real_value x); ("y", Bo.Param.Real_value 0.5) ]

let test_warmup_requires_exact () =
  let cm = Bo.Cost_model.create ~seed:7 ~features () in
  (match Bo.Cost_model.classify cm (probe 0.95) with
  | Bo.Cost_model.Exact_required _ -> ()
  | Bo.Cost_model.Predicted_infeasible _ ->
      Alcotest.fail "skipped during warm-up");
  observe_grid cm 8 (* below min_observations = 12 *);
  match Bo.Cost_model.classify cm (probe 0.95) with
  | Bo.Cost_model.Exact_required _ -> ()
  | Bo.Cost_model.Predicted_infeasible _ ->
      Alcotest.fail "skipped before min_observations"

let test_learned_skip_and_feasible_passthrough () =
  let cm = Bo.Cost_model.create ~seed:7 ~features () in
  observe_grid cm 24;
  (match Bo.Cost_model.classify cm (probe 0.95) with
  | Bo.Cost_model.Predicted_infeasible { p_feasible; _ } ->
      Alcotest.(check bool) "confidently infeasible" true (p_feasible < 0.35)
  | Bo.Cost_model.Exact_required reason ->
      Alcotest.failf "deep-infeasible probe not skipped: %s" reason);
  (match Bo.Cost_model.classify cm (probe 0.05) with
  | Bo.Cost_model.Exact_required _ -> ()
  | Bo.Cost_model.Predicted_infeasible _ ->
      Alcotest.fail "clearly feasible probe skipped");
  let s = Bo.Cost_model.stats cm in
  Alcotest.(check int) "observations" 24 s.Bo.Cost_model.observations;
  Alcotest.(check int) "consults" 2 s.Bo.Cost_model.consults;
  Alcotest.(check int) "skips recorded" 1 s.Bo.Cost_model.skipped;
  Alcotest.(check int) "skipped corpus" 1
    (List.length (Bo.Cost_model.skipped_configs cm))

let test_winner_guard_blocks_skips () =
  (* winner_sigma = inf makes [mean + sigma * std < best] unsatisfiable, and
     conviction = 0 keeps the guard armed at any probability — so nothing is
     ever skipped, however confident the classifier. *)
  let cm =
    Bo.Cost_model.create
      ~settings:
        {
          Bo.Cost_model.default_settings with
          Bo.Cost_model.winner_sigma = infinity;
          conviction = 0.;
        }
      ~seed:7 ~features ()
  in
  observe_grid cm 24;
  (match Bo.Cost_model.classify cm (probe 0.95) with
  | Bo.Cost_model.Exact_required _ -> ()
  | Bo.Cost_model.Predicted_infeasible _ ->
      Alcotest.fail "skip slipped past the winner guard");
  let s = Bo.Cost_model.stats cm in
  Alcotest.(check int) "nothing skipped" 0 s.Bo.Cost_model.skipped;
  Alcotest.(check bool) "guard fired" true (s.Bo.Cost_model.winner_guarded >= 1)

let test_predicted_evaluation_shape () =
  let e = Bo.Cost_model.predicted_evaluation ~p_feasible:0.1 ~predicted_objective:0.4 in
  Alcotest.(check bool) "infeasible" false e.Bo.Optimizer.feasible;
  Alcotest.(check bool) "not pruned" false e.Bo.Optimizer.pruned;
  Alcotest.(check bool) "tagged" true
    (Bo.Cost_model.is_predicted e.Bo.Optimizer.metadata);
  Alcotest.(check (float 0.)) "probability carried" 0.1
    (List.assoc Bo.Cost_model.prob_key e.Bo.Optimizer.metadata);
  Alcotest.(check bool) "untagged metadata is not predicted" false
    (Bo.Cost_model.is_predicted [ ("latency_ns", 42.) ])

let test_refit_cadence () =
  (* With refit_every = 4 past the warm-up threshold, the surrogate pair is
     fitted a fraction of the times the classic loop fits it — and the run
     stays deterministic for the same settings. *)
  let run ~refit_every ~refit_threshold =
    let refits = ref 0 in
    let settings =
      { (settings ~n_iter:16 ()) with Bo.Optimizer.refit_every; refit_threshold }
    in
    let history =
      Bo.Optimizer.maximize (Rng.create 11) ~settings
        ~on_refit:(fun _ -> incr refits)
        space ~f:eval
    in
    (history, !refits)
  in
  let h_every, n_every = run ~refit_every:1 ~refit_threshold:0 in
  let h_cadence, n_cadence = run ~refit_every:4 ~refit_threshold:10 in
  let h_cadence', n_cadence' = run ~refit_every:4 ~refit_threshold:10 in
  Alcotest.(check int) "classic loop refits every round" 16 n_every;
  Alcotest.(check bool) "cadence amortizes refits" true (n_cadence <= 5);
  Alcotest.(check int) "cadence is deterministic" n_cadence n_cadence';
  Alcotest.(check bool) "same-settings runs are bit-identical" true
    (histories_equal h_cadence h_cadence');
  Alcotest.(check int) "same budget spent" (Bo.History.length h_every)
    (Bo.History.length h_cadence)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_infinite_margin_identity;
      prop_filter_worker_determinism;
      prop_predicted_never_outranks_feasible;
      prop_no_feasible_winner_vetoes;
    ]
  @ [
      Alcotest.test_case "warm-up requires exact evaluation" `Quick
        test_warmup_requires_exact;
      Alcotest.test_case "learned skip + feasible passthrough" `Quick
        test_learned_skip_and_feasible_passthrough;
      Alcotest.test_case "winner guard blocks skips" `Quick
        test_winner_guard_blocks_skips;
      Alcotest.test_case "predicted evaluation shape" `Quick
        test_predicted_evaluation_shape;
      Alcotest.test_case "surrogate refit cadence" `Quick test_refit_cadence;
    ]
