(* Resource accounting, model IR, Taurus/Tofino/FPGA models, IIsy mapping,
   and the Spatial/P4 code generators. *)
open Homunculus_backends
module Rng = Homunculus_util.Rng
module Ml = Homunculus_ml

let feq = Alcotest.(check (float 1e-9))

(* Helpers: small concrete models. *)

let dnn_layer n_in n_out activation =
  {
    Model_ir.n_in;
    n_out;
    activation;
    weights = Array.make_matrix n_out n_in 0.1;
    biases = Array.make n_out 0.;
  }

let small_dnn = Model_ir.Dnn { name = "ad"; layers = [| dnn_layer 7 12 "relu"; dnn_layer 12 8 "relu"; dnn_layer 8 2 "linear" |] }

let wide_dnn =
  Model_ir.Dnn
    { name = "wide"; layers = [| dnn_layer 30 10 "relu"; dnn_layer 10 10 "relu"; dnn_layer 10 10 "relu"; dnn_layer 10 10 "relu"; dnn_layer 10 2 "linear" |] }

let deep_dnn =
  let hidden = Array.init 10 (fun i -> dnn_layer (if i = 0 then 30 else 6) 6 "relu") in
  Model_ir.Dnn { name = "deep"; layers = Array.append hidden [| dnn_layer 6 2 "linear" |] }

let kmeans5 =
  Model_ir.Kmeans { name = "tc"; centroids = Array.make_matrix 5 7 0.5 }

let svm5 =
  Model_ir.Svm
    { name = "tc"; class_weights = Array.make_matrix 5 7 0.3; biases = Array.make 5 0. }

let tree_model =
  Model_ir.Tree
    {
      name = "tc";
      root =
        Ml.Decision_tree.Split
          {
            feature = 0;
            threshold = 0.5;
            left = Ml.Decision_tree.Leaf { distribution = [| 1.; 0. |] };
            right =
              Ml.Decision_tree.Split
                {
                  feature = 1;
                  threshold = 0.2;
                  left = Ml.Decision_tree.Leaf { distribution = [| 0.; 1. |] };
                  right = Ml.Decision_tree.Leaf { distribution = [| 0.5; 0.5 |] };
                };
          };
      n_features = 7;
      n_classes = 2;
    }

(* Resource *)

let test_perf_validates () =
  Alcotest.check_raises "zero throughput"
    (Invalid_argument "Resource.perf: throughput <= 0") (fun () ->
      ignore (Resource.perf ~min_throughput_gpps:0. ~max_latency_ns:1.))

let test_usage_percent_fits () =
  let u = Resource.usage ~resource:"CU" ~used:32. ~available:128. in
  feq "percent" 25. (Resource.percent u);
  Alcotest.(check bool) "fits" true (Resource.fits u);
  let over = Resource.usage ~resource:"CU" ~used:200. ~available:128. in
  Alcotest.(check bool) "over" false (Resource.fits over)

(* The smart constructor rejects available <= 0, but the record type is
   public — build the usages literally, as a device description with an
   empty resource class would. percent/fits must stay total: no inf/nan
   percentages for idle empty resources, and anything charged against an
   empty resource can never fit. *)
let test_usage_zero_capacity () =
  let idle = { Resource.resource = "MU"; used = 0.; available = 0. } in
  feq "idle percent" 0. (Resource.percent idle);
  Alcotest.(check bool) "idle fits" true (Resource.fits idle);
  let charged = { Resource.resource = "MU"; used = 3.; available = 0. } in
  Alcotest.(check bool) "charged percent is +inf, not nan" true
    (Resource.percent charged = Float.infinity);
  Alcotest.(check bool) "charged does not fit" false (Resource.fits charged);
  let negative = { Resource.resource = "MU"; used = 1.; available = -2. } in
  Alcotest.(check bool) "negative capacity cannot fit" false
    (Resource.fits negative)

let test_check_feasible () =
  let v =
    Resource.check Resource.line_rate
      ~usages:[ Resource.usage ~resource:"CU" ~used:10. ~available:100. ]
      ~latency_ns:100. ~throughput_gpps:1.
  in
  Alcotest.(check bool) "feasible" true v.Resource.feasible;
  Alcotest.(check bool) "no rejection" true (v.Resource.rejection = None)

let test_check_rejections_in_order () =
  let over_resource =
    Resource.check Resource.line_rate
      ~usages:[ Resource.usage ~resource:"CU" ~used:200. ~available:100. ]
      ~latency_ns:10000. ~throughput_gpps:0.1
  in
  (match over_resource.Resource.rejection with
  | Some r -> Alcotest.(check bool) "resource named first" true
                (String.length r > 0 && String.sub r 0 2 = "CU")
  | None -> Alcotest.fail "expected rejection");
  let slow =
    Resource.check Resource.line_rate ~usages:[] ~latency_ns:10. ~throughput_gpps:0.2
  in
  (match slow.Resource.rejection with
  | Some r -> Alcotest.(check bool) "throughput" true
                (String.length r >= 10 && String.sub r 0 10 = "throughput")
  | None -> Alcotest.fail "expected rejection");
  let laggy =
    Resource.check Resource.line_rate ~usages:[] ~latency_ns:900. ~throughput_gpps:2.
  in
  match laggy.Resource.rejection with
  | Some r -> Alcotest.(check bool) "latency" true
                (String.length r >= 7 && String.sub r 0 7 = "latency")
  | None -> Alcotest.fail "expected rejection"

let test_find_usage () =
  let v =
    Resource.check Resource.line_rate
      ~usages:[ Resource.usage ~resource:"MU" ~used:5. ~available:10. ]
      ~latency_ns:1. ~throughput_gpps:1.
  in
  Alcotest.(check bool) "found" true (Resource.find_usage v "MU" <> None);
  Alcotest.(check bool) "missing" true (Resource.find_usage v "CU" = None)

(* Model IR *)

let test_ir_dims_and_params () =
  Alcotest.(check int) "dnn input" 7 (Model_ir.input_dim small_dnn);
  Alcotest.(check int) "dnn output" 2 (Model_ir.output_dim small_dnn);
  Alcotest.(check int) "dnn params" ((7 * 12) + 12 + (12 * 8) + 8 + (8 * 2) + 2)
    (Model_ir.param_count small_dnn);
  Alcotest.(check (array int)) "layer dims" [| 7; 12; 8; 2 |]
    (Model_ir.dnn_layer_dims small_dnn);
  Alcotest.(check int) "kmeans output" 5 (Model_ir.output_dim kmeans5);
  Alcotest.(check int) "kmeans params" 35 (Model_ir.param_count kmeans5);
  Alcotest.(check int) "svm params" ((5 * 7) + 5) (Model_ir.param_count svm5);
  Alcotest.(check int) "tree params" (2 + (3 * 2)) (Model_ir.param_count tree_model)

let test_ir_layer_dims_rejects_non_dnn () =
  Alcotest.check_raises "not a dnn"
    (Invalid_argument "Model_ir.dnn_layer_dims: not a DNN") (fun () ->
      ignore (Model_ir.dnn_layer_dims kmeans5))

let test_ir_with_name () =
  let renamed = Model_ir.with_name small_dnn "fresh" in
  Alcotest.(check string) "renamed" "fresh" (Model_ir.name renamed);
  Alcotest.(check string) "original intact" "ad" (Model_ir.name small_dnn)

let test_ir_of_mlp_roundtrip () =
  let mlp =
    Ml.Mlp.create (Rng.create 1) ~input_dim:3 ~hidden:[| 5 |] ~output_dim:2 ()
  in
  let ir = Model_ir.of_mlp ~name:"m" mlp in
  Alcotest.(check int) "params preserved" (Ml.Mlp.param_count mlp)
    (Model_ir.param_count ir);
  Alcotest.(check (array int)) "dims" [| 3; 5; 2 |] (Model_ir.dnn_layer_dims ir);
  Alcotest.(check bool) "validates" true (Model_ir.validate ir = Ok ())

let test_ir_validate_catches_raggedness () =
  let bad =
    Model_ir.Dnn
      { name = "bad"; layers = [| dnn_layer 3 4 "relu"; dnn_layer 5 2 "linear" |] }
  in
  match Model_ir.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected chaining error"

let test_ir_validate_svm_bias_mismatch () =
  let bad =
    Model_ir.Svm
      { name = "bad"; class_weights = Array.make_matrix 3 2 1.; biases = [| 0. |] }
  in
  match Model_ir.validate bad with
  | Error msg -> Alcotest.(check string) "message" "svm bias count mismatches class count" msg
  | Ok () -> Alcotest.fail "expected bias error"

(* Taurus *)

let grid = Taurus.default_grid
let perf = Resource.line_rate

let test_taurus_available () =
  Alcotest.(check int) "128 CUs" 128 (Taurus.available_cus grid);
  Alcotest.(check int) "128 MUs" 128 (Taurus.available_mus grid)

let test_taurus_small_model_feasible () =
  let v = Taurus.estimate grid perf small_dnn in
  Alcotest.(check bool) "feasible" true v.Resource.feasible;
  Alcotest.(check bool) "CU positive" true (Taurus.cus_used v > 0);
  Alcotest.(check bool) "MU positive" true (Taurus.mus_used v > 0);
  feq "line rate" 1. v.Resource.throughput_gpps

let test_taurus_wide_is_cu_bound_deep_is_mu_bound () =
  (* The Table 2 contrast: wide-layer models burn CUs, deep stacks burn
     MUs for double buffering. *)
  let wide = Taurus.map_model grid wide_dnn in
  let deep = Taurus.map_model grid deep_dnn in
  Alcotest.(check bool) "wide: CU > MU" true (wide.Taurus.cus > wide.Taurus.mus);
  Alcotest.(check bool) "deep: MU > CU" true (deep.Taurus.mus > deep.Taurus.cus);
  Alcotest.(check bool) "wide uses more CUs than deep" true
    (wide.Taurus.cus > deep.Taurus.cus)

let test_taurus_monotone_in_model_size () =
  let bigger =
    Model_ir.Dnn
      { name = "big"; layers = [| dnn_layer 7 24 "relu"; dnn_layer 24 16 "relu"; dnn_layer 16 2 "linear" |] }
  in
  let small = Taurus.map_model grid small_dnn in
  let big = Taurus.map_model grid bigger in
  Alcotest.(check bool) "CU monotone" true (big.Taurus.cus >= small.Taurus.cus);
  Alcotest.(check bool) "MU monotone" true (big.Taurus.mus >= small.Taurus.mus)

let test_taurus_oversize_time_multiplexes () =
  let huge =
    Model_ir.Dnn
      { name = "huge"; layers = [| dnn_layer 64 64 "relu"; dnn_layer 64 64 "relu"; dnn_layer 64 64 "relu"; dnn_layer 64 2 "linear" |] }
  in
  let m = Taurus.map_model grid huge in
  Alcotest.(check bool) "II > 1" true (m.Taurus.ii > 1);
  Alcotest.(check int) "CUs capped" (Taurus.available_cus grid) m.Taurus.cus;
  let v = Taurus.estimate grid perf huge in
  Alcotest.(check bool) "infeasible at line rate" false v.Resource.feasible;
  Alcotest.(check bool) "throughput below 1" true (v.Resource.throughput_gpps < 1.)

let test_taurus_latency_grows_with_depth () =
  let shallow = Taurus.map_model grid small_dnn in
  let deep = Taurus.map_model grid deep_dnn in
  Alcotest.(check bool) "deeper pipeline" true
    (deep.Taurus.pipeline_cycles > shallow.Taurus.pipeline_cycles)

let test_taurus_kmeans_svm_tree () =
  List.iter
    (fun m ->
      let v = Taurus.estimate grid perf m in
      Alcotest.(check bool) "classical feasible" true v.Resource.feasible)
    [ kmeans5; svm5; tree_model ]

let test_taurus_grid_scaling () =
  let tiny = Taurus.grid_with_size ~rows:4 ~cols:4 in
  (* 8 CUs: the small DNN no longer fits at II=1. *)
  let v = Taurus.estimate tiny perf small_dnn in
  Alcotest.(check bool) "tiny grid infeasible" false v.Resource.feasible

(* IIsy mapping *)

let test_iisy_kmeans_one_mat_per_cluster () =
  let m = Iisy.map_model kmeans5 in
  Alcotest.(check int) "5 tables" 5 (Iisy.n_tables m)

let test_iisy_svm_feature_tables () =
  let m = Iisy.map_model svm5 in
  Alcotest.(check int) "7 features + decision" 8 (Iisy.n_tables m)

let test_iisy_tree_level_tables () =
  let m = Iisy.map_model tree_model in
  (* depth 2 -> 2 level tables + leaves. *)
  Alcotest.(check int) "levels + leaves" 3 (Iisy.n_tables m)

let test_iisy_dnn_explodes () =
  let m = Iisy.map_model small_dnn in
  Alcotest.(check bool) "many tables" true (Iisy.n_tables m > 20)

let test_iisy_conform_kmeans () =
  let rng = Rng.create 3 in
  let x = Array.init 100 (fun i -> [| float_of_int (i mod 10); 0. |]) in
  let km = Ml.Kmeans.fit rng ~k:5 x in
  let conformed = Iisy.conform_kmeans km ~table_budget:3 in
  Alcotest.(check int) "3 clusters" 3 (Ml.Kmeans.k conformed);
  let untouched = Iisy.conform_kmeans km ~table_budget:8 in
  Alcotest.(check int) "already fits" 5 (Ml.Kmeans.k untouched)

let test_iisy_drop_svm_features () =
  let weights =
    [| [| 5.; 0.01; 3.; 0.02; 1. |]; [| -4.; 0.02; 2.; 0.01; 0.5 |] |]
  in
  let svm = Model_ir.Svm { name = "s"; class_weights = weights; biases = [| 0.; 0. |] } in
  let conformed, dropped = Iisy.drop_svm_features svm ~table_budget:4 in
  (* Budget 4 = 3 feature tables + decision; the two near-zero features go. *)
  Alcotest.(check (array int)) "dropped least impactful" [| 1; 3 |] dropped;
  Alcotest.(check int) "tables fit budget" 4 (Iisy.n_tables (Iisy.map_model conformed))

let test_iisy_drop_rejects_non_svm () =
  Alcotest.check_raises "not svm" (Invalid_argument "Iisy.drop_svm_features: not an SVM")
    (fun () -> ignore (Iisy.drop_svm_features kmeans5 ~table_budget:4))

(* Tofino *)

let test_tofino_classical_feasible () =
  List.iter
    (fun m ->
      let v = Tofino.estimate_model Tofino.default_device perf m in
      Alcotest.(check bool) "fits 32 tables" true v.Resource.feasible)
    [ kmeans5; svm5; tree_model ]

let test_tofino_dnn_infeasible () =
  let big =
    Model_ir.Dnn
      { name = "big"; layers = [| dnn_layer 30 16 "relu"; dnn_layer 16 2 "linear" |] }
  in
  let v = Tofino.estimate_model Tofino.default_device perf big in
  Alcotest.(check bool) "too many MATs" false v.Resource.feasible

let test_tofino_table_budget () =
  let k3 = Tofino.device_with_tables 3 in
  let v = Tofino.estimate_model k3 perf kmeans5 in
  Alcotest.(check bool) "5 clusters on 3 tables" false v.Resource.feasible;
  Alcotest.(check int) "counted" 5 (Tofino.mats_used v)

let test_tofino_line_rate_when_fits () =
  let v = Tofino.estimate_model Tofino.default_device perf kmeans5 in
  feq "line rate" 1. v.Resource.throughput_gpps

(* FPGA *)

let test_fpga_loopback_matches_table5 () =
  let r = Fpga.loopback_report Fpga.alveo_u250 in
  feq "lut" 5.36 r.Fpga.lut_pct;
  feq "ff" 3.64 r.Fpga.ff_pct;
  feq "bram" 4.15 r.Fpga.bram_pct;
  feq "power" 15.131 r.Fpga.power_w

let test_fpga_models_add_resources () =
  let r = Fpga.report Fpga.alveo_u250 small_dnn in
  Alcotest.(check bool) "lut grows" true (r.Fpga.lut_pct > 5.36);
  Alcotest.(check bool) "power grows" true (r.Fpga.power_w > 15.131);
  feq "bram constant" 4.15 r.Fpga.bram_pct

let test_fpga_bigger_model_more_power () =
  let small = Fpga.report Fpga.alveo_u250 small_dnn in
  let big = Fpga.report Fpga.alveo_u250 wide_dnn in
  Alcotest.(check bool) "bigger burns more" true (big.Fpga.power_w > small.Fpga.power_w)

let test_fpga_estimate_feasible () =
  let p = Resource.perf ~min_throughput_gpps:0.3 ~max_latency_ns:1500. in
  let v = Fpga.estimate Fpga.alveo_u250 p small_dnn in
  Alcotest.(check bool) "feasible" true v.Resource.feasible

(* Spatial codegen *)

let has_sub code sub =
  let n = String.length code and m = String.length sub in
  let rec go i = i + m <= n && (String.sub code i m = sub || go (i + 1)) in
  go 0

let test_spatial_emits_dnn_structure () =
  let code = Spatial.emit small_dnn in
  let has sub = has_sub code sub in
  Alcotest.(check bool) "Accel block" true (has "Accel {");
  Alcotest.(check bool) "weight LUTs" true (has "LUT[T]");
  Alcotest.(check bool) "map/reduce" true (has "Reduce(Reg[T]");
  Alcotest.(check bool) "double buffering" true (has ".buffer");
  Alcotest.(check bool) "stream pipeline" true (has "Stream(*)");
  Alcotest.(check bool) "all layers" true (has "Layer 2")

let test_spatial_emits_all_algorithms () =
  List.iter
    (fun m ->
      let code = Spatial.emit m in
      Alcotest.(check bool) "non-trivial" true (Spatial.line_count code > 10))
    [ small_dnn; kmeans5; svm5; tree_model ]

let test_spatial_kmeans_argmin () =
  Alcotest.(check bool) "argmin" true (has_sub (Spatial.emit kmeans5) "argmin")

let test_spatial_tree_mux () =
  Alcotest.(check bool) "mux chain" true (has_sub (Spatial.emit tree_model) "mux(")

let test_spatial_dot_product_template () =
  let t = Spatial.emit_dot_product_template ~n:16 in
  Alcotest.(check bool) "parallel 8" true (has_sub t "par 8");
  Alcotest.check_raises "bad n"
    (Invalid_argument "Spatial.emit_dot_product_template: n <= 0") (fun () ->
      ignore (Spatial.emit_dot_product_template ~n:0))

let test_spatial_weights_embedded () =
  let code = Spatial.emit small_dnn in
  Alcotest.(check bool) "trained weight value" true (has_sub code "0.100000")

(* P4 codegen *)

let test_p4_emits_tables () =
  let code = P4gen.emit kmeans5 in
  Alcotest.(check bool) "v1model" true (has_sub code "#include <v1model.p4>");
  Alcotest.(check bool) "cluster tables" true (has_sub code "tc_cluster4");
  Alcotest.(check bool) "apply chain" true (has_sub code "tc_cluster4.apply()")

let test_p4_svm_structure () =
  let code = P4gen.emit svm5 in
  Alcotest.(check bool) "feature table" true (has_sub code "tc_feature6");
  Alcotest.(check bool) "decision" true (has_sub code "tc_decision")

let test_p4_tree_structure () =
  let code = P4gen.emit tree_model in
  Alcotest.(check bool) "levels" true (has_sub code "tc_level1");
  Alcotest.(check bool) "leaves" true (has_sub code "tc_leaves")

let test_p4_rejects_dnn () =
  Alcotest.check_raises "dnn"
    (Invalid_argument "P4gen.emit: DNNs are not mappable to MATs (use Taurus/FPGA)")
    (fun () -> ignore (P4gen.emit small_dnn))

let test_p4_entries () =
  let entries = P4gen.emit_entries kmeans5 in
  Alcotest.(check bool) "table_add lines" true (has_sub entries "table_add tc_cluster0");
  let svm_entries = P4gen.emit_entries svm5 in
  Alcotest.(check bool) "svm votes" true (has_sub svm_entries "set_vote");
  let tree_entries = P4gen.emit_entries tree_model in
  Alcotest.(check bool) "leaf rows" true (has_sub tree_entries "set_class")

let suite =
  [
    Alcotest.test_case "perf validates" `Quick test_perf_validates;
    Alcotest.test_case "usage percent/fits" `Quick test_usage_percent_fits;
    Alcotest.test_case "usage zero capacity" `Quick test_usage_zero_capacity;
    Alcotest.test_case "check feasible" `Quick test_check_feasible;
    Alcotest.test_case "check rejections" `Quick test_check_rejections_in_order;
    Alcotest.test_case "find usage" `Quick test_find_usage;
    Alcotest.test_case "IR dims/params" `Quick test_ir_dims_and_params;
    Alcotest.test_case "IR layer dims non-dnn" `Quick test_ir_layer_dims_rejects_non_dnn;
    Alcotest.test_case "IR with_name" `Quick test_ir_with_name;
    Alcotest.test_case "IR of_mlp" `Quick test_ir_of_mlp_roundtrip;
    Alcotest.test_case "IR validate chaining" `Quick test_ir_validate_catches_raggedness;
    Alcotest.test_case "IR validate svm" `Quick test_ir_validate_svm_bias_mismatch;
    Alcotest.test_case "taurus available" `Quick test_taurus_available;
    Alcotest.test_case "taurus small feasible" `Quick test_taurus_small_model_feasible;
    Alcotest.test_case "taurus wide/deep contrast" `Quick
      test_taurus_wide_is_cu_bound_deep_is_mu_bound;
    Alcotest.test_case "taurus monotone" `Quick test_taurus_monotone_in_model_size;
    Alcotest.test_case "taurus time multiplex" `Quick test_taurus_oversize_time_multiplexes;
    Alcotest.test_case "taurus latency depth" `Quick test_taurus_latency_grows_with_depth;
    Alcotest.test_case "taurus classical models" `Quick test_taurus_kmeans_svm_tree;
    Alcotest.test_case "taurus grid scaling" `Quick test_taurus_grid_scaling;
    Alcotest.test_case "iisy kmeans" `Quick test_iisy_kmeans_one_mat_per_cluster;
    Alcotest.test_case "iisy svm" `Quick test_iisy_svm_feature_tables;
    Alcotest.test_case "iisy tree" `Quick test_iisy_tree_level_tables;
    Alcotest.test_case "iisy dnn explodes" `Quick test_iisy_dnn_explodes;
    Alcotest.test_case "iisy conform kmeans" `Quick test_iisy_conform_kmeans;
    Alcotest.test_case "iisy drop svm features" `Quick test_iisy_drop_svm_features;
    Alcotest.test_case "iisy drop rejects" `Quick test_iisy_drop_rejects_non_svm;
    Alcotest.test_case "tofino classical" `Quick test_tofino_classical_feasible;
    Alcotest.test_case "tofino dnn infeasible" `Quick test_tofino_dnn_infeasible;
    Alcotest.test_case "tofino table budget" `Quick test_tofino_table_budget;
    Alcotest.test_case "tofino line rate" `Quick test_tofino_line_rate_when_fits;
    Alcotest.test_case "fpga loopback row" `Quick test_fpga_loopback_matches_table5;
    Alcotest.test_case "fpga adds resources" `Quick test_fpga_models_add_resources;
    Alcotest.test_case "fpga power scaling" `Quick test_fpga_bigger_model_more_power;
    Alcotest.test_case "fpga estimate" `Quick test_fpga_estimate_feasible;
    Alcotest.test_case "spatial dnn structure" `Quick test_spatial_emits_dnn_structure;
    Alcotest.test_case "spatial all algorithms" `Quick test_spatial_emits_all_algorithms;
    Alcotest.test_case "spatial kmeans argmin" `Quick test_spatial_kmeans_argmin;
    Alcotest.test_case "spatial tree mux" `Quick test_spatial_tree_mux;
    Alcotest.test_case "spatial dot template" `Quick test_spatial_dot_product_template;
    Alcotest.test_case "spatial weights embedded" `Quick test_spatial_weights_embedded;
    Alcotest.test_case "p4 kmeans tables" `Quick test_p4_emits_tables;
    Alcotest.test_case "p4 svm structure" `Quick test_p4_svm_structure;
    Alcotest.test_case "p4 tree structure" `Quick test_p4_tree_structure;
    Alcotest.test_case "p4 rejects dnn" `Quick test_p4_rejects_dnn;
    Alcotest.test_case "p4 entries" `Quick test_p4_entries;
  ]
