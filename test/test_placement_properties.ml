(* qcheck properties over the Taurus grid placer, exercised the way the
   composition lowering uses it: several models' demand lists concatenated
   (each stage label prefixed per tenant) and placed onto one grid. Cases
   derive from an integer seed through Rng, so failures reproduce from one
   integer. *)
module Placement = Homunculus_backends.Placement
module Taurus = Homunculus_backends.Taurus
module Rng = Homunculus_util.Rng

(* Multi-model demand list: 1-3 "tenants", each 1-4 stages of small CU/MU
   demands, labels prefixed per tenant — sized to always fit 16x16. *)
let random_demands rng =
  let n_tenants = 1 + Rng.int rng 3 in
  List.concat
    (List.init n_tenants (fun t ->
         let n_stages = 1 + Rng.int rng 4 in
         List.init n_stages (fun s ->
             let cus = Rng.int rng 6 in
             let mus = if cus = 0 then 1 + Rng.int rng 5 else Rng.int rng 6 in
             (Printf.sprintf "t%d__stage%d" t s, cus, mus))))

let place_exn demands =
  match Placement.place Taurus.default_grid demands with
  | Ok p -> p
  | Error e -> QCheck.Test.fail_reportf "placement failed: %s" e

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let prop_wirelength_label_invariant =
  QCheck.Test.make
    ~name:"wirelength is invariant under stage-label renaming" ~count:300
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let demands = random_demands rng in
      let renamed =
        List.mapi (fun i (_, cus, mus) -> (Printf.sprintf "r%d" i, cus, mus))
          demands
      in
      let w = Placement.wirelength (place_exn demands) in
      let w' = Placement.wirelength (place_exn renamed) in
      Float.equal w w')

let prop_render_utilization_agree =
  QCheck.Test.make
    ~name:"render and utilization agree on claimed-tile counts" ~count:300
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let p = place_exn (random_demands rng) in
      let claimed_render =
        String.fold_left
          (fun acc c ->
            match c with '.' | ',' | '\n' -> acc | _ -> acc + 1)
          0 (Placement.render p)
      in
      let grid = Taurus.default_grid in
      let tiles = grid.Taurus.rows * grid.Taurus.cols in
      let claimed_util =
        int_of_float
          (Float.round (Placement.utilization p *. float_of_int tiles))
      in
      let claimed_assignments =
        List.fold_left
          (fun acc (_, ts) -> acc + List.length ts)
          0 p.Placement.assignments
      in
      claimed_render = claimed_assignments
      && claimed_util = claimed_assignments)

(* Renaming aside, the same demands always claim the same tiles — the
   column sweep is deterministic, which the compose determinism contract
   leans on. *)
let prop_deterministic =
  QCheck.Test.make ~name:"placement is deterministic" ~count:300 seed_gen
    (fun seed ->
      let rng = Rng.create seed in
      let demands = random_demands rng in
      let p1 = place_exn demands and p2 = place_exn demands in
      Placement.render p1 = Placement.render p2
      && p1.Placement.assignments = p2.Placement.assignments)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_wirelength_label_invariant;
      prop_render_utilization_agree;
      prop_deterministic;
    ]
