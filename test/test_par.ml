(* The domain work-pool: ordering, exception propagation, nesting, and the
   determinism contract the parallel DSE depends on. *)
module Par = Homunculus_par.Par
module Rng = Homunculus_util.Rng

let with_pool jobs f =
  let pool = Par.create ~jobs () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) (fun () -> f pool)

let test_map_preserves_order () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let input = Array.init 97 (fun i -> i) in
          let out = Par.parallel_map ~pool ~chunk:3 (fun i -> i * i) input in
          Alcotest.(check (array int))
            (Printf.sprintf "squares at jobs=%d" jobs)
            (Array.map (fun i -> i * i) input)
            out))
    [ 1; 2; 4 ]

let test_map_empty_and_singleton () =
  with_pool 4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Par.parallel_map ~pool (fun i -> i) [||]);
      Alcotest.(check (array int)) "singleton" [| 10 |]
        (Par.parallel_map ~pool (fun i -> i * 10) [| 1 |]))

let test_parallel_for_covers_range () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let hits = Array.make 53 0 in
          (* Each index is written by exactly one task, so no lock needed. *)
          Par.parallel_for ~pool ~chunk:4 ~lo:0 ~hi:53 (fun i ->
              hits.(i) <- hits.(i) + 1);
          Alcotest.(check (array int))
            (Printf.sprintf "each index once at jobs=%d" jobs)
            (Array.make 53 1) hits))
    [ 1; 3 ]

exception Boom of int

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "re-raised" (Boom 7) (fun () ->
          Par.parallel_map ~pool ~chunk:1
            (fun i -> if i = 7 then raise (Boom i) else i)
            (Array.init 32 (fun i -> i))
          |> ignore))

let test_exception_lowest_index_wins () =
  (* Several tasks fail; the caller must always see the lowest-index failure
     so error reports don't depend on scheduling. *)
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "first failure at jobs=%d" jobs)
            (Boom 5)
            (fun () ->
              Par.parallel_map ~pool ~chunk:1
                (fun i -> if i >= 5 then raise (Boom i) else i)
                (Array.init 40 (fun i -> i))
              |> ignore)))
    [ 1; 4 ]

let test_nested_regions_run_inline () =
  (* A task that itself calls parallel_map must not deadlock the pool. *)
  with_pool 2 (fun pool ->
      let out =
        Par.parallel_map ~pool ~chunk:1
          (fun i ->
            let inner =
              Par.parallel_map ~pool (fun j -> j + i) (Array.init 8 Fun.id)
            in
            Array.fold_left ( + ) 0 inner)
          (Array.init 6 (fun i -> i))
      in
      Alcotest.(check (array int)) "nested sums"
        (Array.init 6 (fun i -> 28 + (8 * i)))
        out)

let test_run_in_parallel () =
  with_pool 3 (fun pool ->
      let out =
        Par.run_in_parallel ~pool
          [| (fun () -> "a"); (fun () -> "b"); (fun () -> "c") |]
      in
      Alcotest.(check (array string)) "thunk results" [| "a"; "b"; "c" |] out)

let test_results_identical_across_worker_counts () =
  (* The determinism contract: pre-split RNG streams + index-ordered results
     make the output a function of the input only. *)
  let run jobs =
    with_pool jobs (fun pool ->
        let rngs = Rng.split_n (Rng.create 42) 64 in
        Par.parallel_map ~pool (fun r -> Rng.float r 1.0) rngs)
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array (float 0.)))
        (Printf.sprintf "bit-identical at jobs=%d" jobs)
        base (run jobs))
    [ 2; 4 ]

let test_shutdown_idempotent_and_sequential_after () =
  let pool = Par.create ~jobs:4 () in
  Par.shutdown pool;
  Par.shutdown pool;
  (* Post-shutdown regions still complete (sequentially). *)
  let out = Par.parallel_map ~pool (fun i -> i + 1) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "after shutdown" [| 2; 3; 4 |] out

let test_recommended_jobs_positive () =
  Alcotest.(check bool) "positive" true (Par.recommended_jobs () >= 1)

(* Property: for any set of failing indices and any (jobs, chunk) split, the
   exception that escapes the region is the one from the LOWEST failing
   index, and every result slot a surviving task wrote holds exactly its own
   value — a failure elsewhere in the region never corrupts neighbors. *)
let prop_exception_semantics =
  QCheck.Test.make ~count:100 ~name:"par exception semantics"
    QCheck.(
      triple
        (int_range 1 40 (* array size *))
        (pair (int_range 1 6) (int_range 1 7) (* jobs, chunk *))
        (small_list (int_range 0 39) (* failing indices, possibly empty *)))
    (fun (n, (jobs, chunk), fail_at) ->
      let fail_at = List.filter (fun i -> i < n) fail_at in
      with_pool jobs (fun pool ->
          let written = Array.make n (-1) in
          let run () =
            Par.parallel_map ~pool ~chunk
              (fun i ->
                if List.mem i fail_at then raise (Boom i)
                else begin
                  written.(i) <- 2 * i;
                  2 * i
                end)
              (Array.init n (fun i -> i))
          in
          match run () with
          | out ->
              fail_at = []
              && Array.for_all (fun x -> x) (Array.mapi (fun i v -> v = 2 * i) out)
          | exception Boom i ->
              let lowest = List.fold_left min (List.hd fail_at) fail_at in
              i = lowest
              && Array.for_all (fun x -> x)
                   (Array.mapi
                      (fun j v -> v = 2 * j || v = -1 || List.mem j fail_at)
                      written)))

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "map empty/singleton" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "for covers range" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "lowest-index exception wins" `Quick
      test_exception_lowest_index_wins;
    Alcotest.test_case "nested regions inline" `Quick
      test_nested_regions_run_inline;
    Alcotest.test_case "run_in_parallel" `Quick test_run_in_parallel;
    Alcotest.test_case "identical across worker counts" `Quick
      test_results_identical_across_worker_counts;
    Alcotest.test_case "shutdown idempotent" `Quick
      test_shutdown_idempotent_and_sequential_after;
    Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs_positive;
    QCheck_alcotest.to_alcotest prop_exception_semantics;
  ]
