(* Metamorphic properties of the ML support code: relations that must hold
   between a computation and a transformed re-run of it, checked on random
   instances. Sample order must never matter to aggregate metrics, the
   confusion matrix must conserve counts, and standardization must invert
   cleanly. *)
module Metrics = Homunculus_ml.Metrics
module Scaler = Homunculus_ml.Scaler
module Rng = Homunculus_util.Rng

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let random_labels rng =
  let n = 1 + Rng.int rng 200 in
  let n_classes = 2 + Rng.int rng 4 in
  let pred = Array.init n (fun _ -> Rng.int rng n_classes) in
  let truth = Array.init n (fun _ -> Rng.int rng n_classes) in
  (n_classes, pred, truth)

let permute rng pred truth =
  let p = Rng.permutation rng (Array.length pred) in
  (Array.map (fun i -> pred.(i)) p, Array.map (fun i -> truth.(i)) p)

(* Permuting samples leaves the contingency counts untouched, so every
   aggregate metric must be bit-identical, not merely close. *)
let prop_metrics_permutation_invariant =
  QCheck.Test.make ~name:"metrics are invariant under sample permutation"
    ~count:300 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let n_classes, pred, truth = random_labels rng in
      let pred', truth' = permute rng pred truth in
      Metrics.accuracy ~pred ~truth = Metrics.accuracy ~pred:pred' ~truth:truth'
      && Metrics.f1 ~pred ~truth () = Metrics.f1 ~pred:pred' ~truth:truth' ()
      && Metrics.macro_f1 ~n_classes ~pred ~truth
         = Metrics.macro_f1 ~n_classes ~pred:pred' ~truth:truth'
      && Metrics.v_measure ~pred ~truth ()
         = Metrics.v_measure ~pred:pred' ~truth:truth' ())

let prop_confusion_conserves_counts =
  QCheck.Test.make ~name:"confusion rows sum to per-class truth counts"
    ~count:300 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let n_classes, pred, truth = random_labels rng in
      let m = Metrics.confusion ~n_classes ~pred ~truth in
      let row_ok =
        Array.for_all
          (fun t ->
            Array.fold_left ( + ) 0 m.(t)
            = Array.fold_left
                (fun acc label -> if label = t then acc + 1 else acc)
                0 truth)
          (Array.init n_classes (fun t -> t))
      in
      let total =
        Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 m
      in
      row_ok && total = Array.length truth)

let random_matrix rng =
  let rows = 1 + Rng.int rng 40 in
  let cols = 1 + Rng.int rng 8 in
  let constant_col = if Rng.bool rng then Some (Rng.int rng cols) else None in
  Array.init rows (fun _ ->
      Array.init cols (fun c ->
          if constant_col = Some c then 3.25 else Rng.uniform rng (-50.) 50.))

let prop_scaler_inverts =
  QCheck.Test.make
    ~name:"fit-transform-inverse returns the input within 1e-9" ~count:300
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let data = random_matrix rng in
      let scaler = Scaler.fit data in
      let transformed = Scaler.transform scaler data in
      Array.for_all2
        (fun original t ->
          let back = Scaler.inverse_transform_row scaler t in
          Array.for_all2
            (fun a b -> Float.abs (a -. b) <= 1e-9)
            original back)
        data transformed)

(* Standardizing twice is idempotent up to the second fit: the re-fitted
   scaler must see (near-)zero mean and unit variance. *)
let prop_scaler_standardizes =
  QCheck.Test.make ~name:"transformed columns have zero mean, unit stddev"
    ~count:300 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let data = random_matrix rng in
      let transformed = Scaler.transform (Scaler.fit data) data in
      let refit = Scaler.fit transformed in
      Array.for_all (fun m -> Float.abs m <= 1e-9) (Scaler.mean refit)
      && Array.for_all
           (fun s -> s = 1. || Float.abs (s -. 1.) <= 1e-6)
           (Scaler.stddev refit))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_metrics_permutation_invariant;
      prop_confusion_conserves_counts;
      prop_scaler_inverts;
      prop_scaler_standardizes;
    ]
