(* Packets, flows, histograms, the flow simulator, and dataset generators. *)
open Homunculus_netdata
module Rng = Homunculus_util.Rng
module Dataset = Homunculus_ml.Dataset

let feq = Alcotest.(check (float 1e-9))

(* Packet *)

let test_packet_make_validates () =
  Alcotest.check_raises "negative ts"
    (Invalid_argument "Packet.make: negative timestamp") (fun () ->
      ignore (Packet.make ~ts:(-1.) ~size:100));
  Alcotest.check_raises "zero size"
    (Invalid_argument "Packet.make: non-positive size") (fun () ->
      ignore (Packet.make ~ts:0. ~size:0))

let train =
  [|
    Packet.make ~ts:0. ~size:100;
    Packet.make ~ts:1.5 ~size:200;
    Packet.make ~ts:4. ~size:300;
  |]

let test_packet_iat () =
  Alcotest.(check (array (float 1e-9))) "gaps" [| 1.5; 2.5 |]
    (Packet.inter_arrival_times train);
  Alcotest.(check (array (float 1e-9))) "single packet" [||]
    (Packet.inter_arrival_times [| Packet.make ~ts:0. ~size:1 |])

let test_packet_totals () =
  Alcotest.(check int) "bytes" 600 (Packet.total_bytes train);
  feq "duration" 4. (Packet.duration train)

(* Histogram *)

let test_histogram_binning () =
  let h = Histogram.create (Histogram.spec ~n_bins:4 ~bin_width:10.) in
  Histogram.add h 5.;
  Histogram.add h 15.;
  Histogram.add h 15.;
  Histogram.add h 999.;
  Histogram.add h (-3.);
  Alcotest.(check (array (float 0.))) "counts" [| 2.; 2.; 0.; 1. |]
    (Histogram.counts h);
  feq "total" 5. (Histogram.count h)

let test_histogram_normalized () =
  let h = Histogram.create (Histogram.spec ~n_bins:2 ~bin_width:1.) in
  Histogram.add_all h [| 0.5; 0.5; 1.5; 0.5 |];
  Alcotest.(check (array (float 1e-9))) "normalized" [| 0.75; 0.25 |]
    (Histogram.normalized h)

let test_histogram_empty_normalized () =
  let h = Histogram.create (Histogram.spec ~n_bins:3 ~bin_width:1.) in
  Alcotest.(check (array (float 0.))) "all zero" [| 0.; 0.; 0. |]
    (Histogram.normalized h)

let test_histogram_reset_copy () =
  let h = Histogram.create (Histogram.spec ~n_bins:2 ~bin_width:1.) in
  Histogram.add h 0.;
  let c = Histogram.copy h in
  Histogram.reset h;
  feq "reset" 0. (Histogram.count h);
  feq "copy untouched" 1. (Histogram.count c)

let test_histogram_fuse () =
  let h = Histogram.create (Histogram.spec ~n_bins:6 ~bin_width:1.) in
  Histogram.add_all h [| 0.5; 1.5; 2.5; 3.5; 4.5; 5.5 |];
  let f = Histogram.fuse h ~factor:2 in
  Alcotest.(check int) "3 bins" 3 (Histogram.spec_of f).Histogram.n_bins;
  Alcotest.(check (array (float 0.))) "pairwise sums" [| 2.; 2.; 2. |]
    (Histogram.counts f);
  feq "mass preserved" (Histogram.count h) (Histogram.count f)

let test_histogram_fuse_uneven () =
  let h = Histogram.create (Histogram.spec ~n_bins:5 ~bin_width:1.) in
  Histogram.add_all h [| 0.1; 1.1; 2.1; 3.1; 4.1 |];
  let f = Histogram.fuse h ~factor:2 in
  Alcotest.(check int) "ceil(5/2)" 3 (Histogram.spec_of f).Histogram.n_bins;
  Alcotest.(check (array (float 0.))) "last group smaller" [| 2.; 2.; 1. |]
    (Histogram.counts f)

let test_histogram_fuse_to () =
  let h = Histogram.create (Histogram.spec ~n_bins:92 ~bin_width:16.) in
  let f = Histogram.fuse_to h ~target_bins:23 in
  Alcotest.(check int) "23 bins" 23 (Histogram.spec_of f).Histogram.n_bins

(* Flow *)

let mk_flow label =
  Flow.make ~id:1 ~label ~app:"test" ~packets:train

let test_flow_sorts_packets () =
  let unsorted =
    [| Packet.make ~ts:5. ~size:10; Packet.make ~ts:1. ~size:20 |]
  in
  let f = Flow.make ~id:0 ~label:Flow.Benign ~app:"x" ~packets:unsorted in
  feq "sorted duration" 4. (Flow.duration f)

let test_flow_stats () =
  let f = mk_flow Flow.Botnet in
  Alcotest.(check int) "n_packets" 3 (Flow.n_packets f);
  Alcotest.(check int) "bytes" 600 (Flow.total_bytes f);
  feq "mean size" 200. (Flow.mean_packet_size f);
  feq "mean iat" 2. (Flow.mean_inter_arrival f)

let test_flow_labels () =
  Alcotest.(check int) "benign 0" 0 (Flow.label_to_int Flow.Benign);
  Alcotest.(check int) "botnet 1" 1 (Flow.label_to_int Flow.Botnet);
  Alcotest.(check string) "name" "botnet" (Flow.label_to_string Flow.Botnet)

let test_flowmarker_shape_and_mass () =
  let f = mk_flow Flow.Benign in
  let pl_spec = Histogram.spec ~n_bins:4 ~bin_width:128. in
  let ipt_spec = Histogram.spec ~n_bins:3 ~bin_width:2. in
  let fm = Flow.flowmarker f ~pl_spec ~ipt_spec () in
  Alcotest.(check int) "4+3 features" 7 (Array.length fm);
  let pl_mass = Array.fold_left ( +. ) 0. (Array.sub fm 0 4) in
  let ipt_mass = Array.fold_left ( +. ) 0. (Array.sub fm 4 3) in
  feq "pl normalized" 1. pl_mass;
  feq "ipt normalized" 1. ipt_mass

let test_flowmarker_partial () =
  let f = mk_flow Flow.Benign in
  let pl_spec = Histogram.spec ~n_bins:4 ~bin_width:128. in
  let ipt_spec = Histogram.spec ~n_bins:3 ~bin_width:2. in
  let fm1 = Flow.flowmarker f ~pl_spec ~ipt_spec ~first_packets:1 () in
  (* One packet: one PL observation, no IPT observations. *)
  feq "one pl obs" 1. (Array.fold_left ( +. ) 0. (Array.sub fm1 0 4));
  feq "no ipt obs" 0. (Array.fold_left ( +. ) 0. (Array.sub fm1 4 3))

(* Flowsim *)

let test_flowsim_profiles_exist () =
  let rng = Rng.create 1 in
  Array.iter
    (fun app ->
      let f = Flowsim.generate_flow rng ~id:0 ~app () in
      Alcotest.(check bool) "botnet label" true (f.Flow.label = Flow.Botnet))
    Flowsim.botnet_apps;
  Array.iter
    (fun app ->
      let f = Flowsim.generate_flow rng ~id:0 ~app () in
      Alcotest.(check bool) "benign label" true (f.Flow.label = Flow.Benign))
    Flowsim.benign_apps

let test_flowsim_unknown_app () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "unknown"
    (Invalid_argument "Flowsim.profile_of_app: unknown application nessus")
    (fun () -> ignore (Flowsim.generate_flow rng ~id:0 ~app:"nessus" ()))

let test_flowsim_max_packets () =
  let rng = Rng.create 2 in
  for _ = 1 to 20 do
    let f = Flowsim.generate_flow rng ~id:0 ~app:"utorrent" ~max_packets:50 () in
    Alcotest.(check bool) "capped" true (Flow.n_packets f <= 50)
  done

let test_flowsim_mix () =
  let rng = Rng.create 3 in
  let flows =
    Flowsim.generate rng
      ~mix:{ Flowsim.n_flows = 200; botnet_frac = 0.5; max_packets = 100 }
      ()
  in
  Alcotest.(check int) "200 flows" 200 (Array.length flows);
  let botnets =
    Array.fold_left
      (fun acc f -> if f.Flow.label = Flow.Botnet then acc + 1 else acc)
      0 flows
  in
  Alcotest.(check bool) "roughly half botnet" true (botnets > 60 && botnets < 140)

let test_flowsim_class_contrast () =
  (* The paper's Fig. 6 premise: botnet flows have smaller packets and larger
     gaps than benign P2P flows, on average. *)
  let rng = Rng.create 4 in
  let flows = Flowsim.generate rng () in
  let mean_of label f =
    let xs =
      Array.to_list flows
      |> List.filter (fun fl -> fl.Flow.label = label)
      |> List.map f
    in
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  let bot_size = mean_of Flow.Botnet Flow.mean_packet_size in
  let ben_size = mean_of Flow.Benign Flow.mean_packet_size in
  let bot_gap = mean_of Flow.Botnet Flow.mean_inter_arrival in
  let ben_gap = mean_of Flow.Benign Flow.mean_inter_arrival in
  Alcotest.(check bool) "botnet packets smaller" true (bot_size < ben_size);
  Alcotest.(check bool) "botnet gaps larger" true (bot_gap > ben_gap)

let test_average_flowmarker () =
  let rng = Rng.create 5 in
  let flows = Flowsim.generate rng () in
  let pl, ipt =
    Flowsim.average_flowmarker flows ~label:Flow.Botnet
      ~pl_spec:Botnet.pl_spec_fused ~ipt_spec:Botnet.ipt_spec_fused
  in
  Alcotest.(check int) "23 pl bins" 23 (Array.length pl);
  Alcotest.(check int) "7 ipt bins" 7 (Array.length ipt);
  Alcotest.(check (float 1e-6)) "pl mass 1" 1. (Array.fold_left ( +. ) 0. pl)

(* Dataset generators *)

let test_nslkdd_shapes () =
  let rng = Rng.create 6 in
  let d = Nslkdd.generate rng ~n:500 () in
  Alcotest.(check int) "500 samples" 500 (Dataset.n_samples d);
  Alcotest.(check int) "7 features" 7 (Dataset.n_features d);
  Alcotest.(check int) "binary" 2 d.Dataset.n_classes;
  let counts = Dataset.class_counts d in
  Alcotest.(check bool) "both classes present" true (counts.(0) > 50 && counts.(1) > 50)

let test_nslkdd_deterministic () =
  let a = Nslkdd.generate (Rng.create 7) ~n:100 () in
  let b = Nslkdd.generate (Rng.create 7) ~n:100 () in
  Alcotest.(check bool) "same data" true (a.Dataset.x = b.Dataset.x && a.Dataset.y = b.Dataset.y)

let test_nslkdd_learnable_but_hard () =
  (* A small linear probe should land well between chance and perfection —
     that head-room is what the Table 2 experiment exploits. *)
  let rng = Rng.create 8 in
  let train, test = Nslkdd.generate_split rng ~n_train:1200 ~n_test:600 () in
  let scaler, train_s = Homunculus_ml.Scaler.fit_dataset train in
  let test_s = Homunculus_ml.Scaler.apply_dataset scaler test in
  let svm = Homunculus_ml.Svm.fit (Rng.create 1) train_s in
  let pred = Homunculus_ml.Svm.predict_all svm test_s.Dataset.x in
  let f1 = Homunculus_ml.Metrics.f1 ~pred ~truth:test_s.Dataset.y () in
  Alcotest.(check bool) "f1 in (0.5, 0.97)" true (f1 > 0.5 && f1 < 0.97)

let test_iot_shapes () =
  let rng = Rng.create 9 in
  let d = Iot.generate rng ~n:500 () in
  Alcotest.(check int) "7 features" 7 (Dataset.n_features d);
  Alcotest.(check int) "5 classes" 5 d.Dataset.n_classes;
  Array.iter
    (fun c -> Alcotest.(check bool) "all classes present" true (c > 50))
    (Dataset.class_counts d)

let test_iot_clusters_separable () =
  let rng = Rng.create 10 in
  let d = Iot.generate rng ~n:1000 () in
  let _, ds = Homunculus_ml.Scaler.fit_dataset d in
  let tree =
    Homunculus_ml.Decision_tree.Classifier.fit ~x:ds.Dataset.x ~y:ds.Dataset.y
      ~n_classes:5 ()
  in
  let pred = Homunculus_ml.Decision_tree.Classifier.predict_all tree ds.Dataset.x in
  Alcotest.(check bool) "tree fits" true
    (Homunculus_ml.Metrics.accuracy ~pred ~truth:ds.Dataset.y > 0.8)

let test_botnet_feature_counts () =
  Alcotest.(check int) "fused 30" 30 (Botnet.n_features Botnet.Fused);
  Alcotest.(check int) "full 151" 151 (Botnet.n_features Botnet.Full);
  Alcotest.(check int) "names match" 30
    (Array.length (Botnet.feature_names Botnet.Fused))

let test_botnet_generate_shapes () =
  let rng = Rng.create 11 in
  let train, test =
    Botnet.generate rng ~n_train_flows:40 ~n_test_flows:20 ~prefixes_per_flow:5 ()
  in
  Alcotest.(check int) "train = flows" 40 (Dataset.n_samples train);
  Alcotest.(check bool) "test has multiple prefixes per flow" true
    (Dataset.n_samples test > 20);
  Alcotest.(check int) "30 features" 30 (Dataset.n_features train);
  Alcotest.(check int) "binary" 2 train.Dataset.n_classes

let test_botnet_full_flow_separable () =
  (* Full-flow histograms should separate the classes well (the paper's
     FlowLens baseline achieves a perfect score on full flowmarkers). *)
  let rng = Rng.create 12 in
  let train, _ =
    Botnet.generate rng ~n_train_flows:150 ~n_test_flows:20 ()
  in
  let tree =
    Homunculus_ml.Decision_tree.Classifier.fit ~x:train.Dataset.x
      ~y:train.Dataset.y ~n_classes:2 ()
  in
  let pred = Homunculus_ml.Decision_tree.Classifier.predict_all tree train.Dataset.x in
  Alcotest.(check bool) "separable" true
    (Homunculus_ml.Metrics.f1 ~pred ~truth:train.Dataset.y () > 0.95)

(* Trace *)

(* Timestamps are printed with [%.9f], so generate multiples of 1/512 s:
   exact binary fractions whose decimal expansion fits in 9 digits, making
   the text rendering lossless and the round trip exact. Distinct
   timestamps per flow keep the sort order unambiguous. *)
let trace_gen =
  QCheck.Gen.(
    let packets_gen =
      list_size (int_range 1 30) (int_range 0 1_000_000) >>= fun ks ->
      let ks = List.sort_uniq compare ks in
      list_repeat (List.length ks) (int_range 40 1500) >|= fun sizes ->
      Array.of_list
        (List.map2
           (fun k size -> Packet.make ~ts:(float_of_int k /. 512.) ~size)
           ks sizes)
    in
    let flow_gen =
      triple (int_range 0 9999)
        (oneofl [ Flow.Benign; Flow.Botnet ])
        (oneofl [ "storm"; "waledac"; "utorrent"; "emule"; "web" ])
      >>= fun (id, label, app) ->
      packets_gen >|= fun packets -> Flow.make ~id ~label ~app ~packets
    in
    list_size (int_range 0 8) flow_gen >|= Array.of_list)

let prop_trace_round_trip =
  QCheck.Test.make ~name:"trace round trip" ~count:100 (QCheck.make trace_gen)
    (fun flows -> Trace.of_string (Trace.to_string flows) = flows)

let header = "# homunculus-trace v1"

let trace_rejects what text expected =
  Alcotest.check_raises what (Invalid_argument expected) (fun () ->
      ignore (Trace.of_string text))

let test_trace_malformed () =
  trace_rejects "missing header" "flow 0 benign web 1\n0.0 100\n"
    "Trace: missing header line";
  trace_rejects "garbage record"
    (header ^ "\nhello world\n")
    "Trace: line 2: expected a flow record, found \"hello world\"";
  trace_rejects "bad flow id"
    (header ^ "\nflow seven benign web 1\n0.0 100\n")
    "Trace: line 2: bad flow id \"seven\"";
  trace_rejects "unknown label"
    (header ^ "\nflow 0 evil web 1\n0.0 100\n")
    "Trace: line 2: unknown label \"evil\"";
  trace_rejects "bad packet count"
    (header ^ "\nflow 0 benign web zero\n0.0 100\n")
    "Trace: line 2: bad packet count \"zero\"";
  trace_rejects "non-positive packet count"
    (header ^ "\nflow 0 benign web 0\n")
    "Trace: line 2: bad packet count \"0\"";
  trace_rejects "truncated flow"
    (header ^ "\nflow 0 benign web 5\n0.0 100\n")
    "Trace: line 2: truncated flow (5 packets declared)";
  trace_rejects "bad packet line"
    (header ^ "\nflow 0 benign web 1\nnot a packet\n")
    "Trace: line 3: bad packet \"not a packet\""

let test_trace_empty_and_blank_lines () =
  Alcotest.(check int) "header only" 0
    (Array.length (Trace.of_string (header ^ "\n")));
  let flows =
    Trace.of_string (header ^ "\n\nflow 3 botnet storm 1\n0.5 99\n\n")
  in
  Alcotest.(check int) "blank lines skipped" 1 (Array.length flows);
  Alcotest.(check int) "id" 3 flows.(0).Flow.id;
  Alcotest.(check int) "size" 99 flows.(0).Flow.packets.(0).Packet.size

let suite =
  [
    Alcotest.test_case "packet validates" `Quick test_packet_make_validates;
    Alcotest.test_case "packet iat" `Quick test_packet_iat;
    Alcotest.test_case "packet totals" `Quick test_packet_totals;
    Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram normalized" `Quick test_histogram_normalized;
    Alcotest.test_case "histogram empty" `Quick test_histogram_empty_normalized;
    Alcotest.test_case "histogram reset/copy" `Quick test_histogram_reset_copy;
    Alcotest.test_case "histogram fuse" `Quick test_histogram_fuse;
    Alcotest.test_case "histogram fuse uneven" `Quick test_histogram_fuse_uneven;
    Alcotest.test_case "histogram fuse_to" `Quick test_histogram_fuse_to;
    Alcotest.test_case "flow sorts" `Quick test_flow_sorts_packets;
    Alcotest.test_case "flow stats" `Quick test_flow_stats;
    Alcotest.test_case "flow labels" `Quick test_flow_labels;
    Alcotest.test_case "flowmarker shape" `Quick test_flowmarker_shape_and_mass;
    Alcotest.test_case "flowmarker partial" `Quick test_flowmarker_partial;
    Alcotest.test_case "flowsim profiles" `Quick test_flowsim_profiles_exist;
    Alcotest.test_case "flowsim unknown app" `Quick test_flowsim_unknown_app;
    Alcotest.test_case "flowsim packet cap" `Quick test_flowsim_max_packets;
    Alcotest.test_case "flowsim mix" `Quick test_flowsim_mix;
    Alcotest.test_case "flowsim class contrast" `Quick test_flowsim_class_contrast;
    Alcotest.test_case "average flowmarker" `Quick test_average_flowmarker;
    Alcotest.test_case "nslkdd shapes" `Quick test_nslkdd_shapes;
    Alcotest.test_case "nslkdd deterministic" `Quick test_nslkdd_deterministic;
    Alcotest.test_case "nslkdd difficulty" `Quick test_nslkdd_learnable_but_hard;
    Alcotest.test_case "iot shapes" `Quick test_iot_shapes;
    Alcotest.test_case "iot separable" `Quick test_iot_clusters_separable;
    Alcotest.test_case "botnet feature counts" `Quick test_botnet_feature_counts;
    Alcotest.test_case "botnet shapes" `Quick test_botnet_generate_shapes;
    Alcotest.test_case "botnet separable" `Quick test_botnet_full_flow_separable;
    QCheck_alcotest.to_alcotest prop_trace_round_trip;
    Alcotest.test_case "trace malformed input" `Quick test_trace_malformed;
    Alcotest.test_case "trace blank lines" `Quick test_trace_empty_and_blank_lines;
  ]
