(* Distributed DSE harness: the on-disk lease protocol, the coordinator's
   in-memory lease table, the journal extensions it rides on (group commit,
   single-pass read, incremental tail reader, deterministic merge,
   lease/release record kinds), and the headline guarantee — a coordinated
   search produces the bit-identical history and winner at any fleet size,
   including a kill-a-worker-at-every-lease sweep and a zero-worker
   coordinator that falls back to inline evaluation. Workers here are
   in-process domains driving the same [Dist.Worker.run] loop the CLI's
   worker mode runs; process-level separation is covered by the dse bench
   and the CI smoke job. *)
open Homunculus_alchemy
open Homunculus_core
module Bo = Homunculus_bo
module Dist = Homunculus_dist
module Faultplan = Homunculus_resilience.Faultplan
module Journal = Homunculus_resilience.Journal

(* Scratch coordination directories *)

let mk_dir () =
  let path = Filename.temp_file "homunculus_dist" "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Journal record factory: distinct configs per index so replay keys differ. *)

let mk_record ?(scope = "dblobs/tree") ~index ?(objective = 0.5)
    ?(kind = Journal.Exact) () =
  {
    Journal.scope;
    index;
    config = Bo.Config.make [ ("depth", Bo.Param.Int_value index) ];
    objective;
    feasible = true;
    pruned = false;
    metadata = [ ("m", float_of_int index) ];
    failure = None;
    kind;
  }

let temp_journal () = Filename.temp_file "homunculus_dist_journal" ".jsonl"

(* Protocol: publish / claim / release on disk *)

let test_protocol_roundtrip () =
  let dir = mk_dir () in
  Dist.Protocol.ensure_dirs dir;
  Dist.Protocol.ensure_dirs dir;
  (* idempotent *)
  let task index =
    {
      Dist.Protocol.scope = "dblobs/tree";
      index;
      config = Bo.Config.make [ ("depth", Bo.Param.Int_value index) ];
      generation = 0;
    }
  in
  List.iter (fun i -> Dist.Protocol.publish ~dir (task i)) [ 2; 0; 10 ];
  let names = Dist.Protocol.pending dir in
  Alcotest.(check int) "three pending" 3 (List.length names);
  let claimed =
    List.filter_map (fun name -> Dist.Protocol.claim ~dir name) names
  in
  Alcotest.(check (list int)) "claims drain in proposal-index order"
    [ 0; 2; 10 ]
    (List.map (fun t -> t.Dist.Protocol.index) claimed);
  Alcotest.(check bool) "config survives the round trip" true
    (Bo.Config.equal (task 2).Dist.Protocol.config
       (List.nth claimed 1).Dist.Protocol.config);
  (* Second claim of the same name loses the race (file already moved). *)
  Alcotest.(check bool) "double claim returns None" true
    (Dist.Protocol.claim ~dir (List.hd names) = None);
  Alcotest.(check int) "nothing pending after claims" 0
    (List.length (Dist.Protocol.pending dir));
  List.iter (fun name -> Dist.Protocol.release ~dir name) names;
  Dist.Protocol.release ~dir (List.hd names);
  (* missing is fine *)
  Alcotest.(check bool) "not done yet" false (Dist.Protocol.is_done dir);
  Dist.Protocol.mark_done dir;
  Alcotest.(check bool) "done marker visible" true (Dist.Protocol.is_done dir);
  rm_rf dir

let test_lease_table () =
  let t = Dist.Lease.create () in
  let config = Bo.Config.make [ ("depth", Bo.Param.Int_value 1) ] in
  let a = Dist.Lease.issue t ~now:0. ~scope:"s" ~index:4 ~config in
  let _b = Dist.Lease.issue t ~now:0. ~scope:"s" ~index:1 ~config in
  Alcotest.(check int) "two outstanding" 2 (Dist.Lease.outstanding t);
  Alcotest.(check int) "nothing expired inside ttl" 0
    (List.length (Dist.Lease.expired t ~now:0.5 ~ttl_s:1.));
  let gone = Dist.Lease.expired t ~now:2. ~ttl_s:1. in
  Alcotest.(check (list int)) "expiry sorted by index" [ 1; 4 ]
    (List.map (fun e -> e.Dist.Lease.index) gone);
  Dist.Lease.reissue a ~now:2.;
  Alcotest.(check int) "reissue bumps generation" 1 a.Dist.Lease.generation;
  Alcotest.(check (list int)) "reissued lease's clock was reset" [ 1 ]
    (List.map
       (fun e -> e.Dist.Lease.index)
       (Dist.Lease.expired t ~now:2.5 ~ttl_s:1.));
  Alcotest.(check bool) "complete known lease" true
    (Dist.Lease.complete t ~scope:"s" ~index:4);
  Alcotest.(check bool) "duplicate completion is harmless" false
    (Dist.Lease.complete t ~scope:"s" ~index:4);
  Alcotest.(check int) "one left" 1 (Dist.Lease.outstanding t)

(* Journal extensions *)

let test_journal_group_commit () =
  Alcotest.check_raises "fsync_every must be positive"
    (Invalid_argument "Journal.open_: fsync_every < 1") (fun () ->
      ignore (Journal.open_ ~fsync_every:0 (temp_journal ())));
  let path = temp_journal () in
  let j = Journal.open_ ~fsync_every:4 path in
  for i = 0 to 5 do
    ignore (Journal.append j (mk_record ~index:i ()))
  done;
  Journal.sync j;
  (* explicit group-commit flush is safe mid-stream *)
  ignore (Journal.append j (mk_record ~index:6 ()));
  Journal.close j;
  (* close flushes the unsynced tail *)
  Alcotest.(check int) "all seven records durable" 7
    (List.length (Journal.records path));
  Sys.remove path

let test_journal_read_single_pass () =
  let path = temp_journal () in
  let j = Journal.open_ path in
  ignore (Journal.append j (mk_record ~index:0 ~objective:1.0 ()));
  ignore (Journal.append j (mk_record ~index:1 ~kind:Journal.Predicted ()));
  ignore (Journal.append j (mk_record ~index:0 ~kind:Journal.Lease ()));
  ignore (Journal.append j (mk_record ~index:0 ~kind:Journal.Release ()));
  (* Later record for the same (scope, config) supersedes the first. *)
  ignore (Journal.append j (mk_record ~index:0 ~objective:2.0 ()));
  Journal.close j;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "this is not a journal line\n";
  close_out oc;
  let raw, replay = Journal.read path in
  Alcotest.(check int) "raw view keeps all kinds and duplicates" 5
    (List.length raw);
  Alcotest.(check int) "replay absorbed evaluations only" 3
    (Journal.loaded replay);
  Alcotest.(check int) "corrupt line dropped" 1 (Journal.dropped replay);
  let hit =
    Journal.find replay ~scope:"dblobs/tree"
      ~config:(mk_record ~index:0 ()).Journal.config
  in
  Alcotest.(check (option (float 0.))) "later record wins" (Some 2.0)
    (Option.map (fun r -> r.Journal.objective) hit);
  (* read and load agree (single pass vs legacy path). *)
  Alcotest.(check int) "load sees the same table" (Journal.loaded replay)
    (Journal.loaded (Journal.load path));
  Sys.remove path

let test_journal_reader_poll () =
  let path = temp_journal () in
  Sys.remove path;
  let r = Journal.reader path in
  Alcotest.(check int) "absent file polls empty" 0
    (List.length (Journal.poll r));
  let j = Journal.open_ path in
  ignore (Journal.append j (mk_record ~index:0 ()));
  ignore (Journal.append j (mk_record ~index:1 ()));
  Alcotest.(check (list int)) "first poll sees both appends" [ 0; 1 ]
    (List.map (fun rec_ -> rec_.Journal.index) (Journal.poll r));
  ignore (Journal.append j (mk_record ~index:2 ()));
  Alcotest.(check (list int)) "second poll sees only the new record" [ 2 ]
    (List.map (fun rec_ -> rec_.Journal.index) (Journal.poll r));
  Journal.close j;
  (* A partial trailing line stays buffered until its newline arrives. *)
  let line = Journal.line_of_record (mk_record ~index:3 ()) in
  let cut = String.length line / 2 in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc (String.sub line 0 cut);
  flush oc;
  Alcotest.(check int) "torn tail not surfaced" 0
    (List.length (Journal.poll r));
  output_string oc (String.sub line cut (String.length line - cut));
  output_string oc "\n";
  output_string oc "garbage line\n";
  close_out oc;
  Alcotest.(check (list int)) "completed line surfaces once" [ 3 ]
    (List.map (fun rec_ -> rec_.Journal.index) (Journal.poll r));
  Alcotest.(check int) "complete invalid line counted dropped" 1
    (Journal.reader_dropped r);
  Alcotest.(check string) "reader remembers its path" path
    (Journal.reader_path r);
  Sys.remove path

let test_journal_merge () =
  let write objective =
    let path = temp_journal () in
    let j = Journal.open_ path in
    ignore (Journal.append j (mk_record ~index:0 ~objective ()));
    Journal.close j;
    path
  in
  let pa = write 1.0 and pb = write 2.0 in
  let a = Journal.load pa and b = Journal.load pb in
  let config = (mk_record ~index:0 ()).Journal.config in
  let objective_of replay =
    Option.map
      (fun r -> r.Journal.objective)
      (Journal.find replay ~scope:"dblobs/tree" ~config)
  in
  Alcotest.(check (option (float 0.))) "later table wins" (Some 2.0)
    (objective_of (Journal.merge [ a; b ]));
  Alcotest.(check (option (float 0.))) "merge order is the tie-break"
    (Some 1.0)
    (objective_of (Journal.merge [ b; a ]));
  Alcotest.(check int) "loaded counters are summed" 2
    (Journal.loaded (Journal.merge [ a; b ]));
  Alcotest.(check int) "empty merge is an empty table" 0
    (Journal.loaded (Journal.merge []));
  Sys.remove pa;
  Sys.remove pb

let test_lease_kind_roundtrip () =
  List.iter
    (fun (kind, evaluates) ->
      let rec_ = mk_record ~index:5 ~kind () in
      (match Journal.record_of_line (Journal.line_of_record rec_) with
      | Some back ->
          Alcotest.(check bool) "kind survives the line round trip" true
            (back.Journal.kind = kind)
      | None -> Alcotest.fail "round-tripped line did not parse");
      Alcotest.(check bool) "is_evaluation matches the kind" evaluates
        (Journal.is_evaluation kind))
    [
      (Journal.Exact, true);
      (Journal.Predicted, true);
      (Journal.Lease, false);
      (Journal.Release, false);
    ]

(* Coordinated searches: bit-identical history and winner at any fleet
   size. Mirrors the resilience suite's tiny tree-only search (7
   evaluations: 3 warm-up + 4 guided in batches of 2). *)

let tree_spec () =
  Test_core.blob_spec ~name:"dblobs" ~algorithms:[ Model_spec.Tree ] ()

let search_options ~seed =
  {
    Test_core.tiny_options with
    Compiler.seed;
    bo_settings =
      {
        Test_core.tiny_options.Compiler.bo_settings with
        Bo.Optimizer.n_iter = 4;
        batch_size = 2;
      };
  }

let run_reference ~seed =
  Compiler.search_model ~options:(search_options ~seed) (Platform.tofino ())
    (tree_spec ())

let entry_exactly_equal (a : Bo.History.entry) (b : Bo.History.entry) =
  a.Bo.History.iteration = b.Bo.History.iteration
  && Bo.Config.equal a.config b.config
  && Int64.bits_of_float a.objective = Int64.bits_of_float b.objective
  && a.feasible = b.feasible && a.pruned = b.pruned
  && List.length a.metadata = List.length b.metadata
  && List.for_all2
       (fun (k1, v1) (k2, v2) ->
         k1 = k2 && Int64.bits_of_float v1 = Int64.bits_of_float v2)
       a.metadata b.metadata

let histories_identical a b =
  List.length (Bo.History.entries a) = List.length (Bo.History.entries b)
  && List.for_all2 entry_exactly_equal (Bo.History.entries a)
       (Bo.History.entries b)

(* One coordinated search: the coordinator runs on this domain (driving the
   optimizer through the dispatch hook), workers are spawned domains running
   the real [Dist.Worker.run] loop against a scratch coordination directory.
   [kill = Some (victim, claims)] arms a fault plan that crashes that worker
   immediately after its [claims]-th successful claim — dying with an
   unserved lease, the case TTL reissue exists for. *)
let run_dist ?dir ?(cleanup = true) ?(workers = 1) ?kill ?(ttl_s = 30.)
    ?(max_reissues = 4) ~seed () =
  let dir = match dir with Some d -> d | None -> mk_dir () in
  let platform = Platform.tofino () in
  let spec = tree_spec () in
  (* Load the dataset before spawning domains: Model_spec caches lazily and
     the cache write is not synchronized. *)
  ignore (Model_spec.load spec);
  let options = search_options ~seed in
  let eval ~scope ~index ~config =
    Compiler.worker_eval ~options ~platform ~specs:[ spec ] ~scope ~index
      ~config
  in
  let coord =
    Dist.Coordinator.create ~dir ~ttl_s ~poll_s:0.002 ~max_reissues
      ~local_eval:eval ()
  in
  let domains =
    List.init workers (fun i ->
        Domain.spawn (fun () ->
            let faults =
              match kill with
              | Some (victim, claims) when victim = i ->
                  Some
                    (Faultplan.create
                       [ Faultplan.Kill_after { records = claims } ])
              | _ -> None
            in
            try
              ignore
                (Dist.Worker.run ~dir ~id:i ~eval ~poll_s:0.002 ?faults ()
                  : Dist.Worker.stats)
            with Faultplan.Killed _ -> ()))
  in
  let dispatch ~scope batch = Dist.Coordinator.dispatch coord ~scope batch in
  let result =
    Fun.protect
      ~finally:(fun () ->
        Dist.Coordinator.finish coord;
        List.iter Domain.join domains)
      (fun () ->
        Compiler.search_model
          ~options:{ options with Compiler.dispatch = Some dispatch }
          platform spec)
  in
  let stats = Dist.Coordinator.stats coord in
  if cleanup then rm_rf dir;
  (result, stats)

let check_matches_reference ~msg reference (dist : Compiler.model_result) =
  Alcotest.(check bool)
    (msg ^ ": history bit-identical")
    true
    (histories_identical reference.Compiler.history dist.Compiler.history);
  Alcotest.(check bool)
    (msg ^ ": winner config identical")
    true
    (Bo.Config.equal reference.Compiler.artifact.Evaluator.config
       dist.Compiler.artifact.Evaluator.config);
  Alcotest.(check bool)
    (msg ^ ": winner objective bit-identical")
    true
    (Int64.bits_of_float reference.Compiler.artifact.Evaluator.objective
    = Int64.bits_of_float dist.Compiler.artifact.Evaluator.objective)

let test_dist_one_worker () =
  let reference = run_reference ~seed:5 in
  let dist, stats = run_dist ~workers:1 ~seed:5 () in
  check_matches_reference ~msg:"1 worker" reference dist;
  Alcotest.(check int) "every candidate was leased"
    (Bo.History.length reference.Compiler.history)
    stats.Dist.Coordinator.leases_issued;
  Alcotest.(check int) "no inline fallback" 0
    stats.Dist.Coordinator.inline_evaluated;
  Alcotest.(check int) "no replay on a fresh directory" 0
    stats.Dist.Coordinator.replay_hits

let test_dist_three_workers () =
  let reference = run_reference ~seed:5 in
  let dist, stats = run_dist ~workers:3 ~seed:5 () in
  check_matches_reference ~msg:"3 workers" reference dist;
  Alcotest.(check int) "merged every evaluation"
    (Bo.History.length reference.Compiler.history)
    stats.Dist.Coordinator.merged

let test_dist_zero_workers_elastic () =
  (* No worker ever claims anything: every lease expires and, with the
     reissue budget at zero, is evaluated inline — the search completes
     with a fleet of zero, bit-identically. *)
  let reference = run_reference ~seed:5 in
  let dist, stats =
    run_dist ~workers:0 ~ttl_s:0.05 ~max_reissues:0 ~seed:5 ()
  in
  check_matches_reference ~msg:"0 workers" reference dist;
  Alcotest.(check int) "everything fell back inline"
    (Bo.History.length reference.Compiler.history)
    stats.Dist.Coordinator.inline_evaluated

let test_dist_resume_replay () =
  (* Re-using a coordination directory is a distributed resume: the second
     coordinator answers every candidate from the merged worker journals
     without leasing anything. *)
  let dir = mk_dir () in
  let reference = run_reference ~seed:7 in
  let first, _ = run_dist ~dir ~cleanup:false ~workers:1 ~seed:7 () in
  check_matches_reference ~msg:"first pass" reference first;
  let second, stats = run_dist ~dir ~workers:0 ~seed:7 () in
  check_matches_reference ~msg:"resumed pass" reference second;
  Alcotest.(check int) "all candidates replayed from journals"
    (Bo.History.length reference.Compiler.history)
    stats.Dist.Coordinator.replay_hits;
  Alcotest.(check int) "nothing leased on resume" 0
    stats.Dist.Coordinator.leases_issued

let test_dispatch_prune_incompatible () =
  let options =
    {
      (search_options ~seed:5) with
      Compiler.prune = Some Bo.Asha.default_settings;
      dispatch = Some (fun ~scope:_ _ -> [||]);
    }
  in
  Alcotest.check_raises "guard refuses dispatch + prune"
    (Invalid_argument
       "Compiler.search_model: dispatch is incompatible with prune")
    (fun () ->
      ignore (Compiler.search_model ~options (Platform.tofino ()) (tree_spec ())))

(* The headline sweep: kill a worker after its k-th claim, for every k the
   search can reach, at one worker and at three — the merged history and
   winner must match the undisturbed single-process run bit for bit.

   At one worker the death leaves nobody to serve reissues, so the reissue
   budget is zero and every orphaned lease falls back inline after one
   short TTL. At three workers the survivors pick up the reissued lease,
   exercising the republish path. *)
let test_kill_sweep () =
  let reference = run_reference ~seed:5 in
  let total = Bo.History.length reference.Compiler.history in
  for claims = 1 to total do
    let dist, stats =
      run_dist ~workers:1 ~ttl_s:0.1 ~max_reissues:0 ~kill:(0, claims)
        ~seed:5 ()
    in
    check_matches_reference
      ~msg:(Printf.sprintf "1 worker, killed after claim %d" claims)
      reference dist;
    Alcotest.(check bool)
      (Printf.sprintf "claim %d: orphaned leases re-evaluated inline" claims)
      true
      (stats.Dist.Coordinator.inline_evaluated > 0)
  done;
  for claims = 1 to total do
    let dist, stats =
      run_dist ~workers:3 ~ttl_s:0.3 ~max_reissues:4 ~kill:(0, claims)
        ~seed:5 ()
    in
    check_matches_reference
      ~msg:(Printf.sprintf "3 workers, one killed after claim %d" claims)
      reference dist;
    Alcotest.(check int)
      (Printf.sprintf "claim %d: survivors absorbed the reissues" claims)
      0 stats.Dist.Coordinator.inline_evaluated
  done

let suite =
  [
    Alcotest.test_case "protocol publish/claim/release" `Quick
      test_protocol_roundtrip;
    Alcotest.test_case "lease table bookkeeping" `Quick test_lease_table;
    Alcotest.test_case "journal group commit" `Quick test_journal_group_commit;
    Alcotest.test_case "journal single-pass read" `Quick
      test_journal_read_single_pass;
    Alcotest.test_case "journal incremental tail reader" `Quick
      test_journal_reader_poll;
    Alcotest.test_case "journal deterministic merge" `Quick test_journal_merge;
    Alcotest.test_case "lease/release record kinds" `Quick
      test_lease_kind_roundtrip;
    Alcotest.test_case "coordinated search, 1 worker" `Quick
      test_dist_one_worker;
    Alcotest.test_case "coordinated search, 3 workers" `Quick
      test_dist_three_workers;
    Alcotest.test_case "zero workers fall back inline" `Quick
      test_dist_zero_workers_elastic;
    Alcotest.test_case "coordination dir resume" `Quick test_dist_resume_replay;
    Alcotest.test_case "dispatch + prune refused" `Quick
      test_dispatch_prune_incompatible;
    Alcotest.test_case "kill a worker at every lease" `Slow test_kill_sweep;
  ]
