(* The batched training engine's two contracts: bit-identical learning
   against the per-sample reference oracle on random small MLPs, and exact
   rung-budget accounting in the ASHA pruner. *)
open Homunculus_ml
module Rng = Homunculus_util.Rng
module Bo = Homunculus_bo

(* Random tiny training problems: shape, activation, batch size (including
   batch > n, so the clamped final batch is exercised) and a data seed. *)
type problem = {
  seed : int;
  input_dim : int;
  hidden : int list;
  n_classes : int;
  n_samples : int;
  batch_size : int;
  act : Activation.t;
}

let problem_gen =
  QCheck.Gen.(
    let* seed = int_range 0 10_000 in
    let* input_dim = int_range 1 6 in
    let* hidden = list_size (int_range 0 3) (int_range 1 8) in
    let* n_classes = int_range 2 4 in
    let* n_samples = int_range 3 40 in
    let* batch_size = int_range 1 (n_samples + 2) in
    let+ act =
      oneofl [ Activation.Relu; Activation.Tanh; Activation.Sigmoid ]
    in
    { seed; input_dim; hidden; n_classes; n_samples; batch_size; act })

let problem_print p =
  Printf.sprintf
    "{seed=%d; input_dim=%d; hidden=[%s]; n_classes=%d; n_samples=%d; \
     batch_size=%d; act=%s}"
    p.seed p.input_dim
    (String.concat ";" (List.map string_of_int p.hidden))
    p.n_classes p.n_samples p.batch_size
    (match p.act with
    | Activation.Relu -> "relu"
    | Activation.Linear -> "linear"
    | Activation.Tanh -> "tanh"
    | Activation.Sigmoid -> "sigmoid")

let dataset_of p =
  let rng = Rng.create (p.seed * 2 + 1) in
  let x =
    Array.init p.n_samples (fun _ ->
        Array.init p.input_dim (fun _ -> Rng.gaussian rng ()))
  in
  let y = Array.init p.n_samples (fun i -> i mod p.n_classes) in
  Dataset.create ~x ~y ~n_classes:p.n_classes ()

let train_with p engine data =
  let model =
    Mlp.create (Rng.create p.seed) ~input_dim:p.input_dim
      ~hidden:(Array.of_list p.hidden) ~output_dim:p.n_classes
      ~hidden_act:p.act ()
  in
  let config =
    {
      Train.default_config with
      Train.epochs = 1;
      batch_size = p.batch_size;
      patience = None;
      engine;
    }
  in
  let (_ : Train.history) = Train.fit (Rng.create (p.seed + 7)) model config data in
  model

(* Tolerance 0: parameters must agree bit for bit ([Int64.bits_of_float], so
   NaN payloads and signed zeros count too), and therefore so must every
   prediction. *)
let prop_engines_bit_identical =
  QCheck.Test.make ~name:"batched engine is bit-identical to per-sample"
    ~count:120
    (QCheck.make ~print:problem_print problem_gen)
    (fun p ->
      let data = dataset_of p in
      let m_ref = train_with p Train.Per_sample data in
      let m_bat = train_with p Train.Batched data in
      let pa = Mlp.parameter_buffers m_ref
      and pb = Mlp.parameter_buffers m_bat in
      let params_identical =
        Array.for_all2
          (fun a b ->
            Array.for_all2
              (fun u v -> Int64.bits_of_float u = Int64.bits_of_float v)
              a b)
          pa pb
      in
      let preds_identical =
        Mlp.predict_all m_ref data.Dataset.x
        = Mlp.predict_all m_bat data.Dataset.x
      in
      params_identical && preds_identical)

(* Rung-budget accounting: replay a fixed candidate stream through the
   scheduler exactly the way the evaluator does (freeze at candidate start,
   record-then-decide at each rung, note epochs actually spent) and check the
   totals against the schedule computed by hand. *)
let test_rung_budget_accounting () =
  let settings =
    {
      Bo.Asha.rung_fractions = [| 0.25; 0.5 |];
      keep_frac = 0.5;
      min_observations = 2;
    }
  in
  let sched = Bo.Asha.create ~settings () in
  let budget = 8 in
  let rungs = Bo.Asha.rungs_for sched ~budget in
  Alcotest.(check (array int)) "rung epochs" [| 2; 4 |] rungs;
  (* Each candidate reports the same metric at every rung it reaches. *)
  let run_candidate metric =
    Bo.Asha.freeze sched;
    let stopped = ref None in
    Array.iteri
      (fun r rung_epoch ->
        if !stopped = None then begin
          Bo.Asha.record sched ~rung:r ~metric;
          match Bo.Asha.decide sched ~rung:r ~metric with
          | `Stop -> stopped := Some rung_epoch
          | `Continue -> ()
        end)
      rungs;
    let spent = match !stopped with Some e -> e | None -> budget in
    Bo.Asha.note_epochs sched spent;
    spent
  in
  (* c1, c2: free passes (fewer than [min_observations] at freeze time).
     c3 (0.5) falls below the frozen rung-0 cut (top half of {0.9, 0.8} =
     0.9) and stops after 2 epochs; c4 (0.95) clears both rungs. *)
  Alcotest.(check int) "c1 runs full" 8 (run_candidate 0.9);
  Alcotest.(check int) "c2 runs full" 8 (run_candidate 0.8);
  Alcotest.(check int) "c3 pruned at rung 0" 2 (run_candidate 0.5);
  Alcotest.(check int) "c4 clears both rungs" 8 (run_candidate 0.95);
  Alcotest.(check int) "epochs spent equals the schedule" 26
    (Bo.Asha.epochs_spent sched);
  Alcotest.(check (array int)) "rung observation counts" [| 4; 3 |]
    (Bo.Asha.observations sched)

(* The fit-side half of the accounting: an [on_epoch] hook that stops at
   epoch [e] must leave [epochs_run = e] exactly — the evaluator charges the
   scheduler with that number. *)
let test_on_epoch_stop_accounting () =
  let rng = Rng.create 3 in
  let x = Array.init 20 (fun _ -> [| Rng.gaussian rng () |]) in
  let data =
    Dataset.create ~x ~y:(Array.init 20 (fun i -> i mod 2)) ~n_classes:2 ()
  in
  let model = Mlp.create (Rng.create 1) ~input_dim:1 ~hidden:[| 4 |] ~output_dim:2 () in
  let config = { Train.default_config with Train.epochs = 10; patience = None } in
  let h =
    Train.fit (Rng.create 2) model config data
      ~on_epoch:(fun ~epoch ~loss:_ ~metric:_ ->
        if epoch = 3 then `Stop else `Continue)
  in
  Alcotest.(check int) "stopped at the rung epoch" 3 h.Train.epochs_run

let suite =
  [
    QCheck_alcotest.to_alcotest prop_engines_bit_identical;
    Alcotest.test_case "rung budget accounting" `Quick test_rung_budget_accounting;
    Alcotest.test_case "on_epoch stop accounting" `Quick test_on_epoch_stop_accounting;
  ]
