(* The composition layer: predicate algebra, policy normalization, and the
   lowering of many guarded models onto one shared pipeline — including the
   PR's acceptance criteria: a two-model composition allocates strictly
   fewer stages than the sum of its standalone deployments, and an
   over-subscribed three-model composition is rejected (allocator
   Capacity_exceeded or infeasible combined verdict), never a crash. *)
module Pred = Homunculus_policy.Pred
module Policy = Homunculus_policy.Policy
module Lower = Homunculus_policy.Lower
module Compose_eval = Homunculus_check.Compose_eval
module Model_ir = Homunculus_backends.Model_ir
module Stage_alloc = Homunculus_backends.Stage_alloc
module Tofino = Homunculus_backends.Tofino
module Taurus = Homunculus_backends.Taurus
module Resource = Homunculus_backends.Resource
module Platform = Homunculus_alchemy.Platform
module Rng = Homunculus_util.Rng

(* --------------------------------------------------------------- Pred *)

let lookup_of alist atom =
  match atom with
  | Pred.Field f -> List.assoc_opt f alist
  | Pred.Class _ -> None

let test_pred_eval_basics () =
  let p =
    Pred.conj [ Pred.field_ge "a" 1.; Pred.field_lt "b" 5. ]
  in
  Alcotest.(check bool) "in range" true
    (Pred.eval p ~lookup:(lookup_of [ ("a", 2.); ("b", 0.) ]));
  Alcotest.(check bool) "out of range" false
    (Pred.eval p ~lookup:(lookup_of [ ("a", 0.); ("b", 0.) ]));
  Alcotest.(check bool) "absent atom is false" false
    (Pred.eval p ~lookup:(lookup_of [ ("a", 2.) ]))

let test_pred_simplify_constants () =
  let t = Pred.field_ge "a" 1. in
  Alcotest.(check bool) "and false" true
    (Pred.equal Pred.False (Pred.simplify (Pred.And (t, Pred.False))));
  Alcotest.(check bool) "or true" true
    (Pred.equal Pred.True (Pred.simplify (Pred.Or (t, Pred.True))));
  Alcotest.(check bool) "double negation" true
    (Pred.equal t (Pred.simplify (Pred.Not (Pred.Not t))));
  Alcotest.(check bool) "negated ge becomes lt" true
    (Pred.equal (Pred.field_lt "a" 1.) (Pred.simplify (Pred.Not t)));
  let s = Pred.simplify (Pred.And (t, t)) in
  Alcotest.(check bool) "idempotence" true (Pred.equal t s)

let test_pred_clauses_shapes () =
  let between = Pred.field_between "a" ~lo:1. ~hi:5. in
  (match Pred.clauses between with
  | Ok [ [ r ] ] ->
      Alcotest.(check (float 0.)) "lo" 1. r.Pred.lo;
      Alcotest.(check (float 0.)) "hi" 5. r.Pred.hi
  | Ok _ -> Alcotest.fail "expected one clause with one merged range"
  | Error e -> Alcotest.fail e);
  (* Dead clause: an empty intersection vanishes, leaving the live arm. *)
  let dead_or_live =
    Pred.Or
      ( Pred.conj [ Pred.field_ge "a" 5.; Pred.field_lt "a" 1. ],
        Pred.field_eq "b" 2. )
  in
  (match Pred.clauses dead_or_live with
  | Ok [ [ r ] ] -> Alcotest.(check bool) "eq range" true (r.Pred.eq = Some 2.)
  | Ok cs ->
      Alcotest.failf "expected 1 clause, got %d" (List.length cs)
  | Error e -> Alcotest.fail e);
  (* Unsatisfiable conjunction compiles to zero entries. *)
  (match Pred.clauses (Pred.conj [ Pred.field_eq "a" 1.; Pred.field_eq "a" 2. ]) with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected unsatisfiable"
  | Error e -> Alcotest.fail e);
  (* Negated equality is not one match entry. *)
  (match Pred.clauses (Pred.Not (Pred.field_eq "a" 1.)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negated equality must be rejected")

let test_pred_clauses_cap () =
  (* Each conjunct doubles the DNF: 8 disjunction pairs over distinct
     fields expand to 2^8 = 256 > 128 clauses. *)
  let big =
    Pred.conj
      (List.init 8 (fun i ->
           let f = Printf.sprintf "f%d" i in
           Pred.Or (Pred.field_lt f 1., Pred.field_ge f 2.)))
  in
  match Pred.clauses big with
  | Error msg ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions the cap" true (contains msg "128")
  | Ok _ -> Alcotest.fail "expected DNF cap rejection"

(* The load-bearing differential guarantee: for any simplified predicate the
   table compilation accepts, clause matching agrees with direct evaluation
   under every lookup — present and absent atoms alike. *)
let random_pred rng =
  let fields = [| "a"; "b"; "c" |] in
  let rec go depth =
    if depth = 0 || Rng.int rng 4 = 0 then
      let f = fields.(Rng.int rng 3) in
      let v = float_of_int (Rng.int rng 7 - 3) in
      match Rng.int rng 3 with
      | 0 -> Pred.field_ge f v
      | 1 -> Pred.field_lt f v
      | _ -> Pred.field_eq f v
    else
      match Rng.int rng 4 with
      | 0 -> Pred.And (go (depth - 1), go (depth - 1))
      | 1 -> Pred.Or (go (depth - 1), go (depth - 1))
      | 2 -> Pred.Not (go (depth - 1))
      | _ -> if Rng.int rng 2 = 0 then Pred.True else Pred.False
  in
  go 3

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let prop_clauses_agree_with_eval =
  QCheck.Test.make ~name:"clause matching agrees with eval" ~count:500
    seed_gen (fun seed ->
      let rng = Rng.create seed in
      let p = Pred.simplify (random_pred rng) in
      match Pred.clauses p with
      | Error _ -> true (* negated equalities may survive simplify *)
      | Ok cs ->
          let ok = ref true in
          for _ = 1 to 20 do
            let bindings =
              List.filter_map
                (fun f ->
                  if Rng.int rng 5 = 0 then None (* absent atom *)
                  else Some (f, float_of_int (Rng.int rng 9 - 4)))
                [ "a"; "b"; "c" ]
            in
            let lookup = lookup_of bindings in
            let direct = Pred.eval p ~lookup in
            let tabled = List.exists (Pred.clause_matches ~lookup) cs in
            if direct <> tabled then ok := false
          done;
          !ok)

(* -------------------------------------------------------------- Policy *)

let spec name =
  Homunculus_alchemy.Model_spec.make ~name
    ~loader:(fun () -> failwith "never loaded in these tests")
    ()

let test_policy_normalize_rules () =
  let s = spec "m" in
  let g1 = Pred.field_ge "a" 1. and g2 = Pred.field_lt "b" 5. in
  (* Guard hoisting: nested guards conjoin at the leaf. *)
  (match Policy.normalize (Policy.guard g1 (Policy.guard g2 (Policy.model s))) with
  | Policy.Guard (p, Policy.Model _) ->
      Alcotest.(check bool) "conjoined" true
        (Pred.equal p (Pred.simplify (Pred.And (g1, g2))))
  | _ -> Alcotest.fail "expected guarded leaf");
  (* Dead branches vanish; drop absorbs Seq. *)
  Alcotest.(check bool) "guard false is drop" true
    (Policy.normalize (Policy.guard Pred.False (Policy.model s)) = Policy.drop);
  Alcotest.(check bool) "drop absorbs seq" true
    (Policy.normalize Policy.(drop >>> model s) = Policy.drop);
  (* Par flattens and drops disappear. *)
  (match
     Policy.normalize
       (Policy.par
          [ Policy.par [ Policy.model s; Policy.drop ]; Policy.model s ])
   with
  | Policy.Par [ Policy.Model _; Policy.Model _ ] -> ()
  | p -> Alcotest.failf "unexpected normal form %s" (Policy.to_string p));
  (* Guards distribute through Par to the leaves. *)
  (match
     Policy.normalize
       (Policy.guard g1 (Policy.par [ Policy.model s; Policy.model s ]))
   with
  | Policy.Par [ Policy.Guard (p1, _); Policy.Guard (p2, _) ] ->
      Alcotest.(check bool) "left" true (Pred.equal p1 (Pred.simplify g1));
      Alcotest.(check bool) "right" true (Pred.equal p2 (Pred.simplify g1))
  | p -> Alcotest.failf "unexpected normal form %s" (Policy.to_string p));
  (* Idempotence. *)
  let q =
    Policy.guard g1
      Policy.(model s >>> par [ model s; guard g2 (model s) ])
  in
  Alcotest.(check string) "normalize idempotent"
    (Policy.to_string (Policy.normalize q))
    (Policy.to_string (Policy.normalize (Policy.normalize q)))

let test_policy_tenants () =
  let a = spec "ad" and b = spec "tc" in
  let p =
    Policy.(
      guard (Pred.field_ge "x" 1.) (model a)
      >>> par [ model b; guard Pred.False (model a) ])
  in
  match Policy.tenants p with
  | [ t0; t1 ] ->
      Alcotest.(check string) "t0 id" "t0_ad" t0.Policy.id;
      Alcotest.(check string) "t1 id" "t1_tc" t1.Policy.id;
      Alcotest.(check (list string)) "t0 upstream" [] t0.Policy.upstream;
      Alcotest.(check (list string)) "t1 upstream" [ "t0_ad" ] t1.Policy.upstream;
      Alcotest.(check bool) "t1 unguarded" true (t1.Policy.pred = Pred.True)
  | ts -> Alcotest.failf "expected 2 tenants, got %d" (List.length ts)

(* --------------------------------------------------------------- Lower *)

(* Hand-built MAT-mappable models keep the lowering tests training-free.
   An SVM over k features maps to k independent feature tables plus one
   decision table depending on all of them. *)
let svm name n_features =
  Model_ir.Svm
    {
      name;
      class_weights =
        [|
          Array.init n_features (fun i -> 1. +. float_of_int i);
          Array.init n_features (fun i -> -1. -. float_of_int i);
        |];
      biases = [| 0.1; -0.1 |];
    }

let features prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i)

let input ?(pred = Pred.True) ?(upstream = []) id model feats =
  {
    Lower.in_id = id;
    in_pred = pred;
    in_model = model;
    in_features = feats;
    in_upstream = upstream;
  }

let two_tenants () =
  [
    input "a" (svm "a" 3) (features "x" 3) ~pred:(Pred.field_ge "x0" 1.);
    input "b" (svm "b" 3) (features "y" 3) ~pred:(Pred.field_lt "y0" 5.);
  ]

let test_compose_shares_stages () =
  let platform = Platform.tofino () in
  match Lower.compose platform (two_tenants ()) with
  | Error e -> Alcotest.fail (Lower.error_to_string e)
  | Ok t ->
      Alcotest.(check bool) "feasible" true t.Lower.verdict.Resource.feasible;
      Alcotest.(check int) "two guard tables" 2 (Lower.guard_table_count t);
      let device =
        match t.Lower.pipeline with
        | Lower.Mat { device; _ } -> device
        | Lower.Grid _ -> Alcotest.fail "expected MAT pipeline"
      in
      let standalone =
        List.fold_left
          (fun acc tn -> acc + Lower.standalone_stages device tn)
          0 t.Lower.tenants
      in
      (* The acceptance criterion: sharing beats the sum of its parts,
         strictly. Two guarded 3-feature SVMs: 3 stages each standalone
         (guard, features, decision), 3 stages composed. *)
      Alcotest.(check bool)
        (Printf.sprintf "shared %d < standalone sum %d"
           (Lower.stages_used t) standalone)
        true
        (Lower.stages_used t < standalone);
      (* Union schema: first-seen order, x's then y's. *)
      Alcotest.(check int) "union width" 6 (Array.length t.Lower.features);
      Alcotest.(check string) "x first" "x0" t.Lower.features.(0);
      Alcotest.(check string) "y after" "y0" t.Lower.features.(3)

let test_compose_oversubscription_rejected () =
  let three =
    two_tenants ()
    @ [ input "c" (svm "c" 3) (features "z" 3) ~pred:(Pred.field_ge "z0" 0.5) ]
  in
  (* Stage-starved: a guarded SVM needs 3 dependent stages; a 2-stage
     pipeline cannot host any of them → allocator Capacity_exceeded. *)
  (match
     Lower.compose
       (Platform.tofino
          ~device:{ Tofino.default_device with Tofino.n_stages = 2 } ())
       three
   with
  | Error (Lower.Allocation (Stage_alloc.Capacity_exceeded _)) -> ()
  | Error e -> Alcotest.failf "wrong rejection: %s" (Lower.error_to_string e)
  | Ok _ -> Alcotest.fail "2-stage pipeline must reject three tenants");
  (* Table-starved: 3 guards + 3x4 model tables = 15 MATs against 8 — the
     layout fits the stages, so the rejection is the combined verdict. *)
  match Lower.compose (Platform.with_tables (Platform.tofino ()) 8) three with
  | Error e -> Alcotest.failf "unexpected error: %s" (Lower.error_to_string e)
  | Ok t ->
      Alcotest.(check bool) "infeasible" false t.Lower.verdict.Resource.feasible;
      Alcotest.(check bool) "names the resource" true
        (match t.Lower.verdict.Resource.rejection with
        | Some r -> String.length r > 0
        | None -> false)

let test_compose_validation_errors () =
  let platform = Platform.tofino () in
  (match
     Lower.compose platform
       [ input "a" (svm "a" 3) (features "x" 3) ~pred:(Pred.field_ge "nope" 1.) ]
   with
  | Error (Lower.Unknown_field { field = "nope"; _ }) -> ()
  | _ -> Alcotest.fail "expected Unknown_field");
  (match
     Lower.compose platform
       [ input "a" (svm "a" 3) (features "x" 3) ~pred:(Pred.class_is "ghost" 1) ]
   with
  | Error (Lower.Unknown_upstream { upstream = "ghost"; _ }) -> ()
  | _ -> Alcotest.fail "expected Unknown_upstream");
  (match
     Lower.compose platform
       [
         input "a" (svm "a" 3) (features "x" 3)
           ~pred:(Pred.conj [ Pred.field_eq "x0" 1.; Pred.field_eq "x0" 2. ]);
       ]
   with
  | Error (Lower.Bad_guard _) -> ()
  | _ -> Alcotest.fail "expected Bad_guard for an unsatisfiable guard");
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Lower.compose: duplicate tenant id a") (fun () ->
      ignore
        (Lower.compose platform
           [
             input "a" (svm "a" 3) (features "x" 3);
             input "a" (svm "a2" 3) (features "y" 3);
           ]))

let test_compose_grid () =
  match Lower.compose (Platform.taurus ()) (two_tenants ()) with
  | Error e -> Alcotest.fail (Lower.error_to_string e)
  | Ok t -> (
      Alcotest.(check bool) "feasible" true t.Lower.verdict.Resource.feasible;
      match t.Lower.pipeline with
      | Lower.Grid { cus; mus; placement; _ } ->
          let claimed =
            List.fold_left
              (fun acc (_, ts) -> acc + List.length ts)
              0 placement.Homunculus_backends.Placement.assignments
          in
          Alcotest.(check int) "tiles = cus + mus" (cus + mus) claimed;
          (* Each guarded tenant charges one guard CU on the fabric. *)
          Alcotest.(check bool) "guards claim CUs" true (cus >= 2)
      | Lower.Mat _ -> Alcotest.fail "expected grid pipeline")

let test_compose_deterministic () =
  let t1 = Lower.compose (Platform.tofino ()) (two_tenants ()) in
  let t2 = Lower.compose (Platform.tofino ()) (two_tenants ()) in
  match (t1, t2) with
  | Ok a, Ok b ->
      Alcotest.(check string) "summaries bit-identical" (Lower.summary a)
        (Lower.summary b)
  | _ -> Alcotest.fail "compose failed"

(* --------------------------------------------- differential oracle *)

let test_oracle_parallel_guards () =
  match Lower.compose (Platform.tofino ()) (two_tenants ()) with
  | Error e -> Alcotest.fail (Lower.error_to_string e)
  | Ok t ->
      let rng = Rng.create 7 in
      let vecs =
        Array.init 200 (fun _ ->
            Array.init 6 (fun _ -> float_of_int (Rng.int rng 11 - 5)))
      in
      Alcotest.(check int) "no violations" 0
        (List.length (Compose_eval.check t vecs));
      (* Guards really select: both matched and unmatched samples occur. *)
      let ds = Compose_eval.decisions t vecs in
      let fired =
        Array.fold_left
          (fun acc l ->
            acc + List.length (List.filter (fun d -> d.Compose_eval.cls <> None) l))
          0 ds
      in
      Alcotest.(check bool) "some fire" true (fired > 0);
      Alcotest.(check bool) "some skip" true
        (fired < 2 * Array.length vecs)

(* Seq + class guard: the downstream tenant fires exactly when the
   upstream one ran AND decided the guarded class. *)
let test_oracle_sequential_class_guard () =
  let inputs =
    [
      input "a" (svm "a" 2) (features "x" 2) ~pred:(Pred.field_ge "x0" 0.);
      input "b" (svm "b" 2) (features "y" 2)
        ~pred:(Pred.class_is "a" 1) ~upstream:[ "a" ];
    ]
  in
  match Lower.compose (Platform.tofino ()) inputs with
  | Error e -> Alcotest.fail (Lower.error_to_string e)
  | Ok t ->
      let rng = Rng.create 11 in
      let vecs =
        Array.init 200 (fun _ ->
            Array.init 4 (fun _ -> float_of_int (Rng.int rng 11 - 5)))
      in
      Alcotest.(check int) "no violations" 0
        (List.length (Compose_eval.check t vecs));
      let ds = Compose_eval.decisions t vecs in
      Array.iteri
        (fun i l ->
          match l with
          | [ a; b ] ->
              let expect_b =
                match a.Compose_eval.cls with Some 1 -> true | _ -> false
              in
              if expect_b <> (b.Compose_eval.cls <> None) then
                Alcotest.failf "sample %d: class guard mismatch" i
          | _ -> Alcotest.fail "expected two decisions")
        ds;
      (* The class guard gates on the upstream's decision, so the guard
         table DAG must order b's guard after a's decision table. *)
      (match t.Lower.pipeline with
      | Lower.Mat { allocation; _ } ->
          let stage name = List.assoc name allocation.Stage_alloc.stage_of in
          Alcotest.(check bool) "b's guard after a's decision" true
            (stage "g__b" > stage "a__a_decision")
      | Lower.Grid _ -> Alcotest.fail "expected MAT pipeline")

let test_corpus_scatters_sources () =
  let feats = [| "x0"; "x1"; "y0" |] in
  let rows_x = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let rows_y = [| [| 9. |] |] in
  let vecs =
    Compose_eval.corpus (Rng.create 3) ~features:feats ~n:16
      [ ([| "x0"; "x1" |], rows_x); ([| "y0" |], rows_y) ]
  in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "x slot from a row" true
        ((v.(0) = 1. && v.(1) = 2.) || (v.(0) = 3. && v.(1) = 4.));
      Alcotest.(check (float 0.)) "y slot" 9. v.(2))
    vecs

let suite =
  [
    Alcotest.test_case "pred eval basics" `Quick test_pred_eval_basics;
    Alcotest.test_case "pred simplify" `Quick test_pred_simplify_constants;
    Alcotest.test_case "pred clauses shapes" `Quick test_pred_clauses_shapes;
    Alcotest.test_case "pred clauses cap" `Quick test_pred_clauses_cap;
    Alcotest.test_case "policy normalize" `Quick test_policy_normalize_rules;
    Alcotest.test_case "policy tenants" `Quick test_policy_tenants;
    Alcotest.test_case "compose shares stages" `Quick test_compose_shares_stages;
    Alcotest.test_case "compose oversubscription" `Quick
      test_compose_oversubscription_rejected;
    Alcotest.test_case "compose validation" `Quick test_compose_validation_errors;
    Alcotest.test_case "compose grid" `Quick test_compose_grid;
    Alcotest.test_case "compose deterministic" `Quick test_compose_deterministic;
    Alcotest.test_case "oracle parallel" `Quick test_oracle_parallel_guards;
    Alcotest.test_case "oracle sequential" `Quick test_oracle_sequential_class_guard;
    Alcotest.test_case "oracle corpus" `Quick test_corpus_scatters_sources;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_clauses_agree_with_eval ]
