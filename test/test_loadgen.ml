(* qcheck properties over the open-loop load generator: arrival sequences
   are non-decreasing, hit the target long-run rate, and are bit-identical
   for a fixed seed no matter how the draws are chunked. Processes are
   derived from an integer seed through Rng, so qcheck shrinks over seeds
   and every failure reproduces from one integer. *)

open Homunculus_serve
module Rng = Homunculus_util.Rng

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)

(* Half the seeds exercise Poisson, half a random bursty shape. *)
let process_of_seed seed =
  let rng = Rng.create (seed + 7919) in
  if Rng.int rng 2 = 0 then Loadgen.Poisson
  else
    Loadgen.Bursty
      {
        mean_burst = 1 + Rng.int rng 12;
        peak_factor = 1. +. Rng.float rng 7.;
      }

let rate_of_seed seed =
  let rng = Rng.create (seed + 104729) in
  0.5 +. Rng.float rng 400.

let fresh_gen seed =
  Loadgen.generator (Rng.create seed) ~rate:(rate_of_seed seed)
    ~process:(process_of_seed seed)

let prop_arrivals_monotone =
  QCheck.Test.make ~name:"arrival timestamps are finite and non-decreasing"
    ~count:60 seed_gen (fun seed ->
      let ts = Loadgen.arrivals (fresh_gen seed) ~n:2000 in
      let ok = ref (Array.length ts = 2000) in
      let last = ref 0. in
      Array.iter
        (fun t ->
          if not (Float.is_finite t) || t < !last then ok := false;
          last := t)
        ts;
      !ok)

let prop_rate_accurate =
  (* The long-run empirical rate n / t_n must track the target. Poisson's
     relative error at n draws is ~1/sqrt(n); the bursty process adds
     burst-level variance (~sqrt(mean_burst/n)), so at n = 30_000 and
     mean_burst <= 12 the 10% tolerance sits beyond 5 sigma. *)
  QCheck.Test.make ~name:"long-run rate within 10% of target" ~count:20
    seed_gen (fun seed ->
      let n = 30_000 in
      let rate = rate_of_seed seed in
      let ts = Loadgen.arrivals (fresh_gen seed) ~n in
      let horizon = ts.(n - 1) in
      horizon > 0.
      &&
      let achieved = float_of_int n /. horizon in
      Float.abs (achieved -. rate) /. rate < 0.10)

let prop_chunk_invariant =
  (* One call for 600 arrivals vs the same seed drained through random-size
     chunks: the stateful generator must produce the bit-identical
     sequence, so batch size can never perturb the offered workload. *)
  QCheck.Test.make ~name:"chunked draws are bit-identical to one draw"
    ~count:60 seed_gen (fun seed ->
      let n = 600 in
      let one_shot = Loadgen.arrivals (fresh_gen seed) ~n in
      let g = fresh_gen seed in
      let chunk_rng = Rng.create (seed + 31) in
      let chunks = ref [] in
      let drawn = ref 0 in
      while !drawn < n do
        let k = Stdlib.min (n - !drawn) (1 + Rng.int chunk_rng 97) in
        chunks := Loadgen.arrivals g ~n:k :: !chunks;
        drawn := !drawn + k
      done;
      Array.concat (List.rev !chunks) = one_shot)

let prop_retime_matches_arrivals =
  (* retime must stamp event i with the generator's i-th arrival and leave
     everything else untouched. *)
  QCheck.Test.make ~name:"retime = arrivals, features preserved" ~count:60
    seed_gen (fun seed ->
      let n = 40 in
      let xs = Array.init n (fun i -> [| float_of_int i; 1. |]) in
      let base =
        Stream.of_samples ~labels:(Array.init n (fun i -> i mod 2))
          ~ts:(Array.init n float_of_int) xs
      in
      let expected = Loadgen.arrivals (fresh_gen seed) ~n in
      let retimed = Loadgen.retime (fresh_gen seed) base in
      Array.length retimed = n
      && Array.for_all
           (fun i ->
             let e = retimed.(i) and b = base.(i) in
             e.Stream.ts = expected.(i)
             && e.Stream.features == b.Stream.features
             && e.Stream.label = b.Stream.label
             && e.Stream.flow_id = b.Stream.flow_id)
           (Array.init n Fun.id))

(* Plain alcotest cases: constructor validation and the stable naming the
   bench/CLI labels build on. *)

let test_generator_validates () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "rate must be positive" true
    (raises (fun () ->
         Loadgen.generator (Rng.create 1) ~rate:0. ~process:Loadgen.Poisson));
  Alcotest.(check bool) "mean_burst >= 1" true
    (raises (fun () ->
         Loadgen.generator (Rng.create 1) ~rate:10.
           ~process:(Loadgen.Bursty { mean_burst = 0; peak_factor = 2. })));
  Alcotest.(check bool) "peak_factor >= 1" true
    (raises (fun () ->
         Loadgen.generator (Rng.create 1) ~rate:10.
           ~process:(Loadgen.Bursty { mean_burst = 4; peak_factor = 0.5 })))

let test_process_names () =
  Alcotest.(check string) "poisson" "poisson"
    (Loadgen.process_name Loadgen.Poisson);
  Alcotest.(check string) "bursty" "bursty_b8_p4"
    (Loadgen.process_name
       (Loadgen.Bursty { mean_burst = 8; peak_factor = 4. }))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_arrivals_monotone;
      prop_rate_accurate;
      prop_chunk_invariant;
      prop_retime_matches_arrivals;
    ]
  @ [
      Alcotest.test_case "generator validation" `Quick test_generator_validates;
      Alcotest.test_case "process names" `Quick test_process_names;
    ]
