(* Differential tests for the quantized serving drain: every verdict the
   engine emits in Quantized mode must be bit-identical to a pure
   Runtime encode+lookup replay of the same trace — on dataset-derived
   payloads (nslkdd, iot) and across a mid-trace hot-swap, where the
   replay must select the table generation (epoch) that actually served
   each packet. *)

open Homunculus_netdata
open Homunculus_serve
module Rng = Homunculus_util.Rng
module Runtime = Homunculus_backends.Runtime
module Model_ir = Homunculus_backends.Model_ir
module Svm = Homunculus_ml.Svm
module Dataset = Homunculus_ml.Dataset
module Serve_eval = Homunculus_check.Serve_eval

(* Fit an SVM on a dataset's train split, stream its test split through a
   Quantized engine at an open-loop Poisson rate, and return the engine
   with its completed trace. *)
let run_dataset ~seed payload =
  let rng = Rng.create seed in
  let train, test =
    match payload with
    | `Nslkdd -> Nslkdd.generate_split (Rng.split rng) ()
    | `Iot -> Iot.generate_split (Rng.split rng) ()
  in
  let model = Model_ir.of_svm ~name:"m" (Svm.fit (Rng.split rng) train) in
  let n = Array.length test.Dataset.x in
  let base =
    Stream.of_samples ~labels:test.Dataset.y ~ts:(Array.init n float_of_int)
      test.Dataset.x
  in
  let g = Loadgen.generator (Rng.split rng) ~rate:120. ~process:Loadgen.Poisson in
  let events = Loadgen.retime g base in
  let config =
    {
      Engine.default_config with
      Engine.mode = Engine.Quantized;
      trace_capacity = n;
    }
  in
  let monitor = Monitor.create ~n_classes:train.Dataset.n_classes () in
  let engine = Engine.create ~config ~model ~monitor () in
  let summary = Engine.run engine events in
  (engine, summary)

(* Packet-for-packet replay against the runtime directly — independent of
   Serve_eval, so the oracle module is itself cross-checked. No swap here,
   so a single workspace against the engine's current runtime suffices. *)
let test_nslkdd_manual_replay () =
  let engine, summary = run_dataset ~seed:501 `Nslkdd in
  let tr = Engine.trace engine in
  Alcotest.(check int) "trace covers every served packet" summary.Engine.served
    tr.Engine.n;
  Alcotest.(check bool) "non-trivial trace" true (tr.Engine.n > 500);
  let rt =
    match Engine.current_runtime engine with
    | Some rt -> rt
    | None -> Alcotest.fail "quantized engine must expose its runtime"
  in
  let ws = Runtime.make_workspace rt in
  for i = 0 to tr.Engine.n - 1 do
    Runtime.encode_into rt ws tr.Engine.xs.(i);
    Alcotest.(check int)
      (Printf.sprintf "packet %d verdict" i)
      tr.Engine.verdicts.(i) (Runtime.lookup rt ws)
  done

let check_oracle_replay ~name (engine, summary) =
  let rp = Serve_eval.replay_quantized engine in
  Alcotest.(check int)
    (name ^ ": every served packet replayed")
    summary.Engine.served rp.Serve_eval.replayed;
  Alcotest.(check int)
    (name ^ ": bit-identical to the Runtime oracle")
    0
    (List.length rp.Serve_eval.mismatches)

let test_nslkdd_oracle () = check_oracle_replay ~name:"nslkdd" (run_dataset ~seed:502 `Nslkdd)
let test_iot_oracle () = check_oracle_replay ~name:"iot" (run_dataset ~seed:503 `Iot)

(* The drift scenario of test_serve, but with an SVM incumbent so the
   Quantized drain serves it, and an updater armed for exactly one
   hot-swap: the trace must span two table generations and still replay
   bit-identically, epoch by epoch. *)
let swap_mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 200 }

let test_swap_replay () =
  let rng = Rng.create 2041 in
  let train_flows = Flowsim.generate rng ~mix:(swap_mix 120) () in
  let model =
    Updater.bootstrap (Rng.split rng) ~algorithm:`Svm ~bins:Botnet.Fused
      ~name:"bd" train_flows
  in
  let phase_a = Flowsim.generate rng ~mix:(swap_mix 100) () in
  let phase_b =
    Stream.renumber ~from:100
      (Stream.shift_botnet (Flowsim.generate rng ~mix:(swap_mix 100) ()))
  in
  let sched_a = Array.map (fun f -> (Rng.float rng 600., f)) phase_a in
  let sched_b = Array.map (fun f -> (600. +. Rng.float rng 600., f)) phase_b in
  let events = Stream.events_scheduled (Array.append sched_a sched_b) in
  let updater =
    Updater.create (Rng.create 77)
      ~config:
        { Updater.default_config with Updater.min_gain = 0.02; max_swaps = 1 }
      ~n_features:30 ~n_classes:2 ()
  in
  let monitor = Monitor.create ~n_classes:2 () in
  let config =
    {
      Engine.default_config with
      Engine.mode = Engine.Quantized;
      trace_capacity = Array.length events;
    }
  in
  let engine = Engine.create ~config ~model ~monitor ~updater () in
  let summary = Engine.run engine events in
  Alcotest.(check int) "exactly one hot-swap" 1
    (List.length summary.Engine.swaps);
  Alcotest.(check int) "epoch advanced with the swap" 1 (Engine.epoch engine);
  Alcotest.(check int) "one runtime per epoch" 2
    (Array.length (Engine.epoch_runtimes engine));
  let tr = Engine.trace engine in
  let served_in e =
    let c = ref 0 in
    for i = 0 to tr.Engine.n - 1 do
      if tr.Engine.epochs.(i) = e then incr c
    done;
    !c
  in
  Alcotest.(check bool) "packets served before the swap" true (served_in 0 > 0);
  Alcotest.(check bool) "packets served after the swap" true (served_in 1 > 0);
  Alcotest.(check int) "no third epoch" tr.Engine.n (served_in 0 + served_in 1);
  check_oracle_replay ~name:"swap" (engine, summary)

let suite =
  [
    Alcotest.test_case "nslkdd manual replay" `Quick test_nslkdd_manual_replay;
    Alcotest.test_case "nslkdd oracle replay" `Quick test_nslkdd_oracle;
    Alcotest.test_case "iot oracle replay" `Quick test_iot_oracle;
    Alcotest.test_case "hot-swap epoch replay" `Quick test_swap_replay;
  ]
