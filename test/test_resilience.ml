(* Fault-injection harness for the resilience layer: journal round-trips and
   corruption tolerance, supervisor failure classification, fault-injected
   searches that complete with tagged history entries, and the headline
   guarantee — kill-at-any-record resume reproduces the uninterrupted
   search bit-for-bit, at one worker and at several. *)
open Homunculus_alchemy
open Homunculus_core
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng
module Par = Homunculus_par.Par
module Faultplan = Homunculus_resilience.Faultplan
module Journal = Homunculus_resilience.Journal
module Supervisor = Homunculus_resilience.Supervisor

let temp_journal () = Filename.temp_file "homunculus_journal" ".jsonl"

let some_config =
  Bo.Config.make
    [
      ("alpha", Bo.Param.Real_value 0.125);
      ("depth", Bo.Param.Int_value 7);
      ("kind", Bo.Param.Index_value 2);
    ]

let other_config =
  Bo.Config.make
    [ ("alpha", Bo.Param.Real_value 3.5); ("depth", Bo.Param.Int_value 2) ]

(* Faultplan *)

let test_faultplan_roundtrip () =
  let text =
    "raise@3,raise@4:1,nan@5:2,timeout@7,infeasible@2,drift@6,\
     research-timeout@1,kill@4"
  in
  let plan = Faultplan.of_string text in
  Alcotest.(check string) "round trip" text (Faultplan.to_string plan);
  Alcotest.(check int) "eight faults parsed" 8 (List.length (Faultplan.faults plan));
  Alcotest.(check bool) "empty plan" true
    (Faultplan.faults (Faultplan.of_string "") = []);
  Alcotest.check_raises "malformed" (Invalid_argument
    "Faultplan.of_string: \"raise\" (expected raise@K[:N], nan@K:E, \
     timeout@K, infeasible@K[:OBJ[:pruned]], drift@W, research-timeout@G, \
     or kill@N)")
    (fun () -> ignore (Faultplan.of_string "raise"))

let test_faultplan_serving_arms () =
  let plan = Faultplan.of_string "drift@2,drift@5,research-timeout@1,kill@3" in
  Alcotest.(check (list int)) "drift windows in plan order" [ 2; 5 ]
    (Faultplan.drift_windows plan);
  Alcotest.(check bool) "research timeout at its generation" true
    (Faultplan.research_timeout_at plan ~generation:1);
  Alcotest.(check bool) "other generations untouched" false
    (Faultplan.research_timeout_at plan ~generation:0);
  Alcotest.(check (list int)) "no drift arms: empty" []
    (Faultplan.drift_windows (Faultplan.of_string "kill@3"))

let test_faultplan_queries () =
  let plan = Faultplan.of_string "raise@1:1,nan@2:3,timeout@4,kill@5" in
  (* raise@1:1 fires on attempt 0 only. *)
  Faultplan.check_raise plan ~index:0 ~attempt:0;
  Alcotest.check_raises "raises on first attempt"
    (Faultplan.Injected "injected failure for candidate 1 (attempt 0)")
    (fun () -> Faultplan.check_raise plan ~index:1 ~attempt:0);
  Faultplan.check_raise plan ~index:1 ~attempt:1;
  Alcotest.(check (option int)) "nan epoch" (Some 3)
    (Faultplan.nan_epoch_at plan ~index:2);
  Alcotest.(check (option int)) "no nan" None
    (Faultplan.nan_epoch_at plan ~index:3);
  Alcotest.(check bool) "timeout" true (Faultplan.timeout_at plan ~index:4);
  Faultplan.check_kill plan ~records:4;
  Alcotest.check_raises "kill at threshold" (Faultplan.Killed 5) (fun () ->
      Faultplan.check_kill plan ~records:5)

(* Journal *)

let sample_records =
  [
    {
      Journal.scope = "blobs/tree";
      index = 0;
      config = some_config;
      objective = 0.875;
      feasible = true;
      pruned = false;
      metadata = [ ("latency_ns", 350.); ("params", 42.) ];
      failure = None;
      kind = Journal.Exact;
    };
    {
      Journal.scope = "blobs/tree";
      index = 1;
      config = other_config;
      objective = Float.nan;
      feasible = false;
      pruned = true;
      metadata = [ ("failure", 1.) ];
      failure =
        Some
          {
            Journal.failure_class = "divergence";
            message = "training diverged at epoch 3";
            retries = 0;
          };
      kind = Journal.Exact;
    };
  ]

let record_equal (a : Journal.record) (b : Journal.record) =
  a.Journal.scope = b.Journal.scope
  && a.index = b.index
  && Bo.Config.equal a.config b.config
  && Int64.bits_of_float a.objective = Int64.bits_of_float b.objective
  && a.feasible = b.feasible && a.pruned = b.pruned
  && List.for_all2
       (fun (k1, v1) (k2, v2) ->
         k1 = k2 && Int64.bits_of_float v1 = Int64.bits_of_float v2)
       a.metadata b.metadata
  && a.failure = b.failure && a.kind = b.kind

let test_journal_roundtrip () =
  let path = temp_journal () in
  let j = Journal.open_ path in
  List.iteri
    (fun i r ->
      Alcotest.(check int) "append count" (i + 1) (Journal.append j r))
    sample_records;
  Journal.close j;
  let replay = Journal.load path in
  Alcotest.(check int) "all lines valid" 2 (Journal.loaded replay);
  Alcotest.(check int) "none dropped" 0 (Journal.dropped replay);
  List.iter
    (fun r ->
      match
        Journal.find replay ~scope:r.Journal.scope ~config:r.Journal.config
      with
      | None -> Alcotest.fail "record not found on replay"
      | Some found ->
          Alcotest.(check bool)
            "record round-trips (NaN objective included)" true
            (record_equal r found))
    sample_records;
  Sys.remove path

let test_journal_corruption_tolerance () =
  let path = temp_journal () in
  let j = Journal.open_ path in
  List.iter (fun r -> ignore (Journal.append j r)) sample_records;
  Journal.close j;
  let valid = In_channel.with_open_text path In_channel.input_all in
  (* A bit-flipped middle line, a garbage line, and a truncated final line:
     exactly what a crash mid-append or disk corruption leaves behind. *)
  let some_line = List.nth (String.split_on_char '\n' valid) 0 in
  let flipped = Bytes.of_string some_line in
  Bytes.set flipped (String.length some_line / 2)
    (if Bytes.get flipped (String.length some_line / 2) = 'x' then 'y' else 'x');
  Out_channel.with_open_gen
    [ Open_append; Open_text ] 0o644 path
    (fun oc ->
      Out_channel.output_string oc (Bytes.to_string flipped ^ "\n");
      Out_channel.output_string oc "not json at all\n";
      Out_channel.output_string oc
        (String.sub some_line 0 (String.length some_line - 11)));
  let replay = Journal.load path in
  Alcotest.(check int) "valid records survive" 2 (Journal.loaded replay);
  Alcotest.(check int) "three bad lines dropped" 3 (Journal.dropped replay);
  Alcotest.(check bool) "good record still found" true
    (Journal.find replay ~scope:"blobs/tree" ~config:some_config <> None);
  Sys.remove path

let test_journal_later_record_wins () =
  let path = temp_journal () in
  let j = Journal.open_ path in
  let base = List.hd sample_records in
  ignore (Journal.append j base);
  ignore (Journal.append j { base with Journal.objective = 0.5 });
  Journal.close j;
  let replay = Journal.load path in
  (match Journal.find replay ~scope:base.Journal.scope ~config:base.Journal.config with
  | Some r -> Alcotest.(check (float 0.)) "superseded" 0.5 r.Journal.objective
  | None -> Alcotest.fail "record missing");
  Sys.remove path

(* Evaluation-kind field: predicted records round-trip, and journals written
   before the field existed (no "kind" member) load as Exact. *)

let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let test_journal_kind_roundtrip () =
  let predicted =
    {
      (List.hd sample_records) with
      Journal.feasible = false;
      metadata = [ ("cm_predicted", 1.); ("cm_p_feasible", 0.12) ];
      kind = Journal.Predicted;
    }
  in
  match Journal.record_of_line (Journal.line_of_record predicted) with
  | None -> Alcotest.fail "predicted record dropped"
  | Some r ->
      Alcotest.(check bool) "kind survives" true (r.Journal.kind = Journal.Predicted);
      Alcotest.(check bool) "payload survives" true (record_equal predicted r)

let test_journal_kind_legacy_lines () =
  let module Json = Homunculus_util.Json in
  (* Re-create the pre-kind line format: serialize a record, drop the "kind"
     member, and re-checksum — byte-for-byte what an old journal holds. *)
  let base = List.hd sample_records in
  let legacy_rec =
    match Journal.record_to_json base with
    | Json.Object members ->
        Json.Object (List.filter (fun (k, _) -> k <> "kind") members)
    | _ -> Alcotest.fail "record_to_json must produce an object"
  in
  let rec_text = Json.to_string ~pretty:false legacy_rec in
  let line =
    Printf.sprintf "{\"sum\":%s,\"rec\":%s}"
      (Json.to_string ~pretty:false
         (Json.String (Printf.sprintf "%016Lx" (fnv1a64 rec_text))))
      rec_text
  in
  match Journal.record_of_line line with
  | None -> Alcotest.fail "legacy line dropped"
  | Some r ->
      Alcotest.(check bool) "missing kind parses as Exact" true
        (r.Journal.kind = Journal.Exact);
      Alcotest.(check bool) "payload survives" true (record_equal base r)

(* Supervisor unit behavior *)

let ok_eval : Bo.Optimizer.evaluation =
  { objective = 0.9; feasible = true; pruned = false; metadata = [] }

let test_supervisor_transient_retry () =
  let faults = Faultplan.of_string "raise@0:1" in
  let sup = Supervisor.create ~faults () in
  let attempts = ref 0 in
  let eval =
    Supervisor.supervise sup ~scope:"s" ~index:0 ~config:some_config
      (fun ctx ->
        incr attempts;
        (* Attempt 0 raised before the thunk ran; this is the retry. *)
        Alcotest.(check int) "attempt number" 1 ctx.Supervisor.attempt;
        ok_eval)
  in
  Alcotest.(check int) "one successful attempt" 1 !attempts;
  Alcotest.(check bool) "success returned" true (eval = ok_eval);
  Alcotest.(check int) "no terminal failure" 0 (Supervisor.failure_count sup)

let test_supervisor_hard_failure_tagged () =
  let faults = Faultplan.of_string "raise@0" in
  let sup = Supervisor.create ~faults () in
  let eval =
    Supervisor.supervise sup ~scope:"s" ~index:0 ~config:some_config
      (fun _ -> Alcotest.fail "thunk must not run")
  in
  Alcotest.(check bool) "infeasible" false eval.Bo.Optimizer.feasible;
  Alcotest.(check (float 0.)) "objective zero" 0. eval.Bo.Optimizer.objective;
  Alcotest.(check (option (float 0.))) "backend class"
    (Some (Supervisor.class_code Supervisor.Backend))
    (List.assoc_opt Supervisor.failure_key eval.Bo.Optimizer.metadata);
  Alcotest.(check (option (float 0.))) "one retry burned" (Some 1.)
    (List.assoc_opt Supervisor.retries_key eval.Bo.Optimizer.metadata);
  Alcotest.(check int) "counted" 1 (Supervisor.failure_count sup)

let test_supervisor_divergence_partial_metric () =
  let faults = Faultplan.of_string "nan@0:2" in
  let sup = Supervisor.create ~faults () in
  let eval =
    Supervisor.supervise sup ~scope:"s" ~index:0 ~config:some_config
      (fun ctx ->
        (* Epoch 1 trains fine and reports a metric; epoch 2's loss reads
           as NaN through the fault and aborts. *)
        Supervisor.epoch_guard ctx ~epoch:1 ~loss:0.8 ~metric:(Some 0.62);
        Supervisor.epoch_guard ctx ~epoch:2 ~loss:0.4 ~metric:(Some 0.70);
        Alcotest.fail "training must have aborted")
  in
  Alcotest.(check bool) "infeasible" false eval.Bo.Optimizer.feasible;
  Alcotest.(check bool) "pruned (partial budget)" true eval.Bo.Optimizer.pruned;
  (* Metric recorded at epoch 2 before the loss check, so the partial
     observation is the freshest finite one. *)
  Alcotest.(check (float 0.)) "last finite metric kept" 0.70
    eval.Bo.Optimizer.objective;
  Alcotest.(check (option (float 0.))) "divergence class"
    (Some (Supervisor.class_code Supervisor.Divergence))
    (List.assoc_opt Supervisor.failure_key eval.Bo.Optimizer.metadata);
  Alcotest.(check int) "no retry for divergence" 1 (Supervisor.failure_count sup)

let test_supervisor_real_nan_loss () =
  let sup = Supervisor.create () in
  let eval =
    Supervisor.supervise sup ~scope:"s" ~index:3 ~config:some_config
      (fun ctx ->
        Supervisor.epoch_guard ctx ~epoch:1 ~loss:Float.nan ~metric:None;
        Alcotest.fail "must abort on NaN loss")
  in
  Alcotest.(check (float 0.)) "no metric seen: objective 0" 0.
    eval.Bo.Optimizer.objective;
  Alcotest.(check bool) "infeasible" false eval.Bo.Optimizer.feasible

let test_supervisor_timeout () =
  let faults = Faultplan.of_string "timeout@0" in
  let sup = Supervisor.create ~faults () in
  let eval =
    Supervisor.supervise sup ~scope:"s" ~index:0 ~config:some_config
      (fun _ -> Alcotest.fail "thunk must not run")
  in
  Alcotest.(check (option (float 0.))) "budget class"
    (Some (Supervisor.class_code Supervisor.Budget))
    (List.assoc_opt Supervisor.failure_key eval.Bo.Optimizer.metadata);
  (* The deadline path in the guard: a context whose deadline already passed
     raises on the next epoch. *)
  let ctx =
    {
      Supervisor.attempt = 0;
      started = 0.;
      deadline = Some (-1.);
      nan_epoch = None;
      last_metric = None;
    }
  in
  (match Supervisor.epoch_guard ctx ~epoch:1 ~loss:0.5 ~metric:None with
  | () -> Alcotest.fail "expired deadline must raise"
  | exception Supervisor.Timed_out _ -> ())

let test_supervisor_replay_skips_execution () =
  let path = temp_journal () in
  let j = Journal.open_ path in
  ignore (Journal.append j (List.hd sample_records));
  Journal.close j;
  let replay = Journal.load path in
  let sup = Supervisor.create ~replay () in
  let eval =
    Supervisor.supervise sup ~scope:"blobs/tree" ~index:0 ~config:some_config
      (fun _ -> Alcotest.fail "replay hit must not re-run")
  in
  Alcotest.(check (float 0.)) "recorded objective" 0.875
    eval.Bo.Optimizer.objective;
  Alcotest.(check int) "counted as replayed" 1 (Supervisor.replayed_count sup);
  Sys.remove path

(* Search-level fault injection. Tree-only searches keep the runtime down;
   the DNN variant below exercises the divergence path end to end. *)

let tree_spec () = Test_core.blob_spec ~name:"rblobs" ~algorithms:[ Model_spec.Tree ] ()
let dnn_spec () = Test_core.blob_spec ~name:"rdnn" ~algorithms:[ Model_spec.Dnn ] ()

let search_options ?supervisor ~seed () =
  {
    Test_core.tiny_options with
    Compiler.seed;
    supervisor;
    bo_settings =
      {
        Test_core.tiny_options.Compiler.bo_settings with
        Bo.Optimizer.n_iter = 4;
        batch_size = 2;
      };
  }

let run_search ?supervisor ?(spec = tree_spec ()) ?(platform = Platform.tofino ())
    ~seed () =
  let options = search_options ?supervisor ~seed () in
  Compiler.search_model ~options platform spec

let entry_exactly_equal (a : Bo.History.entry) (b : Bo.History.entry) =
  a.Bo.History.iteration = b.Bo.History.iteration
  && Bo.Config.equal a.config b.config
  && Int64.bits_of_float a.objective = Int64.bits_of_float b.objective
  && a.feasible = b.feasible && a.pruned = b.pruned
  && List.length a.metadata = List.length b.metadata
  && List.for_all2
       (fun (k1, v1) (k2, v2) ->
         k1 = k2 && Int64.bits_of_float v1 = Int64.bits_of_float v2)
       a.metadata b.metadata

let histories_identical a b =
  List.length (Bo.History.entries a) = List.length (Bo.History.entries b)
  && List.for_all2 entry_exactly_equal (Bo.History.entries a)
       (Bo.History.entries b)

(* An injected exception leaves the search completing, the victim tagged in
   the history, and the winner identical to a run where that candidate was
   merely infeasible (the failure contributes the same (x, 0, infeasible)
   observation to the surrogate either way). *)
let test_search_with_injected_raise () =
  let faulty =
    Supervisor.create ~faults:(Faultplan.of_string "raise@2") ()
  in
  let r = run_search ~supervisor:faulty ~seed:11 () in
  Alcotest.(check int) "search completed all 7 evaluations" 7
    (Bo.History.length r.Compiler.history);
  let victim = List.nth (Bo.History.entries r.Compiler.history) 2 in
  Alcotest.(check bool) "victim infeasible" false victim.Bo.History.feasible;
  Alcotest.(check (option (float 0.))) "victim tagged backend"
    (Some (Supervisor.class_code Supervisor.Backend))
    (List.assoc_opt Supervisor.failure_key victim.Bo.History.metadata);
  let control =
    Supervisor.create
      ~faults:(Faultplan.create [ Faultplan.Infeasible_on { index = 2; objective = 0.; pruned = false } ])
      ()
  in
  let c = run_search ~supervisor:control ~seed:11 () in
  Alcotest.(check bool) "winner matches merely-infeasible run" true
    (Bo.Config.equal r.Compiler.artifact.Evaluator.config
       c.Compiler.artifact.Evaluator.config);
  Alcotest.(check bool) "winner objective bit-equal" true
    (Int64.bits_of_float r.Compiler.artifact.Evaluator.objective
    = Int64.bits_of_float c.Compiler.artifact.Evaluator.objective)

let test_search_with_injected_timeout () =
  let faulty =
    Supervisor.create ~faults:(Faultplan.of_string "timeout@1") ()
  in
  let r = run_search ~supervisor:faulty ~seed:5 () in
  Alcotest.(check int) "search completed" 7 (Bo.History.length r.Compiler.history);
  let victim = List.nth (Bo.History.entries r.Compiler.history) 1 in
  Alcotest.(check (option (float 0.))) "victim tagged budget"
    (Some (Supervisor.class_code Supervisor.Budget))
    (List.assoc_opt Supervisor.failure_key victim.Bo.History.metadata);
  let control =
    Supervisor.create
      ~faults:(Faultplan.create [ Faultplan.Infeasible_on { index = 1; objective = 0.; pruned = false } ])
      ()
  in
  let c = run_search ~supervisor:control ~seed:5 () in
  Alcotest.(check bool) "winner matches merely-infeasible run" true
    (Bo.Config.equal r.Compiler.artifact.Evaluator.config
       c.Compiler.artifact.Evaluator.config)

(* NaN divergence on a real DNN training run: the loss fault aborts epoch 1,
   the entry lands infeasible + pruned with the divergence tag, and the
   search still finds the same winner as a run where that candidate was
   infeasible with the same partial observation. *)
let test_search_with_injected_nan_loss () =
  let faulty =
    Supervisor.create ~faults:(Faultplan.of_string "nan@2:1") ()
  in
  let r =
    run_search ~supervisor:faulty ~spec:(dnn_spec ())
      ~platform:(Platform.taurus ()) ~seed:3 ()
  in
  Alcotest.(check int) "search completed" 7 (Bo.History.length r.Compiler.history);
  let victim = List.nth (Bo.History.entries r.Compiler.history) 2 in
  Alcotest.(check bool) "victim infeasible" false victim.Bo.History.feasible;
  Alcotest.(check bool) "victim pruned (partial)" true victim.Bo.History.pruned;
  Alcotest.(check (option (float 0.))) "victim tagged divergence"
    (Some (Supervisor.class_code Supervisor.Divergence))
    (List.assoc_opt Supervisor.failure_key victim.Bo.History.metadata);
  let control =
    Supervisor.create
      ~faults:
        (Faultplan.create
           [
             Faultplan.Infeasible_on
               {
                 index = 2;
                 objective = victim.Bo.History.objective;
                 pruned = true;
               };
           ])
      ()
  in
  let c =
    run_search ~supervisor:control ~spec:(dnn_spec ())
      ~platform:(Platform.taurus ()) ~seed:3 ()
  in
  Alcotest.(check bool) "winner matches merely-infeasible run" true
    (Bo.Config.equal r.Compiler.artifact.Evaluator.config
       c.Compiler.artifact.Evaluator.config)

(* The headline guarantee: kill the search after EVERY possible journal
   record count, resume from the journal, and require the resumed history
   and winner to be bit-for-bit the uninterrupted run's — at one worker and
   at several (batch_size stays fixed; only scheduling changes). *)
let test_kill_and_resume_deterministic () =
  let total = 7 in
  let with_jobs jobs body =
    Par.set_default_jobs jobs;
    Fun.protect ~finally:(fun () -> Par.set_default_jobs (Par.recommended_jobs ())) body
  in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          let reference = run_search ~supervisor:(Supervisor.create ()) ~seed:11 () in
          for kill_at = 1 to total do
            let path = temp_journal () in
            (* First incarnation: journaled, crashes once the journal holds
               [kill_at] records. *)
            let j = Journal.open_ path in
            (match
               run_search
                 ~supervisor:
                   (Supervisor.create ~journal:j
                      ~faults:(Faultplan.create [ Faultplan.Kill_after { records = kill_at } ])
                      ())
                 ~seed:11 ()
             with
            | (_ : Compiler.model_result) ->
                Alcotest.failf "kill@%d: search survived its own crash" kill_at
            | exception Faultplan.Killed _ -> ());
            Journal.close j;
            (* Second incarnation: replay the journal, run to completion. *)
            let j2 = Journal.open_ path in
            let replay = Journal.load path in
            Alcotest.(check bool)
              (Printf.sprintf "kill@%d: journal has >= %d records" kill_at kill_at)
              true
              (Journal.loaded replay >= kill_at);
            let sup = Supervisor.create ~journal:j2 ~replay () in
            let resumed = run_search ~supervisor:sup ~seed:11 () in
            Journal.close j2;
            Alcotest.(check bool)
              (Printf.sprintf "kill@%d jobs=%d: history bit-identical" kill_at jobs)
              true
              (histories_identical reference.Compiler.history
                 resumed.Compiler.history);
            Alcotest.(check bool)
              (Printf.sprintf "kill@%d jobs=%d: same winner" kill_at jobs)
              true
              (Bo.Config.equal reference.Compiler.artifact.Evaluator.config
                 resumed.Compiler.artifact.Evaluator.config);
            Alcotest.(check bool)
              (Printf.sprintf "kill@%d jobs=%d: winner objective bit-equal"
                 kill_at jobs)
              true
              (Int64.bits_of_float reference.Compiler.artifact.Evaluator.objective
              = Int64.bits_of_float resumed.Compiler.artifact.Evaluator.objective);
            Sys.remove path
          done))
    [ 1; 4 ]

(* A journaled run with an injected hard failure must resume losslessly too:
   the failure record replays (no second round of retries) and the resumed
   history keeps the failure tag. *)
let test_resume_preserves_failure_records () =
  let path = temp_journal () in
  let j = Journal.open_ path in
  let first =
    run_search
      ~supervisor:
        (Supervisor.create ~journal:j ~faults:(Faultplan.of_string "raise@2") ())
      ~seed:11 ()
  in
  Journal.close j;
  let replay = Journal.load path in
  let sup = Supervisor.create ~replay () in
  let resumed = run_search ~supervisor:sup ~seed:11 () in
  Alcotest.(check int) "everything replayed" 7 (Supervisor.replayed_count sup);
  Alcotest.(check int) "no re-executed failures" 0 (Supervisor.failure_count sup);
  Alcotest.(check bool) "histories identical incl. failure tags" true
    (histories_identical first.Compiler.history resumed.Compiler.history);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "faultplan round trip" `Quick test_faultplan_roundtrip;
    Alcotest.test_case "faultplan queries" `Quick test_faultplan_queries;
    Alcotest.test_case "faultplan serving arms" `Quick
      test_faultplan_serving_arms;
    Alcotest.test_case "journal round trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal corruption tolerance" `Quick
      test_journal_corruption_tolerance;
    Alcotest.test_case "journal later record wins" `Quick
      test_journal_later_record_wins;
    Alcotest.test_case "journal kind round-trip" `Quick
      test_journal_kind_roundtrip;
    Alcotest.test_case "journal kind legacy lines" `Quick
      test_journal_kind_legacy_lines;
    Alcotest.test_case "supervisor transient retry" `Quick
      test_supervisor_transient_retry;
    Alcotest.test_case "supervisor hard failure tagged" `Quick
      test_supervisor_hard_failure_tagged;
    Alcotest.test_case "supervisor divergence partial metric" `Quick
      test_supervisor_divergence_partial_metric;
    Alcotest.test_case "supervisor real NaN loss" `Quick
      test_supervisor_real_nan_loss;
    Alcotest.test_case "supervisor timeout" `Quick test_supervisor_timeout;
    Alcotest.test_case "supervisor replay skips execution" `Quick
      test_supervisor_replay_skips_execution;
    Alcotest.test_case "search completes despite injected raise" `Quick
      test_search_with_injected_raise;
    Alcotest.test_case "search completes despite injected timeout" `Quick
      test_search_with_injected_timeout;
    Alcotest.test_case "search completes despite injected NaN loss" `Slow
      test_search_with_injected_nan_loss;
    Alcotest.test_case "kill-at-every-record resume is deterministic" `Slow
      test_kill_and_resume_deterministic;
    Alcotest.test_case "resume preserves failure records" `Quick
      test_resume_preserves_failure_records;
  ]
