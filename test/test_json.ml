open Homunculus_util
module Bo = Homunculus_bo

let roundtrip t = Json.of_string (Json.to_string t)

let test_print_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.Bool true));
  Alcotest.(check string) "int-like" "42" (Json.to_string (Json.Number 42.));
  Alcotest.(check string) "float" "0.5" (Json.to_string (Json.Number 0.5));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.String "hi"))

let test_print_compact_vs_pretty () =
  let doc = Json.Object [ ("a", Json.List [ Json.Number 1.; Json.Number 2. ]) ] in
  Alcotest.(check string) "compact" "{\"a\":[1,2]}" (Json.to_string ~pretty:false doc);
  Alcotest.(check bool) "pretty has newlines" true
    (String.contains (Json.to_string doc) '\n')

let test_escapes_roundtrip () =
  let s = Json.String "line\nwith \"quotes\" and \\ tab\t" in
  Alcotest.(check bool) "escaped roundtrip" true (Json.equal s (roundtrip s))

let test_parse_basics () =
  Alcotest.(check bool) "null" true (Json.of_string " null " = Json.Null);
  Alcotest.(check bool) "number" true (Json.of_string "-2.5e2" = Json.Number (-250.));
  Alcotest.(check bool) "list" true
    (Json.of_string "[1, 2, 3]"
    = Json.List [ Json.Number 1.; Json.Number 2.; Json.Number 3. ]);
  Alcotest.(check bool) "empty containers" true
    (Json.of_string "[]" = Json.List [] && Json.of_string "{}" = Json.Object [])

let test_parse_nested () =
  let doc = {| {"a": {"b": [true, false, null]}, "c": "x"} |} in
  let v = Json.of_string doc in
  Alcotest.(check bool) "nested member" true
    (Json.member (Json.member v "a") "b"
    = Json.List [ Json.Bool true; Json.Bool false; Json.Null ])

let test_parse_unicode_escape () =
  Alcotest.(check bool) "ascii escape" true
    (Json.of_string {| "A" |} = Json.String "A")

let test_non_finite_numbers () =
  Alcotest.(check string) "nan prints" "NaN" (Json.to_string (Json.Number Float.nan));
  Alcotest.(check string) "inf prints" "Infinity"
    (Json.to_string (Json.Number Float.infinity));
  Alcotest.(check string) "-inf prints" "-Infinity"
    (Json.to_string (Json.Number Float.neg_infinity));
  Alcotest.(check bool) "nan parses" true
    (match Json.of_string "NaN" with
    | Json.Number v -> Float.is_nan v
    | _ -> false);
  Alcotest.(check bool) "inf parses" true
    (Json.of_string "Infinity" = Json.Number Float.infinity);
  Alcotest.(check bool) "-inf parses" true
    (Json.of_string "-Infinity" = Json.Number Float.neg_infinity);
  (* Inside containers, where the journal and lib/check artifacts put them. *)
  let doc = Json.Object [ ("loss", Json.Number Float.nan);
                          ("lat", Json.Number Float.infinity) ] in
  Alcotest.(check bool) "object roundtrip" true (Json.equal doc (roundtrip doc));
  (* "-Infinity" must not break ordinary negative numbers. *)
  Alcotest.(check bool) "negative number still parses" true
    (Json.of_string "[-1, -2.5]" = Json.List [ Json.Number (-1.); Json.Number (-2.5) ])

let test_parse_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "trailing garbage" true (fails "1 2");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc");
  Alcotest.(check bool) "bad literal" true (fails "nul");
  Alcotest.(check bool) "unclosed list" true (fails "[1, 2");
  Alcotest.(check bool) "missing colon" true (fails "{\"a\" 1}")

let test_accessors () =
  let doc = Json.of_string {| {"n": 3, "x": 1.5, "b": true, "s": "v", "l": [1]} |} in
  Alcotest.(check int) "to_int" 3 (Json.to_int (Json.member doc "n"));
  Alcotest.(check (float 0.)) "to_float" 1.5 (Json.to_float (Json.member doc "x"));
  Alcotest.(check bool) "to_bool" true (Json.to_bool (Json.member doc "b"));
  Alcotest.(check string) "get_string" "v" (Json.get_string (Json.member doc "s"));
  Alcotest.(check int) "to_list" 1 (List.length (Json.to_list (Json.member doc "l")));
  Alcotest.(check bool) "member_opt" true (Json.member_opt doc "zz" = None);
  Alcotest.check_raises "to_int non-integral"
    (Invalid_argument "Json.to_int: not an integer") (fun () ->
      ignore (Json.to_int (Json.member doc "x")))

let test_equal_object_order () =
  let a = Json.of_string {| {"x": 1, "y": 2} |} in
  let b = Json.of_string {| {"y": 2, "x": 1} |} in
  Alcotest.(check bool) "order-insensitive" true (Json.equal a b)

let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun f -> Json.Number (Float.of_int f)) (int_range (-1000) 1000);
                map (fun s -> Json.String s) (string_size ~gen:printable (int_range 0 8));
              ]
          in
          if n <= 0 then scalar
          else
            frequency
              [
                (2, scalar);
                (1, map (fun xs -> Json.List xs) (list_size (int_range 0 4) (self (n / 2))));
                ( 1,
                  map
                    (fun kvs ->
                      let rec dedup seen = function
                        | [] -> []
                        | (k, v) :: rest ->
                            if List.mem k seen then dedup seen rest
                            else (k, v) :: dedup (k :: seen) rest
                      in
                      Json.Object (dedup [] kvs))
                    (list_size (int_range 0 4)
                       (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 5))
                          (self (n / 2)))) );
              ])
        n)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make json_gen)
    (fun doc -> Json.equal doc (roundtrip doc))

let prop_compact_roundtrip =
  QCheck.Test.make ~name:"compact print/parse roundtrip" ~count:300
    (QCheck.make json_gen)
    (fun doc -> Json.equal doc (Json.of_string (Json.to_string ~pretty:false doc)))

(* Any float — finite, subnormal, or non-finite — must survive a print/parse
   cycle exactly; this is what lets the search journal record diverged
   (NaN-loss) evaluations. *)
let float_gen =
  QCheck.Gen.oneof
    [
      QCheck.Gen.float;
      QCheck.Gen.oneofl
        [ Float.nan; Float.infinity; Float.neg_infinity; 0.; -0.;
          Float.min_float; Float.max_float; 1e-310 (* subnormal *) ];
    ]

let prop_number_roundtrip =
  QCheck.Test.make ~name:"number roundtrip incl. non-finite" ~count:500
    (QCheck.make float_gen) (fun v ->
      match roundtrip (Json.Number v) with
      | Json.Number back ->
          (* identical bits up to NaN payload: Float.equal is nan-reflexive *)
          Float.equal back v
      | _ -> false)

(* Serialize: HyperMapper schema *)

let space =
  Bo.Design_space.create
    [
      Bo.Param.int "n_layers" ~lo:1 ~hi:10;
      Bo.Param.real ~log_scale:true "learning_rate" ~lo:1e-4 ~hi:1e-1;
      Bo.Param.ordinal "batch_size" [| 16.; 32.; 64. |];
      Bo.Param.categorical "activation" [| "relu"; "tanh" |];
    ]

let test_scenario_shape () =
  let doc =
    Bo.Serialize.scenario_to_json ~application_name:"anomaly_detection"
      ~objectives:[ "f1" ] space
  in
  Alcotest.(check string) "app name" "anomaly_detection"
    (Json.get_string (Json.member doc "application_name"));
  let params = Json.member doc "input_parameters" in
  let lr = Json.member params "learning_rate" in
  Alcotest.(check string) "log transform" "log"
    (Json.get_string (Json.member lr "transform"));
  Alcotest.(check string) "rf surrogate" "random_forest"
    (Json.get_string (Json.member (Json.member doc "models") "model"))

let test_space_roundtrip () =
  let doc = Bo.Serialize.design_space_to_json space in
  let back = Bo.Serialize.design_space_of_json doc in
  Alcotest.(check int) "same dim" (Bo.Design_space.dim space) (Bo.Design_space.dim back);
  (* Sampling from the parsed space produces configs valid in the original. *)
  let rng = Homunculus_util.Rng.create 1 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "interchangeable" true
      (Bo.Design_space.validate space (Bo.Design_space.sample rng back))
  done

let test_space_roundtrip_through_text () =
  let text = Json.to_string (Bo.Serialize.design_space_to_json space) in
  let back = Bo.Serialize.design_space_of_json (Json.of_string text) in
  Alcotest.(check bool) "textual roundtrip" true
    (Json.equal
       (Bo.Serialize.design_space_to_json space)
       (Bo.Serialize.design_space_to_json back))

let test_config_roundtrip () =
  let rng = Homunculus_util.Rng.create 2 in
  for _ = 1 to 50 do
    let c = Bo.Design_space.sample rng space in
    let back = Bo.Serialize.config_of_json space (Bo.Serialize.config_to_json space c) in
    Alcotest.(check bool) "config equal" true (Bo.Config.equal c back)
  done

let test_config_of_json_validates () =
  let doc = Json.of_string {| {"n_layers": 99, "learning_rate": 0.01,
                               "batch_size": 32, "activation": "relu"} |} in
  Alcotest.check_raises "out of domain"
    (Invalid_argument "Serialize: configuration outside the design space")
    (fun () -> ignore (Bo.Serialize.config_of_json space doc))

let test_history_roundtrip () =
  let rng = Homunculus_util.Rng.create 3 in
  let h = Bo.History.create () in
  for i = 1 to 10 do
    Bo.History.add h
      ~config:(Bo.Design_space.sample rng space)
      ~objective:(0.1 *. float_of_int i)
      ~feasible:(i mod 2 = 0) ()
  done;
  let back = Bo.Serialize.history_of_json space (Bo.Serialize.history_to_json space h) in
  Alcotest.(check int) "length" 10 (Bo.History.length back);
  Alcotest.(check (array (float 1e-9))) "same regret curve"
    (Bo.History.best_so_far h) (Bo.History.best_so_far back)

let suite =
  [
    Alcotest.test_case "print scalars" `Quick test_print_scalars;
    Alcotest.test_case "compact vs pretty" `Quick test_print_compact_vs_pretty;
    Alcotest.test_case "escapes roundtrip" `Quick test_escapes_roundtrip;
    Alcotest.test_case "parse basics" `Quick test_parse_basics;
    Alcotest.test_case "parse nested" `Quick test_parse_nested;
    Alcotest.test_case "parse unicode" `Quick test_parse_unicode_escape;
    Alcotest.test_case "non-finite numbers" `Quick test_non_finite_numbers;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "object equality" `Quick test_equal_object_order;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_compact_roundtrip;
    QCheck_alcotest.to_alcotest prop_number_roundtrip;
    Alcotest.test_case "scenario shape" `Quick test_scenario_shape;
    Alcotest.test_case "space roundtrip" `Quick test_space_roundtrip;
    Alcotest.test_case "space textual roundtrip" `Quick test_space_roundtrip_through_text;
    Alcotest.test_case "config roundtrip" `Quick test_config_roundtrip;
    Alcotest.test_case "config validation" `Quick test_config_of_json_validates;
    Alcotest.test_case "history roundtrip" `Quick test_history_roundtrip;
  ]
