(* qcheck properties over the BO core: random design spaces sample
   in-bounds, the HyperMapper JSON schema round-trips, and History's
   duplicate check agrees with a linear scan. Spaces are derived from an
   integer seed through Rng, so qcheck shrinks over seeds and every failure
   reproduces from one integer. *)
module Bo = Homunculus_bo
module Rng = Homunculus_util.Rng

let random_param rng i =
  let name = Printf.sprintf "p%d" i in
  match Rng.int rng 4 with
  | 0 ->
      let lo = Rng.uniform rng (-10.) 10. in
      Bo.Param.real name ~lo ~hi:(lo +. 0.1 +. Rng.float rng 20.)
  | 1 ->
      let lo = Rng.int rng 100 - 50 in
      Bo.Param.int name ~lo ~hi:(lo + 1 + Rng.int rng 40)
  | 2 ->
      let n = 3 + Rng.int rng 4 in
      let start = Rng.uniform rng (-5.) 5. in
      Bo.Param.ordinal name
        (Array.init n (fun k ->
             start +. float_of_int k +. (0.5 *. Rng.float rng 1.)))
  | _ ->
      let n = 2 + Rng.int rng 4 in
      Bo.Param.categorical name (Array.init n (Printf.sprintf "cat%d"))

let random_space seed =
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 6 in
  (Bo.Design_space.create (List.init n (random_param rng)), rng)

let seed_gen = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let prop_sample_in_bounds =
  QCheck.Test.make ~name:"random configs validate and encode into [0,1]"
    ~count:300 seed_gen (fun seed ->
      let space, rng = random_space seed in
      let config = Bo.Design_space.sample rng space in
      Bo.Design_space.validate space config
      && Array.for_all
           (fun v -> Float.is_finite v && v >= 0.)
           (Bo.Design_space.encode space config))

let prop_neighbor_stays_in_domain =
  QCheck.Test.make ~name:"neighbors of valid configs stay valid" ~count:300
    seed_gen (fun seed ->
      let space, rng = random_space seed in
      let config = ref (Bo.Design_space.sample rng space) in
      let ok = ref true in
      for _ = 1 to 10 do
        config := Bo.Design_space.neighbor rng space !config;
        if not (Bo.Design_space.validate space !config) then ok := false
      done;
      !ok)

let params_equal a b =
  List.length a = List.length b && List.for_all2 (fun x y -> x = y) a b

let prop_space_json_roundtrip =
  QCheck.Test.make ~name:"design space survives the HyperMapper schema"
    ~count:300 seed_gen (fun seed ->
      let space, _ = random_space seed in
      let space' =
        Bo.Serialize.design_space_of_json
          (Bo.Serialize.design_space_to_json space)
      in
      params_equal
        (Bo.Design_space.params space)
        (Bo.Design_space.params space'))

let prop_config_json_roundtrip =
  QCheck.Test.make ~name:"configs survive the HyperMapper schema" ~count:300
    seed_gen (fun seed ->
      let space, rng = random_space seed in
      let config = Bo.Design_space.sample rng space in
      let config' =
        Bo.Serialize.config_of_json space (Bo.Serialize.config_to_json space config)
      in
      Bo.Config.equal config config')

let prop_history_json_roundtrip =
  QCheck.Test.make ~name:"history log survives the HyperMapper schema"
    ~count:150 seed_gen (fun seed ->
      let space, rng = random_space seed in
      let history = Bo.History.create () in
      for i = 1 to 1 + Rng.int rng 10 do
        Bo.History.add history
          ~config:(Bo.Design_space.sample rng space)
          ~objective:(float_of_int i /. 8.)
          ~feasible:(Rng.bool rng) ()
      done;
      let history' =
        Bo.Serialize.history_of_json space
          (Bo.Serialize.history_to_json space history)
      in
      List.for_all2
        (fun (a : Bo.History.entry) (b : Bo.History.entry) ->
          a.Bo.History.iteration = b.Bo.History.iteration
          && a.Bo.History.feasible = b.Bo.History.feasible
          && Float.abs (a.Bo.History.objective -. b.Bo.History.objective) < 1e-9
          && Bo.Config.equal a.Bo.History.config b.Bo.History.config)
        (Bo.History.entries history)
        (Bo.History.entries history'))

let prop_mem_config_is_linear_scan =
  QCheck.Test.make ~name:"History.mem_config agrees with a linear scan"
    ~count:300 seed_gen (fun seed ->
      let space, rng = random_space seed in
      let history = Bo.History.create () in
      let added =
        List.init
          (1 + Rng.int rng 12)
          (fun i ->
            let c = Bo.Design_space.sample rng space in
            Bo.History.add history ~config:c ~objective:(float_of_int i)
              ~feasible:true ();
            c)
      in
      let probes =
        added @ List.init 8 (fun _ -> Bo.Design_space.sample rng space)
      in
      List.for_all
        (fun probe ->
          let scan =
            List.exists
              (fun (e : Bo.History.entry) ->
                Bo.Config.equal e.Bo.History.config probe)
              (Bo.History.entries history)
          in
          Bo.History.mem_config history probe = scan)
        probes)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sample_in_bounds;
      prop_neighbor_stays_in_domain;
      prop_space_json_roundtrip;
      prop_config_json_roundtrip;
      prop_history_json_roundtrip;
      prop_mem_config_is_linear_scan;
    ]
