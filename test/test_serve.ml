(* The online serving runtime: stream adaptation, the engine's queueing and
   hot-swap semantics, drift detection, the updater's reservoir, and the
   deterministic drift-recovery scenario of the serving story. *)

open Homunculus_netdata
open Homunculus_serve
module Rng = Homunculus_util.Rng
module Json = Homunculus_util.Json
module Model_ir = Homunculus_backends.Model_ir

let feq = Alcotest.(check (float 1e-9))

(* Stream *)

let small_mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 120 }

let test_stream_ordering_and_determinism () =
  let make () =
    Stream.events (Rng.create 3)
      (Flowsim.generate (Rng.create 4) ~mix:(small_mix 40) ())
  in
  let a = make () and b = make () in
  Alcotest.(check bool) "non-empty" true (Array.length a > 500);
  Alcotest.(check bool) "deterministic" true (a = b);
  let sorted = ref true and last = ref neg_infinity in
  Array.iter
    (fun e ->
      if e.Stream.ts < !last then sorted := false;
      last := e.Stream.ts)
    a;
  Alcotest.(check bool) "ascending" true !sorted;
  Array.iter
    (fun e ->
      Alcotest.(check int) "feature count" 30 (Array.length e.Stream.features);
      Alcotest.(check bool) "min_packets" true
        (e.Stream.packet_index >= Stream.default_config.Stream.min_packets))
    a

let test_stream_matches_flowmarker () =
  (* One flow alone in the table: the event at packet k must carry exactly
     the partial flowmarker of the first k packets. *)
  let flow = Flowsim.generate_flow (Rng.create 7) ~id:0 ~app:"storm" () in
  let events = Stream.events_scheduled [| (0., flow) |] in
  Array.iter
    (fun e ->
      let expected =
        Botnet.flow_features Botnet.Fused flow
          ~first_packets:e.Stream.packet_index ()
      in
      Alcotest.(check (array (float 1e-9)))
        (Printf.sprintf "packet %d" e.Stream.packet_index)
        expected e.Stream.features)
    events

let test_shift_botnet () =
  let flows = Flowsim.generate (Rng.create 5) ~mix:(small_mix 30) () in
  let shifted = Stream.shift_botnet flows in
  Array.iteri
    (fun i f ->
      let s = shifted.(i) in
      Alcotest.(check int) "id kept" f.Flow.id s.Flow.id;
      Alcotest.(check bool) "label kept" true (f.Flow.label = s.Flow.label);
      Alcotest.(check int) "packet count kept" (Flow.n_packets f) (Flow.n_packets s);
      match f.Flow.label with
      | Flow.Benign -> Alcotest.(check bool) "benign untouched" true (f == s)
      | Flow.Botnet ->
          Alcotest.(check bool) "sizes grow" true
            (Flow.mean_packet_size s > Flow.mean_packet_size f);
          Alcotest.(check bool) "gaps shrink" true
            (Flow.duration s < Flow.duration f +. 1e-9))
    flows

let test_renumber () =
  let flows = Flowsim.generate (Rng.create 6) ~mix:(small_mix 10) () in
  let renumbered = Stream.renumber ~from:100 flows in
  Array.iteri
    (fun i f -> Alcotest.(check int) "fresh id" (100 + i) f.Flow.id)
    renumbered

(* Monitor *)

let observe_n monitor ~ts0 ~n ~pred ~truth =
  for i = 0 to n - 1 do
    Monitor.observe monitor
      ~ts:(ts0 +. float_of_int i)
      ~queue_depth:i ~features:[| 0. |] ~pred ~truth
  done

let test_monitor_window_metrics () =
  let config =
    { Monitor.default_config with Monitor.window_events = 4; label_delay_s = 10. }
  in
  let monitor = Monitor.create ~config ~n_classes:2 () in
  (* Two correct botnet, one correct benign, one false negative. *)
  Monitor.observe monitor ~ts:0. ~queue_depth:2 ~features:[||] ~pred:1 ~truth:1;
  Monitor.observe monitor ~ts:1. ~queue_depth:4 ~features:[||] ~pred:1 ~truth:1;
  Monitor.observe monitor ~ts:2. ~queue_depth:0 ~features:[||] ~pred:0 ~truth:0;
  Monitor.observe monitor ~ts:3. ~queue_depth:2 ~features:[||] ~pred:0 ~truth:1;
  Alcotest.(check int) "labels delayed" 0
    (List.length (Monitor.advance monitor ~now:5.));
  let labeled = Monitor.advance monitor ~now:13. in
  Alcotest.(check int) "all labels arrived" 4 (List.length labeled);
  match Monitor.windows monitor with
  | [ w ] ->
      Alcotest.(check int) "events" 4 w.Monitor.events;
      feq "accuracy" 0.75 w.Monitor.accuracy;
      (* tp 2, fp 0, fn 1 -> F1 = 4/5 *)
      feq "f1" 0.8 w.Monitor.f1;
      Alcotest.(check int) "confusion tp" 2 w.Monitor.confusion.(1).(1);
      Alcotest.(check int) "confusion fn" 1 w.Monitor.confusion.(1).(0);
      feq "mean queue" 2. w.Monitor.mean_queue_depth;
      Alcotest.(check int) "max queue" 4 w.Monitor.max_queue_depth;
      feq "t_start is label arrival" 10. w.Monitor.t_start;
      feq "t_end is label arrival" 13. w.Monitor.t_end
  | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws)

let test_monitor_page_hinkley_fires_and_latches () =
  let config =
    {
      Monitor.default_config with
      Monitor.window_events = 50;
      label_delay_s = 0.;
      baseline_windows = 2;
      ph_lambda = 10.;
    }
  in
  let monitor = Monitor.create ~config ~n_classes:2 () in
  (* Clean baseline: two windows of correct verdicts. *)
  observe_n monitor ~ts0:0. ~n:100 ~pred:1 ~truth:1;
  ignore (Monitor.advance monitor ~now:200.);
  Alcotest.(check bool) "baseline set" true
    (Monitor.baseline_accuracy monitor <> None);
  Alcotest.(check bool) "no alarm yet" true (Monitor.poll_drift monitor = None);
  (* Sustained errors: Page–Hinkley must fire before the window closes. *)
  observe_n monitor ~ts0:200. ~n:30 ~pred:0 ~truth:1;
  ignore (Monitor.advance monitor ~now:400.);
  (match Monitor.poll_drift monitor with
  | Some d -> Alcotest.(check string) "reason" "page_hinkley" d.Monitor.reason
  | None -> Alcotest.fail "expected a drift alarm");
  Alcotest.(check bool) "poll clears" true (Monitor.poll_drift monitor = None);
  (* Latched: more errors do not re-fire until rearm. *)
  observe_n monitor ~ts0:400. ~n:50 ~pred:0 ~truth:1;
  ignore (Monitor.advance monitor ~now:600.);
  Alcotest.(check bool) "latched" true (Monitor.poll_drift monitor = None);
  Monitor.rearm monitor;
  observe_n monitor ~ts0:600. ~n:30 ~pred:0 ~truth:1;
  ignore (Monitor.advance monitor ~now:800.);
  Alcotest.(check bool) "re-armed detector fires again" true
    (Monitor.poll_drift monitor <> None);
  Alcotest.(check int) "both alarms logged" 2
    (List.length (Monitor.drifts monitor))

let test_monitor_accuracy_drop () =
  let config =
    {
      Monitor.default_config with
      Monitor.window_events = 20;
      label_delay_s = 0.;
      baseline_windows = 1;
      acc_drop = 0.3;
      ph_lambda = 1e9;  (* silence Page–Hinkley: isolate the window detector *)
    }
  in
  let monitor = Monitor.create ~config ~n_classes:2 () in
  observe_n monitor ~ts0:0. ~n:20 ~pred:1 ~truth:1;
  observe_n monitor ~ts0:20. ~n:20 ~pred:0 ~truth:1;
  ignore (Monitor.advance monitor ~now:100.);
  match Monitor.poll_drift monitor with
  | Some d -> Alcotest.(check string) "reason" "accuracy_drop" d.Monitor.reason
  | None -> Alcotest.fail "expected an accuracy-drop alarm"

let test_monitor_forced_drift () =
  let config =
    { Monitor.default_config with Monitor.window_events = 10; label_delay_s = 0. }
  in
  let monitor = Monitor.create ~config ~n_classes:2 () in
  Monitor.force_drift_at monitor ~window:1;
  (match Monitor.force_drift_at monitor ~window:(-1) with
  | () -> Alcotest.fail "negative window must raise"
  | exception Invalid_argument _ -> ());
  (* Window 0 closes clean: the forced alarm waits for its window. *)
  observe_n monitor ~ts0:0. ~n:10 ~pred:1 ~truth:1;
  ignore (Monitor.advance monitor ~now:100.);
  Alcotest.(check bool) "no alarm before its window" true
    (Monitor.poll_drift monitor = None);
  observe_n monitor ~ts0:100. ~n:10 ~pred:1 ~truth:1;
  ignore (Monitor.advance monitor ~now:200.);
  (match Monitor.poll_drift monitor with
  | Some d ->
      Alcotest.(check string) "forced reason" "injected" d.Monitor.reason;
      Alcotest.(check int) "forced window" 1 d.Monitor.window
  | None -> Alcotest.fail "forced alarm must fire");
  (* No baseline needed, and no re-fire: the registration is consumed. *)
  Monitor.rearm monitor;
  observe_n monitor ~ts0:200. ~n:10 ~pred:1 ~truth:1;
  ignore (Monitor.advance monitor ~now:300.);
  Alcotest.(check bool) "fires once" true (Monitor.poll_drift monitor = None)

let test_monitor_cooldown_hysteresis () =
  let config =
    {
      Monitor.default_config with
      Monitor.window_events = 10;
      label_delay_s = 0.;
      cooldown_windows = 2;
    }
  in
  let monitor = Monitor.create ~config ~n_classes:2 () in
  List.iter (fun window -> Monitor.force_drift_at monitor ~window) [ 0; 1; 2 ];
  let next_window ts0 =
    observe_n monitor ~ts0 ~n:10 ~pred:1 ~truth:1;
    ignore (Monitor.advance monitor ~now:(ts0 +. 100.))
  in
  next_window 0.;
  (match Monitor.poll_drift monitor with
  | Some d -> Alcotest.(check int) "window 0 fires" 0 d.Monitor.window
  | None -> Alcotest.fail "expected the window-0 alarm");
  Monitor.rearm monitor;
  (* Consuming the window-0 alarm starts the 2-window cooldown: the forced
     fire at window 1 is swallowed entirely, not deferred. *)
  next_window 100.;
  Alcotest.(check bool) "window 1 swallowed by cooldown" true
    (Monitor.poll_drift monitor = None);
  next_window 200.;
  (match Monitor.poll_drift monitor with
  | Some d -> Alcotest.(check int) "window 2 fires after cooldown" 2 d.Monitor.window
  | None -> Alcotest.fail "expected the window-2 alarm");
  Alcotest.(check int) "swallowed fire never logged" 2
    (List.length (Monitor.drifts monitor));
  (match Monitor.create ~config:{ config with Monitor.cooldown_windows = -1 }
           ~n_classes:2 ()
   with
  | (_ : Monitor.t) -> Alcotest.fail "negative cooldown must raise"
  | exception Invalid_argument _ -> ())

(* Updater *)

let test_updater_reservoir_bounded () =
  let config = { Updater.default_config with Updater.capacity = 50 } in
  let u = Updater.create (Rng.create 1) ~config ~n_features:3 ~n_classes:2 () in
  for i = 0 to 199 do
    Updater.record u ~features:[| float_of_int i; 0.; 0. |] ~label:(i mod 2)
  done;
  Alcotest.(check int) "size capped" 50 (Updater.size u);
  Alcotest.(check int) "seen counts all" 200 (Updater.seen u);
  Alcotest.(check int) "calibration bounded" 10
    (Array.length (Updater.calibration_sample u ~n:10))

let test_updater_declines_small_buffer () =
  let u = Updater.create (Rng.create 1) ~n_features:3 ~n_classes:2 () in
  Updater.record u ~features:[| 1.; 2.; 3. |] ~label:1;
  let incumbent =
    Model_ir.Svm { name = "m"; class_weights = [| [| 1.; 0.; 0. |]; [| 0.; 1.; 0. |] |]; biases = [| 0.; 0. |] }
  in
  Alcotest.(check bool) "declined" true
    (Updater.try_update u ~incumbent ~ts:1. ~reason:"test" = None);
  match Updater.decisions u with
  | [ d ] ->
      Alcotest.(check bool) "not accepted" false d.Updater.accepted;
      Alcotest.(check string) "note" "buffer below min_buffer" d.Updater.note
  | ds -> Alcotest.failf "expected 1 decision, got %d" (List.length ds)

(* Engine *)

let test_engine_queue_overflow_drops () =
  let flows = Flowsim.generate (Rng.create 8) ~mix:(small_mix 30) () in
  let events = Stream.events (Rng.create 9) ~start_window_s:100. flows in
  let model =
    Updater.bootstrap (Rng.create 10) ~algorithm:`Tree ~bins:Botnet.Fused
      ~name:"bd" (Flowsim.generate (Rng.create 11) ~mix:(small_mix 30) ())
  in
  let config =
    {
      Engine.default_config with
      Engine.queue_capacity = 8;
      service_rate_pps = 5.;  (* far below the offered packet rate *)
    }
  in
  let monitor = Monitor.create ~n_classes:2 () in
  let engine = Engine.create ~config ~model ~monitor () in
  let s = Engine.run engine events in
  Alcotest.(check int) "offered all" (Array.length events) s.Engine.offered;
  Alcotest.(check bool) "queue overflow drops" true (s.Engine.dropped > 0);
  Alcotest.(check int) "conservation" s.Engine.offered
    (s.Engine.served + s.Engine.dropped);
  (* Everything admitted is eventually classified and labeled. *)
  let window_events =
    List.fold_left (fun acc w -> acc + w.Monitor.events) 0 s.Engine.windows
  in
  Alcotest.(check int) "all served events labeled" s.Engine.served window_events

let test_engine_quantized_agrees_with_reference () =
  let train = Flowsim.generate (Rng.create 12) ~mix:(small_mix 40) () in
  let flows = Flowsim.generate (Rng.create 13) ~mix:(small_mix 25) () in
  let events = Stream.events (Rng.create 14) flows in
  let model =
    Updater.bootstrap (Rng.create 15) ~algorithm:`Svm ~bins:Botnet.Fused
      ~name:"bd" train
  in
  let run mode =
    let monitor = Monitor.create ~n_classes:2 () in
    let engine =
      Engine.create
        ~config:{ Engine.default_config with Engine.mode }
        ~model ~monitor ()
    in
    Engine.run engine events
  in
  let ref_run = run Engine.Reference and quant_run = run Engine.Quantized in
  Alcotest.(check int) "same served" ref_run.Engine.served quant_run.Engine.served;
  let acc s =
    let n = List.fold_left (fun a w -> a + w.Monitor.events) 0 s.Engine.windows in
    let c =
      List.fold_left
        (fun a w ->
          a + w.Monitor.confusion.(0).(0) + w.Monitor.confusion.(1).(1))
        0 s.Engine.windows
    in
    float_of_int c /. float_of_int n
  in
  (* Partial flowmarkers are normalized histograms (all features in [0, 1]),
     comfortably inside the 8.8 key range, so the MAT runtime should track
     the floating-point reference closely. *)
  Alcotest.(check bool) "quantized close to reference" true
    (Float.abs (acc ref_run -. acc quant_run) < 0.05)

(* The deployment story end to end: traffic shifts mid-stream, the frozen
   pipeline stays degraded, the adaptive one detects, retrains, hot-swaps
   exactly once without dropping a queued packet, and recovers. *)

let scenario_mix n = { Flowsim.n_flows = n; botnet_frac = 0.5; max_packets = 200 }

let drift_scenario () =
  let rng = Rng.create 2040 in
  let train_flows = Flowsim.generate rng ~mix:(scenario_mix 120) () in
  let model =
    Updater.bootstrap (Rng.split rng) ~bins:Botnet.Fused ~name:"bd" train_flows
  in
  let phase_a = Flowsim.generate rng ~mix:(scenario_mix 100) () in
  let phase_b =
    Stream.renumber ~from:100
      (Stream.shift_botnet (Flowsim.generate rng ~mix:(scenario_mix 100) ()))
  in
  let sched_a = Array.map (fun f -> (Rng.float rng 600., f)) phase_a in
  let sched_b = Array.map (fun f -> (600. +. Rng.float rng 600., f)) phase_b in
  let events = Stream.events_scheduled (Array.append sched_a sched_b) in
  (model, events)

let run_scenario ~model ~events ~with_updater =
  let monitor = Monitor.create ~n_classes:2 () in
  let updater =
    if with_updater then
      Some
        (Updater.create (Rng.create 77)
           ~config:
             {
               Updater.default_config with
               Updater.min_gain = 0.05;
               max_swaps = 1;
             }
           ~n_features:30 ~n_classes:2 ())
    else None
  in
  let engine = Engine.create ~model ~monitor ?updater () in
  Engine.run engine events

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let pre_drift_f1 windows =
  List.filter (fun w -> w.Monitor.t_end < 600.) windows
  |> List.map (fun w -> w.Monitor.f1)
  |> mean

let f1_after windows ~t =
  List.filter (fun w -> w.Monitor.t_start > t) windows
  |> List.map (fun w -> w.Monitor.f1)
  |> mean

let test_drift_recovery () =
  let model, events = drift_scenario () in
  (* Frozen: no updater, the shift permanently degrades windowed F1. *)
  let frozen = run_scenario ~model ~events ~with_updater:false in
  let pre = pre_drift_f1 frozen.Engine.windows in
  Alcotest.(check bool)
    (Printf.sprintf "healthy before the shift (pre %.3f)" pre)
    true (pre > 0.85);
  let degraded = f1_after frozen.Engine.windows ~t:700. in
  Alcotest.(check bool) "frozen model stays degraded" true
    (degraded < pre -. 0.15);
  Alcotest.(check int) "frozen model never swaps" 0
    (List.length frozen.Engine.swaps);
  (* Adaptive: drift fires, one validated hot-swap, queued packets survive,
     windowed F1 recovers to within 5 points of the pre-drift level. *)
  let adaptive = run_scenario ~model ~events ~with_updater:true in
  Alcotest.(check bool) "drift detected" true
    (List.length adaptive.Engine.drift_events >= 1);
  (match adaptive.Engine.drift_events with
  | d :: _ ->
      Alcotest.(check bool) "detected after the shift" true
        (d.Monitor.ts > 600.)
  | [] -> ());
  (match adaptive.Engine.swaps with
  | [ s ] ->
      Alcotest.(check int) "no drops during the swap" 0
        s.Engine.dropped_during_swap;
      Alcotest.(check bool) "validated improvement" true
        (s.Engine.challenger_f1 >= s.Engine.incumbent_f1 +. 0.05)
  | swaps -> Alcotest.failf "expected exactly 1 hot-swap, got %d" (List.length swaps));
  Alcotest.(check int) "hot-swap causes no extra drops" frozen.Engine.dropped
    adaptive.Engine.dropped;
  let swap_ts = (List.hd adaptive.Engine.swaps).Engine.swap_ts in
  let recovered = f1_after adaptive.Engine.windows ~t:swap_ts in
  Alcotest.(check bool)
    (Printf.sprintf "recovers (pre %.3f, post-swap %.3f)" pre recovered)
    true
    (recovered >= pre -. 0.05);
  (* Same inputs, same seeds: the whole scenario is reproducible. *)
  let again = run_scenario ~model ~events ~with_updater:true in
  Alcotest.(check int) "deterministic swap count"
    (List.length adaptive.Engine.swaps)
    (List.length again.Engine.swaps);
  Alcotest.(check bool) "deterministic windows" true
    (List.map (fun w -> w.Monitor.f1) again.Engine.windows
    = List.map (fun w -> w.Monitor.f1) adaptive.Engine.windows)

(* Report *)

let test_report_jsonl_round_trips () =
  let model, events = drift_scenario () in
  let events = Array.sub events 0 (Stdlib.min 4000 (Array.length events)) in
  let summary = run_scenario ~model ~events ~with_updater:false in
  let jsonl = Report.to_jsonl summary in
  let lines =
    String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "has records" true (List.length lines > 3);
  List.iter
    (fun line ->
      let j = Json.of_string line in
      match Json.member j "event" with
      | Json.String ("window" | "drift" | "swap" | "decision") -> ()
      | _ -> Alcotest.failf "unexpected record %s" line)
    lines;
  let s = Report.summary_to_json summary in
  Alcotest.(check int) "summary served" summary.Engine.served
    (Json.to_int (Json.member s "served"));
  Alcotest.(check int) "summary windows" (List.length summary.Engine.windows)
    (List.length (Json.to_list (Json.member s "windows")))

(* Allocation discipline of the quantized hot path. *)

module Runtime = Homunculus_backends.Runtime

let botnet_svm_runtime ~seed =
  let train = Flowsim.generate (Rng.create seed) ~mix:(small_mix 40) () in
  let model =
    Updater.bootstrap (Rng.create (seed + 1)) ~algorithm:`Svm
      ~bins:Botnet.Fused ~name:"bd" train
  in
  let events =
    Stream.events (Rng.create (seed + 2))
      (Flowsim.generate (Rng.create (seed + 3)) ~mix:(small_mix 20) ())
  in
  let calibration =
    Array.map (fun e -> e.Stream.features) (Array.sub events 0 200)
  in
  (Runtime.load ~calibration model, events)

let test_classify_into_allocates_nothing () =
  let rt, events = botnet_svm_runtime ~seed:30 in
  let ws = Runtime.make_workspace rt in
  let batch = 32 in
  let src = Array.init batch (fun i -> events.(i).Stream.features) in
  let dst = Array.make batch 0 in
  (* Warm-up drains any one-time lazy work, then 200 steady-state batches
     must stay inside the preallocated workspace: the only tolerated minor
     words are the boxed floats the two Gc.minor_words probes return. *)
  Runtime.classify_into rt ws ~src ~n:batch ~dst;
  let before = Gc.minor_words () in
  for _ = 1 to 200 do
    Runtime.classify_into rt ws ~src ~n:batch ~dst
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "200 batches allocate ~0 minor words (got %.0f)" delta)
    true (delta <= 256.)

let test_engine_drain_allocation_bounded () =
  (* Engine-level steady state: minor words per drained batch are bounded
     by a constant (monitor bookkeeping), independent of how many batches
     have already been served — no per-batch growth, no fresh buffers. *)
  let _, events = botnet_svm_runtime ~seed:34 in
  let model =
    Updater.bootstrap (Rng.create 35) ~algorithm:`Svm ~bins:Botnet.Fused
      ~name:"bd"
      (Flowsim.generate (Rng.create 36) ~mix:(small_mix 40) ())
  in
  let run n_events =
    let monitor = Monitor.create ~n_classes:2 () in
    let engine =
      Engine.create
        ~config:{ Engine.default_config with Engine.mode = Engine.Quantized }
        ~model ~monitor ()
    in
    let events =
      Array.sub events 0 (Stdlib.min n_events (Array.length events))
    in
    let before = Gc.minor_words () in
    let s = Engine.run engine events in
    let words = Gc.minor_words () -. before in
    let batches =
      float_of_int s.Engine.served
      /. float_of_int Engine.default_config.Engine.batch_size
    in
    words /. Stdlib.max 1. batches
  in
  ignore (run 256) (* warm-up *);
  let per_batch = run 3200 in
  Alcotest.(check bool)
    (Printf.sprintf "minor words per drained batch bounded (got %.0f)"
       per_batch)
    true
    (per_batch < 20_000.)

(* Conservation under random queue/batch/service configurations: every
   offered packet is either served or dropped, never both, never lost. *)

let conservation_model =
  Model_ir.Svm
    {
      name = "cons";
      class_weights = [| [| 1.; -1. |]; [| -1.; 1. |] |];
      biases = [| 0.; 0. |];
    }

let prop_queue_conservation =
  let seed_gen =
    QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000)
  in
  QCheck.Test.make ~name:"offered = served + dropped over random configs"
    ~count:30 seed_gen (fun seed ->
      let rng = Rng.create seed in
      let n = 100 + Rng.int rng 900 in
      let xs =
        Array.init n (fun _ -> [| Rng.uniform rng (-2.) 2.; Rng.float rng 1. |])
      in
      let ts = Array.make n 0. in
      let t = ref 0. in
      for i = 0 to n - 1 do
        t := !t +. Rng.float rng 0.02;
        ts.(i) <- !t
      done;
      let events = Stream.of_samples ~ts xs in
      let config =
        {
          Engine.default_config with
          Engine.queue_capacity = 1 + Rng.int rng 64;
          batch_size = 1 + Rng.int rng 16;
          service_rate_pps = 1. +. Rng.float rng 400.;
          mode = (if Rng.int rng 2 = 0 then Engine.Reference else Engine.Quantized);
          trace_capacity = (if Rng.int rng 2 = 0 then 0 else n);
        }
      in
      let monitor = Monitor.create ~n_classes:2 () in
      let engine = Engine.create ~config ~model:conservation_model ~monitor () in
      let s = Engine.run engine events in
      s.Engine.offered = n
      && s.Engine.offered = s.Engine.served + s.Engine.dropped
      && (Engine.trace engine).Engine.n
         = Stdlib.min config.Engine.trace_capacity s.Engine.served)

(* Nearest-rank percentiles: pinned on the 1..1000 vector, where linear
   interpolation (Stats.percentile) would give 999.001 at p999 — the
   nearest-rank definition must return an actual sample. *)

let test_percentile_nearest_rank () =
  let rng = Rng.create 99 in
  let xs = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  (* Shuffle: percentile must sort internally. *)
  for i = 999 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = xs.(i) in
    xs.(i) <- xs.(j);
    xs.(j) <- tmp
  done;
  feq "p50" 500. (Report.percentile 50. xs);
  feq "p99" 990. (Report.percentile 99. xs);
  feq "p999 is the 999th sample, not interpolated" 999.
    (Report.percentile 99.9 xs);
  feq "p100" 1000. (Report.percentile 100. xs);
  feq "p0.1 is the smallest sample" 1. (Report.percentile 0.1 xs);
  feq "singleton" 7. (Report.percentile 99.9 [| 7. |]);
  let raises f =
    match f () with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty raises" true
    (raises (fun () -> Report.percentile 50. [||]));
  Alcotest.(check bool) "p > 100 raises" true
    (raises (fun () -> Report.percentile 101. xs))

(* A challenger whose holdout F1 comes back NaN (degenerate holdout) must
   never be promoted, and a NaN incumbent measurement must not hand the
   challenger a free pass either. *)
let test_updater_declines_nan_challenger () =
  let accepts = Updater.accepts ~min_gain:0.02 in
  Alcotest.(check bool) "NaN challenger declined" false
    (accepts ~incumbent_f1:0.5 ~challenger_f1:Float.nan);
  Alcotest.(check bool) "NaN incumbent declines" false
    (accepts ~incumbent_f1:Float.nan ~challenger_f1:0.9);
  Alcotest.(check bool) "both NaN declined" false
    (accepts ~incumbent_f1:Float.nan ~challenger_f1:Float.nan);
  Alcotest.(check bool) "clear margin accepted" true
    (accepts ~incumbent_f1:0.5 ~challenger_f1:0.53);
  Alcotest.(check bool) "inside margin declined" false
    (accepts ~incumbent_f1:0.5 ~challenger_f1:0.51)

let suite =
  [
    Alcotest.test_case "stream ordering/determinism" `Quick
      test_stream_ordering_and_determinism;
    Alcotest.test_case "stream matches flowmarker" `Quick
      test_stream_matches_flowmarker;
    Alcotest.test_case "shift botnet" `Quick test_shift_botnet;
    Alcotest.test_case "renumber" `Quick test_renumber;
    Alcotest.test_case "monitor window metrics" `Quick test_monitor_window_metrics;
    Alcotest.test_case "monitor page-hinkley" `Quick
      test_monitor_page_hinkley_fires_and_latches;
    Alcotest.test_case "monitor accuracy drop" `Quick test_monitor_accuracy_drop;
    Alcotest.test_case "monitor forced drift" `Quick test_monitor_forced_drift;
    Alcotest.test_case "monitor cooldown hysteresis" `Quick
      test_monitor_cooldown_hysteresis;
    Alcotest.test_case "updater reservoir" `Quick test_updater_reservoir_bounded;
    Alcotest.test_case "updater declines small buffer" `Quick
      test_updater_declines_small_buffer;
    Alcotest.test_case "updater declines NaN challenger" `Quick
      test_updater_declines_nan_challenger;
    Alcotest.test_case "engine queue drops" `Quick test_engine_queue_overflow_drops;
    Alcotest.test_case "engine quantized mode" `Quick
      test_engine_quantized_agrees_with_reference;
    Alcotest.test_case "drift recovery" `Quick test_drift_recovery;
    Alcotest.test_case "report jsonl" `Quick test_report_jsonl_round_trips;
    Alcotest.test_case "classify_into allocates nothing" `Quick
      test_classify_into_allocates_nothing;
    Alcotest.test_case "engine drain allocation bounded" `Quick
      test_engine_drain_allocation_bounded;
    Alcotest.test_case "percentile nearest-rank" `Quick
      test_percentile_nearest_rank;
    QCheck_alcotest.to_alcotest prop_queue_conservation;
  ]
