(* Differential conformance: a fixed-seed budget of random models through
   every deployment path, plus unit coverage of the harness pieces (case
   serialization, the shrinker, artifact replay, entries parsing). *)
module Check = Homunculus_check
module Case = Check.Case
module Gen = Check.Gen
module Oracle = Check.Oracle
module Harness = Check.Harness
module Rng = Homunculus_util.Rng
module Inference = Homunculus_backends.Inference
module Model_ir = Homunculus_backends.Model_ir

let test_conformance_budget () =
  let report =
    Harness.run { Harness.default_options with seed = 42; trials = 150 }
  in
  if not (Harness.ok report) then
    Alcotest.failf "conformance violations:\n%s" (Harness.render report);
  List.iter
    (fun (s : Harness.stats) ->
      Alcotest.(check bool)
        (Oracle.backend_to_string s.Harness.backend ^ " exercised")
        true
        (s.Harness.cases > 0 && s.Harness.samples > 0))
    report.Harness.stats

let test_case_roundtrip () =
  let rng = Rng.create 7 in
  List.iter
    (fun family ->
      for _ = 1 to 5 do
        let case = Gen.case (Rng.split rng) family in
        let case' = Case.of_json (Case.to_json case) in
        Alcotest.(check int)
          (Gen.family_to_string family ^ " size survives round-trip")
          (Case.size case) (Case.size case');
        Alcotest.(check (array int))
          (Gen.family_to_string family ^ " verdicts survive round-trip")
          (Inference.predict_all case.Case.model case.Case.inputs)
          (Inference.predict_all case'.Case.model case'.Case.inputs)
      done)
    Gen.all_families

let test_invariants_hold () =
  let rng = Rng.create 11 in
  List.iter
    (fun family ->
      for _ = 1 to 3 do
        let case = Gen.case (Rng.split rng) family in
        match Oracle.check_invariants case with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "%s invariant %s: %s"
              (Gen.family_to_string family)
              f.Oracle.invariant f.Oracle.detail
      done)
    Gen.all_families

(* The shrinker only needs the predicate to keep failing; drive it with a
   synthetic failure and check it reaches the minimal shape. *)
let test_shrinker_minimizes () =
  let case = Gen.case (Rng.create 3) Gen.Svm in
  let still_fails c =
    Case.n_inputs c >= 1 && Model_ir.input_dim c.Case.model >= 1
  in
  let shrunk = Check.Shrink.shrink ~still_fails case in
  Alcotest.(check bool) "shrunk case still fails" true (still_fails shrunk);
  Alcotest.(check int) "one input row left" 1 (Case.n_inputs shrunk);
  Alcotest.(check int) "one feature left" 1 (Model_ir.input_dim shrunk.Case.model);
  Alcotest.(check bool) "size strictly decreased" true
    (Case.size shrunk < Case.size case)

let test_shrinker_preserves_failure () =
  let case = Gen.case (Rng.create 5) Gen.Tree in
  (* A predicate tied to the batch: some row's first feature is positive. *)
  let still_fails c =
    Array.exists (fun row -> row.(0) > 0.) c.Case.inputs
  in
  if still_fails case then begin
    let shrunk = Check.Shrink.shrink ~still_fails case in
    Alcotest.(check bool) "failure preserved" true (still_fails shrunk);
    Alcotest.(check bool) "no larger" true (Case.size shrunk <= Case.size case)
  end

let test_replay_artifact () =
  let case = Gen.case (Rng.create 13) Gen.Kmeans in
  let path = Filename.temp_file "homc_case" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        (Homunculus_util.Json.to_string (Case.to_json case));
      close_out oc;
      let outcome = Harness.replay ~path in
      Alcotest.(check bool) "replayed case passes" true
        (Harness.replay_ok outcome);
      Alcotest.(check bool) "at least one backend compared" true
        (outcome.Harness.comparisons <> []))

let test_entries_parser_rejects_garbage () =
  Alcotest.check_raises "malformed dump"
    (Check.P4_eval.Bad_entries "unrecognized entry line: table_add what")
    (fun () -> ignore (Check.P4_eval.of_entries ~n_features:1 "table_add what"))

let test_backend_applicability () =
  let dnn =
    Model_ir.Dnn
      {
        name = "m";
        layers =
          [|
            {
              Model_ir.n_in = 2;
              n_out = 2;
              activation = "linear";
              weights = [| [| 1.; 0. |]; [| 0.; 1. |] |];
              biases = [| 0.; 0. |];
            };
          |];
      }
  in
  Alcotest.(check bool) "spatial takes DNNs" true (Oracle.applicable Oracle.Spatial dnn);
  Alcotest.(check bool) "runtime rejects DNNs" false
    (Oracle.applicable Oracle.Mat_runtime dnn);
  Alcotest.(check bool) "p4 rejects DNNs" false (Oracle.applicable Oracle.P4 dnn)

let suite =
  [
    Alcotest.test_case "fixed-seed conformance budget" `Slow test_conformance_budget;
    Alcotest.test_case "case JSON round-trip is bit-exact" `Quick test_case_roundtrip;
    Alcotest.test_case "invariants hold on generated cases" `Quick test_invariants_hold;
    Alcotest.test_case "shrinker reaches the minimal shape" `Quick test_shrinker_minimizes;
    Alcotest.test_case "shrinker preserves the failure" `Quick test_shrinker_preserves_failure;
    Alcotest.test_case "artifact replay round-trips" `Quick test_replay_artifact;
    Alcotest.test_case "entries parser rejects garbage" `Quick test_entries_parser_rejects_garbage;
    Alcotest.test_case "backend applicability" `Quick test_backend_applicability;
  ]
