(* Suites are sorted by name before registration, so the order of this list
   is not load-bearing and a rebase that reorders it cannot reshuffle test
   output. Duplicate suite names fail loudly (exit 2) instead of letting
   alcotest silently interleave two suites under one heading. *)

let suites =
  [
    ("rng", Test_rng.suite);
    ("stats", Test_stats.suite);
    ("mathx", Test_mathx.suite);
    ("tensor", Test_tensor.suite);
    ("dataset", Test_dataset.suite);
    ("metrics", Test_metrics.suite);
    ("mlp", Test_mlp.suite);
    ("train", Test_train.suite);
    ("classical", Test_classical.suite);
    ("bo", Test_bo.suite);
    ("bo_properties", Test_bo_properties.suite);
    ("cost_model", Test_cost_model.suite);
    ("netdata", Test_netdata.suite);
    ("par", Test_par.suite);
    ("backends", Test_backends.suite);
    ("inference", Test_inference.suite);
    ("json", Test_json.suite);
    ("mapping", Test_mapping.suite);
    ("deploy", Test_deploy.suite);
    ("folding", Test_folding.suite);
    ("io_binding", Test_io_binding.suite);
    ("simulation", Test_simulation.suite);
    ("spatial_ir", Test_spatial_ir.suite);
    ("artifacts", Test_artifacts.suite);
    ("training_extras", Test_training_extras.suite);
    ("train_engine", Test_train_engine.suite);
    ("p4_ir", Test_p4_ir.suite);
    ("properties", Test_properties.suite);
    ("metamorphic", Test_metamorphic.suite);
    ("check", Test_check.suite);
    ("end_to_end", Test_end_to_end.suite);
    ("alchemy", Test_alchemy.suite);
    ("core", Test_core.suite);
    ("resilience", Test_resilience.suite);
    ("autopilot", Test_autopilot.suite);
    ("dist", Test_dist.suite);
    ("serve", Test_serve.suite);
    ("serve_quantized", Test_serve_quantized.suite);
    ("loadgen", Test_loadgen.suite);
    ("policy", Test_policy.suite);
    ("stage_alloc_properties", Test_stage_alloc_properties.suite);
    ("placement_properties", Test_placement_properties.suite);
  ]

let () =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) suites
  in
  let rec first_duplicate = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then Some a else first_duplicate rest
    | _ -> None
  in
  (match first_duplicate sorted with
  | Some name ->
      Printf.eprintf "test_main: duplicate suite name %S\n" name;
      exit 2
  | None -> ());
  Alcotest.run "homunculus" sorted
