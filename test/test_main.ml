let () =
  Alcotest.run "homunculus"
    [
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("mathx", Test_mathx.suite);
      ("tensor", Test_tensor.suite);
      ("dataset", Test_dataset.suite);
      ("metrics", Test_metrics.suite);
      ("mlp", Test_mlp.suite);
      ("train", Test_train.suite);
      ("classical", Test_classical.suite);
      ("bo", Test_bo.suite);
      ("netdata", Test_netdata.suite);
      ("backends", Test_backends.suite);
      ("inference", Test_inference.suite);
      ("json", Test_json.suite);
      ("mapping", Test_mapping.suite);
      ("deploy", Test_deploy.suite);
      ("folding", Test_folding.suite);
      ("io_binding", Test_io_binding.suite);
      ("simulation", Test_simulation.suite);
      ("spatial_ir", Test_spatial_ir.suite);
      ("artifacts", Test_artifacts.suite);
      ("training_extras", Test_training_extras.suite);
      ("p4_ir", Test_p4_ir.suite);
      ("properties", Test_properties.suite);
      ("end_to_end", Test_end_to_end.suite);
      ("alchemy", Test_alchemy.suite);
      ("core", Test_core.suite);
      ("serve", Test_serve.suite);
    ]
